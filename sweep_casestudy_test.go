package vani

import (
	"strconv"
	"strings"
	"testing"
)

// TestSweepCaseStudy pins the automated CosmoFlow search (the Section
// V-A / Figure 7 case study as a sweep): the winner stages data
// node-local with an I/O speedup inside the paper's 2.2-4.6x band.
func TestSweepCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep in -short mode")
	}
	sw, err := ParseSweepFile("examples/sweep-casestudy/casestudy.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if sw.WorkloadName() != "cosmoflow" || sw.NumPoints() != 8 {
		t.Fatalf("sweep = %s over %d points, want cosmoflow over 8", sw.WorkloadName(), sw.NumPoints())
	}
	rep, err := sw.Run(SweepOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	staging := ""
	for _, s := range rep.Winner.Config {
		if s.Param == "staging" {
			staging = s.Value
		}
	}
	if staging != "node-local" {
		t.Errorf("winner staging = %q, want node-local (config %v)", staging, rep.Winner.Config)
	}
	speedup, err := strconv.ParseFloat(strings.TrimSuffix(rep.Winner.IOSpeedup, "x"), 64)
	if err != nil {
		t.Fatalf("unparseable speedup %q: %v", rep.Winner.IOSpeedup, err)
	}
	if speedup < 2.2 || speedup > 4.6 {
		t.Errorf("I/O speedup %.2f outside the paper's 2.2-4.6x band", speedup)
	}
	if len(rep.Recommendations) == 0 {
		t.Error("no advisor recommendations on the baseline")
	}
	preload := false
	for _, r := range rep.Recommendations {
		if r.ID == "preload-node-local" {
			preload = true
		}
	}
	if !preload {
		t.Errorf("advisor did not recommend preload-node-local: %v", rep.Recommendations)
	}
}
