// System survey: the paper generalizes its characterization beyond Lassen
// to systems like Cori and Summit (Section III-C), whose storage tiers
// differ — Cori has a shared DataWarp burst buffer and no node-local
// tier; Summit has large per-node NVMe. This example probes each system
// model with IOR, then shows the advisor reaching *different* conclusions
// for the same checkpoint workload depending on the machine: on Lassen it
// tunes the stripe size; on Cori it additionally stages the checkpoint to
// the shared burst buffer.
//
//	go run ./examples/system-survey
package main

import (
	"fmt"
	"log"
	"time"

	"vani"
	"vani/internal/cluster"
	"vani/internal/storage"
)

type system struct {
	machine cluster.Machine
	storage vani.StorageConfig
}

func main() {
	systems := []system{
		{cluster.Lassen(), storage.Lassen()},
		{cluster.Cori(), storage.Cori()},
		{cluster.Summit(), storage.Summit()},
	}

	fmt.Println("storage probes (32-node IOR-style):")
	fmt.Printf("  %-8s %-14s %-16s %-18s\n", "system", "PFS (32 nodes)", "node-local/node", "shared BB")
	for _, s := range systems {
		pfs, err := vani.ProbeSharedBW(s.storage, 32)
		if err != nil {
			log.Fatal(err)
		}
		nl := "-"
		if s.machine.NodeLocalDir != "" {
			nlBW, err := vani.ProbeNodeLocalBW(s.storage)
			if err != nil {
				log.Fatal(err)
			}
			nl = gbps(nlBW)
		}
		bb := "-"
		if s.machine.SharedBBDir != "" {
			bb = s.machine.SharedBBDir
		}
		fmt.Printf("  %-8s %-14s %-16s %-18s\n", s.machine.Name, gbps(pfs), nl, bb)
	}

	fmt.Println("\nsame HACC checkpoint workload, per-system advice:")
	for _, s := range systems {
		w, err := vani.New("hacc")
		if err != nil {
			log.Fatal(err)
		}
		spec := w.DefaultSpec()
		spec.Machine = s.machine
		spec.Storage = s.storage
		spec.Nodes = 8
		spec.RanksPerNode = 16
		spec.Scale = 0.05

		res, err := vani.Run(w, spec)
		if err != nil {
			log.Fatal(err)
		}
		c := vani.Characterize(res)
		fmt.Printf("\n  on %s (job ran %s):\n", s.machine.Name, res.Runtime.Round(time.Millisecond))
		for _, r := range vani.Advise(c) {
			fmt.Printf("    %-22s = %s\n", r.Parameter, r.Value)
		}

		// Where the advice is actionable in the simulation, show its effect.
		tuned := spec
		if applied := vani.ApplyRecommendations(vani.Advise(c), &tuned); len(applied) > 0 {
			opt, err := vani.Run(w, tuned)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    applied %v: %s -> %s\n", applied,
				res.Runtime.Round(time.Millisecond), opt.Runtime.Round(time.Millisecond))
		}
	}
}

func gbps(bw float64) string {
	return fmt.Sprintf("%.1fGB/s", bw/float64(1<<30))
}
