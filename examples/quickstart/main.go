// Quickstart: simulate a traced HPC workload, characterize its I/O
// behavior into the paper's entities and attributes, and ask the advisor
// how the storage system should configure itself.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"vani"
	"vani/internal/report"
)

func main() {
	// 1. Pick a workload. HACC-I/O is the checkpoint/restart kernel:
	// file-per-process POSIX, 16MB sequential transfers.
	w, err := vani.New("hacc")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Configure the job: a small 8-node slice of the Lassen model at
	// 10% of the paper's data volume, so the example runs in about a
	// second of wall time.
	spec := w.DefaultSpec()
	spec.Nodes = 8
	spec.Scale = 0.1

	// 3. Run the simulation with Recorder-style tracing.
	res, err := vani.Run(w, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %s: %d ranks, %s virtual runtime, %d trace events\n\n",
		w.Name(), res.Job.Ranks(), res.Runtime.Round(time.Millisecond), len(res.Trace.Events))

	// 4. Characterize: entities and attributes (Tables II-XI).
	c := vani.Characterize(res)
	fmt.Printf("I/O volume   : %s read, %s written\n",
		report.Bytes(c.Workflow.ReadBytes), report.Bytes(c.Workflow.WriteBytes))
	fmt.Printf("op mix       : %s (data, metadata)\n",
		report.Pct(c.Workflow.DataOpsPct, c.Workflow.MetaOpsPct))
	fmt.Printf("files        : %d file-per-process, %d shared\n",
		c.Workflow.FPPFiles, c.Workflow.SharedFiles)
	fmt.Printf("granularity  : %s writes / %s reads, %s access\n",
		report.Bytes(c.HighLevel.Granularity.Write),
		report.Bytes(c.HighLevel.Granularity.Read), c.HighLevel.AccessPattern)
	fmt.Printf("data         : %s repr, %s distribution\n",
		c.HighLevel.DataRepr, c.HighLevel.DataDist)
	fmt.Printf("I/O phases   : %d (first: %s)\n\n",
		len(c.Phases), firstPhase(c))

	// 5. Advise: map the attributes to storage configuration (Section IV-D).
	recs := vani.Advise(c)
	fmt.Printf("the storage system should apply %d reconfigurations:\n", len(recs))
	for _, r := range recs {
		fmt.Printf("  %-24s = %-8s (%s)\n", r.Parameter, r.Value, r.ID)
		fmt.Printf("      %s\n", r.Rationale)
	}

	// 6. Apply and re-run: the advised stripe size matches HACC's 16MB
	// transfers.
	tuned := spec
	applied := vani.ApplyRecommendations(recs, &tuned)
	res2, err := vani.Run(w, tuned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-ran with %v applied: %s -> %s\n",
		applied, res.Runtime.Round(time.Millisecond), res2.Runtime.Round(time.Millisecond))
}

func firstPhase(c *vani.Characterization) string {
	if len(c.Phases) == 0 {
		return "none"
	}
	p := c.Phases[0]
	return fmt.Sprintf("%s in %s, %s", report.Bytes(p.IOBytes), report.Dur(p.Runtime), p.Frequency)
}
