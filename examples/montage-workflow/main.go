// Montage workflow analysis: run the nine-kernel Pegasus-managed mosaic
// workflow (Section IV-A6 / Figure 6), then inspect what the multilevel
// trace reveals: the application-level data-dependency DAG recovered from
// file producer/consumer relationships, the per-kernel I/O distribution
// (mDiff dominates), and the request-size histogram.
//
//	go run ./examples/montage-workflow
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"vani"
	"vani/internal/report"
)

func main() {
	w, err := vani.New("montage-pegasus")
	if err != nil {
		log.Fatal(err)
	}
	spec := w.DefaultSpec()
	spec.Nodes = 8
	spec.Scale = 0.05 // ~260 mDiff tasks; the full workflow has 5209

	res, err := vani.Run(w, spec)
	if err != nil {
		log.Fatal(err)
	}
	c := vani.Characterize(res)

	fmt.Printf("workflow ran %d kernels over %d worker slots in %s (virtual)\n\n",
		c.Workflow.NumApps, res.Job.Ranks(), res.Runtime.Round(time.Second))

	// Per-kernel I/O distribution, Figure 6's headline: mDiff performs the
	// bulk of the 139GB.
	type kernel struct {
		Name  string
		Bytes int64
		Procs int
	}
	var byVolume []kernel
	for _, a := range c.Apps {
		byVolume = append(byVolume, kernel{a.Name, a.IOBytes, a.Processes})
	}
	sort.Slice(byVolume, func(i, j int) bool { return byVolume[i].Bytes > byVolume[j].Bytes })
	var total int64
	for _, a := range byVolume {
		total += a.Bytes
	}
	fmt.Println("per-kernel I/O (Figure 6b):")
	for _, a := range byVolume {
		pct := 0.0
		if total > 0 {
			pct = float64(a.Bytes) / float64(total) * 100
		}
		fmt.Printf("  %-12s %8s  %4.1f%%  (%d task processes)\n",
			a.Name, report.Bytes(a.Bytes), pct, a.Procs)
	}

	fmt.Println("\nrecovered application data-dependency edges:")
	for _, d := range c.Workflow.AppDeps {
		fmt.Printf("  %-12s -> %-12s %8s over %d files\n",
			d.Producer, d.Consumer, report.Bytes(d.Bytes), d.Files)
	}

	fmt.Println()
	fmt.Println(report.Histogram("read request sizes (Figure 6a)", &c.Figure.ReadHist))
	fmt.Println(report.Flows("hottest files (Figure 6b)", c.Figure.TopFlows))
}
