// Custom workload: the paper's methodology applied to YOUR application.
//
// This example defines a new workload from scratch — a particle-in-cell
// simulation that checkpoints a shared file through MPI-IO every few
// steps while rank 0 appends small STDIO diagnostics — runs it on the
// simulated Lassen stack, characterizes it, and lets the advisor derive
// storage settings. It shows the full extension surface: implement the
// Workload interface, script the ranks against an IOClient, attach
// dataset metadata, and everything downstream (tables, YAML, advisor)
// works unchanged.
//
//	go run ./examples/custom-workload
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"vani"
	"vani/internal/report"
	"vani/internal/yamlenc"
)

// picSim is a particle-in-cell code: alternating field-solve compute and
// checkpoint I/O, one shared checkpoint file per step, written at 1MB
// granularity through MPI-IO, plus a rank-0 STDIO diagnostics log.
type picSim struct {
	Steps          int
	CheckpointMB   int64 // per rank, per checkpoint
	CheckpointEach int   // checkpoint every N steps
	ComputePerStep time.Duration
}

// Name implements vani.Workload.
func (w *picSim) Name() string { return "pic-sim" }

// AppName implements vani.Workload.
func (w *picSim) AppName() string { return "pic3d" }

// DefaultSpec implements vani.Workload.
func (w *picSim) DefaultSpec() vani.Spec {
	s := defaultSpec()
	s.TimeLimit = 4 * time.Hour
	return s
}

// Setup implements vani.Workload: attach a value sample so the "data
// dist" attribute resolves (PIC field values are normal).
func (w *picSim) Setup(env *vani.Env) {
	// Pre-create the shared checkpoint files so every rank's
	// non-creating open is valid regardless of arrival order.
	for step := 0; step < w.Steps; step++ {
		if (step+1)%w.CheckpointEach == 0 {
			env.Sys.Materialize(0, fmt.Sprintf("/p/gpfs1/pic/ckpt_%04d.bin", step), 0)
		}
	}
	sample := make([]float64, 1000)
	rng := env.RNG.Fork()
	for i := range sample {
		sample[i] = rng.Normal(0, 2.5)
	}
	env.Tr.AddSample("pic-fields", sample)
}

// Spawn implements vani.Workload: script every rank.
func (w *picSim) Spawn(env *vani.Env) {
	ranks := env.Job.Ranks()
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		cl := env.Client(w.AppName(), rank)
		env.E.Spawn(fmt.Sprintf("pic-rank%d", rank), func(p *vani.Proc) {
			for step := 0; step < w.Steps; step++ {
				cl.Compute(p, w.ComputePerStep)
				if (step+1)%w.CheckpointEach != 0 {
					continue
				}
				// Shared checkpoint: every rank writes its slab at its
				// offset through MPI-IO.
				path := fmt.Sprintf("/p/gpfs1/pic/ckpt_%04d.bin", step)
				cl.DescribeFile(path, "bin", 3, "float")
				m, err := cl.MPIOpen(p, path, false, ranks)
				if err != nil {
					panic(err)
				}
				slab := w.CheckpointMB * 1 << 20
				base := int64(rank) * slab
				for off := int64(0); off < slab; off += 1 << 20 {
					if err := m.WriteAt(p, base+off, 1<<20); err != nil {
						panic(err)
					}
				}
				if err := m.Close(p); err != nil {
					panic(err)
				}
				// Rank 0 appends small diagnostics through STDIO.
				if rank == 0 {
					d, err := cl.StdioOpen(p, "/p/gpfs1/pic/diag.log", 'w')
					if err != nil {
						panic(err)
					}
					for i := 0; i < 32; i++ {
						if err := d.Write(p, 512); err != nil {
							panic(err)
						}
					}
					if err := d.Close(p); err != nil {
						panic(err)
					}
				}
			}
		})
	}
}

func defaultSpec() vani.Spec {
	w, err := vani.New("hacc") // borrow the stock Lassen configuration
	if err != nil {
		panic(err)
	}
	return w.DefaultSpec()
}

func main() {
	w := &picSim{
		Steps:          20,
		CheckpointMB:   64,
		CheckpointEach: 5,
		ComputePerStep: 30 * time.Second,
	}
	spec := w.DefaultSpec()
	spec.Nodes = 8
	spec.RanksPerNode = 16

	res, err := vani.Run(w, spec)
	if err != nil {
		log.Fatal(err)
	}
	c := vani.Characterize(res)

	fmt.Printf("pic-sim: %d ranks, %s virtual runtime, %s written per checkpoint wave\n\n",
		res.Job.Ranks(), res.Runtime.Round(time.Second),
		report.Bytes(int64(res.Job.Ranks())*w.CheckpointMB<<20))
	fmt.Println(report.TableI([]report.Named{{Name: "pic-sim", C: c}}))

	fmt.Println("advisor:")
	for _, r := range vani.Advise(c) {
		fmt.Printf("  %-24s = %-8s  %s\n", r.Parameter, r.Value, r.Rationale)
	}

	// The characterization is what a workload-aware storage system would
	// load; write it as YAML like the paper's Analyzer does.
	if err := os.WriteFile("pic-sim.yaml", yamlenc.Marshal(c), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote pic-sim.yaml (entity/attribute characterization)")
}
