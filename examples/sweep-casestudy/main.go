// Sweep case study: the CosmoFlow reconfiguration experiment (Section
// V-A, Figure 7) as an automated what-if search instead of a hand-run
// comparison. A declarative sweep document crosses the staging target,
// HDF5 chunking, and PFS stripe size over the golden CosmoFlow spec; the
// sweep runs every point, picks the fastest-I/O configuration, and
// reports its speedup against the baseline — landing the preload-to-
// /dev/shm winner inside the paper's 2.2-4.6x band.
//
//	go run ./examples/sweep-casestudy
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"vani"
)

func main() {
	path := filepath.Join("examples", "sweep-casestudy", "casestudy.yaml")
	if _, err := os.Stat(path); err != nil {
		path = "casestudy.yaml" // run from the example directory
	}
	sw, err := vani.ParseSweepFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep %s: %s over %d grid points\n", sw.Name, sw.WorkloadName(), sw.NumPoints())

	rep, err := sw.Run(vani.SweepOptions{
		OnPoint: func(done, total int) { fmt.Printf("  point %d/%d done\n", done, total) },
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("%-5s  %-52s %-10s %s\n", "point", "config", "I/O", "runtime")
	for _, p := range rep.Points {
		fmt.Printf("%-5d  %-52s %-10s %s\n",
			p.Index, settings(p.Config), p.IOTime.Round(time.Millisecond), p.Runtime.Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Printf("winner: point %d %s\n", rep.Winner.Index, settings(rep.Winner.Config))
	fmt.Printf("  I/O speedup vs baseline: %s (paper band: 2.2x-4.6x)\n", rep.Winner.IOSpeedup)
	fmt.Printf("  runtime speedup:         %s\n", rep.Winner.RuntimeSpeedup)
	fmt.Println("advisor on the baseline:")
	for _, r := range rep.Recommendations {
		fmt.Printf("  %s = %s\n", r.Parameter, r.Value)
	}
	fmt.Println("replayed stripe trials on the baseline trace:")
	for _, t := range rep.StripeTrials {
		fmt.Printf("  %-12s io=%s\n", t.Name, t.IOTime.Round(time.Millisecond))
	}
}

func settings(cfg []vani.SweepSetting) string {
	s := ""
	for i, c := range cfg {
		if i > 0 {
			s += " "
		}
		s += c.Param + "=" + c.Value
	}
	return s
}
