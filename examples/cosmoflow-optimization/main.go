// CosmoFlow optimization: the Section V-A / Figure 7 case study.
//
// A metadata-dominated deep-learning workload reads ~50K small shared HDF5
// files through MPI-IO on GPFS. The characterization exposes the
// bottleneck (98% of I/O operations are metadata on files whose per-node
// shard fits in unused memory); the advisor maps it to a preload-into-
// /dev/shm reconfiguration; re-running shows the I/O speedup growing with
// scale, the shape of Figure 7.
//
//	go run ./examples/cosmoflow-optimization
package main

import (
	"fmt"
	"log"
	"time"

	"vani"
	"vani/internal/workloads"
)

func main() {
	fmt.Println("CosmoFlow baseline (B: GPFS) vs optimized (O: preload to /dev/shm)")
	fmt.Println("paper band: 2.2x at 32 nodes growing to 4.6x at 256 nodes")
	fmt.Println()
	fmt.Printf("%-6s  %-10s %-10s %-8s  %s\n", "nodes", "B I/O", "O I/O", "speedup", "applied")

	for _, nodes := range []int{32, 64, 128} {
		w := workloads.NewCosmoFlow()
		w.GPUPerFile = 0 // isolate the I/O path, as Figure 7 plots I/O time
		spec := w.DefaultSpec()
		spec.Nodes = nodes
		spec.Scale = 0.02 // ~1000 sample files, so the sweep runs in seconds

		cs, err := vani.Optimize(w, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d  %-10s %-10s %-8.2f  %v\n",
			nodes,
			cs.BaselineIOTime.Round(time.Millisecond),
			cs.OptimizedIOTime.Round(time.Millisecond),
			cs.IOSpeedup(), cs.Applied)
	}

	fmt.Println()
	fmt.Println("what the advisor saw (32 nodes):")
	w := workloads.NewCosmoFlow()
	w.GPUPerFile = 0
	spec := w.DefaultSpec()
	spec.Nodes = 32
	spec.Scale = 0.02
	res, err := vani.Run(w, spec)
	if err != nil {
		log.Fatal(err)
	}
	c := vani.Characterize(res)
	fmt.Printf("  metadata share of ops : %.0f%%\n", c.Workflow.MetaOpsPct*100)
	fmt.Printf("  dataset               : %d files, %s, format %s\n",
		c.Dataset.NumFiles, sizeGB(c.Dataset.SizeBytes), c.Dataset.Format)
	fmt.Printf("  per-node shard        : %s of %dGB node memory\n",
		sizeGB(c.Dataset.SizeBytes/int64(spec.Nodes)), c.Middleware.MemPerNodeGB)
	for _, r := range vani.Advise(c) {
		fmt.Printf("  -> %s = %s\n", r.Parameter, r.Value)
	}
}

func sizeGB(b int64) string {
	return fmt.Sprintf("%.1fGB", float64(b)/float64(1<<30))
}
