package vani

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vani/internal/trace"
)

// equivSpec builds a small-but-nontrivial spec for equivalence runs: large
// enough to cross chunk boundaries in the busier workloads, small enough
// to keep the 6-workload × seeds × parallelism sweep fast.
func equivSpec(w Workload, seed int64) Spec {
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.RanksPerNode = 4
	spec.Scale = 0.02
	spec.Seed = seed
	return spec
}

// characterizeYAML runs the analyzer at the given parallelism and renders
// the characterization as its YAML artifact — the byte stream equivalence
// is asserted over.
func characterizeYAML(t *testing.T, res *Result, par int) []byte {
	t.Helper()
	opt := DefaultAnalyzerOptions()
	opt.Parallelism = par
	return ToYAML(CharacterizeWith(res, opt))
}

// TestParallelismEquivalence is the tentpole's contract: for every
// workload and multiple seeds, the characterization YAML is byte-identical
// between the sequential path (Parallelism=1) and parallel worker pools.
func TestParallelismEquivalence(t *testing.T) {
	for _, name := range Workloads() {
		for _, seed := range []int64{1, 2} {
			w, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(w, equivSpec(w, seed))
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			want := characterizeYAML(t, res, 1)
			for _, par := range []int{0, 2, 4, 8} {
				got := characterizeYAML(t, res, par)
				if !bytes.Equal(want, got) {
					t.Errorf("%s seed=%d: YAML differs between Parallelism=1 and Parallelism=%d",
						name, seed, par)
				}
			}
		}
	}
}

// TestCharacterizeFileMatchesInMemory: streaming a written trace off disk
// through CharacterizeFile (scanner → column chunks, no []Event) must
// produce a byte-identical characterization to the in-memory path.
func TestCharacterizeFileMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"hacc", "montage-pegasus"} {
		w, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, equivSpec(w, 1))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".trc")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteTrace(f, res.Trace); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		cfg := res.Spec.Storage
		want := ToYAML(Characterize(res))
		for _, par := range []int{1, 4} {
			opt := DefaultAnalyzerOptions()
			opt.Storage = &cfg
			opt.Parallelism = par
			var timings AnalyzerTimings
			opt.Stats = &timings
			c, err := CharacterizeFileWith(path, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := ToYAML(c); !bytes.Equal(want, got) {
				t.Errorf("%s: streamed characterization differs from in-memory (par=%d)", name, par)
			}
		}
	}
}

// TestFormatEquivalence is the VANITRC2 contract: the same workload
// characterized through a VANITRC1 log, a raw VANITRC2 log, and a
// compressed VANITRC2 log — at sequential and parallel decode — produces a
// YAML artifact byte-identical to the in-memory analysis.
func TestFormatEquivalence(t *testing.T) {
	dir := t.TempDir()
	writeAs := func(t *testing.T, path string, f func(*os.File) error) {
		t.Helper()
		out, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := f(out); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"hacc", "cosmoflow"} {
		w, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, equivSpec(w, 1))
		if err != nil {
			t.Fatal(err)
		}
		want := ToYAML(Characterize(res))

		variants := map[string]func(*os.File) error{
			"v1":      func(f *os.File) error { return WriteTraceFormat(f, res.Trace, TraceFormatV1) },
			"v2":      func(f *os.File) error { return WriteTraceFormat(f, res.Trace, TraceFormatV2) },
			"v2flate": func(f *os.File) error { return trace.WriteV2With(f, res.Trace, trace.V2Options{Compress: true}) },
		}
		cfg := res.Spec.Storage
		for variant, write := range variants {
			path := filepath.Join(dir, name+"-"+variant+".trc")
			writeAs(t, path, write)
			for _, par := range []int{1, 4} {
				opt := DefaultAnalyzerOptions()
				opt.Storage = &cfg
				opt.Parallelism = par
				c, err := CharacterizeFileWith(path, opt)
				if err != nil {
					t.Fatalf("%s %s par=%d: %v", name, variant, par, err)
				}
				if got := ToYAML(c); !bytes.Equal(want, got) {
					t.Errorf("%s: %s characterization differs from in-memory (par=%d)", name, variant, par)
				}
			}
		}
	}
}

// TestTraceFormatRoundTripFacade: the facade's format-aware writer and the
// sniffing reader agree for both formats.
func TestTraceFormatRoundTripFacade(t *testing.T) {
	w, err := New("ior")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, equivSpec(w, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, tf := range []TraceFormat{TraceFormatV1, TraceFormatV2} {
		var buf bytes.Buffer
		if err := WriteTraceFormat(&buf, res.Trace, tf); err != nil {
			t.Fatalf("%v: %v", tf, err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("%v: %v", tf, err)
		}
		if len(got.Events) != len(res.Trace.Events) {
			t.Errorf("%v: %d events round-tripped, want %d", tf, len(got.Events), len(res.Trace.Events))
		}
	}
	if _, err := ParseTraceFormat("v2"); err != nil {
		t.Errorf("ParseTraceFormat(v2): %v", err)
	}
	if _, err := ParseTraceFormat("bogus"); err == nil {
		t.Error("ParseTraceFormat accepted bogus")
	}
}

// TestCharacterizeFileErrors: missing and corrupt trace files surface as
// errors, not panics.
func TestCharacterizeFileErrors(t *testing.T) {
	if _, err := CharacterizeFile(filepath.Join(t.TempDir(), "nope.trc"), nil); err == nil {
		t.Error("missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.trc")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CharacterizeFile(bad, nil); err == nil {
		t.Error("corrupt file did not error")
	}
}

// TestStageTimingsPopulated: the verbose pipeline exposes non-trivial
// per-stage timings through AnalyzerOptions.Stats.
func TestStageTimingsPopulated(t *testing.T) {
	w, err := New("hacc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, equivSpec(w, 1))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultAnalyzerOptions()
	var timings AnalyzerTimings
	opt.Stats = &timings
	if c := CharacterizeWith(res, opt); c == nil {
		t.Fatal("nil characterization")
	}
	if timings.TraceMerge <= 0 {
		t.Error("TraceMerge timing not recorded")
	}
	if timings.Columnarize <= 0 {
		t.Error("Columnarize timing not recorded")
	}
	if timings.Analyze <= 0 {
		t.Error("Analyze timing not recorded")
	}
}
