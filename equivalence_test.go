package vani

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"vani/internal/colstore"
	"vani/internal/trace"
)

// equivSpec builds a small-but-nontrivial spec for equivalence runs: large
// enough to cross chunk boundaries in the busier workloads, small enough
// to keep the 6-workload × seeds × parallelism sweep fast.
func equivSpec(w Workload, seed int64) Spec {
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.RanksPerNode = 4
	spec.Scale = 0.02
	spec.Seed = seed
	return spec
}

// characterizeYAML runs the analyzer at the given parallelism and renders
// the characterization as its YAML artifact — the byte stream equivalence
// is asserted over.
func characterizeYAML(t *testing.T, res *Result, par int) []byte {
	t.Helper()
	opt := DefaultAnalyzerOptions()
	opt.Parallelism = par
	return ToYAML(CharacterizeWith(res, opt))
}

// TestParallelismEquivalence is the tentpole's contract: for every
// workload and multiple seeds, the characterization YAML is byte-identical
// between the sequential path (Parallelism=1) and parallel worker pools.
func TestParallelismEquivalence(t *testing.T) {
	for _, name := range Workloads() {
		for _, seed := range []int64{1, 2} {
			w, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(w, equivSpec(w, seed))
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			want := characterizeYAML(t, res, 1)
			for _, par := range []int{0, 2, 4, 8} {
				got := characterizeYAML(t, res, par)
				if !bytes.Equal(want, got) {
					t.Errorf("%s seed=%d: YAML differs between Parallelism=1 and Parallelism=%d",
						name, seed, par)
				}
			}
		}
	}
}

// TestCharacterizeFileMatchesInMemory: streaming a written trace off disk
// through CharacterizeFile (scanner → column chunks, no []Event) must
// produce a byte-identical characterization to the in-memory path.
func TestCharacterizeFileMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"hacc", "montage-pegasus"} {
		w, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, equivSpec(w, 1))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".trc")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteTrace(f, res.Trace); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		cfg := res.Spec.Storage
		want := ToYAML(Characterize(res))
		for _, par := range []int{1, 4} {
			opt := DefaultAnalyzerOptions()
			opt.Storage = &cfg
			opt.Parallelism = par
			var timings AnalyzerTimings
			opt.Stats = &timings
			c, err := CharacterizeFileWith(path, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := ToYAML(c); !bytes.Equal(want, got) {
				t.Errorf("%s: streamed characterization differs from in-memory (par=%d)", name, par)
			}
		}
	}
}

// TestFormatEquivalence is the VANITRC2 contract: the same workload
// characterized through a VANITRC1 log, a raw VANITRC2 log, and a
// compressed VANITRC2 log — at sequential and parallel decode — produces a
// YAML artifact byte-identical to the in-memory analysis.
func TestFormatEquivalence(t *testing.T) {
	dir := t.TempDir()
	writeAs := func(t *testing.T, path string, f func(*os.File) error) {
		t.Helper()
		out, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := f(out); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"hacc", "cosmoflow"} {
		w, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, equivSpec(w, 1))
		if err != nil {
			t.Fatal(err)
		}
		want := ToYAML(Characterize(res))

		variants := map[string]func(*os.File) error{
			"v1":      func(f *os.File) error { return WriteTraceFormat(f, res.Trace, TraceFormatV1) },
			"v2":      func(f *os.File) error { return WriteTraceFormat(f, res.Trace, TraceFormatV2) },
			"v2flate": func(f *os.File) error { return trace.WriteV2With(f, res.Trace, trace.V2Options{Compress: true}) },
		}
		cfg := res.Spec.Storage
		for variant, write := range variants {
			path := filepath.Join(dir, name+"-"+variant+".trc")
			writeAs(t, path, write)
			for _, par := range []int{1, 4} {
				opt := DefaultAnalyzerOptions()
				opt.Storage = &cfg
				opt.Parallelism = par
				c, err := CharacterizeFileWith(path, opt)
				if err != nil {
					t.Fatalf("%s %s par=%d: %v", name, variant, par, err)
				}
				if got := ToYAML(c); !bytes.Equal(want, got) {
					t.Errorf("%s: %s characterization differs from in-memory (par=%d)", name, variant, par)
				}
			}
		}
	}
}

// TestCodecMatrixEquivalence is the v2.2 contract: every workload trace,
// encoded under every layout and segment-codec strategy — VANITRC1, v2 row
// blocks, v2.1 raw varints, v2.2 with the cost model and with each codec
// forced on, with and without the flate outer layer — characterizes to a
// YAML artifact byte-identical to the in-memory analysis, at sequential,
// fixed-parallel and NumCPU decode. Every variant also runs with the
// compressed-domain kernels force-disabled: the encoded-segment fast paths
// and the materialized row loops must be indistinguishable byte-for-byte.
func TestCodecMatrixEquivalence(t *testing.T) {
	dir := t.TempDir()
	variants := map[string]trace.V2Options{
		"v2row":      {RowLayout: true},
		"v21":        {Codec: trace.CodecV21},
		"v21flate":   {Codec: trace.CodecV21, Compress: true},
		"v22auto":    {Codec: trace.CodecAuto},
		"v22flate":   {Codec: trace.CodecAuto, Compress: true},
		"v22raw":     {Codec: trace.CodecForceRaw},
		"v22rle":     {Codec: trace.CodecForceRLE},
		"v22dict":    {Codec: trace.CodecForceDict},
		"v22for":     {Codec: trace.CodecForceFOR},
		"v22forflat": {Codec: trace.CodecForceFOR, Compress: true},
	}
	pars := []int{1, 4, runtime.NumCPU()}
	for _, name := range Workloads() {
		w, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, equivSpec(w, 1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := res.Spec.Storage
		refOpt := DefaultAnalyzerOptions()
		refOpt.Storage = &cfg
		want := ToYAML(CharacterizeWith(res, refOpt))

		// Three execution arms: everything on, grouped execution forced off
		// (kernels still on), and all compressed-domain kernels off. The
		// grouped-off arm pins the dense code-keyed aggregation against the
		// map-keyed fallback byte-for-byte.
		modes := []struct {
			label            string
			kernels, grouped bool
		}{
			{"on", true, true},
			{"grouped-off", true, false},
			{"kernels-off", false, true},
		}
		check := func(variant, path string) {
			t.Helper()
			for _, mode := range modes {
				colstore.SetKernelsEnabled(mode.kernels)
				colstore.SetGroupedKernelsEnabled(mode.grouped)
				for _, par := range pars {
					opt := DefaultAnalyzerOptions()
					opt.Storage = &cfg
					opt.Parallelism = par
					c, err := CharacterizeFileWith(path, opt)
					if err != nil {
						t.Fatalf("%s %s par=%d mode=%s: %v", name, variant, par, mode.label, err)
					}
					if got := ToYAML(c); !bytes.Equal(want, got) {
						t.Errorf("%s: %s characterization differs from in-memory (par=%d mode=%s)",
							name, variant, par, mode.label)
					}
				}
			}
			colstore.SetKernelsEnabled(true)
			colstore.SetGroupedKernelsEnabled(true)
		}
		defer func() {
			colstore.SetKernelsEnabled(true)
			colstore.SetGroupedKernelsEnabled(true)
		}()

		v1Path := filepath.Join(dir, name+"-v1.trc")
		f, err := os.Create(v1Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteTraceFormat(f, res.Trace, TraceFormatV1); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		check("v1", v1Path)

		for variant, vopt := range variants {
			path := filepath.Join(dir, name+"-"+variant+".trc")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteV2With(f, res.Trace, vopt); err != nil {
				t.Fatalf("%s %s: %v", name, variant, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			check(variant, path)
		}
	}
}

// TestFilteredCodecMatrixEquivalence extends the codec matrix to filtered
// scans — the selection-backed grouped path. With a filter pushed down, the
// surviving chunks are selection-backed and the grouped analyzer runs on
// run summaries re-cut against the selection vector; the YAML must stay
// byte-identical to in-memory filtering across codecs, filter shapes
// (residual window, exact rank selection, op class, and their combination),
// the three kernel arms, and sequential / fixed / NumCPU parallelism.
func TestFilteredCodecMatrixEquivalence(t *testing.T) {
	dir := t.TempDir()
	w, err := New("hacc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, equivSpec(w, 1))
	if err != nil {
		t.Fatal(err)
	}
	end := res.Trace.Events[len(res.Trace.Events)-1].Start
	filters := map[string]TraceFilter{
		"window":   {From: end / 4, To: end / 2},
		"ranks":    {Ranks: []int32{0, 1, 2, 3}},
		"ops":      {Ops: OpClassData},
		"combined": {From: end / 8, To: 3 * end / 4, Ranks: []int32{0, 2, 4, 6, 8, 10}, Ops: OpClassIO},
	}
	variants := map[string]trace.V2Options{
		"v22auto": {Codec: trace.CodecAuto},
		"v22raw":  {Codec: trace.CodecForceRaw},
		"v22rle":  {Codec: trace.CodecForceRLE},
		"v22dict": {Codec: trace.CodecForceDict},
		"v22for":  {Codec: trace.CodecForceFOR},
	}
	modes := []struct {
		label            string
		kernels, grouped bool
	}{
		{"on", true, true},
		{"grouped-off", true, false},
		{"kernels-off", false, true},
	}
	pars := []int{1, 4, runtime.NumCPU()}
	cfg := res.Spec.Storage
	paths := map[string]string{}
	for variant, vopt := range variants {
		path := filepath.Join(dir, variant+".trc")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteV2With(f, res.Trace, vopt); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths[variant] = path
	}
	defer func() {
		colstore.SetKernelsEnabled(true)
		colstore.SetGroupedKernelsEnabled(true)
	}()
	for fname, filter := range filters {
		refOpt := DefaultAnalyzerOptions()
		refOpt.Storage = &cfg
		refOpt.Filter = filter
		want := ToYAML(CharacterizeWith(res, refOpt))
		for variant, path := range paths {
			for _, mode := range modes {
				colstore.SetKernelsEnabled(mode.kernels)
				colstore.SetGroupedKernelsEnabled(mode.grouped)
				for _, par := range pars {
					opt := DefaultAnalyzerOptions()
					opt.Storage = &cfg
					opt.Parallelism = par
					opt.Filter = filter
					c, err := CharacterizeFileWith(path, opt)
					if err != nil {
						t.Fatalf("%s %s par=%d mode=%s: %v", fname, variant, par, mode.label, err)
					}
					if got := ToYAML(c); !bytes.Equal(want, got) {
						t.Errorf("%s: %s filtered characterization differs from in-memory (par=%d mode=%s)",
							fname, variant, par, mode.label)
					}
				}
			}
			colstore.SetKernelsEnabled(true)
			colstore.SetGroupedKernelsEnabled(true)
		}
	}
}

// TestCodecSizeGuard is the size regression gate CI runs on the v2.2 cost
// model: on every example workload trace, auto mode with the outer flate
// layer engaged must land within 5% of the v2.1 flate encoding it replaces
// (auto competes against the all-raw payload post-flate per block, so it
// can only lose by frame overhead). A cost-model regression — a codec
// mispriced, the flate-aware fallback dropped — shows up here before it
// shows up in the published bench record.
func TestCodecSizeGuard(t *testing.T) {
	const maxRatio = 1.05
	for _, name := range Workloads() {
		w, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, equivSpec(w, 1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		size := func(opt trace.V2Options) int {
			var buf bytes.Buffer
			if err := trace.WriteV2With(&buf, res.Trace, opt); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return buf.Len()
		}
		auto := size(trace.V2Options{Compress: true})
		v21Flate := size(trace.V2Options{Codec: trace.CodecV21, Compress: true})
		ratio := float64(auto) / float64(v21Flate)
		t.Logf("%-16s v22-auto=%d v21-flate=%d ratio=%.3f", name, auto, v21Flate, ratio)
		if ratio > maxRatio {
			t.Errorf("%s: v2.2 auto encoding is %d bytes, %.1f%% larger than v2.1 flate (%d bytes); limit is %.0f%%",
				name, auto, (ratio-1)*100, v21Flate, (maxRatio-1)*100)
		}
	}
}

// TestFilterPushdownEquivalence is the scan planner's contract: a filtered
// characterization read off disk — with block pruning, projection, and lazy
// materialization all engaged — is byte-identical to filtering the full
// decode in memory, for every trace layout (VANITRC1 stream, legacy
// row-layout v2.0 footer, columnar v2.1 footer raw and compressed,
// non-default block geometry) and at sequential and parallel decode.
func TestFilterPushdownEquivalence(t *testing.T) {
	dir := t.TempDir()
	w, err := New("hacc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, equivSpec(w, 1))
	if err != nil {
		t.Fatal(err)
	}
	end := res.Trace.Events[len(res.Trace.Events)-1].Start
	filters := map[string]TraceFilter{
		"window":   {From: end / 4, To: end / 2},
		"ranks":    {Ranks: []int32{0, 1, 2, 3}},
		"levels":   {Levels: []trace.Level{trace.LevelPosix}},
		"ops":      {Ops: OpClassData},
		"combined": {From: end / 8, To: 3 * end / 4, Ranks: []int32{0, 2, 4, 6, 8, 10}, Ops: OpClassIO},
		"nothing":  {From: 100 * end, To: 200 * end},
	}
	variants := map[string]func(*os.File) error{
		"v1":        func(f *os.File) error { return WriteTraceFormat(f, res.Trace, TraceFormatV1) },
		"v2":        func(f *os.File) error { return WriteTraceFormat(f, res.Trace, TraceFormatV2) },
		"v2flate":   func(f *os.File) error { return trace.WriteV2With(f, res.Trace, trace.V2Options{Compress: true}) },
		"v2row":     func(f *os.File) error { return trace.WriteV2With(f, res.Trace, trace.V2Options{RowLayout: true}) },
		"v2blk1000": func(f *os.File) error { return trace.WriteV2With(f, res.Trace, trace.V2Options{BlockEvents: 1000}) },
	}
	cfg := res.Spec.Storage
	paths := map[string]string{}
	for variant, write := range variants {
		path := filepath.Join(dir, variant+".trc")
		out, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(out); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
		paths[variant] = path
	}
	for fname, filter := range filters {
		// Reference: in-memory analysis of the filtered event log.
		refOpt := DefaultAnalyzerOptions()
		refOpt.Storage = &cfg
		refOpt.Filter = filter
		want := ToYAML(CharacterizeWith(res, refOpt))
		for variant, path := range paths {
			for _, par := range []int{1, 4} {
				opt := DefaultAnalyzerOptions()
				opt.Storage = &cfg
				opt.Parallelism = par
				opt.Filter = filter
				var timings AnalyzerTimings
				opt.Stats = &timings
				c, err := CharacterizeFileWith(path, opt)
				if err != nil {
					t.Fatalf("%s %s par=%d: %v", fname, variant, par, err)
				}
				if got := ToYAML(c); !bytes.Equal(want, got) {
					t.Errorf("%s: %s characterization differs from in-memory filtering (par=%d)",
						fname, variant, par)
				}
				s := timings.Scan
				if s.RowsKept > s.RowsTotal || s.BlocksPruned > s.BlocksTotal || s.DecodedBytes > s.PayloadBytes {
					t.Errorf("%s %s: inconsistent scan counters %+v", fname, variant, s)
				}
			}
		}
	}
}

// TestScanCountersReported: a narrow window over a multi-block v2 log
// reports pruned blocks and a decoded-bytes figure well under the full
// payload through AnalyzerOptions.Stats.
func TestScanCountersReported(t *testing.T) {
	tr := syntheticTrace(3*16384 + 100)
	path := filepath.Join(t.TempDir(), "big.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	end := tr.Events[len(tr.Events)-1].Start

	full := DefaultAnalyzerOptions()
	var fullStats AnalyzerTimings
	full.Stats = &fullStats
	if _, err := CharacterizeFileWith(path, full); err != nil {
		t.Fatal(err)
	}
	if fullStats.Scan.BlocksTotal < 4 || fullStats.Scan.BlocksPruned != 0 {
		t.Fatalf("full scan counters: %+v", fullStats.Scan)
	}

	opt := DefaultAnalyzerOptions()
	opt.Filter = TraceFilter{From: end / 4, To: end / 2}
	var timings AnalyzerTimings
	opt.Stats = &timings
	if _, err := CharacterizeFileWith(path, opt); err != nil {
		t.Fatal(err)
	}
	s := timings.Scan
	if s.BlocksPruned == 0 {
		t.Error("windowed scan pruned no blocks")
	}
	if s.DecodedBytes >= fullStats.Scan.DecodedBytes {
		t.Errorf("windowed scan decoded %d bytes, full scan %d: pushdown saved nothing",
			s.DecodedBytes, fullStats.Scan.DecodedBytes)
	}
	if s.RowsKept >= s.RowsTotal {
		t.Errorf("windowed scan kept %d of %d read rows", s.RowsKept, s.RowsTotal)
	}
}

// syntheticTrace builds a time-ordered multi-block trace without running a
// workload: enough rows to span several VANITRC2 blocks.
func syntheticTrace(n int) *Trace {
	tr := trace.NewTracer()
	tr.SetMeta(trace.Meta{Workload: "synthetic", Nodes: 4, Ranks: 16, PFSDir: "/p/gpfs1"})
	file := tr.FileID("/p/gpfs1/data")
	for i := 0; i < n; i++ {
		start := time.Duration(i) * time.Microsecond
		op := trace.OpWrite
		if i%3 == 0 {
			op = trace.OpRead
		}
		tr.Record(trace.Event{
			Level: trace.LevelPosix, Op: op, Rank: int32(i % 16),
			File: file, Offset: int64(i) * 4096, Size: 4096,
			Start: start, End: start + time.Microsecond,
		})
	}
	return tr.Finish()
}

// TestReadTraceFiltered: the filtered loader equals filtering a full load,
// for both formats, and prunes nothing it should keep.
func TestReadTraceFiltered(t *testing.T) {
	dir := t.TempDir()
	w, err := New("ior")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, equivSpec(w, 5))
	if err != nil {
		t.Fatal(err)
	}
	end := res.Trace.Events[len(res.Trace.Events)-1].Start
	filter := TraceFilter{From: end / 3, To: 2 * end / 3, Ops: OpClassData}
	want := trace.FilterEvents(res.Trace.Events, filter)
	for _, tf := range []TraceFormat{TraceFormatV1, TraceFormatV2} {
		path := filepath.Join(dir, tf.String()+".trc")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteTraceFormat(f, res.Trace, tf); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTraceFiltered(path, filter)
		if err != nil {
			t.Fatalf("%v: %v", tf, err)
		}
		if len(got.Events) != len(want) {
			t.Fatalf("%v: loaded %d events, want %d", tf, len(got.Events), len(want))
		}
		for i := range want {
			if got.Events[i] != want[i] {
				t.Fatalf("%v: event %d differs", tf, i)
			}
		}
		if got.Meta.Workload != res.Trace.Meta.Workload {
			t.Errorf("%v: header metadata lost", tf)
		}
	}
}

// TestTraceFormatRoundTripFacade: the facade's format-aware writer and the
// sniffing reader agree for both formats.
func TestTraceFormatRoundTripFacade(t *testing.T) {
	w, err := New("ior")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, equivSpec(w, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, tf := range []TraceFormat{TraceFormatV1, TraceFormatV2} {
		var buf bytes.Buffer
		if err := WriteTraceFormat(&buf, res.Trace, tf); err != nil {
			t.Fatalf("%v: %v", tf, err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("%v: %v", tf, err)
		}
		if len(got.Events) != len(res.Trace.Events) {
			t.Errorf("%v: %d events round-tripped, want %d", tf, len(got.Events), len(res.Trace.Events))
		}
	}
	if _, err := ParseTraceFormat("v2"); err != nil {
		t.Errorf("ParseTraceFormat(v2): %v", err)
	}
	if _, err := ParseTraceFormat("bogus"); err == nil {
		t.Error("ParseTraceFormat accepted bogus")
	}
}

// TestCharacterizeFileErrors: missing and corrupt trace files surface as
// errors, not panics.
func TestCharacterizeFileErrors(t *testing.T) {
	if _, err := CharacterizeFile(filepath.Join(t.TempDir(), "nope.trc"), nil); err == nil {
		t.Error("missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.trc")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CharacterizeFile(bad, nil); err == nil {
		t.Error("corrupt file did not error")
	}
}

// TestStageTimingsPopulated: the verbose pipeline exposes non-trivial
// per-stage timings through AnalyzerOptions.Stats.
func TestStageTimingsPopulated(t *testing.T) {
	w, err := New("hacc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, equivSpec(w, 1))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultAnalyzerOptions()
	var timings AnalyzerTimings
	opt.Stats = &timings
	if c := CharacterizeWith(res, opt); c == nil {
		t.Fatal("nil characterization")
	}
	if timings.TraceMerge <= 0 {
		t.Error("TraceMerge timing not recorded")
	}
	if timings.Columnarize <= 0 {
		t.Error("Columnarize timing not recorded")
	}
	if timings.Analyze <= 0 {
		t.Error("Analyze timing not recorded")
	}
}

// TestConcurrentCharacterizeFile hammers CharacterizeFileWith over the same
// on-disk log from many goroutines at once: every call must produce a
// byte-identical YAML artifact. This is the contract vanid's worker pool
// rests on — concurrent jobs over shared spool files share nothing mutable.
func TestConcurrentCharacterizeFile(t *testing.T) {
	dir := t.TempDir()
	tr := syntheticTrace(3*16384 + 77)
	for _, tf := range []TraceFormat{TraceFormatV1, TraceFormatV2} {
		t.Run(tf.String(), func(t *testing.T) {
			path := filepath.Join(dir, tf.String()+".trc")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteTraceFormat(f, tr, tf); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			opt := DefaultAnalyzerOptions()
			opt.Filter = TraceFilter{Ranks: []int32{0, 1, 2, 3}, Ops: OpClassData}
			want, err := CharacterizeFileWith(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			wantYAML := ToYAML(want)

			const goroutines = 8
			results := make([][]byte, goroutines)
			errs := make([]error, goroutines)
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					o := DefaultAnalyzerOptions()
					o.Filter = TraceFilter{Ranks: []int32{0, 1, 2, 3}, Ops: OpClassData}
					o.Parallelism = 1 + g%4
					c, err := CharacterizeFileWith(path, o)
					if err != nil {
						errs[g] = err
						return
					}
					results[g] = ToYAML(c)
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("goroutine %d: %v", g, errs[g])
				}
				if !bytes.Equal(results[g], wantYAML) {
					t.Errorf("goroutine %d (par=%d): YAML differs from serial run", g, 1+g%4)
				}
			}
		})
	}
}

// TestCharacterizeFileContextCanceled: an already-canceled context aborts
// both decode paths with a bare context.Canceled, for both formats.
func TestCharacterizeFileContextCanceled(t *testing.T) {
	dir := t.TempDir()
	tr := syntheticTrace(2 * 16384)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tf := range []TraceFormat{TraceFormatV1, TraceFormatV2} {
		path := filepath.Join(dir, tf.String()+".trc")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteTraceFormat(f, tr, tf); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		_, err = CharacterizeFileContext(ctx, path, DefaultAnalyzerOptions())
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", tf, err)
		}
	}
}

// TestCharacterizeContextMatches: the context variant with a background
// context produces the same characterization as CharacterizeWith.
func TestCharacterizeContextMatches(t *testing.T) {
	w, err := New("hacc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, equivSpec(w, 9))
	if err != nil {
		t.Fatal(err)
	}
	want := ToYAML(CharacterizeWith(res, DefaultAnalyzerOptions()))
	c, err := CharacterizeContext(context.Background(), res, DefaultAnalyzerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, ToYAML(c)) {
		t.Error("CharacterizeContext YAML differs from CharacterizeWith")
	}
}
