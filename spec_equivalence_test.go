package vani

import (
	"bytes"
	"reflect"
	"testing"

	"vani/internal/spec"
)

// TestGoldenSpecEquivalence is the spec DSL's contract: each golden spec
// re-states a hand-coded generator, and the compiled workload's
// characterization YAML is byte-identical to the generator's — baseline
// and optimized, across seeds.
func TestGoldenSpecEquivalence(t *testing.T) {
	for _, name := range spec.GoldenNames() {
		doc, err := spec.Golden(name)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		compiled := doc.Compile()
		hand, err := New(name)
		if err != nil {
			t.Fatalf("%s: no hand-coded generator: %v", name, err)
		}
		if got, want := compiled.Name(), hand.Name(); got != want {
			t.Errorf("%s: Name() = %q, want %q", name, got, want)
		}
		if got, want := compiled.AppName(), hand.AppName(); got != want {
			t.Errorf("%s: AppName() = %q, want %q", name, got, want)
		}
		if got, want := compiled.DefaultSpec(), hand.DefaultSpec(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: DefaultSpec() = %+v, want %+v", name, got, want)
		}
		for _, optimized := range []bool{false, true} {
			for _, seed := range []int64{1, 2} {
				sp := equivSpec(hand, seed)
				sp.Optimized = optimized
				hres, err := Run(hand, sp)
				if err != nil {
					t.Fatalf("%s optimized=%v seed=%d: hand run: %v", name, optimized, seed, err)
				}
				cres, err := Run(compiled, sp)
				if err != nil {
					t.Fatalf("%s optimized=%v seed=%d: spec run: %v", name, optimized, seed, err)
				}
				want := characterizeYAML(t, hres, 1)
				got := characterizeYAML(t, cres, 1)
				if !bytes.Equal(want, got) {
					t.Errorf("%s optimized=%v seed=%d: spec-compiled characterization differs from hand-coded (%d vs %d bytes)",
						name, optimized, seed, len(got), len(want))
				}
			}
		}
	}
}
