// Command benchcmp guards against codec-throughput regressions: it compares
// the BenchmarkCompressedDomain MB/s figures of a freshly captured bench
// record (scripts/benchjson output) against a committed baseline and exits
// nonzero when any arm lost more than the allowed fraction.
//
// Usage: benchcmp [-max-regress 0.15] baseline.json new.json
//
// Sub-benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix so records captured at different core counts still line up; a
// core-count mismatch is reported as a warning because absolute MB/s is only
// comparable like for like. Arms present in the baseline but missing from
// the new record are an error — a silently dropped bench is not a pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
)

type result struct {
	Name     string  `json:"name"`
	MBPerSec float64 `json:"mb_per_s"`
}

type record struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []result `json:"results"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func load(path, prefix string) (record, map[string]float64, error) {
	var rec record
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, nil, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, nil, fmt.Errorf("%s: %w", path, err)
	}
	mbs := make(map[string]float64)
	for _, r := range rec.Results {
		name := procSuffix.ReplaceAllString(r.Name, "")
		if strings.HasPrefix(name, prefix) && r.MBPerSec > 0 {
			mbs[name] = r.MBPerSec
		}
	}
	return rec, mbs, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.15,
		"maximum allowed fractional MB/s loss per arm before failing")
	prefix := flag.String("prefix", "BenchmarkCompressedDomain",
		"benchmark name prefix to compare")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-max-regress 0.15] baseline.json new.json")
		os.Exit(2)
	}

	baseRec, base, err := load(flag.Arg(0), *prefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newRec, cur, err := load(flag.Arg(1), *prefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: baseline %s has no %s results with MB/s\n",
			flag.Arg(0), *prefix)
		os.Exit(1)
	}
	if baseRec.GOMAXPROCS != newRec.GOMAXPROCS {
		fmt.Fprintf(os.Stderr,
			"benchcmp: warning: gomaxprocs differs (baseline %d, new %d); MB/s deltas include the core-count change\n",
			baseRec.GOMAXPROCS, newRec.GOMAXPROCS)
	}

	failed := false
	for name, want := range base {
		got, ok := cur[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL %s: present in baseline, missing from new record\n", name)
			failed = true
			continue
		}
		delta := (got - want) / want
		status := "ok"
		if delta < -*maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchcmp: %-4s %s: %.2f -> %.2f MB/s (%+.1f%%)\n",
			status, name, want, got, 100*delta)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: throughput regressed more than %.0f%% against %s\n",
			100**maxRegress, flag.Arg(0))
		os.Exit(1)
	}
}
