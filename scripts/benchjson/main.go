// Command benchjson converts `go test -bench` output into the JSON bench
// record scripts/bench.sh publishes (BENCH_PR2.json): one entry per
// benchmark with ns/op and any extra metric pairs the bench emits (MB/s
// from SetBytes, B/op and allocs/op from -benchmem, custom ReportMetric
// units), plus environment fields (GOMAXPROCS, CPU count, go version) and
// the derived analyzer and codec speedups.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type result struct {
	Name string  `json:"name"`
	N    int64   `json:"iterations"`
	NsOp float64 `json:"ns_per_op"`
	// Standard throughput/allocation metrics, present when the bench
	// calls SetBytes / runs under -benchmem.
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any other ReportMetric units (events/op, speedup, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

type record struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Note       string   `json:"note"`
	Results    []result `json:"results"`
	// AnalyzerSpeedup is seq-ns/par-ns of BenchmarkAnalyzerParallelism —
	// PR1's headline number. Meaningful only when gomaxprocs > 1.
	AnalyzerSpeedup float64 `json:"analyzer_speedup_seq_over_par"`
	// DecodeSpeedup is v1-serial-ns/v2-parallel-ns of
	// BenchmarkTraceDecodeToTable — the VANITRC2 headline number: how much
	// faster log bytes turn into analyzable column chunks under the block
	// format's parallel decode than under the v1 serial stream.
	DecodeSpeedup float64 `json:"decode_speedup_v1_over_v2par"`
	// PrunedScanSpeedup is full-ns/window25-pruned-ns of
	// BenchmarkScanPlanner — the scan-planner headline number: how much
	// faster a 25% time window characterizes when the predicate pushes down
	// to the footer index than materializing the whole log. Both cases
	// report MB/s over the same encoded bytes.
	PrunedScanSpeedup float64 `json:"pruned_scan_speedup_full_over_window25,omitempty"`
	// ProjectedScanSpeedup extends the pruned scan with a declared
	// two-column projection (window25-projected), skipping the other nine
	// column decodes entirely.
	ProjectedScanSpeedup float64 `json:"projected_scan_speedup_full_over_window25,omitempty"`
	// CodecDecodeSpeedup is v21-flate-ns/v22-auto-ns of
	// BenchmarkCodecMatrix — the v2.2 headline number: how much faster a
	// full-column scan decodes under the per-segment cost-model codecs
	// than under the v2.1 varint layout wrapped in flate.
	CodecDecodeSpeedup float64 `json:"codec_decode_speedup_v21flate_over_v22auto,omitempty"`
	// CodecSizeRatio is the v22-auto encoded size over the v21-flate
	// encoded size on the same fixture. The regression guard requires
	// this to stay at or below 1.05.
	CodecSizeRatio float64 `json:"codec_size_ratio_v22auto_over_v21flate,omitempty"`
	// CompressedDomainSpeedup is kernels-off-ns/kernels-on-ns of
	// BenchmarkCompressedDomain — the compressed-domain execution headline:
	// the same filtered full characterization with the kernel registry
	// serving the predicate from encoded segments vs the materialized row
	// path. The bench also records the allocs/op of both arms; the
	// compressed path must win both.
	CompressedDomainSpeedup float64 `json:"compressed_domain_speedup_off_over_on,omitempty"`
	// GroupedAggSpeedup is grouped-off-ns/grouped-on-ns of
	// BenchmarkGroupedAgg — the grouped-execution headline: the full
	// unfiltered characterization with aggregation running on dictionary
	// codes and key-column runs vs the same analyzer with the grouped path
	// disabled. Outputs are byte-identical; the grouped arm must also hold
	// allocs/op at or below the off arm.
	GroupedAggSpeedup float64 `json:"grouped_agg_speedup_off_over_on,omitempty"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson <go-test-bench-output-file>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	rec := record{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "speedups are wall-clock ratios of paths with bit-identical outputs; " +
			"on a single-core runner (gomaxprocs=1) parallel paths degenerate to " +
			"sequential, so analyzer_speedup stays ~1 by design while " +
			"decode_speedup still shows the v2 block decoder's contiguous-buffer " +
			"advantage over the v1 byte-at-a-time stream.",
	}
	var seqNs, parNs, v1Ns, v2ParNs, fullNs, prunedNs, projNs float64
	var v21FlateNs, v22AutoNs, v21FlateBytes, v22AutoBytes float64
	var kernelsOnNs, kernelsOffNs float64
	var groupedOnNs, groupedOffNs float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name iterations ns/op "ns/op" [value unit]...
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		n, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := result{Name: fields[0], N: n, NsOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "MB/s":
				r.MBPerSec = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[fields[i+1]] = v
			}
		}
		rec.Results = append(rec.Results, r)
		switch {
		case strings.HasPrefix(r.Name, "BenchmarkAnalyzerParallelism/seq"):
			seqNs = ns
		case strings.HasPrefix(r.Name, "BenchmarkAnalyzerParallelism/par"):
			parNs = ns
		case strings.HasPrefix(r.Name, "BenchmarkTraceDecodeToTable/v1-serial"):
			v1Ns = ns
		case strings.HasPrefix(r.Name, "BenchmarkTraceDecodeToTable/v2-parallel"):
			v2ParNs = ns
		case strings.HasPrefix(r.Name, "BenchmarkScanPlanner/full"):
			fullNs = ns
		case strings.HasPrefix(r.Name, "BenchmarkScanPlanner/window25-pruned"):
			prunedNs = ns
		case strings.HasPrefix(r.Name, "BenchmarkScanPlanner/window25-projected"):
			projNs = ns
		case strings.HasPrefix(r.Name, "BenchmarkCodecMatrix/v21-flate"):
			v21FlateNs = ns
			v21FlateBytes = r.Extra["enc-bytes"]
		case strings.HasPrefix(r.Name, "BenchmarkCodecMatrix/v22-auto"):
			v22AutoNs = ns
			v22AutoBytes = r.Extra["enc-bytes"]
		case strings.HasPrefix(r.Name, "BenchmarkCompressedDomain/kernels-on"):
			kernelsOnNs = ns
		case strings.HasPrefix(r.Name, "BenchmarkCompressedDomain/kernels-off"):
			kernelsOffNs = ns
		case strings.HasPrefix(r.Name, "BenchmarkGroupedAgg/grouped-on"):
			groupedOnNs = ns
		case strings.HasPrefix(r.Name, "BenchmarkGroupedAgg/grouped-off"):
			groupedOffNs = ns
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if seqNs > 0 && parNs > 0 {
		rec.AnalyzerSpeedup = seqNs / parNs
	}
	if v1Ns > 0 && v2ParNs > 0 {
		rec.DecodeSpeedup = v1Ns / v2ParNs
	}
	if fullNs > 0 && prunedNs > 0 {
		rec.PrunedScanSpeedup = fullNs / prunedNs
	}
	if fullNs > 0 && projNs > 0 {
		rec.ProjectedScanSpeedup = fullNs / projNs
	}
	if v21FlateNs > 0 && v22AutoNs > 0 {
		rec.CodecDecodeSpeedup = v21FlateNs / v22AutoNs
	}
	if v21FlateBytes > 0 && v22AutoBytes > 0 {
		rec.CodecSizeRatio = v22AutoBytes / v21FlateBytes
	}
	if kernelsOnNs > 0 && kernelsOffNs > 0 {
		rec.CompressedDomainSpeedup = kernelsOffNs / kernelsOnNs
	}
	if groupedOnNs > 0 && groupedOffNs > 0 {
		rec.GroupedAggSpeedup = groupedOffNs / groupedOnNs
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
