// Command benchjson converts `go test -bench` output into the JSON bench
// record scripts/bench.sh publishes (BENCH_PR1.json): one entry per
// benchmark with ns/op, plus environment fields (GOMAXPROCS, CPU count,
// go version) and the derived sequential/parallel analyzer speedup.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type result struct {
	Name string  `json:"name"`
	N    int64   `json:"iterations"`
	NsOp float64 `json:"ns_per_op"`
}

type record struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Note       string   `json:"note"`
	Results    []result `json:"results"`
	// AnalyzerSpeedup is seq-ns/par-ns of BenchmarkAnalyzerParallelism —
	// the tentpole's headline number. Meaningful only when gomaxprocs > 1.
	AnalyzerSpeedup float64 `json:"analyzer_speedup_seq_over_par"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson <go-test-bench-output-file>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	rec := record{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "analyzer_speedup is wall-clock seq/par of the fused chunk-parallel " +
			"analysis; on a single-core runner (gomaxprocs=1) the parallel path " +
			"degenerates to sequential and the ratio stays ~1 by design " +
			"(outputs are bit-identical at every parallelism).",
	}
	var seqNs, parNs float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name iterations ns/op "ns/op" [extra metrics...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		n, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		rec.Results = append(rec.Results, result{Name: fields[0], N: n, NsOp: ns})
		if strings.HasPrefix(fields[0], "BenchmarkAnalyzerParallelism/seq") {
			seqNs = ns
		}
		if strings.HasPrefix(fields[0], "BenchmarkAnalyzerParallelism/par") {
			parNs = ns
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if seqNs > 0 && parNs > 0 {
		rec.AnalyzerSpeedup = seqNs / parNs
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
