#!/bin/sh
# bench.sh — run the analysis-pipeline and trace-codec benchmarks and emit
# a JSON record.
#
# Usage: scripts/bench.sh [out.json]
#
# Captures the sequential-vs-parallel analyzer and columnarizer benchmarks,
# the row-major-vs-columnar ablation, the VANITRC1-vs-VANITRC2 codec
# throughput benches, the scan-planner pushdown benches, the per-codec
# matrix (encoded size and full-column-scan decode MB/s for v2.1, v2.1+flate
# and every v2.2 segment codec), the compressed-domain execution bench
# (filtered full characterization, kernels on vs off), the grouped
# execution bench (unfiltered full characterization, grouped aggregation on
# vs off), and the filtered grouped bench (filtered characterization with
# selection-backed grouped execution on vs off), with -benchmem so bytes/op
# and allocs/op land in the record.
# BENCH_PR1.json was captured at GOMAXPROCS=1, which hid
# every parallel speedup; this harness records GOMAXPROCS and refuses to
# publish a single-core record from a multi-core machine unless explicitly
# allowed with BENCH_ALLOW_SINGLE_CORE=1.
#
# After writing the record, the compressed-domain MB/s figures are compared
# against the committed BENCH_PR6.json baseline, the grouped-execution
# figures against BENCH_PR7.json, and the filtered grouped figures against
# BENCH_PR10.json; a loss of more than 15% on any arm of any bench fails
# the run. Set BENCH_SKIP_REGRESSION=1 to record anyway.
set -eu

out="${1:-BENCH_PR10.json}"
cd "$(dirname "$0")/.."

ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
gomax="${GOMAXPROCS:-$ncpu}"
if [ "$ncpu" -gt 1 ] && [ "$gomax" -le 1 ] && [ "${BENCH_ALLOW_SINGLE_CORE:-0}" != "1" ]; then
    echo "bench.sh: GOMAXPROCS=$gomax on a $ncpu-core machine hides parallel speedups." >&2
    echo "bench.sh: unset GOMAXPROCS, or set BENCH_ALLOW_SINGLE_CORE=1 to record anyway." >&2
    exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp" "$tmp.cd"' EXIT

go test -run '^$' \
    -bench 'BenchmarkAnalyzerParallelism|BenchmarkColumnarize|BenchmarkAblation_ColumnarAnalysis|BenchmarkTraceCodec|BenchmarkTraceEncode|BenchmarkTraceDecodeToTable|BenchmarkScanPlanner|BenchmarkCodecMatrix' \
    -benchmem -benchtime 10x -timeout 30m . | tee "$tmp"

# The compressed-domain and grouped-execution comparisons need more
# iterations than the suite default (their headlines are allocs/op deltas
# between two paths, and short runs fold one-time pool warmup into the
# count) and several counts per arm: the arms run back to back, so a single
# sample is at the mercy of whatever else the machine schedules during one
# arm. Publish the fastest sample of each arm — the allocation counts are
# deterministic and identical across samples.
go test -run '^$' \
    -bench 'BenchmarkCompressedDomain|BenchmarkGroupedAgg|BenchmarkGroupedFiltered' \
    -benchmem -benchtime 100x -count 3 -timeout 30m . \
  | tee "$tmp.cd"
awk '/^BenchmarkCompressedDomain|^BenchmarkGroupedAgg|^BenchmarkGroupedFiltered/ {
       if (!($1 in best) || $3+0 < best[$1]) { best[$1]=$3+0; line[$1]=$0 }
     }
     END { for (k in line) print line[k] }' "$tmp.cd" >> "$tmp"
rm -f "$tmp.cd"

go run ./scripts/benchjson "$tmp" > "$out"
echo "wrote $out"

if [ "${BENCH_SKIP_REGRESSION:-0}" != "1" ] && [ -f BENCH_PR6.json ] && [ "$out" != "BENCH_PR6.json" ]; then
    echo "== regression guard: BenchmarkCompressedDomain vs BENCH_PR6.json =="
    go run ./scripts/benchcmp BENCH_PR6.json "$out"
fi
if [ "${BENCH_SKIP_REGRESSION:-0}" != "1" ] && [ -f BENCH_PR7.json ] && [ "$out" != "BENCH_PR7.json" ]; then
    echo "== regression guard: BenchmarkGroupedAgg vs BENCH_PR7.json =="
    go run ./scripts/benchcmp -prefix BenchmarkGroupedAgg BENCH_PR7.json "$out"
fi
if [ "${BENCH_SKIP_REGRESSION:-0}" != "1" ] && [ -f BENCH_PR10.json ] && [ "$out" != "BENCH_PR10.json" ]; then
    echo "== regression guard: BenchmarkGroupedFiltered vs BENCH_PR10.json =="
    go run ./scripts/benchcmp -prefix BenchmarkGroupedFiltered BENCH_PR10.json "$out"
fi
