#!/bin/sh
# bench.sh — run the analysis-pipeline benchmarks and emit a JSON record.
#
# Usage: scripts/bench.sh [out.json]
#
# Captures the sequential-vs-parallel analyzer and columnarizer benchmarks
# plus the row-major-vs-columnar ablation, and records GOMAXPROCS so
# speedups are interpretable (a 1-core runner cannot show one).
set -eu

out="${1:-BENCH_PR1.json}"
cd "$(dirname "$0")/.."

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench 'BenchmarkAnalyzerParallelism|BenchmarkColumnarize|BenchmarkAblation_ColumnarAnalysis' \
    -benchtime 10x -timeout 20m . | tee "$tmp"

go run ./scripts/benchjson "$tmp" > "$out"
echo "wrote $out"
