#!/bin/sh
# bench.sh — run the analysis-pipeline and trace-codec benchmarks and emit
# a JSON record.
#
# Usage: scripts/bench.sh [out.json]
#
# Captures the sequential-vs-parallel analyzer and columnarizer benchmarks,
# the row-major-vs-columnar ablation, the VANITRC1-vs-VANITRC2 codec
# throughput benches, the scan-planner pushdown benches, and the per-codec
# matrix (encoded size and full-column-scan decode MB/s for v2.1, v2.1+flate
# and every v2.2 segment codec), with -benchmem so bytes/op and allocs/op
# land in the record. BENCH_PR1.json was captured at GOMAXPROCS=1, which hid
# every parallel speedup; this harness records GOMAXPROCS and refuses to
# publish a single-core record from a multi-core machine unless explicitly
# allowed with BENCH_ALLOW_SINGLE_CORE=1.
set -eu

out="${1:-BENCH_PR5.json}"
cd "$(dirname "$0")/.."

ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
gomax="${GOMAXPROCS:-$ncpu}"
if [ "$ncpu" -gt 1 ] && [ "$gomax" -le 1 ] && [ "${BENCH_ALLOW_SINGLE_CORE:-0}" != "1" ]; then
    echo "bench.sh: GOMAXPROCS=$gomax on a $ncpu-core machine hides parallel speedups." >&2
    echo "bench.sh: unset GOMAXPROCS, or set BENCH_ALLOW_SINGLE_CORE=1 to record anyway." >&2
    exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench 'BenchmarkAnalyzerParallelism|BenchmarkColumnarize|BenchmarkAblation_ColumnarAnalysis|BenchmarkTraceCodec|BenchmarkTraceEncode|BenchmarkTraceDecodeToTable|BenchmarkScanPlanner|BenchmarkCodecMatrix' \
    -benchmem -benchtime 10x -timeout 30m . | tee "$tmp"

go run ./scripts/benchjson "$tmp" > "$out"
echo "wrote $out"
