#!/usr/bin/env bash
# End-to-end smoke test for vanid: generate a trace, serve it through the
# daemon, and assert the HTTP report is byte-identical to the CLI's YAML
# for the same trace and filter spec. Exercises upload, job polling, report
# fetch, the cache-hit path, and metrics.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
VANID_PID=""
cleanup() {
  [ -n "$VANID_PID" ] && kill "$VANID_PID" 2>/dev/null || true
  [ -n "$VANID_PID" ] && wait "$VANID_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cd "$ROOT"
echo "== building =="
go build -o "$WORK/wrun" ./cmd/wrun
go build -o "$WORK/vani" ./cmd/vani
go build -o "$WORK/vanid" ./cmd/vanid

echo "== generating quickstart trace (hacc, 8 nodes, 0.1 scale) =="
"$WORK/wrun" -w hacc -nodes 8 -scale 0.1 -o "$WORK/trace.trc" >/dev/null

FILTER_WINDOW="1s:30s"
FILTER_RANKS="0-15"

echo "== CLI reference report =="
"$WORK/vani" -t "$WORK/trace.trc" -window "$FILTER_WINDOW" -ranks "$FILTER_RANKS" \
  -yaml "$WORK/cli.yaml" >/dev/null

echo "== starting vanid =="
"$WORK/vanid" -addr 127.0.0.1:0 -addr-file "$WORK/addr" -workers 2 \
  -spool-dir "$WORK/spool" &
VANID_PID=$!

for i in $(seq 1 100); do
  [ -s "$WORK/addr" ] && break
  kill -0 "$VANID_PID" 2>/dev/null || { echo "vanid died during startup"; exit 1; }
  sleep 0.1
done
ADDR="$(cat "$WORK/addr" | tr -d '[:space:]')"
BASE="http://$ADDR"

for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== uploading trace =="
UPLOAD="$(curl -fsS --data-binary @"$WORK/trace.trc" \
  "$BASE/v1/traces?window=$FILTER_WINDOW&ranks=$FILTER_RANKS")"
echo "$UPLOAD"
JOB_ID="$(printf '%s' "$UPLOAD" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
REPORT_ID="$(printf '%s' "$UPLOAD" | sed -n 's/.*"report_id": *"\([^"]*\)".*/\1/p')"
[ -n "$JOB_ID" ] || { echo "no job id in upload response"; exit 1; }
[ -n "$REPORT_ID" ] || { echo "no report id in upload response"; exit 1; }

echo "== polling job $JOB_ID =="
STATUS=""
for i in $(seq 1 200); do
  JOB="$(curl -fsS "$BASE/v1/jobs/$JOB_ID")"
  STATUS="$(printf '%s' "$JOB" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p')"
  case "$STATUS" in
    done) break ;;
    failed) echo "job failed: $JOB"; exit 1 ;;
  esac
  sleep 0.1
done
[ "$STATUS" = "done" ] || { echo "job did not finish: $STATUS"; exit 1; }

echo "== fetching report $REPORT_ID =="
curl -fsS "$BASE/v1/reports/$REPORT_ID" -o "$WORK/http.yaml"

echo "== diffing HTTP report vs CLI output =="
cmp "$WORK/cli.yaml" "$WORK/http.yaml" || {
  echo "FAIL: served report differs from CLI output"
  diff "$WORK/cli.yaml" "$WORK/http.yaml" | head -20
  exit 1
}
echo "reports are byte-identical"

echo "== re-uploading (must be a cache hit) =="
SECOND="$(curl -fsS --data-binary @"$WORK/trace.trc" \
  "$BASE/v1/traces?window=$FILTER_WINDOW&ranks=$FILTER_RANKS")"
printf '%s' "$SECOND" | grep -q '"status": *"done"' || {
  echo "FAIL: second upload was not served from cache: $SECOND"; exit 1
}
METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS"
HITS="$(printf '%s' "$METRICS" | sed -n 's/.*"cache_hits": *\([0-9]*\).*/\1/p')"
[ "${HITS:-0}" -ge 1 ] || { echo "FAIL: no cache hit recorded"; exit 1; }

echo "== re-querying with a different filter (shared block cache, zero re-decodes) =="
# A different filter misses the result cache, so the trace characterizes
# again — but every block must come decoded out of the shared block cache:
# block_cache_hits rises and scan_decoded_bytes does not move.
DECODED_BEFORE="$(printf '%s' "$METRICS" | sed -n 's/.*"scan_decoded_bytes": *\([0-9]*\).*/\1/p')"
THIRD="$(curl -fsS --data-binary @"$WORK/trace.trc" \
  "$BASE/v1/traces?window=$FILTER_WINDOW&ranks=0-7")"
JOB3="$(printf '%s' "$THIRD" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$JOB3" ] || { echo "no job id in third upload response"; exit 1; }
STATUS=""
for i in $(seq 1 200); do
  JOB="$(curl -fsS "$BASE/v1/jobs/$JOB3")"
  STATUS="$(printf '%s' "$JOB" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p')"
  case "$STATUS" in
    done) break ;;
    failed) echo "job failed: $JOB"; exit 1 ;;
  esac
  sleep 0.1
done
[ "$STATUS" = "done" ] || { echo "third job did not finish: $STATUS"; exit 1; }
METRICS2="$(curl -fsS "$BASE/metrics")"
echo "$METRICS2"
BLOCK_HITS="$(printf '%s' "$METRICS2" | sed -n 's/.*"block_cache_hits": *\([0-9]*\).*/\1/p')"
DECODED_AFTER="$(printf '%s' "$METRICS2" | sed -n 's/.*"scan_decoded_bytes": *\([0-9]*\).*/\1/p')"
[ "${BLOCK_HITS:-0}" -ge 1 ] || { echo "FAIL: no block cache hit recorded"; exit 1; }
[ "${DECODED_AFTER:-0}" -eq "${DECODED_BEFORE:-1}" ] || {
  echo "FAIL: repeated query re-decoded blocks ($DECODED_BEFORE -> $DECODED_AFTER)"; exit 1
}
echo "block cache served the repeated query without decoding"

echo "== pprof must be absent (daemon started without -pprof) =="
PPROF_CODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/debug/pprof/")"
[ "$PPROF_CODE" = "404" ] || {
  echo "FAIL: /debug/pprof/ answered $PPROF_CODE without -pprof"; exit 1
}
echo "pprof endpoints are absent without -pprof"

echo "== graceful shutdown =="
kill -TERM "$VANID_PID"
wait "$VANID_PID"
VANID_PID=""
echo "SMOKE OK"
