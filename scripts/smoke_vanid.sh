#!/usr/bin/env bash
# End-to-end smoke test for vanid: generate a trace, serve it through the
# daemon, and assert the HTTP report is byte-identical to the CLI's YAML
# for the same trace and filter spec. Exercises upload, job polling, report
# fetch, the cache-hit path, and metrics.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
VANID_PID=""
cleanup() {
  [ -n "$VANID_PID" ] && kill "$VANID_PID" 2>/dev/null || true
  [ -n "$VANID_PID" ] && wait "$VANID_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cd "$ROOT"
echo "== building =="
go build -o "$WORK/wrun" ./cmd/wrun
go build -o "$WORK/vani" ./cmd/vani
go build -o "$WORK/vanid" ./cmd/vanid

echo "== generating quickstart trace (hacc, 8 nodes, 0.1 scale) =="
"$WORK/wrun" -w hacc -nodes 8 -scale 0.1 -o "$WORK/trace.trc" >/dev/null

FILTER_WINDOW="1s:30s"
FILTER_RANKS="0-15"

echo "== CLI reference report =="
"$WORK/vani" -t "$WORK/trace.trc" -window "$FILTER_WINDOW" -ranks "$FILTER_RANKS" \
  -yaml "$WORK/cli.yaml" -v >/dev/null 2>"$WORK/cli_verbose.txt"
grep -q 'groups: served=[0-9]* fallback=[0-9]* filtered-served=[0-9]* filtered-fallback=[0-9]* tl-served=[0-9]* tl-fallback=[0-9]*' \
  "$WORK/cli_verbose.txt" || {
  echo "FAIL: vani -v groups line missing filtered/tl counters"
  cat "$WORK/cli_verbose.txt"; exit 1
}

echo "== starting vanid =="
"$WORK/vanid" -addr 127.0.0.1:0 -addr-file "$WORK/addr" -workers 2 \
  -spool-dir "$WORK/spool" &
VANID_PID=$!

for i in $(seq 1 100); do
  [ -s "$WORK/addr" ] && break
  kill -0 "$VANID_PID" 2>/dev/null || { echo "vanid died during startup"; exit 1; }
  sleep 0.1
done
ADDR="$(cat "$WORK/addr" | tr -d '[:space:]')"
BASE="http://$ADDR"

for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== uploading trace =="
UPLOAD="$(curl -fsS --data-binary @"$WORK/trace.trc" \
  "$BASE/v1/traces?window=$FILTER_WINDOW&ranks=$FILTER_RANKS")"
echo "$UPLOAD"
JOB_ID="$(printf '%s' "$UPLOAD" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
REPORT_ID="$(printf '%s' "$UPLOAD" | sed -n 's/.*"report_id": *"\([^"]*\)".*/\1/p')"
[ -n "$JOB_ID" ] || { echo "no job id in upload response"; exit 1; }
[ -n "$REPORT_ID" ] || { echo "no report id in upload response"; exit 1; }

echo "== polling job $JOB_ID =="
STATUS=""
for i in $(seq 1 200); do
  JOB="$(curl -fsS "$BASE/v1/jobs/$JOB_ID")"
  STATUS="$(printf '%s' "$JOB" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p')"
  case "$STATUS" in
    done) break ;;
    failed) echo "job failed: $JOB"; exit 1 ;;
  esac
  sleep 0.1
done
[ "$STATUS" = "done" ] || { echo "job did not finish: $STATUS"; exit 1; }

echo "== fetching report $REPORT_ID =="
curl -fsS "$BASE/v1/reports/$REPORT_ID" -o "$WORK/http.yaml"

echo "== diffing HTTP report vs CLI output =="
cmp "$WORK/cli.yaml" "$WORK/http.yaml" || {
  echo "FAIL: served report differs from CLI output"
  diff "$WORK/cli.yaml" "$WORK/http.yaml" | head -20
  exit 1
}
echo "reports are byte-identical"

echo "== re-uploading (must be a cache hit) =="
SECOND="$(curl -fsS --data-binary @"$WORK/trace.trc" \
  "$BASE/v1/traces?window=$FILTER_WINDOW&ranks=$FILTER_RANKS")"
printf '%s' "$SECOND" | grep -q '"status": *"done"' || {
  echo "FAIL: second upload was not served from cache: $SECOND"; exit 1
}
METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS"
HITS="$(printf '%s' "$METRICS" | sed -n 's/.*"cache_hits": *\([0-9]*\).*/\1/p')"
[ "${HITS:-0}" -ge 1 ] || { echo "FAIL: no cache hit recorded"; exit 1; }

echo "== grouped/accumulator scan counters exposed in /metrics =="
# The upload ran a filtered scan (window + ranks), so at least one
# selection-backed chunk must have been re-cut and served by grouped
# execution, and every chunk pass ticks the run-aware accumulator
# counters one way or the other (served is codec-dependent).
GF_SERVED="$(printf '%s' "$METRICS" | sed -n 's/.*"scan_group_filtered_served": *\([0-9]*\).*/\1/p')"
TL_SERVED="$(printf '%s' "$METRICS" | sed -n 's/.*"scan_tl_kernels_served": *\([0-9]*\).*/\1/p')"
TL_FALLBACK="$(printf '%s' "$METRICS" | sed -n 's/.*"scan_tl_kernels_fallback": *\([0-9]*\).*/\1/p')"
[ -n "$GF_SERVED" ] || { echo "FAIL: scan_group_filtered_served missing from /metrics"; exit 1; }
[ -n "$TL_SERVED" ] || { echo "FAIL: scan_tl_kernels_served missing from /metrics"; exit 1; }
[ "${GF_SERVED:-0}" -ge 1 ] || {
  echo "FAIL: filtered scan served no grouped chunk (scan_group_filtered_served=$GF_SERVED)"; exit 1
}
[ "$((TL_SERVED + TL_FALLBACK))" -ge 1 ] || {
  echo "FAIL: no timeline/histogram accumulator passes recorded"; exit 1
}
echo "grouped-filtered and accumulator counters present (filtered-served=$GF_SERVED tl=$TL_SERVED/$TL_FALLBACK)"

echo "== re-querying with a different filter (shared block cache, zero re-decodes) =="
# A different filter misses the result cache, so the trace characterizes
# again — but every block must come decoded out of the shared block cache:
# block_cache_hits rises and scan_decoded_bytes does not move.
DECODED_BEFORE="$(printf '%s' "$METRICS" | sed -n 's/.*"scan_decoded_bytes": *\([0-9]*\).*/\1/p')"
THIRD="$(curl -fsS --data-binary @"$WORK/trace.trc" \
  "$BASE/v1/traces?window=$FILTER_WINDOW&ranks=0-7")"
JOB3="$(printf '%s' "$THIRD" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$JOB3" ] || { echo "no job id in third upload response"; exit 1; }
STATUS=""
for i in $(seq 1 200); do
  JOB="$(curl -fsS "$BASE/v1/jobs/$JOB3")"
  STATUS="$(printf '%s' "$JOB" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p')"
  case "$STATUS" in
    done) break ;;
    failed) echo "job failed: $JOB"; exit 1 ;;
  esac
  sleep 0.1
done
[ "$STATUS" = "done" ] || { echo "third job did not finish: $STATUS"; exit 1; }
METRICS2="$(curl -fsS "$BASE/metrics")"
echo "$METRICS2"
BLOCK_HITS="$(printf '%s' "$METRICS2" | sed -n 's/.*"block_cache_hits": *\([0-9]*\).*/\1/p')"
DECODED_AFTER="$(printf '%s' "$METRICS2" | sed -n 's/.*"scan_decoded_bytes": *\([0-9]*\).*/\1/p')"
[ "${BLOCK_HITS:-0}" -ge 1 ] || { echo "FAIL: no block cache hit recorded"; exit 1; }
[ "${DECODED_AFTER:-0}" -eq "${DECODED_BEFORE:-1}" ] || {
  echo "FAIL: repeated query re-decoded blocks ($DECODED_BEFORE -> $DECODED_AFTER)"; exit 1
}
echo "block cache served the repeated query without decoding"

echo "== pprof must be absent (daemon started without -pprof) =="
PPROF_CODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/debug/pprof/")"
[ "$PPROF_CODE" = "404" ] || {
  echo "FAIL: /debug/pprof/ answered $PPROF_CODE without -pprof"; exit 1
}
echo "pprof endpoints are absent without -pprof"

echo "== what-if sweep: 2-point grid through the service vs the CLI =="
cat > "$WORK/sweep.yaml" <<'SWEEP'
version: 1
name: smoke-sweep
base:
  nodes: 2
  ranks_per_node: 2
  scale: 0.01
  seed: 1
grid:
  - param: staging
    values:
      - pfs
      - node-local
workload: cosmoflow
SWEEP
SWEEP_RESP="$(curl -fsS --data-binary @"$WORK/sweep.yaml" "$BASE/v1/sweep")"
echo "$SWEEP_RESP"
SWEEP_JOB="$(printf '%s' "$SWEEP_RESP" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
SWEEP_REPORT="$(printf '%s' "$SWEEP_RESP" | sed -n 's/.*"report_id": *"\([^"]*\)".*/\1/p')"
[ -n "$SWEEP_JOB" ] || { echo "no job id in sweep response"; exit 1; }
STATUS=""
for i in $(seq 1 200); do
  JOB="$(curl -fsS "$BASE/v1/jobs/$SWEEP_JOB")"
  STATUS="$(printf '%s' "$JOB" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p')"
  case "$STATUS" in
    done) break ;;
    failed) echo "sweep job failed: $JOB"; exit 1 ;;
  esac
  sleep 0.1
done
[ "$STATUS" = "done" ] || { echo "sweep job did not finish: $STATUS"; exit 1; }
curl -fsS "$BASE/v1/reports/$SWEEP_REPORT" -o "$WORK/sweep_http.yaml"
"$WORK/vani" sweep -f "$WORK/sweep.yaml" -tables=false -yaml "$WORK/sweep_cli.yaml" >/dev/null
cmp "$WORK/sweep_cli.yaml" "$WORK/sweep_http.yaml" || {
  echo "FAIL: served sweep report differs from vani sweep output"
  diff "$WORK/sweep_cli.yaml" "$WORK/sweep_http.yaml" | head -20
  exit 1
}
echo "sweep reports are byte-identical"
SWEEP_METRICS="$(curl -fsS "$BASE/metrics")"
SWEEP_JOBS="$(printf '%s' "$SWEEP_METRICS" | sed -n 's/.*"sweep_jobs": *\([0-9]*\).*/\1/p')"
SWEEP_RUNS="$(printf '%s' "$SWEEP_METRICS" | sed -n 's/.*"sweep_runs": *\([0-9]*\).*/\1/p')"
[ "${SWEEP_JOBS:-0}" -eq 1 ] || { echo "FAIL: sweep_jobs=$SWEEP_JOBS, want 1"; exit 1; }
[ "${SWEEP_RUNS:-0}" -eq 2 ] || { echo "FAIL: sweep_runs=$SWEEP_RUNS, want 2"; exit 1; }
SWEEP_SECOND="$(curl -fsS --data-binary @"$WORK/sweep.yaml" "$BASE/v1/sweep")"
printf '%s' "$SWEEP_SECOND" | grep -q '"status": *"done"' || {
  echo "FAIL: resubmitted sweep was not served from cache: $SWEEP_SECOND"; exit 1
}
SWEEP_HITS="$(curl -fsS "$BASE/metrics" | sed -n 's/.*"sweep_cache_hits": *\([0-9]*\).*/\1/p')"
[ "${SWEEP_HITS:-0}" -ge 1 ] || { echo "FAIL: no sweep cache hit recorded"; exit 1; }
echo "resubmitted sweep served from cache"

echo "== graceful shutdown =="
kill -TERM "$VANID_PID"
wait "$VANID_PID"
VANID_PID=""

# ---------------------------------------------------------------------------
# Repository smoke: boot with -data-dir, store a small fleet, restart, force
# compaction — the fleet YAML must be byte-identical at every point, the
# compactor must measurably shrink the repo, and the read-only CLI must
# reproduce the service's answer.
# ---------------------------------------------------------------------------

poll_job() { # poll_job <base> <job-id>
  local st=""
  for i in $(seq 1 200); do
    st="$(curl -fsS "$1/v1/jobs/$2" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p')"
    case "$st" in
      done) return 0 ;;
      failed) echo "job $2 failed"; return 1 ;;
    esac
    sleep 0.1
  done
  echo "job $2 did not finish: $st"; return 1
}

repo_gauge() { # repo_gauge <metrics-json> <name>
  printf '%s' "$1" | sed -n "s/.*\"$2\": *\([0-9]*\).*/\1/p"
}

echo "== generating two more hacc traces for the fleet =="
"$WORK/wrun" -w hacc -nodes 4 -scale 0.1 -o "$WORK/trace2.trc" >/dev/null
"$WORK/wrun" -w hacc -nodes 2 -scale 0.1 -o "$WORK/trace3.trc" >/dev/null

echo "== starting vanid with a persistent repository =="
rm -f "$WORK/addr"
"$WORK/vanid" -addr 127.0.0.1:0 -addr-file "$WORK/addr" -workers 2 \
  -data-dir "$WORK/repo" &
VANID_PID=$!
for i in $(seq 1 100); do
  [ -s "$WORK/addr" ] && break
  kill -0 "$VANID_PID" 2>/dev/null || { echo "vanid died during startup"; exit 1; }
  sleep 0.1
done
BASE="http://$(cat "$WORK/addr" | tr -d '[:space:]')"
for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

echo "== uploading the three-trace fleet =="
for trc in trace trace2 trace3; do
  RESP="$(curl -fsS --data-binary @"$WORK/$trc.trc" "$BASE/v1/traces")"
  JID="$(printf '%s' "$RESP" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
  [ -n "$JID" ] || { echo "no job id uploading $trc"; exit 1; }
  poll_job "$BASE" "$JID"
done

METRICS_REPO="$(curl -fsS "$BASE/metrics")"
REPO_FILES="$(repo_gauge "$METRICS_REPO" repo_files)"
REPO_SHARDS="$(repo_gauge "$METRICS_REPO" repo_shards)"
REPO_BYTES_LOOSE="$(repo_gauge "$METRICS_REPO" repo_bytes)"
[ "${REPO_FILES:-0}" -eq 3 ] || { echo "FAIL: repo_files=$REPO_FILES, want 3"; exit 1; }
[ "${REPO_SHARDS:-0}" -ge 1 ] || { echo "FAIL: repo_shards=$REPO_SHARDS, want >= 1"; exit 1; }

echo "== fleet query (pre-restart) =="
curl -fsS "$BASE/fleet/query?workload=hacc" -o "$WORK/fleet1.yaml"
[ -s "$WORK/fleet1.yaml" ] || { echo "FAIL: empty fleet report"; exit 1; }

echo "== restarting vanid on the same data dir =="
kill -TERM "$VANID_PID"; wait "$VANID_PID"; VANID_PID=""
rm -f "$WORK/addr"
"$WORK/vanid" -addr 127.0.0.1:0 -addr-file "$WORK/addr" -workers 2 \
  -data-dir "$WORK/repo" &
VANID_PID=$!
for i in $(seq 1 100); do
  [ -s "$WORK/addr" ] && break
  kill -0 "$VANID_PID" 2>/dev/null || { echo "vanid died on restart"; exit 1; }
  sleep 0.1
done
BASE="http://$(cat "$WORK/addr" | tr -d '[:space:]')"
for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

curl -fsS "$BASE/fleet/query?workload=hacc" -o "$WORK/fleet2.yaml"
cmp "$WORK/fleet1.yaml" "$WORK/fleet2.yaml" || {
  echo "FAIL: restart changed the fleet report"
  diff "$WORK/fleet1.yaml" "$WORK/fleet2.yaml" | head -20
  exit 1
}
echo "fleet report survived the restart byte-identically"

echo "== forcing compaction =="
curl -fsS -X POST "$BASE/v1/compact"
METRICS_PACKED="$(curl -fsS "$BASE/metrics")"
COMPACTIONS="$(repo_gauge "$METRICS_PACKED" repo_compactions)"
REPO_BYTES_PACKED="$(repo_gauge "$METRICS_PACKED" repo_bytes)"
[ "${COMPACTIONS:-0}" -ge 1 ] || { echo "FAIL: repo_compactions=$COMPACTIONS, want >= 1"; exit 1; }
[ "${REPO_BYTES_PACKED:-0}" -lt "${REPO_BYTES_LOOSE:-0}" ] || {
  echo "FAIL: compaction did not shrink the repo ($REPO_BYTES_LOOSE -> $REPO_BYTES_PACKED bytes)"; exit 1
}
echo "compaction shrank the repo: $REPO_BYTES_LOOSE -> $REPO_BYTES_PACKED bytes"

curl -fsS "$BASE/fleet/query?workload=hacc" -o "$WORK/fleet3.yaml"
cmp "$WORK/fleet1.yaml" "$WORK/fleet3.yaml" || {
  echo "FAIL: compaction changed the fleet report"
  diff "$WORK/fleet1.yaml" "$WORK/fleet3.yaml" | head -20
  exit 1
}
echo "fleet report unchanged across compaction"

echo "== read-only CLI fleet query against the live data dir =="
"$WORK/vani" fleet -repo "$WORK/repo" -workload hacc -tables=false \
  -yaml "$WORK/fleet_cli.yaml" >/dev/null
cmp "$WORK/fleet1.yaml" "$WORK/fleet_cli.yaml" || {
  echo "FAIL: vani fleet differs from the served report"
  diff "$WORK/fleet1.yaml" "$WORK/fleet_cli.yaml" | head -20
  exit 1
}
echo "vani fleet matches the service byte-for-byte"

kill -TERM "$VANID_PID"
wait "$VANID_PID"
VANID_PID=""
echo "SMOKE OK"
