// Package vani reproduces "Extracting and characterizing I/O behavior of
// HPC workloads" (Devarajan & Mohror, LLNL, 2022) as a self-contained Go
// library: a simulated HPC storage stack, Recorder-style multilevel
// tracing, the six exemplar workloads, the Vani-style entity/attribute
// characterization, and the attribute-to-configuration advisor with the
// paper's two optimization case studies.
//
// The typical pipeline mirrors the paper's methodology:
//
//	w, _ := vani.New("cosmoflow")          // pick a workload
//	spec := w.DefaultSpec()                // Lassen-like 32-node job
//	res, _ := vani.Run(w, spec)            // simulate + trace (Recorder)
//	c := vani.Characterize(res)            // entities & attributes (Vani)
//	recs := vani.Advise(c)                 // Section IV-D mapping
//	vani.ApplyRecommendations(recs, &spec) // reconfigure the storage stack
//	opt, _ := vani.Run(w, spec)            // re-run optimized (Figures 7-8)
package vani

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"vani/internal/advisor"
	"vani/internal/core"
	"vani/internal/iface"
	"vani/internal/pipeline"
	"vani/internal/replay"
	"vani/internal/sim"
	"vani/internal/spec"
	"vani/internal/storage"
	"vani/internal/trace"
	"vani/internal/workloads"
	"vani/internal/yamlenc"
)

// Re-exported types: the facade's vocabulary is the internal packages'
// types under stable names.
type (
	// Spec configures a workload run (nodes, scale, tracing, storage).
	Spec = workloads.Spec
	// Workload is one of the six exemplar generators.
	Workload = workloads.Workload
	// Result is a completed simulated run with its trace.
	Result = workloads.Result
	// Trace is the Recorder-style multilevel event log.
	Trace = trace.Trace
	// Characterization is the full entity/attribute description.
	Characterization = core.Characterization
	// Recommendation is one advised storage-configuration change.
	Recommendation = advisor.Recommendation
	// StorageConfig holds the storage-stack performance model parameters.
	StorageConfig = storage.Config
	// Env is the assembled simulation environment a workload runs in;
	// custom Workload implementations receive it in Setup and Spawn.
	Env = workloads.Env
	// Proc is a simulated process (an MPI rank, a workflow task).
	Proc = sim.Proc
	// IOClient is the per-rank interface client (POSIX/STDIO/MPI-IO/HDF5).
	IOClient = iface.Client
)

// New constructs a workload by name: "cm1", "hacc", "cosmoflow", "jag",
// "montage-mpi", or "montage-pegasus".
func New(name string) (Workload, error) { return workloads.New(name) }

// Workloads lists the available workload names.
func Workloads() []string { return workloads.Names() }

// Run simulates the workload under spec and returns its trace and runtime.
func Run(w Workload, spec Spec) (*Result, error) { return workloads.Run(w, spec) }

// AnalyzerOptions tunes the characterization pipeline: phase gap, figure
// resolution, the Parallelism knob of the chunked scans, an optional
// Filter restricting the analysis to matching events, and an optional
// Stats sink for per-stage wall-clock timings. The output is bit-identical
// at every Parallelism setting.
type AnalyzerOptions = core.Options

// AnalyzerTimings receives per-stage wall-clock timings (trace-merge,
// columnarize, analyze) and the scan-plan counters (blocks pruned, bytes
// decoded) when wired into AnalyzerOptions.Stats.
type AnalyzerTimings = core.Timings

// TraceFilter selects a subset of trace events: a time window over event
// starts, a rank set, a level set, and an operation class. The zero value
// matches everything. On VANITRC2 logs the filter is pushed down to the
// block index — blocks the footer statistics rule out are never read — and
// the result is byte-identical to filtering the full decode in memory.
type TraceFilter = trace.Filter

// Operation classes for TraceFilter.Ops.
const (
	OpClassAll  = trace.OpClassAll
	OpClassData = trace.OpClassData
	OpClassMeta = trace.OpClassMeta
	OpClassIO   = trace.OpClassIO
)

// DefaultAnalyzerOptions returns the settings used for the paper tables.
func DefaultAnalyzerOptions() AnalyzerOptions { return core.DefaultOptions() }

// Characterize analyzes a run into the paper's entities and attributes.
func Characterize(res *Result) *Characterization {
	return CharacterizeWith(res, DefaultAnalyzerOptions())
}

// CharacterizeWith is Characterize with explicit analyzer options. A nil
// opt.Storage is filled from the run's spec; opt.Stats, when set, also
// receives the tracer's shard-merge time.
func CharacterizeWith(res *Result, opt AnalyzerOptions) *Characterization {
	if opt.Storage == nil {
		cfg := res.Spec.Storage
		opt.Storage = &cfg
	}
	if opt.Stats != nil {
		opt.Stats.TraceMerge = res.TraceMerge
	}
	return core.Analyze(res.Trace, opt)
}

// CharacterizeTrace analyzes a standalone trace (e.g. loaded from disk).
func CharacterizeTrace(tr *Trace, cfg *StorageConfig) *Characterization {
	opt := core.DefaultOptions()
	opt.Storage = cfg
	return core.Analyze(tr, opt)
}

// CharacterizeFile analyzes a trace log on disk by streaming it through
// the scanner straight into column chunks — the event log never
// materializes as a []Event, so traces larger than memory analyze fine.
func CharacterizeFile(path string, cfg *StorageConfig) (*Characterization, error) {
	opt := core.DefaultOptions()
	opt.Storage = cfg
	return CharacterizeFileWith(path, opt)
}

// CharacterizeFileWith is CharacterizeFile with explicit analyzer options.
// VANITRC2 logs decode block-parallel through the footer index straight
// into column chunks; VANITRC1 logs stream through the serial scanner.
// Both paths produce the identical characterization.
//
// When opt.Filter is set, the filter is pushed down the read path: on
// VANITRC2 logs whole blocks are pruned via the footer statistics, only
// the filter's columns are decoded up front, and the remaining columns
// materialize lazily as analysis kernels ask for them. The result is
// byte-identical to analyzing the filtered event set in memory.
func CharacterizeFileWith(path string, opt AnalyzerOptions) (*Characterization, error) {
	return CharacterizeFileContext(context.Background(), path, opt)
}

// CharacterizeContext is CharacterizeWith with cancellation: the analyzer's
// chunk-parallel workers observe ctx, so a canceled or timed-out caller
// aborts the analysis mid-scan. The returned error is ctx.Err() when the
// abort was a cancellation; with a background context it never fails and
// matches CharacterizeWith exactly.
func CharacterizeContext(ctx context.Context, res *Result, opt AnalyzerOptions) (*Characterization, error) {
	if opt.Storage == nil {
		cfg := res.Spec.Storage
		opt.Storage = &cfg
	}
	if opt.Stats != nil {
		opt.Stats.TraceMerge = res.TraceMerge
	}
	return core.AnalyzeContext(ctx, res.Trace, opt)
}

// CharacterizeFileContext is CharacterizeFileWith with cancellation: ctx is
// threaded through the block reader's physical reads, the column scans, and
// the analyzer's chunk-parallel workers, so a canceled or timed-out request
// stops decoding mid-trace instead of running the log to completion. The
// returned error is ctx.Err() when the abort was a cancellation.
func CharacterizeFileContext(ctx context.Context, path string, opt AnalyzerOptions) (*Characterization, error) {
	return pipeline.File(ctx, path, opt)
}

// CharacterizeBlocksContext analyzes a VANITRC2 block source — a
// BlockReader over an open file, or a shared decoded-block cache like
// vanid's — through the planned-scan path: the filter pushes down to the
// block index, predicates evaluate in the compressed domain where the
// kernel registry serves them, and the analyzer passes run span-fused over
// encoded segments, materializing only the columns no kernel can answer.
// The characterization is byte-identical to CharacterizeFileContext over
// the same log.
func CharacterizeBlocksContext(ctx context.Context, src trace.BlockSource, opt AnalyzerOptions) (*Characterization, error) {
	return pipeline.Blocks(ctx, src, opt)
}

// Advise maps a characterization to storage-configuration recommendations
// (Section IV-D).
func Advise(c *Characterization) []Recommendation { return advisor.Advise(c) }

// ApplyRecommendations rewrites spec according to the recommendations and
// returns the identifiers applied.
func ApplyRecommendations(recs []Recommendation, spec *Spec) []string {
	return advisor.Apply(recs, spec)
}

// Impact quantifies one recommendation's isolated effect (advisor.Evaluate).
type Impact = advisor.Impact

// EvaluateRecommendations measures each recommendation independently
// against the baseline run.
func EvaluateRecommendations(w Workload, spec Spec, recs []Recommendation) ([]Impact, error) {
	return advisor.Evaluate(w, spec, recs)
}

// Delta is one changed attribute between two characterizations.
type Delta = core.Delta

// CompareCharacterizations diffs two characterizations attribute by
// attribute (the before/after view of a reconfiguration).
func CompareCharacterizations(before, after *Characterization) []Delta {
	return core.Compare(before, after)
}

// ReplayOptions configures a trace replay (replay.Options).
type ReplayOptions = replay.Options

// ReplayResult is the outcome of a trace replay (replay.Result).
type ReplayResult = replay.Result

// Replay re-executes a captured trace against a candidate storage
// configuration — the what-if half of a self-configuring storage system.
func Replay(tr *Trace, opt ReplayOptions) (*ReplayResult, error) {
	return replay.Run(tr, opt)
}

// TuneCandidate labels one storage configuration for Tune.
type TuneCandidate = replay.Candidate

// TuneResult is one candidate's replayed outcome.
type TuneResult = replay.TrialResult

// Tune replays the trace under every candidate configuration and returns
// the results fastest first.
func Tune(tr *Trace, candidates []TuneCandidate, opt ReplayOptions) ([]TuneResult, error) {
	return replay.Tune(tr, candidates, opt)
}

// ToYAML renders the characterization as the YAML artifact the paper's
// Analyzer produces for storage systems to load.
func ToYAML(c *Characterization) []byte { return yamlenc.Marshal(c) }

// FromYAML loads a characterization previously written by ToYAML — the
// storage-system side of the paper's vision.
func FromYAML(data []byte) (*Characterization, error) {
	var c Characterization
	if err := yamlenc.Decode(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// TraceFormat selects an on-disk trace log format version.
type TraceFormat = trace.Format

// Supported trace formats: VANITRC1 (serial stream) and VANITRC2
// (block-structured, parallel encode/decode).
const (
	TraceFormatV1 = trace.FormatV1
	TraceFormatV2 = trace.FormatV2
)

// ParseTraceFormat parses a flag-style format name ("v1", "v2").
func ParseTraceFormat(s string) (TraceFormat, error) { return trace.ParseFormat(s) }

// WriteTrace encodes a trace to w in the default on-disk format (VANITRC2,
// the block-structured log). Use WriteTraceFormat for an explicit version.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.WriteV2(w, tr) }

// WriteTraceFormat encodes a trace to w in the requested format.
func WriteTraceFormat(w io.Writer, tr *Trace, f TraceFormat) error {
	return trace.WriteFormat(w, tr, f)
}

// TraceCodec selects the per-segment column codec strategy of the VANITRC2
// writer: the v2.2 cost model (auto), the v2.1 raw-varint layout, or one
// forced segment codec.
type TraceCodec = trace.CodecMode

// Supported codec strategies.
const (
	TraceCodecAuto = trace.CodecAuto
	TraceCodecV21  = trace.CodecV21
)

// ParseTraceCodec parses a flag-style codec name ("auto", "v21", "raw",
// "rle", "dict", "for").
func ParseTraceCodec(s string) (TraceCodec, error) { return trace.ParseCodecMode(s) }

// TraceWriteOptions configures WriteTraceWith. The zero value is the
// default encoding: VANITRC2, v2.2 auto codecs, no outer compression.
type TraceWriteOptions struct {
	Format   TraceFormat // 0 means TraceFormatV2
	Compress bool        // flate-wrap v2 block payloads (outer layer)
	Codec    TraceCodec  // column codec strategy (v2 only)
}

// WriteTraceWith encodes a trace to w under explicit format, compression
// and codec choices. Codec and Compress apply only to the v2 format.
func WriteTraceWith(w io.Writer, tr *Trace, opt TraceWriteOptions) error {
	if opt.Format == TraceFormatV1 {
		return trace.WriteFormat(w, tr, TraceFormatV1)
	}
	return trace.WriteV2With(w, tr, trace.V2Options{Compress: opt.Compress, Codec: opt.Codec})
}

// ReadTrace decodes a trace written by WriteTrace or WriteTraceFormat; the
// format is sniffed from the magic.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// ReadTraceFiltered loads a trace file keeping only events matching the
// filter. VANITRC2 logs consult the footer index first, skipping blocks the
// per-block statistics rule out; other formats decode fully and filter in
// memory. Event order is preserved, so the result equals FilterEvents over
// the full decode.
func ReadTraceFiltered(path string, f TraceFilter) (*Trace, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()

	var head [8]byte
	if _, err := io.ReadFull(fh, head[:]); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, trace.ErrBadFormat)
	}
	if _, err := fh.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if format, ok := trace.SniffMagic(head[:]); !ok || format != trace.FormatV2 {
		tr, err := trace.Read(fh)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		tr.Events = trace.FilterEvents(tr.Events, f)
		return tr, nil
	}

	info, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	br, err := trace.NewBlockReader(fh, info.Size())
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	m := f.NewMatcher()
	tr := br.Header()
	var evs []trace.Event
	var block []trace.Event
	for k := 0; k < br.NumBlocks(); k++ {
		if m.SkipBlock(br.BlockAt(k)) {
			continue
		}
		block, err = br.DecodeEvents(k, block[:0])
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		for i := range block {
			if m.MatchEvent(&block[i]) {
				evs = append(evs, block[i])
			}
		}
	}
	tr.Events = evs
	return tr, nil
}

// CaseStudy is the outcome of a baseline-vs-optimized comparison, the
// experiment design of Figures 7 and 8.
type CaseStudy struct {
	Workload         string
	Nodes            int
	BaselineRuntime  time.Duration
	OptimizedRuntime time.Duration
	BaselineIOTime   time.Duration
	OptimizedIOTime  time.Duration
	Recommendations  []Recommendation
	Applied          []string
}

// JobSpeedup returns baseline/optimized job runtime.
func (cs *CaseStudy) JobSpeedup() float64 {
	if cs.OptimizedRuntime == 0 {
		return 0
	}
	return float64(cs.BaselineRuntime) / float64(cs.OptimizedRuntime)
}

// IOSpeedup returns baseline/optimized I/O wall-clock, the paper's
// headline metric ("improve I/O performance up to 4.6x / 8x").
func (cs *CaseStudy) IOSpeedup() float64 {
	if cs.OptimizedIOTime == 0 {
		return 0
	}
	return float64(cs.BaselineIOTime) / float64(cs.OptimizedIOTime)
}

// Optimize runs the full paper loop for one workload: simulate the
// baseline, characterize it, derive recommendations, apply them, and
// re-run. This reproduces the Section V case studies.
func Optimize(w Workload, spec Spec) (*CaseStudy, error) {
	base, err := Run(w, spec)
	if err != nil {
		return nil, fmt.Errorf("baseline run: %w", err)
	}
	c := Characterize(base)
	recs := Advise(c)
	tuned := spec
	applied := ApplyRecommendations(recs, &tuned)
	opt, err := Run(w, tuned)
	if err != nil {
		return nil, fmt.Errorf("optimized run: %w", err)
	}
	co := Characterize(opt)
	return &CaseStudy{
		Workload:         w.Name(),
		Nodes:            spec.Nodes,
		BaselineRuntime:  base.Runtime,
		OptimizedRuntime: opt.Runtime,
		BaselineIOTime:   c.Workflow.IOTime,
		OptimizedIOTime:  co.Workflow.IOTime,
		Recommendations:  recs,
		Applied:          applied,
	}, nil
}

// ProbeSharedBW measures the shared storage's achievable aggregate
// bandwidth with an IOR-like benchmark: one writer rank per node streaming
// large sequential transfers to file-per-process files, caches off. This
// is the "64GB/s using 32 node IOR" measurement of Table IX. A modeled
// I/O failure inside the benchmark surfaces as an error (via the engine's
// Fail/Err facility) rather than a panic.
func ProbeSharedBW(cfg StorageConfig, nodes int) (float64, error) {
	cfg.CacheEnabled = false
	cfg.JitterFrac = 0
	e := sim.NewEngine()
	sys := storage.New(e, cfg, nodes, sim.NewRNG(1))
	const perNode = 4 * storage.GiB
	const chunk = 16 * storage.MiB
	for n := 0; n < nodes; n++ {
		n := n
		e.Spawn("ior", func(p *sim.Proc) {
			path := fmt.Sprintf("%s/ior/out.%04d", cfg.PFSDir, n)
			if err := sys.Open(p, n, path, true); err != nil {
				e.Fail(fmt.Errorf("shared-bw probe: open %s: %w", path, err))
				return
			}
			for off := int64(0); off < perNode; off += chunk {
				if err := sys.Write(p, n, path, off, chunk); err != nil {
					e.Fail(fmt.Errorf("shared-bw probe: write %s: %w", path, err))
					return
				}
			}
			sys.Close(p, n, path)
		})
	}
	elapsed := e.Run()
	if err := e.Err(); err != nil {
		return 0, err
	}
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(perNode*int64(nodes)) / elapsed.Seconds(), nil
}

// ProbeNodeLocalBW measures one node's node-local storage bandwidth with
// sequential large writes (Table VIII's "Max I/O bw/node"). Modeled I/O
// failures surface as errors, as in ProbeSharedBW.
func ProbeNodeLocalBW(cfg StorageConfig) (float64, error) {
	e := sim.NewEngine()
	sys := storage.New(e, cfg, 1, sim.NewRNG(1))
	const total = 8 * storage.GiB
	const chunk = 16 * storage.MiB
	e.Spawn("probe", func(p *sim.Proc) {
		path := cfg.NodeLocalDir + "/probe"
		if err := sys.Open(p, 0, path, true); err != nil {
			e.Fail(fmt.Errorf("node-local probe: open %s: %w", path, err))
			return
		}
		for off := int64(0); off < total; off += chunk {
			if err := sys.Write(p, 0, path, off, chunk); err != nil {
				e.Fail(fmt.Errorf("node-local probe: write %s: %w", path, err))
				return
			}
		}
		sys.Close(p, 0, path)
	})
	elapsed := e.Run()
	if err := e.Err(); err != nil {
		return 0, err
	}
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(total) / elapsed.Seconds(), nil
}

// WorkloadDoc is a parsed declarative workload spec (the internal/spec
// DSL): parameters, directories, setup, and a run program that compiles
// onto the simulator as a Workload.
type WorkloadDoc = spec.Doc

// ErrBadSpec wraps every validation failure from ParseSpec/ParseSweep,
// so callers can distinguish malformed documents from I/O errors.
var ErrBadSpec = spec.ErrBadSpec

// ParseSpec parses a declarative workload spec (YAML or JSON). The
// returned document's Compile method yields a Workload interchangeable
// with the hand-coded generators — the golden specs' characterizations
// are byte-identical to theirs.
func ParseSpec(data []byte) (*WorkloadDoc, error) { return spec.Parse(data) }

// ParseSpecFile reads and parses a declarative workload spec from disk.
func ParseSpecFile(path string) (*WorkloadDoc, error) { return spec.ParseFile(path) }

// Sweep is a parsed what-if sweep document: a workload (inline spec or
// generator name) crossed with a parameter grid.
type Sweep = spec.Sweep

// SweepOptions configures a sweep execution; the zero value matches the
// vanid service, so CLI and service reports are byte-identical.
type SweepOptions = spec.SweepOptions

// SweepReport is a sweep's comparative artifact: every grid point's
// runtime and I/O time, the winning configuration with speedups versus
// the baseline point, the advisor's verdicts on the baseline, and
// replayed stripe-size trials on the baseline trace.
type SweepReport = spec.SweepReport

// SweepSetting is one applied grid coordinate in a sweep report.
type SweepSetting = spec.SweepSetting

// ParseSweep parses a sweep document (YAML or JSON).
func ParseSweep(data []byte) (*Sweep, error) { return spec.ParseSweep(data) }

// ParseSweepFile reads and parses a sweep document from disk.
func ParseSweepFile(path string) (*Sweep, error) { return spec.ParseSweepFile(path) }

// SweepToYAML renders a sweep report as its canonical YAML artifact —
// byte-identical between `vani sweep` and vanid's POST /v1/sweep.
func SweepToYAML(rep *SweepReport) []byte { return yamlenc.Marshal(rep) }
