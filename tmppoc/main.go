package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"

	"vani/internal/trace"
)

func main() {
	// Valid empty v2 trace to harvest the header bytes.
	var buf bytes.Buffer
	if err := trace.WriteV2(&buf, &trace.Trace{}); err != nil {
		panic(err)
	}
	valid := buf.Bytes()
	// Tail of an empty trace: be(3) + nEvents(1) + nBlocks(1) + footer count(1) + trailer(16)
	header := valid[8 : len(valid)-22]

	crafted := []byte("VANITRC2")
	crafted = append(crafted, header...)
	crafted = binary.AppendUvarint(crafted, 1)       // blockEvents = 1
	crafted = binary.AppendUvarint(crafted, 1<<32)   // nEvents = 2^32
	crafted = binary.AppendUvarint(crafted, 1<<32)   // nBlocks = 2^32
	footStart := len(crafted)
	crafted = binary.AppendUvarint(crafted, 1<<32) // footer block count
	footLen := len(crafted) - footStart
	var trailer [16]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(footLen))
	copy(trailer[8:], "VANIIDX2")
	crafted = append(crafted, trailer[:]...)

	fmt.Printf("crafted file: %d bytes\n", len(crafted))
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	_, err := trace.NewBlockReader(bytes.NewReader(crafted), int64(len(crafted)))
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	fmt.Printf("NewBlockReader err: %v\n", err)
	fmt.Printf("heap allocated during call: %d MB\n", (m1.TotalAlloc-m0.TotalAlloc)>>20)
}
