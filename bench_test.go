package vani

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index) and measures the
// design choices called out for ablation. Workload runs use reduced scale
// so the full suite completes in minutes; the rendered rows follow the
// same ratios as the paper-scale runs in EXPERIMENTS.md.
//
// Custom metrics reported alongside ns/op:
//   - events/op: trace events produced by the run
//   - speedup:   baseline/optimized improvement (Figures 7-8)
//   - pct:       percentage metrics (tracing overhead, metadata share)

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"vani/internal/colstore"
	"vani/internal/core"
	"vani/internal/darshan"
	"vani/internal/replay"
	"vani/internal/report"
	"vani/internal/sim"
	"vani/internal/stats"
	"vani/internal/storage"
	"vani/internal/trace"
	"vani/internal/workloads"
)

// benchScale holds per-workload benchmark scales: small enough for tight
// iteration, large enough that every phase and file class appears.
var benchScale = map[string]float64{
	"cm1":             0.05,
	"ior":             0.01,
	"hacc":            0.02,
	"cosmoflow":       0.005,
	"jag":             0.02,
	"montage-mpi":     0.1,
	"montage-pegasus": 0.02,
}

// benchSpec builds the small standard spec for a workload.
func benchSpec(w Workload) Spec {
	spec := w.DefaultSpec()
	spec.Nodes = 4
	if spec.RanksPerNode > 8 {
		spec.RanksPerNode = 8
	}
	spec.Scale = benchScale[w.Name()]
	return spec
}

// benchWorkload constructs a workload with compute shrunk so benches
// exercise the I/O path.
func benchWorkload(b *testing.B, name string) Workload {
	b.Helper()
	w, err := New(name)
	if err != nil {
		b.Fatal(err)
	}
	switch v := w.(type) {
	case *workloads.CM1:
		v.ComputePerStep = 50 * time.Millisecond
	case *workloads.HACC:
		v.ComputeInit = 0
	case *workloads.CosmoFlow:
		v.GPUPerFile = 10 * time.Millisecond
	case *workloads.JAG:
		v.Epochs = 5
		v.ComputePerEpoch = 50 * time.Millisecond
	case *workloads.MontageMPI:
		v.ProjectCompute = 0
		v.AddCompute = 0
		v.ShrinkCompute = 0
		v.ViewerCompute = 0
	case *workloads.MontagePegasus:
		v.ProjectCompute = 0
		v.DiffCompute = 0
		v.BgModelCompute = 0
		v.BgCompute = 0
		v.AddCompute = 0
		v.ViewerCompute = 0
		v.ConcatCompute = 0
		v.FitCompute = 0
	}
	return w
}

// cachedRuns memoizes one run+characterization per workload so the table
// benches measure analysis/rendering, not repeated simulation.
var (
	runOnce  sync.Once
	runCols  []report.Named
	runChars map[string]*Characterization
	runRes   map[string]*Result
)

func allRuns(b *testing.B) ([]report.Named, map[string]*Characterization) {
	b.Helper()
	runOnce.Do(func() {
		runChars = make(map[string]*Characterization)
		runRes = make(map[string]*Result)
		for _, name := range Workloads() {
			w, err := New(name)
			if err != nil {
				panic(err)
			}
			res, err := Run(w, benchSpec(w))
			if err != nil {
				panic(err)
			}
			c := Characterize(res)
			runChars[name] = c
			runRes[name] = res
			runCols = append(runCols, report.Named{Name: name, C: c})
		}
	})
	return runCols, runChars
}

// benchTable measures regenerating one of the paper's tables from the
// cached characterizations of all six workloads.
func benchTable(b *testing.B, render func(cols []report.Named) string) {
	cols, _ := allRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := render(cols); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1_HighLevelBehavior(b *testing.B) { benchTable(b, report.TableI) }
func BenchmarkTable2_JobConfiguration(b *testing.B)  { benchTable(b, report.TableII) }
func BenchmarkTable3_WorkflowEntity(b *testing.B)    { benchTable(b, report.TableIII) }
func BenchmarkTable4_ApplicationEntity(b *testing.B) { benchTable(b, report.TableIV) }
func BenchmarkTable5_IOPhaseEntity(b *testing.B)     { benchTable(b, report.TableV) }
func BenchmarkTable6_HighLevelIO(b *testing.B)       { benchTable(b, report.TableVI) }
func BenchmarkTable7_Middleware(b *testing.B)        { benchTable(b, report.TableVII) }
func BenchmarkTable10_DatasetEntity(b *testing.B)    { benchTable(b, report.TableX) }
func BenchmarkTable11_FileEntity(b *testing.B)       { benchTable(b, report.TableXI) }

// BenchmarkTable8_NodeLocalStorage probes the node-local target (Table
// VIII's measured bandwidth row).
func BenchmarkTable8_NodeLocalStorage(b *testing.B) {
	cfg := storage.Lassen()
	var bw float64
	for i := 0; i < b.N; i++ {
		var err error
		bw, err = ProbeNodeLocalBW(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bw/float64(1<<30), "GiB/s")
}

// BenchmarkTable9_SharedStorage runs the 32-node IOR-like probe (Table
// IX's "64GB/s using 32 node IOR" row).
func BenchmarkTable9_SharedStorage(b *testing.B) {
	cfg := storage.Lassen()
	var bw float64
	for i := 0; i < b.N; i++ {
		var err error
		bw, err = ProbeSharedBW(cfg, 32)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bw/float64(1<<30), "GiB/s")
}

// benchFigure measures the full pipeline for one workload's figure: run,
// characterize, render all three panels.
func benchFigure(b *testing.B, name string) {
	w := benchWorkload(b, name)
	spec := benchSpec(w)
	var events int
	for i := 0; i < b.N; i++ {
		res, err := Run(w, spec)
		if err != nil {
			b.Fatal(err)
		}
		events = len(res.Trace.Events)
		c := Characterize(res)
		if out := report.Figure(c); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.ReportMetric(float64(events), "events/op")
}

func BenchmarkFigure1_CM1(b *testing.B)            { benchFigure(b, "cm1") }
func BenchmarkFigure2_HACC(b *testing.B)           { benchFigure(b, "hacc") }
func BenchmarkFigure3_CosmoFlow(b *testing.B)      { benchFigure(b, "cosmoflow") }
func BenchmarkFigure4_JAG(b *testing.B)            { benchFigure(b, "jag") }
func BenchmarkFigure5_MontageMPI(b *testing.B)     { benchFigure(b, "montage-mpi") }
func BenchmarkFigure6_MontagePegasus(b *testing.B) { benchFigure(b, "montage-pegasus") }

// BenchmarkFigure7_CosmoFlowOptimization runs the baseline-vs-preload
// comparison and reports the I/O speedup (paper: 2.2x-4.6x).
func BenchmarkFigure7_CosmoFlowOptimization(b *testing.B) {
	w := workloads.NewCosmoFlow()
	w.GPUPerFile = 0
	spec := w.DefaultSpec()
	spec.Nodes = 8
	spec.Scale = 0.005
	var speedup float64
	for i := 0; i < b.N; i++ {
		cs, err := Optimize(w, spec)
		if err != nil {
			b.Fatal(err)
		}
		speedup = cs.IOSpeedup()
	}
	if speedup <= 1 {
		b.Fatalf("speedup = %.2f, want > 1", speedup)
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkFigure8_MontageOptimization runs the baseline-vs-shm
// intermediates comparison and reports the I/O speedup (paper: 3.9x-8x).
func BenchmarkFigure8_MontageOptimization(b *testing.B) {
	w := workloads.NewMontageMPI()
	w.ProjectCompute, w.AddCompute, w.ShrinkCompute, w.ViewerCompute = 0, 0, 0, 0
	spec := w.DefaultSpec()
	spec.Nodes = 8
	spec.RanksPerNode = 8
	spec.Scale = 0.2
	spec.Iface.StdioPerOpCPU = 0
	var speedup float64
	for i := 0; i < b.N; i++ {
		cs, err := Optimize(w, spec)
		if err != nil {
			b.Fatal(err)
		}
		speedup = cs.IOSpeedup()
	}
	if speedup <= 1 {
		b.Fatalf("speedup = %.2f, want > 1", speedup)
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkRecorderOverhead measures the tracing overhead on job runtime
// (Section III-A2 reports ~8% for Recorder).
func BenchmarkRecorderOverhead(b *testing.B) {
	// JAG is the call-dense workload (one STDIO access per 4KB sample),
	// so interception cost shows up the way it did for Recorder.
	w := benchWorkload(b, "jag")
	spec := benchSpec(w)
	var pct float64
	for i := 0; i < b.N; i++ {
		off := spec
		off.TraceEnabled = false
		base, err := Run(w, off)
		if err != nil {
			b.Fatal(err)
		}
		on := spec
		// Calibrated to Recorder's interception cost at the simulation's
		// virtual operation rate; reproduces the paper's ~8% observation.
		on.TraceOverhead = 200 * time.Microsecond
		traced, err := Run(w, on)
		if err != nil {
			b.Fatal(err)
		}
		pct = (float64(traced.Runtime)/float64(base.Runtime) - 1) * 100
	}
	b.ReportMetric(pct, "pct")
}

// ---------------------------------------------------------------------------
// Ablations: the design choices DESIGN.md calls out.

// BenchmarkAblation_Contention compares HACC under the contended FCFS
// server model against an idealized uncontended stack (many servers, no
// NIC limit), quantifying how much of the runtime is queueing.
func BenchmarkAblation_Contention(b *testing.B) {
	w := benchWorkload(b, "hacc")
	spec := benchSpec(w)
	spec.Storage.CacheEnabled = false
	ideal := spec
	ideal.Storage.PFSServers = 4096
	ideal.Storage.NodeNICBW = 0
	ideal.Storage.PFSMetaServers = 4096
	var ratio float64
	for i := 0; i < b.N; i++ {
		contended, err := Run(w, spec)
		if err != nil {
			b.Fatal(err)
		}
		free, err := Run(w, ideal)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(contended.Runtime) / float64(free.Runtime)
	}
	if ratio < 1 {
		b.Fatalf("contention ratio %.2f < 1", ratio)
	}
	b.ReportMetric(ratio, "slowdown")
}

// BenchmarkAblation_PageCache toggles the client page cache, the source
// of Montage's write-then-read bandwidth spikes (Figure 5c).
func BenchmarkAblation_PageCache(b *testing.B) {
	w := benchWorkload(b, "montage-mpi")
	spec := benchSpec(w)
	nocache := spec
	nocache.Storage.CacheEnabled = false
	var ratio float64
	for i := 0; i < b.N; i++ {
		with, err := Run(w, spec)
		if err != nil {
			b.Fatal(err)
		}
		without, err := Run(w, nocache)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(without.Runtime) / float64(with.Runtime)
	}
	b.ReportMetric(ratio, "slowdown")
}

// BenchmarkAblation_HDF5Chunking toggles dataset chunking for CosmoFlow,
// the paper's "no chunking slows down metadata accesses" observation.
func BenchmarkAblation_HDF5Chunking(b *testing.B) {
	w := benchWorkload(b, "cosmoflow")
	spec := benchSpec(w)
	chunked := spec
	chunked.Iface.HDF5Chunked = true
	var ratio float64
	for i := 0; i < b.N; i++ {
		un, err := Run(w, spec)
		if err != nil {
			b.Fatal(err)
		}
		ch, err := Run(w, chunked)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(un.Runtime) / float64(ch.Runtime)
	}
	if ratio < 1 {
		b.Fatalf("chunking made CosmoFlow slower (%.2f)", ratio)
	}
	b.ReportMetric(ratio, "speedup")
}

// BenchmarkAblation_CollectiveSync toggles MPI-IO's communicator-scaled
// synchronization metadata, CosmoFlow's "aggregation of small files
// across many processes" cost.
func BenchmarkAblation_CollectiveSync(b *testing.B) {
	w := benchWorkload(b, "cosmoflow")
	spec := benchSpec(w)
	nosync := spec
	nosync.Iface.MPIIOCommScaling = false
	nosync.Iface.MPIIOSyncMetaPerOpen = 0
	nosync.Iface.MPIIOSyncMetaPerData = 0
	var ratio float64
	for i := 0; i < b.N; i++ {
		with, err := Run(w, spec)
		if err != nil {
			b.Fatal(err)
		}
		without, err := Run(w, nosync)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(with.Runtime) / float64(without.Runtime)
	}
	b.ReportMetric(ratio, "slowdown")
}

// BenchmarkAblation_PhaseThreshold sweeps the phase-detection gap and
// reports how segmentation changes, validating that Table V is robust to
// the threshold choice within an order of magnitude.
func BenchmarkAblation_PhaseThreshold(b *testing.B) {
	_, chars := allRuns(b)
	res := runRes["cm1"]
	var fine, coarse int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := core.Analyze(res.Trace, core.Options{PhaseGap: 20 * time.Millisecond})
		c := core.Analyze(res.Trace, core.Options{PhaseGap: 10 * time.Second})
		fine, coarse = len(f.Phases), len(c.Phases)
	}
	_ = chars
	if fine < coarse {
		b.Fatalf("finer gap found fewer phases (%d < %d)", fine, coarse)
	}
	b.ReportMetric(float64(fine), "fine-phases")
	b.ReportMetric(float64(coarse), "coarse-phases")
}

// BenchmarkAblation_ColumnarAnalysis compares aggregating over the
// columnar table against scanning row-major events, the paper's
// parquet-conversion argument.
func BenchmarkAblation_ColumnarAnalysis(b *testing.B) {
	_, _ = allRuns(b)
	tr := runRes["montage-pegasus"].Trace
	tb := colstore.FromTrace(tr)
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum int64
			tb.ForEachChunk(func(c *colstore.Chunk) {
				for j := 0; j < c.N; j++ {
					if trace.Op(c.Op[j]) == trace.OpRead {
						sum += c.Size[j]
					}
				}
			})
			if sum == 0 {
				b.Fatal("no reads")
			}
		}
	})
	b.Run("columnar-fused", func(b *testing.B) {
		isRead := func(i int) bool { return trace.Op(tb.Op(i)) == trace.OpRead }
		for i := 0; i < b.N; i++ {
			agg := &colstore.Agg{Pred: isRead}
			tb.Scan(1, agg)
			if agg.Bytes == 0 {
				b.Fatal("no reads")
			}
		}
	})
	b.Run("row-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum int64
			for j := range tr.Events {
				if tr.Events[j].Op == trace.OpRead {
					sum += tr.Events[j].Size
				}
			}
			if sum == 0 {
				b.Fatal("no reads")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Substrate microbenchmarks.

// BenchmarkKernel_EventThroughput measures raw simulation kernel event
// processing: 64 processes contending on one FCFS resource for 256
// rounds each (~33K scheduled events per iteration).
func BenchmarkKernel_EventThroughput(b *testing.B) {
	var events int64
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		r := sim.NewResource(e, "disk")
		for pnum := 0; pnum < 64; pnum++ {
			e.Spawn("p", func(p *sim.Proc) {
				for j := 0; j < 256; j++ {
					r.Use(p, time.Microsecond)
				}
			})
		}
		e.Run()
		events = e.EventsExecuted
	}
	b.ReportMetric(float64(events), "events/op")
}

// BenchmarkTraceCodec measures trace serialization round-trip throughput
// (write + full read) in the default on-disk format.
func BenchmarkTraceCodec(b *testing.B) {
	_, _ = allRuns(b)
	tr := runRes["hacc"].Trace
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		b.Fatal(err)
	}
	size := buf.Len()
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteTrace(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadTrace(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// codecFixtures builds one large synthetic trace (~200K events) and its
// encodings in every format, shared by the encode/decode throughput benches
// so format comparisons run over identical data.
var (
	codecOnce    sync.Once
	codecTrace   *Trace
	codecV1      []byte
	codecV2      []byte
	codecV2Flate []byte
)

func codecFixtures(b *testing.B) {
	b.Helper()
	codecOnce.Do(func() {
		rng := sim.NewRNG(11)
		tr := trace.NewTracer()
		tr.SetMeta(trace.Meta{
			Workload: "bench", JobID: "bench-1", Nodes: 32, CoresPerNode: 40,
			Ranks: 1280, PFSDir: "/p/gpfs1", NodeLocalDir: "/dev/shm",
		})
		app := tr.AppID("bench")
		var files []int32
		for i := 0; i < 64; i++ {
			files = append(files, tr.FileID(fmt.Sprintf("/p/gpfs1/part%02d", i)))
		}
		var clock time.Duration
		const nEvents = 200_000
		for i := 0; i < nEvents; i++ {
			clock += time.Duration(rng.Intn(2000)) * time.Microsecond
			op := trace.OpRead
			if rng.Intn(2) == 0 {
				op = trace.OpWrite
			}
			tr.Record(trace.Event{
				Level: trace.LevelPosix, Op: op,
				Rank: int32(rng.Intn(1280)), Node: int32(rng.Intn(32)),
				App: app, File: files[rng.Intn(len(files))],
				Offset: int64(rng.Intn(1 << 30)), Size: int64(rng.Intn(1 << 22)),
				Start: clock, End: clock + time.Duration(rng.Intn(5000))*time.Microsecond,
			})
		}
		codecTrace = tr.Finish()
		encode := func(f func(*bytes.Buffer) error) []byte {
			var buf bytes.Buffer
			if err := f(&buf); err != nil {
				panic(err)
			}
			return buf.Bytes()
		}
		codecV1 = encode(func(buf *bytes.Buffer) error { return trace.Write(buf, codecTrace) })
		codecV2 = encode(func(buf *bytes.Buffer) error { return trace.WriteV2(buf, codecTrace) })
		codecV2Flate = encode(func(buf *bytes.Buffer) error {
			return trace.WriteV2With(buf, codecTrace, trace.V2Options{Compress: true})
		})
	})
}

// BenchmarkTraceEncode measures encode throughput (MB/s of produced bytes)
// per format. The v2 encoder fans block encoding over the worker pool; its
// output is byte-identical at every parallelism.
func BenchmarkTraceEncode(b *testing.B) {
	codecFixtures(b)
	for _, bench := range []struct {
		name    string
		encoded []byte
		write   func(*bytes.Buffer) error
	}{
		{"v1", codecV1, func(buf *bytes.Buffer) error { return trace.Write(buf, codecTrace) }},
		{"v2", codecV2, func(buf *bytes.Buffer) error { return trace.WriteV2(buf, codecTrace) }},
		{"v2-flate", codecV2Flate, func(buf *bytes.Buffer) error {
			return trace.WriteV2With(buf, codecTrace, trace.V2Options{Compress: true})
		}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var buf bytes.Buffer
			buf.Grow(len(bench.encoded))
			b.SetBytes(int64(len(bench.encoded)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := bench.write(&buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceDecodeToTable measures the full ingest path each format
// supports: log bytes to analyzable column chunks. v1 can only stream
// serially (one delta chain); v2 decodes blocks independently, serially or
// fanned over the worker pool straight into chunk adoption.
func BenchmarkTraceDecodeToTable(b *testing.B) {
	codecFixtures(b)
	wantRows := len(codecTrace.Events)
	decodeV1 := func() (*colstore.Table, error) {
		s, err := trace.NewScanner(bytes.NewReader(codecV1))
		if err != nil {
			return nil, err
		}
		bld := colstore.NewBuilder()
		buf := make([]trace.Event, colstore.ChunkRows)
		for {
			n, err := s.Next(buf)
			bld.AppendEvents(buf[:n])
			if err == io.EOF {
				return bld.Finish(), nil
			}
			if err != nil {
				return nil, err
			}
		}
	}
	decodeV2 := func(data []byte, par int) (*colstore.Table, error) {
		br, err := trace.NewBlockReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return nil, err
		}
		return colstore.FromBlocks(br, par)
	}
	for _, bench := range []struct {
		name   string
		bytes  []byte
		decode func() (*colstore.Table, error)
	}{
		{"v1-serial", codecV1, decodeV1},
		{"v2-serial", codecV2, func() (*colstore.Table, error) { return decodeV2(codecV2, 1) }},
		{"v2-parallel", codecV2, func() (*colstore.Table, error) { return decodeV2(codecV2, 0) }},
		{"v2-flate-parallel", codecV2Flate, func() (*colstore.Table, error) { return decodeV2(codecV2Flate, 0) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(int64(len(bench.bytes)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb, err := bench.decode()
				if err != nil {
					b.Fatal(err)
				}
				if tb.Len() != wantRows {
					b.Fatalf("decoded %d rows, want %d", tb.Len(), wantRows)
				}
			}
		})
	}
}

// BenchmarkCodecMatrix measures every column codec the VANITRC2 writer
// supports over the same 200K-event fixture: encoded size (enc-bytes) and
// full-column-scan decode throughput (MB/s over the encoded bytes; every
// column materialized). "v21" is the varint-only v2.1 layout, "v22-auto"
// the per-segment cost model (VANIIDX4 footer), the forced variants pin
// one segment codec everywhere, and the -flate rows wrap the block in an
// outer deflate layer. The headline comparison is v22-auto against
// v21-flate: near-flate size with none of the inflate cost on decode.
func BenchmarkCodecMatrix(b *testing.B) {
	codecFixtures(b)
	wantRows := len(codecTrace.Events)
	for _, bench := range []struct {
		name string
		opt  trace.V2Options
	}{
		{"v21", trace.V2Options{Codec: trace.CodecV21}},
		{"v21-flate", trace.V2Options{Codec: trace.CodecV21, Compress: true}},
		{"v22-auto", trace.V2Options{}},
		{"v22-flate", trace.V2Options{Compress: true}},
		{"v22-raw", trace.V2Options{Codec: trace.CodecForceRaw}},
		{"v22-rle", trace.V2Options{Codec: trace.CodecForceRLE}},
		{"v22-dict", trace.V2Options{Codec: trace.CodecForceDict}},
		{"v22-for", trace.V2Options{Codec: trace.CodecForceFOR}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var buf bytes.Buffer
			if err := trace.WriteV2With(&buf, codecTrace, bench.opt); err != nil {
				b.Fatal(err)
			}
			enc := buf.Bytes()
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br, err := trace.NewBlockReader(bytes.NewReader(enc), int64(len(enc)))
				if err != nil {
					b.Fatal(err)
				}
				tb, err := colstore.FromBlocks(br, 0)
				if err != nil {
					b.Fatal(err)
				}
				if err := tb.Materialize(0, trace.AllCols); err != nil {
					b.Fatal(err)
				}
				if tb.Len() != wantRows {
					b.Fatalf("decoded %d rows, want %d", tb.Len(), wantRows)
				}
			}
			b.ReportMetric(float64(len(enc)), "enc-bytes")
		})
	}
}

// BenchmarkScanPlanner measures what predicate pushdown buys on a windowed
// scan of a block log. All cases process the same encoded log (SetBytes, so
// MB/s compares directly): "full" materializes every row and column;
// "window25-fullscan" decodes everything and filters in memory (the
// no-pushdown baseline); "window25-pruned" pushes the window down to the
// footer index so ~3/4 of the blocks are never decoded;
// "window25-projected" additionally declares a two-column projection and
// skips materializing the other nine.
func BenchmarkScanPlanner(b *testing.B) {
	codecFixtures(b)
	end := codecTrace.Events[len(codecTrace.Events)-1].Start
	window := trace.Filter{From: end / 4, To: end / 2}
	open := func() *trace.BlockReader {
		br, err := trace.NewBlockReader(bytes.NewReader(codecV2), int64(len(codecV2)))
		if err != nil {
			b.Fatal(err)
		}
		return br
	}
	plan := func(spec colstore.ScanSpec, want trace.ColSet) (*colstore.Table, error) {
		tb, err := colstore.FromBlocksSpec(open(), 0, spec, nil)
		if err != nil {
			return nil, err
		}
		if want != 0 {
			if err := tb.Materialize(0, want); err != nil {
				return nil, err
			}
		}
		return tb, nil
	}
	wantRows := len(trace.FilterEvents(codecTrace.Events, window))
	for _, bench := range []struct {
		name string
		rows int
		scan func() (*colstore.Table, error)
	}{
		{"full", len(codecTrace.Events), func() (*colstore.Table, error) {
			return plan(colstore.ScanSpec{}, trace.AllCols)
		}},
		{"window25-fullscan", wantRows, func() (*colstore.Table, error) {
			tr, err := trace.Read(bytes.NewReader(codecV2))
			if err != nil {
				return nil, err
			}
			return colstore.FromEvents(trace.FilterEvents(tr.Events, window), 0), nil
		}},
		{"window25-pruned", wantRows, func() (*colstore.Table, error) {
			return plan(colstore.ScanSpec{Filter: window}, trace.AllCols)
		}},
		{"window25-projected", wantRows, func() (*colstore.Table, error) {
			return plan(colstore.ScanSpec{Filter: window, Cols: trace.ColStart | trace.ColSize}, 0)
		}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(int64(len(codecV2)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb, err := bench.scan()
				if err != nil {
					b.Fatal(err)
				}
				if tb.Len() != bench.rows {
					b.Fatalf("scanned %d rows, want %d", tb.Len(), bench.rows)
				}
			}
		})
	}
}

// BenchmarkCompressedDomain measures what compressed-domain execution buys
// end to end: the same v2.2-encoded workload trace, fully characterized under
// a pushed-down filter (the shape every vanid request takes) with the kernel
// registry engaged versus force-disabled (every kernel request falling back
// to materialized row iteration). With kernels on, the filter's level and op
// predicates evaluate against the encoded RLE/dict segments and the dropped
// dimensions never materialize; off, every filter column decodes and the
// predicate runs per row. Both arms produce byte-identical YAML (the
// equivalence suite pins that); this measures the throughput and allocation
// gap between the two execution paths.
func BenchmarkCompressedDomain(b *testing.B) {
	_, _ = allRuns(b)
	res := runRes["cm1"]
	var buf bytes.Buffer
	if err := trace.WriteV2With(&buf, res.Trace, trace.V2Options{}); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	defer colstore.SetKernelsEnabled(true)
	for _, bench := range []struct {
		name    string
		kernels bool
	}{
		{"kernels-on", true},
		{"kernels-off", false},
	} {
		b.Run(bench.name, func(b *testing.B) {
			colstore.SetKernelsEnabled(bench.kernels)
			opt := DefaultAnalyzerOptions()
			opt.Filter = trace.Filter{Ranks: []int32{3}}
			var served, fallback int64
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br, err := trace.NewBlockReader(bytes.NewReader(enc), int64(len(enc)))
				if err != nil {
					b.Fatal(err)
				}
				var timings AnalyzerTimings
				opt.Stats = &timings
				c, err := CharacterizeBlocksContext(context.Background(), br, opt)
				if err != nil {
					b.Fatal(err)
				}
				if c == nil {
					b.Fatal("nil characterization")
				}
				served, fallback = timings.Scan.KernelsServed, timings.Scan.KernelsFallback
			}
			b.ReportMetric(float64(served), "kernels-served")
			b.ReportMetric(float64(fallback), "kernels-fallback")
		})
	}
}

// BenchmarkGroupedAgg measures what grouped execution buys on the analyzer
// hot path: the same v2.2-encoded cm1 trace, fully characterized with NO
// filter (aggregation dominates, the shape the fleet-query workload takes),
// with the grouped kernels engaged — code unifier, dense code-keyed
// accumulators, key spans with per-row op dispatch — versus forced off
// (the map-keyed fallback row loops). Both arms produce byte-identical
// YAML (the codec-matrix equivalence suite pins the grouped-off arm); this
// measures the throughput and allocation gap between the two paths.
func BenchmarkGroupedAgg(b *testing.B) {
	_, _ = allRuns(b)
	res := runRes["cm1"]
	var buf bytes.Buffer
	if err := trace.WriteV2With(&buf, res.Trace, trace.V2Options{}); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	defer colstore.SetGroupedKernelsEnabled(true)
	for _, bench := range []struct {
		name    string
		grouped bool
	}{
		{"grouped-on", true},
		{"grouped-off", false},
	} {
		b.Run(bench.name, func(b *testing.B) {
			colstore.SetGroupedKernelsEnabled(bench.grouped)
			opt := DefaultAnalyzerOptions()
			var served, fallback int64
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br, err := trace.NewBlockReader(bytes.NewReader(enc), int64(len(enc)))
				if err != nil {
					b.Fatal(err)
				}
				var timings AnalyzerTimings
				opt.Stats = &timings
				c, err := CharacterizeBlocksContext(context.Background(), br, opt)
				if err != nil {
					b.Fatal(err)
				}
				if c == nil {
					b.Fatal("nil characterization")
				}
				served, fallback = timings.Scan.GroupServed, timings.Scan.GroupFallback
			}
			b.ReportMetric(float64(served), "groups-served")
			b.ReportMetric(float64(fallback), "groups-fallback")
		})
	}
}

// BenchmarkGroupedFiltered measures grouped execution under a pushed-down
// filter — the rank+window-restricted characterization every vanid what-if
// request issues. With grouped kernels on, the surviving chunks are
// selection-backed: their block run summaries are re-cut against the
// selection vector, so key spans, the code unifier and the run-aware
// accumulators all fire and the analyzer materializes only the Op/Size/
// Start/End columns; off, every filtered chunk takes the map-keyed row
// loops over the full column set. Both arms produce byte-identical YAML
// (the filtered codec-matrix suite pins that); this measures the gap.
func BenchmarkGroupedFiltered(b *testing.B) {
	_, _ = allRuns(b)
	res := runRes["cm1"]
	var buf bytes.Buffer
	if err := trace.WriteV2With(&buf, res.Trace, trace.V2Options{}); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	end := res.Trace.Events[len(res.Trace.Events)-1].Start
	defer colstore.SetGroupedKernelsEnabled(true)
	for _, bench := range []struct {
		name    string
		grouped bool
	}{
		{"grouped-on", true},
		{"grouped-off", false},
	} {
		b.Run(bench.name, func(b *testing.B) {
			colstore.SetGroupedKernelsEnabled(bench.grouped)
			opt := DefaultAnalyzerOptions()
			ranks := make([]int32, 0, 31)
			for r := int32(0); r < 31; r++ {
				ranks = append(ranks, r)
			}
			// The window bounds every block's start range, so the per-block
			// reduction proves it containing and the rank set alone drives
			// the compressed selection; the rank cut is what the arms race on.
			opt.Filter = trace.Filter{To: end, Ranks: ranks}
			var served, fallback, filtered int64
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br, err := trace.NewBlockReader(bytes.NewReader(enc), int64(len(enc)))
				if err != nil {
					b.Fatal(err)
				}
				var timings AnalyzerTimings
				opt.Stats = &timings
				c, err := CharacterizeBlocksContext(context.Background(), br, opt)
				if err != nil {
					b.Fatal(err)
				}
				if c == nil {
					b.Fatal("nil characterization")
				}
				served, fallback = timings.Scan.GroupServed, timings.Scan.GroupFallback
				filtered = timings.Scan.GroupFilteredServed
			}
			b.ReportMetric(float64(served), "groups-served")
			b.ReportMetric(float64(fallback), "groups-fallback")
			b.ReportMetric(float64(filtered), "filtered-served")
		})
	}
}

// BenchmarkAnalyzer measures full characterization of a mid-sized trace.
func BenchmarkAnalyzer(b *testing.B) {
	_, _ = allRuns(b)
	res := runRes["montage-mpi"]
	cfg := res.Spec.Storage
	opt := core.DefaultOptions()
	opt.Storage = &cfg
	b.ReportMetric(float64(len(res.Trace.Events)), "events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.Analyze(res.Trace, opt)
		if c.Workflow.IOBytes == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// BenchmarkAnalyzerParallelism compares the fused chunk-parallel analysis
// at Parallelism=1 (sequential baseline) against GOMAXPROCS workers on a
// pre-built columnar table. The outputs are bit-identical; only the wall
// clock differs (and only when GOMAXPROCS > 1).
func BenchmarkAnalyzerParallelism(b *testing.B) {
	_, _ = allRuns(b)
	res := runRes["montage-mpi"]
	cfg := res.Spec.Storage
	tb := colstore.FromTrace(res.Trace)
	for _, bench := range []struct {
		name string
		par  int
	}{
		{"seq", 1},
		{"par", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Storage = &cfg
			opt.Parallelism = bench.par
			b.ReportMetric(float64(tb.Len()), "rows")
			for i := 0; i < b.N; i++ {
				c, err := core.AnalyzeTable(res.Trace, tb, opt)
				if err != nil {
					b.Fatal(err)
				}
				if c.Workflow.IOBytes == 0 {
					b.Fatal("empty analysis")
				}
			}
		})
	}
}

// BenchmarkColumnarize measures the row-to-chunk transposition stage at
// both parallelism settings.
func BenchmarkColumnarize(b *testing.B) {
	_, _ = allRuns(b)
	tr := runRes["montage-mpi"].Trace
	for _, bench := range []struct {
		name string
		par  int
	}{
		{"seq", 1},
		{"par", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportMetric(float64(len(tr.Events)), "events")
			for i := 0; i < b.N; i++ {
				if tb := colstore.FromEvents(tr.Events, bench.par); tb.Len() == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}

// BenchmarkDistributionFit measures the Table VI distribution classifier.
func BenchmarkDistributionFit(b *testing.B) {
	rng := sim.NewRNG(7)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.Gamma(2, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := stats.FitDistribution(xs); k != stats.DistGamma {
			b.Fatalf("classified %v", k)
		}
	}
}

// BenchmarkAblation_AsyncMiddleware toggles UnifyFS-style relaxed
// consistency for CM1, whose rank-0 small writes otherwise pay
// synchronous shared-file PFS cost (the paper's Section IV-D2 async-I/O
// optimization, gated on the cross-node RAW attribute).
func BenchmarkAblation_AsyncMiddleware(b *testing.B) {
	w := benchWorkload(b, "cm1")
	spec := benchSpec(w)
	relaxed := spec
	relaxed.Storage.RelaxedConsistency = true
	var ratio float64
	for i := 0; i < b.N; i++ {
		sync, err := Run(w, spec)
		if err != nil {
			b.Fatal(err)
		}
		async, err := Run(w, relaxed)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(sync.Runtime) / float64(async.Runtime)
	}
	if ratio < 1 {
		b.Fatalf("async middleware slowed CM1 (%.2f)", ratio)
	}
	b.ReportMetric(ratio, "speedup")
}

// BenchmarkReplay measures re-executing a captured HACC trace against a
// candidate storage configuration (the tuner's inner loop).
func BenchmarkReplay(b *testing.B) {
	_, _ = allRuns(b)
	tr := runRes["hacc"].Trace
	opt := replay.DefaultOptions()
	opt.PreserveThinkTime = false
	b.ReportMetric(float64(len(tr.Events)), "events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := replay.Run(tr, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Ops == 0 {
			b.Fatal("empty replay")
		}
	}
}

// BenchmarkDarshanReduction measures collapsing a full trace into the
// Darshan-style aggregate profile, the lossy alternative the paper
// rejects for its characterization.
func BenchmarkDarshanReduction(b *testing.B) {
	_, _ = allRuns(b)
	tr := runRes["montage-mpi"].Trace
	b.ReportMetric(float64(len(tr.Events)), "events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := darshan.FromTrace(tr)
		if len(p.Records) == 0 {
			b.Fatal("empty profile")
		}
	}
}
