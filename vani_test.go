package vani

import (
	"bytes"
	"testing"
	"time"

	"vani/internal/storage"
	"vani/internal/workloads"
)

func TestEndToEndPipeline(t *testing.T) {
	w, err := New("hacc")
	if err != nil {
		t.Fatal(err)
	}
	spec := w.DefaultSpec()
	spec.Nodes = 2
	spec.RanksPerNode = 4
	spec.Scale = 0.02
	res, err := Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	c := Characterize(res)
	if c.Workload != "hacc" {
		t.Errorf("workload = %q", c.Workload)
	}
	recs := Advise(c)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	tuned := spec
	applied := ApplyRecommendations(recs, &tuned)
	if len(applied) == 0 {
		t.Error("nothing applied")
	}
	if tuned.Storage.PFSStripeSize == spec.Storage.PFSStripeSize {
		t.Error("stripe size not tuned for HACC")
	}
}

func TestWorkloadsList(t *testing.T) {
	names := Workloads()
	if len(names) != 7 {
		t.Fatalf("Workloads() = %v", names)
	}
	if _, err := New("bogus"); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	w, _ := New("jag")
	jw := w.(*workloads.JAG)
	jw.Epochs = 2
	jw.ComputePerEpoch = 100 * time.Millisecond
	spec := w.DefaultSpec()
	spec.Nodes = 2
	spec.Scale = 0.02
	res, err := Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Storage
	c := CharacterizeTrace(back, &cfg)
	if c.Workload != "jag" {
		t.Errorf("round-tripped characterization workload = %q", c.Workload)
	}
	if len(back.Events) != len(res.Trace.Events) {
		t.Error("trace lost events in round trip")
	}
}

func TestOptimizeCosmoFlowCaseStudy(t *testing.T) {
	w, _ := New("cosmoflow")
	cf := w.(*workloads.CosmoFlow)
	cf.GPUPerFile = 0
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.Scale = 0.002
	cs, err := Optimize(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cs.JobSpeedup() <= 1 {
		t.Errorf("job speedup = %.2f, want > 1", cs.JobSpeedup())
	}
	if cs.IOSpeedup() <= 1 {
		t.Errorf("I/O speedup = %.2f, want > 1", cs.IOSpeedup())
	}
	if len(cs.Applied) == 0 {
		t.Error("no recommendations applied")
	}
}

func TestOptimizeMontageCaseStudy(t *testing.T) {
	w, _ := New("montage-mpi")
	mm := w.(*workloads.MontageMPI)
	mm.ProjectCompute, mm.AddCompute, mm.ShrinkCompute, mm.ViewerCompute = 0, 0, 0, 0
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.RanksPerNode = 8
	spec.Scale = 0.1
	spec.Iface.StdioPerOpCPU = 0 // client CPU is identical in both runs; isolate storage
	cs, err := Optimize(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cs.IOSpeedup() <= 1.5 {
		t.Errorf("Montage I/O speedup = %.2f, want > 1.5", cs.IOSpeedup())
	}
}

func TestProbeSharedBWClientLimited(t *testing.T) {
	// Table IX: a 32-node IOR measures ~64GB/s on Lassen's GPFS — the
	// limit is the clients' aggregate injection bandwidth, not the >2000
	// server system. Wider jobs pull proportionally more until the server
	// ceiling.
	cfg := storage.Lassen()
	bw32, err := ProbeSharedBW(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.NodeNICBW) * 32
	if bw32 < want*0.7 || bw32 > want*1.1 {
		t.Errorf("32-node IOR = %.1f GB/s, want ~%.1f GB/s (client-limited)",
			bw32/(1<<30), want/(1<<30))
	}
	bw128, err := ProbeSharedBW(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	if bw128 < 3*bw32 {
		t.Errorf("128-node IOR (%.1f GB/s) should scale with clients (32-node: %.1f GB/s)",
			bw128/(1<<30), bw32/(1<<30))
	}
	serverPeak := float64(cfg.PFSServerBW * int64(cfg.PFSServers))
	if bw128 > serverPeak*1.1 {
		t.Errorf("128-node IOR (%.1f GB/s) exceeds server ceiling (%.1f GB/s)",
			bw128/(1<<30), serverPeak/(1<<30))
	}
}

func TestProbeNodeLocalBW(t *testing.T) {
	cfg := storage.Lassen()
	bw, err := ProbeNodeLocalBW(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.NodeLocalBW)
	if bw < want/2 || bw > want*1.1 {
		t.Errorf("node-local BW %.1f GB/s vs configured %.1f GB/s",
			bw/(1<<30), want/(1<<30))
	}
}

func TestCharacterizationYAMLRoundTrip(t *testing.T) {
	// The full storage-side loop: characterize, emit the YAML artifact,
	// load it back, and verify the advisor reaches the same conclusions.
	w, _ := New("cosmoflow")
	cf := w.(*workloads.CosmoFlow)
	cf.GPUPerFile = 50 * time.Millisecond
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.Scale = 0.002
	res, err := Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	c := Characterize(res)
	data := ToYAML(c)
	if len(data) == 0 {
		t.Fatal("empty YAML")
	}
	back, err := FromYAML(data)
	if err != nil {
		t.Fatalf("FromYAML: %v\nartifact:\n%s", err, data[:min(len(data), 2000)])
	}
	if back.Workload != c.Workload ||
		back.Workflow.IOBytes != c.Workflow.IOBytes ||
		back.Workflow.MetaOpsPct != c.Workflow.MetaOpsPct ||
		back.JobConfig != c.JobConfig ||
		back.HighLevel != c.HighLevel ||
		len(back.Apps) != len(c.Apps) ||
		len(back.Phases) != len(c.Phases) {
		t.Fatal("characterization lost content in YAML round trip")
	}
	want := Advise(c)
	got := Advise(back)
	if len(want) != len(got) {
		t.Fatalf("advisor diverged after round trip: %d vs %d recs", len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Value != got[i].Value {
			t.Errorf("rec %d: %s=%s vs %s=%s", i, got[i].ID, got[i].Value, want[i].ID, want[i].Value)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
