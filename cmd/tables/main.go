// Command tables regenerates the paper's Tables I-XI by running all six
// exemplar workloads on the simulated stack, characterizing their traces,
// and rendering the entity/attribute tables.
//
// Full paper scale produces traces of millions of events; the default
// per-workload harness scales keep runs tractable while preserving every
// ratio the tables report. Use -scale to override (1.0 = paper scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vani"
	"vani/internal/report"
	"vani/internal/workloads"
)

// harnessScale is the default fraction of paper scale per workload,
// chosen so each trace stays in the low millions of events.
var harnessScale = map[string]float64{
	"cm1":             1.0,
	"ior":             0.25,
	"hacc":            1.0,
	"cosmoflow":       0.25,
	"jag":             0.1,
	"montage-mpi":     0.2,
	"montage-pegasus": 0.25,
}

// displayName maps registry names to the paper's column headers.
var displayName = map[string]string{
	"cm1":             "CM1",
	"ior":             "IOR",
	"hacc":            "HACC (FPP)",
	"cosmoflow":       "Cosmoflow",
	"jag":             "JAG",
	"montage-mpi":     "Montage MPI",
	"montage-pegasus": "Montage Pegasus",
}

func main() {
	nodes := flag.Int("nodes", 32, "nodes per job")
	scale := flag.Float64("scale", 0, "override scale for every workload (0 = per-workload harness scale)")
	only := flag.String("workload", "", "run a single workload instead of all six")
	figures := flag.Bool("figures", false, "also render the per-workload figure panels")
	overhead := flag.Duration("trace-overhead", 0, "per-event tracer overhead (e.g. 2us)")
	par := flag.Int("par", 0, "analyzer parallelism (0 = GOMAXPROCS, 1 = sequential)")
	traceDir := flag.String("trace-dir", "", "also write each workload's trace into this directory")
	format := flag.String("format", "v2", "trace format for -trace-dir: v2 (block-structured) or v1")
	codec := flag.String("codec", "auto", "v2 column codec for -trace-dir: auto (v2.2 cost model), v21, raw, rle, dict or for")
	verbose := flag.Bool("v", false, "print per-stage pipeline timings")
	flag.Parse()

	tf, err := vani.ParseTraceFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cm, err := vani.ParseTraceCodec(*codec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	wopt := vani.TraceWriteOptions{Format: tf, Codec: cm}

	names := vani.Workloads()
	if *only != "" {
		names = []string{*only}
	}
	var cols []report.Named
	for _, name := range names {
		w, err := vani.New(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec := w.DefaultSpec()
		spec.Nodes = *nodes
		spec.TraceOverhead = *overhead
		spec.Scale = harnessScale[name]
		if *scale > 0 {
			spec.Scale = *scale
		}
		start := time.Now()
		res, err := vani.Run(w, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		opt := vani.DefaultAnalyzerOptions()
		opt.Parallelism = *par
		var timings vani.AnalyzerTimings
		opt.Stats = &timings
		c := vani.CharacterizeWith(res, opt)
		fmt.Fprintf(os.Stderr, "ran %-16s scale=%-5.3g events=%-8d virtual=%-10s wall=%s\n",
			name, spec.Scale, len(res.Trace.Events),
			res.Runtime.Round(time.Second), time.Since(start).Round(time.Millisecond))
		if *verbose {
			fmt.Fprintf(os.Stderr, "    stages: trace-merge=%s columnarize=%s analyze=%s\n",
				timings.TraceMerge, timings.Columnarize, timings.Analyze)
			s := timings.Scan
			fmt.Fprintf(os.Stderr, "    scan: blocks=%d pruned=%d rows=%d kept=%d payload=%dB decoded=%dB\n",
				s.BlocksTotal, s.BlocksPruned, s.RowsTotal, s.RowsKept, s.PayloadBytes, s.DecodedBytes)
			fmt.Fprintf(os.Stderr, "    segs: raw=%d rle=%d dict=%d for=%d\n",
				s.SegRaw, s.SegRLE, s.SegDict, s.SegFOR)
			fmt.Fprintf(os.Stderr, "    kernels: served=%d fallback=%d\n",
				s.KernelsServed, s.KernelsFallback)
			fmt.Fprintf(os.Stderr, "    groups: served=%d fallback=%d filtered-served=%d filtered-fallback=%d tl-served=%d tl-fallback=%d\n",
				s.GroupServed, s.GroupFallback, s.GroupFilteredServed,
				s.GroupFilteredFallback, s.TLServed, s.TLFallback)
			fmt.Fprintf(os.Stderr, "    runisect: served=%d fallback=%d\n",
				s.RunIsectServed, s.RunIsectFallback)
		}
		cols = append(cols, report.Named{Name: display(name), C: c})
		if *traceDir != "" {
			path := filepath.Join(*traceDir, name+".trc")
			if err := dumpTrace(path, res.Trace, wopt); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "    wrote %s (%s)\n", path, tf)
		}
		if *figures {
			fmt.Println(report.Figure(c))
		}
	}
	probe, err := vani.ProbeSharedBW(defaultStorage(), 32)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shared-bw probe: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(report.AllTables(cols, probe))
}

func display(name string) string {
	if d, ok := displayName[name]; ok {
		return d
	}
	return name
}

func defaultStorage() vani.StorageConfig {
	return workloads.DefaultSpec().Storage
}

func dumpTrace(path string, tr *vani.Trace, opt vani.TraceWriteOptions) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := vani.WriteTraceWith(f, tr, opt); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
