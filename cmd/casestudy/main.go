// Command casestudy reproduces the paper's two optimization experiments:
//
//   - Figure 7: CosmoFlow strong-scaled from 32 to 256 nodes, baseline
//     GPFS (B) vs. dataset preloaded into node-local shared memory (O);
//     the paper reports 2.2x-4.6x I/O improvement growing with scale.
//   - Figure 8: Montage-MPI strong-scaled to 256 nodes, baseline GPFS vs.
//     intermediate files kept in node-local shared memory; the paper
//     reports 3.9x-8x.
//
// Strong scaling holds total work constant: CosmoFlow's file count is
// global (more nodes, fewer files per rank); Montage's per-node segment
// shrinks as nodes grow.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vani"
	"vani/internal/workloads"
)

func main() {
	which := flag.String("w", "cosmoflow", "case study: cosmoflow (Figure 7) or montage (Figure 8)")
	nodesList := flag.String("nodes", "32,64,128,256", "comma-separated node counts")
	scale := flag.Float64("scale", 0.05, "fraction of paper scale for the total work")
	impacts := flag.Bool("impacts", false, "also evaluate each recommendation in isolation at the first node count")
	flag.Parse()
	showImpacts = *impacts

	var nodeCounts []int
	for _, s := range strings.Split(*nodesList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad node count %q\n", s)
			os.Exit(2)
		}
		nodeCounts = append(nodeCounts, n)
	}

	switch *which {
	case "cosmoflow":
		fmt.Println("Figure 7: Optimizing CosmoFlow using workload attributes")
		fmt.Println("          (B = baseline GPFS, O = preload to /dev/shm; paper: 2.2x-4.6x)")
		runSweep(nodeCounts, func(nodes int) (vani.Workload, vani.Spec) {
			w := workloads.NewCosmoFlow()
			w.GPUPerFile = 0 // isolate the I/O path, as the figure plots I/O time
			spec := w.DefaultSpec()
			spec.Nodes = nodes
			spec.Scale = *scale
			return w, spec
		})
	case "montage":
		fmt.Println("Figure 8: Optimizing Montage using workload attributes")
		fmt.Println("          (B = baseline GPFS, O = intermediates in /dev/shm; paper: 3.9x-8x)")
		runSweep(nodeCounts, func(nodes int) (vani.Workload, vani.Spec) {
			w := workloads.NewMontageMPI()
			w.ProjectCompute, w.AddCompute, w.ShrinkCompute, w.ViewerCompute = 0, 0, 0, 0
			spec := w.DefaultSpec()
			spec.Nodes = nodes
			// Strong scaling: the sky survey is fixed, so each node's
			// segment shrinks as the job widens.
			spec.Scale = *scale * 32 / float64(nodes)
			if spec.Scale > 1 {
				spec.Scale = 1
			}
			return w, spec
		})
	default:
		fmt.Fprintln(os.Stderr, "unknown case study; use cosmoflow or montage")
		os.Exit(2)
	}
}

var showImpacts bool

func runSweep(nodeCounts []int, build func(nodes int) (vani.Workload, vani.Spec)) {
	fmt.Printf("%-6s  %-12s %-12s %-8s  %-12s %-12s %-8s\n",
		"nodes", "B job", "O job", "speedup", "B I/O", "O I/O", "speedup")
	for _, nodes := range nodeCounts {
		w, spec := build(nodes)
		cs, err := vani.Optimize(w, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%d nodes: %v\n", nodes, err)
			os.Exit(1)
		}
		fmt.Printf("%-6d  %-12s %-12s %-8.2f  %-12s %-12s %-8.2f\n",
			nodes,
			cs.BaselineRuntime.Round(time.Millisecond),
			cs.OptimizedRuntime.Round(time.Millisecond),
			cs.JobSpeedup(),
			cs.BaselineIOTime.Round(time.Millisecond),
			cs.OptimizedIOTime.Round(time.Millisecond),
			cs.IOSpeedup())
		if showImpacts && nodes == nodeCounts[0] {
			printImpacts(build, nodes, cs.Recommendations)
		}
	}
}

// printImpacts re-runs the workload once per recommendation, isolating
// each one's contribution to the combined speedup.
func printImpacts(build func(nodes int) (vani.Workload, vani.Spec), nodes int, recs []vani.Recommendation) {
	w, spec := build(nodes)
	impacts, err := vani.EvaluateRecommendations(w, spec, recs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("        per-recommendation impact at %d nodes:\n", nodes)
	for _, im := range impacts {
		if !im.Applied {
			fmt.Printf("        %-26s advisory only (%s)\n",
				im.Recommendation.ID, im.Recommendation.Parameter)
			continue
		}
		fmt.Printf("        %-26s %.2fx (%s -> %s)\n",
			im.Recommendation.ID, im.Speedup(),
			im.BaselineRuntime.Round(time.Millisecond),
			im.TunedRuntime.Round(time.Millisecond))
	}
}
