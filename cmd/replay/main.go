// Command replay re-executes a captured trace (from wrun) against
// candidate storage configurations and ranks them — the automated
// configuration search a workload-aware storage system runs once it has
// the characterization in hand.
//
//	wrun -w hacc -scale 0.1 -o hacc.trc
//	replay -t hacc.trc -sweep stripe          # stripe-size sweep
//	replay -t hacc.trc -sweep cache           # cache / read-ahead toggles
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vani"
	"vani/internal/cliutil"
	"vani/internal/replay"
	"vani/internal/storage"
)

func main() {
	traceFile := flag.String("t", "", "trace file to replay (required)")
	sweep := flag.String("sweep", "stripe", "candidate sweep: stripe or cache")
	think := flag.Bool("think", true, "preserve recorded think time between calls")
	convert := flag.String("convert", "", "rewrite the loaded trace to this path (in -format) before replaying")
	format := flag.String("format", "v2", "trace format for -convert: v2 (block-structured) or v1")
	codec := flag.String("codec", "auto", "v2 column codec for -convert: auto (v2.2 cost model), v21, raw, rle, dict or for")
	ff := cliutil.RegisterFilterFlags(nil)
	flag.Parse()

	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "usage: replay -t <trace> [-window from:to] [-ranks 0-63] [-levels posix] [-ops data] [-sweep stripe|cache] [-think=false] [-convert out.trc -format v2]")
		os.Exit(2)
	}
	filter, err := ff.Filter()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The filter applies to the loaded events, so -convert extracts the
	// selected slice (e.g. a time window) into a standalone trace file.
	tr, err := vani.ReadTraceFiltered(*traceFile, filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *convert != "" {
		tf, err := vani.ParseTraceFormat(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cm, err := vani.ParseTraceCodec(*codec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		o, err := os.Create(*convert)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := vani.WriteTraceWith(o, tr, vani.TraceWriteOptions{Format: tf, Codec: cm}); err != nil {
			o.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := o.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "converted %s -> %s (%s)\n", *traceFile, *convert, tf)
	}

	base := storage.Lassen()
	var cands []replay.Candidate
	switch *sweep {
	case "stripe":
		cands = replay.StripeSweep(base,
			64*storage.KiB, 256*storage.KiB, storage.MiB, 4*storage.MiB, 16*storage.MiB)
	case "cache":
		cands = replay.CacheSweep(base)
	default:
		fmt.Fprintln(os.Stderr, "unknown sweep; use stripe or cache")
		os.Exit(2)
	}

	opt := replay.DefaultOptions()
	opt.PreserveThinkTime = *think
	results, err := vani.Tune(tr, cands, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("replayed %s (%d events) under %d candidates:\n",
		*traceFile, len(tr.Events), len(results))
	fmt.Printf("%-16s %-14s %-14s\n", "candidate", "runtime", "mean rank I/O")
	for i, r := range results {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Printf("%s %-14s %-14s %-14s\n", marker, r.Candidate.Name,
			r.Runtime.Round(time.Millisecond), r.IOTime.Round(time.Millisecond))
	}
}
