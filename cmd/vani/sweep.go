package main

// `vani sweep` runs a what-if sweep document locally: the workload (an
// inline declarative spec or a registered generator) crossed with a
// parameter grid, every point simulated and characterized, the outcomes
// reduced to a comparative report. The same engine backs vanid's
// POST /v1/sweep, so the YAML here is byte-identical to the service's.
//
//	vani sweep -f examples/sweep-casestudy/casestudy.yaml -yaml report.yaml

import (
	"flag"
	"fmt"
	"os"

	"vani"
	"vani/internal/report"
)

func sweepMain(args []string) {
	fs := flag.NewFlagSet("vani sweep", flag.ExitOnError)
	file := fs.String("f", "", "sweep document (YAML or JSON) (required)")
	par := fs.Int("par", 0, "concurrent grid points (0 = min(GOMAXPROCS, 4))")
	tables := fs.Bool("tables", true, "render the point table and winner")
	progress := fs.Bool("progress", false, "print per-point progress to stderr")
	yamlOut := fs.String("yaml", "", "write the sweep report as YAML to this file (\"-\" for stdout)")
	fs.Parse(args) //nolint:errcheck // ExitOnError never returns an error

	if *file == "" {
		fmt.Fprintln(os.Stderr, "usage: vani sweep -f <sweep.yaml> [-par n] [-progress] [-yaml out.yaml]")
		os.Exit(2)
	}
	sw, err := vani.ParseSweepFile(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := vani.SweepOptions{Parallelism: *par}
	if *progress {
		opt.OnPoint = func(done, total int) {
			fmt.Fprintf(os.Stderr, "sweep %s: point %d/%d done\n", sw.Name, done, total)
		}
	}
	rep, err := sw.Run(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *tables {
		fmt.Println(report.SweepTable(rep))
	}
	switch *yamlOut {
	case "":
	case "-":
		os.Stdout.Write(vani.SweepToYAML(rep)) //nolint:errcheck
	default:
		data := vani.SweepToYAML(rep)
		if err := os.WriteFile(*yamlOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *yamlOut, len(data))
	}
}
