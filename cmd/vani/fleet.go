package main

// `vani fleet` runs a cross-trace fleet query directly against a vanid
// repository directory (-data-dir), read-only — no daemon required, safe
// against a live one. The same reducer backs GET /fleet/query, so the YAML
// here is byte-identical to the service's.
//
//	vani fleet -repo /var/lib/vanid -workload hacc -yaml fleet.yaml

import (
	"context"
	"flag"
	"fmt"
	"os"

	"vani/internal/cliutil"
	"vani/internal/repo"
	"vani/internal/report"
	"vani/internal/workloads"
)

func fleetMain(args []string) {
	fs := flag.NewFlagSet("vani fleet", flag.ExitOnError)
	dir := fs.String("repo", "", "trace repository root (vanid's -data-dir) (required)")
	workload := fs.String("workload", "", "restrict to one workload label (default: every stored trace)")
	par := fs.Int("par", 0, "concurrent per-trace characterizations (0 = GOMAXPROCS)")
	tables := fs.Bool("tables", true, "render the fleet tables")
	yamlOut := fs.String("yaml", "", "write the fleet report as YAML to this file (\"-\" for stdout)")
	ff := cliutil.RegisterFilterFlags(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError never returns an error

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: vani fleet -repo <data-dir> [-workload name] [-window from:to] [-ranks 0-63] [-levels posix] [-ops data] [-par n] [-yaml out.yaml]")
		os.Exit(2)
	}
	filter, err := ff.Filter()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r, err := repo.Open(*dir, repo.Options{ReadOnly: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer r.Close() //nolint:errcheck // read-only: nothing to persist

	cfg := workloads.DefaultSpec().Storage
	q := repo.Query{Workload: *workload, Filter: filter, Parallelism: *par}
	fr, err := r.FleetQuery(context.Background(), q, repo.DefaultCharacterizer(cfg.Clone(), 1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *tables {
		fmt.Println(report.FleetTable(fr))
	}
	switch *yamlOut {
	case "":
	case "-":
		os.Stdout.Write(fr.YAML()) //nolint:errcheck
	default:
		data := fr.YAML()
		if err := os.WriteFile(*yamlOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *yamlOut, len(data))
	}
}
