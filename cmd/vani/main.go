// Command vani is the analyzer of the paper's tool suite: it loads a
// Recorder-style trace (written by wrun), builds the entity/attribute
// characterization, and renders it as tables, YAML, figure panels, and
// storage-configuration recommendations.
//
//	wrun -w jag -o jag.trc
//	vani -t jag.trc -tables -figure -advise -yaml jag.yaml
package main

import (
	"flag"
	"fmt"
	"os"

	"vani"
	"vani/internal/cliutil"
	"vani/internal/report"
	"vani/internal/workloads"
	"vani/internal/yamlenc"
)

func main() {
	// Subcommand dispatch before flag parsing: `vani fleet ...` has its own
	// flag set (repository queries, not single-trace analysis).
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		fleetMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		sweepMain(os.Args[2:])
		return
	}
	traceFile := flag.String("t", "", "trace file to analyze (required)")
	tables := flag.Bool("tables", true, "render the entity tables")
	figure := flag.Bool("figure", false, "render the figure panels")
	advise := flag.Bool("advise", false, "print storage recommendations")
	phases := flag.Bool("phases", false, "render the full I/O phase series")
	yamlOut := flag.String("yaml", "", "write the characterization as YAML to this file")
	rewrite := flag.String("rewrite", "", "transcode the input trace to this path (in -format) before analyzing")
	format := flag.String("format", "v2", "trace format for -rewrite: v2 (block-structured) or v1")
	compress := flag.Bool("compress", false, "flate-compress v2 event blocks for -rewrite")
	codec := flag.String("codec", "auto", "v2 column codec for -rewrite: auto (v2.2 cost model), v21, raw, rle, dict or for")
	par := flag.Int("par", 0, "analyzer parallelism (0 = GOMAXPROCS, 1 = sequential)")
	verbose := flag.Bool("v", false, "print per-stage pipeline timings and scan counters")
	ff := cliutil.RegisterFilterFlags(nil)
	flag.Parse()

	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "usage: vani -t <trace> [-window from:to] [-ranks 0-63] [-levels posix] [-ops data] [-tables] [-figure] [-advise] [-yaml out.yaml] [-rewrite out.trc -format v2]")
		os.Exit(2)
	}
	filter, err := ff.Filter()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *rewrite != "" {
		tf, err := vani.ParseTraceFormat(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cm, err := vani.ParseTraceCodec(*codec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wopt := vani.TraceWriteOptions{Format: tf, Compress: *compress, Codec: cm}
		if err := transcode(*traceFile, *rewrite, wopt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rewrote %s as %s (%s, codec %s)\n", *traceFile, *rewrite, tf, cm)
	}
	// Stream the trace from disk into column chunks: the event log never
	// materializes in memory, so arbitrarily large traces analyze fine.
	cfg := workloads.DefaultSpec().Storage
	opt := vani.DefaultAnalyzerOptions()
	opt.Storage = &cfg
	opt.Parallelism = *par
	opt.Filter = filter
	var timings vani.AnalyzerTimings
	opt.Stats = &timings
	c, err := vani.CharacterizeFileWith(*traceFile, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "stages: columnarize=%s analyze=%s\n",
			timings.Columnarize, timings.Analyze)
		s := timings.Scan
		fmt.Fprintf(os.Stderr, "scan: blocks=%d pruned=%d rows=%d kept=%d payload=%dB decoded=%dB\n",
			s.BlocksTotal, s.BlocksPruned, s.RowsTotal, s.RowsKept, s.PayloadBytes, s.DecodedBytes)
		fmt.Fprintf(os.Stderr, "segs: raw=%d rle=%d dict=%d for=%d\n",
			s.SegRaw, s.SegRLE, s.SegDict, s.SegFOR)
		fmt.Fprintf(os.Stderr, "kernels: served=%d fallback=%d\n",
			s.KernelsServed, s.KernelsFallback)
		fmt.Fprintf(os.Stderr, "groups: served=%d fallback=%d filtered-served=%d filtered-fallback=%d tl-served=%d tl-fallback=%d\n",
			s.GroupServed, s.GroupFallback, s.GroupFilteredServed,
			s.GroupFilteredFallback, s.TLServed, s.TLFallback)
		fmt.Fprintf(os.Stderr, "runisect: served=%d fallback=%d\n",
			s.RunIsectServed, s.RunIsectFallback)
	}

	if *tables {
		cols := []report.Named{{Name: c.Workload, C: c}}
		fmt.Println(report.AllTables(cols, 0))
	}
	if *figure {
		fmt.Println(report.Figure(c))
	}
	if *phases {
		fmt.Println(report.PhaseTable(c.Workload, c))
	}
	if *advise {
		recs := vani.Advise(c)
		if len(recs) == 0 {
			fmt.Println("no recommendations: the workload already matches the defaults")
		}
		for _, r := range recs {
			fmt.Printf("[%s] %s = %s\n    why: %s\n    from: %v\n",
				r.Area, r.Parameter, r.Value, r.Rationale, r.Attributes)
		}
	}
	if *yamlOut != "" {
		data := yamlenc.Marshal(c)
		if err := os.WriteFile(*yamlOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *yamlOut, len(data))
	}
}

// transcode reads a trace in either format and rewrites it under opt — the
// migration path for VANITRC1 logs captured before the block format, and
// for re-encoding old v2 logs with the v2.2 codecs.
func transcode(in, out string, opt vani.TraceWriteOptions) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	tr, err := vani.ReadTrace(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", in, err)
	}
	o, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := vani.WriteTraceWith(o, tr, opt); err != nil {
		o.Close()
		return fmt.Errorf("writing %s: %w", out, err)
	}
	return o.Close()
}
