// Command vani is the analyzer of the paper's tool suite: it loads a
// Recorder-style trace (written by wrun), builds the entity/attribute
// characterization, and renders it as tables, YAML, figure panels, and
// storage-configuration recommendations.
//
//	wrun -w jag -o jag.trc
//	vani -t jag.trc -tables -figure -advise -yaml jag.yaml
package main

import (
	"flag"
	"fmt"
	"os"

	"vani"
	"vani/internal/report"
	"vani/internal/workloads"
	"vani/internal/yamlenc"
)

func main() {
	traceFile := flag.String("t", "", "trace file to analyze (required)")
	tables := flag.Bool("tables", true, "render the entity tables")
	figure := flag.Bool("figure", false, "render the figure panels")
	advise := flag.Bool("advise", false, "print storage recommendations")
	phases := flag.Bool("phases", false, "render the full I/O phase series")
	yamlOut := flag.String("yaml", "", "write the characterization as YAML to this file")
	flag.Parse()

	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "usage: vani -t <trace> [-tables] [-figure] [-advise] [-yaml out.yaml]")
		os.Exit(2)
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tr, err := vani.ReadTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := workloads.DefaultSpec().Storage
	c := vani.CharacterizeTrace(tr, &cfg)

	if *tables {
		cols := []report.Named{{Name: c.Workload, C: c}}
		fmt.Println(report.AllTables(cols, 0))
	}
	if *figure {
		fmt.Println(report.Figure(c))
	}
	if *phases {
		fmt.Println(report.PhaseTable(c.Workload, c))
	}
	if *advise {
		recs := vani.Advise(c)
		if len(recs) == 0 {
			fmt.Println("no recommendations: the workload already matches the defaults")
		}
		for _, r := range recs {
			fmt.Printf("[%s] %s = %s\n    why: %s\n    from: %v\n",
				r.Area, r.Parameter, r.Value, r.Rationale, r.Attributes)
		}
	}
	if *yamlOut != "" {
		data := yamlenc.Marshal(c)
		if err := os.WriteFile(*yamlOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *yamlOut, len(data))
	}
}
