// Command wrun runs one exemplar workload on the simulated stack and
// writes its Recorder-style trace, playing the role of the traced job
// submission in the paper's methodology.
//
//	wrun -w cosmoflow -nodes 32 -scale 0.1 -o cosmoflow.trc
//	wrun -w montage-mpi -optimized          # Section V-B reconfiguration
//	wrun -spec my-workload.yaml -o my.trc   # declarative spec (internal/spec)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vani"
)

func main() {
	name := flag.String("w", "", "workload: "+strings.Join(vani.Workloads(), ", "))
	specFile := flag.String("spec", "", "declarative workload spec file (YAML or JSON) instead of -w")
	nodes := flag.Int("nodes", 32, "nodes")
	ranksPerNode := flag.Int("rpn", 0, "ranks per node (0 = workload default)")
	scale := flag.Float64("scale", 0.1, "fraction of paper scale (1.0 = full)")
	seed := flag.Int64("seed", 1, "simulation seed")
	out := flag.String("o", "", "trace output file (empty = don't write)")
	format := flag.String("format", "v2", "trace format: v2 (block-structured, parallel decode) or v1")
	compress := flag.Bool("compress", false, "flate-compress v2 event blocks")
	codec := flag.String("codec", "auto", "v2 column codec: auto (v2.2 cost model), v21, raw, rle, dict or for")
	optimized := flag.Bool("optimized", false, "apply the workload's case-study optimization")
	overhead := flag.Duration("trace-overhead", 0, "per-event tracer overhead")
	flag.Parse()

	tf, err := vani.ParseTraceFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *compress && tf != vani.TraceFormatV2 {
		fmt.Fprintln(os.Stderr, "-compress requires -format v2")
		os.Exit(2)
	}
	cm, err := vani.ParseTraceCodec(*codec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cm != vani.TraceCodecAuto && tf != vani.TraceFormatV2 {
		fmt.Fprintln(os.Stderr, "-codec requires -format v2")
		os.Exit(2)
	}

	if (*name == "") == (*specFile == "") {
		fmt.Fprintln(os.Stderr, "usage: wrun -w <workload> | -spec <file> [flags]; workloads:",
			strings.Join(vani.Workloads(), ", "))
		os.Exit(2)
	}
	var w vani.Workload
	if *specFile != "" {
		doc, err := vani.ParseSpecFile(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w = doc.Compile()
	} else {
		var err error
		w, err = vani.New(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	spec := w.DefaultSpec()
	spec.Nodes = *nodes
	if *ranksPerNode > 0 {
		spec.RanksPerNode = *ranksPerNode
	}
	spec.Scale = *scale
	spec.Seed = *seed
	spec.Optimized = *optimized
	spec.TraceOverhead = *overhead

	start := time.Now()
	res, err := vani.Run(w, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := res.Sys.Stats
	fmt.Printf("workload   : %s (scale %g, %d nodes x %d ranks)\n",
		w.Name(), spec.Scale, spec.Nodes, spec.RanksPerNode)
	fmt.Printf("virtual    : %s  (simulated in %s)\n",
		res.Runtime.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	fmt.Printf("events     : %d\n", len(res.Trace.Events))
	fmt.Printf("gpfs       : read %s, wrote %s, %d data ops, %d meta ops\n",
		mb(st[0].BytesRead), mb(st[0].BytesWritten), st[0].DataOps, st[0].MetaOps)
	fmt.Printf("node-local : read %s, wrote %s\n", mb(st[1].BytesRead), mb(st[1].BytesWritten))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opt := vani.TraceWriteOptions{Format: tf, Compress: *compress, Codec: cm}
		if err := vani.WriteTraceWith(f, res.Trace, opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fi, _ := os.Stat(*out)
		fmt.Printf("trace      : %s (%s)\n", *out, mb(fi.Size()))
	}
}

func mb(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
