// Command vanid is the always-on characterization service: it accepts
// trace uploads over HTTP, characterizes them on a bounded worker pool,
// and serves the resulting reports from a content-addressed cache.
//
// Usage:
//
//	vanid -addr :8080 -workers 4 -queue-depth 64 -cache-entries 256
//
// Upload a trace and poll the job:
//
//	curl -s --data-binary @trace.trc 'http://localhost:8080/v1/traces?window=1s:30s&ranks=0-15'
//	curl -s http://localhost:8080/v1/jobs/j00000001
//	curl -s http://localhost:8080/v1/reports/<report_id>
//
// On SIGTERM or SIGINT the daemon stops accepting work, drains queued and
// running jobs (bounded by -drain-timeout), and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vani/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file (for port-0 scripting)")
	workers := flag.Int("workers", 4, "characterization worker pool size")
	queueDepth := flag.Int("queue-depth", 64, "bounded job queue depth (full queue returns 429)")
	cacheEntries := flag.Int("cache-entries", 256, "report cache capacity (LRU entries)")
	spoolDir := flag.String("spool-dir", "", "throwaway directory for uploaded traces (default: a fresh temp dir; ignored with -data-dir)")
	dataDir := flag.String("data-dir", "", "persistent trace repository root: uploads survive restarts and /fleet/query is served")
	compactEvery := flag.Duration("compact-every", 0, "background repository compaction period (0 disables; POST /v1/compact always works)")
	retainAge := flag.Duration("retain-age", 0, "drop stored traces older than this during repository GC (0 keeps everything)")
	retainCount := flag.Int("retain-count", 0, "cap stored traces at this many, dropping the oldest during repository GC (0 = no cap)")
	retainBytes := flag.Int64("retain-bytes", 0, "cap stored traces' total bytes, dropping the oldest during repository GC (0 = no cap)")
	par := flag.Int("parallelism", 0, "per-job analyzer parallelism (0 = GOMAXPROCS)")
	cacheBytes := flag.Int64("cache-bytes", 0, "decoded-block cache budget in bytes (0 = 256 MiB default, negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain jobs on shutdown before aborting them")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (off by default)")
	flag.Parse()

	srv, err := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		SpoolDir:     *spoolDir,
		DataDir:      *dataDir,
		CompactEvery: *compactEvery,
		RetainAge:    *retainAge,
		RetainCount:  *retainCount,
		RetainBytes:  *retainBytes,
		Parallelism:  *par,
		CacheBytes:   *cacheBytes,
		EnablePprof:  *pprofOn,
	})
	if err != nil {
		log.Fatalf("vanid: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vanid: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("vanid: writing -addr-file: %v", err)
		}
	}
	log.Printf("vanid: listening on %s (workers=%d queue=%d cache=%d)",
		bound, *workers, *queueDepth, *cacheEntries)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("vanid: %s: draining (timeout %s)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("vanid: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("vanid: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("vanid: drain incomplete, jobs aborted: %v", err)
		os.Exit(1)
	}
	fmt.Println("vanid: drained, bye")
}
