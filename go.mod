module vani

go 1.22
