package stats

// The run-aware accumulators must be byte-identical to their per-row
// forms: AddRuns to row-by-row Timeline.Add calls, AddRun to n repeated
// SizeHistogram.Add calls. The tests drive both over adversarial inputs —
// swapped endpoints, negative starts and ends, ends past the span, rows
// starting at or past the span, zero and negative sizes, zero durations,
// and rows landing exactly on bin boundaries — as well as the sorted
// bursty shape real traces produce.

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func timelinesEqual(a, b *Timeline) bool {
	if len(a.Bytes) != len(b.Bytes) {
		return false
	}
	for i := range a.Bytes {
		if a.Bytes[i] != b.Bytes[i] || a.Ops[i] != b.Ops[i] {
			return false
		}
	}
	return true
}

// adversarialRows builds row sets hitting every clamp and branch of
// Timeline.Add for the given span.
func adversarialRows(rng *rand.Rand, span int64, n int) (start, end, size []int64) {
	start = make([]int64, n)
	end = make([]int64, n)
	size = make([]int64, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0: // swapped endpoints
			start[i] = rng.Int63n(span)
			end[i] = start[i] - rng.Int63n(span/2+1)
		case 1: // negative start
			start[i] = -rng.Int63n(span)
			end[i] = rng.Int63n(span)
		case 2: // both endpoints negative
			end[i] = -rng.Int63n(span) - 1
			start[i] = end[i] - rng.Int63n(span/4+1)
		case 3: // end past the span
			start[i] = rng.Int63n(span)
			end[i] = span + rng.Int63n(span)
		case 4: // start at or past the span (Add ignores the row)
			start[i] = span + rng.Int63n(span)
			end[i] = start[i] + rng.Int63n(span)
		case 5: // zero duration
			start[i] = rng.Int63n(span)
			end[i] = start[i]
		case 6: // exactly on a bin boundary
			w := span / 16
			if w == 0 {
				w = 1
			}
			start[i] = rng.Int63n(16) * w
			end[i] = start[i] + rng.Int63n(2)*w
		default:
			start[i] = rng.Int63n(span)
			end[i] = start[i] + rng.Int63n(span/4+1)
		}
		size[i] = rng.Int63n(1<<14) - 2 // includes negatives and zero
	}
	return
}

func TestTimelineAddRunsMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shapes := []struct {
		span time.Duration
		bins int
	}{
		{time.Second, 48},
		{time.Second, 1},
		{1000 * time.Nanosecond, 7}, // span not divisible by bins
		{17 * time.Nanosecond, 5},   // tiny width, heavy clamping
	}
	for _, sh := range shapes {
		for trial := 0; trial < 20; trial++ {
			start, end, size := adversarialRows(rng, int64(sh.span), 512)
			if trial%2 == 1 {
				// Sorted starts: the bursty, mostly-single-bin shape the
				// analyzer actually feeds, where the cached bin pays off.
				sort.Slice(start, func(i, j int) bool { return start[i] < start[j] })
				for i := range end {
					end[i] = start[i] + end[i]%(int64(sh.span)/8+1)
				}
			}
			want := NewTimeline(sh.span, sh.bins)
			for i := range start {
				want.Add(time.Duration(start[i]), time.Duration(end[i]), size[i])
			}
			got := NewTimeline(sh.span, sh.bins)
			got.AddRuns(start, end, size, 0, len(start))
			if !timelinesEqual(want, got) {
				t.Fatalf("span=%v bins=%d trial=%d: AddRuns diverged from Add\n got ops %v bytes %v\nwant ops %v bytes %v",
					sh.span, sh.bins, trial, got.Ops, got.Bytes, want.Ops, want.Bytes)
			}
		}
	}
}

func TestTimelineAddRunsSubrange(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	start, end, size := adversarialRows(rng, int64(time.Second), 256)
	want := NewTimeline(time.Second, 24)
	for i := 40; i < 200; i++ {
		want.Add(time.Duration(start[i]), time.Duration(end[i]), size[i])
	}
	got := NewTimeline(time.Second, 24)
	got.AddRuns(start, end, size, 40, 200)
	if !timelinesEqual(want, got) {
		t.Fatal("AddRuns over a subrange diverged from Add over the same rows")
	}
}

func TestSizeHistogramAddRunMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	var want, got SizeHistogram
	for trial := 0; trial < 200; trial++ {
		size := rng.Int63n(1<<30) - 4 // negative, zero, and bucket-spanning sizes
		n := rng.Int63n(9) + 1
		durs := make([]time.Duration, n)
		var total time.Duration
		for i := range durs {
			durs[i] = time.Duration(rng.Int63n(1 << 20))
			total += durs[i]
		}
		for _, d := range durs {
			want.Add(size, d)
		}
		got.AddRun(size, n, total)
	}
	if want != got {
		t.Fatalf("AddRun diverged from repeated Add:\n got %+v\nwant %+v", got, want)
	}
}
