// Package stats provides the statistical primitives the analyzer uses:
// request-size histograms with per-bucket bandwidth (the Figures 1a-6a
// panels), moment summaries, percentiles, distribution-shape fitting (the
// "Data dist" attribute of Table VI), and time-binned bandwidth series
// (the Figures 1c-6c timelines).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds moment statistics of a sample.
type Summary struct {
	N        int
	Sum      float64
	Min, Max float64
	Mean     float64
	Std      float64
	Skew     float64
	Kurtosis float64 // non-excess (normal = 3)
}

// Summarize computes moment statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - s.Mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= float64(s.N)
	m3 /= float64(s.N)
	m4 /= float64(s.N)
	s.Std = math.Sqrt(m2)
	if m2 > 0 {
		s.Skew = m3 / math.Pow(m2, 1.5)
		s.Kurtosis = m4 / (m2 * m2)
	}
	return s
}

// Percentile returns the q-th percentile (0..100) by linear interpolation.
// The input need not be sorted; it is not modified.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// FiveNum is a five-number positional summary (plus mean) of a sample —
// the fleet-query aggregate shape: extremes, the median, and the p99
// tail. All fields derive from Percentile over the same sorted copy, so
// summaries of the same sample are identical however it was gathered.
type FiveNum struct {
	Min  float64
	P50  float64
	P99  float64
	Max  float64
	Mean float64
}

// FiveNumOf summarizes a sample. An empty sample yields a zero FiveNum.
func FiveNumOf(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return FiveNum{
		Min:  Percentile(xs, 0),
		P50:  Percentile(xs, 50),
		P99:  Percentile(xs, 99),
		Max:  Percentile(xs, 100),
		Mean: sum / float64(len(xs)),
	}
}

// DistKind is a distribution-shape label used by the Data entity's "Data
// dist" attribute (Table VI).
type DistKind string

// Distribution kinds the fitter can report.
const (
	DistUniform DistKind = "uniform"
	DistNormal  DistKind = "normal"
	DistGamma   DistKind = "gamma"
	DistUnknown DistKind = "unknown"
)

// FitDistribution classifies a sample as uniform, normal, or gamma using
// moment heuristics: a uniform distribution has near-zero skewness and
// kurtosis near 1.8; a normal has near-zero skewness and kurtosis near 3;
// a gamma is right-skewed with kurtosis consistent with 3 + 1.5*skew^2.
// Small or degenerate samples report DistUnknown.
func FitDistribution(xs []float64) DistKind {
	if len(xs) < 30 {
		return DistUnknown
	}
	s := Summarize(xs)
	if s.Std == 0 {
		return DistUnknown
	}
	absSkew := math.Abs(s.Skew)
	switch {
	case absSkew < 0.25 && math.Abs(s.Kurtosis-1.8) < 0.45:
		return DistUniform
	case absSkew < 0.25 && math.Abs(s.Kurtosis-3) < 0.8:
		return DistNormal
	case s.Skew > 0.4:
		// Gamma: kurtosis ≈ 3 + 1.5*skew², within generous tolerance.
		expect := 3 + 1.5*s.Skew*s.Skew
		if math.Abs(s.Kurtosis-expect) < 0.6*expect {
			return DistGamma
		}
	}
	return DistUnknown
}

// SizeBucket labels one request-size class. The bucket boundaries follow
// the paper's figure axes: <4KB, 4-64KB, 64KB-1MB, 1-16MB, >16MB.
type SizeBucket int

// Buckets in ascending size order.
const (
	BucketTiny   SizeBucket = iota // < 4KiB
	BucketSmall                    // 4KiB - 64KiB
	BucketMedium                   // 64KiB - 1MiB
	BucketLarge                    // 1MiB - 16MiB
	BucketHuge                     // >= 16MiB
	NumSizeBuckets
)

var bucketNames = [...]string{"<4KB", "4KB-64KB", "64KB-1MB", "1MB-16MB", ">=16MB"}

// String returns the axis label of the bucket.
func (b SizeBucket) String() string {
	if b >= 0 && int(b) < len(bucketNames) {
		return bucketNames[b]
	}
	return "?"
}

// BucketOf classifies a request size in bytes.
func BucketOf(size int64) SizeBucket {
	switch {
	case size < 4<<10:
		return BucketTiny
	case size < 64<<10:
		return BucketSmall
	case size < 1<<20:
		return BucketMedium
	case size < 16<<20:
		return BucketLarge
	default:
		return BucketHuge
	}
}

// SizeHistogram accumulates request counts, bytes and busy time per size
// bucket, giving the count histogram and the per-bucket achieved bandwidth
// of the paper's (a) panels.
type SizeHistogram struct {
	Count [NumSizeBuckets]int64
	Bytes [NumSizeBuckets]int64
	Time  [NumSizeBuckets]time.Duration
}

// Add records one request of the given size taking d.
func (h *SizeHistogram) Add(size int64, d time.Duration) {
	b := BucketOf(size)
	h.Count[b]++
	h.Bytes[b] += size
	h.Time[b] += d
}

// AddRun records n requests of the same size whose durations sum to total:
// one bucket lookup and three integer adds, exactly equal to n Add calls
// (the bucket depends only on size, and every field is an integer sum).
func (h *SizeHistogram) AddRun(size, n int64, total time.Duration) {
	b := BucketOf(size)
	h.Count[b] += n
	h.Bytes[b] += size * n
	h.Time[b] += total
}

// Merge adds another histogram's tallies into h. All fields are integer
// sums, so merging per-chunk partials in any order is exact — the property
// the parallel analyzer relies on for bit-identical output.
func (h *SizeHistogram) Merge(o *SizeHistogram) {
	for b := range h.Count {
		h.Count[b] += o.Count[b]
		h.Bytes[b] += o.Bytes[b]
		h.Time[b] += o.Time[b]
	}
}

// TotalCount returns the number of requests across buckets.
func (h *SizeHistogram) TotalCount() int64 {
	var n int64
	for _, c := range h.Count {
		n += c
	}
	return n
}

// TotalBytes returns the bytes across buckets.
func (h *SizeHistogram) TotalBytes() int64 {
	var n int64
	for _, b := range h.Bytes {
		n += b
	}
	return n
}

// Bandwidth returns the achieved bytes/sec of one bucket (bytes divided by
// accumulated request time), or 0 for empty buckets.
func (h *SizeHistogram) Bandwidth(b SizeBucket) float64 {
	if h.Time[b] <= 0 {
		return 0
	}
	return float64(h.Bytes[b]) / h.Time[b].Seconds()
}

// DominantBucket returns the bucket with the highest request count.
func (h *SizeHistogram) DominantBucket() SizeBucket {
	best := SizeBucket(0)
	for b := SizeBucket(1); b < NumSizeBuckets; b++ {
		if h.Count[b] > h.Count[best] {
			best = b
		}
	}
	return best
}

// Timeline bins activity over [0, span) into equal-width bins and reports
// a bytes/sec series — the paper's per-workload I/O timeline panels.
type Timeline struct {
	span  time.Duration
	width time.Duration
	Bytes []int64
	Ops   []int64
}

// NewTimeline creates a timeline of n bins covering [0, span). span must be
// positive and n at least 1.
func NewTimeline(span time.Duration, n int) *Timeline {
	if span <= 0 || n < 1 {
		panic(fmt.Sprintf("stats: invalid timeline span=%v bins=%d", span, n))
	}
	return &Timeline{
		span:  span,
		width: span / time.Duration(n),
		Bytes: make([]int64, n),
		Ops:   make([]int64, n),
	}
}

// Bins returns the number of bins.
func (tl *Timeline) Bins() int { return len(tl.Bytes) }

// BinWidth returns the width of each bin.
func (tl *Timeline) BinWidth() time.Duration { return tl.width }

// Add spreads size bytes of one operation spanning [start, end) across the
// bins it overlaps, proportional to overlap.
func (tl *Timeline) Add(start, end time.Duration, size int64) {
	if end < start {
		start, end = end, start
	}
	if end > tl.span {
		end = tl.span
	}
	if start < 0 {
		start = 0
	}
	if start >= tl.span {
		return
	}
	first := int(start / tl.width)
	last := int((end - 1) / tl.width)
	if end == start {
		last = first
	}
	if first >= len(tl.Bytes) {
		first = len(tl.Bytes) - 1
	}
	if last >= len(tl.Bytes) {
		last = len(tl.Bytes) - 1
	}
	tl.Ops[first]++
	if size <= 0 {
		return
	}
	dur := end - start
	if dur == 0 {
		tl.Bytes[first] += size
		return
	}
	remaining := size
	for b := first; b <= last; b++ {
		binStart := time.Duration(b) * tl.width
		binEnd := binStart + tl.width
		if binStart < start {
			binStart = start
		}
		if binEnd > end {
			binEnd = end
		}
		share := int64(float64(size) * float64(binEnd-binStart) / float64(dur))
		if b == last {
			share = remaining
		}
		tl.Bytes[b] += share
		remaining -= share
	}
}

// AddRuns adds rows [lo, hi) of the parallel start/end/size slices
// (nanoseconds, as the analyzer's columns store them), exactly equivalent
// to calling Add(start[j], end[j], size[j]) row by row in that order. Any
// row whose clamped [start, end) lies inside a single bin contributes
// precisely Ops[bin]++ and Bytes[bin] += size — integer arithmetic,
// independent of where in the bin the row falls — so consecutive
// single-bin rows batch into two adds per bin crossed, with the current
// bin's boundaries cached so the steady state runs on comparisons instead
// of the two per-row divisions; only bin-crossing rows take Add's exact
// proportional path. Trace rows arrive time-sorted, so a 16K-row chunk
// typically crosses a handful of bin boundaries.
func (tl *Timeline) AddRuns(start, end, size []int64, lo, hi int) {
	span, width := int64(tl.span), int64(tl.width)
	nbins := len(tl.Bytes)
	bin := -1              // bin the batch accumulates into; -1 = none open
	var binLo, binHi int64 // cached bounds; binHi = span on the last bin
	var ops, bytes int64
	for j := lo; j < hi; j++ {
		s, e := start[j], end[j]
		if e < s {
			s, e = e, s
		}
		if e > span {
			e = span
		}
		if s < 0 {
			s = 0
		}
		if s >= span {
			continue // Add would return before touching any bin
		}
		// e < s survives clamping only when end is negative, where Add
		// counts the op but adds no bytes — the slow path reproduces that.
		if bin >= 0 && e >= s && s >= binLo && s < binHi && e <= binHi {
			ops++
			if size[j] > 0 {
				bytes += size[j]
			}
			continue
		}
		first := int(s / width)
		last := first
		if e != s {
			last = int((e - 1) / width)
		}
		if first >= nbins {
			first = nbins - 1
		}
		if last >= nbins {
			last = nbins - 1
		}
		if first == last && e >= s {
			if bin >= 0 {
				tl.Ops[bin] += ops
				tl.Bytes[bin] += bytes
			}
			bin, ops, bytes = first, 1, 0
			if size[j] > 0 {
				bytes = size[j]
			}
			binLo = int64(first) * width
			binHi = binLo + width
			if first == nbins-1 {
				binHi = span // the last bin absorbs the span's remainder
			}
			continue
		}
		if bin >= 0 {
			tl.Ops[bin] += ops
			tl.Bytes[bin] += bytes
			bin, ops, bytes = -1, 0, 0
		}
		tl.Add(time.Duration(start[j]), time.Duration(end[j]), size[j])
	}
	if bin >= 0 {
		tl.Ops[bin] += ops
		tl.Bytes[bin] += bytes
	}
}

// Merge adds another timeline's bins into tl. Both timelines must have the
// same span and bin count (as per-chunk partials built by NewTimeline with
// identical parameters do); bins are integer sums, so the merge is exact.
func (tl *Timeline) Merge(o *Timeline) {
	if tl.span != o.span || len(tl.Bytes) != len(o.Bytes) {
		panic(fmt.Sprintf("stats: merging mismatched timelines: span %v/%v bins %d/%d",
			tl.span, o.span, len(tl.Bytes), len(o.Bytes)))
	}
	for i := range tl.Bytes {
		tl.Bytes[i] += o.Bytes[i]
		tl.Ops[i] += o.Ops[i]
	}
}

// Rate returns the bytes/sec of bin i.
func (tl *Timeline) Rate(i int) float64 {
	if tl.width <= 0 {
		return 0
	}
	return float64(tl.Bytes[i]) / tl.width.Seconds()
}

// PeakRate returns the highest bin rate.
func (tl *Timeline) PeakRate() float64 {
	var peak float64
	for i := range tl.Bytes {
		if r := tl.Rate(i); r > peak {
			peak = r
		}
	}
	return peak
}

// TotalBytes returns the bytes accumulated across bins.
func (tl *Timeline) TotalBytes() int64 {
	var n int64
	for _, b := range tl.Bytes {
		n += b
	}
	return n
}
