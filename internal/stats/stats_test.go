package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Sum != 15 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v, want sqrt(2)", s.Std)
	}
	if math.Abs(s.Skew) > 1e-12 {
		t.Errorf("symmetric sample has skew %v", s.Skew)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeConstantSample(t *testing.T) {
	s := Summarize([]float64{7, 7, 7, 7})
	if s.Std != 0 || s.Skew != 0 || s.Kurtosis != 0 {
		t.Errorf("constant sample: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); got != c.want {
			t.Errorf("P%v = %v, want %v", c.q, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestFitDistributionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000

	uniform := make([]float64, n)
	normal := make([]float64, n)
	gamma := make([]float64, n)
	for i := 0; i < n; i++ {
		uniform[i] = rng.Float64() * 10
		normal[i] = rng.NormFloat64()*2 + 50
		// Gamma(k=2) via sum of two exponentials.
		gamma[i] = rng.ExpFloat64() + rng.ExpFloat64()
	}
	if got := FitDistribution(uniform); got != DistUniform {
		t.Errorf("uniform classified as %v", got)
	}
	if got := FitDistribution(normal); got != DistNormal {
		t.Errorf("normal classified as %v", got)
	}
	if got := FitDistribution(gamma); got != DistGamma {
		t.Errorf("gamma classified as %v", got)
	}
}

func TestFitDistributionDegenerate(t *testing.T) {
	if FitDistribution([]float64{1, 2, 3}) != DistUnknown {
		t.Error("tiny sample should be unknown")
	}
	constant := make([]float64, 100)
	if FitDistribution(constant) != DistUnknown {
		t.Error("zero-variance sample should be unknown")
	}
}

func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		size int64
		want SizeBucket
	}{
		{0, BucketTiny}, {4095, BucketTiny},
		{4096, BucketSmall}, {65535, BucketSmall},
		{65536, BucketMedium}, {1<<20 - 1, BucketMedium},
		{1 << 20, BucketLarge}, {16<<20 - 1, BucketLarge},
		{16 << 20, BucketHuge}, {1 << 40, BucketHuge},
	}
	for _, c := range cases {
		if got := BucketOf(c.size); got != c.want {
			t.Errorf("BucketOf(%d) = %v, want %v", c.size, got, c.want)
		}
	}
}

func TestBucketNames(t *testing.T) {
	if BucketTiny.String() != "<4KB" || BucketHuge.String() != ">=16MB" {
		t.Error("bucket labels wrong")
	}
	if SizeBucket(99).String() != "?" {
		t.Error("out-of-range bucket label")
	}
}

func TestSizeHistogramAccumulation(t *testing.T) {
	var h SizeHistogram
	h.Add(1024, time.Millisecond)      // tiny
	h.Add(1024, time.Millisecond)      // tiny
	h.Add(32<<20, 16*time.Millisecond) // huge
	if h.Count[BucketTiny] != 2 || h.Count[BucketHuge] != 1 {
		t.Errorf("counts wrong: %+v", h.Count)
	}
	if h.TotalCount() != 3 || h.TotalBytes() != 2048+32<<20 {
		t.Errorf("totals wrong")
	}
	if h.DominantBucket() != BucketTiny {
		t.Errorf("dominant = %v", h.DominantBucket())
	}
	// Huge bucket: 32MiB in 16ms = 2GiB/s.
	if bw := h.Bandwidth(BucketHuge); math.Abs(bw-float64(32<<20)/0.016) > 1 {
		t.Errorf("bandwidth = %v", bw)
	}
	if h.Bandwidth(BucketMedium) != 0 {
		t.Error("empty bucket bandwidth not 0")
	}
}

func TestTimelineBinning(t *testing.T) {
	tl := NewTimeline(10*time.Second, 10)
	tl.Add(0, time.Second, 1000)                               // bin 0
	tl.Add(9*time.Second, 10*time.Second, 500)                 // bin 9
	tl.Add(4500*time.Millisecond, 5500*time.Millisecond, 2000) // spans bins 4,5
	if tl.Bytes[0] != 1000 || tl.Bytes[9] != 500 {
		t.Errorf("edge bins wrong: %v", tl.Bytes)
	}
	if tl.Bytes[4]+tl.Bytes[5] != 2000 {
		t.Errorf("split op lost bytes: %v", tl.Bytes)
	}
	if tl.Bytes[4] != 1000 || tl.Bytes[5] != 1000 {
		t.Errorf("proportional split wrong: %d/%d", tl.Bytes[4], tl.Bytes[5])
	}
	if tl.TotalBytes() != 3500 {
		t.Errorf("total = %d", tl.TotalBytes())
	}
}

func TestTimelineRates(t *testing.T) {
	tl := NewTimeline(10*time.Second, 10)
	tl.Add(0, time.Second, 4096)
	if r := tl.Rate(0); math.Abs(r-4096) > 1e-9 {
		t.Errorf("Rate(0) = %v, want 4096 B/s", r)
	}
	if tl.PeakRate() != tl.Rate(0) {
		t.Error("peak not bin 0")
	}
}

func TestTimelineClampsOutOfRange(t *testing.T) {
	tl := NewTimeline(time.Second, 4)
	tl.Add(-time.Second, 500*time.Millisecond, 100)  // clamps start
	tl.Add(900*time.Millisecond, 5*time.Second, 100) // clamps end
	tl.Add(2*time.Second, 3*time.Second, 100)        // fully out: dropped
	if tl.TotalBytes() != 200 {
		t.Errorf("total = %d, want 200", tl.TotalBytes())
	}
}

func TestTimelineZeroDurationOp(t *testing.T) {
	tl := NewTimeline(time.Second, 4)
	tl.Add(300*time.Millisecond, 300*time.Millisecond, 64)
	if tl.Bytes[1] != 64 || tl.Ops[1] != 1 {
		t.Errorf("instant op misplaced: %v %v", tl.Bytes, tl.Ops)
	}
}

func TestTimelineInvalidArgsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTimeline(0, 4) },
		func() { NewTimeline(time.Second, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: timeline never loses bytes for in-range ops.
func TestTimelineConservationProperty(t *testing.T) {
	f := func(ops []struct {
		Start uint16
		Dur   uint16
		Size  uint16
	}) bool {
		tl := NewTimeline(100*time.Millisecond, 7)
		var want int64
		for _, op := range ops {
			start := time.Duration(op.Start%90) * time.Millisecond
			end := start + time.Duration(op.Dur%10)*time.Millisecond
			tl.Add(start, end, int64(op.Size))
			want += int64(op.Size)
		}
		return tl.TotalBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: histogram totals equal the sum of inserted requests.
func TestSizeHistogramConservationProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		var h SizeHistogram
		var wantBytes int64
		for _, s := range sizes {
			h.Add(int64(s), time.Microsecond)
			wantBytes += int64(s)
		}
		return h.TotalCount() == int64(len(sizes)) && h.TotalBytes() == wantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
