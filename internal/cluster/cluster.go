// Package cluster models the compute side of an HPC system: the machine,
// its nodes, and scheduler job allocations.
//
// The paper runs all workloads on LLNL's Lassen (795 IBM Power9 nodes, 40
// usable cores and 4 Volta GPUs per node, 256GB RAM, EDR InfiniBand, a
// 24PiB GPFS file system). The characterization's Job Configuration entity
// (Table II) is built from exactly this information, so the model captures
// what the paper's JobUtility tool extracts from the scheduler.
package cluster

import (
	"fmt"
	"time"
)

// Machine describes an HPC system's node shape and scale.
type Machine struct {
	Name         string
	TotalNodes   int
	CoresPerNode int
	GPUsPerNode  int
	MemPerNodeGB int
	NetworkGbps  float64 // per-node injection bandwidth

	// Storage mount points visible to jobs.
	NodeLocalDir string // node-local burst buffer (RAM-backed on Lassen)
	TmpDir       string // node-local scratch
	SharedBBDir  string // shared burst buffer ("" when the system has none)
	PFSDir       string // parallel file system
}

// Lassen returns the machine model of the paper's testbed.
func Lassen() Machine {
	return Machine{
		Name:         "lassen",
		TotalNodes:   795,
		CoresPerNode: 40,
		GPUsPerNode:  4,
		MemPerNodeGB: 256,
		NetworkGbps:  100, // Mellanox EDR InfiniBand
		NodeLocalDir: "/dev/shm",
		TmpDir:       "/tmp",
		SharedBBDir:  "", // Lassen has no shared burst buffer (Table II: NA)
		PFSDir:       "/p/gpfs1",
	}
}

// Cori returns a Cori-like Cray XC machine: no node-local burst buffer,
// a DataWarp shared burst buffer, Lustre scratch. It exercises the
// shared-BB configuration space of Section II-B.
func Cori() Machine {
	return Machine{
		Name:         "cori",
		TotalNodes:   2388, // Haswell partition
		CoresPerNode: 32,
		GPUsPerNode:  0,
		MemPerNodeGB: 128,
		NetworkGbps:  82, // Aries
		NodeLocalDir: "",
		TmpDir:       "/tmp",
		SharedBBDir:  "/var/opt/cray/dws",
		PFSDir:       "/global/cscratch1",
	}
}

// Summit returns a Summit-like machine: 6 GPUs and a 1.6TB NVMe burst
// buffer per node, Alpine GPFS.
func Summit() Machine {
	return Machine{
		Name:         "summit",
		TotalNodes:   4608,
		CoresPerNode: 42,
		GPUsPerNode:  6,
		MemPerNodeGB: 512,
		NetworkGbps:  200, // dual-rail EDR
		NodeLocalDir: "/mnt/bb",
		TmpDir:       "/tmp",
		SharedBBDir:  "",
		PFSDir:       "/gpfs/alpine",
	}
}

// Job is a scheduler allocation: a set of nodes for a bounded time, with a
// fixed number of ranks placed round-robin-free (block) across nodes.
type Job struct {
	ID           string
	Machine      Machine
	Nodes        int
	RanksPerNode int
	TimeLimit    time.Duration
}

// NewJob validates and creates a job allocation on m.
func NewJob(id string, m Machine, nodes, ranksPerNode int, limit time.Duration) (Job, error) {
	j := Job{ID: id, Machine: m, Nodes: nodes, RanksPerNode: ranksPerNode, TimeLimit: limit}
	if err := j.Validate(); err != nil {
		return Job{}, err
	}
	return j, nil
}

// Validate checks the allocation against the machine.
func (j Job) Validate() error {
	if j.Nodes <= 0 {
		return fmt.Errorf("cluster: job %q requests %d nodes", j.ID, j.Nodes)
	}
	if j.Machine.TotalNodes > 0 && j.Nodes > j.Machine.TotalNodes {
		return fmt.Errorf("cluster: job %q requests %d nodes, machine %q has %d",
			j.ID, j.Nodes, j.Machine.Name, j.Machine.TotalNodes)
	}
	if j.RanksPerNode <= 0 {
		return fmt.Errorf("cluster: job %q has %d ranks per node", j.ID, j.RanksPerNode)
	}
	if j.Machine.CoresPerNode > 0 && j.RanksPerNode > j.Machine.CoresPerNode {
		return fmt.Errorf("cluster: job %q places %d ranks on %d-core nodes",
			j.ID, j.RanksPerNode, j.Machine.CoresPerNode)
	}
	if j.TimeLimit < 0 {
		return fmt.Errorf("cluster: job %q has negative time limit", j.ID)
	}
	return nil
}

// Ranks returns the total number of ranks in the job.
func (j Job) Ranks() int { return j.Nodes * j.RanksPerNode }

// NodeOf returns the node index hosting the given global rank, using block
// placement (ranks 0..R-1 on node 0, R..2R-1 on node 1, ...), which is the
// MPI default the paper's workloads use. It panics on out-of-range ranks.
func (j Job) NodeOf(rank int) int {
	if rank < 0 || rank >= j.Ranks() {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, j.Ranks()))
	}
	return rank / j.RanksPerNode
}

// LocalRank returns the rank's index within its node.
func (j Job) LocalRank(rank int) int {
	if rank < 0 || rank >= j.Ranks() {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, j.Ranks()))
	}
	return rank % j.RanksPerNode
}

// IsNodeLeader reports whether rank is the first rank on its node. Several
// of the paper's workloads (CM1, Montage-MPI) concentrate I/O on node
// leaders.
func (j Job) IsNodeLeader(rank int) bool { return j.LocalRank(rank) == 0 }

// LeaderOfNode returns the global rank of a node's first rank.
func (j Job) LeaderOfNode(node int) int {
	if node < 0 || node >= j.Nodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", node, j.Nodes))
	}
	return node * j.RanksPerNode
}
