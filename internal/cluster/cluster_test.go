package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLassenShape(t *testing.T) {
	m := Lassen()
	if m.TotalNodes != 795 || m.CoresPerNode != 40 || m.GPUsPerNode != 4 {
		t.Errorf("Lassen shape wrong: %+v", m)
	}
	if m.MemPerNodeGB != 256 || m.PFSDir != "/p/gpfs1" || m.NodeLocalDir != "/dev/shm" {
		t.Errorf("Lassen storage wrong: %+v", m)
	}
	if m.SharedBBDir != "" {
		t.Error("Lassen has no shared burst buffer (Table II: NA)")
	}
}

func TestNewJobValid(t *testing.T) {
	j, err := NewJob("j1", Lassen(), 32, 40, 2*time.Hour)
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	if j.Ranks() != 1280 {
		t.Errorf("Ranks = %d, want 1280", j.Ranks())
	}
}

func TestNewJobRejectsOversubscription(t *testing.T) {
	cases := []struct {
		nodes, rpn int
	}{
		{0, 40},    // zero nodes
		{-1, 40},   // negative nodes
		{1000, 40}, // more nodes than machine
		{32, 0},    // zero ranks per node
		{32, 41},   // more ranks than cores
	}
	for _, c := range cases {
		if _, err := NewJob("bad", Lassen(), c.nodes, c.rpn, time.Hour); err == nil {
			t.Errorf("NewJob(%d nodes, %d rpn) accepted, want error", c.nodes, c.rpn)
		}
	}
}

func TestNewJobRejectsNegativeLimit(t *testing.T) {
	if _, err := NewJob("bad", Lassen(), 1, 1, -time.Hour); err == nil {
		t.Error("negative time limit accepted")
	}
}

func TestBlockPlacement(t *testing.T) {
	j, _ := NewJob("j", Lassen(), 4, 10, time.Hour)
	if j.NodeOf(0) != 0 || j.NodeOf(9) != 0 || j.NodeOf(10) != 1 || j.NodeOf(39) != 3 {
		t.Error("block placement wrong")
	}
	if j.LocalRank(25) != 5 {
		t.Errorf("LocalRank(25) = %d, want 5", j.LocalRank(25))
	}
	if !j.IsNodeLeader(10) || j.IsNodeLeader(11) {
		t.Error("leader detection wrong")
	}
	if j.LeaderOfNode(3) != 30 {
		t.Errorf("LeaderOfNode(3) = %d, want 30", j.LeaderOfNode(3))
	}
}

func TestPlacementPanicsOutOfRange(t *testing.T) {
	j, _ := NewJob("j", Lassen(), 2, 4, time.Hour)
	for _, fn := range []func(){
		func() { j.NodeOf(8) },
		func() { j.NodeOf(-1) },
		func() { j.LocalRank(100) },
		func() { j.LeaderOfNode(2) },
		func() { j.LeaderOfNode(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range argument")
				}
			}()
			fn()
		}()
	}
}

// Property: every rank maps to a valid node, local ranks are within
// [0, RanksPerNode), and NodeOf/LocalRank invert block placement.
func TestPlacementInversionProperty(t *testing.T) {
	f := func(nodesRaw, rpnRaw uint8) bool {
		nodes := int(nodesRaw%64) + 1
		rpn := int(rpnRaw%40) + 1
		j, err := NewJob("p", Lassen(), nodes, rpn, time.Hour)
		if err != nil {
			return false
		}
		for rank := 0; rank < j.Ranks(); rank++ {
			n, l := j.NodeOf(rank), j.LocalRank(rank)
			if n < 0 || n >= nodes || l < 0 || l >= rpn {
				return false
			}
			if n*rpn+l != rank {
				return false
			}
			if (l == 0) != j.IsNodeLeader(rank) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCoriAndSummitShapes(t *testing.T) {
	c := Cori()
	if c.SharedBBDir == "" || c.NodeLocalDir != "" {
		t.Errorf("Cori tiers wrong: %+v", c)
	}
	if c.CoresPerNode != 32 || c.GPUsPerNode != 0 {
		t.Errorf("Cori node shape wrong: %+v", c)
	}
	s := Summit()
	if s.GPUsPerNode != 6 || s.NodeLocalDir != "/mnt/bb" || s.SharedBBDir != "" {
		t.Errorf("Summit shape wrong: %+v", s)
	}
	for _, m := range []Machine{c, s} {
		if _, err := NewJob("j", m, 16, m.CoresPerNode, time.Hour); err != nil {
			t.Errorf("%s job: %v", m.Name, err)
		}
	}
}
