package storage

import (
	"testing"
	"testing/quick"
	"time"

	"vani/internal/sim"
)

// testConfig returns a deterministic config (no jitter, no cache) so tests
// can reason about exact durations.
func testConfig() Config {
	c := Lassen()
	c.JitterFrac = 0
	c.CacheEnabled = false
	return c
}

func newSys(t *testing.T, cfg Config, nodes int) (*sim.Engine, *System) {
	t.Helper()
	e := sim.NewEngine()
	return e, New(e, cfg, nodes, sim.NewRNG(1))
}

func TestRouteByMountPrefix(t *testing.T) {
	_, s := newSys(t, testConfig(), 2)
	cases := map[string]TargetKind{
		"/p/gpfs1/data/x.bin": TargetPFS,
		"/dev/shm/x":          TargetNodeLocal,
		"/tmp/scratch/y":      TargetTmp,
		"/home/user/z":        TargetPFS, // unmatched defaults to PFS
	}
	for path, want := range cases {
		if got := s.Route(path); got != want {
			t.Errorf("Route(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestTargetKindStrings(t *testing.T) {
	if TargetPFS.String() != "gpfs" || TargetNodeLocal.String() != "shm" || TargetTmp.String() != "tmp" {
		t.Error("target names wrong")
	}
	if TargetKind(9).String() != "unknown" {
		t.Error("unknown target name wrong")
	}
}

func TestOpenCreateWriteReadRoundTrip(t *testing.T) {
	e, s := newSys(t, testConfig(), 1)
	e.Spawn("p", func(p *sim.Proc) {
		if err := s.Open(p, 0, "/p/gpfs1/f", true); err != nil {
			t.Errorf("Open: %v", err)
		}
		if err := s.Write(p, 0, "/p/gpfs1/f", 0, 4*KiB); err != nil {
			t.Errorf("Write: %v", err)
		}
		if err := s.Read(p, 0, "/p/gpfs1/f", 0, 4*KiB); err != nil {
			t.Errorf("Read: %v", err)
		}
		s.Close(p, 0, "/p/gpfs1/f")
		if sz, ok := s.FileSize(0, "/p/gpfs1/f"); !ok || sz != 4*KiB {
			t.Errorf("FileSize = %d,%v want 4KiB,true", sz, ok)
		}
	})
	e.Run()
	if s.Stats[TargetPFS].DataOps != 2 || s.Stats[TargetPFS].MetaOps != 2 {
		t.Errorf("stats = %+v", s.Stats[TargetPFS])
	}
}

func TestOpenMissingWithoutCreateFails(t *testing.T) {
	e, s := newSys(t, testConfig(), 1)
	e.Spawn("p", func(p *sim.Proc) {
		if err := s.Open(p, 0, "/p/gpfs1/missing", false); err == nil {
			t.Error("open of missing file succeeded")
		}
	})
	e.Run()
}

func TestOpenTruncates(t *testing.T) {
	e, s := newSys(t, testConfig(), 1)
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		s.Write(p, 0, "/p/gpfs1/f", 0, MiB)
		s.Open(p, 0, "/p/gpfs1/f", true) // re-create truncates
		if sz, _ := s.FileSize(0, "/p/gpfs1/f"); sz != 0 {
			t.Errorf("size after truncate = %d", sz)
		}
	})
	e.Run()
}

func TestReadPastEOFFails(t *testing.T) {
	e, s := newSys(t, testConfig(), 1)
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		s.Write(p, 0, "/p/gpfs1/f", 0, KiB)
		if err := s.Read(p, 0, "/p/gpfs1/f", 512, KiB); err == nil {
			t.Error("read past EOF succeeded")
		}
	})
	e.Run()
}

func TestReadMissingFails(t *testing.T) {
	e, s := newSys(t, testConfig(), 1)
	e.Spawn("p", func(p *sim.Proc) {
		if err := s.Read(p, 0, "/p/gpfs1/nope", 0, 1); err == nil {
			t.Error("read of missing file succeeded")
		}
		if err := s.Write(p, 0, "/p/gpfs1/nope", 0, 1); err == nil {
			t.Error("write of unopened file succeeded")
		}
	})
	e.Run()
}

func TestNegativeArgsFail(t *testing.T) {
	e, s := newSys(t, testConfig(), 1)
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		if err := s.Write(p, 0, "/p/gpfs1/f", -1, 10); err == nil {
			t.Error("negative offset accepted")
		}
		if err := s.Write(p, 0, "/p/gpfs1/f", 0, -10); err == nil {
			t.Error("negative size accepted")
		}
	})
	e.Run()
}

func TestNodeLocalNamespacesArePerNode(t *testing.T) {
	e, s := newSys(t, testConfig(), 2)
	e.Spawn("writer", func(p *sim.Proc) {
		s.Open(p, 0, "/dev/shm/inter", true)
		s.Write(p, 0, "/dev/shm/inter", 0, MiB)
	})
	e.Spawn("reader-other-node", func(p *sim.Proc) {
		p.Sleep(time.Second)
		if s.Exists(1, "/dev/shm/inter") {
			t.Error("node 1 sees node 0's /dev/shm file")
		}
		if !s.Exists(0, "/dev/shm/inter") {
			t.Error("node 0's file lost")
		}
	})
	e.Run()
}

func TestPFSNamespaceIsShared(t *testing.T) {
	e, s := newSys(t, testConfig(), 2)
	e.Spawn("writer", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/shared", true)
		s.Write(p, 0, "/p/gpfs1/shared", 0, MiB)
	})
	e.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(time.Second)
		if err := s.Read(p, 1, "/p/gpfs1/shared", 0, MiB); err != nil {
			t.Errorf("cross-node PFS read: %v", err)
		}
	})
	e.Run()
}

func TestNodeLocalFasterThanPFSForSmallOps(t *testing.T) {
	cfg := testConfig()
	var pfsTime, shmTime time.Duration
	{
		e, s := newSys(t, cfg, 1)
		e.Spawn("p", func(p *sim.Proc) {
			s.Open(p, 0, "/p/gpfs1/f", true)
			t0 := p.Now()
			for i := int64(0); i < 100; i++ {
				s.Write(p, 0, "/p/gpfs1/f", i*4*KiB, 4*KiB)
			}
			pfsTime = p.Now() - t0
		})
		e.Run()
	}
	{
		e, s := newSys(t, cfg, 1)
		e.Spawn("p", func(p *sim.Proc) {
			s.Open(p, 0, "/dev/shm/f", true)
			t0 := p.Now()
			for i := int64(0); i < 100; i++ {
				s.Write(p, 0, "/dev/shm/f", i*4*KiB, 4*KiB)
			}
			shmTime = p.Now() - t0
		})
		e.Run()
	}
	if shmTime*10 >= pfsTime {
		t.Errorf("shm (%v) not >=10x faster than PFS (%v) for small writes", shmTime, pfsTime)
	}
}

func TestStripingParallelizesLargeRequests(t *testing.T) {
	// A 32MiB request striped over 32 servers at 2GiB/s each should take
	// roughly (1MiB/2GiB/s + latency) ≈ 0.74ms rather than the 16ms a
	// single 2GiB/s server would need.
	cfg := testConfig()
	cfg.NodeNICBW = 0 // isolate server striping from the client NIC limit
	e, s := newSys(t, cfg, 1)
	var elapsed time.Duration
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/big", true)
		t0 := p.Now()
		s.Write(p, 0, "/p/gpfs1/big", 0, 32*MiB)
		elapsed = p.Now() - t0
	})
	e.Run()
	serial := bwTime(32*MiB, cfg.PFSServerBW)
	if elapsed >= serial/4 {
		t.Errorf("striped 32MiB write took %v, want much less than serial %v", elapsed, serial)
	}
}

func TestContentionSlowsConcurrentWriters(t *testing.T) {
	cfg := testConfig()
	solo := measureNWriters(t, cfg, 1)
	crowd := measureNWriters(t, cfg, 64)
	if crowd <= solo {
		t.Errorf("64 writers (%v) not slower than 1 writer (%v)", crowd, solo)
	}
	if crowd < 4*solo {
		t.Errorf("contention too weak: 64 writers %v vs solo %v", crowd, solo)
	}
}

func measureNWriters(t *testing.T, cfg Config, n int) time.Duration {
	t.Helper()
	e := sim.NewEngine()
	s := New(e, cfg, 1, sim.NewRNG(1))
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("w", func(p *sim.Proc) {
			path := "/p/gpfs1/f" + string(rune('a'+i%26)) + string(rune('a'+i/26))
			s.Open(p, 0, path, true)
			for j := int64(0); j < 16; j++ {
				s.Write(p, 0, path, j*16*MiB, 16*MiB)
			}
		})
	}
	return e.Run()
}

func TestMetadataContention(t *testing.T) {
	// Many concurrent opens queue on the metadata servers; per-op latency
	// grows with concurrency. This is the effect behind CosmoFlow's 98%
	// metadata time.
	cfg := testConfig()
	e, s := newSys(t, cfg, 1)
	const n = 256
	for i := 0; i < n; i++ {
		e.Spawn("p", func(p *sim.Proc) {
			s.Open(p, 0, "/p/gpfs1/shared", true)
			s.Close(p, 0, "/p/gpfs1/shared")
		})
	}
	end := e.Run()
	// 512 meta ops over 4 servers at 400µs each = 51.2ms minimum.
	min := time.Duration(2*n/cfg.PFSMetaServers) * cfg.PFSMetaLatency
	if end < min {
		t.Errorf("metadata storm finished in %v, queueing model demands >= %v", end, min)
	}
}

func TestPageCacheWriteAbsorption(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEnabled = true
	e, s := newSys(t, cfg, 1)
	var elapsed time.Duration
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		t0 := p.Now()
		s.Write(p, 0, "/p/gpfs1/f", 0, MiB)
		elapsed = p.Now() - t0
	})
	e.Run()
	direct := cfg.PFSDataLatency + bwTime(MiB, cfg.PFSServerBW)
	if elapsed >= direct {
		t.Errorf("cached write took %v, want < direct %v", elapsed, direct)
	}
	if s.Stats[TargetPFS].CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", s.Stats[TargetPFS].CacheHits)
	}
}

func TestPageCacheReadAfterWriteHit(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEnabled = true
	e, s := newSys(t, cfg, 1)
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		s.Write(p, 0, "/p/gpfs1/f", 0, MiB)
		t0 := p.Now()
		s.Read(p, 0, "/p/gpfs1/f", 0, MiB)
		hitTime := p.Now() - t0
		direct := cfg.PFSDataLatency + bwTime(MiB, cfg.PFSServerBW)
		if hitTime >= direct {
			t.Errorf("cache-hit read took %v, want < %v", hitTime, direct)
		}
	})
	e.Run()
	if s.Stats[TargetPFS].CacheHits < 2 {
		t.Errorf("CacheHits = %d, want >= 2", s.Stats[TargetPFS].CacheHits)
	}
}

func TestPageCacheMissOnOtherNode(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEnabled = true
	e, s := newSys(t, cfg, 2)
	e.Spawn("writer", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		s.Write(p, 0, "/p/gpfs1/f", 0, MiB)
	})
	e.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(time.Second)
		s.Read(p, 1, "/p/gpfs1/f", 0, MiB) // different node: must miss
	})
	e.Run()
	if s.Stats[TargetPFS].CacheMisses == 0 {
		t.Error("cross-node read should miss the writer's cache")
	}
}

func TestPageCacheOverflowWritesThrough(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEnabled = true
	cfg.CacheCapacity = 2 * MiB
	e, s := newSys(t, cfg, 1)
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		// 4MiB of writes against a 2MiB cache: some must write through.
		for i := int64(0); i < 4; i++ {
			s.Write(p, 0, "/p/gpfs1/f", i*MiB, MiB)
		}
	})
	e.Run()
	if s.Stats[TargetPFS].CacheMisses == 0 {
		t.Error("cache overflow never wrote through")
	}
}

func TestSyncWaitsForDrain(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEnabled = true
	e, s := newSys(t, cfg, 1)
	var syncEnd time.Duration
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		s.Write(p, 0, "/p/gpfs1/f", 0, 64*MiB) // absorbed, drains in background
		beforeSync := p.Now()
		s.Sync(p, 0, "/p/gpfs1/f")
		syncEnd = p.Now()
		if syncEnd <= beforeSync {
			t.Error("sync with dirty data returned instantly")
		}
	})
	e.Run()
}

func TestSeekIsNearFree(t *testing.T) {
	e, s := newSys(t, testConfig(), 1)
	e.Spawn("p", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 100; i++ {
			s.Seek(p, 0, "/p/gpfs1/f")
		}
		if d := p.Now() - t0; d > time.Millisecond {
			t.Errorf("100 seeks took %v, want client-side cost", d)
		}
	})
	e.Run()
}

func TestDeleteRemovesFile(t *testing.T) {
	e, s := newSys(t, testConfig(), 1)
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		s.Delete(0, "/p/gpfs1/f")
		if s.Exists(0, "/p/gpfs1/f") {
			t.Error("file exists after delete")
		}
	})
	e.Run()
}

func TestStatReportsSize(t *testing.T) {
	e, s := newSys(t, testConfig(), 1)
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/f", true)
		s.Write(p, 0, "/p/gpfs1/f", 0, 3*MiB)
		sz, err := s.Stat(p, 0, "/p/gpfs1/f")
		if err != nil || sz != 3*MiB {
			t.Errorf("Stat = %d,%v", sz, err)
		}
		if _, err := s.Stat(p, 0, "/p/gpfs1/other"); err == nil {
			t.Error("stat of missing file succeeded")
		}
	})
	e.Run()
}

func TestJitterKeepsDeterminism(t *testing.T) {
	run := func() time.Duration {
		cfg := Lassen() // jitter on
		e := sim.NewEngine()
		s := New(e, cfg, 1, sim.NewRNG(99))
		e.Spawn("p", func(p *sim.Proc) {
			s.Open(p, 0, "/p/gpfs1/f", true)
			for i := int64(0); i < 50; i++ {
				s.Write(p, 0, "/p/gpfs1/f", i*MiB, MiB)
			}
		})
		return e.Run()
	}
	if run() != run() {
		t.Error("jittered runs with the same seed diverged")
	}
}

// Property: file size equals the max write extent, regardless of op order.
func TestFileSizeMaxExtentProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := sim.NewEngine()
		s := New(e, testConfig(), 1, sim.NewRNG(1))
		var want int64
		ok := true
		e.Spawn("p", func(p *sim.Proc) {
			s.Open(p, 0, "/p/gpfs1/f", true)
			for _, o := range offsets {
				off := int64(o) * 64
				if err := s.Write(p, 0, "/p/gpfs1/f", off, 64); err != nil {
					ok = false
					return
				}
				if off+64 > want {
					want = off + 64
				}
			}
		})
		e.Run()
		got, _ := s.FileSize(0, "/p/gpfs1/f")
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: byte counters equal the sum of issued op sizes per target.
func TestByteAccountingProperty(t *testing.T) {
	f := func(sizes []uint16, shm bool) bool {
		e := sim.NewEngine()
		s := New(e, testConfig(), 1, sim.NewRNG(1))
		path := "/p/gpfs1/f"
		tgt := TargetPFS
		if shm {
			path, tgt = "/dev/shm/f", TargetNodeLocal
		}
		var want int64
		e.Spawn("p", func(p *sim.Proc) {
			s.Open(p, 0, path, true)
			var off int64
			for _, sz := range sizes {
				n := int64(sz) + 1
				s.Write(p, 0, path, off, n)
				off += n
				want += n
			}
		})
		e.Run()
		return s.Stats[tgt].BytesWritten == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{}, // all zero
		func() Config { c := Lassen(); c.PFSServers = 0; return c }(),
		func() Config { c := Lassen(); c.PFSStripeSize = 0; return c }(),
		func() Config { c := Lassen(); c.NodeLocalBW = 0; return c }(),
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted", i)
				}
			}()
			New(e, cfg, 1, sim.NewRNG(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero nodes accepted")
			}
		}()
		New(e, Lassen(), 0, sim.NewRNG(1))
	}()
}

func TestMaterializeStagesDatasetInstantly(t *testing.T) {
	e, s := newSys(t, testConfig(), 2)
	s.Materialize(0, "/p/gpfs1/input.fits", 22*MiB)
	s.Materialize(1, "/dev/shm/local", MiB)
	e.Spawn("p", func(p *sim.Proc) {
		if err := s.Read(p, 1, "/p/gpfs1/input.fits", 0, 22*MiB); err != nil {
			t.Errorf("read of materialized file: %v", err)
		}
		if !s.Exists(1, "/dev/shm/local") || s.Exists(0, "/dev/shm/local") {
			t.Error("node-local materialization wrong")
		}
	})
	if e.Run() == 0 {
		t.Error("read of materialized file cost no time")
	}
}

func TestMaterializeDoesNotShrink(t *testing.T) {
	_, s := newSys(t, testConfig(), 1)
	s.Materialize(0, "/p/gpfs1/f", 10*MiB)
	s.Materialize(0, "/p/gpfs1/f", MiB)
	if sz, _ := s.FileSize(0, "/p/gpfs1/f"); sz != 10*MiB {
		t.Errorf("size = %d, want 10MiB", sz)
	}
}

func TestCacheBypassForCrossNodeSharedFiles(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEnabled = true
	e, s := newSys(t, cfg, 2)
	e.Spawn("leader0", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/step", true)
	})
	e.Spawn("leader1", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s.Open(p, 1, "/p/gpfs1/step", false)
		p.Sleep(time.Millisecond)
		// File now opened by two nodes: GPFS-like token management
		// disables client caching, so this write pays full PFS cost.
		hits := s.Stats[TargetPFS].CacheHits
		s.Write(p, 1, "/p/gpfs1/step", 0, MiB)
		if s.Stats[TargetPFS].CacheHits != hits {
			t.Error("write to cross-node shared file used the cache")
		}
	})
	e.Run()
}

func TestCacheStillUsedForNodePrivateFiles(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEnabled = true
	e, s := newSys(t, cfg, 2)
	e.Spawn("p", func(p *sim.Proc) {
		s.Open(p, 0, "/p/gpfs1/private", true)
		s.Write(p, 0, "/p/gpfs1/private", 0, MiB)
		if s.Stats[TargetPFS].CacheHits == 0 {
			t.Error("node-private file bypassed the cache")
		}
	})
	e.Run()
}

func TestSharedBurstBufferTarget(t *testing.T) {
	cfg := Cori()
	cfg.JitterFrac = 0
	cfg.CacheEnabled = false
	e := sim.NewEngine()
	s := New(e, cfg, 4, sim.NewRNG(1))
	if s.Route("/var/opt/cray/dws/ckpt") != TargetSharedBB {
		t.Fatal("shared BB path not routed")
	}
	e.Spawn("writer", func(p *sim.Proc) {
		if err := s.Open(p, 0, "/var/opt/cray/dws/ckpt", true); err != nil {
			t.Errorf("open: %v", err)
		}
		if err := s.Write(p, 0, "/var/opt/cray/dws/ckpt", 0, 64*MiB); err != nil {
			t.Errorf("write: %v", err)
		}
		s.Close(p, 0, "/var/opt/cray/dws/ckpt")
	})
	e.Spawn("reader-other-node", func(p *sim.Proc) {
		p.Sleep(time.Second)
		// Shared namespace: another node sees the file (unlike /dev/shm).
		if err := s.Read(p, 3, "/var/opt/cray/dws/ckpt", 0, 64*MiB); err != nil {
			t.Errorf("cross-node BB read: %v", err)
		}
	})
	e.Run()
	if s.Stats[TargetSharedBB].BytesWritten != 64*MiB || s.Stats[TargetSharedBB].BytesRead != 64*MiB {
		t.Errorf("BB stats = %+v", s.Stats[TargetSharedBB])
	}
	if s.Stats[TargetSharedBB].MetaOps == 0 {
		t.Error("BB metadata not accounted")
	}
}

func TestSharedBBFasterThanPFSForSmallOps(t *testing.T) {
	cfg := Cori()
	cfg.JitterFrac = 0
	cfg.CacheEnabled = false
	measure := func(path string) time.Duration {
		e := sim.NewEngine()
		s := New(e, cfg, 1, sim.NewRNG(1))
		e.Spawn("p", func(p *sim.Proc) {
			s.Open(p, 0, path, true)
			for i := int64(0); i < 200; i++ {
				s.Write(p, 0, path, i*64*KiB, 64*KiB)
			}
			s.Close(p, 0, path)
		})
		return e.Run()
	}
	pfs := measure("/global/cscratch1/f")
	bb := measure("/var/opt/cray/dws/f")
	if bb*2 >= pfs {
		t.Errorf("BB (%v) not clearly faster than PFS (%v) for small ops", bb, pfs)
	}
}

func TestRouteWithoutBBConfigured(t *testing.T) {
	// On Lassen (no shared BB) a DataWarp-looking path routes to the PFS.
	_, s := newSys(t, testConfig(), 1)
	if s.Route("/var/opt/cray/dws/x") != TargetPFS {
		t.Error("unconfigured BB path should fall through to PFS")
	}
}

func TestCoriAndSummitConfigsValid(t *testing.T) {
	for _, cfg := range []Config{Cori(), Summit()} {
		e := sim.NewEngine()
		New(e, cfg, 2, sim.NewRNG(1)) // must not panic
	}
	if Cori().NodeLocalDir != "" {
		t.Error("Cori should have no node-local tier")
	}
	if Summit().NodeLocalDir != "/mnt/bb" {
		t.Error("Summit NVMe tier missing")
	}
}

func TestBBConfigValidation(t *testing.T) {
	cfg := Cori()
	cfg.SharedBBDir = ""
	defer func() {
		if recover() == nil {
			t.Error("incomplete BB config accepted")
		}
	}()
	New(sim.NewEngine(), cfg, 1, sim.NewRNG(1))
}
