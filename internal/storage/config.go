// Package storage models the storage side of an HPC system: a striped
// parallel file system with separate data and metadata services (GPFS-like),
// node-local storage targets (RAM-backed /dev/shm and /tmp scratch), and a
// per-node client page cache.
//
// The model is a queueing model, not a byte-accurate filesystem: what it
// reproduces are the performance phenomena the paper's characterization
// keys on — metadata-operation dominance under concurrency, the collapse of
// bandwidth at small transfer sizes, per-rank bandwidth variance from
// server contention, client-cache bandwidth spikes, and the large
// PFS-vs-node-local asymmetry exploited by the Figure 7/8 optimizations.
package storage

import "time"

// Byte-size constants used throughout the repository.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// Config holds the performance-model parameters for one storage system.
// The zero value is not usable; start from Lassen() and override.
type Config struct {
	// Parallel file system (GPFS-like).
	PFSServers     int           // data (I/O) servers serving this job
	PFSServerBW    int64         // bytes/sec per data server
	PFSStripeSize  int64         // bytes per stripe chunk
	PFSDataLatency time.Duration // fixed per-chunk RPC/network overhead
	PFSMetaServers int           // metadata servers
	PFSMetaLatency time.Duration // service demand per metadata op
	PFSCapacity    int64         // advertised capacity (Table IX)

	// NodeNICBW is each node's achievable PFS client throughput (bytes/
	// sec). GPFS on Lassen is client-limited: the file system has >2000
	// servers, so a 32-node IOR measures 32 x NodeNICBW = 64GB/s (Table
	// IX) while wider jobs pull proportionally more.
	NodeNICBW int64

	// Shared burst buffer (DataWarp-like SSD tier shared by all nodes).
	// Lassen has none (Table II: NA); Cori-style systems set these.
	SharedBBServers  int           // 0 disables the tier entirely
	SharedBBServerBW int64         // bytes/sec per BB server
	SharedBBLatency  time.Duration // per-op overhead (SSD, not disk)
	SharedBBMetaLat  time.Duration // metadata op cost
	SharedBBCapacity int64         //
	SharedBBStripe   int64         // chunking granularity across servers

	// Node-local storage (one instance per node, shared by its ranks).
	NodeLocalBW       int64         // bytes/sec per node (Table VIII: 32GB/s)
	NodeLocalLatency  time.Duration // per-op overhead
	NodeLocalMetaLat  time.Duration // metadata op cost
	NodeLocalParallel int           // parallel ops supported by the controller
	NodeLocalCapacity int64         // bytes per node

	// Client page cache (per node, in front of the PFS).
	CacheEnabled  bool
	CacheCapacity int64 // bytes per node dedicated to caching
	CacheBW       int64 // memory bandwidth for cache hits
	CacheLatency  time.Duration
	ReadAhead     int64 // sequential read prefetch window (0 disables)

	// RelaxedConsistency models UnifyFS-style middleware interposed on the
	// PFS: writes buffer node-locally regardless of cross-node sharing and
	// drain asynchronously, and close does not flush (lamination happens
	// after the job). Only safe when the workload has no cross-node
	// read-after-write dependency — the advisor checks that attribute
	// before enabling it (Section IV-D2).
	RelaxedConsistency bool

	// Service-time jitter fraction applied to PFS data service (models the
	// background interference a production PFS always has). 0 disables.
	JitterFrac float64

	// Mount points routed to each target.
	PFSDir       string
	NodeLocalDir string
	TmpDir       string
	SharedBBDir  string // "" when the system has no shared burst buffer
}

// Clone returns a private copy of the model. Config is a flat value struct
// (no pointers, slices, or maps), so the shallow copy is a full copy —
// callers that hand a Config to a concurrent analyzer (vanid's jobs, fleet
// queries) clone at the boundary so no two scans share one instance.
func (c *Config) Clone() *Config {
	cp := *c
	return &cp
}

// Lassen returns the storage model calibrated against the paper's testbed
// numbers: GPFS peaking at 64GB/s for a 32-node job (Table IX), node-local
// storage at 32GB/s per node with 64 parallel ops (Table VIII), and
// metadata service costs that make small-transfer, metadata-heavy
// workloads behave as Figures 1-6 report.
func Lassen() Config {
	return Config{
		PFSServers:     256, // the job's share of the >2000-server system
		PFSServerBW:    2 * GiB,
		PFSStripeSize:  1 * MiB,
		PFSDataLatency: 250 * time.Microsecond,
		PFSMetaServers: 32,
		PFSMetaLatency: 400 * time.Microsecond,
		PFSCapacity:    20 * 1024 * TiB, // 20PB (Table IX)
		NodeNICBW:      2 * GiB,         // 32-node IOR -> 64GB/s (Table IX)

		NodeLocalBW:       32 * GiB,
		NodeLocalLatency:  2 * time.Microsecond,
		NodeLocalMetaLat:  1 * time.Microsecond,
		NodeLocalParallel: 64,
		NodeLocalCapacity: 200 * GiB, // /dev/shm share of 256GB RAM

		CacheEnabled:  true,
		CacheCapacity: 1 * GiB, // GPFS pagepool share per node
		CacheBW:       12 * GiB,
		CacheLatency:  5 * time.Microsecond,
		ReadAhead:     8 * MiB, // GPFS sequential prefetch

		JitterFrac: 0.25,

		PFSDir:       "/p/gpfs1",
		NodeLocalDir: "/dev/shm",
		TmpDir:       "/tmp",
	}
}

// TargetKind identifies which storage target a path routes to.
type TargetKind int

// Target kinds.
const (
	TargetPFS TargetKind = iota
	TargetNodeLocal
	TargetTmp
	TargetSharedBB
	NumTargets
)

// String returns the target name used in traces ("gpfs", "shm", "tmp",
// "bb").
func (k TargetKind) String() string {
	switch k {
	case TargetPFS:
		return "gpfs"
	case TargetNodeLocal:
		return "shm"
	case TargetTmp:
		return "tmp"
	case TargetSharedBB:
		return "bb"
	}
	return "unknown"
}

// Cori returns a storage model for a Cori-like Cray XC system: Lustre
// behind DataWarp shared burst buffers, no RAM-backed node-local tier.
// It supports the paper's Section II-B discussion of DataWarp
// configurability and lets workloads exercise the shared-BB data path.
func Cori() Config {
	c := Lassen()
	c.PFSDir = "/global/cscratch1"
	c.NodeLocalDir = "" // no node-local burst buffer
	c.TmpDir = "/tmp"
	c.PFSServers = 244 // Lustre OSTs on cscratch1
	c.PFSServerBW = 3 * GiB
	c.NodeNICBW = 2 * GiB

	c.SharedBBDir = "/var/opt/cray/dws"
	c.SharedBBServers = 288
	c.SharedBBServerBW = 6 * GiB // ~1.7TB/s aggregate DataWarp
	c.SharedBBLatency = 50 * time.Microsecond
	c.SharedBBMetaLat = 60 * time.Microsecond
	c.SharedBBCapacity = 1800 * TiB
	c.SharedBBStripe = 8 * MiB
	return c
}

// Summit returns a storage model for a Summit-like system: Alpine GPFS
// plus large per-node NVMe burst buffers.
func Summit() Config {
	c := Lassen()
	c.PFSDir = "/gpfs/alpine"
	c.NodeLocalDir = "/mnt/bb"
	c.PFSServers = 320
	c.PFSServerBW = 8 * GiB // 2.5TB/s aggregate Alpine
	c.NodeNICBW = 6 * GiB
	c.NodeLocalBW = 6 * GiB // per-node NVMe (2x 1.6TB), slower than shm
	c.NodeLocalLatency = 20 * time.Microsecond
	c.NodeLocalMetaLat = 10 * time.Microsecond
	c.NodeLocalCapacity = 1600 * GiB
	return c
}
