package storage

import (
	"fmt"
	"strings"
	"time"

	"vani/internal/sim"
)

// System is one storage stack instance attached to a simulation: a striped
// PFS shared by all nodes, plus per-node node-local targets and page
// caches. All blocking methods must be called from a simulation process.
type System struct {
	e   *sim.Engine
	cfg Config
	rng *sim.RNG

	dataServers *sim.Pool // PFS data servers
	metaServers *sim.Pool // PFS metadata servers
	bbServers   *sim.Pool // shared burst-buffer servers (nil if absent)
	bbMeta      *sim.Resource
	nodeLocal   []*sim.Resource
	nics        []*sim.Resource // per-node PFS client/injection bandwidth
	caches      []*pageCache

	files map[string]*fileState

	// Counters per target, indexed by TargetKind.
	Stats [NumTargets]TargetStats
}

// TargetStats aggregates traffic per storage target.
type TargetStats struct {
	BytesRead    int64
	BytesWritten int64
	DataOps      int64
	MetaOps      int64
	CacheHits    int64
	CacheMisses  int64
}

type fileState struct {
	size   int64
	target TargetKind
	exists bool

	// openerNodes tracks which nodes have opened the file (capped at two:
	// beyond one the distinction stops mattering). GPFS-like token
	// management disables client caching for files accessed from multiple
	// nodes, which is why CM1's shared step files see raw PFS small-write
	// latency while Montage's node-private intermediates enjoy cache
	// speed.
	openerA, openerB int32 // node+1, 0 = unset
}

func (f *fileState) noteOpener(node int) {
	n := int32(node) + 1
	switch {
	case f.openerA == 0 || f.openerA == n:
		f.openerA = n
	case f.openerB == 0 || f.openerB == n:
		f.openerB = n
	}
}

// sharedAcrossNodes reports whether more than one node opened the file.
func (f *fileState) sharedAcrossNodes() bool { return f.openerB != 0 }

// New creates a storage system for a job spanning the given number of
// nodes. rng drives service-time jitter and may be shared with the caller.
func New(e *sim.Engine, cfg Config, nodes int, rng *sim.RNG) *System {
	if nodes <= 0 {
		panic("storage: node count must be positive")
	}
	if cfg.PFSServers <= 0 || cfg.PFSMetaServers <= 0 {
		panic("storage: config must have PFS servers")
	}
	if cfg.PFSStripeSize <= 0 || cfg.PFSServerBW <= 0 || cfg.NodeLocalBW <= 0 {
		panic("storage: config has non-positive rates")
	}
	s := &System{
		e:           e,
		cfg:         cfg,
		rng:         rng,
		dataServers: sim.NewPool(e, "oss", cfg.PFSServers),
		metaServers: sim.NewPool(e, "mds", cfg.PFSMetaServers),
		nodeLocal:   make([]*sim.Resource, nodes),
		caches:      make([]*pageCache, nodes),
		files:       make(map[string]*fileState),
	}
	if cfg.SharedBBServers > 0 {
		if cfg.SharedBBDir == "" || cfg.SharedBBServerBW <= 0 || cfg.SharedBBStripe <= 0 {
			panic("storage: shared BB config incomplete")
		}
		s.bbServers = sim.NewPool(e, "bb", cfg.SharedBBServers)
		s.bbMeta = sim.NewResource(e, "bb-meta")
	}
	s.nics = make([]*sim.Resource, nodes)
	for i := range s.nodeLocal {
		s.nodeLocal[i] = sim.NewResource(e, fmt.Sprintf("node%d-local", i))
		s.nics[i] = sim.NewResource(e, fmt.Sprintf("node%d-nic", i))
		s.caches[i] = newPageCache(cfg.CacheCapacity)
	}
	return s
}

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// Nodes returns the number of nodes the system serves.
func (s *System) Nodes() int { return len(s.nodeLocal) }

// Route returns the target a path resolves to, by mount-prefix matching.
// Unmatched paths go to the PFS (home directories live there too).
func (s *System) Route(path string) TargetKind {
	switch {
	case s.cfg.NodeLocalDir != "" && strings.HasPrefix(path, s.cfg.NodeLocalDir):
		return TargetNodeLocal
	case s.cfg.TmpDir != "" && strings.HasPrefix(path, s.cfg.TmpDir):
		return TargetTmp
	case s.bbServers != nil && s.cfg.SharedBBDir != "" && strings.HasPrefix(path, s.cfg.SharedBBDir):
		return TargetSharedBB
	default:
		return TargetPFS
	}
}

// key builds the namespace key. Node-local targets have per-node
// namespaces: /dev/shm/x on node 0 and node 3 are different files.
// PFS and shared-BB namespaces are global.
func (s *System) key(node int, path string) (string, TargetKind) {
	t := s.Route(path)
	if t == TargetPFS || t == TargetSharedBB {
		return path, t
	}
	return fmt.Sprintf("n%d:%s", node, path), t
}

func (s *System) lookup(node int, path string) (*fileState, string, TargetKind) {
	k, t := s.key(node, path)
	return s.files[k], k, t
}

// Open performs the open metadata operation. With create true the file is
// created (or truncated to zero); otherwise the file must exist on the
// issuing node's view of the namespace.
func (s *System) Open(p *sim.Proc, node int, path string, create bool) error {
	f, k, t := s.lookup(node, path)
	if f == nil || !f.exists {
		if !create {
			s.meta(p, node, t)
			return fmt.Errorf("storage: open %s on node %d: no such file", path, node)
		}
		f = &fileState{target: t, exists: true}
		s.files[k] = f
	} else if create {
		f.size = 0 // truncate
	}
	f.noteOpener(node)
	s.meta(p, node, t)
	return nil
}

// Materialize creates or grows a file instantly, with no time cost and no
// trace events. It stages pre-existing datasets (input FITS images, HDF5
// sample files) that exist before the job starts, so their creation does
// not pollute the workload's characterization.
func (s *System) Materialize(node int, path string, size int64) {
	k, t := s.key(node, path)
	f := s.files[k]
	if f == nil {
		f = &fileState{target: t, exists: true}
		s.files[k] = f
	}
	f.exists = true
	if size > f.size {
		f.size = size
	}
}

// Close performs the close metadata operation. For PFS files with dirty
// write-back data, close waits for the drain to finish: GPFS flushes dirty
// client-cache data on close to keep other nodes coherent, which is why
// buffered small-file writes still pay full PFS cost by the time a
// workflow stage hands its files to the next one.
func (s *System) Close(p *sim.Proc, node int, path string) {
	_, k, t := s.lookup(node, path)
	if t == TargetPFS && s.cfg.CacheEnabled && !s.cfg.RelaxedConsistency {
		if end := s.caches[node].fileDrainEnd(k); end > p.Now() {
			p.SleepUntil(end)
		}
	}
	s.meta(p, node, t)
}

// Stat performs a stat metadata operation and reports the file size.
func (s *System) Stat(p *sim.Proc, node int, path string) (int64, error) {
	f, _, t := s.lookup(node, path)
	s.meta(p, node, t)
	if f == nil || !f.exists {
		return 0, fmt.Errorf("storage: stat %s on node %d: no such file", path, node)
	}
	return f.size, nil
}

// Seek models the (client-side, near-free) seek call; it is traced as a
// metadata op by the interface layers but costs no server time.
func (s *System) Seek(p *sim.Proc, node int, path string) {
	p.Sleep(200 * time.Nanosecond)
}

// Sync performs an fsync-like metadata op; with the page cache enabled it
// also waits for the node's dirty data on that file to drain to the PFS.
func (s *System) Sync(p *sim.Proc, node int, path string) {
	_, k, t := s.lookup(node, path)
	if t == TargetPFS && s.cfg.CacheEnabled {
		if end := s.caches[node].fileDrainEnd(k); end > p.Now() {
			p.SleepUntil(end)
		}
	}
	s.meta(p, node, t)
}

// Mkdir performs a directory-creation metadata op.
func (s *System) Mkdir(p *sim.Proc, node int, path string) {
	_, t := s.key(node, path)
	s.meta(p, node, t)
}

// Readdir performs a directory-listing metadata op.
func (s *System) Readdir(p *sim.Proc, node int, path string) {
	_, t := s.key(node, path)
	s.meta(p, node, t)
}

// Delete removes a file without charging time (used by cleanup stages).
func (s *System) Delete(node int, path string) {
	k, _ := s.key(node, path)
	delete(s.files, k)
}

// FileSize reports the current size of a file as seen from node.
func (s *System) FileSize(node int, path string) (int64, bool) {
	f, _, _ := s.lookup(node, path)
	if f == nil || !f.exists {
		return 0, false
	}
	return f.size, true
}

// Exists reports whether the file exists from node's view.
func (s *System) Exists(node int, path string) bool {
	_, ok := s.FileSize(node, path)
	return ok
}

// meta charges one metadata operation against the right service.
func (s *System) meta(p *sim.Proc, node int, t TargetKind) {
	s.Stats[t].MetaOps++
	switch t {
	case TargetPFS:
		s.metaServers.UseLeastLoaded(p, s.cfg.PFSMetaLatency)
	case TargetSharedBB:
		s.bbMeta.Use(p, s.cfg.SharedBBMetaLat)
	default:
		s.nodeLocal[node].Use(p, s.cfg.NodeLocalMetaLat)
	}
}

// Write moves size bytes into the file at offset, blocking the process for
// the modeled duration. The file must have been opened/created.
func (s *System) Write(p *sim.Proc, node int, path string, offset, size int64) error {
	return s.data(p, node, path, offset, size, true)
}

// Read moves size bytes out of the file at offset. Reading past the end of
// the file is an error (workload bugs should surface, not silently read).
func (s *System) Read(p *sim.Proc, node int, path string, offset, size int64) error {
	return s.data(p, node, path, offset, size, false)
}

func (s *System) data(p *sim.Proc, node int, path string, offset, size int64, write bool) error {
	if size < 0 || offset < 0 {
		return fmt.Errorf("storage: negative offset/size on %s", path)
	}
	f, k, t := s.lookup(node, path)
	if f == nil || !f.exists {
		return fmt.Errorf("storage: %s %s on node %d: no such file",
			opName(write), path, node)
	}
	if !write && offset+size > f.size {
		return fmt.Errorf("storage: read %s on node %d: [%d,%d) past EOF %d",
			path, node, offset, offset+size, f.size)
	}
	st := &s.Stats[t]
	st.DataOps++
	if write {
		st.BytesWritten += size
		if offset+size > f.size {
			f.size = offset + size
		}
	} else {
		st.BytesRead += size
	}
	shared := f.sharedAcrossNodes()
	if s.cfg.RelaxedConsistency {
		// UnifyFS-style interposition buffers every write node-locally,
		// even on files other nodes have opened.
		shared = false
	}
	switch t {
	case TargetPFS:
		s.pfsData(p, node, k, offset, size, f.size, write, shared)
	case TargetSharedBB:
		s.bbData(p, node, k, offset, size)
	default:
		s.localData(p, node, size)
	}
	return nil
}

// bbData charges a shared burst-buffer transfer: striped across the BB
// servers like the PFS, with SSD-class per-op latency and no client-cache
// semantics (DataWarp exposes a scratch namespace, not a coherent cached
// file system).
func (s *System) bbData(p *sim.Proc, node int, key string, offset, size int64) {
	stripe := s.cfg.SharedBBStripe
	fileHash := hashString(key)
	n := len(s.bbServers.Servers)
	var last time.Duration
	remaining, off := size, offset
	for remaining > 0 {
		chunkIdx := off / stripe
		inChunk := stripe - off%stripe
		if inChunk > remaining {
			inChunk = remaining
		}
		svc := s.cfg.SharedBBLatency + bwTime(inChunk, s.cfg.SharedBBServerBW)
		server := int((fileHash + uint64(chunkIdx)) % uint64(n))
		_, end := s.bbServers.Servers[server].Reserve(svc)
		if end > last {
			last = end
		}
		off += inChunk
		remaining -= inChunk
	}
	if last == 0 {
		_, last = s.bbServers.Servers[int(fileHash%uint64(n))].Reserve(s.cfg.SharedBBLatency)
	}
	// Unlike the PFS path, burst-buffer traffic is not bounded by the PFS
	// client stack's per-node throughput: DataWarp's raison d'etre is a
	// fabric-level data path that sidesteps that bottleneck.
	p.SleepUntil(last)
}

func opName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// localData charges a node-local transfer: per-op latency plus bytes over
// the node controller's bandwidth, serialized FCFS on the node resource.
func (s *System) localData(p *sim.Proc, node int, size int64) {
	svc := s.cfg.NodeLocalLatency + bwTime(size, s.cfg.NodeLocalBW)
	s.nodeLocal[node].Use(p, svc)
}

// pfsData charges a PFS transfer. Writes land in the node page cache when
// enabled and there is room, with asynchronous drain to the data servers;
// reads hit the cache when the node recently wrote or read the file.
// Otherwise the request is split into stripe chunks routed across the data
// servers in parallel, and the process blocks until the last chunk lands.
func (s *System) pfsData(p *sim.Proc, node int, key string, offset, size, fileSize int64, write, shared bool) {
	c := s.caches[node]
	if s.cfg.CacheEnabled && !shared {
		if write {
			if c.reserveDirty(size, s.e.Now()) {
				s.Stats[TargetPFS].CacheHits++
				// Absorb at memory speed; drain to servers in background.
				p.Sleep(s.cfg.CacheLatency + bwTime(size, s.cfg.CacheBW))
				drainEnd := s.stripeReserve(key, offset, size)
				if nicEnd := s.nicReserve(node, size); nicEnd > drainEnd {
					drainEnd = nicEnd
				}
				c.scheduleDrain(key, drainEnd)
				c.insert(key, offset+size)
				return
			}
			s.Stats[TargetPFS].CacheMisses++
			// No room: synchronous write-through below.
		} else {
			if c.covers(key, offset+size) {
				s.Stats[TargetPFS].CacheHits++
				p.Sleep(s.cfg.CacheLatency + bwTime(size, s.cfg.CacheBW))
				return
			}
			s.Stats[TargetPFS].CacheMisses++
		}
	}
	// Sequential read-ahead: a cache-miss read on a cacheable file
	// prefetches a larger window, so streaming 64KB reads amortize the
	// per-request PFS latency and run at NIC speed (GPFS prefetch).
	fetch := size
	if !write && s.cfg.CacheEnabled && !shared && s.cfg.ReadAhead > size {
		fetch = s.cfg.ReadAhead
		if offset+fetch > fileSize {
			fetch = fileSize - offset
		}
		if fetch < size {
			fetch = size
		}
	}
	end := s.stripeReserve(key, offset, fetch)
	if nicEnd := s.nicReserve(node, fetch); nicEnd > end {
		end = nicEnd
	}
	p.SleepUntil(end)
	if s.cfg.CacheEnabled && !write {
		c.insert(key, offset+fetch)
	}
}

// nicReserve books the node's PFS client bandwidth for a transfer and
// returns its completion time (zero when the NIC is unconstrained).
func (s *System) nicReserve(node int, size int64) time.Duration {
	if s.cfg.NodeNICBW <= 0 {
		return 0
	}
	_, end := s.nics[node].Reserve(bwTime(size, s.cfg.NodeNICBW))
	return end
}

// stripeReserve splits [offset, offset+size) into stripe chunks, reserves
// each on its server (FCFS), and returns the latest completion time.
func (s *System) stripeReserve(key string, offset, size int64) time.Duration {
	stripe := s.cfg.PFSStripeSize
	fileHash := hashString(key)
	n := len(s.dataServers.Servers)
	var last time.Duration
	for size > 0 {
		chunkIdx := offset / stripe
		inChunk := stripe - offset%stripe
		if inChunk > size {
			inChunk = size
		}
		svc := s.cfg.PFSDataLatency + bwTime(inChunk, s.cfg.PFSServerBW)
		if s.cfg.JitterFrac > 0 && s.rng != nil {
			svc = time.Duration(s.rng.Jitter(float64(svc), s.cfg.JitterFrac))
		}
		server := int((fileHash + uint64(chunkIdx)) % uint64(n))
		_, end := s.dataServers.Servers[server].Reserve(svc)
		if end > last {
			last = end
		}
		offset += inChunk
		size -= inChunk
	}
	if last == 0 { // zero-byte op still pays one round trip
		svc := s.cfg.PFSDataLatency
		server := int(fileHash % uint64(n))
		_, last = s.dataServers.Servers[server].Reserve(svc)
	}
	return last
}

// bwTime converts bytes at bytes/sec into a duration.
func bwTime(size, bw int64) time.Duration {
	if size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / float64(bw) * float64(time.Second))
}

// hashString is FNV-1a, used to spread files across servers.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// PFSUtilization returns mean data-server utilization, for tests and the
// Table IX probe.
func (s *System) PFSUtilization() float64 {
	var u float64
	for _, srv := range s.dataServers.Servers {
		u += srv.Utilization()
	}
	return u / float64(len(s.dataServers.Servers))
}

// pageCache is a per-node client cache. It tracks which files (by
// namespace key) have data cached on the node and how much dirty write-back
// data is outstanding. Whole-extent tracking ([0, high)) is enough for the
// workloads modeled, which write and read files contiguously.
type pageCache struct {
	capacity  int64
	used      int64
	dirty     int64
	drainEnd  time.Duration
	fileDrain map[string]time.Duration // per-file write-back completion
	extent    map[string]int64         // key -> cached bytes [0, extent)
	order     []string                 // LRU order, oldest first
}

func newPageCache(capacity int64) *pageCache {
	return &pageCache{
		capacity:  capacity,
		extent:    make(map[string]int64),
		fileDrain: make(map[string]time.Duration),
	}
}

// covers reports whether [0, end) of the file is cached on this node.
func (c *pageCache) covers(key string, end int64) bool {
	return c.extent[key] >= end
}

// insert records that [0, end) of the file is now cached, evicting
// least-recently-inserted files when over budget.
func (c *pageCache) insert(key string, end int64) {
	if c.capacity <= 0 {
		return
	}
	old, ok := c.extent[key]
	if end <= old {
		return
	}
	c.used += end - old
	c.extent[key] = end
	if !ok {
		c.order = append(c.order, key)
	}
	for c.used > c.capacity && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		if victim == key {
			// Never evict the file just inserted; push it to the back.
			c.order = append(c.order, victim)
			if len(c.order) == 1 {
				break
			}
			continue
		}
		c.used -= c.extent[victim]
		delete(c.extent, victim)
	}
}

// reserveDirty claims write-back budget for size bytes, failing when the
// cache cannot absorb the write.
func (c *pageCache) reserveDirty(size int64, now time.Duration) bool {
	if c.capacity <= 0 {
		return false
	}
	if now >= c.drainEnd {
		c.dirty = 0 // everything scheduled so far has drained
	}
	if c.dirty+size > c.capacity {
		return false
	}
	c.dirty += size
	return true
}

// scheduleDrain records when the reserved dirty bytes of one file will
// have drained to the PFS.
func (c *pageCache) scheduleDrain(key string, end time.Duration) {
	if end > c.drainEnd {
		c.drainEnd = end
	}
	if end > c.fileDrain[key] {
		c.fileDrain[key] = end
	}
}

// fileDrainEnd returns when a file's outstanding dirty data will be on the
// PFS (zero if it has none).
func (c *pageCache) fileDrainEnd(key string) time.Duration { return c.fileDrain[key] }

// dirtyDrainTime returns when all outstanding dirty data will be on the PFS.
func (c *pageCache) dirtyDrainTime() time.Duration { return c.drainEnd }
