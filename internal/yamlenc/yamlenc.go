// Package yamlenc is a minimal YAML emitter for the characterization
// output. The paper's Analyzer "generates a YAML file of entities and
// attributes with workload-specific values" that storage systems load;
// this package produces that artifact using only the standard library.
//
// It supports the subset of YAML the characterization needs: nested
// structs, maps with string keys, slices, and scalars. Struct fields may
// carry a `yaml:"name"` tag; untagged fields use the lower-snake-case of
// the Go name. Fields tagged `yaml:"-"` are skipped.
package yamlenc

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Marshal renders v as a YAML document.
func Marshal(v interface{}) []byte {
	var b strings.Builder
	enc := encoder{b: &b}
	enc.value(reflect.ValueOf(v), 0, false)
	return []byte(b.String())
}

type encoder struct {
	b *strings.Builder
}

func (e *encoder) indent(n int) {
	for i := 0; i < n; i++ {
		e.b.WriteString("  ")
	}
}

// value emits v at the given indentation. inline is true when the value
// follows "key:" on the same line (scalars) or must start a block.
func (e *encoder) value(v reflect.Value, depth int, inline bool) {
	if !v.IsValid() {
		e.b.WriteString("null\n")
		return
	}
	for v.Kind() == reflect.Ptr || v.Kind() == reflect.Interface {
		if v.IsNil() {
			e.b.WriteString("null\n")
			return
		}
		v = v.Elem()
	}
	// time.Duration prints as its string form.
	if v.Type() == reflect.TypeOf(time.Duration(0)) {
		fmt.Fprintf(e.b, "%s\n", time.Duration(v.Int()))
		return
	}
	switch v.Kind() {
	case reflect.Struct:
		e.structVal(v, depth, inline)
	case reflect.Map:
		e.mapVal(v, depth, inline)
	case reflect.Slice, reflect.Array:
		e.sliceVal(v, depth, inline)
	case reflect.String:
		e.b.WriteString(quote(v.String()))
		e.b.WriteByte('\n')
	case reflect.Bool:
		fmt.Fprintf(e.b, "%v\n", v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(e.b, "%d\n", v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(e.b, "%d\n", v.Uint())
	case reflect.Float32, reflect.Float64:
		fmt.Fprintf(e.b, "%g\n", v.Float())
	default:
		fmt.Fprintf(e.b, "%q\n", fmt.Sprint(v.Interface()))
	}
}

func (e *encoder) structVal(v reflect.Value, depth int, inline bool) {
	t := v.Type()
	type field struct {
		name string
		val  reflect.Value
	}
	var fields []field
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		name := f.Tag.Get("yaml")
		if name == "-" {
			continue
		}
		if name == "" {
			name = snake(f.Name)
		}
		fields = append(fields, field{name, v.Field(i)})
	}
	if len(fields) == 0 {
		e.b.WriteString("{}\n")
		return
	}
	if inline {
		e.b.WriteByte('\n')
	}
	for _, f := range fields {
		e.indent(depth)
		e.b.WriteString(f.name)
		e.b.WriteString(":")
		e.keyed(f.val, depth)
	}
}

func (e *encoder) mapVal(v reflect.Value, depth int, inline bool) {
	if v.Len() == 0 {
		e.b.WriteString("{}\n")
		return
	}
	if inline {
		e.b.WriteByte('\n')
	}
	keys := make([]string, 0, v.Len())
	byKey := map[string]reflect.Value{}
	for _, k := range v.MapKeys() {
		ks := fmt.Sprint(k.Interface())
		keys = append(keys, ks)
		byKey[ks] = v.MapIndex(k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.indent(depth)
		e.b.WriteString(quote(k))
		e.b.WriteString(":")
		e.keyed(byKey[k], depth)
	}
}

// keyed emits the value after a "key:" prefix already written.
func (e *encoder) keyed(v reflect.Value, depth int) {
	if isScalar(v) || isEmptyContainer(v) {
		e.b.WriteByte(' ')
		e.value(v, depth, false)
		return
	}
	e.value(v, depth+1, true)
}

// isEmptyContainer reports whether v renders as "{}" or "[]".
func isEmptyContainer(v reflect.Value) bool {
	for v.Kind() == reflect.Ptr || v.Kind() == reflect.Interface {
		if v.IsNil() {
			return false
		}
		v = v.Elem()
	}
	switch v.Kind() {
	case reflect.Map, reflect.Slice, reflect.Array:
		return v.Len() == 0
	case reflect.Struct:
		if v.Type() == reflect.TypeOf(time.Duration(0)) {
			return false
		}
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath == "" && f.Tag.Get("yaml") != "-" {
				return false
			}
		}
		return true
	}
	return false
}

func (e *encoder) sliceVal(v reflect.Value, depth int, inline bool) {
	if v.Len() == 0 {
		e.b.WriteString("[]\n")
		return
	}
	if inline {
		e.b.WriteByte('\n')
	}
	for i := 0; i < v.Len(); i++ {
		e.indent(depth)
		e.b.WriteString("-")
		el := v.Index(i)
		switch {
		case isScalar(el) || isEmptyContainer(el):
			e.b.WriteByte(' ')
			e.value(el, depth, false)
		case elemKind(el) == reflect.Slice || elemKind(el) == reflect.Array:
			// Nested sequences go on their own lines: "- - x" is ambiguous.
			e.b.WriteByte('\n')
			e.value(el, depth+1, false)
		default:
			e.b.WriteByte(' ')
			// Block elements start on the same line for compactness:
			// "- name: x" style.
			e.inlineBlock(el, depth+1)
		}
	}
}

// elemKind resolves pointers/interfaces to the underlying kind.
func elemKind(v reflect.Value) reflect.Kind {
	for v.Kind() == reflect.Ptr || v.Kind() == reflect.Interface {
		if v.IsNil() {
			return reflect.Invalid
		}
		v = v.Elem()
	}
	return v.Kind()
}

// inlineBlock emits a struct/map with its first key on the current line.
func (e *encoder) inlineBlock(v reflect.Value, depth int) {
	var b strings.Builder
	sub := encoder{b: &b}
	sub.value(v, depth, false)
	out := b.String()
	// Strip the indentation of the first line only.
	trimmed := strings.TrimLeft(out, " ")
	e.b.WriteString(trimmed)
}

func isScalar(v reflect.Value) bool {
	for v.Kind() == reflect.Ptr || v.Kind() == reflect.Interface {
		if v.IsNil() {
			return true
		}
		v = v.Elem()
	}
	if v.Type() == reflect.TypeOf(time.Duration(0)) {
		return true
	}
	switch v.Kind() {
	case reflect.Struct, reflect.Map, reflect.Slice, reflect.Array:
		return false
	}
	return true
}

// quote wraps strings that need quoting in YAML.
func quote(s string) string {
	if s == "" {
		return `""`
	}
	plain := true
	for _, r := range s {
		if !(unicode.IsLetter(r) || unicode.IsDigit(r) ||
			strings.ContainsRune("-_./()%><=+ ", r)) {
			plain = false
			break
		}
	}
	switch s {
	case "true", "false", "null", "yes", "no", "on", "off", "{}", "[]":
		plain = false
	}
	// Numeric-looking strings must be quoted or they would decode as
	// numbers.
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		plain = false
	}
	if strings.HasPrefix(s, "- ") {
		plain = false
	}
	if plain && !strings.HasPrefix(s, " ") && !strings.HasSuffix(s, " ") {
		return s
	}
	return fmt.Sprintf("%q", s)
}

// snake converts CamelCase to lower_snake_case ("IOBytes" -> "io_bytes").
func snake(s string) string {
	var out []rune
	runes := []rune(s)
	for i, r := range runes {
		if unicode.IsUpper(r) {
			prevLower := i > 0 && unicode.IsLower(runes[i-1])
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if i > 0 && (prevLower || nextLower) {
				out = append(out, '_')
			}
			out = append(out, unicode.ToLower(r))
		} else {
			out = append(out, r)
		}
	}
	return string(out)
}
