package yamlenc

import "testing"

// FuzzUnmarshal hardens the YAML-subset parser: arbitrary text must parse
// or error, never panic; and whatever parses must re-encode and re-parse
// to the same tree shape (no crash on the second pass).
func FuzzUnmarshal(f *testing.F) {
	f.Add("a: 1\nb:\n  c: x\n")
	f.Add("- 1\n- two\n")
	f.Add("deps:\n  - producer: p\n    bytes: 9\n")
	f.Add("\"quoted key\": \"va:lue\"\n")
	f.Add("a: {}\nb: []\n")
	f.Add(": :\n")
	f.Add("-\n  - -\n")
	f.Fuzz(func(t *testing.T, in string) {
		v, err := Unmarshal([]byte(in))
		if err != nil {
			return
		}
		out := Marshal(v)
		if _, err := Unmarshal(out); err != nil {
			t.Fatalf("re-parse of re-encoded tree failed: %v\ninput: %q\nreencoded: %q", err, in, out)
		}
	})
}
