package yamlenc

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"time"
)

// Unmarshal parses the YAML subset this package emits back into a generic
// tree: map[string]interface{} for mappings, []interface{} for sequences,
// and string/float64/bool/nil scalars. The paper's vision is a storage
// system that loads the characterization artifact; Unmarshal+Decode are
// that loading path.
func Unmarshal(data []byte) (interface{}, error) {
	p := &parser{}
	for _, raw := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(raw) == "" {
			continue
		}
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent%2 != 0 {
			return nil, fmt.Errorf("yamlenc: odd indentation in %q", raw)
		}
		p.lines = append(p.lines, line{depth: indent / 2, text: raw[indent:]})
	}
	if len(p.lines) == 0 {
		return nil, nil
	}
	// A single line that is neither a mapping entry nor a sequence item is
	// a bare scalar document.
	if len(p.lines) == 1 && !strings.HasPrefix(p.lines[0].text, "- ") {
		if _, _, err := splitKey(p.lines[0].text); err != nil {
			return scalar(p.lines[0].text), nil
		}
	}
	v, err := p.block(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("yamlenc: trailing content at %q", p.lines[p.pos].text)
	}
	return v, nil
}

type line struct {
	depth int
	text  string
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

// block parses a mapping or sequence whose entries sit at depth.
func (p *parser) block(depth int) (interface{}, error) {
	first, ok := p.peek()
	if !ok || first.depth < depth {
		return nil, fmt.Errorf("yamlenc: empty block")
	}
	if isSeqItem(first.text) {
		return p.sequence(depth)
	}
	return p.mapping(depth)
}

func (p *parser) mapping(depth int) (interface{}, error) {
	m := map[string]interface{}{}
	for {
		ln, ok := p.peek()
		if !ok || ln.depth < depth || isSeqItem(ln.text) {
			break
		}
		if ln.depth != depth {
			return nil, fmt.Errorf("yamlenc: unexpected indent at %q", ln.text)
		}
		key, rest, err := splitKey(ln.text)
		if err != nil {
			return nil, err
		}
		p.pos++
		if rest != "" {
			m[key] = scalar(rest)
			continue
		}
		// Nested block at deeper indent, or an implicit empty value.
		next, ok := p.peek()
		if !ok || next.depth <= depth {
			m[key] = nil
			continue
		}
		v, err := p.block(depth + 1)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

func (p *parser) sequence(depth int) (interface{}, error) {
	var seq []interface{}
	for {
		ln, ok := p.peek()
		if !ok || ln.depth != depth || !isSeqItem(ln.text) {
			break
		}
		body := strings.TrimPrefix(ln.text, "-")
		body = strings.TrimPrefix(body, " ")
		if body == "" {
			p.pos++
			v, err := p.block(depth + 1)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		if key, rest, err := splitKey(body); err == nil {
			// "- key: value" starts an inline map item; its remaining keys
			// sit one level deeper.
			item := map[string]interface{}{}
			p.pos++
			if rest != "" {
				item[key] = scalar(rest)
			} else if next, ok := p.peek(); ok && next.depth > depth+1 {
				v, err := p.block(depth + 2)
				if err != nil {
					return nil, err
				}
				item[key] = v
			} else {
				item[key] = nil
			}
			for {
				next, ok := p.peek()
				if !ok || next.depth != depth+1 || isSeqItem(next.text) {
					break
				}
				k2, r2, err := splitKey(next.text)
				if err != nil {
					return nil, err
				}
				p.pos++
				if r2 != "" {
					item[k2] = scalar(r2)
					continue
				}
				if deeper, ok := p.peek(); ok && deeper.depth > depth+1 {
					v, err := p.block(depth + 2)
					if err != nil {
						return nil, err
					}
					item[k2] = v
				} else {
					item[k2] = nil
				}
			}
			seq = append(seq, item)
			continue
		}
		// Plain scalar item.
		p.pos++
		seq = append(seq, scalar(body))
	}
	return seq, nil
}

// isSeqItem reports whether a line starts a sequence item ("- x" or a
// bare "-"); "-0" is a scalar, not an item.
func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// splitKey splits "key: value" or "key:"; keys may be quoted.
func splitKey(s string) (key, rest string, err error) {
	if strings.HasPrefix(s, "\"") {
		// Scan for the closing quote, honoring backslash escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", "", fmt.Errorf("yamlenc: unterminated key in %q", s)
		}
		key, err = strconv.Unquote(s[:end+1])
		if err != nil {
			return "", "", err
		}
		s = s[end+1:]
		if !strings.HasPrefix(s, ":") {
			return "", "", fmt.Errorf("yamlenc: missing colon after key %q", key)
		}
		return key, strings.TrimPrefix(strings.TrimPrefix(s, ":"), " "), nil
	}
	i := strings.Index(s, ":")
	if i < 0 {
		return "", "", fmt.Errorf("yamlenc: no key in %q", s)
	}
	rest = s[i+1:]
	if rest != "" && !strings.HasPrefix(rest, " ") {
		return "", "", fmt.Errorf("yamlenc: malformed entry %q", s)
	}
	return s[:i], strings.TrimPrefix(rest, " "), nil
}

// scalar interprets a scalar token.
func scalar(s string) interface{} {
	switch s {
	case "null":
		return nil
	case "true":
		return true
	case "false":
		return false
	case "{}":
		return map[string]interface{}{}
	case "[]":
		return []interface{}{}
	}
	if strings.HasPrefix(s, "\"") {
		if u, err := strconv.Unquote(s); err == nil {
			return u
		}
		return s
	}
	// Integers stay int64 so 64-bit values round-trip without float
	// precision loss.
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// Decode unmarshals data and assigns it into out (a pointer to a struct),
// matching fields by their yaml tag or lower-snake-case name — the inverse
// of Marshal for the types the characterization uses.
func Decode(data []byte, out interface{}) error {
	tree, err := Unmarshal(data)
	if err != nil {
		return err
	}
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return fmt.Errorf("yamlenc: Decode target must be a non-nil pointer")
	}
	return assign(tree, rv.Elem())
}

func assign(v interface{}, dst reflect.Value) error {
	if v == nil {
		dst.Set(reflect.Zero(dst.Type()))
		return nil
	}
	if dst.Kind() == reflect.Ptr {
		if dst.IsNil() {
			dst.Set(reflect.New(dst.Type().Elem()))
		}
		return assign(v, dst.Elem())
	}
	// time.Duration arrives as a string ("2h0m0s") or a bare number.
	if dst.Type() == reflect.TypeOf(time.Duration(0)) {
		switch t := v.(type) {
		case string:
			d, err := time.ParseDuration(t)
			if err != nil {
				return fmt.Errorf("yamlenc: bad duration %q: %v", t, err)
			}
			dst.SetInt(int64(d))
			return nil
		case int64:
			dst.SetInt(t)
			return nil
		case float64:
			dst.SetInt(int64(t))
			return nil
		}
		return fmt.Errorf("yamlenc: cannot decode %T into time.Duration", v)
	}
	switch dst.Kind() {
	case reflect.Struct:
		m, ok := v.(map[string]interface{})
		if !ok {
			return fmt.Errorf("yamlenc: cannot decode %T into struct %s", v, dst.Type())
		}
		t := dst.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				continue
			}
			name := f.Tag.Get("yaml")
			if name == "-" {
				continue
			}
			if name == "" {
				name = snake(f.Name)
			}
			fv, ok := m[name]
			if !ok {
				continue
			}
			if err := assign(fv, dst.Field(i)); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	case reflect.Map:
		m, ok := v.(map[string]interface{})
		if !ok {
			return fmt.Errorf("yamlenc: cannot decode %T into map", v)
		}
		if len(m) == 0 {
			// "{}" decodes to the zero map: nil and empty encode the same.
			dst.Set(reflect.Zero(dst.Type()))
			return nil
		}
		out := reflect.MakeMapWithSize(dst.Type(), len(m))
		for k, mv := range m {
			ev := reflect.New(dst.Type().Elem()).Elem()
			if err := assign(mv, ev); err != nil {
				return err
			}
			out.SetMapIndex(reflect.ValueOf(k).Convert(dst.Type().Key()), ev)
		}
		dst.Set(out)
		return nil
	case reflect.Slice:
		s, ok := v.([]interface{})
		if !ok {
			return fmt.Errorf("yamlenc: cannot decode %T into slice", v)
		}
		if len(s) == 0 {
			dst.Set(reflect.Zero(dst.Type()))
			return nil
		}
		out := reflect.MakeSlice(dst.Type(), len(s), len(s))
		for i, ev := range s {
			if err := assign(ev, out.Index(i)); err != nil {
				return err
			}
		}
		dst.Set(out)
		return nil
	case reflect.String:
		switch t := v.(type) {
		case string:
			dst.SetString(t)
		case int64:
			dst.SetString(strconv.FormatInt(t, 10))
		case float64:
			dst.SetString(strconv.FormatFloat(t, 'g', -1, 64))
		case bool:
			dst.SetString(strconv.FormatBool(t))
		default:
			return fmt.Errorf("yamlenc: cannot decode %T into string", v)
		}
		return nil
	case reflect.Bool:
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("yamlenc: cannot decode %T into bool", v)
		}
		dst.SetBool(b)
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		switch t := v.(type) {
		case int64:
			dst.SetInt(t)
		case float64:
			dst.SetInt(int64(t))
		default:
			return fmt.Errorf("yamlenc: cannot decode %T into %s", v, dst.Kind())
		}
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		switch t := v.(type) {
		case int64:
			if t < 0 {
				return fmt.Errorf("yamlenc: negative value into %s", dst.Kind())
			}
			dst.SetUint(uint64(t))
		case float64:
			if t < 0 {
				return fmt.Errorf("yamlenc: negative value into %s", dst.Kind())
			}
			dst.SetUint(uint64(t))
		default:
			return fmt.Errorf("yamlenc: cannot decode %T into %s", v, dst.Kind())
		}
		return nil
	case reflect.Float32, reflect.Float64:
		switch t := v.(type) {
		case int64:
			dst.SetFloat(float64(t))
		case float64:
			dst.SetFloat(t)
		default:
			return fmt.Errorf("yamlenc: cannot decode %T into %s", v, dst.Kind())
		}
		return nil
	case reflect.Interface:
		dst.Set(reflect.ValueOf(v))
		return nil
	}
	return fmt.Errorf("yamlenc: unsupported decode kind %s", dst.Kind())
}
