package yamlenc

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestUnmarshalScalars(t *testing.T) {
	cases := []struct {
		in   string
		want interface{}
	}{
		{"42\n", int64(42)},
		{"-3.5\n", -3.5},
		{"true\n", true},
		{"hello\n", "hello"},
		{"\"true\"\n", "true"},
		{"null\n", nil},
	}
	for _, c := range cases {
		got, err := Unmarshal([]byte(c.in))
		if err != nil {
			t.Fatalf("Unmarshal(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Unmarshal(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestUnmarshalNestedMapping(t *testing.T) {
	in := "a: 1\nb:\n  c: x\n  d:\n    e: true\nf: 2\n"
	got, err := Unmarshal([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]interface{}{
		"a": int64(1),
		"b": map[string]interface{}{
			"c": "x",
			"d": map[string]interface{}{"e": true},
		},
		"f": int64(2),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v\nwant %#v", got, want)
	}
}

func TestUnmarshalSequences(t *testing.T) {
	in := "- 1\n- two\n- true\n"
	got, err := Unmarshal([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []interface{}{int64(1), "two", true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v", got)
	}
}

func TestUnmarshalListOfMaps(t *testing.T) {
	in := "deps:\n  - producer: mProject\n    bytes: 100\n  - producer: mDiff\n    bytes: 200\n"
	got, err := Unmarshal([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]interface{})
	deps := m["deps"].([]interface{})
	if len(deps) != 2 {
		t.Fatalf("deps = %#v", deps)
	}
	first := deps[0].(map[string]interface{})
	if first["producer"] != "mProject" || first["bytes"] != int64(100) {
		t.Errorf("first = %#v", first)
	}
}

func TestUnmarshalEmptyContainers(t *testing.T) {
	got, err := Unmarshal([]byte("a: {}\nb: []\n"))
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]interface{})
	if len(m["a"].(map[string]interface{})) != 0 || len(m["b"].([]interface{})) != 0 {
		t.Errorf("got %#v", m)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, in := range []string{
		" a: 1\n",       // odd indent
		"a: 1\n   b: 2", // odd indent
	} {
		if _, err := Unmarshal([]byte(in)); err == nil {
			t.Errorf("Unmarshal(%q) accepted", in)
		}
	}
}

type decTarget struct {
	Nodes    int
	PFSDir   string `yaml:"pfs_dir"`
	JobTime  time.Duration
	Ratio    float64
	Enabled  bool
	Deps     []decDep
	ByName   map[string]int
	Nested   decNested
	Ignored  string `yaml:"-"`
	internal int
}

type decDep struct {
	Producer string
	Bytes    int64
}

type decNested struct {
	Value uint32
}

func TestDecodeIntoStruct(t *testing.T) {
	src := decTarget{
		Nodes: 32, PFSDir: "/p/gpfs1", JobTime: 2 * time.Hour,
		Ratio: 0.75, Enabled: true,
		Deps:   []decDep{{"mProject", 100}, {"mDiff", 200}},
		ByName: map[string]int{"a": 1, "b": 2},
		Nested: decNested{Value: 9},
	}
	_ = src.internal
	data := Marshal(src)
	var got decTarget
	if err := Decode(data, &got); err != nil {
		t.Fatalf("Decode: %v\nyaml:\n%s", err, data)
	}
	if !reflect.DeepEqual(got, src) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, src)
	}
}

func TestDecodeRejectsBadTargets(t *testing.T) {
	if err := Decode([]byte("a: 1\n"), nil); err == nil {
		t.Error("nil target accepted")
	}
	var v decTarget
	if err := Decode([]byte("nodes: notanumber\n"), &v); err == nil {
		t.Error("string into int accepted")
	}
	if err := Decode([]byte("job_time: 5 parsecs\n"), &v); err == nil {
		t.Error("bad duration accepted")
	}
}

func TestDecodeMissingFieldsLeaveZero(t *testing.T) {
	var v decTarget
	if err := Decode([]byte("nodes: 7\n"), &v); err != nil {
		t.Fatal(err)
	}
	if v.Nodes != 7 || v.PFSDir != "" || v.JobTime != 0 {
		t.Errorf("got %+v", v)
	}
}

// Property: Marshal -> Decode is the identity for randomized instances of
// the characterization-like struct shape.
func TestMarshalDecodeRoundTripProperty(t *testing.T) {
	f := func(nodes int32, dir string, secs uint32, ratio float64, on bool, prods []int64) bool {
		if len(dir) > 64 {
			dir = dir[:64]
		}
		src := decTarget{
			Nodes: int(nodes), PFSDir: dir,
			JobTime: time.Duration(secs) * time.Second,
			Ratio:   ratio, Enabled: on,
		}
		for i, p := range prods {
			if i >= 5 {
				break
			}
			src.Deps = append(src.Deps, decDep{Producer: "app", Bytes: p})
		}
		data := Marshal(src)
		var got decTarget
		if err := Decode(data, &got); err != nil {
			t.Logf("decode error on:\n%s", data)
			return false
		}
		return reflect.DeepEqual(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
