package yamlenc

import (
	"strings"
	"testing"
	"time"
)

func TestScalars(t *testing.T) {
	cases := []struct {
		in   interface{}
		want string
	}{
		{42, "42\n"},
		{int64(-7), "-7\n"},
		{uint8(3), "3\n"},
		{3.5, "3.5\n"},
		{true, "true\n"},
		{"hello", "hello\n"},
		{"", "\"\"\n"},
		{"true", "\"true\"\n"}, // must quote YAML keywords
		{"a: b", "\"a: b\"\n"},
		{5 * time.Second, "5s\n"},
		{nil, "null\n"},
	}
	for _, c := range cases {
		if got := string(Marshal(c.in)); got != c.want {
			t.Errorf("Marshal(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStructFieldsSnakeCased(t *testing.T) {
	type inner struct {
		IOBytes int64
		Name    string
	}
	type outer struct {
		Nodes    int
		PFSDir   string `yaml:"pfs_dir"`
		Skip     string `yaml:"-"`
		JobTime  time.Duration
		Sub      inner
		unexport int
	}
	_ = outer{}.unexport
	got := string(Marshal(outer{
		Nodes: 32, PFSDir: "/p/gpfs1", Skip: "x",
		JobTime: 2 * time.Hour,
		Sub:     inner{IOBytes: 100, Name: "cm1"},
	}))
	want := `nodes: 32
pfs_dir: /p/gpfs1
job_time: 2h0m0s
sub:
  io_bytes: 100
  name: cm1
`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestSliceOfStructs(t *testing.T) {
	type dep struct {
		Producer string
		Bytes    int64
	}
	got := string(Marshal([]dep{{"mProject", 100}, {"mDiff", 200}}))
	want := `- producer: mProject
  bytes: 100
- producer: mDiff
  bytes: 200
`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestScalarSlice(t *testing.T) {
	got := string(Marshal([]int{1, 2, 3}))
	if got != "- 1\n- 2\n- 3\n" {
		t.Errorf("got %q", got)
	}
}

func TestEmptyContainers(t *testing.T) {
	if got := string(Marshal([]int{})); got != "[]\n" {
		t.Errorf("empty slice = %q", got)
	}
	if got := string(Marshal(map[string]int{})); got != "{}\n" {
		t.Errorf("empty map = %q", got)
	}
	type empty struct{}
	if got := string(Marshal(empty{})); got != "{}\n" {
		t.Errorf("empty struct = %q", got)
	}
}

func TestMapSortedKeys(t *testing.T) {
	got := string(Marshal(map[string]int{"b": 2, "a": 1, "c": 3}))
	want := "a: 1\nb: 2\nc: 3\n"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestNilPointer(t *testing.T) {
	type s struct{ P *int }
	got := string(Marshal(s{}))
	if got != "p: null\n" {
		t.Errorf("got %q", got)
	}
}

func TestNestedDepth(t *testing.T) {
	type l3 struct{ V int }
	type l2 struct{ Inner l3 }
	type l1 struct{ Mid l2 }
	got := string(Marshal(l1{l2{l3{9}}}))
	want := "mid:\n  inner:\n    v: 9\n"
	if got != want {
		t.Errorf("got:\n%s", got)
	}
}

func TestSnake(t *testing.T) {
	cases := map[string]string{
		"Nodes":           "nodes",
		"IOBytes":         "io_bytes",
		"CPUCoresPerNode": "cpu_cores_per_node",
		"PFSDir":          "pfs_dir",
		"MaxBWPerNode":    "max_bw_per_node",
		"A":               "a",
	}
	for in, want := range cases {
		if got := snake(in); got != want {
			t.Errorf("snake(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOutputIsIndentationConsistent(t *testing.T) {
	type row struct {
		Name  string
		Inner map[string]string
	}
	out := string(Marshal(map[string]interface{}{
		"rows": []row{{Name: "x", Inner: map[string]string{"k": "v"}}},
	}))
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "\t") {
			t.Errorf("tab indentation in %q", line)
		}
	}
}
