package spec

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vani/internal/yamlenc"
)

const tinySweep = `
version: 1
name: tiny
base:
  nodes: 2
  ranks_per_node: 2
  scale: 0.01
  seed: 3
grid:
  - param: staging
    values:
      - pfs
      - node-local
  - param: cache
    values:
      - true
      - false
workload: cosmoflow
`

func TestParseSweep(t *testing.T) {
	sw, err := ParseSweep([]byte(tinySweep))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Name != "tiny" || sw.WorkloadName() != "cosmoflow" {
		t.Errorf("got name %q workload %q", sw.Name, sw.WorkloadName())
	}
	if sw.NumPoints() != 4 {
		t.Errorf("NumPoints = %d, want 4", sw.NumPoints())
	}
	if sw.Base.Nodes != 2 || sw.Base.RanksPerNode != 2 || sw.Base.Scale != 0.01 || sw.Base.Seed != 3 {
		t.Errorf("base = %+v", sw.Base)
	}
	// First axis slowest: point 2 is staging=node-local, cache=true.
	got := sw.settings(sw.coords(2))
	if got[0].Value != "node-local" || got[1].Value != "true" {
		t.Errorf("point 2 settings = %v", got)
	}
}

func TestParseSweepErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"bad version", "version: 2\nname: x\ngrid:\n  - param: cache\n    values:\n      - true\nworkload: cm1"},
		{"missing grid", "version: 1\nname: x\nworkload: cm1"},
		{"unknown axis", "version: 1\nname: x\ngrid:\n  - param: bogus\n    values:\n      - 1\nworkload: cm1"},
		{"duplicate axis", "version: 1\nname: x\ngrid:\n  - param: cache\n    values:\n      - true\n  - param: cache\n    values:\n      - false\nworkload: cm1"},
		{"empty values", "version: 1\nname: x\ngrid:\n  - param: cache\n    values: []\nworkload: cm1"},
		{"bad staging value", "version: 1\nname: x\ngrid:\n  - param: staging\n    values:\n      - tape\nworkload: cm1"},
		{"negative size", "version: 1\nname: x\ngrid:\n  - param: stripe_size\n    values:\n      - 0 - 4KiB\nworkload: cm1"},
		{"bad scale", "version: 1\nname: x\nbase:\n  scale: 1.5\ngrid:\n  - param: cache\n    values:\n      - true\nworkload: cm1"},
		{"bad workload type", "version: 1\nname: x\ngrid:\n  - param: cache\n    values:\n      - true\nworkload: 7"},
		{"bad inline workload", "version: 1\nname: x\ngrid:\n  - param: cache\n    values:\n      - true\nworkload:\n  version: 1"},
		{"unknown key", "version: 1\nname: x\nbogus: 1\ngrid:\n  - param: cache\n    values:\n      - true\nworkload: cm1"},
	}
	for _, c := range cases {
		if _, err := ParseSweep([]byte(c.doc)); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: err = %v, want ErrBadSpec", c.name, err)
		}
	}
}

func TestParseSweepTooManyPoints(t *testing.T) {
	var b strings.Builder
	b.WriteString("version: 1\nname: x\ngrid:\n")
	// 3 axes x 16 values = 4096 points > 256.
	for _, p := range []string{"stripe_size", "stdio_buffer", "readahead"} {
		b.WriteString("  - param: " + p + "\n    values:\n")
		for i := 1; i <= 16; i++ {
			b.WriteString("      - " + strings.Repeat("1", i) + "KiB\n")
		}
	}
	b.WriteString("workload: cm1\n")
	if _, err := ParseSweep([]byte(b.String())); !errors.Is(err, ErrBadSpec) {
		t.Errorf("err = %v, want ErrBadSpec", err)
	}
}

// TestSweepRunDeterministic pins the sweep contract: the report is a pure
// function of the sweep document — parallelism must not change a byte,
// and the winner improves on the baseline.
func TestSweepRunDeterministic(t *testing.T) {
	var reports [][]byte
	for _, par := range []int{1, 4} {
		sw, err := ParseSweep([]byte(tinySweep))
		if err != nil {
			t.Fatal(err)
		}
		var calls int
		rep, err := sw.Run(SweepOptions{
			Parallelism: par,
			OnPoint:     func(done, total int) { calls++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls != 4 {
			t.Errorf("par=%d: OnPoint fired %d times, want 4", par, calls)
		}
		if len(rep.Points) != 4 {
			t.Fatalf("par=%d: %d points, want 4", par, len(rep.Points))
		}
		if rep.Nodes != 2 || rep.RanksPerNode != 2 || rep.Seed != 3 {
			t.Errorf("par=%d: report header %+v", par, rep)
		}
		if rep.Winner.IOTime > rep.Points[0].IOTime {
			t.Errorf("par=%d: winner I/O %s exceeds baseline %s", par, rep.Winner.IOTime, rep.Points[0].IOTime)
		}
		if len(rep.StripeTrials) == 0 {
			t.Errorf("par=%d: no stripe trials", par)
		}
		reports = append(reports, yamlenc.Marshal(rep))
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Error("report YAML differs across Parallelism settings")
	}
}

// TestSweepAxisApplication checks that each axis reaches the right spec
// field on the run it configures.
func TestSweepAxisApplication(t *testing.T) {
	sw, err := ParseSweep([]byte(`
version: 1
name: axes
base:
  nodes: 2
  scale: 0.01
grid:
  - param: stripe_size
    values:
      - 2MiB
  - param: stdio_buffer
    values:
      - 64KiB
  - param: readahead
    values:
      - 0
  - param: hdf5_chunked
    values:
      - true
  - param: relaxed_consistency
    values:
      - true
  - param: write_compression
    values:
      - true
workload: cm1
`))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sw.runPoint(sw.coords(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Spec
	if sp.Storage.PFSStripeSize != 2<<20 || sp.Iface.StdioBufSize != 64<<10 ||
		sp.Storage.ReadAhead != 0 || !sp.Iface.HDF5Chunked ||
		!sp.Storage.RelaxedConsistency || !sp.Iface.CompressionEnabled {
		t.Errorf("axis values did not reach the run spec: %+v %+v", sp.Storage, sp.Iface)
	}
}

func TestSweepInlineWorkload(t *testing.T) {
	golden, err := GoldenBytes("cm1")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("version: 1\nname: inline\nbase:\n  nodes: 2\n  scale: 0.01\ngrid:\n  - param: cache\n    values:\n      - true\nworkload:\n")
	for _, line := range strings.Split(strings.TrimRight(string(golden), "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	sw, err := ParseSweep([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if sw.WorkloadName() != "cm1" {
		t.Errorf("WorkloadName = %q, want cm1", sw.WorkloadName())
	}
	if _, err := sw.Run(SweepOptions{}); err != nil {
		t.Fatal(err)
	}
}
