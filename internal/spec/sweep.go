package spec

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"vani/internal/advisor"
	"vani/internal/core"
	"vani/internal/replay"
	"vani/internal/storage"
	"vani/internal/workloads"
)

// The sweep layer: a workload (inline DSL doc or a registered generator)
// plus a parameter grid expands into concrete simulation runs, and the
// outcomes reduce into a comparative report — the paper's case-study
// reconfiguration experiments (Figures 7 and 8) as an automated search.
// Reports are rendered with yamlenc so the CLI and the vanid service
// produce byte-identical artifacts for the same sweep document.

// Bounds on sweep shape.
const (
	maxAxes          = 8
	maxValuesPerAxis = 16
	maxPoints        = 256
)

// sweepAxes maps grid parameter names to how a value applies to a run
// spec. kind "choice" values are enumerated; "size" values are byte
// expressions; "bool" values are booleans.
var sweepAxes = map[string]string{
	"staging":             "choice", // pfs | node-local
	"stripe_size":         "size",   // storage.PFSStripeSize
	"stdio_buffer":        "size",   // iface.StdioBufSize
	"readahead":           "size",   // storage.ReadAhead (0 disables)
	"hdf5_chunked":        "bool",   // iface.HDF5Chunked
	"relaxed_consistency": "bool",   // storage.RelaxedConsistency
	"write_compression":   "bool",   // iface.CompressionEnabled
	"cache":               "bool",   // storage.CacheEnabled
}

// Sweep is a validated sweep document.
type Sweep struct {
	Name string
	Base SweepBase

	axes         []sweepAxis
	doc          *Doc   // inline workload, or
	workloadName string // a registered generator
}

// SweepBase overrides the workload's default run spec for every point.
type SweepBase struct {
	Nodes        int
	RanksPerNode int
	Scale        float64
	Seed         int64
}

type sweepAxis struct {
	param  string
	kind   string
	labels []string // canonical value strings, in declared order
	sizes  []int64  // parsed byte values (size axes)
	bools  []bool   // parsed booleans (bool axes)
}

// ParseSweep decodes and validates a sweep document (YAML or JSON).
func ParseSweep(data []byte) (*Sweep, error) {
	tree, err := decodeTree(data)
	if err != nil {
		return nil, err
	}
	sw, err := buildSweep(tree)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return sw, nil
}

// ParseSweepFile reads and parses a sweep document from disk.
func ParseSweepFile(path string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sw, err := ParseSweep(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sw, nil
}

func buildSweep(m map[string]interface{}) (*Sweep, error) {
	if err := checkKeys(m, "sweep", "version", "name", "base", "grid", "workload"); err != nil {
		return nil, err
	}
	v, err := asInt(m["version"], "version")
	if err != nil {
		return nil, err
	}
	if v != 1 {
		return nil, fmt.Errorf("version: unsupported version %d", v)
	}
	sw := &Sweep{}
	if sw.Name, err = asString(m["name"], "name"); err != nil {
		return nil, err
	}
	if !nameRe.MatchString(sw.Name) {
		return nil, fmt.Errorf("name: bad sweep name %q", sw.Name)
	}
	if err := sw.buildBase(m["base"]); err != nil {
		return nil, err
	}
	if err := sw.buildGrid(m["grid"]); err != nil {
		return nil, err
	}
	switch w := m["workload"].(type) {
	case string:
		if !nameRe.MatchString(w) {
			return nil, fmt.Errorf("workload: bad workload name %q", w)
		}
		sw.workloadName = w
	case map[string]interface{}:
		doc, err := buildDoc(w)
		if err != nil {
			return nil, fmt.Errorf("workload: %v", err)
		}
		sw.doc = doc
	default:
		return nil, fmt.Errorf("workload: got %T, want a workload name or an inline spec", m["workload"])
	}
	return sw, nil
}

func (sw *Sweep) buildBase(v interface{}) error {
	m, err := asObj(v, "base")
	if err != nil {
		return err
	}
	if err := checkKeys(m, "base", "nodes", "ranks_per_node", "scale", "seed"); err != nil {
		return err
	}
	if raw, ok := m["nodes"]; ok {
		n, err := asInt(raw, "base.nodes")
		if err != nil {
			return err
		}
		if n < 1 || n > 1<<20 {
			return fmt.Errorf("base.nodes: %d out of range", n)
		}
		sw.Base.Nodes = int(n)
	}
	if raw, ok := m["ranks_per_node"]; ok {
		n, err := asInt(raw, "base.ranks_per_node")
		if err != nil {
			return err
		}
		if n < 1 || n > 1<<16 {
			return fmt.Errorf("base.ranks_per_node: %d out of range", n)
		}
		sw.Base.RanksPerNode = int(n)
	}
	if raw, ok := m["scale"]; ok {
		s, err := asFloat(raw, "base.scale")
		if err != nil {
			return err
		}
		if s <= 0 || s > 1 {
			return fmt.Errorf("base.scale: %v out of (0, 1]", s)
		}
		sw.Base.Scale = s
	}
	if raw, ok := m["seed"]; ok {
		n, err := asInt(raw, "base.seed")
		if err != nil {
			return err
		}
		sw.Base.Seed = n
	}
	return nil
}

func (sw *Sweep) buildGrid(v interface{}) error {
	l, err := asList(v, "grid")
	if err != nil {
		return err
	}
	if len(l) == 0 {
		return fmt.Errorf("grid: at least one axis required")
	}
	if len(l) > maxAxes {
		return fmt.Errorf("grid: %d axes exceed the %d cap", len(l), maxAxes)
	}
	seen := map[string]bool{}
	points := 1
	for i, raw := range l {
		where := fmt.Sprintf("grid[%d]", i)
		m, err := asObj(raw, where)
		if err != nil {
			return err
		}
		if err := checkKeys(m, where, "param", "values"); err != nil {
			return err
		}
		ax := sweepAxis{}
		if ax.param, err = asString(m["param"], where+".param"); err != nil {
			return err
		}
		kind, ok := sweepAxes[ax.param]
		if !ok {
			known := make([]string, 0, len(sweepAxes))
			for k := range sweepAxes {
				known = append(known, k)
			}
			sort.Strings(known)
			return fmt.Errorf("%s.param: unknown parameter %q (have %v)", where, ax.param, known)
		}
		if seen[ax.param] {
			return fmt.Errorf("%s.param: duplicate axis %q", where, ax.param)
		}
		seen[ax.param] = true
		ax.kind = kind
		vals, err := asList(m["values"], where+".values")
		if err != nil {
			return err
		}
		if len(vals) == 0 {
			return fmt.Errorf("%s.values: at least one value required", where)
		}
		if len(vals) > maxValuesPerAxis {
			return fmt.Errorf("%s.values: %d values exceed the %d cap", where, len(vals), maxValuesPerAxis)
		}
		for j, rawVal := range vals {
			vw := fmt.Sprintf("%s.values[%d]", where, j)
			switch kind {
			case "choice":
				s, err := asString(rawVal, vw)
				if err != nil {
					return err
				}
				if ax.param == "staging" && s != "pfs" && s != "node-local" {
					return fmt.Errorf("%s: staging wants pfs or node-local, got %q", vw, s)
				}
				ax.labels = append(ax.labels, s)
			case "size":
				n, err := constVal(rawVal, vw)
				if err != nil {
					return err
				}
				if n < 0 {
					return fmt.Errorf("%s: negative size", vw)
				}
				ax.sizes = append(ax.sizes, n)
				ax.labels = append(ax.labels, fmt.Sprint(rawVal))
			case "bool":
				b, err := asBool(rawVal, vw)
				if err != nil {
					return err
				}
				ax.bools = append(ax.bools, b)
				ax.labels = append(ax.labels, fmt.Sprint(b))
			}
		}
		points *= len(ax.labels)
		if points > maxPoints {
			return fmt.Errorf("grid: more than %d points", maxPoints)
		}
		sw.axes = append(sw.axes, ax)
	}
	return nil
}

// WorkloadName reports what the sweep runs.
func (sw *Sweep) WorkloadName() string {
	if sw.doc != nil {
		return sw.doc.Name
	}
	return sw.workloadName
}

// NumPoints is the size of the expanded grid.
func (sw *Sweep) NumPoints() int {
	n := 1
	for _, ax := range sw.axes {
		n *= len(ax.labels)
	}
	return n
}

// workload constructs a fresh workload instance for one point.
func (sw *Sweep) workload() (workloads.Workload, error) {
	if sw.doc != nil {
		return sw.doc.Compile(), nil
	}
	return workloads.New(sw.workloadName)
}

// SweepSetting is one applied grid coordinate.
type SweepSetting struct {
	Param string `yaml:"param"`
	Value string `yaml:"value"`
}

// SweepPoint is one evaluated grid point.
type SweepPoint struct {
	Index   int            `yaml:"index"`
	Config  []SweepSetting `yaml:"config"`
	Runtime time.Duration  `yaml:"runtime"`
	IOTime  time.Duration  `yaml:"io_time"`
}

// SweepWinner is the selected configuration with speedups vs the
// baseline (point 0, the first value of every axis).
type SweepWinner struct {
	Index          int            `yaml:"index"`
	Config         []SweepSetting `yaml:"config"`
	Runtime        time.Duration  `yaml:"runtime"`
	IOTime         time.Duration  `yaml:"io_time"`
	IOSpeedup      string         `yaml:"io_speedup"`
	RuntimeSpeedup string         `yaml:"runtime_speedup"`
}

// SweepRecommendation is an advisor verdict on the baseline run.
type SweepRecommendation struct {
	ID        string `yaml:"id"`
	Parameter string `yaml:"parameter"`
	Value     string `yaml:"value"`
	Rationale string `yaml:"rationale"`
}

// SweepTrial is one replayed storage candidate on the baseline trace.
type SweepTrial struct {
	Name    string        `yaml:"name"`
	Runtime time.Duration `yaml:"runtime"`
	IOTime  time.Duration `yaml:"io_time"`
}

// SweepReport is the sweep's comparative artifact.
type SweepReport struct {
	Name            string                `yaml:"name"`
	Workload        string                `yaml:"workload"`
	Nodes           int                   `yaml:"nodes"`
	RanksPerNode    int                   `yaml:"ranks_per_node"`
	Scale           float64               `yaml:"scale"`
	Seed            int64                 `yaml:"seed"`
	Points          []SweepPoint          `yaml:"points"`
	Winner          SweepWinner           `yaml:"winner"`
	Recommendations []SweepRecommendation `yaml:"recommendations"`
	StripeTrials    []SweepTrial          `yaml:"stripe_trials"`
}

// SweepOptions configures a sweep execution. The zero value matches the
// vanid service's defaults, so CLI and service reports are byte-identical.
type SweepOptions struct {
	// Storage overrides every point's storage configuration (nil keeps
	// the workload default).
	Storage *storage.Config
	// Parallelism bounds concurrent points (0 = min(NumCPU, 4)). The
	// report does not depend on it.
	Parallelism int
	// OnPoint, when set, is called after each point completes.
	OnPoint func(done, total int)
}

// Run expands the grid, simulates every point, and reduces the outcomes
// into the comparative report. Point 0 — the first value of every axis —
// is the baseline speedups are measured against.
func (sw *Sweep) Run(opt SweepOptions) (*SweepReport, error) {
	total := sw.NumPoints()
	points := make([][]int, total)
	for i := range points {
		points[i] = sw.coords(i)
	}
	par := opt.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
		if par > 4 {
			par = 4
		}
	}
	if par > total {
		par = total
	}

	type outcome struct {
		res  *workloads.Result
		char *core.Characterization
		err  error
	}
	outs := make([]outcome, total)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	sem := make(chan struct{}, par)
	for i := range points {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() {
				<-sem
				wg.Done()
			}()
			res, char, err := sw.runPoint(points[i], opt.Storage)
			outs[i] = outcome{res: res, char: char, err: err}
			if opt.OnPoint != nil {
				mu.Lock()
				done++
				opt.OnPoint(done, total)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("sweep %s: point %d: %w", sw.Name, i, o.err)
		}
	}

	rep := &SweepReport{
		Name:     sw.Name,
		Workload: sw.WorkloadName(),
		Seed:     sw.Base.Seed,
	}
	rep.Nodes = outs[0].res.Spec.Nodes
	rep.RanksPerNode = outs[0].res.Spec.RanksPerNode
	rep.Scale = outs[0].res.Spec.Scale
	winner := 0
	for i, o := range outs {
		rep.Points = append(rep.Points, SweepPoint{
			Index:   i,
			Config:  sw.settings(points[i]),
			Runtime: o.res.Runtime,
			IOTime:  o.char.Workflow.IOTime,
		})
		if o.char.Workflow.IOTime < outs[winner].char.Workflow.IOTime {
			winner = i
		}
	}
	base := rep.Points[0]
	win := rep.Points[winner]
	rep.Winner = SweepWinner{
		Index:          winner,
		Config:         win.Config,
		Runtime:        win.Runtime,
		IOTime:         win.IOTime,
		IOSpeedup:      speedup(base.IOTime, win.IOTime),
		RuntimeSpeedup: speedup(base.Runtime, win.Runtime),
	}
	for _, r := range advisor.Advise(outs[0].char) {
		rep.Recommendations = append(rep.Recommendations, SweepRecommendation{
			ID: r.ID, Parameter: r.Parameter, Value: r.Value, Rationale: r.Rationale,
		})
	}
	baseCfg := outs[0].res.Spec.Storage
	ropt := replay.DefaultOptions()
	ropt.Storage = baseCfg
	ropt.Seed = sw.Base.Seed
	trials, err := replay.Tune(outs[0].res.Trace,
		replay.StripeSweep(baseCfg, storage.MiB, 4*storage.MiB, 16*storage.MiB), ropt)
	if err != nil {
		return nil, fmt.Errorf("sweep %s: stripe trials: %w", sw.Name, err)
	}
	for _, t := range trials {
		rep.StripeTrials = append(rep.StripeTrials, SweepTrial{
			Name: t.Candidate.Name, Runtime: t.Runtime, IOTime: t.IOTime,
		})
	}
	return rep, nil
}

// coords decodes a point index into per-axis value indexes, first axis
// slowest.
func (sw *Sweep) coords(index int) []int {
	c := make([]int, len(sw.axes))
	for i := len(sw.axes) - 1; i >= 0; i-- {
		n := len(sw.axes[i].labels)
		c[i] = index % n
		index /= n
	}
	return c
}

// settings renders a coordinate vector as applied parameter settings.
func (sw *Sweep) settings(coord []int) []SweepSetting {
	out := make([]SweepSetting, len(sw.axes))
	for i, ax := range sw.axes {
		out[i] = SweepSetting{Param: ax.param, Value: ax.labels[coord[i]]}
	}
	return out
}

// runPoint simulates one grid point and characterizes its trace.
func (sw *Sweep) runPoint(coord []int, storageOverride *storage.Config) (*workloads.Result, *core.Characterization, error) {
	w, err := sw.workload()
	if err != nil {
		return nil, nil, err
	}
	sp := w.DefaultSpec()
	if sw.Base.Nodes > 0 {
		sp.Nodes = sw.Base.Nodes
	}
	if sw.Base.RanksPerNode > 0 {
		sp.RanksPerNode = sw.Base.RanksPerNode
	}
	if sw.Base.Scale > 0 {
		sp.Scale = sw.Base.Scale
	}
	if sw.Base.Seed != 0 {
		sp.Seed = sw.Base.Seed
	}
	if storageOverride != nil {
		sp.Storage = *storageOverride
	}
	for i, ax := range sw.axes {
		j := coord[i]
		switch ax.param {
		case "staging":
			sp.Optimized = ax.labels[j] == "node-local"
		case "stripe_size":
			sp.Storage.PFSStripeSize = ax.sizes[j]
		case "stdio_buffer":
			sp.Iface.StdioBufSize = ax.sizes[j]
		case "readahead":
			sp.Storage.ReadAhead = ax.sizes[j]
		case "hdf5_chunked":
			sp.Iface.HDF5Chunked = ax.bools[j]
		case "relaxed_consistency":
			sp.Storage.RelaxedConsistency = ax.bools[j]
		case "write_compression":
			sp.Iface.CompressionEnabled = ax.bools[j]
		case "cache":
			sp.Storage.CacheEnabled = ax.bools[j]
		}
	}
	res, err := workloads.Run(w, sp)
	if err != nil {
		return nil, nil, err
	}
	aopt := core.DefaultOptions()
	cfg := res.Spec.Storage
	aopt.Storage = &cfg
	return res, core.Analyze(res.Trace, aopt), nil
}

// speedup formats a before/after ratio the way the report pins it.
func speedup(before, after time.Duration) string {
	if after <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(before)/float64(after))
}
