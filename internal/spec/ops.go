package spec

import (
	"fmt"
)

// buildRun parses and validates the run program: a list of ops, groups
// (conditional / per-application), and loops, with every expression's
// identifiers checked against the params, builtins, and the loop/let
// variables introduced before use.
func (d *Doc) buildRun(v interface{}) error {
	l, err := asList(v, "run")
	if err != nil {
		return err
	}
	if len(l) == 0 {
		return fmt.Errorf("run: empty program")
	}
	rc := &runChecker{d: d, scope: map[string]bool{}}
	for id := range runBuiltins {
		rc.scope[id] = true
	}
	for name := range d.params {
		rc.scope[name] = true
	}
	d.run, err = rc.parseOps(l, "run", 0)
	return err
}

type runChecker struct {
	d     *Doc
	scope map[string]bool
	nOps  int
}

func (rc *runChecker) parseOps(l []interface{}, where string, depth int) ([]*op, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("%s: nesting deeper than %d", where, maxDepth)
	}
	var ops []*op
	for i, raw := range l {
		w := fmt.Sprintf("%s[%d]", where, i)
		rc.nOps++
		if rc.nOps > maxOps {
			return nil, fmt.Errorf("%s: program larger than %d ops", w, maxOps)
		}
		m, err := asObj(raw, w)
		if err != nil {
			return nil, err
		}
		o, err := rc.parseOp(m, w, depth)
		if err != nil {
			return nil, err
		}
		ops = append(ops, o)
	}
	return ops, nil
}

func (rc *runChecker) parseOp(m map[string]interface{}, w string, depth int) (*op, error) {
	if _, ok := m["do"]; ok {
		return rc.parseGroup(m, w, depth)
	}
	if len(m) != 1 {
		return nil, fmt.Errorf("%s: want exactly one op key, got %d", w, len(m))
	}
	var verb string
	for k := range m {
		verb = k
	}
	body, err := asObj(m[verb], w+"."+verb)
	if err != nil {
		return nil, err
	}
	w = w + "." + verb
	switch verb {
	case "loop":
		return rc.parseLoop(body, w, depth)
	case "let":
		return rc.parseLet(body, w)
	case "describe":
		return rc.parseDescribe(body, w)
	case "open":
		return rc.parseOpen(body, w)
	case "read", "write":
		return rc.parseRW(verb, body, w)
	case "pread":
		return rc.parsePRead(body, w)
	case "pwrite":
		return rc.parsePWrite(body, w)
	case "readwrap":
		return rc.parseReadWrap(body, w)
	case "close":
		if err := checkKeys(body, w); err != nil {
			return nil, err
		}
		return &op{kind: opClose}, nil
	case "stat":
		if err := checkKeys(body, w, "path"); err != nil {
			return nil, err
		}
		o := &op{kind: opStat}
		if o.path, err = rc.path(body["path"], w+".path"); err != nil {
			return nil, err
		}
		return o, nil
	case "barrier":
		if err := checkKeys(body, w, "name"); err != nil {
			return nil, err
		}
		name, err := asString(body["name"], w+".name")
		if err != nil {
			return nil, err
		}
		found := false
		for _, b := range rc.d.barriers {
			if b == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%s: unknown barrier %q", w, name)
		}
		return &op{kind: opBarrier, name: name}, nil
	case "compute", "gpu":
		if err := checkKeys(body, w, "time"); err != nil {
			return nil, err
		}
		if body["time"] == nil {
			return nil, fmt.Errorf("%s: time required", w)
		}
		e, err := asDurVal(body["time"], w+".time")
		if err != nil {
			return nil, err
		}
		if err := rc.expr(e, w+".time"); err != nil {
			return nil, err
		}
		k := opCompute
		if verb == "gpu" {
			k = opGPU
		}
		return &op{kind: k, dur: e}, nil
	}
	return nil, fmt.Errorf("%s: unknown op", w)
}

func (rc *runChecker) parseGroup(m map[string]interface{}, w string, depth int) (*op, error) {
	if err := checkKeys(m, w, "when", "app", "do"); err != nil {
		return nil, err
	}
	o := &op{kind: opGroup}
	var err error
	if raw, ok := m["when"]; ok {
		if o.when, err = asExprVal(raw, w+".when"); err != nil {
			return nil, err
		}
		if err := rc.expr(o.when, w+".when"); err != nil {
			return nil, err
		}
	}
	if raw, ok := m["app"]; ok {
		if o.app, err = asString(raw, w+".app"); err != nil {
			return nil, err
		}
		if !appRe.MatchString(o.app) {
			return nil, fmt.Errorf("%s.app: bad application name %q", w, o.app)
		}
	}
	body, err := asList(m["do"], w+".do")
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("%s.do: empty group", w)
	}
	if o.body, err = rc.parseOps(body, w+".do", depth+1); err != nil {
		return nil, err
	}
	return o, nil
}

func (rc *runChecker) parseLoop(m map[string]interface{}, w string, depth int) (*op, error) {
	if err := checkKeys(m, w, "var", "count", "from", "until", "step", "do"); err != nil {
		return nil, err
	}
	o := &op{kind: opLoop}
	var err error
	if o.loopVar, err = asString(m["var"], w+".var"); err != nil {
		return nil, err
	}
	if !identRe.MatchString(o.loopVar) {
		return nil, fmt.Errorf("%s.var: bad variable name %q", w, o.loopVar)
	}
	if _, exists := rc.d.params[o.loopVar]; exists || runBuiltins[o.loopVar] {
		return nil, fmt.Errorf("%s.var: %q shadows a param or builtin", w, o.loopVar)
	}
	hasCount := m["count"] != nil
	hasUntil := m["until"] != nil
	if hasCount == hasUntil {
		return nil, fmt.Errorf("%s: exactly one of count/until required", w)
	}
	if hasCount {
		if m["from"] != nil || m["step"] != nil {
			return nil, fmt.Errorf("%s: count excludes from/step", w)
		}
		if o.until, err = asExprVal(m["count"], w+".count"); err != nil {
			return nil, err
		}
		if err := rc.expr(o.until, w+".count"); err != nil {
			return nil, err
		}
	} else {
		if o.until, err = asExprVal(m["until"], w+".until"); err != nil {
			return nil, err
		}
		if err := rc.expr(o.until, w+".until"); err != nil {
			return nil, err
		}
		if raw, ok := m["from"]; ok {
			if o.from, err = asExprVal(raw, w+".from"); err != nil {
				return nil, err
			}
			if err := rc.expr(o.from, w+".from"); err != nil {
				return nil, err
			}
		}
		if raw, ok := m["step"]; ok {
			if o.step, err = asExprVal(raw, w+".step"); err != nil {
				return nil, err
			}
			if err := rc.expr(o.step, w+".step"); err != nil {
				return nil, err
			}
		}
	}
	body, err := asList(m["do"], w+".do")
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("%s.do: empty loop body", w)
	}
	rc.scope[o.loopVar] = true
	if o.body, err = rc.parseOps(body, w+".do", depth+1); err != nil {
		return nil, err
	}
	return o, nil
}

func (rc *runChecker) parseLet(m map[string]interface{}, w string) (*op, error) {
	if err := checkKeys(m, w, "name", "value"); err != nil {
		return nil, err
	}
	o := &op{kind: opLet}
	var err error
	if o.letName, err = asString(m["name"], w+".name"); err != nil {
		return nil, err
	}
	if !identRe.MatchString(o.letName) {
		return nil, fmt.Errorf("%s.name: bad variable name %q", w, o.letName)
	}
	if _, exists := rc.d.params[o.letName]; exists || runBuiltins[o.letName] {
		return nil, fmt.Errorf("%s.name: %q shadows a param or builtin", w, o.letName)
	}
	if m["value"] == nil {
		return nil, fmt.Errorf("%s: value required", w)
	}
	if o.letExpr, err = asExprVal(m["value"], w+".value"); err != nil {
		return nil, err
	}
	if err := rc.expr(o.letExpr, w+".value"); err != nil {
		return nil, err
	}
	rc.scope[o.letName] = true
	return o, nil
}

func (rc *runChecker) parseDescribe(m map[string]interface{}, w string) (*op, error) {
	if err := checkKeys(m, w, "path", "format", "ndims", "dtype"); err != nil {
		return nil, err
	}
	o := &op{kind: opDescribe}
	var err error
	if o.path, err = rc.path(m["path"], w+".path"); err != nil {
		return nil, err
	}
	if o.format, err = asString(m["format"], w+".format"); err != nil {
		return nil, err
	}
	if o.format == "" || len(o.format) > 16 {
		return nil, fmt.Errorf("%s.format: bad format", w)
	}
	nd, err := asInt(m["ndims"], w+".ndims")
	if err != nil {
		return nil, err
	}
	if nd < 0 || nd > 16 {
		return nil, fmt.Errorf("%s.ndims: %d out of range", w, nd)
	}
	o.ndims = int(nd)
	if o.dtype, err = asString(m["dtype"], w+".dtype"); err != nil {
		return nil, err
	}
	if o.dtype == "" || len(o.dtype) > 16 {
		return nil, fmt.Errorf("%s.dtype: bad dtype", w)
	}
	return o, nil
}

func (rc *runChecker) parseOpen(m map[string]interface{}, w string) (*op, error) {
	if err := checkKeys(m, w, "iface", "path", "create", "mode", "comm"); err != nil {
		return nil, err
	}
	o := &op{kind: opOpen}
	var err error
	if o.layer, err = asString(m["iface"], w+".iface"); err != nil {
		return nil, err
	}
	if o.path, err = rc.path(m["path"], w+".path"); err != nil {
		return nil, err
	}
	if raw, ok := m["create"]; ok {
		if o.create, err = asBool(raw, w+".create"); err != nil {
			return nil, err
		}
	}
	switch o.layer {
	case "posix":
		if err := checkKeys(m, w, "iface", "path", "create"); err != nil {
			return nil, err
		}
	case "stdio":
		if err := checkKeys(m, w, "iface", "path", "mode"); err != nil {
			return nil, err
		}
		mode, err := asString(m["mode"], w+".mode")
		if err != nil {
			return nil, err
		}
		if mode != "r" && mode != "w" {
			return nil, fmt.Errorf("%s.mode: want r or w, got %q", w, mode)
		}
		o.mode = mode[0]
	case "mpiio", "hdf5":
		if err := checkKeys(m, w, "iface", "path", "create", "comm"); err != nil {
			return nil, err
		}
		if m["comm"] == nil {
			return nil, fmt.Errorf("%s: comm required for %s", w, o.layer)
		}
		if o.comm, err = asExprVal(m["comm"], w+".comm"); err != nil {
			return nil, err
		}
		if err := rc.expr(o.comm, w+".comm"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%s.iface: unknown interface %q", w, o.layer)
	}
	return o, nil
}

func (rc *runChecker) parseRW(verb string, m map[string]interface{}, w string) (*op, error) {
	if err := checkKeys(m, w, "total", "granule", "clamp"); err != nil {
		return nil, err
	}
	o := &op{kind: opRead, clamp: true}
	if verb == "write" {
		o.kind = opWrite
	}
	if err := rc.sizeFields(o, m, w); err != nil {
		return nil, err
	}
	return o, nil
}

func (rc *runChecker) parsePRead(m map[string]interface{}, w string) (*op, error) {
	if err := checkKeys(m, w, "at", "total", "granule", "stride", "clamp"); err != nil {
		return nil, err
	}
	o := &op{kind: opPRead, clamp: true, stride: 1}
	var err error
	if raw, ok := m["at"]; ok {
		if o.at, err = asExprVal(raw, w+".at"); err != nil {
			return nil, err
		}
		if err := rc.expr(o.at, w+".at"); err != nil {
			return nil, err
		}
	}
	if raw, ok := m["stride"]; ok {
		n, err := constVal(raw, w+".stride")
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("%s.stride: must be positive", w)
		}
		o.stride = n
	}
	if err := rc.sizeFields(o, m, w); err != nil {
		return nil, err
	}
	return o, nil
}

func (rc *runChecker) parsePWrite(m map[string]interface{}, w string) (*op, error) {
	if err := checkKeys(m, w, "at", "append", "seek", "total", "granule", "clamp"); err != nil {
		return nil, err
	}
	o := &op{kind: opPWrite, clamp: true}
	var err error
	if raw, ok := m["append"]; ok {
		if o.appendBase, err = asBool(raw, w+".append"); err != nil {
			return nil, err
		}
	}
	if raw, ok := m["at"]; ok {
		if o.appendBase {
			return nil, fmt.Errorf("%s: at and append are exclusive", w)
		}
		if o.at, err = asExprVal(raw, w+".at"); err != nil {
			return nil, err
		}
		if err := rc.expr(o.at, w+".at"); err != nil {
			return nil, err
		}
	}
	if raw, ok := m["seek"]; ok {
		if o.seek, err = asBool(raw, w+".seek"); err != nil {
			return nil, err
		}
	}
	if err := rc.sizeFields(o, m, w); err != nil {
		return nil, err
	}
	return o, nil
}

func (rc *runChecker) parseReadWrap(m map[string]interface{}, w string) (*op, error) {
	if err := checkKeys(m, w, "total", "granule", "size"); err != nil {
		return nil, err
	}
	o := &op{kind: opReadWrap}
	var err error
	for _, f := range []struct {
		key string
		dst **expr
	}{{"total", &o.total}, {"granule", &o.granule}, {"size", &o.size}} {
		if m[f.key] == nil {
			return nil, fmt.Errorf("%s: %s required", w, f.key)
		}
		if *f.dst, err = asExprVal(m[f.key], w+"."+f.key); err != nil {
			return nil, err
		}
		if err := rc.expr(*f.dst, w+"."+f.key); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// sizeFields parses the shared total/granule/clamp trio.
func (rc *runChecker) sizeFields(o *op, m map[string]interface{}, w string) error {
	if m["total"] == nil {
		return fmt.Errorf("%s: total required", w)
	}
	var err error
	if o.total, err = asExprVal(m["total"], w+".total"); err != nil {
		return err
	}
	if err := rc.expr(o.total, w+".total"); err != nil {
		return err
	}
	if raw, ok := m["granule"]; ok {
		if o.granule, err = asExprVal(raw, w+".granule"); err != nil {
			return err
		}
		if err := rc.expr(o.granule, w+".granule"); err != nil {
			return err
		}
	}
	if raw, ok := m["clamp"]; ok {
		if o.clamp, err = asBool(raw, w+".clamp"); err != nil {
			return err
		}
	}
	return nil
}

// expr checks every identifier an expression references is in scope.
func (rc *runChecker) expr(e *expr, w string) error {
	bad := ""
	e.idents(func(id string) {
		if bad == "" && !rc.scope[id] {
			bad = id
		}
	})
	if bad != "" {
		return fmt.Errorf("%s: unknown identifier %q", w, bad)
	}
	return nil
}

// path parses a path template and checks its identifiers and dir reference.
func (rc *runChecker) path(v interface{}, w string) (*pathT, error) {
	src, err := asString(v, w)
	if err != nil {
		return nil, err
	}
	t, err := parsePath(src, true)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", w, err)
	}
	bad := ""
	t.idents(func(id string) {
		if bad == "" && !rc.scope[id] {
			bad = id
		}
	})
	if bad != "" {
		return nil, fmt.Errorf("%s: unknown identifier %q", w, bad)
	}
	if t.dir != "" {
		if _, ok := rc.d.dirs[t.dir]; !ok {
			return nil, fmt.Errorf("%s: unknown dir @%s", w, t.dir)
		}
	}
	return t, nil
}
