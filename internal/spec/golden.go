package spec

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

// The golden specs re-state hand-coded generators in the DSL; the
// equivalence tests pin their characterizations byte-identical to the
// generators'. They double as the fuzzer's seed corpus and as worked
// examples of the grammar.
//
//go:embed golden/*.yaml
var goldenFS embed.FS

// GoldenNames lists the embedded golden specs in sorted order.
func GoldenNames() []string {
	entries, err := goldenFS.ReadDir("golden")
	if err != nil {
		panic(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".yaml"))
	}
	sort.Strings(names)
	return names
}

// GoldenBytes returns the raw YAML of an embedded golden spec.
func GoldenBytes(name string) ([]byte, error) {
	data, err := goldenFS.ReadFile("golden/" + name + ".yaml")
	if err != nil {
		return nil, fmt.Errorf("spec: no golden spec %q (have %v)", name, GoldenNames())
	}
	return data, nil
}

// Golden parses an embedded golden spec.
func Golden(name string) (*Doc, error) {
	data, err := GoldenBytes(name)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}
