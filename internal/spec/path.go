package spec

import (
	"fmt"
	"strconv"
	"strings"
)

const maxPathLen = 1024

// pathT is a compiled path template: literal segments interleaved with
// `${expr}` substitutions, optionally zero-padded (`${rank:04}`), and an
// optional leading `@dir/` reference resolved against the spec's dirs
// (which pick their optimized variant per run).
type pathT struct {
	src  string
	dir  string // "" when the path is absolute
	segs []pathSeg
}

type pathSeg struct {
	lit string // literal text when expr is nil
	e   *expr
	pad int // zero-pad width, 0 = none
}

// parsePath compiles a path template. Dir templates themselves may not
// reference other dirs.
func parsePath(src string, allowDir bool) (*pathT, error) {
	if src == "" {
		return nil, fmt.Errorf("empty path")
	}
	if len(src) > maxPathLen {
		return nil, fmt.Errorf("path longer than %d bytes", maxPathLen)
	}
	t := &pathT{src: src}
	rest := src
	if strings.HasPrefix(rest, "@") {
		if !allowDir {
			return nil, fmt.Errorf("path %q: dir reference not allowed here", src)
		}
		name := rest[1:]
		if i := strings.IndexByte(name, '/'); i >= 0 {
			rest = name[i:]
			name = name[:i]
		} else {
			rest = ""
		}
		if !identRe.MatchString(name) {
			return nil, fmt.Errorf("path %q: bad dir reference %q", src, name)
		}
		t.dir = name
	}
	for len(rest) > 0 {
		i := strings.Index(rest, "${")
		if i < 0 {
			t.segs = append(t.segs, pathSeg{lit: rest})
			break
		}
		if i > 0 {
			t.segs = append(t.segs, pathSeg{lit: rest[:i]})
		}
		rest = rest[i+2:]
		j := strings.IndexByte(rest, '}')
		if j < 0 {
			return nil, fmt.Errorf("path %q: unterminated ${", src)
		}
		seg, err := parsePathExpr(rest[:j])
		if err != nil {
			return nil, fmt.Errorf("path %q: %v", src, err)
		}
		t.segs = append(t.segs, seg)
		rest = rest[j+1:]
	}
	return t, nil
}

// parsePathExpr splits an optional `:NN` zero-pad suffix off a
// substitution body. The suffix is only taken when the prefix before the
// last colon parses as an expression on its own, so ternaries keep their
// colons.
func parsePathExpr(body string) (pathSeg, error) {
	if i := strings.LastIndexByte(body, ':'); i >= 0 {
		digits := body[i+1:]
		if allDigits(digits) && digits != "" {
			if e, err := parseExpr(body[:i]); err == nil {
				pad, err := strconv.Atoi(digits)
				if err != nil || pad > 32 {
					return pathSeg{}, fmt.Errorf("bad pad width %q", digits)
				}
				return pathSeg{e: e, pad: pad}, nil
			}
		}
	}
	e, err := parseExpr(body)
	if err != nil {
		return pathSeg{}, err
	}
	return pathSeg{e: e}, nil
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// idents calls f for every identifier the template references.
func (t *pathT) idents(f func(string)) {
	for _, s := range t.segs {
		if s.e != nil {
			s.e.idents(f)
		}
	}
}

// render evaluates the template. dirOf resolves a dir reference to its
// already-rendered base path.
func (t *pathT) render(env func(string) (int64, bool), dirOf func(string) (string, error)) (string, error) {
	var b strings.Builder
	if t.dir != "" {
		base, err := dirOf(t.dir)
		if err != nil {
			return "", err
		}
		b.WriteString(base)
	}
	for _, s := range t.segs {
		if s.e == nil {
			b.WriteString(s.lit)
			continue
		}
		v, err := s.e.eval(env)
		if err != nil {
			return "", fmt.Errorf("path %q: %v", t.src, err)
		}
		if s.pad > 0 {
			b.WriteString(fmt.Sprintf("%0*d", s.pad, v))
		} else {
			b.WriteString(strconv.FormatInt(v, 10))
		}
	}
	return b.String(), nil
}
