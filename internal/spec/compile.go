package spec

import (
	"fmt"
	"time"

	"vani/internal/iface"
	"vani/internal/sim"
	"vani/internal/workloads"
)

// Compile wraps the validated doc as a workloads.Workload. The compiled
// workload issues the identical interface-call sequence a hand-coded
// generator for the same behavior would, so characterizations are
// byte-identical (see the golden equivalence tests).
func (d *Doc) Compile() workloads.Workload { return &compiled{doc: d} }

type compiled struct {
	doc *Doc
}

// Name implements workloads.Workload.
func (c *compiled) Name() string { return c.doc.Name }

// AppName implements workloads.Workload.
func (c *compiled) AppName() string { return c.doc.App }

// DefaultSpec implements workloads.Workload: the shared default overlaid
// with the doc's defaults block.
func (c *compiled) DefaultSpec() workloads.Spec {
	s := workloads.DefaultSpec()
	if c.doc.Defaults.Nodes > 0 {
		s.Nodes = c.doc.Defaults.Nodes
	}
	if c.doc.Defaults.RanksPerNode > 0 {
		s.RanksPerNode = c.doc.Defaults.RanksPerNode
	}
	if c.doc.Defaults.TimeLimit > 0 {
		s.TimeLimit = c.doc.Defaults.TimeLimit
	}
	if c.doc.Defaults.StdioPerOpCPU > 0 {
		s.Iface.StdioPerOpCPU = c.doc.Defaults.StdioPerOpCPU
	}
	return s
}

// paramsFor evaluates the doc's params under a concrete run spec: value
// params scaled by the generators' rules, then expr params over them.
func (c *compiled) paramsFor(env *workloads.Env) map[string]int64 {
	vals := make(map[string]int64, len(c.doc.ordered))
	lookup := func(id string) (int64, bool) {
		switch id {
		case "ranks":
			return int64(env.Job.Ranks()), true
		case "rpn":
			return int64(env.Spec.RanksPerNode), true
		case "nodes":
			return int64(env.Spec.Nodes), true
		case "optimized":
			return b2i(env.Spec.Optimized), true
		}
		v, ok := vals[id]
		return v, ok
	}
	for _, p := range c.doc.ordered {
		switch p.kind {
		case paramCount:
			if p.scaled {
				vals[p.name] = int64(workloads.ScaleN(int(p.value), env.Spec.Scale, 1))
			} else {
				vals[p.name] = p.value
			}
		case paramBytes:
			if p.scaled {
				vals[p.name] = workloads.ScaleBytes(p.value, env.Spec.Scale, p.unit)
			} else {
				vals[p.name] = p.value
			}
		case paramTime:
			vals[p.name] = p.value
		case paramExpr:
			v, err := p.e.eval(lookup)
			if err != nil {
				panic(fmt.Errorf("spec %s: param %s: %v", c.doc.Name, p.name, err))
			}
			vals[p.name] = v
		}
	}
	return vals
}

// dirOf renders a dir's base path, picking the optimized variant when the
// run is optimized and the dir declares one.
func (c *compiled) dirOf(name string, lookup func(string) (int64, bool), optimized bool) (string, error) {
	dr, ok := c.doc.dirs[name]
	if !ok {
		return "", fmt.Errorf("unknown dir @%s", name)
	}
	t := dr.base
	if optimized && dr.optimized != nil {
		t = dr.optimized
	}
	return t.render(lookup, func(string) (string, error) {
		return "", fmt.Errorf("dir templates cannot reference dirs")
	})
}

func (c *compiled) renderPath(t *pathT, lookup func(string) (int64, bool), optimized bool) string {
	s, err := t.render(lookup, func(n string) (string, error) {
		return c.dirOf(n, lookup, optimized)
	})
	if err != nil {
		panic(fmt.Errorf("spec %s: %v", c.doc.Name, err))
	}
	return s
}

// Setup implements workloads.Workload: materializes staged datasets and
// attaches value-distribution samples, in document order.
func (c *compiled) Setup(env *workloads.Env) {
	params := c.paramsFor(env)
	for _, st := range c.doc.setup {
		if st.sample != "" {
			c.setupSample(env, st)
			continue
		}
		c.setupFiles(env, st, params)
	}
}

func (c *compiled) setupSample(env *workloads.Env, st *setupStep) {
	sample := make([]float64, st.sampleN)
	rng := env.RNG.Fork()
	for i := range sample {
		switch st.dist {
		case "normal":
			sample[i] = rng.Normal(st.a, st.b)
		case "gamma":
			sample[i] = rng.Gamma(st.a, st.b)
		case "uniform":
			sample[i] = rng.Uniform(st.a, st.b)
		}
	}
	env.Tr.AddSample(st.sample, sample)
}

func (c *compiled) setupFiles(env *workloads.Env, st *setupStep, params map[string]int64) {
	var node, idx int64
	lookup := func(id string) (int64, bool) {
		switch id {
		case "i":
			return idx, true
		case "node":
			return node, true
		case "ranks":
			return int64(env.Job.Ranks()), true
		case "rpn":
			return int64(env.Spec.RanksPerNode), true
		case "nodes":
			return int64(env.Spec.Nodes), true
		case "optimized":
			return b2i(env.Spec.Optimized), true
		}
		v, ok := params[id]
		return v, ok
	}
	evalOne := func(e *expr, def int64) int64 {
		if e == nil {
			return def
		}
		v, err := e.eval(lookup)
		if err != nil {
			panic(fmt.Errorf("spec %s: setup: %v", c.doc.Name, err))
		}
		return v
	}
	stage := func() {
		count := evalOne(st.count, 1)
		for idx = 0; idx < count; idx++ {
			path := c.renderPath(st.path, lookup, env.Spec.Optimized)
			size := evalOne(st.size, 0)
			target := 0
			if st.onNode {
				target = int(node)
			}
			env.Sys.Materialize(target, path, size)
		}
	}
	if st.perNode {
		for node = 0; node < int64(env.Spec.Nodes); node++ {
			stage()
		}
	} else {
		stage()
	}
}

// Spawn implements workloads.Workload: one proc per rank interpreting the
// run program.
func (c *compiled) Spawn(env *workloads.Env) {
	params := c.paramsFor(env)
	ranks := env.Job.Ranks()
	bars := make(map[string]*sim.Barrier, len(c.doc.barriers))
	for _, name := range c.doc.barriers {
		bars[name] = sim.NewBarrier(env.E, ranks)
	}
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		cl := env.Client(c.doc.App, rank)
		st := &rankState{
			c:       c,
			env:     env,
			params:  params,
			vars:    map[string]int64{},
			bars:    bars,
			rank:    rank,
			node:    env.Job.NodeOf(rank),
			local:   env.Job.LocalRank(rank),
			leader:  env.Job.IsNodeLeader(rank),
			clients: map[string]*iface.Client{c.doc.App: cl},
		}
		env.E.Spawn(fmt.Sprintf("%s-rank%d", c.doc.Name, rank), func(p *sim.Proc) {
			st.p = p
			st.exec(c.doc.run, c.doc.App)
		})
	}
}

// rankState is one rank's interpreter state.
type rankState struct {
	c      *compiled
	env    *workloads.Env
	p      *sim.Proc
	params map[string]int64
	vars   map[string]int64
	bars   map[string]*sim.Barrier

	rank, node, local int
	leader            bool

	clients map[string]*iface.Client
	cur     *handle
}

// handle is the currently open file, across whichever interface opened it.
type handle struct {
	layer string
	path  string
	posix *iface.PosixFile
	stdio *iface.StdioFile
	mpi   *iface.MPIFile
	h5    *iface.H5File
}

func (st *rankState) lookup(id string) (int64, bool) {
	if v, ok := st.vars[id]; ok {
		return v, ok
	}
	if v, ok := st.params[id]; ok {
		return v, ok
	}
	switch id {
	case "rank":
		return int64(st.rank), true
	case "node":
		return int64(st.node), true
	case "local":
		return int64(st.local), true
	case "leader":
		return b2i(st.leader), true
	case "ranks":
		return int64(st.env.Job.Ranks()), true
	case "rpn":
		return int64(st.env.Spec.RanksPerNode), true
	case "nodes":
		return int64(st.env.Spec.Nodes), true
	case "optimized":
		return b2i(st.env.Spec.Optimized), true
	}
	return 0, false
}

func (st *rankState) eval(e *expr) int64 {
	v, err := e.eval(st.lookup)
	if err != nil {
		panic(fmt.Errorf("spec %s: rank %d: %v", st.c.doc.Name, st.rank, err))
	}
	return v
}

func (st *rankState) evalOr(e *expr, def int64) int64 {
	if e == nil {
		return def
	}
	return st.eval(e)
}

func (st *rankState) client(app string) *iface.Client {
	if cl, ok := st.clients[app]; ok {
		return cl
	}
	cl := st.env.Client(app, st.rank)
	st.clients[app] = cl
	return cl
}

func (st *rankState) path(t *pathT) string {
	return st.c.renderPath(t, st.lookup, st.env.Spec.Optimized)
}

func (st *rankState) fail(format string, args ...interface{}) {
	panic(fmt.Errorf("spec %s: rank %d: %s", st.c.doc.Name, st.rank, fmt.Sprintf(format, args...)))
}

func (st *rankState) check(err error) {
	if err != nil {
		panic(err)
	}
}

func (st *rankState) exec(ops []*op, app string) {
	for _, o := range ops {
		switch o.kind {
		case opGroup:
			if o.when != nil && st.eval(o.when) == 0 {
				continue
			}
			a := app
			if o.app != "" {
				a = o.app
			}
			st.exec(o.body, a)
		case opLoop:
			from := st.evalOr(o.from, 0)
			until := st.eval(o.until)
			step := st.evalOr(o.step, 1)
			if step <= 0 {
				st.fail("loop %s: step %d not positive", o.loopVar, step)
			}
			for v := from; v < until; v += step {
				st.vars[o.loopVar] = v
				st.exec(o.body, app)
			}
		case opLet:
			st.vars[o.letName] = st.eval(o.letExpr)
		case opDescribe:
			st.client(app).DescribeFile(st.path(o.path), o.format, o.ndims, o.dtype)
		case opOpen:
			st.open(o, app)
		case opRead, opWrite:
			st.readWrite(o)
		case opPRead:
			st.pread(o)
		case opPWrite:
			st.pwrite(o)
		case opReadWrap:
			st.readWrap(o)
		case opClose:
			if st.cur == nil {
				st.fail("close without an open file")
			}
			switch st.cur.layer {
			case "posix":
				st.check(st.cur.posix.Close(st.p))
			case "stdio":
				st.check(st.cur.stdio.Close(st.p))
			case "mpiio":
				st.check(st.cur.mpi.Close(st.p))
			case "hdf5":
				st.check(st.cur.h5.Close(st.p))
			}
			st.cur = nil
		case opStat:
			_, err := st.client(app).PosixStat(st.p, st.path(o.path))
			st.check(err)
		case opBarrier:
			st.client(app).Barrier(st.p, st.bars[o.name])
		case opCompute:
			st.client(app).Compute(st.p, time.Duration(st.eval(o.dur)))
		case opGPU:
			st.client(app).GPUCompute(st.p, time.Duration(st.eval(o.dur)))
		}
	}
}

func (st *rankState) open(o *op, app string) {
	if st.cur != nil {
		st.fail("open %s while %s is open", o.path.src, st.cur.path)
	}
	cl := st.client(app)
	path := st.path(o.path)
	h := &handle{layer: o.layer, path: path}
	var err error
	switch o.layer {
	case "posix":
		h.posix, err = cl.PosixOpen(st.p, path, o.create)
	case "stdio":
		h.stdio, err = cl.StdioOpen(st.p, path, o.mode)
	case "mpiio":
		h.mpi, err = cl.MPIOpen(st.p, path, o.create, int(st.eval(o.comm)))
	case "hdf5":
		h.h5, err = cl.H5Open(st.p, path, o.create, int(st.eval(o.comm)))
	}
	st.check(err)
	st.cur = h
}

// readWrite runs a sequential read/write of total bytes in granule-sized
// operations (one operation when granule is omitted), clamping the tail
// when clamp is set.
func (st *rankState) readWrite(o *op) {
	if st.cur == nil {
		st.fail("read/write without an open file")
	}
	total := st.eval(o.total)
	granule := st.evalOr(o.granule, total)
	if granule <= 0 {
		st.fail("granule %d not positive", granule)
	}
	for off := int64(0); off < total; off += granule {
		n := granule
		if o.clamp && off+n > total {
			n = total - off
		}
		var err error
		switch st.cur.layer {
		case "posix":
			if o.kind == opRead {
				err = st.cur.posix.Read(st.p, n)
			} else {
				err = st.cur.posix.Write(st.p, n)
			}
		case "stdio":
			if o.kind == opRead {
				err = st.cur.stdio.Read(st.p, n)
			} else {
				err = st.cur.stdio.Write(st.p, n)
			}
		case "mpiio":
			if o.kind == opRead {
				err = st.cur.mpi.ReadAt(st.p, off, n)
			} else {
				err = st.cur.mpi.WriteAt(st.p, off, n)
			}
		case "hdf5":
			if o.kind == opRead {
				err = st.cur.h5.DatasetRead(st.p, off, n)
			} else {
				err = st.cur.h5.DatasetWrite(st.p, off, n)
			}
		}
		st.check(err)
	}
}

// pread runs positioned reads at base + off*stride for off in granule
// steps below total — strided sparse scans when stride > 1.
func (st *rankState) pread(o *op) {
	if st.cur == nil {
		st.fail("pread without an open file")
	}
	base := st.evalOr(o.at, 0)
	total := st.eval(o.total)
	granule := st.evalOr(o.granule, total)
	if granule <= 0 {
		st.fail("granule %d not positive", granule)
	}
	for off := int64(0); off < total; off += granule {
		n := granule
		if o.clamp && off+n > total {
			n = total - off
		}
		var err error
		switch st.cur.layer {
		case "posix":
			err = st.cur.posix.ReadAt(st.p, base+off*o.stride, n, false)
		case "mpiio":
			err = st.cur.mpi.ReadAt(st.p, base+off*o.stride, n)
		default:
			st.fail("pread on %s file", st.cur.layer)
		}
		st.check(err)
	}
}

// pwrite runs positioned writes at base+off, optionally preceded by a
// seek per operation (CM1's append pattern), where base is the at
// expression or — with append — the file's current size.
func (st *rankState) pwrite(o *op) {
	if st.cur == nil {
		st.fail("pwrite without an open file")
	}
	if st.cur.layer != "posix" {
		st.fail("pwrite on %s file", st.cur.layer)
	}
	var base int64
	if o.appendBase {
		base, _ = st.env.Sys.FileSize(0, st.cur.path)
	} else {
		base = st.evalOr(o.at, 0)
	}
	total := st.eval(o.total)
	granule := st.evalOr(o.granule, total)
	if granule <= 0 {
		st.fail("granule %d not positive", granule)
	}
	for off := int64(0); off < total; off += granule {
		n := granule
		if o.clamp && off+n > total {
			n = total - off
		}
		if o.seek {
			st.check(st.cur.posix.Seek(st.p, base+off))
		}
		st.check(st.cur.posix.WriteAt(st.p, base+off, n, false))
	}
}

// readWrap reads total bytes in granule steps from a stdio file of the
// given size, seeking back to the start whenever the next operation would
// run past the end — Montage's overlap re-read pattern.
func (st *rankState) readWrap(o *op) {
	if st.cur == nil {
		st.fail("readwrap without an open file")
	}
	if st.cur.layer != "stdio" {
		st.fail("readwrap on %s file", st.cur.layer)
	}
	total := st.eval(o.total)
	granule := st.eval(o.granule)
	size := st.eval(o.size)
	if granule <= 0 {
		st.fail("granule %d not positive", granule)
	}
	f := st.cur.stdio
	for read := int64(0); read < total; read += granule {
		if f.Pos()+granule > size {
			st.check(f.Seek(st.p, 0))
		}
		st.check(f.Read(st.p, granule))
	}
}
