// Package spec implements the declarative workload DSL: YAML/JSON
// documents describing an HPC workload's I/O behavior — topology
// defaults, scaled parameters, staged datasets, value distributions,
// barriers, and a per-rank program of phases over the simulated I/O
// interfaces — compiled onto internal/sim + internal/cluster +
// internal/iface as a workloads.Workload.
//
// The compiler is exact: a spec re-stating one of the hand-coded
// generators issues the identical sequence of interface calls in the
// identical order, so its characterization is byte-identical to the
// generator's (pinned by the golden equivalence tests). On top of the
// DSL, the sweep layer (sweep.go) expands a spec + parameter grid into
// concrete runs and reduces them into a comparative report — the
// paper's case-study reconfiguration experiments as an automated search.
package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"regexp"
	"sort"
	"time"

	"vani/internal/yamlenc"
)

// ErrBadSpec wraps every parse/validation failure, so callers (and the
// fuzzer) can assert that malformed input is rejected uniformly.
var ErrBadSpec = errors.New("invalid workload spec")

// Bounds on document shape, enforced during validation so corrupt or
// adversarial input cannot balloon allocation.
const (
	maxSpecBytes  = 1 << 20
	maxParams     = 256
	maxDirs       = 64
	maxBarriers   = 64
	maxSetupSteps = 256
	maxOps        = 4096
	maxDepth      = 32
	maxSampleN    = 1 << 16
)

var (
	nameRe  = regexp.MustCompile(`^[a-z][a-z0-9-]{0,63}$`)
	appRe   = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_-]{0,63}$`)
	identRe = regexp.MustCompile(`^[a-z][a-z0-9_]{0,63}$`)
)

// builtins usable in run-program expressions. Setup expressions see the
// same set minus the per-rank identifiers plus the staging loop vars.
var runBuiltins = map[string]bool{
	"rank": true, "node": true, "local": true, "leader": true,
	"ranks": true, "rpn": true, "nodes": true, "optimized": true,
}

// Doc is a validated, compiled workload spec.
type Doc struct {
	Version  int
	Name     string
	App      string
	Defaults Defaults

	params   map[string]*param
	ordered  []*param // value params first, then expr params, name-sorted
	dirs     map[string]*dir
	barriers []string
	setup    []*setupStep
	run      []*op
}

// Defaults override workloads.DefaultSpec for this workload.
type Defaults struct {
	Nodes         int
	RanksPerNode  int
	TimeLimit     time.Duration
	StdioPerOpCPU time.Duration
}

type paramKind int

const (
	paramCount paramKind = iota
	paramBytes
	paramTime
	paramExpr
)

type param struct {
	name   string
	kind   paramKind
	value  int64 // raw count/bytes, or nanoseconds for time
	scaled bool
	unit   int64 // scaling floor for bytes params
	e      *expr
}

type dir struct {
	name      string
	base      *pathT
	optimized *pathT // nil = same as base
}

type setupStep struct {
	// files step
	path    *pathT
	count   *expr // nil = 1
	size    *expr
	perNode bool
	onNode  bool
	// sample step
	sample  string
	dist    string // normal | gamma | uniform
	a, b    float64
	sampleN int
}

type opKind int

const (
	opGroup opKind = iota
	opLoop
	opLet
	opDescribe
	opOpen
	opRead
	opWrite
	opPRead
	opPWrite
	opReadWrap
	opClose
	opStat
	opBarrier
	opCompute
	opGPU
)

type op struct {
	kind opKind

	// group
	when *expr
	app  string
	body []*op

	// loop
	loopVar           string
	from, until, step *expr

	// let
	letName string
	letExpr *expr

	// file ops
	path          *pathT
	format, dtype string
	ndims         int
	layer         string // posix | stdio | mpiio | hdf5
	create        bool
	mode          byte // stdio 'r' / 'w'
	comm          *expr
	total         *expr
	granule       *expr // nil = total
	at            *expr // nil = 0
	size          *expr // readwrap file size
	stride        int64
	clamp         bool
	seek          bool
	appendBase    bool

	// barrier / compute
	name string
	dur  *expr // nanoseconds
}

// Parse decodes, validates, and compiles a workload spec. Input starting
// with '{' (after whitespace) is treated as JSON, anything else as YAML.
func Parse(data []byte) (*Doc, error) {
	tree, err := decodeTree(data)
	if err != nil {
		return nil, err
	}
	d, err := buildDoc(tree)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return d, nil
}

// ParseFile reads and parses a spec from disk.
func ParseFile(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// decodeTree sniffs the encoding and decodes into the generic tree both
// parsers share: map[string]interface{} / []interface{} / scalars.
// stripComments drops full-line YAML comments (first non-blank character
// is '#') before handing the document to yamlenc, which has no comment
// support. Trailing comments are left alone: '#' is a legal character in
// scalar values, and none of the spec grammar's fields need it.
func stripComments(data []byte) []byte {
	lines := bytes.Split(data, []byte("\n"))
	out := make([][]byte, 0, len(lines))
	for _, line := range lines {
		trimmed := bytes.TrimLeft(line, " \t")
		if len(trimmed) > 0 && trimmed[0] == '#' {
			continue
		}
		out = append(out, line)
	}
	return bytes.Join(out, []byte("\n"))
}

func decodeTree(data []byte) (map[string]interface{}, error) {
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("%w: spec larger than %d bytes", ErrBadSpec, maxSpecBytes)
	}
	i := 0
	for i < len(data) && (data[i] == ' ' || data[i] == '\t' || data[i] == '\n' || data[i] == '\r') {
		i++
	}
	if i == len(data) {
		return nil, fmt.Errorf("%w: empty document", ErrBadSpec)
	}
	var v interface{}
	if data[i] == '{' {
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	} else {
		t, err := yamlenc.Unmarshal(stripComments(data))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		v = t
	}
	m, ok := v.(map[string]interface{})
	if !ok {
		return nil, fmt.Errorf("%w: top level is %T, want a mapping", ErrBadSpec, v)
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Generic-tree helpers

func checkKeys(m map[string]interface{}, where string, allowed ...string) error {
	for k := range m {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%s: unknown key %q", where, k)
		}
	}
	return nil
}

func asObj(v interface{}, where string) (map[string]interface{}, error) {
	if v == nil {
		return map[string]interface{}{}, nil
	}
	m, ok := v.(map[string]interface{})
	if !ok {
		return nil, fmt.Errorf("%s: got %T, want a mapping", where, v)
	}
	return m, nil
}

func asList(v interface{}, where string) ([]interface{}, error) {
	if v == nil {
		return nil, nil
	}
	l, ok := v.([]interface{})
	if !ok {
		return nil, fmt.Errorf("%s: got %T, want a list", where, v)
	}
	return l, nil
}

func asString(v interface{}, where string) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%s: got %T, want a string", where, v)
	}
	return s, nil
}

func asInt(v interface{}, where string) (int64, error) {
	switch t := v.(type) {
	case int64:
		return t, nil
	case float64:
		if t == float64(int64(t)) {
			return int64(t), nil
		}
	}
	return 0, fmt.Errorf("%s: got %v (%T), want an integer", where, v, v)
}

func asFloat(v interface{}, where string) (float64, error) {
	switch t := v.(type) {
	case int64:
		return float64(t), nil
	case float64:
		return t, nil
	}
	return 0, fmt.Errorf("%s: got %T, want a number", where, v)
}

func asBool(v interface{}, where string) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("%s: got %T, want a bool", where, v)
	}
	return b, nil
}

// asExprVal accepts an integer scalar or an expression string.
func asExprVal(v interface{}, where string) (*expr, error) {
	switch t := v.(type) {
	case int64:
		return &expr{src: fmt.Sprint(t), root: litNode(t)}, nil
	case float64:
		if t == float64(int64(t)) {
			return &expr{src: fmt.Sprint(int64(t)), root: litNode(int64(t))}, nil
		}
		return nil, fmt.Errorf("%s: non-integer number %v", where, t)
	case string:
		e, err := parseExpr(t)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", where, err)
		}
		return e, nil
	}
	return nil, fmt.Errorf("%s: got %T, want an integer or expression", where, v)
}

// asDurVal accepts a duration string ("90s"), an integer nanosecond
// count, or an expression over time params (which hold nanoseconds).
func asDurVal(v interface{}, where string) (*expr, error) {
	if s, ok := v.(string); ok {
		if d, err := time.ParseDuration(s); err == nil {
			if d < 0 {
				return nil, fmt.Errorf("%s: negative duration %v", where, d)
			}
			return &expr{src: s, root: litNode(int64(d))}, nil
		}
	}
	return asExprVal(v, where)
}

func asDuration(v interface{}, where string) (time.Duration, error) {
	switch t := v.(type) {
	case string:
		d, err := time.ParseDuration(t)
		if err != nil {
			return 0, fmt.Errorf("%s: bad duration %q", where, t)
		}
		return d, nil
	case int64:
		return time.Duration(t), nil
	}
	return 0, fmt.Errorf("%s: got %T, want a duration", where, v)
}

// ---------------------------------------------------------------------------
// Document builder

func buildDoc(m map[string]interface{}) (*Doc, error) {
	if err := checkKeys(m, "document", "version", "name", "app", "defaults",
		"params", "dirs", "barriers", "setup", "run"); err != nil {
		return nil, err
	}
	d := &Doc{
		params: map[string]*param{},
		dirs:   map[string]*dir{},
	}
	v, err := asInt(m["version"], "version")
	if err != nil {
		return nil, err
	}
	if v != 1 {
		return nil, fmt.Errorf("version: unsupported version %d", v)
	}
	d.Version = int(v)
	if d.Name, err = asString(m["name"], "name"); err != nil {
		return nil, err
	}
	if !nameRe.MatchString(d.Name) {
		return nil, fmt.Errorf("name: bad workload name %q", d.Name)
	}
	if d.App, err = asString(m["app"], "app"); err != nil {
		return nil, err
	}
	if !appRe.MatchString(d.App) {
		return nil, fmt.Errorf("app: bad application name %q", d.App)
	}
	if err := d.buildDefaults(m["defaults"]); err != nil {
		return nil, err
	}
	if err := d.buildParams(m["params"]); err != nil {
		return nil, err
	}
	if err := d.buildDirs(m["dirs"]); err != nil {
		return nil, err
	}
	if err := d.buildBarriers(m["barriers"]); err != nil {
		return nil, err
	}
	if err := d.buildSetup(m["setup"]); err != nil {
		return nil, err
	}
	if err := d.buildRun(m["run"]); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Doc) buildDefaults(v interface{}) error {
	m, err := asObj(v, "defaults")
	if err != nil {
		return err
	}
	if err := checkKeys(m, "defaults", "nodes", "ranks_per_node", "time_limit", "stdio_per_op_cpu"); err != nil {
		return err
	}
	if raw, ok := m["nodes"]; ok {
		n, err := asInt(raw, "defaults.nodes")
		if err != nil {
			return err
		}
		if n < 1 || n > 1<<20 {
			return fmt.Errorf("defaults.nodes: %d out of range", n)
		}
		d.Defaults.Nodes = int(n)
	}
	if raw, ok := m["ranks_per_node"]; ok {
		n, err := asInt(raw, "defaults.ranks_per_node")
		if err != nil {
			return err
		}
		if n < 1 || n > 1<<16 {
			return fmt.Errorf("defaults.ranks_per_node: %d out of range", n)
		}
		d.Defaults.RanksPerNode = int(n)
	}
	if raw, ok := m["time_limit"]; ok {
		t, err := asDuration(raw, "defaults.time_limit")
		if err != nil {
			return err
		}
		if t <= 0 {
			return fmt.Errorf("defaults.time_limit: must be positive")
		}
		d.Defaults.TimeLimit = t
	}
	if raw, ok := m["stdio_per_op_cpu"]; ok {
		t, err := asDuration(raw, "defaults.stdio_per_op_cpu")
		if err != nil {
			return err
		}
		if t < 0 {
			return fmt.Errorf("defaults.stdio_per_op_cpu: must be non-negative")
		}
		d.Defaults.StdioPerOpCPU = t
	}
	return nil
}

func (d *Doc) buildParams(v interface{}) error {
	m, err := asObj(v, "params")
	if err != nil {
		return err
	}
	if len(m) > maxParams {
		return fmt.Errorf("params: %d params exceed the %d cap", len(m), maxParams)
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !identRe.MatchString(name) {
			return fmt.Errorf("params: bad param name %q", name)
		}
		if runBuiltins[name] || name == "i" {
			return fmt.Errorf("params: %q shadows a builtin", name)
		}
		pm, err := asObj(m[name], "params."+name)
		if err != nil {
			return err
		}
		if err := checkKeys(pm, "params."+name, "count", "bytes", "time", "expr", "scaled", "unit"); err != nil {
			return err
		}
		p := &param{name: name, unit: 1}
		kinds := 0
		for _, k := range []string{"count", "bytes", "time", "expr"} {
			if _, ok := pm[k]; ok {
				kinds++
			}
		}
		if kinds != 1 {
			return fmt.Errorf("params.%s: exactly one of count/bytes/time/expr required", name)
		}
		if raw, ok := pm["scaled"]; ok {
			if p.scaled, err = asBool(raw, "params."+name+".scaled"); err != nil {
				return err
			}
		}
		switch {
		case pm["count"] != nil:
			p.kind = paramCount
			n, err := constVal(pm["count"], "params."+name+".count")
			if err != nil {
				return err
			}
			if n < 0 || n > 1<<40 {
				return fmt.Errorf("params.%s.count: %d out of range", name, n)
			}
			p.value = n
		case pm["bytes"] != nil:
			p.kind = paramBytes
			n, err := constVal(pm["bytes"], "params."+name+".bytes")
			if err != nil {
				return err
			}
			if n < 0 {
				return fmt.Errorf("params.%s.bytes: negative", name)
			}
			p.value = n
			if raw, ok := pm["unit"]; ok {
				u, err := constVal(raw, "params."+name+".unit")
				if err != nil {
					return err
				}
				if u < 1 {
					return fmt.Errorf("params.%s.unit: must be positive", name)
				}
				p.unit = u
			}
		case pm["time"] != nil:
			p.kind = paramTime
			t, err := asDuration(pm["time"], "params."+name+".time")
			if err != nil {
				return err
			}
			if t < 0 {
				return fmt.Errorf("params.%s.time: negative", name)
			}
			if p.scaled {
				return fmt.Errorf("params.%s: time params cannot be scaled", name)
			}
			p.value = int64(t)
		default:
			p.kind = paramExpr
			src, err := asString(pm["expr"], "params."+name+".expr")
			if err != nil {
				return err
			}
			if p.e, err = parseExpr(src); err != nil {
				return fmt.Errorf("params.%s: %v", name, err)
			}
			if p.scaled {
				return fmt.Errorf("params.%s: expr params cannot be scaled", name)
			}
		}
		if p.scaled && pm["count"] == nil && pm["bytes"] == nil {
			return fmt.Errorf("params.%s: scaled requires count or bytes", name)
		}
		d.params[name] = p
	}
	// Evaluation order: value params (any order — they are constants),
	// then expr params name-sorted; expr params may reference value
	// params and builtins but not each other.
	for _, name := range names {
		if d.params[name].kind != paramExpr {
			d.ordered = append(d.ordered, d.params[name])
		}
	}
	for _, name := range names {
		p := d.params[name]
		if p.kind != paramExpr {
			continue
		}
		var badIdent string
		p.e.idents(func(id string) {
			if badIdent != "" {
				return
			}
			if ref, ok := d.params[id]; ok {
				if ref.kind == paramExpr {
					badIdent = id + " (expr params cannot reference each other)"
				}
				return
			}
			if !paramBuiltin(id) {
				badIdent = id
			}
		})
		if badIdent != "" {
			return fmt.Errorf("params.%s: unknown identifier %s", name, badIdent)
		}
		d.ordered = append(d.ordered, p)
	}
	return nil
}

// paramBuiltin reports whether id is available to param/setup expressions.
func paramBuiltin(id string) bool {
	switch id {
	case "ranks", "rpn", "nodes", "optimized":
		return true
	}
	return false
}

// constVal evaluates a count/bytes scalar: an integer, or a string
// expression over literals only ("16MiB", "5632KiB").
func constVal(v interface{}, where string) (int64, error) {
	e, err := asExprVal(v, where)
	if err != nil {
		return 0, err
	}
	bad := ""
	e.idents(func(id string) { bad = id })
	if bad != "" {
		return 0, fmt.Errorf("%s: identifiers not allowed here (%q)", where, bad)
	}
	n, err := e.eval(func(string) (int64, bool) { return 0, false })
	if err != nil {
		return 0, fmt.Errorf("%s: %v", where, err)
	}
	return n, nil
}

func (d *Doc) buildDirs(v interface{}) error {
	m, err := asObj(v, "dirs")
	if err != nil {
		return err
	}
	if len(m) > maxDirs {
		return fmt.Errorf("dirs: %d dirs exceed the %d cap", len(m), maxDirs)
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !identRe.MatchString(name) {
			return fmt.Errorf("dirs: bad dir name %q", name)
		}
		dm, err := asObj(m[name], "dirs."+name)
		if err != nil {
			return err
		}
		if err := checkKeys(dm, "dirs."+name, "path", "optimized"); err != nil {
			return err
		}
		src, err := asString(dm["path"], "dirs."+name+".path")
		if err != nil {
			return err
		}
		dr := &dir{name: name}
		if dr.base, err = parsePath(src, false); err != nil {
			return fmt.Errorf("dirs.%s: %v", name, err)
		}
		if raw, ok := dm["optimized"]; ok {
			osrc, err := asString(raw, "dirs."+name+".optimized")
			if err != nil {
				return err
			}
			if dr.optimized, err = parsePath(osrc, false); err != nil {
				return fmt.Errorf("dirs.%s: %v", name, err)
			}
		}
		d.dirs[name] = dr
	}
	return nil
}

func (d *Doc) buildBarriers(v interface{}) error {
	l, err := asList(v, "barriers")
	if err != nil {
		return err
	}
	if len(l) > maxBarriers {
		return fmt.Errorf("barriers: %d barriers exceed the %d cap", len(l), maxBarriers)
	}
	seen := map[string]bool{}
	for i, raw := range l {
		name, err := asString(raw, fmt.Sprintf("barriers[%d]", i))
		if err != nil {
			return err
		}
		if !identRe.MatchString(name) {
			return fmt.Errorf("barriers[%d]: bad barrier name %q", i, name)
		}
		if seen[name] {
			return fmt.Errorf("barriers[%d]: duplicate barrier %q", i, name)
		}
		seen[name] = true
		d.barriers = append(d.barriers, name)
	}
	return nil
}

func (d *Doc) buildSetup(v interface{}) error {
	l, err := asList(v, "setup")
	if err != nil {
		return err
	}
	if len(l) > maxSetupSteps {
		return fmt.Errorf("setup: %d steps exceed the %d cap", len(l), maxSetupSteps)
	}
	for i, raw := range l {
		where := fmt.Sprintf("setup[%d]", i)
		m, err := asObj(raw, where)
		if err != nil {
			return err
		}
		switch {
		case m["files"] != nil:
			if err := checkKeys(m, where, "files"); err != nil {
				return err
			}
			fm, err := asObj(m["files"], where+".files")
			if err != nil {
				return err
			}
			if err := checkKeys(fm, where+".files", "path", "count", "size", "per_node", "on_node"); err != nil {
				return err
			}
			st := &setupStep{}
			src, err := asString(fm["path"], where+".files.path")
			if err != nil {
				return err
			}
			if st.path, err = parsePath(src, true); err != nil {
				return fmt.Errorf("%s.files: %v", where, err)
			}
			if raw, ok := fm["count"]; ok {
				if st.count, err = asExprVal(raw, where+".files.count"); err != nil {
					return err
				}
			}
			if fm["size"] == nil {
				return fmt.Errorf("%s.files: size required", where)
			}
			if st.size, err = asExprVal(fm["size"], where+".files.size"); err != nil {
				return err
			}
			if raw, ok := fm["per_node"]; ok {
				if st.perNode, err = asBool(raw, where+".files.per_node"); err != nil {
					return err
				}
			}
			if raw, ok := fm["on_node"]; ok {
				if st.onNode, err = asBool(raw, where+".files.on_node"); err != nil {
					return err
				}
			}
			if st.onNode && !st.perNode {
				return fmt.Errorf("%s.files: on_node requires per_node", where)
			}
			if err := d.checkSetupIdents(st, where); err != nil {
				return err
			}
			d.setup = append(d.setup, st)
		case m["sample"] != nil:
			if err := checkKeys(m, where, "sample"); err != nil {
				return err
			}
			sm, err := asObj(m["sample"], where+".sample")
			if err != nil {
				return err
			}
			if err := checkKeys(sm, where+".sample", "name", "dist", "a", "b", "n"); err != nil {
				return err
			}
			st := &setupStep{sampleN: 2000}
			if st.sample, err = asString(sm["name"], where+".sample.name"); err != nil {
				return err
			}
			if st.sample == "" || len(st.sample) > 64 {
				return fmt.Errorf("%s.sample: bad sample name", where)
			}
			if st.dist, err = asString(sm["dist"], where+".sample.dist"); err != nil {
				return err
			}
			switch st.dist {
			case "normal", "gamma", "uniform":
			default:
				return fmt.Errorf("%s.sample: unknown distribution %q", where, st.dist)
			}
			if st.a, err = asFloat(sm["a"], where+".sample.a"); err != nil {
				return err
			}
			if st.b, err = asFloat(sm["b"], where+".sample.b"); err != nil {
				return err
			}
			if raw, ok := sm["n"]; ok {
				n, err := asInt(raw, where+".sample.n")
				if err != nil {
					return err
				}
				if n < 1 || n > maxSampleN {
					return fmt.Errorf("%s.sample.n: %d out of range", where, n)
				}
				st.sampleN = int(n)
			}
			d.setup = append(d.setup, st)
		default:
			return fmt.Errorf("%s: want a files or sample step", where)
		}
	}
	return nil
}

// checkSetupIdents validates the identifiers a setup files-step may use:
// params, topology builtins, and the staging loop vars i / node.
func (d *Doc) checkSetupIdents(st *setupStep, where string) error {
	check := func(e *expr) error {
		if e == nil {
			return nil
		}
		bad := ""
		e.idents(func(id string) {
			if bad != "" {
				return
			}
			if _, ok := d.params[id]; ok {
				return
			}
			if paramBuiltin(id) || id == "i" || id == "node" {
				return
			}
			bad = id
		})
		if bad != "" {
			return fmt.Errorf("%s: unknown identifier %q", where, bad)
		}
		return nil
	}
	if err := check(st.count); err != nil {
		return err
	}
	if err := check(st.size); err != nil {
		return err
	}
	var perr error
	st.path.idents(func(id string) {
		if perr != nil {
			return
		}
		if _, ok := d.params[id]; ok {
			return
		}
		if paramBuiltin(id) || id == "i" || id == "node" {
			return
		}
		perr = fmt.Errorf("%s: unknown identifier %q in path", where, id)
	})
	if perr != nil {
		return perr
	}
	if st.path.dir != "" {
		if _, ok := d.dirs[st.path.dir]; !ok {
			return fmt.Errorf("%s: unknown dir @%s", where, st.path.dir)
		}
	}
	return nil
}
