package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// The spec DSL's expression language: 64-bit integer arithmetic over
// parameter names, builtin identifiers (rank, node, local, leader, ranks,
// rpn, nodes, optimized) and loop/let variables, with size-suffixed
// literals (4KiB, 32MiB, ...). Comparisons and boolean operators evaluate
// to 0/1; any nonzero value is truthy. Grammar (precedence low to high):
//
//	ternary := or ("?" ternary ":" ternary)?
//	or      := and ("||" and)*
//	and     := cmp ("&&" cmp)*
//	cmp     := add (("=="|"!="|"<="|">="|"<"|">") add)?
//	add     := mul (("+"|"-") mul)*
//	mul     := unary (("*"|"/"|"%") unary)*
//	unary   := ("!"|"-") unary | number | ident | "(" ternary ")"
//
// Division is Go integer division; division or modulo by zero is a
// runtime error surfaced through the engine.

const maxExprLen = 1024

// expr is a compiled expression tree.
type expr struct {
	src  string
	root exprNode
}

type exprNode interface {
	eval(env func(string) (int64, bool)) (int64, error)
	idents(f func(string))
}

type litNode int64

func (n litNode) eval(func(string) (int64, bool)) (int64, error) { return int64(n), nil }
func (n litNode) idents(func(string))                            {}

type identNode string

func (n identNode) eval(env func(string) (int64, bool)) (int64, error) {
	v, ok := env(string(n))
	if !ok {
		return 0, fmt.Errorf("unknown identifier %q", string(n))
	}
	return v, nil
}
func (n identNode) idents(f func(string)) { f(string(n)) }

type unaryNode struct {
	op byte // '!' or '-'
	x  exprNode
}

func (n *unaryNode) eval(env func(string) (int64, bool)) (int64, error) {
	v, err := n.x.eval(env)
	if err != nil {
		return 0, err
	}
	if n.op == '!' {
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return -v, nil
}
func (n *unaryNode) idents(f func(string)) { n.x.idents(f) }

type binNode struct {
	op   string
	l, r exprNode
}

func (n *binNode) eval(env func(string) (int64, bool)) (int64, error) {
	l, err := n.l.eval(env)
	if err != nil {
		return 0, err
	}
	// Short-circuit the boolean operators.
	switch n.op {
	case "&&":
		if l == 0 {
			return 0, nil
		}
		r, err := n.r.eval(env)
		if err != nil {
			return 0, err
		}
		return b2i(r != 0), nil
	case "||":
		if l != 0 {
			return 1, nil
		}
		r, err := n.r.eval(env)
		if err != nil {
			return 0, err
		}
		return b2i(r != 0), nil
	}
	r, err := n.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return l % r, nil
	case "==":
		return b2i(l == r), nil
	case "!=":
		return b2i(l != r), nil
	case "<":
		return b2i(l < r), nil
	case "<=":
		return b2i(l <= r), nil
	case ">":
		return b2i(l > r), nil
	case ">=":
		return b2i(l >= r), nil
	}
	return 0, fmt.Errorf("bad operator %q", n.op)
}
func (n *binNode) idents(f func(string)) { n.l.idents(f); n.r.idents(f) }

type ternNode struct {
	cond, then, els exprNode
}

func (n *ternNode) eval(env func(string) (int64, bool)) (int64, error) {
	c, err := n.cond.eval(env)
	if err != nil {
		return 0, err
	}
	if c != 0 {
		return n.then.eval(env)
	}
	return n.els.eval(env)
}
func (n *ternNode) idents(f func(string)) { n.cond.idents(f); n.then.idents(f); n.els.idents(f) }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// parseExpr compiles src into an expression tree.
func parseExpr(src string) (*expr, error) {
	if len(src) > maxExprLen {
		return nil, fmt.Errorf("expression longer than %d bytes", maxExprLen)
	}
	p := &exprParser{src: src}
	root, err := p.ternary()
	if err != nil {
		return nil, fmt.Errorf("bad expression %q: %v", src, err)
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("bad expression %q: trailing %q", src, p.src[p.pos:])
	}
	return &expr{src: src, root: root}, nil
}

// eval evaluates the expression under the variable lookup env.
func (e *expr) eval(env func(string) (int64, bool)) (int64, error) {
	v, err := e.root.eval(env)
	if err != nil {
		return 0, fmt.Errorf("evaluating %q: %v", e.src, err)
	}
	return v, nil
}

// idents calls f for every identifier the expression references.
func (e *expr) idents(f func(string)) { e.root.idents(f) }

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peekByte() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// accept consumes tok if it is next, honoring operator maximal munch so
// "<" is not taken from "<=".
func (p *exprParser) accept(tok string) bool {
	p.ws()
	if !strings.HasPrefix(p.src[p.pos:], tok) {
		return false
	}
	rest := p.src[p.pos+len(tok):]
	switch tok {
	case "<", ">":
		if strings.HasPrefix(rest, "=") {
			return false
		}
	case "!":
		if strings.HasPrefix(rest, "=") {
			return false
		}
	case "=":
		return false
	case "&":
		return false
	case "|":
		return false
	}
	p.pos += len(tok)
	return true
}

func (p *exprParser) ternary() (exprNode, error) {
	cond, err := p.or()
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	then, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if !p.accept(":") {
		return nil, fmt.Errorf("ternary missing ':'")
	}
	els, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return &ternNode{cond: cond, then: then, els: els}, nil
}

func (p *exprParser) or() (exprNode, error) {
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) and() (exprNode, error) {
	l, err := p.cmp()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.cmp()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *exprParser) cmp() (exprNode, error) {
	l, err := p.add()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			r, err := p.add()
			if err != nil {
				return nil, err
			}
			return &binNode{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *exprParser) add() (exprNode, error) {
	l, err := p.mul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.mul()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: "+", l: l, r: r}
		case p.accept("-"):
			r, err := p.mul()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) mul() (exprNode, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: "*", l: l, r: r}
		case p.accept("/"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: "/", l: l, r: r}
		case p.accept("%"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: "%", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) unary() (exprNode, error) {
	if p.accept("!") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryNode{op: '!', x: x}, nil
	}
	if p.accept("-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryNode{op: '-', x: x}, nil
	}
	p.ws()
	c := p.peekByte()
	switch {
	case c == '(':
		p.pos++
		x, err := p.ternary()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("missing ')'")
		}
		return x, nil
	case c >= '0' && c <= '9':
		return p.number()
	case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		return p.ident()
	}
	return nil, fmt.Errorf("unexpected %q", string(rune(c)))
}

// sizeSuffixes map the byte-size suffixes a literal may carry.
var sizeSuffixes = []struct {
	suffix string
	mult   int64
}{
	{"KiB", 1 << 10},
	{"MiB", 1 << 20},
	{"GiB", 1 << 30},
	{"TiB", 1 << 40},
}

func (p *exprParser) number() (exprNode, error) {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad number %q: %v", p.src[start:p.pos], err)
	}
	for _, s := range sizeSuffixes {
		if strings.HasPrefix(p.src[p.pos:], s.suffix) {
			p.pos += len(s.suffix)
			return litNode(v * s.mult), nil
		}
	}
	return litNode(v), nil
}

func (p *exprParser) ident() (exprNode, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	return identNode(p.src[start:p.pos]), nil
}
