package spec

import (
	"errors"
	"strings"
	"testing"
)

// FuzzSpecParse hardens the DSL's front door: arbitrary bytes through
// Parse and ParseSweep must surface as ErrBadSpec — never a panic, a
// hang, or an unbounded allocation — and whatever does parse must build
// its workload (Compile/DefaultSpec) without blowing up. The golden
// specs, a JSON variant, and a sweep document seed the corpus so the
// fuzzer starts from deep inside the grammar.
func FuzzSpecParse(f *testing.F) {
	for _, name := range GoldenNames() {
		data, err := GoldenBytes(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations and a bit flip: structurally close to valid.
		f.Add(data[:len(data)/2])
		mutated := append([]byte(nil), data...)
		if len(mutated) > 30 {
			mutated[len(mutated)/2] ^= 0xff
		}
		f.Add(mutated)
	}
	f.Add([]byte(`{"version": 1, "name": "j", "app": "j", "run": [{"compute": {"time": "1s"}}]}`))
	f.Add([]byte("version: 1\nname: s\ngrid:\n  - param: staging\n    values:\n      - pfs\nworkload: cm1\n"))
	f.Add([]byte("version: 1\nname: x\napp: x\nparams:\n  n:\n    expr: 1 ? 2 : 3\nrun:\n  - compute:\n      time: n\n"))
	f.Add([]byte(strings.Repeat("a", 100)))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if doc, err := Parse(data); err == nil {
			w := doc.Compile()
			_ = w.DefaultSpec()
			if w.Name() == "" {
				t.Error("parsed doc compiled to a workload with no name")
			}
		} else if !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse error %v does not wrap ErrBadSpec", err)
		}
		if sw, err := ParseSweep(data); err == nil {
			if sw.NumPoints() < 1 || sw.NumPoints() > maxPoints {
				t.Errorf("parsed sweep has %d points, outside [1, %d]", sw.NumPoints(), maxPoints)
			}
		} else if !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSweep error %v does not wrap ErrBadSpec", err)
		}
	})
}
