package advisor

import (
	"fmt"
	"time"

	"vani/internal/workloads"
)

// Impact quantifies one recommendation's effect: the workload re-run with
// only that recommendation applied, against the unmodified baseline. It
// is the experimental backing the paper's Section IV-D guidelines imply —
// each attribute-driven optimization can be validated in isolation.
type Impact struct {
	Recommendation  Recommendation
	Applied         bool // false when the parameter is advisory-only
	BaselineRuntime time.Duration
	TunedRuntime    time.Duration
}

// Speedup returns baseline/tuned runtime (0 when not applied).
func (im Impact) Speedup() float64 {
	if !im.Applied || im.TunedRuntime == 0 {
		return 0
	}
	return float64(im.BaselineRuntime) / float64(im.TunedRuntime)
}

// Evaluate measures each recommendation independently: the workload runs
// once as the baseline, then once per applicable recommendation with only
// that change applied. Recommendations the simulator cannot enact
// (placement hints for external schedulers, persistence flags) are
// reported with Applied = false.
func Evaluate(w workloads.Workload, spec workloads.Spec, recs []Recommendation) ([]Impact, error) {
	base, err := workloads.Run(w, spec)
	if err != nil {
		return nil, fmt.Errorf("advisor: baseline run: %w", err)
	}
	impacts := make([]Impact, 0, len(recs))
	for _, r := range recs {
		im := Impact{Recommendation: r, BaselineRuntime: base.Runtime}
		tuned := spec
		if applied := Apply([]Recommendation{r}, &tuned); len(applied) == 1 {
			res, err := workloads.Run(w, tuned)
			if err != nil {
				return nil, fmt.Errorf("advisor: run with %s: %w", r.ID, err)
			}
			im.Applied = true
			im.TunedRuntime = res.Runtime
		}
		impacts = append(impacts, im)
	}
	return impacts, nil
}
