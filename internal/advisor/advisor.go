// Package advisor maps workload characterizations to storage-system
// configurations, implementing Section IV-D of the paper ("Optimizing
// workloads based on characterization").
//
// Each rule consumes specific entity attributes and emits a
// Recommendation naming the storage parameter to set, the value, the
// rationale, and the attributes that drove it — the traceability the
// paper's methodology calls for. Apply translates recommendations back
// onto a workload specification so the simulation can re-run optimized,
// which is how the Figure 7 and Figure 8 case studies are reproduced.
package advisor

import (
	"fmt"
	"sort"

	"vani/internal/core"
	"vani/internal/stats"
	"vani/internal/storage"
	"vani/internal/workloads"
)

// Area groups recommendations by the optimization class of Section IV-D.
type Area string

// Optimization areas (Section IV-D's five headings).
const (
	AreaSoftwareAccel Area = "io-acceleration"   // IV-D1
	AreaAsyncIO       Area = "async-io"          // IV-D2
	AreaSystemTuning  Area = "system-tuning"     // IV-D3
	AreaPlacement     Area = "process-placement" // IV-D4
	AreaDataset       Area = "dataset-layout"    // IV-D5
)

// Recommendation is one storage-configuration change derived from the
// characterization.
type Recommendation struct {
	ID         string // stable identifier, e.g. "preload-node-local"
	Area       Area
	Parameter  string // storage parameter to set
	Value      string // value to set it to
	Rationale  string
	Attributes []string // characterization attributes that drove the rule
}

// Advise runs every rule against the characterization and returns the
// applicable recommendations, most impactful areas first.
func Advise(c *core.Characterization) []Recommendation {
	var recs []Recommendation
	for _, rule := range rules {
		if r, ok := rule(c); ok {
			recs = append(recs, r)
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

type rule func(*core.Characterization) (Recommendation, bool)

var rules = []rule{
	ruleCompression,
	rulePreloadNodeLocal,
	ruleIntermediatesToBB,
	ruleCheckpointToSharedBB,
	ruleStripeSize,
	ruleDisableLocking,
	ruleHDF5Chunking,
	ruleAsyncOverlap,
	rulePlacement,
	ruleBufferSize,
	ruleDisableBBPersistence,
}

// ruleCheckpointToSharedBB stages checkpoint traffic onto the shared burst
// buffer on systems that have one (the DataWarp example of Section
// IV-D3): write-heavy file-per-process workloads with large sequential
// transfers drain to the PFS later instead of stalling the job.
func ruleCheckpointToSharedBB(c *core.Characterization) (Recommendation, bool) {
	if c.JobConfig.SharedBBDir == "" {
		return Recommendation{}, false
	}
	// Checkpoint signature: substantial writes, dominated by FPP files.
	if c.Workflow.WriteBytes < c.Workflow.ReadBytes/2 || c.Workflow.WriteBytes == 0 {
		return Recommendation{}, false
	}
	if c.Workflow.FPPFiles <= c.Workflow.SharedFiles {
		return Recommendation{}, false
	}
	return Recommendation{
		ID:        "checkpoint-shared-bb",
		Area:      AreaSoftwareAccel,
		Parameter: "checkpoint.dir",
		Value:     c.JobConfig.SharedBBDir,
		Rationale: fmt.Sprintf(
			"%s of checkpoint writes over %d file-per-process files can land on the shared burst buffer and drain to the PFS asynchronously",
			core.SizeString(c.Workflow.WriteBytes), c.Workflow.FPPFiles),
		Attributes: []string{"job.shared_bb_dir", "workflow.io_amount",
			"workflow.fpp_shared_files", "highlevel.granularity"},
	}, true
}

// rulePreloadNodeLocal is the Section V-A (CosmoFlow / Figure 7)
// optimization: a metadata-dominated shared-dataset workload whose
// per-node shard fits in unused node memory should be preloaded into
// node-local shared memory.
func rulePreloadNodeLocal(c *core.Characterization) (Recommendation, bool) {
	if c.Workflow.MetaOpsPct < 0.5 || c.JobConfig.NodeLocalBBDir == "" {
		return Recommendation{}, false
	}
	// Preloading helps input-dominated workloads; write-heavy checkpoint
	// traffic cannot be served from a read staging area.
	if c.Workflow.ReadBytes < 2*c.Workflow.WriteBytes {
		return Recommendation{}, false
	}
	nodes := c.JobConfig.Nodes
	if nodes == 0 {
		return Recommendation{}, false
	}
	perNode := c.Dataset.SizeBytes / int64(nodes)
	memBudget := int64(c.Middleware.MemPerNodeGB) * (1 << 30) * 3 / 4
	if perNode == 0 || perNode > memBudget {
		return Recommendation{}, false
	}
	return Recommendation{
		ID:        "preload-node-local",
		Area:      AreaSoftwareAccel,
		Parameter: "dataset.staging",
		Value:     "preload:" + c.JobConfig.NodeLocalBBDir,
		Rationale: fmt.Sprintf(
			"%d%% of I/O operations are metadata on a %s dataset of %d files; each node's shard (%s) fits in unused memory, so preloading to %s removes shared-FS metadata cost",
			int(c.Workflow.MetaOpsPct*100), core.SizeString(c.Dataset.SizeBytes),
			c.Dataset.NumFiles, core.SizeString(perNode), c.JobConfig.NodeLocalBBDir),
		Attributes: []string{
			"workflow.io_ops_dist", "dataset.size", "dataset.num_files",
			"middleware.memory_per_node", "job.node_local_bb_dir", "job.nodes",
		},
	}, true
}

// ruleIntermediatesToBB is the Section V-B (Montage / Figure 8)
// optimization: producer-consumer intermediate files accessed with small
// transfers should live on the node-local burst buffer.
func ruleIntermediatesToBB(c *core.Characterization) (Recommendation, bool) {
	if c.JobConfig.NodeLocalBBDir == "" || len(c.Workflow.AppDeps) == 0 {
		return Recommendation{}, false
	}
	granule := c.HighLevel.Granularity.Write
	if granule == 0 || granule > 64<<10 {
		return Recommendation{}, false
	}
	var depBytes int64
	for _, d := range c.Workflow.AppDeps {
		depBytes += d.Bytes
	}
	if depBytes == 0 {
		return Recommendation{}, false
	}
	return Recommendation{
		ID:        "intermediates-node-local",
		Area:      AreaSoftwareAccel,
		Parameter: "workflow.intermediate_dir",
		Value:     c.JobConfig.NodeLocalBBDir,
		Rationale: fmt.Sprintf(
			"%s of data flows between applications through intermediate files written with %s transfers; placing them on %s avoids small-transfer PFS cost",
			core.SizeString(depBytes), core.SizeString(granule), c.JobConfig.NodeLocalBBDir),
		Attributes: []string{
			"workflow.app_data_dependency", "highlevel.granularity",
			"job.node_local_bb_dir",
		},
	}, true
}

// ruleStripeSize sets the PFS stripe size to the dominant transfer size of
// the most important files (Section IV-D3's Lustre example).
func ruleStripeSize(c *core.Characterization) (Recommendation, bool) {
	g := c.HighLevel.Granularity.Read
	if c.HighLevel.Granularity.Write > g {
		g = c.HighLevel.Granularity.Write
	}
	if g < 1<<20 { // small-transfer workloads are handled by other rules
		return Recommendation{}, false
	}
	return Recommendation{
		ID:        "pfs-stripe-size",
		Area:      AreaSystemTuning,
		Parameter: "pfs.stripe_size",
		Value:     core.SizeString(g),
		Rationale: fmt.Sprintf(
			"dominant transfer size is %s; matching the stripe size optimizes the most frequent accesses",
			core.SizeString(g)),
		Attributes: []string{"highlevel.granularity", "file.io_ops"},
	}, true
}

// ruleDisableLocking turns off ROMIO/GPFS range locking when no file is
// shared between processes (Section IV-D3's GPFS example).
func ruleDisableLocking(c *core.Characterization) (Recommendation, bool) {
	if c.Workflow.SharedFiles != 0 || c.Workflow.FPPFiles == 0 {
		return Recommendation{}, false
	}
	return Recommendation{
		ID:        "romio-disable-locking",
		Area:      AreaSystemTuning,
		Parameter: "romio.locking",
		Value:     "false",
		Rationale: fmt.Sprintf(
			"all %d files are file-per-process with no cross-process data dependency; range locking is pure overhead",
			c.Workflow.FPPFiles),
		Attributes: []string{"workflow.fpp_shared_files", "app.process_data_dependency"},
	}, true
}

// ruleHDF5Chunking enables dataset chunking for metadata-bound HDF5
// workloads (Section IV-D5's format-specific optimization).
func ruleHDF5Chunking(c *core.Characterization) (Recommendation, bool) {
	if c.Dataset.Format != "hdf5" || c.Workflow.MetaOpsPct < 0.5 {
		return Recommendation{}, false
	}
	return Recommendation{
		ID:        "hdf5-chunking",
		Area:      AreaDataset,
		Parameter: "hdf5.chunking",
		Value:     core.SizeString(c.HighLevel.Granularity.Read),
		Rationale: fmt.Sprintf(
			"HDF5 dataset accessed without chunking pays %d%% metadata operations; chunking at the %s access size amortizes B-tree lookups",
			int(c.Workflow.MetaOpsPct*100), core.SizeString(c.HighLevel.Granularity.Read)),
		Attributes: []string{"dataset.format", "workflow.io_ops_dist", "highlevel.granularity"},
	}, true
}

// ruleAsyncOverlap recommends asynchronous I/O when the workload has
// distinct compute and I/O phases (Section IV-D2).
func ruleAsyncOverlap(c *core.Characterization) (Recommendation, bool) {
	if len(c.Phases) < 2 || c.Workflow.Runtime == 0 {
		return Recommendation{}, false
	}
	ioFrac := float64(c.Workflow.IOTime) / float64(c.Workflow.Runtime)
	if ioFrac > 0.5 { // already I/O-bound: nothing to hide behind
		return Recommendation{}, false
	}
	// Correctness gate (Section IV-D2): relaxed asynchronous flushing is
	// only safe when no file written on one node is read from another.
	if c.Workflow.CrossNodeRAW {
		return Recommendation{}, false
	}
	return Recommendation{
		ID:        "async-io",
		Area:      AreaAsyncIO,
		Parameter: "middleware.async_io",
		Value:     "true",
		Rationale: fmt.Sprintf(
			"%d I/O phases occupy %d%% of the runtime; their cost can hide behind compute with asynchronous flushing",
			len(c.Phases), int(ioFrac*100)),
		Attributes: []string{"phase.frequency", "phase.runtime",
			"workflow.runtime", "workflow.cross_node_raw"},
	}, true
}

// rulePlacement co-locates consumer applications with their producers'
// data (Section IV-D4, workflow emulators).
func rulePlacement(c *core.Characterization) (Recommendation, bool) {
	if len(c.Workflow.AppDeps) == 0 || c.Workflow.NumApps < 2 {
		return Recommendation{}, false
	}
	top := c.Workflow.AppDeps[0]
	for _, d := range c.Workflow.AppDeps[1:] {
		if d.Bytes > top.Bytes {
			top = d
		}
	}
	return Recommendation{
		ID:        "placement-colocate",
		Area:      AreaPlacement,
		Parameter: "workflow.placement",
		Value:     fmt.Sprintf("colocate:%s->%s", top.Producer, top.Consumer),
		Rationale: fmt.Sprintf(
			"%s consumes %s produced by %s; scheduling them on the same nodes keeps the exchange local",
			top.Consumer, core.SizeString(top.Bytes), top.Producer),
		Attributes: []string{"workflow.app_data_dependency", "job.nodes",
			"job.cpu_cores_per_node"},
	}, true
}

// ruleBufferSize derives a middleware buffer size from the transfer
// granularity and available memory (the Section I example of a setting
// that needs multiple attributes at once).
func ruleBufferSize(c *core.Characterization) (Recommendation, bool) {
	g := c.HighLevel.Granularity.Write
	if g == 0 || g >= 1<<20 {
		return Recommendation{}, false
	}
	buf := g * 16
	if buf > 4<<20 {
		buf = 4 << 20
	}
	if buf < 64<<10 {
		buf = 64 << 10
	}
	return Recommendation{
		ID:        "middleware-buffer-size",
		Area:      AreaSoftwareAccel,
		Parameter: "middleware.buffer_size",
		Value:     core.SizeString(buf),
		Rationale: fmt.Sprintf(
			"application writes in %s accesses; a %s client buffer aggregates them without pressuring the %dGB node memory",
			core.SizeString(g), core.SizeString(buf), c.Middleware.MemPerNodeGB),
		Attributes: []string{"highlevel.granularity", "middleware.memory_per_node",
			"job.cpu_cores_per_node"},
	}, true
}

// ruleDisableBBPersistence disables burst-buffer persistence when all
// heavy files are produced and consumed inside the job (Datawarp's
// DisablePersistent flag, Section IV-D3).
func ruleDisableBBPersistence(c *core.Characterization) (Recommendation, bool) {
	if len(c.Workflow.AppDeps) == 0 {
		return Recommendation{}, false
	}
	// Producer-consumer traffic within the job means intermediates are
	// temporary; nothing in a BB needs to outlive the job.
	return Recommendation{
		ID:         "bb-disable-persistence",
		Area:       AreaSystemTuning,
		Parameter:  "burst_buffer.persistence",
		Value:      "false",
		Rationale:  "intermediate files are produced and consumed within the job; persisting them past job end wastes burst-buffer drain bandwidth",
		Attributes: []string{"workflow.app_data_dependency", "highlevel.granularity"},
	}, true
}

// ruleCompression enables transparent write-path compression only when
// the dataset's value distribution is compressible and transfers are
// large enough to amortize the CPU stage. The paper warns that blind
// compression can *grow* data by 12% and cost 1.5x in total time on the
// wrong distribution; uniform (high-entropy) datasets are excluded.
func ruleCompression(c *core.Characterization) (Recommendation, bool) {
	switch c.HighLevel.DataDist {
	case stats.DistNormal, stats.DistGamma:
		// Concentrated distributions compress well.
	default:
		return Recommendation{}, false
	}
	g := c.HighLevel.Granularity.Write
	if g < 64<<10 { // small transfers: CPU stage dominates any savings
		return Recommendation{}, false
	}
	if c.Workflow.WriteBytes < c.Workflow.ReadBytes {
		return Recommendation{}, false // write-path optimization
	}
	return Recommendation{
		ID:        "write-compression",
		Area:      AreaDataset,
		Parameter: "middleware.compression",
		Value:     "on",
		Rationale: fmt.Sprintf(
			"dataset values are %s-distributed (compressible) and written in %s transfers; transparent compression halves the bytes the PFS must absorb",
			c.HighLevel.DataDist, core.SizeString(g)),
		Attributes: []string{"highlevel.data_dist", "highlevel.granularity",
			"workflow.io_amount", "dataset.format"},
	}, true
}

// Apply translates recommendations onto a workload specification, so the
// next simulated run executes with the advised configuration. It returns
// the identifiers it acted on; advisory-only recommendations (for systems
// outside the simulation, like placement hints) are left to the caller.
func Apply(recs []Recommendation, spec *workloads.Spec) []string {
	var applied []string
	for _, r := range recs {
		switch r.ID {
		case "preload-node-local", "intermediates-node-local", "checkpoint-shared-bb":
			spec.Optimized = true
			applied = append(applied, r.ID)
		case "hdf5-chunking":
			spec.Iface.HDF5Chunked = true
			applied = append(applied, r.ID)
		case "async-io":
			spec.Storage.RelaxedConsistency = true
			applied = append(applied, r.ID)
		case "write-compression":
			spec.Iface.CompressionEnabled = true
			applied = append(applied, r.ID)
		case "pfs-stripe-size":
			if v, ok := parseSize(r.Value); ok && v > 0 {
				spec.Storage.PFSStripeSize = v
				applied = append(applied, r.ID)
			}
		case "middleware-buffer-size":
			if v, ok := parseSize(r.Value); ok && v > 0 {
				spec.Iface.StdioBufSize = v
				applied = append(applied, r.ID)
			}
		}
	}
	return applied
}

// parseSize inverts core.SizeString ("64KB", "1.5MB", "16MB", ...).
func parseSize(s string) (int64, bool) {
	var v float64
	var unit string
	if _, err := fmt.Sscanf(s, "%f%s", &v, &unit); err != nil {
		return 0, false
	}
	mult := int64(1)
	switch unit {
	case "B":
		mult = 1
	case "KB":
		mult = storage.KiB
	case "MB":
		mult = storage.MiB
	case "GB":
		mult = storage.GiB
	case "TB":
		mult = storage.TiB
	default:
		return 0, false
	}
	return int64(v * float64(mult)), true
}
