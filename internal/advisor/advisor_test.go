package advisor

import (
	"testing"
	"time"

	"vani/internal/cluster"
	"vani/internal/core"
	"vani/internal/stats"
	"vani/internal/storage"
	"vani/internal/workloads"
)

func characterize(t *testing.T, w workloads.Workload, mod func(*workloads.Spec)) (*core.Characterization, workloads.Spec) {
	t.Helper()
	spec := w.DefaultSpec()
	spec.Nodes = 4
	if spec.RanksPerNode > 8 {
		spec.RanksPerNode = 8
	}
	spec.Scale = 0.02
	if mod != nil {
		mod(&spec)
	}
	res, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	opt := core.DefaultOptions()
	opt.Storage = &spec.Storage
	return core.Analyze(res.Trace, opt), spec
}

func byID(recs []Recommendation) map[string]Recommendation {
	m := make(map[string]Recommendation, len(recs))
	for _, r := range recs {
		m[r.ID] = r
	}
	return m
}

func TestCosmoFlowGetsPreloadAndChunking(t *testing.T) {
	w := workloads.NewCosmoFlow()
	w.GPUPerFile = 50 * time.Millisecond
	c, _ := characterize(t, w, func(s *workloads.Spec) { s.Scale = 0.002 })
	recs := byID(Advise(c))
	if _, ok := recs["preload-node-local"]; !ok {
		t.Errorf("preload-node-local missing; got %v", keys(recs))
	}
	if _, ok := recs["hdf5-chunking"]; !ok {
		t.Errorf("hdf5-chunking missing; got %v", keys(recs))
	}
	pre := recs["preload-node-local"]
	if pre.Value != "preload:/dev/shm" {
		t.Errorf("preload value = %q", pre.Value)
	}
	if len(pre.Attributes) == 0 || pre.Rationale == "" {
		t.Error("recommendation lacks traceability")
	}
}

func TestMontageGetsIntermediatesAndPlacement(t *testing.T) {
	w := workloads.NewMontageMPI()
	c, _ := characterize(t, w, func(s *workloads.Spec) { s.Scale = 0.1 })
	recs := byID(Advise(c))
	if _, ok := recs["intermediates-node-local"]; !ok {
		t.Errorf("intermediates-node-local missing; got %v", keys(recs))
	}
	if _, ok := recs["placement-colocate"]; !ok {
		t.Errorf("placement-colocate missing; got %v", keys(recs))
	}
	if _, ok := recs["bb-disable-persistence"]; !ok {
		t.Errorf("bb-disable-persistence missing; got %v", keys(recs))
	}
}

func TestHACCGetsStripeAndLocking(t *testing.T) {
	w := workloads.NewHACC()
	c, _ := characterize(t, w, nil)
	recs := byID(Advise(c))
	if r, ok := recs["pfs-stripe-size"]; !ok || r.Value != "16MB" {
		t.Errorf("pfs-stripe-size = %+v, want 16MB", r)
	}
	if _, ok := recs["romio-disable-locking"]; !ok {
		t.Errorf("romio-disable-locking missing (pure FPP workload); got %v", keys(recs))
	}
	// No preload: HACC is not metadata-dominated shared-read.
	if _, ok := recs["preload-node-local"]; ok {
		t.Error("preload recommended for checkpoint workload")
	}
}

func TestCM1GetsAsyncIO(t *testing.T) {
	w := workloads.NewCM1()
	c, _ := characterize(t, w, func(s *workloads.Spec) { s.Scale = 0.05 })
	recs := byID(Advise(c))
	if _, ok := recs["async-io"]; !ok {
		t.Errorf("async-io missing for phase-alternating workload; got %v", keys(recs))
	}
	// Shared step files exist, so locking must stay on.
	if _, ok := recs["romio-disable-locking"]; ok {
		t.Error("locking disabled despite shared files")
	}
}

func TestJAGGetsBufferSizing(t *testing.T) {
	w := workloads.NewJAG()
	w.Epochs = 3
	w.ComputePerEpoch = 3 * time.Second
	c, _ := characterize(t, w, nil)
	recs := byID(Advise(c))
	if r, ok := recs["middleware-buffer-size"]; !ok {
		t.Errorf("middleware-buffer-size missing; got %v", keys(recs))
	} else if r.Value != "64KB" {
		t.Errorf("buffer size = %q, want 64KB (16x4KB clamped)", r.Value)
	}
}

func TestApplyTranslatesRecommendations(t *testing.T) {
	w := workloads.NewCosmoFlow()
	w.GPUPerFile = 50 * time.Millisecond
	c, spec := characterize(t, w, func(s *workloads.Spec) { s.Scale = 0.002 })
	recs := Advise(c)
	applied := Apply(recs, &spec)
	if !spec.Optimized {
		t.Error("Apply did not set Optimized for preload recommendation")
	}
	if !spec.Iface.HDF5Chunked {
		t.Error("Apply did not enable HDF5 chunking")
	}
	if len(applied) < 2 {
		t.Errorf("applied = %v", applied)
	}
}

func TestApplyStripeSize(t *testing.T) {
	w := workloads.NewHACC()
	c, spec := characterize(t, w, nil)
	Apply(Advise(c), &spec)
	if spec.Storage.PFSStripeSize != 16<<20 {
		t.Errorf("stripe size = %d, want 16MB", spec.Storage.PFSStripeSize)
	}
}

func TestAppliedSpecRunsFaster(t *testing.T) {
	// End-to-end: characterize -> advise -> apply -> re-run. The advised
	// CosmoFlow run (preload + chunking) must beat the baseline.
	w := workloads.NewCosmoFlow()
	w.GPUPerFile = 0
	base := w.DefaultSpec()
	base.Nodes = 4
	base.Scale = 0.002
	rb, err := workloads.Run(w, base)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Storage = &base.Storage
	c := core.Analyze(rb.Trace, opt)
	tuned := base
	Apply(Advise(c), &tuned)
	ro, err := workloads.Run(w, tuned)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Runtime >= rb.Runtime {
		t.Errorf("advised run (%v) not faster than baseline (%v)", ro.Runtime, rb.Runtime)
	}
}

func TestParseSizeRoundTrip(t *testing.T) {
	for _, b := range []int64{1, 512, 4096, 64 << 10, 1 << 20, 3 << 19, 16 << 20, 1 << 30} {
		v, ok := parseSize(core.SizeString(b))
		if !ok || v != b {
			t.Errorf("parseSize(SizeString(%d)) = %d,%v", b, v, ok)
		}
	}
	if _, ok := parseSize("garbage"); ok {
		t.Error("garbage parsed")
	}
	if _, ok := parseSize("5XB"); ok {
		t.Error("bad unit parsed")
	}
}

func TestAdviseEmptyCharacterization(t *testing.T) {
	recs := Advise(&core.Characterization{})
	for _, r := range recs {
		t.Errorf("rule %s fired on empty characterization", r.ID)
	}
}

func keys(m map[string]Recommendation) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func TestHACCOnCoriGetsSharedBBStaging(t *testing.T) {
	w := workloads.NewHACC()
	c, spec := characterize(t, w, func(s *workloads.Spec) {
		s.Machine = cluster.Cori()
		s.Storage = storage.Cori()
		s.RanksPerNode = 8
	})
	recs := byID(Advise(c))
	r, ok := recs["checkpoint-shared-bb"]
	if !ok {
		t.Fatalf("checkpoint-shared-bb missing on Cori; got %v", keys(recs))
	}
	if r.Value != "/var/opt/cray/dws" {
		t.Errorf("BB dir = %q", r.Value)
	}
	// Applying it flips the workload to the optimized path, and the
	// re-run is faster (SSD tier beats Lustre for the checkpoint).
	tuned := spec
	if applied := Apply(Advise(c), &tuned); !tuned.Optimized {
		t.Fatalf("Apply did not enable BB staging (applied %v)", applied)
	}
	base, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := workloads.Run(w, tuned)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Runtime >= base.Runtime {
		t.Errorf("BB-staged run (%v) not faster than Lustre baseline (%v)", opt.Runtime, base.Runtime)
	}
	if opt.Sys.Stats[storage.TargetSharedBB].BytesWritten == 0 {
		t.Error("optimized run wrote nothing to the shared BB")
	}
}

func TestNoSharedBBRuleOnLassen(t *testing.T) {
	w := workloads.NewHACC()
	c, _ := characterize(t, w, nil)
	if _, ok := byID(Advise(c))["checkpoint-shared-bb"]; ok {
		t.Error("shared-BB staging recommended on a machine without one")
	}
}

func TestEvaluatePerRecommendationImpact(t *testing.T) {
	w := workloads.NewCosmoFlow()
	w.GPUPerFile = 0
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.Scale = 0.002
	// At this tiny test scale the client-NIC data floor dominates both
	// runs equally; uncap it so the metadata difference each
	// recommendation targets is measurable.
	spec.Storage.NodeNICBW = 0
	res, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Storage = &spec.Storage
	recs := Advise(core.Analyze(res.Trace, opt))
	impacts, err := Evaluate(w, spec, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) != len(recs) {
		t.Fatalf("impacts = %d, want %d", len(impacts), len(recs))
	}
	var preload *Impact
	for i := range impacts {
		im := &impacts[i]
		if im.BaselineRuntime == 0 {
			t.Errorf("%s: no baseline", im.Recommendation.ID)
		}
		if im.Recommendation.ID == "preload-node-local" {
			preload = im
		}
		// Advisory-only recommendations must be flagged, not faked.
		if im.Recommendation.ID == "placement-colocate" && im.Applied {
			t.Error("placement hint claimed to be applied")
		}
	}
	if preload == nil {
		t.Fatal("preload recommendation missing")
	}
	if !preload.Applied || preload.Speedup() <= 1 {
		t.Errorf("preload impact = %+v, want applied speedup > 1", preload)
	}
}

func TestImpactSpeedupZeroWhenNotApplied(t *testing.T) {
	im := Impact{Applied: false, BaselineRuntime: time.Second, TunedRuntime: time.Second}
	if im.Speedup() != 0 {
		t.Error("unapplied impact should report 0 speedup")
	}
}

func TestAsyncIOAppliesRelaxedConsistency(t *testing.T) {
	// CM1 writes through rank 0 only; no node ever reads another node's
	// writes, so the async-io recommendation is safe — and applying it
	// (UnifyFS-style buffering) must shrink the job's I/O cost.
	w := workloads.NewCM1()
	c, spec := characterize(t, w, func(s *workloads.Spec) { s.Scale = 0.05 })
	if c.Workflow.CrossNodeRAW {
		t.Fatal("CM1 flagged with cross-node RAW dependency")
	}
	recs := Advise(c)
	tuned := spec
	applied := Apply(recs, &tuned)
	found := false
	for _, id := range applied {
		if id == "async-io" {
			found = true
		}
	}
	if !found {
		t.Fatalf("async-io not applied (applied %v)", applied)
	}
	if !tuned.Storage.RelaxedConsistency {
		t.Fatal("relaxed consistency not enabled")
	}
	base, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	async, err := workloads.Run(w, tuned)
	if err != nil {
		t.Fatal(err)
	}
	if async.Runtime >= base.Runtime {
		t.Errorf("async run (%v) not faster than baseline (%v)", async.Runtime, base.Runtime)
	}
}

func TestCrossNodeRAWBlocksAsyncIO(t *testing.T) {
	// Montage-Pegasus pipes data between tasks on different nodes through
	// PFS files: asynchronous lamination would break its dataflow, so the
	// attribute must be set and the rule must not fire.
	w := workloads.NewMontagePegasus()
	c, _ := characterize(t, w, nil)
	if !c.Workflow.CrossNodeRAW {
		t.Fatal("Pegasus workflow not flagged with cross-node RAW dependency")
	}
	if _, ok := byID(Advise(c))["async-io"]; ok {
		t.Error("async-io recommended despite cross-node dataflow")
	}
}

func TestCompressionRuleRespectsDistribution(t *testing.T) {
	// Compressible (normal) large-write workload: rule fires.
	fire := &core.Characterization{}
	fire.HighLevel.DataDist = stats.DistNormal
	fire.HighLevel.Granularity.Write = 1 << 20
	fire.Workflow.WriteBytes = 10 << 30
	fire.Workflow.ReadBytes = 1 << 30
	if _, ok := byID(Advise(fire))["write-compression"]; !ok {
		t.Error("compression not recommended for compressible large writes")
	}
	// Uniform (high-entropy) data: the paper's 12%-growth caution.
	uniform := *fire
	uniform.HighLevel.DataDist = stats.DistUniform
	if _, ok := byID(Advise(&uniform))["write-compression"]; ok {
		t.Error("compression recommended for uniform data")
	}
	// Small transfers: CPU stage dominates.
	small := *fire
	small.HighLevel.Granularity.Write = 4 << 10
	if _, ok := byID(Advise(&small))["write-compression"]; ok {
		t.Error("compression recommended for 4KB transfers")
	}
	// Read-dominated workload: write-path compression pointless.
	reads := *fire
	reads.Workflow.ReadBytes = 100 << 30
	if _, ok := byID(Advise(&reads))["write-compression"]; ok {
		t.Error("compression recommended for read-dominated workload")
	}
}
