// Package workflow implements a DAG workflow engine with a bounded worker
// pool, standing in for the Pegasus workflow manager and
// pegasus-mpi-cluster that drive the paper's Montage workflows.
//
// Tasks declare dependencies by name; a task becomes ready when all its
// dependencies complete, then waits for a worker slot (pegasus-mpi-cluster
// schedules kernels over a fixed pool of MPI processes). Ready tasks are
// dispatched FIFO, so execution is deterministic under the simulation
// kernel.
package workflow

import (
	"fmt"
	"time"

	"vani/internal/sim"
)

// Task is one node of the DAG.
type Task struct {
	Name string
	App  string   // executable name (mProject, mDiff, ...)
	Deps []string // names of tasks that must complete first

	// Run is the task body. It receives the slot index the scheduler
	// assigned, which callers map to a node.
	Run func(p *sim.Proc, slot int)

	// Filled in by the scheduler.
	Started  time.Duration
	Finished time.Duration
	Slot     int
}

// DAG is a set of named tasks with dependencies.
type DAG struct {
	tasks  []*Task
	byName map[string]*Task
}

// NewDAG returns an empty DAG.
func NewDAG() *DAG { return &DAG{byName: make(map[string]*Task)} }

// Add appends a task. Names must be unique.
func (d *DAG) Add(t *Task) error {
	if t.Name == "" {
		return fmt.Errorf("workflow: task with empty name")
	}
	if _, dup := d.byName[t.Name]; dup {
		return fmt.Errorf("workflow: duplicate task %q", t.Name)
	}
	if t.Run == nil {
		return fmt.Errorf("workflow: task %q has no body", t.Name)
	}
	d.tasks = append(d.tasks, t)
	d.byName[t.Name] = t
	return nil
}

// MustAdd is Add that panics on error, for statically built workflows.
func (d *DAG) MustAdd(t *Task) {
	if err := d.Add(t); err != nil {
		panic(err)
	}
}

// Tasks returns the tasks in insertion order.
func (d *DAG) Tasks() []*Task { return d.tasks }

// Task looks up a task by name.
func (d *DAG) Task(name string) *Task { return d.byName[name] }

// Validate checks that all dependencies exist and the graph is acyclic.
func (d *DAG) Validate() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(d.tasks))
	var visit func(t *Task) error
	visit = func(t *Task) error {
		switch color[t.Name] {
		case gray:
			return fmt.Errorf("workflow: cycle through %q", t.Name)
		case black:
			return nil
		}
		color[t.Name] = gray
		for _, dep := range t.Deps {
			dt, ok := d.byName[dep]
			if !ok {
				return fmt.Errorf("workflow: task %q depends on unknown %q", t.Name, dep)
			}
			if err := visit(dt); err != nil {
				return err
			}
		}
		color[t.Name] = black
		return nil
	}
	for _, t := range d.tasks {
		if err := visit(t); err != nil {
			return err
		}
	}
	return nil
}

// SlotPool is a FIFO pool of numbered worker slots.
type SlotPool struct {
	e    *sim.Engine
	free []int
	q    []slotWaiter
}

type slotWaiter struct {
	p    *sim.Proc
	slot *int
}

// NewSlotPool creates a pool with slots 0..n-1, handed out lowest-free
// first.
func NewSlotPool(e *sim.Engine, n int) *SlotPool {
	if n <= 0 {
		panic("workflow: slot pool must have at least one slot")
	}
	sp := &SlotPool{e: e, free: make([]int, n)}
	for i := range sp.free {
		sp.free[i] = i
	}
	return sp
}

// Acquire blocks until a slot is free and returns its index.
func (sp *SlotPool) Acquire(p *sim.Proc) int {
	if len(sp.free) > 0 {
		s := sp.free[0]
		sp.free = sp.free[1:]
		return s
	}
	var slot int
	sp.q = append(sp.q, slotWaiter{p: p, slot: &slot})
	p.Park()
	return slot
}

// Release returns a slot to the pool, handing it to the longest waiter if
// any.
func (sp *SlotPool) Release(slot int) {
	if len(sp.q) > 0 {
		w := sp.q[0]
		sp.q = sp.q[1:]
		*w.slot = slot
		sp.e.WakeNow(w.p)
		return
	}
	sp.free = append(sp.free, slot)
}

// Result reports one executed task.
type Result struct {
	Name     string
	App      string
	Slot     int
	Started  time.Duration
	Finished time.Duration
}

// Execute runs the DAG on the engine with a pool of the given number of
// worker slots, spawning the coordination processes. It returns immediately;
// results are valid after the engine runs. The returned WaitGroup completes
// when every task has finished, letting callers sequence follow-on work.
func Execute(e *sim.Engine, d *DAG, slots int) (*sim.WaitGroup, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	pool := NewSlotPool(e, slots)
	gates := make(map[string]*sim.Gate, len(d.tasks))
	for _, t := range d.tasks {
		gates[t.Name] = sim.NewGate(e)
	}
	wg := sim.NewWaitGroup(e)
	wg.Add(len(d.tasks))
	for _, t := range d.tasks {
		t := t
		e.Spawn("task:"+t.Name, func(p *sim.Proc) {
			for _, dep := range t.Deps {
				gates[dep].Wait(p)
			}
			slot := pool.Acquire(p)
			t.Slot = slot
			t.Started = p.Now()
			t.Run(p, slot)
			t.Finished = p.Now()
			pool.Release(slot)
			gates[t.Name].Open()
			wg.Done()
		})
	}
	return wg, nil
}

// CriticalPathLength returns the sum of task durations along the longest
// dependency chain of completed results, a sanity metric for schedules.
func (d *DAG) CriticalPathLength() time.Duration {
	memo := make(map[string]time.Duration, len(d.tasks))
	var longest func(t *Task) time.Duration
	longest = func(t *Task) time.Duration {
		if v, ok := memo[t.Name]; ok {
			return v
		}
		var best time.Duration
		for _, dep := range t.Deps {
			if dt := d.byName[dep]; dt != nil {
				if v := longest(dt); v > best {
					best = v
				}
			}
		}
		v := best + (t.Finished - t.Started)
		memo[t.Name] = v
		return v
	}
	var max time.Duration
	for _, t := range d.tasks {
		if v := longest(t); v > max {
			max = v
		}
	}
	return max
}
