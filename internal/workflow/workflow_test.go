package workflow

import (
	"testing"
	"time"

	"vani/internal/sim"
)

func task(name string, deps []string, dur time.Duration, log *[]string) *Task {
	return &Task{
		Name: name, App: name, Deps: deps,
		Run: func(p *sim.Proc, slot int) {
			p.Sleep(dur)
			*log = append(*log, name)
		},
	}
}

func TestLinearChainRunsInOrder(t *testing.T) {
	e := sim.NewEngine()
	d := NewDAG()
	var log []string
	d.MustAdd(task("a", nil, time.Second, &log))
	d.MustAdd(task("b", []string{"a"}, time.Second, &log))
	d.MustAdd(task("c", []string{"b"}, time.Second, &log))
	if _, err := Execute(e, d, 4); err != nil {
		t.Fatal(err)
	}
	end := e.Run()
	if end != 3*time.Second {
		t.Errorf("chain finished at %v, want 3s", end)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("order %v, want %v", log, want)
		}
	}
}

func TestFanOutRunsInParallel(t *testing.T) {
	e := sim.NewEngine()
	d := NewDAG()
	var log []string
	d.MustAdd(task("src", nil, time.Second, &log))
	for _, n := range []string{"w1", "w2", "w3", "w4"} {
		d.MustAdd(task(n, []string{"src"}, 2*time.Second, &log))
	}
	d.MustAdd(task("sink", []string{"w1", "w2", "w3", "w4"}, time.Second, &log))
	if _, err := Execute(e, d, 8); err != nil {
		t.Fatal(err)
	}
	end := e.Run()
	if end != 4*time.Second { // 1 + 2 (parallel) + 1
		t.Errorf("fan-out finished at %v, want 4s", end)
	}
	if log[len(log)-1] != "sink" {
		t.Error("sink did not run last")
	}
}

func TestSlotLimitThrottles(t *testing.T) {
	e := sim.NewEngine()
	d := NewDAG()
	var log []string
	for _, n := range []string{"t1", "t2", "t3", "t4"} {
		d.MustAdd(task(n, nil, time.Second, &log))
	}
	if _, err := Execute(e, d, 2); err != nil {
		t.Fatal(err)
	}
	end := e.Run()
	if end != 2*time.Second { // 4 tasks, 2 slots, 1s each
		t.Errorf("throttled run finished at %v, want 2s", end)
	}
}

func TestSlotAssignmentRecorded(t *testing.T) {
	e := sim.NewEngine()
	d := NewDAG()
	var log []string
	d.MustAdd(task("only", nil, time.Second, &log))
	if _, err := Execute(e, d, 3); err != nil {
		t.Fatal(err)
	}
	e.Run()
	tk := d.Task("only")
	if tk.Slot != 0 || tk.Started != 0 || tk.Finished != time.Second {
		t.Errorf("task record = %+v", tk)
	}
}

func TestWaitGroupSignalsCompletion(t *testing.T) {
	e := sim.NewEngine()
	d := NewDAG()
	var log []string
	d.MustAdd(task("a", nil, 2*time.Second, &log))
	wg, err := Execute(e, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt time.Duration
	e.Spawn("waiter", func(p *sim.Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 2*time.Second {
		t.Errorf("completion signaled at %v, want 2s", doneAt)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	d := NewDAG()
	var log []string
	d.MustAdd(task("a", []string{"b"}, time.Second, &log))
	d.MustAdd(task("b", []string{"a"}, time.Second, &log))
	if err := d.Validate(); err == nil {
		t.Error("cycle not detected")
	}
	if _, err := Execute(sim.NewEngine(), d, 1); err == nil {
		t.Error("Execute accepted cyclic DAG")
	}
}

func TestValidateRejectsUnknownDep(t *testing.T) {
	d := NewDAG()
	var log []string
	d.MustAdd(task("a", []string{"ghost"}, time.Second, &log))
	if err := d.Validate(); err == nil {
		t.Error("unknown dependency not detected")
	}
}

func TestAddRejectsBadTasks(t *testing.T) {
	d := NewDAG()
	if err := d.Add(&Task{Name: "", Run: func(*sim.Proc, int) {}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := d.Add(&Task{Name: "x"}); err == nil {
		t.Error("nil body accepted")
	}
	var log []string
	d.MustAdd(task("dup", nil, time.Second, &log))
	if err := d.Add(task("dup", nil, time.Second, &log)); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestSlotPoolFIFOAndReuse(t *testing.T) {
	e := sim.NewEngine()
	sp := NewSlotPool(e, 2)
	var got []int
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *sim.Proc) {
			s := sp.Acquire(p)
			got = append(got, s)
			p.Sleep(time.Second)
			sp.Release(s)
		})
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("acquired %d slots", len(got))
	}
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("initial slots %v, want 0,1", got[:2])
	}
	// Waiters inherit released slots (0 and 1, in release order).
	if got[2] != 0 || got[3] != 1 {
		t.Errorf("reused slots %v, want 0,1", got[2:])
	}
}

func TestCriticalPathLength(t *testing.T) {
	e := sim.NewEngine()
	d := NewDAG()
	var log []string
	d.MustAdd(task("a", nil, time.Second, &log))
	d.MustAdd(task("b", []string{"a"}, 3*time.Second, &log))
	d.MustAdd(task("c", nil, time.Second, &log)) // off the critical path
	if _, err := Execute(e, d, 4); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if cp := d.CriticalPathLength(); cp != 4*time.Second {
		t.Errorf("critical path = %v, want 4s", cp)
	}
}

func TestDiamondDependency(t *testing.T) {
	e := sim.NewEngine()
	d := NewDAG()
	var log []string
	d.MustAdd(task("top", nil, time.Second, &log))
	d.MustAdd(task("left", []string{"top"}, time.Second, &log))
	d.MustAdd(task("right", []string{"top"}, 2*time.Second, &log))
	d.MustAdd(task("bottom", []string{"left", "right"}, time.Second, &log))
	if _, err := Execute(e, d, 4); err != nil {
		t.Fatal(err)
	}
	if end := e.Run(); end != 4*time.Second {
		t.Errorf("diamond finished at %v, want 4s", end)
	}
	if d.Task("bottom").Started != 3*time.Second {
		t.Errorf("bottom started at %v, want 3s (after slowest parent)", d.Task("bottom").Started)
	}
}
