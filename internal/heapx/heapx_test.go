package heapx

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

func TestPushPopSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := New(func(a, b int) bool { return a < b })
	var want []int
	for i := 0; i < 1000; i++ {
		v := rng.Intn(100)
		h.Push(v)
		want = append(want, v)
	}
	sort.Ints(want)
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after draining", h.Len())
	}
}

func TestInitEstablishesInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := make([]int, 500)
	for i := range s {
		s[i] = rng.Intn(1000)
	}
	want := append([]int(nil), s...)
	sort.Ints(want)
	h := New(func(a, b int) bool { return a < b })
	h.Init(s)
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
}

func TestFixRootAfterKeyChange(t *testing.T) {
	h := New(func(a, b *int) bool { return *a < *b })
	vals := []int{5, 1, 9, 3}
	for i := range vals {
		h.Push(&vals[i])
	}
	// Advance the minimum in place, as the k-way merge does.
	*h.Peek() = 100
	h.FixRoot()
	got := []int{*h.Pop(), *h.Pop(), *h.Pop(), *h.Pop()}
	want := []int{3, 5, 9, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after FixRoot pops = %v, want %v", got, want)
		}
	}
}

// boxedInts adapts []int to container/heap for the movement-parity check.
type boxedInts []int

func (h boxedInts) Len() int            { return len(h) }
func (h boxedInts) Less(i, j int) bool  { return h[i] < h[j] }
func (h boxedInts) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedInts) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *boxedInts) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestMatchesContainerHeapLayout: the sift algorithms must move elements
// exactly as container/heap does, so replacing the boxed heaps cannot
// change the order ties are popped in anywhere in the repository.
func TestMatchesContainerHeapLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(func(a, b int) bool { return a < b })
	var b boxedInts
	for i := 0; i < 2000; i++ {
		switch {
		case b.Len() == 0 || rng.Intn(3) > 0:
			v := rng.Intn(50) // dense values force ties
			g.Push(v)
			heap.Push(&b, v)
		default:
			if gv, bv := g.Pop(), heap.Pop(&b).(int); gv != bv {
				t.Fatalf("step %d: pop %d != container/heap %d", i, gv, bv)
			}
		}
		if g.Len() != b.Len() {
			t.Fatalf("length diverged: %d != %d", g.Len(), b.Len())
		}
		for j := 0; j < g.Len(); j++ {
			if g.s[j] != b[j] {
				t.Fatalf("internal layout diverged at %d: %v vs %v", j, g.s, b)
			}
		}
	}
}
