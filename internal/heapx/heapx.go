// Package heapx provides a generic, non-boxing binary min-heap.
//
// It replaces the container/heap uses on the repository's hot paths (the
// simulation kernel's event queue and the tracer's shard merge), where the
// standard library's interface{}-based Push/Pop box every element and cost
// an allocation per scheduled event. The sift algorithms are the same as
// container/heap's, so element movement — and therefore the pop order of
// equal-priority elements — is identical to the boxed implementation.
package heapx

// Heap is a binary min-heap ordered by the less function given to New.
// The zero value is not usable.
type Heap[T any] struct {
	s    []T
	less func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) Heap[T] {
	return Heap[T]{less: less}
}

// Init replaces the heap's backing slice with s and establishes the heap
// invariant over it (container/heap.Init semantics). The slice is adopted,
// not copied.
func (h *Heap[T]) Init(s []T) {
	h.s = s
	for i := len(s)/2 - 1; i >= 0; i-- {
		h.down(i, len(s))
	}
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.s) }

// Grow reserves capacity for at least n additional elements.
func (h *Heap[T]) Grow(n int) {
	if cap(h.s)-len(h.s) < n {
		s := make([]T, len(h.s), len(h.s)+n)
		copy(s, h.s)
		h.s = s
	}
}

// Push adds x to the heap.
func (h *Heap[T]) Push(x T) {
	h.s = append(h.s, x)
	h.up(len(h.s) - 1)
}

// Pop removes and returns the minimum element. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	n := len(h.s) - 1
	h.s[0], h.s[n] = h.s[n], h.s[0]
	h.down(0, n)
	x := h.s[n]
	var zero T
	h.s[n] = zero // release references for GC
	h.s = h.s[:n]
	return x
}

// Peek returns the minimum element without removing it. It panics on an
// empty heap.
func (h *Heap[T]) Peek() T { return h.s[0] }

// FixRoot restores the heap invariant after the minimum element's ordering
// key changed in place (container/heap.Fix(h, 0) semantics) — the k-way
// merge's advance-and-sift step.
func (h *Heap[T]) FixRoot() { h.down(0, len(h.s)) }

func (h *Heap[T]) up(j int) {
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !h.less(h.s[j], h.s[i]) {
			break
		}
		h.s[i], h.s[j] = h.s[j], h.s[i]
		j = i
	}
}

func (h *Heap[T]) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(h.s[j2], h.s[j1]) {
			j = j2
		}
		if !h.less(h.s[j], h.s[i]) {
			break
		}
		h.s[i], h.s[j] = h.s[j], h.s[i]
		i = j
	}
}
