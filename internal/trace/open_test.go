package trace

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// countFDs counts this process's open file descriptors via /proc/self/fd.
// Skips the calling test on platforms without procfs.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	return len(ents)
}

// writeTraceFile encodes a random trace at path in the given format.
func writeTraceFile(t *testing.T, path string, format Format, n int) {
	t.Helper()
	tr := randomTrace(rand.New(rand.NewSource(7)), n)
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := WriteFormat(f, tr, format); err != nil {
		t.Fatalf("WriteFormat: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestOpenScannerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.v1")
	writeTraceFile(t, path, FormatV1, 1000)

	sc, err := OpenScanner(path)
	if err != nil {
		t.Fatalf("OpenScanner: %v", err)
	}
	buf := make([]Event, 256)
	var total int
	for {
		n, err := sc.Next(buf)
		total += n
		if err != nil {
			break
		}
	}
	if total != 1000 {
		t.Errorf("scanned %d events, want 1000", total)
	}
	if err := sc.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := sc.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestOpenBlockReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.v2")
	writeTraceFile(t, path, FormatV2, 1000)

	br, err := OpenBlockReader(path)
	if err != nil {
		t.Fatalf("OpenBlockReader: %v", err)
	}
	var total int
	var evs []Event
	for k := 0; k < br.NumBlocks(); k++ {
		evs, err = br.DecodeEvents(k, evs[:0])
		if err != nil {
			t.Fatalf("DecodeEvents(%d): %v", k, err)
		}
		total += len(evs)
	}
	if total != 1000 {
		t.Errorf("decoded %d events, want 1000", total)
	}
	if err := br.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := br.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestOpenNoFDLeakOnError audits every constructor error path: after a
// failed Open* no descriptor may remain open. The count is taken via
// /proc/self/fd so a leak shows up as a strictly growing fd table.
func TestOpenNoFDLeakOnError(t *testing.T) {
	dir := t.TempDir()

	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	badMagic := filepath.Join(dir, "bad-magic")
	if err := os.WriteFile(badMagic, []byte("NOTATRACEFILE###"), 0o644); err != nil {
		t.Fatal(err)
	}
	v1 := filepath.Join(dir, "log.v1")
	writeTraceFile(t, v1, FormatV1, 100)
	v2 := filepath.Join(dir, "log.v2")
	writeTraceFile(t, v2, FormatV2, 100)
	// A truncated v2 log: footer offset points past EOF.
	v2bytes, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "truncated.v2")
	if err := os.WriteFile(truncated, v2bytes[:len(v2bytes)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	before := countFDs(t)
	for i := 0; i < 16; i++ {
		if _, err := OpenScanner(filepath.Join(dir, "missing")); err == nil {
			t.Fatal("OpenScanner(missing): want error")
		}
		if _, err := OpenScanner(empty); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("OpenScanner(empty): want ErrBadFormat, got %v", err)
		}
		if _, err := OpenScanner(badMagic); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("OpenScanner(bad magic): want ErrBadFormat, got %v", err)
		}
		if _, err := OpenBlockReader(filepath.Join(dir, "missing")); err == nil {
			t.Fatal("OpenBlockReader(missing): want error")
		}
		if _, err := OpenBlockReader(empty); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("OpenBlockReader(empty): want ErrBadFormat, got %v", err)
		}
		// A v1 log is not a valid v2 log: the block reader must reject it
		// and close the file.
		if _, err := OpenBlockReader(v1); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("OpenBlockReader(v1 log): want ErrBadFormat, got %v", err)
		}
		if _, err := OpenBlockReader(truncated); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("OpenBlockReader(truncated): want ErrBadFormat, got %v", err)
		}
	}
	after := countFDs(t)
	if after > before {
		t.Errorf("fd leak: %d open before, %d after error-path churn", before, after)
	}
}

// TestOpenNoFDLeakOnSuccess verifies the success path releases the
// descriptor on Close.
func TestOpenNoFDLeakOnSuccess(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "log.v1")
	writeTraceFile(t, v1, FormatV1, 100)
	v2 := filepath.Join(dir, "log.v2")
	writeTraceFile(t, v2, FormatV2, 100)

	before := countFDs(t)
	for i := 0; i < 16; i++ {
		sc, err := OpenScanner(v1)
		if err != nil {
			t.Fatalf("OpenScanner: %v", err)
		}
		sc.Close()
		br, err := OpenBlockReader(v2)
		if err != nil {
			t.Fatalf("OpenBlockReader: %v", err)
		}
		br.Close()
	}
	after := countFDs(t)
	if after > before {
		t.Errorf("fd leak: %d open before, %d after open/close churn", before, after)
	}
}

func TestSniffFile(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "log.v1")
	writeTraceFile(t, v1, FormatV1, 10)
	v2 := filepath.Join(dir, "log.v2")
	writeTraceFile(t, v2, FormatV2, 10)

	if f, err := SniffFile(v1); err != nil || f != FormatV1 {
		t.Errorf("SniffFile(v1) = %v, %v; want FormatV1", f, err)
	}
	if f, err := SniffFile(v2); err != nil || f != FormatV2 {
		t.Errorf("SniffFile(v2) = %v, %v; want FormatV2", f, err)
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("????????"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SniffFile(bad); !errors.Is(err, ErrBadFormat) {
		t.Errorf("SniffFile(bad): want ErrBadFormat, got %v", err)
	}
}
