package trace

// Per-segment lightweight codecs for the v2.2 columnar block payload. The
// v2.1 layout encodes every column segment as generic varints; real trace
// columns are wildly skewed — Level/Op/Lib take a handful of values, Rank
// arrives in sorted-ish runs after the k-way merge, Start/End deltas are
// near-constant — so each segment independently picks the lightweight
// encoding a cheap cost model says is smallest:
//
//	segRaw  (0): count × varint/uvarint — exactly the v2.1 segment body.
//	segRLE  (1): runs of (value, uvarint runLen≥1); run lengths sum to count.
//	segDict (2): uvarint ndict; ndict × value in first-appearance order;
//	             byte width; ceil(count·width/8) bytes of bit-packed dict
//	             indices, LSB-first (width = bits(ndict-1)).
//	segFOR  (3): value base (the minimum); byte width (0..64);
//	             ceil(count·width/8) bytes of bit-packed (v − base) offsets,
//	             LSB-first. Subtraction is mod 2^64, so any int64 range packs.
//
// "value" is uvarint for the unsigned columns (Level/Op/Lib) and zigzag
// varint for the rest. Codecs operate on the same stored-value stream v2.1
// defines — Start/End encode their delta chains, every other column its raw
// values — so a v2.2 decode is value-identical to a v2.1 decode of the same
// events. Every segment begins with its codec id byte (the payload is
// self-describing for the streaming Scanner); the VANIIDX4 footer repeats
// the ids so codec-mix statistics never touch block bytes.
//
// Decode kernels unpack a whole segment into the target column slice in one
// pass with pooled []int64 scratch, so the hot FromBlocksSpec path is
// near-zero-alloc. All allocations are bounded by the validated block count
// and by real input bytes: run lengths must sum exactly to count, dict
// sizes may not exceed count, and bit-packed bodies must be fully backed by
// segment bytes — oversized claims are ErrBadFormat, never an OOM.

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
)

// Segment codec ids (the first byte of every v2.2 column segment).
const (
	segRaw       = 0
	segRLE       = 1
	segDict      = 2
	segFOR       = 3
	numSegCodecs = 4
)

// NumSegCodecs is the number of v2.2 segment codecs; codec-mix counters
// (colstore.ScanStats, /metrics) are indexed by codec id below it.
const NumSegCodecs = numSegCodecs

// Exported segment codec ids, for cross-package kernel registries keyed by
// (operation, codec) — colstore registers which compressed-domain kernels
// each codec can serve.
const (
	SegCodecRaw  uint8 = segRaw
	SegCodecRLE  uint8 = segRLE
	SegCodecDict uint8 = segDict
	SegCodecFOR  uint8 = segFOR
)

// segCodecNames maps codec ids to the names used by flags and reports.
var segCodecNames = [numSegCodecs]string{"raw", "rle", "dict", "for"}

// SegCodecName returns the flag-style name of a segment codec id.
func SegCodecName(id uint8) string {
	if int(id) < len(segCodecNames) {
		return segCodecNames[id]
	}
	return fmt.Sprintf("codec%d", id)
}

// maxDictValues bounds the distinct-value set the dictionary codec will
// consider; columns with more values than this never win on size anyway.
const maxDictValues = 1 << 12

// unsignedCols marks the columns whose stored values are unsigned
// (uvarint-encoded): Level, Op, Lib.
const unsignedCols ColSet = ColLevel | ColOp | ColLib

// i64Pool recycles the []int64 scratch the codec kernels stage stored
// values in; capacity matches the default block size so steady-state decode
// never reallocates.
var i64Pool = sync.Pool{
	New: func() interface{} {
		s := make([]int64, 0, DefaultBlockEvents)
		return &s
	},
}

func getI64(n int) *[]int64 {
	p := i64Pool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, n)
	}
	*p = (*p)[:n]
	return p
}

func putI64(p *[]int64) { i64Pool.Put(p) }

// appendStoredValue appends one stored value in the column's wire encoding.
func appendStoredValue(dst []byte, v int64, unsigned bool) []byte {
	if unsigned {
		return binary.AppendUvarint(dst, uint64(v))
	}
	return binary.AppendVarint(dst, v)
}

// storedValue reads one stored value in the column's wire encoding.
func (c *byteCursor) storedValue(unsigned bool) int64 {
	if unsigned {
		return int64(c.uvarint())
	}
	return c.varint()
}

// storedValueLen returns the wire size of one stored value.
func storedValueLen(v int64, unsigned bool) int {
	u := uint64(v)
	if !unsigned {
		u = uint64(v<<1) ^ uint64(v>>63) // zigzag, as AppendVarint does
	}
	return (bits.Len64(u|1) + 6) / 7
}

// packedLen returns the byte length of n bit-packed values of the given
// width.
func packedLen(n int, width uint) int {
	return (n*int(width) + 7) / 8
}

// bitsFor returns the pack width needed for offsets in [0, span].
func bitsFor(span uint64) uint { return uint(bits.Len64(span)) }

// appendPacked bit-packs (v − base) mod 2^64 for each value, LSB-first into
// little-endian bytes. width must satisfy (v−base) < 2^width for every v.
func appendPacked(dst []byte, vals []int64, base uint64, width uint) []byte {
	if width == 0 {
		return dst
	}
	var acc uint64 // pending low bits
	var nb uint    // valid bits in acc, < 8 at loop entry
	for _, v := range vals {
		u := uint64(v) - base
		lo := acc | u<<nb
		var hi uint64
		if nb > 0 {
			hi = u >> (64 - nb)
		}
		total := nb + width
		for total >= 8 {
			dst = append(dst, byte(lo))
			lo = lo>>8 | hi<<56
			hi >>= 8
			total -= 8
		}
		acc, nb = lo, total
	}
	if nb > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// unpackInto reads n width-bit values from src (LSB-first), adding base mod
// 2^64, into out[:n]. src must hold packedLen(n, width) bytes.
func unpackInto(src []byte, n int, width uint, base uint64, out []int64) {
	if width == 0 {
		for i := 0; i < n; i++ {
			out[i] = int64(base)
		}
		return
	}
	mask := uint64(1)<<width - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	var lo, hi uint64 // 128-bit window: bits fill lo first
	var nb uint
	pos := 0
	for i := 0; i < n; i++ {
		for nb < width {
			b := uint64(src[pos])
			pos++
			if nb < 64 {
				lo |= b << nb
				if nb > 56 {
					hi |= b >> (64 - nb)
				}
			} else {
				hi |= b << (nb - 64)
			}
			nb += 8
		}
		out[i] = int64(base + lo&mask)
		lo = lo>>width | hi<<(64-width)
		if width == 64 {
			lo = hi
		}
		hi >>= width
		nb -= width
	}
}

// segScratch is the per-worker encoder state: the stored-value staging
// slice and the dictionary map, both reused across segments and blocks.
type segScratch struct {
	vals []int64
	dict map[int64]struct{}
}

var segScratchPool = sync.Pool{
	New: func() interface{} {
		return &segScratch{
			vals: make([]int64, 0, DefaultBlockEvents),
			dict: make(map[int64]struct{}, 256),
		}
	},
}

// storedVals stages column col of evs as its stored-value stream (raw
// values, or the delta chain for Start/End) into sc.vals.
func (sc *segScratch) storedVals(col int, evs []Event) []int64 {
	if cap(sc.vals) < len(evs) {
		sc.vals = make([]int64, len(evs))
	}
	vals := sc.vals[:len(evs)]
	switch ColSet(1) << col {
	case ColLevel:
		for i := range evs {
			vals[i] = int64(evs[i].Level)
		}
	case ColOp:
		for i := range evs {
			vals[i] = int64(evs[i].Op)
		}
	case ColLib:
		for i := range evs {
			vals[i] = int64(evs[i].Lib)
		}
	case ColRank:
		for i := range evs {
			vals[i] = int64(evs[i].Rank)
		}
	case ColNode:
		for i := range evs {
			vals[i] = int64(evs[i].Node)
		}
	case ColApp:
		for i := range evs {
			vals[i] = int64(evs[i].App)
		}
	case ColFile:
		for i := range evs {
			vals[i] = int64(evs[i].File)
		}
	case ColOffset:
		for i := range evs {
			vals[i] = evs[i].Offset
		}
	case ColSize:
		for i := range evs {
			vals[i] = evs[i].Size
		}
	case ColStart:
		prev := int64(0)
		for i := range evs {
			s := int64(evs[i].Start)
			vals[i] = s - prev
			prev = s
		}
	case ColEnd:
		prev := int64(0)
		for i := range evs {
			e := int64(evs[i].End)
			vals[i] = e - prev
			prev = e
		}
	}
	sc.vals = vals
	return vals
}

// chooseSegCodec runs the cost model: one pass over the stored values
// computes the exact body size of every candidate encoding, and the
// smallest wins (ties break toward the earlier codec id, so the choice is
// deterministic). Dictionary candidacy is abandoned past maxDictValues.
func chooseSegCodec(vals []int64, unsigned bool, dict map[int64]struct{}) uint8 {
	n := len(vals)
	if n == 0 {
		return segRaw
	}
	rawBytes := 0
	rleBytes := 0
	dictValBytes := 0
	runs := 0
	runLen := 0
	min, max := vals[0], vals[0]
	dictAlive := true
	clear(dict)
	for i, v := range vals {
		sz := storedValueLen(v, unsigned)
		rawBytes += sz
		if i == 0 || v != vals[i-1] {
			if i > 0 {
				rleBytes += lenUvarint(uint64(runLen))
			}
			rleBytes += sz
			runs++
			runLen = 1
		} else {
			runLen++
		}
		if v < min {
			min = v
		} else if v > max {
			max = v
		}
		if dictAlive {
			if _, ok := dict[v]; !ok {
				if len(dict) == maxDictValues {
					dictAlive = false
				} else {
					dict[v] = struct{}{}
					dictValBytes += sz
				}
			}
		}
	}
	rleBytes += lenUvarint(uint64(runLen))

	best, bestBytes := uint8(segRaw), rawBytes
	if rleBytes < bestBytes {
		best, bestBytes = segRLE, rleBytes
	}
	if dictAlive {
		ndict := len(dict)
		w := bitsFor(uint64(ndict - 1))
		dictBytes := lenUvarint(uint64(ndict)) + dictValBytes + 1 + packedLen(n, w)
		if dictBytes < bestBytes {
			best, bestBytes = segDict, dictBytes
		}
	}
	forW := bitsFor(uint64(max) - uint64(min))
	forBytes := storedValueLen(min, unsigned) + 1 + packedLen(n, forW)
	if forBytes < bestBytes {
		best = segFOR
	}
	return best
}

func lenUvarint(u uint64) int { return (bits.Len64(u|1) + 6) / 7 }

// appendSegBody encodes the stored values under the chosen codec. The
// caller has already appended the codec id byte.
func appendSegBody(dst []byte, codec uint8, vals []int64, unsigned bool) []byte {
	n := len(vals)
	switch codec {
	case segRaw:
		for _, v := range vals {
			dst = appendStoredValue(dst, v, unsigned)
		}
	case segRLE:
		for i := 0; i < n; {
			j := i + 1
			for j < n && vals[j] == vals[i] {
				j++
			}
			dst = appendStoredValue(dst, vals[i], unsigned)
			dst = binary.AppendUvarint(dst, uint64(j-i))
			i = j
		}
	case segDict:
		// First-appearance order keeps the encoding deterministic and puts
		// the earliest values at the smallest indices.
		pos := make(map[int64]int64, 16)
		order := make([]int64, 0, 16)
		idx := getI64(n)
		defer putI64(idx)
		for i, v := range vals {
			p, ok := pos[v]
			if !ok {
				p = int64(len(order))
				pos[v] = p
				order = append(order, v)
			}
			(*idx)[i] = p
		}
		dst = binary.AppendUvarint(dst, uint64(len(order)))
		for _, v := range order {
			dst = appendStoredValue(dst, v, unsigned)
		}
		w := bitsFor(uint64(len(order) - 1))
		dst = append(dst, byte(w))
		dst = appendPacked(dst, (*idx)[:n], 0, w)
	case segFOR:
		min := vals[0]
		max := vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			} else if v > max {
				max = v
			}
		}
		w := bitsFor(uint64(max) - uint64(min))
		dst = appendStoredValue(dst, min, unsigned)
		dst = append(dst, byte(w))
		dst = appendPacked(dst, vals, uint64(min), w)
	}
	return dst
}

// appendSegV22 encodes one column of evs as a v2.2 segment (codec id byte +
// body) and returns the chosen codec. force < 0 runs the cost model.
func appendSegV22(dst []byte, col int, evs []Event, force int, sc *segScratch) ([]byte, uint8) {
	unsigned := ColSet(1)<<col&unsignedCols != 0
	vals := sc.storedVals(col, evs)
	var codec uint8
	if len(evs) == 0 {
		codec = segRaw
	} else if force >= 0 {
		codec = uint8(force)
	} else {
		codec = chooseSegCodec(vals, unsigned, sc.dict)
	}
	dst = append(dst, codec)
	return appendSegBody(dst, codec, vals, unsigned), codec
}

// decodeSegVals decodes one segment body (the codec id byte already
// consumed) into out[:n] as stored values. Every claim is validated against
// the cursor's remaining bytes before it allocates or fills anything.
func decodeSegVals(c *byteCursor, codec uint8, n int, unsigned bool, out []int64) error {
	switch codec {
	case segRaw:
		for i := 0; i < n; i++ {
			out[i] = c.storedValue(unsigned)
		}
		return c.err
	case segRLE:
		filled := 0
		for filled < n {
			v := c.storedValue(unsigned)
			rl := c.uvarint()
			if c.err != nil {
				return c.err
			}
			if rl == 0 || rl > uint64(n-filled) {
				return badf("run of %d values in segment holding %d more", rl, n-filled)
			}
			for i := 0; i < int(rl); i++ {
				out[filled+i] = v
			}
			filled += int(rl)
		}
		return nil
	case segDict:
		nd := c.uvarint()
		if c.err != nil {
			return c.err
		}
		if nd == 0 || nd > uint64(n) {
			return badf("dictionary of %d values for %d rows", nd, n)
		}
		dict := getI64(int(nd))
		defer putI64(dict)
		for i := 0; i < int(nd); i++ {
			(*dict)[i] = c.storedValue(unsigned)
		}
		w, err := c.widthByte(32)
		if err != nil {
			return err
		}
		if want := bitsFor(nd - 1); w != want {
			return badf("dictionary of %d values packed at %d bits, want %d", nd, w, want)
		}
		packed, err := c.take(packedLen(n, w))
		if err != nil {
			return err
		}
		unpackInto(packed, n, w, 0, out)
		for i := 0; i < n; i++ {
			idx := uint64(out[i])
			if idx >= nd {
				return badf("dictionary index %d out of %d", idx, nd)
			}
			out[i] = (*dict)[idx]
		}
		return nil
	case segFOR:
		base := c.storedValue(unsigned)
		w, err := c.widthByte(64)
		if err != nil {
			return err
		}
		packed, err := c.take(packedLen(n, w))
		if err != nil {
			return err
		}
		unpackInto(packed, n, w, uint64(base), out)
		return nil
	}
	return badf("unknown segment codec %d", codec)
}

// widthByte reads a bit-width byte bounded by max.
func (c *byteCursor) widthByte(max uint) (uint, error) {
	if c.err != nil {
		return 0, c.err
	}
	if c.off >= len(c.b) {
		c.err = badf("truncated width byte at payload offset %d", c.off)
		return 0, c.err
	}
	w := uint(c.b[c.off])
	c.off++
	if w > max {
		c.err = badf("pack width %d exceeds %d bits", w, max)
		return 0, c.err
	}
	return w, nil
}

// take consumes exactly n bytes, failing (never allocating) when the
// segment does not hold them.
func (c *byteCursor) take(n int) ([]byte, error) {
	if c.err != nil {
		return nil, c.err
	}
	if n < 0 || n > len(c.b)-c.off {
		c.err = badf("packed body of %d bytes exceeds %d remaining", n, len(c.b)-c.off)
		return nil, c.err
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b, nil
}

// decodeSegV22 decodes one v2.2 segment (codec id byte + body) into the
// matching column slice of cols (already grown to n rows), with the same
// value validation the v2.1 decoder applies per column.
func decodeSegV22(c *byteCursor, col, n int, cols *Columns) error {
	if c.err != nil {
		return c.err
	}
	if c.off >= len(c.b) {
		c.err = badf("missing segment codec byte")
		return c.err
	}
	codec := c.b[c.off]
	c.off++
	set := ColSet(1) << col
	unsigned := set&unsignedCols != 0

	// Int64 columns decode straight into their target slice; Start/End
	// store delta chains, accumulated in place below.
	switch set {
	case ColOffset:
		return decodeSegVals(c, codec, n, unsigned, cols.Offset[:n])
	case ColSize:
		return decodeSegVals(c, codec, n, unsigned, cols.Size[:n])
	case ColStart:
		if err := decodeSegVals(c, codec, n, unsigned, cols.Start[:n]); err != nil {
			return err
		}
		prefixSum(cols.Start[:n])
		return nil
	case ColEnd:
		if err := decodeSegVals(c, codec, n, unsigned, cols.End[:n]); err != nil {
			return err
		}
		prefixSum(cols.End[:n])
		return nil
	}

	// Narrow columns stage through pooled scratch, then convert with the
	// v2.1 validation rules (ranks and nodes must fit a non-negative int32).
	vp := getI64(n)
	defer putI64(vp)
	vals := *vp
	if err := decodeSegVals(c, codec, n, unsigned, vals); err != nil {
		return err
	}
	switch set {
	case ColLevel:
		for i := 0; i < n; i++ {
			cols.Level[i] = uint8(vals[i])
		}
	case ColOp:
		for i := 0; i < n; i++ {
			cols.Op[i] = uint8(vals[i])
		}
	case ColLib:
		for i := 0; i < n; i++ {
			cols.Lib[i] = uint8(vals[i])
		}
	case ColRank:
		for i := 0; i < n; i++ {
			if vals[i] < 0 || vals[i] > int64(1<<31-1) {
				return badf("rank %d out of range", vals[i])
			}
			cols.Rank[i] = int32(vals[i])
		}
	case ColNode:
		for i := 0; i < n; i++ {
			if vals[i] < 0 || vals[i] > int64(1<<31-1) {
				return badf("node %d out of range", vals[i])
			}
			cols.Node[i] = int32(vals[i])
		}
	case ColApp:
		for i := 0; i < n; i++ {
			cols.App[i] = int32(vals[i])
		}
	case ColFile:
		for i := 0; i < n; i++ {
			cols.File[i] = int32(vals[i])
		}
	}
	return nil
}

func prefixSum(v []int64) {
	var acc int64
	for i := range v {
		acc += v[i]
		v[i] = acc
	}
}

// Run is one run of equal stored values in an RLE-coded column segment —
// the summary run-aware scan kernels consume without expanding rows.
type Run struct {
	Val int64
	N   int32
}

// decodeSegRuns decodes an RLE segment body into runs without expanding
// values, appending to dst (whose capacity is reused). Valid only for
// value columns (not the Start/End delta chains).
func decodeSegRuns(c *byteCursor, n int, unsigned bool, dst []Run) ([]Run, error) {
	// Each run occupies at least two body bytes (value + length), so the
	// remaining body bounds the run count; one allocation fits them all.
	bound := (len(c.b) - c.off) / 2
	if bound > n {
		bound = n
	}
	runs := dst[:0]
	if cap(runs) < bound {
		runs = make([]Run, 0, bound)
	}
	filled := 0
	for filled < n {
		v := c.storedValue(unsigned)
		rl := c.uvarint()
		if c.err != nil {
			return nil, c.err
		}
		if rl == 0 || rl > uint64(n-filled) {
			return nil, badf("run of %d values in segment holding %d more", rl, n-filled)
		}
		runs = append(runs, Run{Val: v, N: int32(rl)})
		filled += int(rl)
	}
	return runs, nil
}
