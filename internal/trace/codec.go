package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// The original on-disk trace format (VANITRC1) is a compact row-major
// binary log, mirroring Recorder's row-major native format that the paper
// converts to columnar parquet before analysis (our colstore package plays
// the parquet role). VANITRC2 (blockio.go) keeps the same header but
// reshapes the event log into independently decodable blocks.
//
// VANITRC1 layout:
//
//	magic "VANITRC1" (8 bytes)
//	meta block   (string/varint fields)
//	apps table   (count, then strings)
//	files table  (count, then per-file fields)
//	event count, then events (varint fields, times delta-encoded by Start)
//
// Strings are uvarint length + bytes. Signed ints use zig-zag varints.

const magic = "VANITRC1"

// ErrBadFormat is returned when decoding input that is not a trace log.
var ErrBadFormat = errors.New("trace: bad format")

type writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	n   int64 // bytes written so far (for the v2 block index)
	err error
}

func (w *writer) raw(b []byte) {
	if w.err != nil {
		return
	}
	var n int
	n, w.err = w.w.Write(b)
	w.n += int64(n)
}

func (w *writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
	w.n += int64(n)
}

func (w *writer) varint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
	w.n += int64(n)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
	w.n += int64(len(s))
}

// writeHeader encodes the format-independent trace header: job metadata,
// the app/file interning tables, and the dataset samples. Both VANITRC1
// and VANITRC2 share this layout byte for byte.
func writeHeader(w *writer, t *Trace) {
	m := &t.Meta
	w.str(m.Workload)
	w.str(m.JobID)
	w.varint(int64(m.Nodes))
	w.varint(int64(m.CoresPerNode))
	w.varint(int64(m.GPUsPerNode))
	w.varint(int64(m.MemPerNodeGB))
	w.varint(int64(m.Ranks))
	w.str(m.NodeLocalDir)
	w.str(m.SharedBBDir)
	w.str(m.PFSDir)
	w.varint(int64(m.JobTimeLimit))
	w.varint(int64(m.TraceOverhead))

	w.uvarint(uint64(len(t.Apps)))
	for _, a := range t.Apps {
		w.str(a)
	}
	w.uvarint(uint64(len(t.Files)))
	for i := range t.Files {
		f := &t.Files[i]
		w.str(f.Path)
		w.varint(f.Size)
		w.str(f.Target)
		w.str(f.Format)
		w.varint(int64(f.NDims))
		w.str(f.DataType)
	}
	w.uvarint(uint64(len(t.Samples)))
	for i := range t.Samples {
		s := &t.Samples[i]
		w.str(s.Name)
		w.uvarint(uint64(len(s.Values)))
		for _, v := range s.Values {
			w.uvarint(math.Float64bits(v))
		}
	}
}

// Write encodes the trace to w in the VANITRC1 format. New traces should
// prefer WriteFormat with FormatV2; Write remains for compatibility with
// existing logs and tools.
func Write(out io.Writer, t *Trace) error {
	w := &writer{w: bufio.NewWriterSize(out, 1<<16)}
	w.raw([]byte(magic))
	writeHeader(w, t)
	w.uvarint(uint64(len(t.Events)))
	var prevStart time.Duration
	for i := range t.Events {
		e := &t.Events[i]
		w.uvarint(uint64(e.Level))
		w.uvarint(uint64(e.Op))
		w.uvarint(uint64(e.Lib))
		w.varint(int64(e.Rank))
		w.varint(int64(e.Node))
		w.varint(int64(e.App))
		w.varint(int64(e.File))
		w.varint(e.Offset)
		w.varint(e.Size)
		w.varint(int64(e.Start - prevStart))
		w.varint(int64(e.End - e.Start))
		prevStart = e.Start
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

type reader struct {
	r   *bufio.Reader
	err error
	// String-arena state for header decoding: strTo accumulates string
	// bytes in strBuf and records destinations in pend; flushStrs converts
	// the whole arena to one immutable string and hands out slices of it,
	// so a header with hundreds of interned paths costs two allocations
	// instead of two per string.
	strBuf []byte
	pend   []pendingStr
}

// pendingStr is one string awaiting arena flush: dst receives
// arena[start:end] once the arena is frozen.
type pendingStr struct {
	dst        *string
	start, end int
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	r.err = err
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	r.err = err
	return v
}

const maxStringLen = 1 << 20

// strTo reads a length-prefixed string into the arena and schedules *dst
// to receive it at the next flushStrs. dst must stay valid until the
// flush: point it at a field of a preallocated slice element or a local
// that is flushed before any append can move it.
func (r *reader) strTo(dst *string) {
	n := r.uvarint()
	if r.err != nil {
		return
	}
	if n > maxStringLen {
		r.err = fmt.Errorf("%w: string length %d", ErrBadFormat, n)
		return
	}
	if n == 0 {
		*dst = ""
		return
	}
	start := len(r.strBuf)
	need := start + int(n)
	if cap(r.strBuf) < need {
		grown := 2 * cap(r.strBuf)
		if grown < need {
			grown = need
		}
		if grown < 256 {
			grown = 256
		}
		nb := make([]byte, start, grown)
		copy(nb, r.strBuf)
		r.strBuf = nb
	}
	r.strBuf = r.strBuf[:need]
	if _, err := io.ReadFull(r.r, r.strBuf[start:]); err != nil {
		r.err = err
		return
	}
	r.pend = append(r.pend, pendingStr{dst, start, need})
}

// flushStrs freezes the arena into one string and resolves every pending
// destination as a slice of it.
func (r *reader) flushStrs() {
	if len(r.pend) > 0 {
		s := string(r.strBuf)
		for _, p := range r.pend {
			*p.dst = s[p.start:p.end]
		}
		r.pend = r.pend[:0]
	}
	r.strBuf = r.strBuf[:0]
}

func (r *reader) intBounded(what string, max int64) int {
	v := r.varint()
	if r.err == nil && (v < 0 || v > max) {
		r.err = fmt.Errorf("%w: %s %d out of range", ErrBadFormat, what, v)
	}
	return int(v)
}

// readHeader decodes the format-independent trace header (the mirror of
// writeHeader): meta, apps, files, and samples.
func readHeader(r *reader) (*Trace, error) {
	// Counts up to this many elements preallocate their slice so string
	// destinations stay stable until one arena flush at the end; larger
	// (corrupt or extreme) claims fall back to append with a per-item
	// flush, keeping a short stream from forcing a big allocation.
	const preallocMax = 1 << 16
	t := &Trace{}
	m := &t.Meta
	r.strTo(&m.Workload)
	r.strTo(&m.JobID)
	m.Nodes = int(r.varint())
	m.CoresPerNode = int(r.varint())
	m.GPUsPerNode = int(r.varint())
	m.MemPerNodeGB = int(r.varint())
	m.Ranks = int(r.varint())
	r.strTo(&m.NodeLocalDir)
	r.strTo(&m.SharedBBDir)
	r.strTo(&m.PFSDir)
	m.JobTimeLimit = time.Duration(r.varint())
	m.TraceOverhead = time.Duration(r.varint())

	nApps := r.uvarint()
	if r.err == nil && nApps > 1<<20 {
		return nil, fmt.Errorf("%w: app count %d", ErrBadFormat, nApps)
	}
	if r.err == nil && nApps > 0 && nApps <= preallocMax {
		t.Apps = make([]string, nApps)
		for i := uint64(0); i < nApps && r.err == nil; i++ {
			r.strTo(&t.Apps[i])
		}
	} else {
		for i := uint64(0); i < nApps && r.err == nil; i++ {
			var app string
			r.strTo(&app)
			r.flushStrs()
			t.Apps = append(t.Apps, app)
		}
	}
	nFiles := r.uvarint()
	if r.err == nil && nFiles > 1<<28 {
		return nil, fmt.Errorf("%w: file count %d", ErrBadFormat, nFiles)
	}
	readFile := func(f *FileInfo) {
		r.strTo(&f.Path)
		f.Size = r.varint()
		r.strTo(&f.Target)
		r.strTo(&f.Format)
		f.NDims = int(r.varint())
		r.strTo(&f.DataType)
	}
	if r.err == nil && nFiles > 0 && nFiles <= preallocMax {
		t.Files = make([]FileInfo, nFiles)
		for i := uint64(0); i < nFiles && r.err == nil; i++ {
			readFile(&t.Files[i])
		}
	} else {
		for i := uint64(0); i < nFiles && r.err == nil; i++ {
			var f FileInfo
			readFile(&f)
			r.flushStrs()
			t.Files = append(t.Files, f)
		}
	}
	nSamples := r.uvarint()
	if r.err == nil && nSamples > 1<<20 {
		return nil, fmt.Errorf("%w: sample count %d", ErrBadFormat, nSamples)
	}
	prealloc := r.err == nil && nSamples > 0 && nSamples <= preallocMax
	if prealloc {
		t.Samples = make([]DatasetSample, 0, nSamples)
	}
	for i := uint64(0); i < nSamples && r.err == nil; i++ {
		var s DatasetSample
		if prealloc {
			t.Samples = t.Samples[:i+1]
			r.strTo(&t.Samples[i].Name)
		} else {
			r.strTo(&s.Name)
			r.flushStrs()
		}
		nv := r.uvarint()
		if r.err == nil && nv > 1<<24 {
			return nil, fmt.Errorf("%w: sample size %d", ErrBadFormat, nv)
		}
		if r.err == nil && nv > 0 && nv <= preallocMax {
			s.Values = make([]float64, 0, nv)
		}
		for j := uint64(0); j < nv && r.err == nil; j++ {
			s.Values = append(s.Values, math.Float64frombits(r.uvarint()))
		}
		if prealloc {
			t.Samples[i].Values = s.Values
		} else {
			t.Samples = append(t.Samples, s)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	r.flushStrs()
	return t, nil
}

// Scanner streams a trace log: the header (metadata, interning tables,
// samples) decodes eagerly, the event log decodes in caller-sized batches.
// It is the out-of-core entry point of the analysis pipeline — a trace
// never needs to materialize as one []Event to be analyzed; events flow
// from disk straight into the columnar store chunk by chunk. The scanner
// sniffs the magic and reads both VANITRC1 and VANITRC2 logs.
type Scanner struct {
	r         *reader
	hdr       *Trace
	remaining uint64
	prevStart time.Duration // v1 cross-event delta state
	v2        *v2stream     // non-nil when the log is VANITRC2
}

// NewScanner decodes the trace header from in and positions the scanner at
// the first event. The reader must not be used by the caller afterwards.
func NewScanner(in io.Reader) (*Scanner, error) {
	r := &reader{r: bufio.NewReaderSize(in, 1<<16)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r.r, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	switch string(head) {
	case magic:
	case magicV2:
		return newScannerV2(r)
	default:
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head)
	}
	t, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	nEvents := r.uvarint()
	if r.err == nil && nEvents > 1<<32 {
		return nil, fmt.Errorf("%w: event count %d", ErrBadFormat, nEvents)
	}
	if r.err != nil {
		return nil, r.err
	}
	return &Scanner{r: r, hdr: t, remaining: nEvents}, nil
}

// Header returns the decoded trace header: a Trace carrying Meta, Apps,
// Files and Samples but no Events. The scanner retains no reference to it.
func (s *Scanner) Header() *Trace { return s.hdr }

// Remaining returns the number of events not yet scanned.
func (s *Scanner) Remaining() uint64 { return s.remaining }

// Next decodes up to len(buf) events into buf and returns how many were
// filled. It returns io.EOF (with n == 0) once the event log is exhausted,
// and a decoding error if the log is corrupt or truncated.
func (s *Scanner) Next(buf []Event) (int, error) {
	if s.remaining == 0 {
		return 0, io.EOF
	}
	if s.v2 != nil {
		return s.nextV2(buf)
	}
	n := uint64(len(buf))
	if n > s.remaining {
		n = s.remaining
	}
	r := s.r
	for i := uint64(0); i < n; i++ {
		e := &buf[i]
		e.Level = Level(r.uvarint())
		e.Op = Op(r.uvarint())
		e.Lib = Lib(r.uvarint())
		e.Rank = int32(r.intBounded("rank", math.MaxInt32))
		e.Node = int32(r.intBounded("node", math.MaxInt32))
		e.App = int32(r.varint())
		e.File = int32(r.varint())
		e.Offset = r.varint()
		e.Size = r.varint()
		e.Start = s.prevStart + time.Duration(r.varint())
		e.End = e.Start + time.Duration(r.varint())
		s.prevStart = e.Start
		if r.err != nil {
			return int(i), r.err
		}
	}
	s.remaining -= n
	return int(n), nil
}

// Read decodes a trace previously encoded by Write, materializing the full
// event log through the streaming scanner.
func Read(in io.Reader) (*Trace, error) {
	s, err := NewScanner(in)
	if err != nil {
		return nil, err
	}
	t := s.Header()
	if s.remaining < 1<<24 {
		t.Events = make([]Event, 0, s.remaining)
	}
	buf := make([]Event, 4096)
	for {
		n, err := s.Next(buf)
		t.Events = append(t.Events, buf[:n]...)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
