package trace

// Scan-plan vocabulary: the column sets and pushdown predicates the
// analysis pipeline drives top-down through colstore into the VANITRC2
// block index. The analyzer declares which columns each pass touches
// (ColSet) and which predicates it can push (Filter); the block reader
// consumes both to skip whole blocks via footer statistics and, for
// columnar-payload logs (footer v2.1), to decode only the requested
// column segments.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// ColSet is a bitmask of event columns, the projection half of a scan
// plan. The bit order is the canonical column order of the columnar block
// payload and of the footer's per-column byte ranges.
type ColSet uint16

// Column bits, in on-disk segment order.
const (
	ColLevel ColSet = 1 << iota
	ColOp
	ColLib
	ColRank
	ColNode
	ColApp
	ColFile
	ColOffset
	ColSize
	ColStart
	ColEnd

	// NumCols is the number of event columns.
	NumCols = 11
	// AllCols selects every column (the full-decode plan).
	AllCols ColSet = 1<<NumCols - 1
)

var colNames = [NumCols]string{
	"level", "op", "lib", "rank", "node", "app", "file",
	"offset", "size", "start", "end",
}

// String renders the set as a comma-joined column list.
func (s ColSet) String() string {
	if s == AllCols {
		return "all"
	}
	var parts []string
	for i := 0; i < NumCols; i++ {
		if s&(1<<i) != 0 {
			parts = append(parts, colNames[i])
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Count returns the number of columns in the set.
func (s ColSet) Count() int {
	n := 0
	for i := 0; i < NumCols; i++ {
		if s&(1<<i) != 0 {
			n++
		}
	}
	return n
}

// OpClass is a pushable operation-class predicate.
type OpClass uint8

// Operation classes. The zero value selects every operation.
const (
	OpClassAll  OpClass = iota
	OpClassData         // read/write
	OpClassMeta         // open/close/seek/stat/sync/mkdir/readdir
	OpClassIO           // data or meta
)

// String returns the flag-style class name.
func (c OpClass) String() string {
	switch c {
	case OpClassAll:
		return "all"
	case OpClassData:
		return "data"
	case OpClassMeta:
		return "meta"
	case OpClassIO:
		return "io"
	}
	return fmt.Sprintf("OpClass(%d)", int(c))
}

// ParseOpClass parses a flag-style op class name.
func ParseOpClass(s string) (OpClass, error) {
	switch s {
	case "", "all":
		return OpClassAll, nil
	case "data":
		return OpClassData, nil
	case "meta":
		return OpClassMeta, nil
	case "io":
		return OpClassIO, nil
	}
	return 0, fmt.Errorf("unknown op class %q (want data, meta, io or all)", s)
}

// opMaskFor returns the bitmask of ops selected by the class.
func opMaskFor(c OpClass) uint32 {
	var m uint32
	for op := Op(0); op < numOps; op++ {
		keep := false
		switch c {
		case OpClassAll:
			keep = true
		case OpClassData:
			keep = op.IsData()
		case OpClassMeta:
			keep = op.IsMeta()
		case OpClassIO:
			keep = op.IsIO()
		}
		if keep {
			m |= 1 << op
		}
	}
	return m
}

// Filter is the pushdown predicate set of a scan plan: a time window over
// event start times, a rank set, a level set, and an operation class. The
// zero value matches every event. Filters are pushed down to the block
// index (whole blocks whose footer statistics prove no row can match are
// never decoded) and applied exactly per row afterwards, so a filtered
// scan is equivalent to filtering a full decode in memory.
type Filter struct {
	// From/To bound event Start times to [From, To]. To == 0 means
	// unbounded above; From == 0 is unbounded below (starts are >= 0).
	From, To time.Duration
	// Ranks restricts to the listed ranks (nil = all).
	Ranks []int32
	// Levels restricts to the listed layers (nil = all).
	Levels []Level
	// Ops restricts to an operation class (OpClassAll = all).
	Ops OpClass
}

// Empty reports whether the filter matches every event.
func (f *Filter) Empty() bool {
	return f.From == 0 && f.To == 0 && len(f.Ranks) == 0 &&
		len(f.Levels) == 0 && f.Ops == OpClassAll
}

// Cols returns the columns the filter's residual row predicate reads —
// the minimum set a pruned scan must decode before row selection.
func (f *Filter) Cols() ColSet {
	var s ColSet
	if f.From != 0 || f.To != 0 {
		s |= ColStart
	}
	if len(f.Ranks) > 0 {
		s |= ColRank
	}
	if len(f.Levels) > 0 {
		s |= ColLevel
	}
	if f.Ops != OpClassAll {
		s |= ColOp
	}
	return s
}

// Matcher is a Filter compiled for per-row and per-block evaluation.
type Matcher struct {
	fromNS, toNS int64
	ranks        map[int32]bool
	minRank      int32
	maxRank      int32
	levelMask    uint32
	opMask       uint32
	empty        bool
}

// NewMatcher compiles the filter.
func (f *Filter) NewMatcher() *Matcher {
	m := &Matcher{
		fromNS:    int64(f.From),
		toNS:      math.MaxInt64,
		levelMask: ^uint32(0),
		opMask:    opMaskFor(f.Ops),
		empty:     f.Empty(),
	}
	if f.To != 0 {
		m.toNS = int64(f.To)
	}
	if len(f.Ranks) > 0 {
		m.ranks = make(map[int32]bool, len(f.Ranks))
		m.minRank, m.maxRank = f.Ranks[0], f.Ranks[0]
		for _, r := range f.Ranks {
			m.ranks[r] = true
			if r < m.minRank {
				m.minRank = r
			}
			if r > m.maxRank {
				m.maxRank = r
			}
		}
	}
	if len(f.Levels) > 0 {
		m.levelMask = 0
		for _, lv := range f.Levels {
			if lv < 32 {
				m.levelMask |= 1 << lv
			}
		}
	}
	return m
}

// Empty reports whether the matcher accepts every event.
func (m *Matcher) Empty() bool { return m.empty }

// Match evaluates the row predicate over raw column values.
func (m *Matcher) Match(level, op uint8, rank int32, startNS int64) bool {
	if startNS < m.fromNS || startNS > m.toNS {
		return false
	}
	if m.ranks != nil && !m.ranks[rank] {
		return false
	}
	if level < 32 && m.levelMask&(1<<level) == 0 {
		return false
	}
	return op >= 32 || m.opMask&(1<<op) != 0
}

// MatchEvent evaluates the row predicate over a decoded event.
func (m *Matcher) MatchEvent(e *Event) bool {
	return m.Match(uint8(e.Level), uint8(e.Op), e.Rank, int64(e.Start))
}

// Per-dimension predicate surface: Match is the conjunction of these four
// accepts, which is what lets a compressed-domain scan evaluate each
// dimension independently — per run, or translated once into a dictionary's
// code space — and intersect the results instead of materializing rows.

// NeedCols returns the columns whose accept is actually constrained; the
// other dimensions accept everything and need not be evaluated at all.
func (m *Matcher) NeedCols() ColSet {
	var s ColSet
	if m.fromNS > 0 || m.toNS != math.MaxInt64 {
		s |= ColStart
	}
	if m.ranks != nil {
		s |= ColRank
	}
	if m.levelMask != ^uint32(0) {
		s |= ColLevel
	}
	if m.opMask != opMaskFor(OpClassAll) {
		s |= ColOp
	}
	return s
}

// NeedColsBlock returns NeedCols reduced by the block's index entry: a
// dimension whose footer statistics prove every row in the block passes
// drops out of the constrained set for that block. Today the reduction
// covers the time window — a block whose [MinStart, MaxStart] lies inside
// [from, to] passes the window wholesale, which turns a window+value
// filter into a pure value filter for every interior block of a
// time-sorted trace, so the compressed-domain selection paths (and the
// selection-backed run re-cut behind them) fire where a per-row Start
// test used to force materialization. Boundary blocks, straddling a
// window edge, keep ColStart and test their rows exactly.
func (m *Matcher) NeedColsBlock(bi BlockInfo) ColSet {
	need := m.NeedCols()
	if need&ColStart != 0 && bi.Count > 0 &&
		int64(bi.MinStart) >= m.fromNS && int64(bi.MaxStart) <= m.toNS {
		need &^= ColStart
	}
	return need
}

// AcceptStart evaluates the time-window dimension alone.
func (m *Matcher) AcceptStart(startNS int64) bool {
	return startNS >= m.fromNS && startNS <= m.toNS
}

// AcceptRank evaluates the rank dimension alone.
func (m *Matcher) AcceptRank(rank int32) bool {
	return m.ranks == nil || m.ranks[rank]
}

// AcceptLevel evaluates the level dimension alone.
func (m *Matcher) AcceptLevel(level uint8) bool {
	return level >= 32 || m.levelMask&(1<<level) != 0
}

// AcceptOp evaluates the op-class dimension alone.
func (m *Matcher) AcceptOp(op uint8) bool {
	return op >= 32 || m.opMask&(1<<op) != 0
}

// SkipBlock reports whether the block's index entry proves no row in it
// can match — the pruning decision. Time bounds are present in every
// footer version; rank bounds and level/op masks require a v2.1 footer
// (BlockInfo.HasStats) and are ignored otherwise, so pruning is always
// conservative.
func (m *Matcher) SkipBlock(bi BlockInfo) bool {
	if bi.Count == 0 {
		return true
	}
	if int64(bi.MaxStart) < m.fromNS || int64(bi.MinStart) > m.toNS {
		return true
	}
	if !bi.HasStats {
		return false
	}
	if m.ranks != nil {
		// Interval check: if every requested rank falls outside the
		// block's [min, max] rank range, nothing can match.
		any := false
		for r := range m.ranks {
			if r >= bi.MinRank && r <= bi.MaxRank {
				any = true
				break
			}
		}
		if !any {
			return true
		}
	}
	if bi.LevelMask != 0 && m.levelMask&bi.LevelMask == 0 {
		return true
	}
	if bi.OpMask != 0 && m.opMask&bi.OpMask == 0 {
		return true
	}
	return false
}

// FilterEvents returns the events matching f, preserving order — the
// in-memory reference semantics every pruned scan must reproduce.
func FilterEvents(evs []Event, f Filter) []Event {
	if f.Empty() {
		return evs
	}
	m := f.NewMatcher()
	out := make([]Event, 0, len(evs))
	for i := range evs {
		if m.MatchEvent(&evs[i]) {
			out = append(out, evs[i])
		}
	}
	return out
}

// ParseRanks parses a flag-style rank list ("0,3,8-15") into a sorted,
// deduplicated rank slice.
func ParseRanks(s string) ([]int32, error) {
	if s == "" {
		return nil, nil
	}
	seen := map[int32]bool{}
	var out []int32
	add := func(r int64) error {
		if r < 0 || r > math.MaxInt32 {
			return fmt.Errorf("rank %d out of range", r)
		}
		if !seen[int32(r)] {
			seen[int32(r)] = true
			out = append(out, int32(r))
		}
		return nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			var a, b int64
			if _, err := fmt.Sscanf(lo+" "+hi, "%d %d", &a, &b); err != nil {
				return nil, fmt.Errorf("bad rank range %q", part)
			}
			if b < a || b-a > 1<<20 {
				return nil, fmt.Errorf("bad rank range %q", part)
			}
			for r := a; r <= b; r++ {
				if err := add(r); err != nil {
					return nil, err
				}
			}
			continue
		}
		var r int64
		if _, err := fmt.Sscanf(part, "%d", &r); err != nil {
			return nil, fmt.Errorf("bad rank %q", part)
		}
		if err := add(r); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ParseLevels parses a flag-style level list ("posix,middleware").
func ParseLevels(s string) ([]Level, error) {
	if s == "" {
		return nil, nil
	}
	var out []Level
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		switch part {
		case "":
		case "app":
			out = append(out, LevelApp)
		case "middleware", "mw":
			out = append(out, LevelMiddleware)
		case "posix":
			out = append(out, LevelPosix)
		case "compute":
			out = append(out, LevelCompute)
		default:
			return nil, fmt.Errorf("unknown level %q (want app, middleware, posix or compute)", part)
		}
	}
	return out, nil
}

// ParseWindow parses a flag-style time window "from:to" of durations
// ("2s:10s"); either side may be empty for an open bound.
func ParseWindow(s string) (from, to time.Duration, err error) {
	if s == "" {
		return 0, 0, nil
	}
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad window %q (want from:to, e.g. 2s:10s)", s)
	}
	if lo != "" {
		if from, err = time.ParseDuration(lo); err != nil {
			return 0, 0, fmt.Errorf("bad window start %q: %v", lo, err)
		}
	}
	if hi != "" {
		if to, err = time.ParseDuration(hi); err != nil {
			return 0, 0, fmt.Errorf("bad window end %q: %v", hi, err)
		}
	}
	if from < 0 || to < 0 || (to != 0 && to < from) {
		return 0, 0, fmt.Errorf("bad window %q: empty or negative range", s)
	}
	return from, to, nil
}
