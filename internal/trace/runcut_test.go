package trace

import (
	"math/rand"
	"testing"
)

// naiveCutRuns is the reference: expand runs to one value per row, gather
// the selected rows, and re-run-length-encode with adjacent coalescing —
// exactly the contract CutRuns implements without the expansion.
func naiveCutRuns(runs []Run, sel []int32) []Run {
	var vals []int64
	for _, r := range runs {
		for i := int32(0); i < r.N; i++ {
			vals = append(vals, r.Val)
		}
	}
	var out []Run
	for _, s := range sel {
		v := vals[s]
		if n := len(out); n > 0 && out[n-1].Val == v {
			out[n-1].N++
		} else {
			out = append(out, Run{Val: v, N: 1})
		}
	}
	return out
}

func runsEqual(a, b []Run) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAppendSelSpans: selection vectors compress to maximal consecutive
// spans, including the degenerate shapes the scan produces — empty
// selections never reach the cut (chunks with zero kept rows are dropped),
// but single rows and full chunks do.
func TestAppendSelSpans(t *testing.T) {
	cases := []struct {
		name string
		sel  []int32
		want []SelSpan
	}{
		{"empty", nil, nil},
		{"single-row", []int32{7}, []SelSpan{{7, 1}}},
		{"full-chunk", []int32{0, 1, 2, 3, 4}, []SelSpan{{0, 5}}},
		{"gaps", []int32{0, 1, 5, 6, 7, 9}, []SelSpan{{0, 2}, {5, 3}, {9, 1}}},
		{"alternating", []int32{1, 3, 5}, []SelSpan{{1, 1}, {3, 1}, {5, 1}}},
	}
	for _, c := range cases {
		got := AppendSelSpans(c.sel, nil)
		if len(got) != len(c.want) {
			t.Fatalf("%s: AppendSelSpans = %v, want %v", c.name, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: AppendSelSpans = %v, want %v", c.name, got, c.want)
			}
		}
	}
}

// TestCutRunsDegenerate pins the edge shapes the fuzz corpus seeds: empty
// selections, single kept rows, selections keeping every row (the cut must
// reproduce the input runs), cuts that split one run across spans (the
// pieces re-coalesce) and cuts whose span gap separates equal values (they
// still coalesce — kept rows are renumbered contiguously).
func TestCutRunsDegenerate(t *testing.T) {
	runs := []Run{{Val: 3, N: 4}, {Val: 5, N: 2}, {Val: 3, N: 3}}
	cases := []struct {
		name string
		sel  []int32
	}{
		{"empty", nil},
		{"single-row-first", []int32{0}},
		{"single-row-last", []int32{8}},
		{"full-chunk", []int32{0, 1, 2, 3, 4, 5, 6, 7, 8}},
		{"split-one-run", []int32{0, 2}},
		{"bridge-gap-same-val", []int32{3, 6}}, // val 3 both sides of the 5s
		{"bridge-gap-diff-val", []int32{3, 4}},
		{"every-other", []int32{0, 2, 4, 6, 8}},
	}
	for _, c := range cases {
		spans := AppendSelSpans(c.sel, nil)
		got := CutRuns(runs, spans, nil, 0)
		want := naiveCutRuns(runs, c.sel)
		if !runsEqual(got, want) {
			t.Errorf("%s: CutRuns = %v, want %v", c.name, got, want)
		}
		if capped := CutRuns(runs, spans, nil, len(want)+1); !runsEqual(capped, want) {
			t.Errorf("%s: bounded CutRuns = %v, want %v", c.name, capped, want)
		}
		if len(want) > 1 { // max 0 means unbounded, so only a real bound can refuse
			if over := CutRuns(runs, spans, nil, len(want)-1); over != nil {
				t.Errorf("%s: CutRuns over its bound returned %v, want nil", c.name, over)
			}
		}
		var total int32
		for _, r := range got {
			total += r.N
		}
		if int(total) != len(c.sel) {
			t.Errorf("%s: cut runs cover %d rows, want %d", c.name, total, len(c.sel))
		}
	}
}

// FuzzCutRuns drives CutRuns against the expand-gather-reencode reference
// with arbitrary run shapes and selection strides.
func FuzzCutRuns(f *testing.F) {
	f.Add([]byte{}, []byte{})                            // no runs, empty selection
	f.Add([]byte{0x20}, []byte{0})                       // single run, single row
	f.Add([]byte{0x3f, 0x81, 0x3f}, []byte{0, 0, 0, 0})  // full coverage, stride 1
	f.Add([]byte{0xff, 0x00, 0x7a}, []byte{3, 9, 1, 27}) // ragged strides
	f.Fuzz(func(t *testing.T, runBytes, selBytes []byte) {
		if len(runBytes) > 64 || len(selBytes) > 256 {
			return
		}
		var runs []Run
		total := int32(0)
		for _, b := range runBytes {
			r := Run{Val: int64(b >> 5), N: int32(b&31) + 1}
			runs = append(runs, r)
			total += r.N
		}
		var sel []int32
		cur := int32(-1)
		for _, b := range selBytes {
			cur += int32(b%7) + 1
			if cur >= total {
				break
			}
			sel = append(sel, cur)
		}
		spans := AppendSelSpans(sel, nil)
		got := CutRuns(runs, spans, nil, 0)
		want := naiveCutRuns(runs, sel)
		if !runsEqual(got, want) {
			t.Fatalf("runs %v sel %v: CutRuns = %v, want %v", runs, sel, got, want)
		}
		if len(want) > 0 {
			if capped := CutRuns(runs, spans, nil, len(want)); !runsEqual(capped, want) {
				t.Fatalf("runs %v sel %v: bounded CutRuns = %v, want %v", runs, sel, capped, want)
			}
		}
		if len(want) > 1 { // max 0 means unbounded, so only a real bound can refuse
			if over := CutRuns(runs, spans, nil, len(want)-1); over != nil {
				t.Fatalf("runs %v sel %v: CutRuns over its bound returned %v", runs, sel, over)
			}
		}
	})
}

// TestCutRunsSelEquivalence pins the streaming cut against the
// materialize-then-cut reference on every run-capable codec: for random
// value streams (run-structured, per-row-dense, constant) and random
// selections (contiguous, scattered, empty, whole-block), CutRunsSel must
// produce exactly CutRuns(AppendRuns(nil), spans, nil, max) — same runs,
// same over-bound verdict, at every bound including the degenerate ones.
func TestCutRunsSelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	codecs := []uint8{segRLE, segDict, segFOR}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]int64, n)
		switch trial % 4 {
		case 0: // run-structured
			v := int64(rng.Intn(5))
			for i := range vals {
				if rng.Intn(8) == 0 {
					v = int64(rng.Intn(5))
				}
				vals[i] = v
			}
		case 1: // per-row-dense
			for i := range vals {
				vals[i] = int64(rng.Intn(1000))
			}
		case 2: // constant
			v := int64(rng.Intn(100))
			for i := range vals {
				vals[i] = v
			}
		case 3: // alternating pair (worst-case churn)
			for i := range vals {
				vals[i] = int64(i % 2)
			}
		}
		var spans []SelSpan
		row := int32(0)
		for int(row) < n && len(spans) < 20 {
			row += int32(rng.Intn(20))
			if int(row) >= n {
				break
			}
			ln := int32(1 + rng.Intn(30))
			if int(row+ln) > n {
				ln = int32(n) - row
			}
			spans = append(spans, SelSpan{Lo: row, N: ln})
			row += ln
		}
		for _, codec := range codecs {
			body := appendSegBody(nil, codec, vals, false)
			for _, max := range []int{0, 1, 2, n / 4, n, 3 * n} {
				cur, err := newSegCursor(codec, body, n, false)
				if err != nil {
					t.Fatalf("%s cursor: %v", segCodecNames[codec], err)
				}
				ref := CutRuns(cur.AppendRuns(nil), spans, nil, max)
				refOK := !(max > 0 && ref == nil && countCutRuns(cur.AppendRuns(nil), spans, max) > max)
				got, ok := cur.CutRunsSel(spans, nil, max)
				cur.Release()
				if ok != refOK {
					t.Fatalf("%s trial %d max %d: ok=%v want %v", segCodecNames[codec], trial, max, ok, refOK)
				}
				if !ok {
					continue
				}
				if len(got) != len(ref) {
					t.Fatalf("%s trial %d max %d: %d runs, want %d\n got %v\nwant %v",
						segCodecNames[codec], trial, max, len(got), len(ref), got, ref)
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("%s trial %d max %d: run %d = %+v, want %+v",
							segCodecNames[codec], trial, max, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

// TestAppendRunsMaxBound pins the bounded run materialization: under the
// bound the output matches AppendRuns exactly; over it the walk reports
// !ok with dst returned at its prior length.
func TestAppendRunsMaxBound(t *testing.T) {
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i % 7) // 64 runs of length 1 except the coalesced none
	}
	for _, codec := range []uint8{segRLE, segDict, segFOR} {
		body := appendSegBody(nil, codec, vals, false)
		cur, err := newSegCursor(codec, body, len(vals), false)
		if err != nil {
			t.Fatalf("%s cursor: %v", segCodecNames[codec], err)
		}
		full := cur.AppendRuns(nil)
		if got, ok := cur.AppendRunsMax(nil, len(full)); !ok || len(got) != len(full) {
			t.Fatalf("%s: max=len(full) refused (ok=%v got %d want %d)", segCodecNames[codec], ok, len(got), len(full))
		}
		prior := []Run{{Val: -99, N: 1}}
		got, ok := cur.AppendRunsMax(prior, len(full)-1)
		if ok {
			t.Fatalf("%s: max=len(full)-1 accepted %d runs", segCodecNames[codec], len(got))
		}
		if len(got) != 1 || got[0] != prior[0] {
			t.Fatalf("%s: over-bound dst not truncated to prior content: %v", segCodecNames[codec], got)
		}
		cur.Release()
	}
}
