package trace

// Selection re-cut: the bridge between a block's value-run summaries and a
// filtered chunk's rows. A scan that keeps only some block rows used to
// lose all run structure — the selection vector names kept rows one by
// one, and the block-level runs describe rows the chunk no longer has. But
// a selection produced by predicate evaluation is itself run-structured
// (predicates flip at run boundaries of the filter columns), so the kept
// rows form a handful of contiguous spans. CutRuns intersects a column's
// block runs with those spans, yielding the value runs of exactly the kept
// rows in kept order — the summary grouped execution needs to fire on
// selection-backed chunks.

// SelSpan is one maximal run of consecutive kept block rows in a
// selection: block rows [Lo, Lo+N), all kept, in order.
type SelSpan struct {
	Lo int32
	N  int32
}

// AppendSelSpans coalesces a sorted selection vector (ascending block row
// indices, as every selection path emits) into contiguous spans, appending
// to dst. An empty selection appends nothing.
func AppendSelSpans(sel []int32, dst []SelSpan) []SelSpan {
	for i := 0; i < len(sel); {
		j := i + 1
		for j < len(sel) && sel[j] == sel[j-1]+1 {
			j++
		}
		dst = append(dst, SelSpan{Lo: sel[i], N: int32(j - i)})
		i = j
	}
	return dst
}

// CutRuns re-cuts a column's block-level value runs against a selection's
// spans: the result is the value-run summary of the kept rows, in kept-row
// order, with adjacent equal values coalesced (also across span gaps, so a
// selection that drops the middle of one long run still yields one run).
// runs must tile the block's rows in order and spans must be disjoint and
// ascending — both hold by construction for SegCursor.AppendRuns output
// and AppendSelSpans/compressed-selection output. O(len(runs)+len(spans)).
//
// max > 0 bounds the output: a cut that would produce more than max runs
// returns nil instead, abandoning the walk as soon as the bound is passed.
// Callers with a density cap (a summary denser than one run per K rows is
// refused anyway) push it down here, so a doomed cut of a high-churn
// column never materializes — and when max is set and dst is nil, the
// bounded count sizes the output exactly, one allocation with no append
// growth and no retained slack. max <= 0 means unbounded.
func CutRuns(runs []Run, spans []SelSpan, dst []Run, max int) []Run {
	if max > 0 {
		n := countCutRuns(runs, spans, max)
		if n > max {
			return nil
		}
		if dst == nil {
			if n == 0 {
				return nil
			}
			dst = make([]Run, 0, n)
		}
	}
	ri := 0
	runStart := int32(0) // block row where runs[ri] begins
	for _, sp := range spans {
		lo, hi := sp.Lo, sp.Lo+sp.N
		if hi <= lo {
			continue
		}
		// Skip runs that end at or before the span. The next span starts
		// later, so this advance never has to back up.
		for ri < len(runs) && runStart+runs[ri].N <= lo {
			runStart += runs[ri].N
			ri++
		}
		// Emit the overlap of each run with the span. The last overlapping
		// run may extend past hi and into the next span, so ri/runStart stay
		// put and the skip loop above re-finds it.
		r, rs := ri, runStart
		for r < len(runs) && rs < hi {
			end := rs + runs[r].N
			a, b := lo, hi
			if rs > a {
				a = rs
			}
			if end < b {
				b = end
			}
			if b > a {
				if n := len(dst); n > 0 && dst[n-1].Val == runs[r].Val {
					dst[n-1].N += b - a
				} else {
					dst = append(dst, Run{Val: runs[r].Val, N: b - a})
				}
			}
			rs = end
			r++
		}
	}
	return dst
}

// countCutRuns walks the same intersection as CutRuns and returns the
// number of coalesced output runs without materializing any, giving up at
// max+1 — the counting half of the bounded cut.
func countCutRuns(runs []Run, spans []SelSpan, max int) int {
	cnt := 0
	var lastVal int64
	ri := 0
	runStart := int32(0)
	for _, sp := range spans {
		lo, hi := sp.Lo, sp.Lo+sp.N
		if hi <= lo {
			continue
		}
		for ri < len(runs) && runStart+runs[ri].N <= lo {
			runStart += runs[ri].N
			ri++
		}
		r, rs := ri, runStart
		for r < len(runs) && rs < hi {
			end := rs + runs[r].N
			a, b := lo, hi
			if rs > a {
				a = rs
			}
			if end < b {
				b = end
			}
			if b > a && (cnt == 0 || runs[r].Val != lastVal) {
				if cnt++; cnt > max {
					return cnt
				}
				lastVal = runs[r].Val
			}
			rs = end
			r++
		}
	}
	return cnt
}
