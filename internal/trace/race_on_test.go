//go:build race

package trace

// raceEnabled reports that this binary runs under the race detector, whose
// instrumentation skews allocation accounting; alloc-bound tests skip.
const raceEnabled = true
