package trace

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
	"time"
)

// allocTrace builds a trace big enough that one block's frame is hundreds of
// kilobytes — a leaked frame buffer per failed decode shows up unmistakably
// in the heap numbers.
func allocTrace(n int) *Trace {
	tr := NewTracer()
	tr.SetMeta(Meta{Workload: "alloc", Nodes: 2, Ranks: 8, PFSDir: "/p"})
	id := tr.FileID("/p/f")
	for i := 0; i < n; i++ {
		tr.Record(Event{
			Level: LevelPosix, Op: OpWrite, Rank: int32(i % 8), File: id,
			Offset: int64(i) * 4096, Size: int64(i%977) * 7,
			Start: time.Duration(i + 1), End: time.Duration(i + 2),
		})
	}
	return tr.Finish()
}

// TestDecodeErrorReturnsPooledScratch: a decode that fails must recycle its
// pooled frame scratch — steady-state heap growth across repeated failing
// decodes stays far below one frame buffer per attempt. This pins the
// error-path pool discipline in readBlockPayload.
func TestDecodeErrorReturnsPooledScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under the race detector")
	}
	for _, compress := range []bool{false, true} {
		tr := allocTrace(DefaultBlockEvents + 50)
		var buf bytes.Buffer
		if err := WriteV2With(&buf, tr, V2Options{Compress: compress}); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt block 0's frame codec byte so unwrapFrame rejects it on
		// every read — the earliest error path, before any payload escapes.
		bi := br.BlockAt(0)
		data[bi.Offset] = 0xEE
		frameLen := bi.Len

		var cols Columns
		fail := func() {
			if err := br.DecodeColumns(0, &cols); err == nil {
				t.Fatal("corrupt frame decoded cleanly")
			} else if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("decode error %v does not wrap ErrBadFormat", err)
			}
		}
		fail() // warm the pools
		const iters = 100
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			fail()
		}
		runtime.ReadMemStats(&after)
		grown := int64(after.TotalAlloc - before.TotalAlloc)
		// A leak allocates one frame buffer per attempt; recycled scratch
		// leaves only error values behind. Allow generous slack for those.
		if limit := frameLen*iters/10 + 64*1024; grown > limit {
			t.Errorf("compress=%v: %d failing decodes allocated %d bytes (frame is %d); pooled scratch is leaking",
				compress, iters, grown, frameLen)
		}
	}
}

// TestDecodeErrorAllocsPerOp bounds the allocation count of a failing
// decode: with scratch recycled, only the error chain allocates.
func TestDecodeErrorAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under the race detector")
	}
	tr := allocTrace(2000)
	var buf bytes.Buffer
	if err := WriteV2With(&buf, tr, V2Options{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	data[br.BlockAt(0).Offset] = 0xEE
	var cols Columns
	allocs := testing.AllocsPerRun(100, func() {
		if err := br.DecodeColumns(0, &cols); err == nil {
			t.Fatal("corrupt frame decoded cleanly")
		}
	})
	if allocs > 16 {
		t.Errorf("failing decode allocates %.1f objects/op, want <= 16", allocs)
	}
}
