package trace

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// TestBitpackRoundTrip: appendPacked/unpackInto round-trip at every width
// from 0 to 64, including values straddling word boundaries and the full
// int64 range under mod-2^64 frame-of-reference.
func TestBitpackRoundTrip(t *testing.T) {
	for width := uint(0); width <= 64; width++ {
		n := 97 // prime, so runs of bits misalign against byte boundaries
		vals := make([]int64, n)
		var max uint64
		if width == 64 {
			max = ^uint64(0)
		} else {
			max = uint64(1)<<width - 1
		}
		rng := uint64(0x9e3779b97f4a7c15)
		for i := range vals {
			rng = rng*6364136223846793005 + 1442695040888963407
			vals[i] = int64(rng & max)
		}
		if n > 1 {
			vals[0], vals[1] = 0, int64(max) // extremes always present
		}
		packed := appendPacked(nil, vals, 0, width)
		if got, want := len(packed), packedLen(n, width); got != want {
			t.Fatalf("width %d: packed %d bytes, want %d", width, got, want)
		}
		out := make([]int64, n)
		unpackInto(packed, n, width, 0, out)
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("width %d: value %d round-tripped %d -> %d", width, i, vals[i], out[i])
			}
		}
	}
}

// TestBitpackFullInt64Range: FOR's mod-2^64 base subtraction packs any
// int64 span, including MinInt64..MaxInt64 at width 64.
func TestBitpackFullInt64Range(t *testing.T) {
	vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64, 42, math.MinInt64 + 1}
	min := int64(math.MinInt64)
	base := uint64(min)
	width := bitsFor(uint64(math.MaxInt64) - base)
	if width != 64 {
		t.Fatalf("span width = %d, want 64", width)
	}
	packed := appendPacked(nil, vals, base, width)
	out := make([]int64, len(vals))
	unpackInto(packed, len(vals), width, base, out)
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("value %d round-tripped %d -> %d", i, vals[i], out[i])
		}
	}
}

// segRoundTrip encodes vals under the forced codec and decodes them back.
func segRoundTrip(t *testing.T, codec uint8, vals []int64, unsigned bool) {
	t.Helper()
	dst := append([]byte(nil), codec)
	dst = appendSegBody(dst, codec, vals, unsigned)
	c := &byteCursor{b: dst[1:]}
	out := make([]int64, len(vals))
	if err := decodeSegVals(c, codec, len(vals), unsigned, out); err != nil {
		t.Fatalf("%s decode: %v", segCodecNames[codec], err)
	}
	if c.off != len(c.b) {
		t.Fatalf("%s decode left %d trailing bytes", segCodecNames[codec], len(c.b)-c.off)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("%s: value %d round-tripped %d -> %d", segCodecNames[codec], i, vals[i], out[i])
		}
	}
}

// TestSegCodecRoundTrips: every codec round-trips every value shape, signed
// and unsigned, including extreme int64 values.
func TestSegCodecRoundTrips(t *testing.T) {
	shapes := map[string][]int64{
		"constant":  {7, 7, 7, 7, 7, 7, 7, 7},
		"runs":      {0, 0, 0, 5, 5, -3, -3, -3, -3, 9},
		"distinct":  {100, -200, 300, -400, 500, -600},
		"alternate": {1, 2, 1, 2, 1, 2, 1, 2, 1},
		"monotonic": {10, 11, 12, 13, 14, 15, 16},
		"extremes":  {math.MinInt64, math.MaxInt64, 0, -1, 1, math.MinInt64, math.MaxInt64},
		"single":    {-42},
	}
	for name, vals := range shapes {
		for codec := uint8(0); codec < numSegCodecs; codec++ {
			segRoundTrip(t, codec, vals, false)
		}
		// Unsigned path only for non-negative values (Level/Op/Lib shapes).
		neg := false
		for _, v := range vals {
			if v < 0 {
				neg = true
			}
		}
		if !neg {
			for codec := uint8(0); codec < numSegCodecs; codec++ {
				segRoundTrip(t, codec, vals, true)
			}
		}
		_ = name
	}
}

// TestChooseSegCodec: the cost model picks the expected codec on
// characteristic column shapes, and never picks one larger than raw.
func TestChooseSegCodec(t *testing.T) {
	dict := make(map[int64]struct{})
	// Long runs of many distinct wide values: RLE beats dict (too many
	// values to amortize) and FOR (wide span forces a fat pack width).
	runs := make([]int64, 1000)
	for i := range runs {
		runs[i] = int64(i/10) * 1000003
	}
	if got := chooseSegCodec(runs, false, dict); got != segRLE {
		t.Errorf("run column chose %s, want rle", segCodecNames[got])
	}

	// A constant column is the degenerate case where FOR's zero-width pack
	// (base + width byte only) beats even RLE's single run.
	constant := make([]int64, 1000)
	for i := range constant {
		constant[i] = 4
	}
	if got := chooseSegCodec(constant, true, dict); got != segFOR {
		t.Errorf("constant column chose %s, want for", segCodecNames[got])
	}

	alternating := make([]int64, 1000)
	for i := range alternating {
		alternating[i] = int64(1000000 + i%3*1000)
	}
	if got := chooseSegCodec(alternating, false, dict); got != segDict {
		t.Errorf("3-value alternating column chose %s, want dict", segCodecNames[got])
	}

	dense := make([]int64, 1000)
	for i := range dense {
		dense[i] = int64(1 << 40) // large constant deltas: FOR packs to width 0
	}
	dense[0] = 1<<40 + 1
	if got := chooseSegCodec(dense, false, dict); got == segRaw {
		t.Errorf("near-constant wide column chose raw")
	}

	// Whatever wins must encode no larger than raw.
	for _, vals := range [][]int64{runs, constant, alternating, dense} {
		chosen := chooseSegCodec(vals, false, dict)
		chosenBytes := len(appendSegBody(nil, chosen, vals, false))
		rawBytes := len(appendSegBody(nil, segRaw, vals, false))
		if chosenBytes > rawBytes {
			t.Errorf("%s encoded %d bytes > raw %d", segCodecNames[chosen], chosenBytes, rawBytes)
		}
	}
}

// TestChooseSegCodecExactSizes: the cost model's predicted winner really is
// the smallest actual encoding, for a spread of shapes.
func TestChooseSegCodecExactSizes(t *testing.T) {
	rng := uint64(12345)
	next := func(mod int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int64(rng>>33) % mod
	}
	for trial := 0; trial < 50; trial++ {
		n := 64 + int(next(512))
		vals := make([]int64, n)
		mode := trial % 4
		for i := range vals {
			switch mode {
			case 0:
				vals[i] = next(4)
			case 1:
				vals[i] = next(1<<30) + 1<<40
			case 2:
				vals[i] = next(8) * 1000003
			case 3:
				if i > 0 && next(10) < 7 {
					vals[i] = vals[i-1]
				} else {
					vals[i] = next(1 << 20)
				}
			}
		}
		dict := make(map[int64]struct{})
		chosen := chooseSegCodec(vals, false, dict)
		sizes := make([]int, numSegCodecs)
		for codec := uint8(0); codec < numSegCodecs; codec++ {
			sizes[codec] = len(appendSegBody(nil, codec, vals, false))
		}
		for codec := uint8(0); codec < numSegCodecs; codec++ {
			if sizes[codec] < sizes[chosen] {
				t.Fatalf("trial %d: model chose %s (%d bytes) but %s is %d bytes",
					trial, segCodecNames[chosen], sizes[chosen], segCodecNames[codec], sizes[codec])
			}
		}
	}
}

// TestDecodeSegCorrupt: oversized or malformed segment claims fail with
// ErrBadFormat before any unbounded allocation.
func TestDecodeSegCorrupt(t *testing.T) {
	out := make([]int64, 16)
	cases := map[string]struct {
		codec uint8
		body  []byte
		n     int
	}{
		"rle run overflows count": {segRLE, []byte{2 /*val=1*/, 40 /*run=40*/}, 16},
		"rle zero run":            {segRLE, []byte{2, 0}, 16},
		"rle truncated":           {segRLE, []byte{2}, 16},
		"dict zero values":        {segDict, []byte{0}, 16},
		"dict more than rows":     {segDict, []byte{17}, 16},
		"dict wrong width":        {segDict, []byte{2, 2, 4, 9 /*width 9, want 1*/, 0, 0}, 16},
		"dict truncated packed":   {segDict, []byte{2, 2, 4, 1 /*width 1*/, 0}, 16},
		"dict index oob is impossible by width": {segDict,
			// ndict=3 width=2: packed index 3 is representable but out of dict.
			[]byte{3, 2, 4, 6, 2, 0xFF, 0xFF, 0xFF, 0xFF}, 16},
		"for width over 64":  {segFOR, []byte{0, 65}, 16},
		"for truncated body": {segFOR, []byte{0, 8, 1, 2}, 16},
		"unknown codec":      {numSegCodecs, []byte{}, 4},
	}
	for name, tc := range cases {
		c := &byteCursor{b: tc.body}
		err := decodeSegVals(c, tc.codec, tc.n, false, out[:tc.n])
		if err == nil {
			t.Errorf("%s: decode succeeded", name)
			continue
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: error %v is not ErrBadFormat", name, err)
		}
	}
}

// TestFlateBombGuardAllCodecs: a flate frame of any payload kind — row,
// v2.1 columnar, v2.2 columnar — whose declared decompressed length exceeds
// maxFlateRatio times the compressed bytes is rejected as ErrBadFormat
// before any allocation backs the claim.
func TestFlateBombGuardAllCodecs(t *testing.T) {
	for _, kind := range []payloadKind{payloadRow, payloadCol, payloadColV22} {
		_, flateCodec := frameCodecs(kind)
		// A tiny compressed body claiming a huge decompressed length.
		body := []byte{0x01, 0x02}
		frame := []byte{flateCodec}
		frame = binary.AppendUvarint(frame, uint64(len(body))*maxFlateRatio+1) // rawLen
		frame = binary.AppendUvarint(frame, uint64(len(body)))                 // compLen
		frame = append(frame, body...)
		if _, _, err := unwrapFrame(frame); !errors.Is(err, ErrBadFormat) {
			t.Errorf("codec %d: bomb claim error = %v, want ErrBadFormat", flateCodec, err)
		}
		// At exactly the ratio the claim is admissible (the flate stream
		// itself is garbage here, which must also surface as ErrBadFormat,
		// not a panic).
		frame = []byte{flateCodec}
		frame = binary.AppendUvarint(frame, uint64(len(body))*maxFlateRatio)
		frame = binary.AppendUvarint(frame, uint64(len(body)))
		frame = append(frame, body...)
		if _, _, err := unwrapFrame(frame); !errors.Is(err, ErrBadFormat) {
			t.Errorf("codec %d: garbage flate error = %v, want ErrBadFormat", flateCodec, err)
		}
	}
}

// TestV22CountClaimBounded: the v2.2 payload count check admits RLE's
// legitimate amplification (16K rows from a few dozen bytes) while still
// bounding the claim by the validated block geometry.
func TestV22CountClaimBounded(t *testing.T) {
	// Legitimate: a full default block from a tiny RLE payload.
	if err := checkPayloadCount(DefaultBlockEvents, 1+3*NumCols, DefaultBlockEvents, payloadColV22); err != nil {
		t.Errorf("RLE-amplified count rejected: %v", err)
	}
	// A claim above the block geometry is rejected.
	if err := checkPayloadCount(DefaultBlockEvents+1, 1<<16, DefaultBlockEvents, payloadColV22); err == nil {
		t.Error("count above block size accepted")
	}
	// A non-empty block needs at least one codec byte + minimal body per
	// segment.
	if err := checkPayloadCount(1, 3, DefaultBlockEvents, payloadColV22); err == nil {
		t.Error("count with sub-minimal payload accepted")
	}
	// v2.1 kinds keep the strict per-event floor.
	if err := checkPayloadCount(1000, 5036, DefaultBlockEvents, payloadCol); err == nil {
		t.Error("v2.1 count with unbacked payload accepted")
	}
}

// TestDecodeSegRuns: RLE run summaries round-trip, and malformed run claims
// fail with ErrBadFormat.
func TestDecodeSegRuns(t *testing.T) {
	vals := []int64{5, 5, 5, -2, -2, 9, 9, 9, 9}
	body := appendSegBody(nil, segRLE, vals, false)
	runs, err := decodeSegRuns(&byteCursor{b: body}, len(vals), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Run{{5, 3}, {-2, 2}, {9, 4}}
	if len(runs) != len(want) {
		t.Fatalf("got %d runs, want %d", len(runs), len(want))
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("run %d = %+v, want %+v", i, runs[i], want[i])
		}
	}
	if _, err := decodeSegRuns(&byteCursor{b: []byte{2, 200}}, 9, false, nil); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("oversized run error = %v, want ErrBadFormat", err)
	}
}

// TestAppendSegV22Validation: full segments decoded through decodeSegV22
// enforce the v2.1 value rules (negative ranks rejected) and Start/End
// delta chains accumulate correctly.
func TestAppendSegV22Validation(t *testing.T) {
	evs := []Event{
		{Rank: 3, Start: 100, End: 150},
		{Rank: 5, Start: 120, End: 180},
		{Rank: 5, Start: 90, End: 200}, // out-of-order start: negative delta
	}
	sc := segScratchPool.Get().(*segScratch)
	defer segScratchPool.Put(sc)

	var cols Columns
	cols.grow(len(evs))
	for _, col := range []int{colRankIdx(), colStartIdx(), colEndIdx()} {
		for force := -1; force < numSegCodecs; force++ {
			seg, _ := appendSegV22(nil, col, evs, force, sc)
			c := &byteCursor{b: seg}
			if err := decodeSegV22(c, col, len(evs), &cols); err != nil {
				t.Fatalf("col %d force %d: %v", col, force, err)
			}
		}
	}
	for i, ev := range evs {
		if cols.Rank[i] != ev.Rank || cols.Start[i] != int64(ev.Start) || cols.End[i] != int64(ev.End) {
			t.Fatalf("row %d: got rank=%d start=%d end=%d, want %+v",
				i, cols.Rank[i], cols.Start[i], cols.End[i], ev)
		}
	}

	// A segment carrying a negative rank must be rejected on decode.
	bad := append([]byte{segRaw}, appendSegBody(nil, segRaw, []int64{-1, 2, 3}, false)...)
	if err := decodeSegV22(&byteCursor{b: bad}, colRankIdx(), 3, &cols); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("negative rank error = %v, want ErrBadFormat", err)
	}
}

func colIdxOf(set ColSet) int {
	for i := 0; i < NumCols; i++ {
		if ColSet(1)<<i == set {
			return i
		}
	}
	panic("unknown column")
}

func colRankIdx() int  { return colIdxOf(ColRank) }
func colStartIdx() int { return colIdxOf(ColStart) }
func colEndIdx() int   { return colIdxOf(ColEnd) }
