package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// encodeV2 writes tr with the given options and returns the log bytes.
func encodeV2(t *testing.T, tr *Trace, opt V2Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteV2With(&buf, tr, opt); err != nil {
		t.Fatalf("WriteV2With: %v", err)
	}
	return buf.Bytes()
}

// assertTraceEqual compares two traces field by field, failing on the first
// mismatching event so a diff is readable.
func assertTraceEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if !reflect.DeepEqual(want.Meta, got.Meta) {
		t.Errorf("meta mismatch:\n%+v\n%+v", want.Meta, got.Meta)
	}
	if !reflect.DeepEqual(want.Apps, got.Apps) {
		t.Error("apps mismatch")
	}
	if !reflect.DeepEqual(want.Files, got.Files) {
		t.Error("files mismatch")
	}
	if !reflect.DeepEqual(want.Samples, got.Samples) {
		t.Error("samples mismatch")
	}
	if len(want.Events) != len(got.Events) {
		t.Fatalf("event count %d != %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if want.Events[i] != got.Events[i] {
			t.Fatalf("event %d mismatch: %+v != %+v", i, got.Events[i], want.Events[i])
		}
	}
}

func TestV2RoundTripScanner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name string
		opt  V2Options
		n    int
	}{
		{"default", V2Options{}, 5000},
		{"multi-block", V2Options{BlockEvents: 512}, 5000},
		{"exact-blocks", V2Options{BlockEvents: 100}, 500},
		{"compressed", V2Options{Compress: true, BlockEvents: 512}, 5000},
		{"single-event", V2Options{}, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig := randomTrace(rng, tc.n)
			data := encodeV2(t, orig, tc.opt)
			got, err := Read(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			assertTraceEqual(t, orig, got)
		})
	}
}

func TestV2RoundTripBlockReader(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct {
		name string
		opt  V2Options
	}{
		{"raw", V2Options{BlockEvents: 512}},
		{"compressed", V2Options{BlockEvents: 512, Compress: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig := randomTrace(rng, 3000)
			data := encodeV2(t, orig, tc.opt)
			br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatalf("NewBlockReader: %v", err)
			}
			if br.NumEvents() != uint64(len(orig.Events)) {
				t.Fatalf("NumEvents = %d, want %d", br.NumEvents(), len(orig.Events))
			}
			if br.BlockEvents() != 512 {
				t.Fatalf("BlockEvents = %d, want 512", br.BlockEvents())
			}
			got := br.Header()
			for k := 0; k < br.NumBlocks(); k++ {
				evs, err := br.DecodeEvents(k, nil)
				if err != nil {
					t.Fatalf("DecodeEvents(%d): %v", k, err)
				}
				got.Events = append(got.Events, evs...)
			}
			assertTraceEqual(t, orig, got)
		})
	}
}

// TestV2DecodeColumnsMatchesEvents: the zero-copy columnar decode and the
// row-major decode of the same block agree field for field.
func TestV2DecodeColumnsMatchesEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := randomTrace(rng, 2500)
	data := encodeV2(t, orig, V2Options{BlockEvents: 1000})
	br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var cols Columns
	for k := 0; k < br.NumBlocks(); k++ {
		evs, err := br.DecodeEvents(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := br.DecodeColumns(k, &cols); err != nil {
			t.Fatal(err)
		}
		if cols.N != len(evs) {
			t.Fatalf("block %d: columns hold %d rows, events %d", k, cols.N, len(evs))
		}
		for i, e := range evs {
			if cols.Level[i] != uint8(e.Level) || cols.Op[i] != uint8(e.Op) ||
				cols.Lib[i] != uint8(e.Lib) || cols.Rank[i] != e.Rank ||
				cols.Node[i] != e.Node || cols.App[i] != e.App ||
				cols.File[i] != e.File || cols.Offset[i] != e.Offset ||
				cols.Size[i] != e.Size || cols.Start[i] != int64(e.Start) ||
				cols.End[i] != int64(e.End) {
				t.Fatalf("block %d row %d: columnar decode diverges from %+v", k, i, e)
			}
		}
	}
}

// TestV2EncodeDeterministic: the writer's output is byte-identical at every
// parallelism setting — the contract that makes the parallel encoder safe to
// use for reproducible artifacts.
func TestV2EncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig := randomTrace(rng, 20000)
	for _, compress := range []bool{false, true} {
		want := encodeV2(t, orig, V2Options{BlockEvents: 1024, Compress: compress, Parallelism: 1})
		for _, par := range []int{0, 2, 4, 8} {
			got := encodeV2(t, orig, V2Options{BlockEvents: 1024, Compress: compress, Parallelism: par})
			if !bytes.Equal(want, got) {
				t.Errorf("compress=%v: output differs between Parallelism=1 and %d", compress, par)
			}
		}
	}
}

// TestV2FooterStats: every footer entry's count and time bounds match the
// events actually stored in its block.
func TestV2FooterStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig := randomTrace(rng, 3300)
	const be = 1000
	data := encodeV2(t, orig, V2Options{BlockEvents: be})
	br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if want := (len(orig.Events) + be - 1) / be; br.NumBlocks() != want {
		t.Fatalf("NumBlocks = %d, want %d", br.NumBlocks(), want)
	}
	for k := 0; k < br.NumBlocks(); k++ {
		bi := br.BlockAt(k)
		lo, hi := k*be, (k+1)*be
		if hi > len(orig.Events) {
			hi = len(orig.Events)
		}
		if bi.Count != hi-lo {
			t.Errorf("block %d: Count = %d, want %d", k, bi.Count, hi-lo)
		}
		min, max := orig.Events[lo].Start, orig.Events[lo].Start
		for _, e := range orig.Events[lo:hi] {
			if e.Start < min {
				min = e.Start
			}
			if e.Start > max {
				max = e.Start
			}
		}
		if bi.MinStart != min || bi.MaxStart != max {
			t.Errorf("block %d: bounds [%v,%v], want [%v,%v]", k, bi.MinStart, bi.MaxStart, min, max)
		}
	}
}

func TestV2EmptyTrace(t *testing.T) {
	data := encodeV2(t, &Trace{}, V2Options{})
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read empty: %v", err)
	}
	if len(got.Events) != 0 {
		t.Error("empty trace not empty after round trip")
	}
	br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewBlockReader empty: %v", err)
	}
	if br.NumBlocks() != 0 || br.NumEvents() != 0 {
		t.Errorf("empty log claims %d blocks, %d events", br.NumBlocks(), br.NumEvents())
	}
}

// TestV2SmallerThanV1Stream: sanity-check the compressed encoding actually
// shrinks the log (the raw block framing costs a few bytes per block).
func TestV2CompressShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	orig := randomTrace(rng, 20000)
	raw := encodeV2(t, orig, V2Options{})
	comp := encodeV2(t, orig, V2Options{Compress: true})
	if len(comp) >= len(raw) {
		t.Errorf("compressed log (%d bytes) not smaller than raw (%d bytes)", len(comp), len(raw))
	}
}

// TestV2Corruption: truncations and byte flips across the whole log must
// surface as errors — wrapped in ErrBadFormat when the log structure itself
// is at fault — and never panic.
func TestV2Corruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := randomTrace(rng, 2000)
	full := encodeV2(t, orig, V2Options{BlockEvents: 256})

	t.Run("truncation-scanner", func(t *testing.T) {
		// The scanner streams the event section and never touches the
		// footer, so cuts must land before the last block frame ends.
		br, err := NewBlockReader(bytes.NewReader(full), int64(len(full)))
		if err != nil {
			t.Fatal(err)
		}
		last := br.BlockAt(br.NumBlocks() - 1)
		eventEnd := int(last.Offset + last.Len)
		for _, cut := range []int{4, len(magicV2), eventEnd / 4, eventEnd / 2, eventEnd - 1} {
			if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
				t.Errorf("truncation at %d not detected by scanner", cut)
			}
		}
	})
	t.Run("truncation-blockreader", func(t *testing.T) {
		for _, cut := range []int{0, 4, len(magicV2), len(full) / 2, len(full) - 1, len(full) - trailerLen} {
			data := full[:cut]
			_, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
			if err == nil {
				t.Errorf("truncation at %d not detected by block reader", cut)
			} else if !errors.Is(err, ErrBadFormat) {
				t.Errorf("truncation at %d: error %v does not wrap ErrBadFormat", cut, err)
			}
		}
	})
	t.Run("bad-footer-magic", func(t *testing.T) {
		data := append([]byte(nil), full...)
		data[len(data)-1] ^= 0xff
		if _, err := NewBlockReader(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrBadFormat) {
			t.Errorf("corrupt footer magic: got %v", err)
		}
	})
	t.Run("oversized-footer-len", func(t *testing.T) {
		data := append([]byte(nil), full...)
		for i := 0; i < 8; i++ {
			data[len(data)-trailerLen+i] = 0xff
		}
		if _, err := NewBlockReader(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrBadFormat) {
			t.Errorf("oversized footer length: got %v", err)
		}
	})
	t.Run("flipped-block-byte", func(t *testing.T) {
		// Flip one byte inside the first block frame. The index still
		// parses, so the failure must surface at decode time as
		// ErrBadFormat (a length/claim mismatch) or as divergent events —
		// never a panic.
		br, err := NewBlockReader(bytes.NewReader(full), int64(len(full)))
		if err != nil {
			t.Fatal(err)
		}
		bi := br.BlockAt(0)
		data := append([]byte(nil), full...)
		data[bi.Offset+bi.Len/2] ^= 0xff
		br2, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("index rejected flip with non-format error %v", err)
			}
			return
		}
		if _, err := br2.DecodeEvents(0, nil); err != nil && !errors.Is(err, ErrBadFormat) {
			t.Errorf("decode of flipped block: error %v does not wrap ErrBadFormat", err)
		}
	})
	t.Run("garbage-after-magic", func(t *testing.T) {
		data := append([]byte(magicV2), bytes.Repeat([]byte{0xff}, 64)...)
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Error("scanner accepted garbage body")
		}
		if _, err := NewBlockReader(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrBadFormat) {
			t.Error("block reader accepted garbage body")
		}
	})
	t.Run("v1-log-rejected-by-blockreader", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Fatal(err)
		}
		if _, err := NewBlockReader(bytes.NewReader(buf.Bytes()), int64(buf.Len())); !errors.Is(err, ErrBadFormat) {
			t.Error("block reader accepted a VANITRC1 log")
		}
	})
}

// TestV2CountClaimBounded: a block whose event-count claim is unbacked by
// payload bytes is rejected before any allocation happens.
func TestV2CountClaimBounded(t *testing.T) {
	if err := checkBlockCount(1<<19, 64, maxBlockEvents); err == nil {
		t.Error("huge count over tiny payload accepted")
	}
	if err := checkBlockCount(10, 2+10*minEventBytes, 16); err != nil {
		t.Errorf("valid count rejected: %v", err)
	}
	if err := checkBlockCount(17, 1<<20, 16); err == nil {
		t.Error("count above block size accepted")
	}
}

func TestFormatParseAndString(t *testing.T) {
	for s, want := range map[string]Format{
		"v1": FormatV1, "1": FormatV1, magic: FormatV1,
		"v2": FormatV2, "2": FormatV2, magicV2: FormatV2,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFormat("v3"); err == nil {
		t.Error("ParseFormat accepted v3")
	}
	if FormatV1.String() != "v1" || FormatV2.String() != "v2" {
		t.Error("Format.String names wrong")
	}
}

func TestSniffMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := randomTrace(rng, 10)
	var v1buf, v2buf bytes.Buffer
	if err := WriteFormat(&v1buf, tr, FormatV1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFormat(&v2buf, tr, FormatV2); err != nil {
		t.Fatal(err)
	}
	if f, ok := SniffMagic(v1buf.Bytes()); !ok || f != FormatV1 {
		t.Errorf("v1 sniff = %v, %v", f, ok)
	}
	if f, ok := SniffMagic(v2buf.Bytes()); !ok || f != FormatV2 {
		t.Errorf("v2 sniff = %v, %v", f, ok)
	}
	if _, ok := SniffMagic([]byte("short")); ok {
		t.Error("short head sniffed as a trace")
	}
	if _, ok := SniffMagic([]byte("NOTATRACE")); ok {
		t.Error("garbage sniffed as a trace")
	}
}

// TestV2ScannerSmallBatches: the streaming scanner hands out correct events
// across block boundaries regardless of the caller's batch size.
func TestV2ScannerSmallBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig := randomTrace(rng, 1000)
	data := encodeV2(t, orig, V2Options{BlockEvents: 64})
	s, err := NewScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	buf := make([]Event, 7) // deliberately misaligned with the block size
	for {
		n, err := s.Next(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("Next: %v", err)
			}
			break
		}
	}
	if len(got) != len(orig.Events) {
		t.Fatalf("scanned %d events, want %d", len(got), len(orig.Events))
	}
	for i := range got {
		if got[i] != orig.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

// TestV2BlockEventsClamped: absurd BlockEvents settings clamp to the
// decoder's acceptance bound instead of producing unreadable logs.
func TestV2BlockEventsClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	orig := randomTrace(rng, 100)
	data := encodeV2(t, orig, V2Options{BlockEvents: maxBlockEvents * 4})
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("clamped log unreadable: %v", err)
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatal("clamped log lost events")
	}
}
