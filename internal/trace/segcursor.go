package trace

// SegCursor: compressed-domain access to one encoded v2.2 column segment,
// the substrate the analyzer's kernel registry runs on without materializing
// rows:
//
//   - RLE segments iterate as value runs (Runs / AppendRuns).
//   - Dict segments expose the dictionary (NumCodes / DictVal) plus
//     streaming code-space iteration (ForEachCode) — a predicate translates
//     into the code domain once per block, group-bys key on codes and join
//     the dictionary at the end, and AppendRuns coalesces adjacent equal
//     codes into value runs.
//   - FOR segments answer min/max/sum straight from the stored base and the
//     packed offsets (FORStats) without unpacking into an []int64.
//
// Construction validates every wire claim — run totals, dictionary size and
// pack width, packed byte lengths, code bounds, trailing bytes — so corrupt
// segments surface as ErrBadFormat from SegCursorAt and the iteration
// methods themselves cannot fail. Start and End never get a cursor: their
// segments store delta chains, whose runs and ranges are not value runs or
// value ranges.

import (
	"fmt"
	"sync"
)

// SegCursor is a validated read cursor over one encoded v2.2 column
// segment. The zero value is not useful; cursors come from
// BlockData.SegCursorAt.
type SegCursor struct {
	codec    uint8
	n        int
	unsigned bool

	runs []Run // segRLE: the decoded run summary

	dict   []int64 // segDict: stored values in first-appearance order
	packed []byte  // segDict: bit-packed codes; segFOR: bit-packed offsets
	width  uint

	base int64 // segFOR: the stored base (the encoder writes the minimum)
}

// segCursorFree recycles cursors (with their run and dictionary backing)
// between blocks, so steady-state compressed-domain scans construct
// cursors without allocating. A bounded freelist rather than a sync.Pool:
// cursor construction sits on the per-block critical path of every
// compressed-domain scan, and a pool's per-GC victim clearing would
// re-allocate the cursor and its backing on every collection cycle. The
// cap bounds retention; the critical section is a few pointer moves
// against milliseconds of per-block decode, so contention is negligible.
var segCursorFree struct {
	mu sync.Mutex
	s  []*SegCursor
}

const segCursorFreeCap = 16

func getSegCursor() *SegCursor {
	segCursorFree.mu.Lock()
	if n := len(segCursorFree.s); n > 0 {
		sc := segCursorFree.s[n-1]
		segCursorFree.s = segCursorFree.s[:n-1]
		segCursorFree.mu.Unlock()
		return sc
	}
	segCursorFree.mu.Unlock()
	return new(SegCursor)
}

// newSegCursor builds a cursor over one segment body (codec id byte already
// stripped). It returns (nil, nil) for codecs without compressed-domain
// structure (raw segments) and ErrBadFormat for any invalid wire claim.
func newSegCursor(codec uint8, body []byte, n int, unsigned bool) (*SegCursor, error) {
	if n <= 0 {
		return nil, nil
	}
	sc := getSegCursor()
	*sc = SegCursor{codec: codec, n: n, unsigned: unsigned, runs: sc.runs[:0], dict: sc.dict[:0]}
	c := &byteCursor{b: body}
	switch codec {
	case segRLE:
		runs, err := decodeSegRuns(c, n, unsigned, sc.runs)
		if err != nil {
			sc.Release()
			return nil, err
		}
		sc.runs = runs
	case segDict:
		nd := c.uvarint()
		if c.err != nil {
			sc.Release()
			return nil, c.err
		}
		if nd == 0 || nd > uint64(n) {
			sc.Release()
			return nil, badf("dictionary of %d values for %d rows", nd, n)
		}
		dict := sc.dict
		if cap(dict) < int(nd) {
			dict = make([]int64, nd)
		} else {
			dict = dict[:nd]
		}
		for i := range dict {
			dict[i] = c.storedValue(unsigned)
		}
		if c.err != nil {
			sc.dict = dict[:0]
			sc.Release()
			return nil, c.err
		}
		sc.dict = dict
		w, err := c.widthByte(32)
		if err != nil {
			sc.Release()
			return nil, err
		}
		if want := bitsFor(nd - 1); w != want {
			sc.Release()
			return nil, badf("dictionary of %d values packed at %d bits, want %d", nd, w, want)
		}
		packed, err := c.take(packedLen(n, w))
		if err != nil {
			sc.Release()
			return nil, err
		}
		// Validate every code up front so iteration never has to.
		bad := -1
		unpackEach(packed, n, w, func(u uint64) bool {
			if u >= nd {
				bad = int(u)
				return false
			}
			return true
		})
		if bad >= 0 {
			sc.Release()
			return nil, badf("dictionary index %d out of %d", bad, nd)
		}
		sc.packed, sc.width = packed, w
	case segFOR:
		base := c.storedValue(unsigned)
		if c.err != nil {
			sc.Release()
			return nil, c.err
		}
		w, err := c.widthByte(64)
		if err != nil {
			sc.Release()
			return nil, err
		}
		packed, err := c.take(packedLen(n, w))
		if err != nil {
			sc.Release()
			return nil, err
		}
		sc.base, sc.packed, sc.width = base, packed, w
	default:
		sc.Release()
		return nil, nil
	}
	if c.off != len(c.b) {
		sc.Release()
		return nil, badf("%d trailing bytes after segment body", len(c.b)-c.off)
	}
	return sc, nil
}

// Release returns the cursor to an internal freelist, retaining its run and
// dictionary backing for the next construction. Releasing is optional —
// unreleased cursors are ordinary garbage — but a released cursor, and any
// slice previously obtained from its Runs, must not be used afterwards.
// Safe on nil.
func (sc *SegCursor) Release() {
	if sc == nil {
		return
	}
	*sc = SegCursor{runs: sc.runs[:0], dict: sc.dict[:0]}
	segCursorFree.mu.Lock()
	if len(segCursorFree.s) < segCursorFreeCap {
		segCursorFree.s = append(segCursorFree.s, sc)
	}
	segCursorFree.mu.Unlock()
}

// Codec returns the segment codec id the cursor runs over.
func (sc *SegCursor) Codec() uint8 { return sc.codec }

// Rows returns the number of rows the segment encodes.
func (sc *SegCursor) Rows() int { return sc.n }

// Runs returns the RLE run summary, or nil for non-RLE segments. The slice
// is owned by the cursor; use AppendRuns for a uniform run view that also
// covers dictionary segments.
func (sc *SegCursor) Runs() []Run {
	if sc.codec != segRLE {
		return nil
	}
	return sc.runs
}

// AppendRuns appends the segment's value runs to dst: RLE runs verbatim,
// dictionary segments as adjacent equal codes coalesced through the
// dictionary, and FOR segments as adjacent equal base+offset values
// coalesced from the packed stream (width 0 — how the cost model stores
// single-valued columns like App — is one run covering every row). A FOR
// segment over a run-structured column (the cost model prefers FOR when
// the value range is tight, not only when values vary per row) thus
// serves the run kernels just like RLE and dict do; pathological
// high-cardinality cases are bounded by the callers' density caps.
func (sc *SegCursor) AppendRuns(dst []Run) []Run {
	dst, _ = sc.AppendRunsMax(dst, 0)
	return dst
}

// AppendRunsMax is AppendRuns with the caller's density cap pushed down
// into the decode: once more than max runs would be emitted the walk stops
// and ok reports false, with dst returned truncated to its prior length —
// so a dense segment (a FOR-packed column whose values alternate per row)
// costs O(max) instead of a full run materialization that the caller would
// drop anyway. max <= 0 means unbounded.
func (sc *SegCursor) AppendRunsMax(dst []Run, max int) (runs []Run, ok bool) {
	base := len(dst)
	over := false
	emit := func(r Run) bool {
		if max > 0 && len(dst)-base >= max {
			over = true
			return false
		}
		dst = append(dst, r)
		return true
	}
	switch sc.codec {
	case segRLE:
		if max > 0 && len(sc.runs) > max {
			return dst, false
		}
		return append(dst, sc.runs...), true
	case segFOR:
		if sc.width == 0 {
			return append(dst, Run{Val: sc.base, N: int32(sc.n)}), true
		}
		b := uint64(sc.base)
		var cur uint64
		var run int32
		first := true
		unpackEach(sc.packed, sc.n, sc.width, func(u uint64) bool {
			if first {
				cur, run, first = u, 1, false
				return true
			}
			if u == cur {
				run++
				return true
			}
			if !emit(Run{Val: int64(b + cur), N: run}) {
				return false
			}
			cur, run = u, 1
			return true
		})
		if !first && !over {
			emit(Run{Val: int64(b + cur), N: run})
		}
	case segDict:
		var cur uint64
		var run int32
		first := true
		unpackEach(sc.packed, sc.n, sc.width, func(u uint64) bool {
			if first {
				cur, run, first = u, 1, false
				return true
			}
			if u == cur {
				run++
				return true
			}
			if !emit(Run{Val: sc.dict[cur], N: run}) {
				return false
			}
			cur, run = u, 1
			return true
		})
		if !first && !over {
			emit(Run{Val: sc.dict[cur], N: run})
		}
	}
	if over {
		return dst[:base], false
	}
	return dst, true
}

// CutRunsSel streams the segment's value runs cut against a selection's
// spans: exactly CutRuns(sc.AppendRuns(nil), spans, dst, max), but fused
// into the decode walk so the block-level run list never materializes —
// peak extra memory is the bounded output, the walk stops the moment the
// bound is passed or the last span is consumed, and a column that is
// block-dense yet selection-sparse (thousands of block runs thinned under
// the cap by a narrow selection) still serves. ok reports false when the
// cut would exceed max (> 0), with dst returned truncated to its prior
// length; raw segments and empty span lists cut to nothing with ok true.
func (sc *SegCursor) CutRunsSel(spans []SelSpan, dst []Run, max int) (runs []Run, ok bool) {
	if len(spans) == 0 {
		return dst, true
	}
	switch sc.codec {
	case segRLE:
		// Runs are already materialized in the cursor; the bounded cut's
		// counting pre-pass sizes the output exactly.
		res := CutRuns(sc.runs, spans, dst, max)
		if res == nil && max > 0 {
			// Over the bound — or an empty cut with nil dst, which the
			// caller cannot use either way.
			return dst, false
		}
		return res, true
	case segFOR, segDict:
	default:
		return dst, true
	}
	base := len(dst)
	over := false
	si := 0
	rs := int32(0) // block row where the current streamed run begins
	// emit intersects one streamed run [rs, re) of value v with the spans,
	// mirroring CutRuns's emission (adjacent equal values coalesce, also
	// across span gaps). It reports whether the walk should continue.
	emit := func(v int64, re int32) bool {
		for si < len(spans) && spans[si].Lo+spans[si].N <= rs {
			si++
		}
		for s := si; s < len(spans) && spans[s].Lo < re; s++ {
			a, b := spans[s].Lo, spans[s].Lo+spans[s].N
			if rs > a {
				a = rs
			}
			if re < b {
				b = re
			}
			if b <= a {
				continue
			}
			if n := len(dst); n > 0 && dst[n-1].Val == v {
				dst[n-1].N += b - a
			} else {
				if max > 0 && len(dst)-base >= max {
					over = true
					return false
				}
				dst = append(dst, Run{Val: v, N: b - a})
			}
		}
		rs = re
		return si < len(spans)
	}
	val := func(u uint64) int64 { return sc.dict[u] }
	if sc.codec == segFOR {
		if sc.width == 0 {
			emit(sc.base, int32(sc.n))
			return dst, true
		}
		b := uint64(sc.base)
		val = func(u uint64) int64 { return int64(b + u) }
	}
	var cur uint64
	var run int32
	first := true
	unpackEach(sc.packed, sc.n, sc.width, func(u uint64) bool {
		if first {
			cur, run, first = u, 1, false
			return true
		}
		if u == cur {
			run++
			return true
		}
		if !emit(val(cur), rs+run) {
			return false
		}
		cur, run = u, 1
		return true
	})
	if !over && !first && si < len(spans) {
		emit(val(cur), rs+run)
	}
	if over {
		return dst[:base], false
	}
	return dst, true
}

// NumCodes returns the dictionary size, or 0 for non-dict segments.
func (sc *SegCursor) NumCodes() int {
	if sc.codec != segDict {
		return 0
	}
	return len(sc.dict)
}

// DictVal returns the stored value for a dictionary code. Codes come from
// ForEachCode, which only ever yields validated codes below NumCodes.
func (sc *SegCursor) DictVal(code uint32) int64 { return sc.dict[code] }

// ForEachCode streams the segment's dictionary codes in row order without
// materializing them; fn returning false stops the walk. It reports whether
// the cursor is a dict cursor at all.
func (sc *SegCursor) ForEachCode(fn func(code uint32) bool) bool {
	if sc.codec != segDict {
		return false
	}
	unpackEach(sc.packed, sc.n, sc.width, func(u uint64) bool { return fn(uint32(u)) })
	return true
}

// ConstVal reports the single value every row stores when the segment is a
// width-0 FOR constant, the encoding the cost model picks for single-valued
// columns.
func (sc *SegCursor) ConstVal() (int64, bool) {
	if sc.codec == segFOR && sc.width == 0 {
		return sc.base, true
	}
	return 0, false
}

// FORStats answers min, max and sum over a FOR segment straight from the
// stored base and packed offsets, without unpacking into an []int64. All
// arithmetic is mod 2^64, exactly matching a sum over the decoded values.
func (sc *SegCursor) FORStats() (min, max, sum int64, ok bool) {
	if sc.codec != segFOR {
		return 0, 0, 0, false
	}
	b := uint64(sc.base)
	if sc.width == 0 {
		return sc.base, sc.base, int64(b * uint64(sc.n)), true
	}
	var mn, mx, s uint64
	first := true
	unpackEach(sc.packed, sc.n, sc.width, func(u uint64) bool {
		if first {
			mn, mx, first = u, u, false
		} else if u < mn {
			mn = u
		} else if u > mx {
			mx = u
		}
		s += u
		return true
	})
	return int64(b + mn), int64(b + mx), int64(b*uint64(sc.n) + s), true
}

// unpackEach streams n width-bit LSB-first values from src through fn
// without materializing them; fn returning false stops the walk. src must
// hold packedLen(n, width) bytes (the callers validated it with take).
func unpackEach(src []byte, n int, width uint, fn func(u uint64) bool) {
	if width == 0 {
		for i := 0; i < n; i++ {
			if !fn(0) {
				return
			}
		}
		return
	}
	mask := uint64(1)<<width - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	var lo, hi uint64 // 128-bit window: bits fill lo first
	var nb uint
	pos := 0
	for i := 0; i < n; i++ {
		for nb < width {
			b := uint64(src[pos])
			pos++
			if nb < 64 {
				lo |= b << nb
				if nb > 56 {
					hi |= b >> (64 - nb)
				}
			} else {
				hi |= b << (nb - 64)
			}
			nb += 8
		}
		if !fn(lo & mask) {
			return
		}
		lo = lo>>width | hi<<(64-width)
		if width == 64 {
			lo = hi
		}
		hi >>= width
		nb -= width
	}
}

// SegCursorAt builds a compressed-domain cursor over column col's segment.
// It returns (nil, nil) when the column has no compressed-domain structure —
// raw segments, the Start/End delta chains, empty blocks, or blocks without
// v2.2 codec ids — and ErrBadFormat when the segment's wire claims are
// invalid. The cursor reads the block payload in place and is safe for
// concurrent use once built.
func (bd *BlockData) SegCursorAt(col int) (*SegCursor, error) {
	set := ColSet(1) << col
	if !bd.hasCodecs || bd.count == 0 || set&(ColStart|ColEnd) != 0 {
		return nil, nil
	}
	if bd.segCodecs[col] == segRaw {
		return nil, nil
	}
	off := int64(bd.segBase)
	for i := 0; i < col; i++ {
		off += bd.colLens[i]
	}
	cur, err := newSegCursor(bd.segCodecs[col], bd.payload[off+1:off+bd.colLens[col]], bd.count, set&unsignedCols != 0)
	if err != nil {
		return nil, fmt.Errorf("block %d %s column: %w", bd.block, colNames[col], err)
	}
	return cur, nil
}

// ValueRuns returns the value-run summary of a column in the compressed
// domain: RLE runs directly, dictionary and FOR segments as coalesced
// value runs. It returns (nil, nil) for columns without run structure
// (raw codec, Start/End, non-v2.2 blocks). A superset of DecodeRuns.
func (bd *BlockData) ValueRuns(col int) ([]Run, error) {
	cur, err := bd.SegCursorAt(col)
	if err != nil || cur == nil {
		return nil, err
	}
	switch cur.codec {
	case segRLE:
		return cur.runs, nil
	case segDict, segFOR:
		return cur.AppendRuns(nil), nil
	}
	return nil, nil
}
