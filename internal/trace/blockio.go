package trace

// VANITRC2: a block-structured trace log whose event section decodes in
// independent fixed-size blocks, so ingest parallelizes the way the paper's
// parquet row groups do for DASK. The header is byte-identical to
// VANITRC1's; the event log is reshaped into self-contained blocks (each
// with its own time base for delta encoding, optionally flate-compressed),
// followed by a seekable block-index footer.
//
// Layout:
//
//	magic "VANITRC2" (8 bytes)
//	header            (same bytes as VANITRC1: meta, apps, files, samples)
//	uvarint blockEvents   events per block (last block may hold fewer)
//	uvarint eventCount
//	uvarint blockCount    == ceil(eventCount/blockEvents)
//	blockCount × frame:
//	    byte codec            0 = raw row, 1 = flate row,
//	                          2 = raw columnar, 3 = flate columnar,
//	                          4 = raw columnar v2.2, 5 = flate columnar v2.2
//	    uvarint rawLen        decoded payload length in bytes
//	    [uvarint compLen]     only for flate codecs
//	    payload               rawLen raw bytes, or compLen flate bytes
//	footer (v2.0, trailer magic "VANIIDX2"):
//	    uvarint blockCount
//	    blockCount × entry:
//	        uvarint offset    absolute file offset of the block frame
//	        uvarint frameLen  framed length in bytes
//	        uvarint count     events in the block
//	        varint  minStart  earliest event start (ns)
//	        varint  maxStart  latest event start (ns)
//	footer (v2.1, trailer magic "VANIIDX3"): each v2.0 entry followed by
//	        varint  minRank, maxRank
//	        uvarint levelMask, opMask   occupancy bitmasks
//	        NumCols × uvarint colLen    per-column segment byte lengths
//	footer (v2.2, trailer magic "VANIIDX4"): each v2.1 entry followed by
//	        NumCols × byte segCodec     per-column segment codec ids
//	(every footer ends with a fixed-size trailer)
//	    8 bytes LE footerLen  bytes from "uvarint blockCount" through entries
//	    footer magic (8 bytes)
//
// Row block payload (codecs 0/1 — the PR 2 layout, still written under
// V2Options.RowLayout and always readable):
//
//	uvarint count
//	varint  base              first event's Start (ns)
//	count × event: uvarint Level, Op, Lib; varint Rank, Node, App, File,
//	               Offset, Size, Start-prev, End-Start   (prev starts at base)
//
// Columnar block payload (codecs 2/3, written under Codec: CodecV21): see
// blockcol.go — one independent segment per column, byte-ranged by the
// v2.1 footer, so a scan plan decodes only the columns it names and skips
// blocks its predicates rule out.
//
// v2.2 columnar payload (codecs 4/5, the default): the same segment order,
// but every segment leads with a codec id byte and its body uses the
// lightweight encoding a per-block cost model chose — RLE, dictionary,
// frame-of-reference bit-packing, or the v2.1 raw varints (segcodec.go).
//
// Every block decodes with no state from its neighbors, so encode fans out
// over the worker pool at write time and decode fans out at read time —
// and, because blocks default to colstore's chunk size, a decoded block's
// column slices hand off to the analyzer's columnar store with no copy.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"vani/internal/parallel"
)

const (
	magicV2     = "VANITRC2"
	footerMagic = "VANIIDX2"

	// DefaultBlockEvents is the default number of events per block. It
	// matches colstore.ChunkRows so one decoded block fills exactly one
	// column chunk (asserted by a colstore test).
	DefaultBlockEvents = 1 << 14

	// maxBlockEvents bounds the per-block event count a decoder will
	// accept, capping allocation on corrupt input.
	maxBlockEvents = 1 << 20

	// minEventBytes is the smallest possible encoding of one event (11
	// varints of one byte each); count claims are validated against it.
	minEventBytes = 11

	// maxFlateRatio bounds the decompressed/compressed size a flate block
	// may claim, so rawLen cannot demand allocations unbacked by input.
	maxFlateRatio = 1032

	trailerLen = 16 // 8-byte LE footer length + footer magic
)

// Block payload codecs.
const (
	codecRaw   = 0
	codecFlate = 1
)

// Format identifies an on-disk trace log format version.
type Format int

// Supported formats.
const (
	FormatV1 Format = 1 // VANITRC1: one serial delta-encoded event stream
	FormatV2 Format = 2 // VANITRC2: block-structured, parallel decode
)

// String returns the flag-style name ("v1", "v2").
func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat parses a flag-style format name.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1", "1", magic:
		return FormatV1, nil
	case "v2", "2", magicV2:
		return FormatV2, nil
	}
	return 0, fmt.Errorf("unknown trace format %q (want v1 or v2)", s)
}

// SniffMagic reports the format of a log beginning with head (at least 8
// bytes), and whether head is a known trace magic at all.
func SniffMagic(head []byte) (Format, bool) {
	if len(head) < len(magic) {
		return 0, false
	}
	switch string(head[:len(magic)]) {
	case magic:
		return FormatV1, true
	case magicV2:
		return FormatV2, true
	}
	return 0, false
}

// badf wraps a decode failure in ErrBadFormat. Every error on the VANITRC2
// decode paths goes through it (or wraps ErrBadFormat directly), so corrupt
// input is always distinguishable from I/O failure by errors.Is.
func badf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{ErrBadFormat}, args...)...)
}

// CodecMode selects the columnar segment encoding the VANITRC2 writer
// uses. The zero value (CodecAuto) writes v2.2 payloads with per-segment
// codecs chosen by the cost model; CodecV21 writes the raw-varint v2.1
// layout; the remaining modes force one segment codec everywhere (the
// equivalence matrix exercises every decode kernel through them).
type CodecMode int

const (
	// CodecAuto (the default) writes v2.2 payloads, each segment encoded
	// with the codec the per-block cost model picks.
	CodecAuto CodecMode = iota
	// CodecV21 writes the v2.1 raw-varint columnar layout (VANIIDX3).
	CodecV21
	// CodecForceRaw..CodecForceFOR write v2.2 payloads with every segment
	// forced to one codec, regardless of size.
	CodecForceRaw
	CodecForceRLE
	CodecForceDict
	CodecForceFOR
)

// String returns the flag-style name.
func (m CodecMode) String() string {
	switch m {
	case CodecAuto:
		return "auto"
	case CodecV21:
		return "v21"
	case CodecForceRaw:
		return "raw"
	case CodecForceRLE:
		return "rle"
	case CodecForceDict:
		return "dict"
	case CodecForceFOR:
		return "for"
	}
	return fmt.Sprintf("CodecMode(%d)", int(m))
}

// ParseCodecMode parses a flag-style codec mode name.
func ParseCodecMode(s string) (CodecMode, error) {
	switch s {
	case "auto", "":
		return CodecAuto, nil
	case "v21", "v2.1", "off":
		return CodecV21, nil
	case "raw":
		return CodecForceRaw, nil
	case "rle":
		return CodecForceRLE, nil
	case "dict":
		return CodecForceDict, nil
	case "for", "pack":
		return CodecForceFOR, nil
	}
	return 0, fmt.Errorf("unknown codec mode %q (want auto, v21, raw, rle, dict or for)", s)
}

// forceSeg maps a CodecMode to the forced segment codec id, or -1 for the
// cost model.
func (m CodecMode) forceSeg() int {
	switch m {
	case CodecForceRaw:
		return segRaw
	case CodecForceRLE:
		return segRLE
	case CodecForceDict:
		return segDict
	case CodecForceFOR:
		return segFOR
	}
	return -1
}

// V2Options tunes the VANITRC2 writer.
type V2Options struct {
	// BlockEvents is the number of events per block; 0 means
	// DefaultBlockEvents. Values above maxBlockEvents are clamped.
	BlockEvents int
	// Compress flate-compresses block payloads (size-prefixed), trading
	// encode/decode CPU for trace size. With the default v2.2 codecs the
	// segments are already compact, so flate is an optional outer layer.
	Compress bool
	// Parallelism bounds the encode workers (0 = GOMAXPROCS, 1 = inline).
	// The output bytes are identical at every setting.
	Parallelism int
	// RowLayout writes the legacy v2.0 row-interleaved block payloads and
	// VANIIDX2 footer instead of columnar payloads. Row-layout logs decode
	// everywhere but cannot serve projected (per-column) reads.
	RowLayout bool
	// Codec selects the columnar segment encoding (ignored under
	// RowLayout). The zero value is CodecAuto: v2.2 with per-segment
	// cost-model choice.
	Codec CodecMode
}

// WriteFormat encodes the trace to out in the requested format, with
// default options.
func WriteFormat(out io.Writer, t *Trace, f Format) error {
	switch f {
	case FormatV1:
		return Write(out, t)
	case FormatV2:
		return WriteV2(out, t)
	}
	return fmt.Errorf("trace: unknown format %d", int(f))
}

// WriteV2 encodes the trace as a VANITRC2 block log with default options.
func WriteV2(out io.Writer, t *Trace) error {
	return WriteV2With(out, t, V2Options{})
}

// WriteV2With encodes the trace as a VANITRC2 block log. Blocks are encoded
// in parallel (encoding is embarrassingly parallel once the event log is
// sharded into blocks) and written in block order, so the output is
// byte-identical at any Parallelism.
func WriteV2With(out io.Writer, t *Trace, opt V2Options) error {
	be := opt.BlockEvents
	if be <= 0 {
		be = DefaultBlockEvents
	}
	if be > maxBlockEvents {
		be = maxBlockEvents
	}
	nEvents := len(t.Events)
	nBlocks := (nEvents + be - 1) / be

	w := &writer{w: bufio.NewWriterSize(out, 1<<16)}
	w.raw([]byte(magicV2))
	writeHeader(w, t)
	w.uvarint(uint64(be))
	w.uvarint(uint64(nEvents))
	w.uvarint(uint64(nBlocks))

	// Fan block encoding out over the worker pool; frames land in their
	// block's slot and are written strictly in block order below.
	v22 := !opt.RowLayout && opt.Codec != CodecV21
	force := opt.Codec.forceSeg()
	frames := make([][]byte, nBlocks)
	infos := make([]BlockInfo, nBlocks)
	parallel.ForEach(opt.Parallelism, nBlocks, func(k int) {
		lo := k * be
		hi := lo + be
		if hi > nEvents {
			hi = nEvents
		}
		evs := t.Events[lo:hi]
		switch {
		case opt.RowLayout:
			frames[k] = encodeBlockFrame(evs, opt.Compress)
			infos[k] = blockStats(evs)
		case v22:
			frames[k], infos[k] = encodeColumnarFrameV22(evs, opt.Compress, force)
		default:
			frames[k], infos[k] = encodeColumnarFrame(evs, opt.Compress)
		}
	})

	for k := range frames {
		infos[k].Offset = w.n
		infos[k].Len = int64(len(frames[k]))
		w.raw(frames[k])
	}

	footStart := w.n
	w.uvarint(uint64(nBlocks))
	for k := range infos {
		bi := &infos[k]
		w.uvarint(uint64(bi.Offset))
		w.uvarint(uint64(bi.Len))
		w.uvarint(uint64(bi.Count))
		w.varint(int64(bi.MinStart))
		w.varint(int64(bi.MaxStart))
		if !opt.RowLayout {
			w.varint(int64(bi.MinRank))
			w.varint(int64(bi.MaxRank))
			w.uvarint(uint64(bi.LevelMask))
			w.uvarint(uint64(bi.OpMask))
			for _, cl := range bi.ColLens {
				w.uvarint(uint64(cl))
			}
			if v22 {
				w.raw(bi.SegCodecs[:])
			}
		}
	}
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(w.n-footStart))
	switch {
	case opt.RowLayout:
		copy(trailer[8:], footerMagic)
	case v22:
		copy(trailer[8:], footerMagicV4)
	default:
		copy(trailer[8:], footerMagicV3)
	}
	w.raw(trailer[:])
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// blockStats computes the footer statistics for one block's events.
func blockStats(evs []Event) BlockInfo {
	bi := BlockInfo{Count: len(evs)}
	if len(evs) == 0 {
		return bi
	}
	bi.MinStart, bi.MaxStart = evs[0].Start, evs[0].Start
	for i := 1; i < len(evs); i++ {
		if s := evs[i].Start; s < bi.MinStart {
			bi.MinStart = s
		} else if s > bi.MaxStart {
			bi.MaxStart = s
		}
	}
	return bi
}

// encodeBlockFrame encodes one block's events into a complete row-layout
// frame (codec byte, lengths, payload).
func encodeBlockFrame(evs []Event, compress bool) []byte {
	pp := getPayloadBuf(16 + minEventBytes*2*len(evs))
	payload := appendBlockPayload((*pp)[:0], evs)
	frame := wrapFrame(payload, compress, payloadRow)
	*pp = payload
	putPayloadBuf(pp)
	return frame
}

// Encoder and decoder scratch pools. wrapFrame always copies the payload
// into the returned frame (raw frames append it, flate frames compress it),
// so encoder payload buffers recycle; flate writers, their output buffers,
// and flate readers reset cleanly and recycle too. Decode-side frame
// buffers recycle only on the flate path — a raw frame's payload aliases
// the frame bytes and BlockData retains it for lazy materialization.
var (
	payloadBufPool = sync.Pool{New: func() interface{} {
		b := make([]byte, 0, 1<<16)
		return &b
	}}
	compBufPool     = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}
	flateWriterPool = sync.Pool{New: func() interface{} {
		fw, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
		if err != nil {
			panic(err) // impossible: level is a valid constant
		}
		return fw
	}}
	flateReaderPool = sync.Pool{New: func() interface{} {
		return flate.NewReader(bytes.NewReader(nil))
	}}
	frameBufPool = sync.Pool{New: func() interface{} {
		b := make([]byte, 0, 1<<16)
		return &b
	}}
)

func getPayloadBuf(capHint int) *[]byte {
	p := payloadBufPool.Get().(*[]byte)
	if cap(*p) < capHint {
		*p = make([]byte, 0, capHint)
	}
	return p
}

func putPayloadBuf(p *[]byte) { payloadBufPool.Put(p) }

// frameCodecs maps a payload kind to its raw/flate frame codec bytes.
func frameCodecs(kind payloadKind) (raw, flated byte) {
	switch kind {
	case payloadCol:
		return codecRawCol, codecFlateCol
	case payloadColV22:
		return codecRawColV22, codecFlateColV22
	}
	return codecRaw, codecFlate
}

// wrapFrame frames a block payload: codec byte, length claims, and the raw
// or flate-compressed bytes. The payload is copied, never retained.
func wrapFrame(payload []byte, compress bool, kind payloadKind) []byte {
	rawCodec, flateCodec := frameCodecs(kind)
	if !compress {
		frame := make([]byte, 0, len(payload)+binary.MaxVarintLen64+1)
		frame = append(frame, rawCodec)
		frame = binary.AppendUvarint(frame, uint64(len(payload)))
		return append(frame, payload...)
	}
	comp := compBufPool.Get().(*bytes.Buffer)
	comp.Reset()
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(comp)
	fw.Write(payload)
	fw.Close()
	frame := make([]byte, 0, comp.Len()+2*binary.MaxVarintLen64+1)
	frame = append(frame, flateCodec)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = binary.AppendUvarint(frame, uint64(comp.Len()))
	frame = append(frame, comp.Bytes()...)
	flateWriterPool.Put(fw)
	compBufPool.Put(comp)
	return frame
}

// appendBlockPayload encodes evs as a self-contained block payload: the
// time base is the first event's Start, so delta decoding needs no state
// from earlier blocks.
func appendBlockPayload(dst []byte, evs []Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	if len(evs) == 0 {
		return dst
	}
	base := evs[0].Start
	dst = binary.AppendVarint(dst, int64(base))
	prev := base
	for i := range evs {
		e := &evs[i]
		dst = binary.AppendUvarint(dst, uint64(e.Level))
		dst = binary.AppendUvarint(dst, uint64(e.Op))
		dst = binary.AppendUvarint(dst, uint64(e.Lib))
		dst = binary.AppendVarint(dst, int64(e.Rank))
		dst = binary.AppendVarint(dst, int64(e.Node))
		dst = binary.AppendVarint(dst, int64(e.App))
		dst = binary.AppendVarint(dst, int64(e.File))
		dst = binary.AppendVarint(dst, e.Offset)
		dst = binary.AppendVarint(dst, e.Size)
		dst = binary.AppendVarint(dst, int64(e.Start-prev))
		dst = binary.AppendVarint(dst, int64(e.End-e.Start))
		prev = e.Start
	}
	return dst
}

// byteCursor decodes varints from an in-memory payload. Unlike the
// io.ByteReader path of the v1 scanner, it runs over a contiguous slice,
// which is what makes block decode fast enough to beat the serial stream.
type byteCursor struct {
	b   []byte
	off int
	err error
}

func (c *byteCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.err = badf("truncated uvarint at payload offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *byteCursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.err = badf("truncated varint at payload offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

// checkBlockCount validates a block's event-count claim against the actual
// payload size, so allocation is always backed by real input bytes.
func checkBlockCount(count uint64, payloadLen, blockEvents int) error {
	if count > uint64(blockEvents) || count > uint64(maxBlockEvents) {
		return badf("block count %d exceeds block size %d", count, blockEvents)
	}
	if count > 0 && minEventBytes*count+2 > uint64(payloadLen) {
		return badf("block count %d impossible for %d payload bytes", count, payloadLen)
	}
	return nil
}

// checkPayloadCount is the per-layout count validation. v1/v2.0/v2.1
// payloads spend at least minEventBytes per event, so the claim must be
// backed byte-for-byte; v2.2 run-length segments legitimately amplify (a
// constant 16K-row column is a handful of bytes), so the claim is bounded
// by the validated block geometry instead, each segment codec then
// validates its own claims (run totals, dict sizes, packed lengths) against
// real input bytes before touching memory.
func checkPayloadCount(count uint64, payloadLen, blockEvents int, kind payloadKind) error {
	if kind != payloadColV22 {
		return checkBlockCount(count, payloadLen, blockEvents)
	}
	if count > uint64(blockEvents) || count > uint64(maxBlockEvents) {
		return badf("block count %d exceeds block size %d", count, blockEvents)
	}
	// Every v2.2 segment holds at least a codec byte and the smallest body
	// (two bytes, a width-0 FOR) when the block is non-empty.
	if count > 0 && payloadLen < 1+3*NumCols {
		return badf("block count %d impossible for %d payload bytes", count, payloadLen)
	}
	return nil
}

// decodeBlockEvents decodes a raw block payload into events, appending to
// dst (which is reset). blockEvents bounds the accepted count.
func decodeBlockEvents(payload []byte, blockEvents int, dst []Event) ([]Event, error) {
	c := &byteCursor{b: payload}
	count := c.uvarint()
	if c.err != nil {
		return nil, c.err
	}
	if err := checkBlockCount(count, len(payload), blockEvents); err != nil {
		return nil, err
	}
	dst = dst[:0]
	if count == 0 {
		if c.off != len(payload) {
			return nil, badf("trailing bytes after empty block")
		}
		return dst, nil
	}
	prev := time.Duration(c.varint())
	for i := uint64(0); i < count; i++ {
		var e Event
		e.Level = Level(c.uvarint())
		e.Op = Op(c.uvarint())
		e.Lib = Lib(c.uvarint())
		e.Rank = int32(boundedInt(c, "rank"))
		e.Node = int32(boundedInt(c, "node"))
		e.App = int32(c.varint())
		e.File = int32(c.varint())
		e.Offset = c.varint()
		e.Size = c.varint()
		e.Start = prev + time.Duration(c.varint())
		e.End = e.Start + time.Duration(c.varint())
		prev = e.Start
		if c.err != nil {
			return nil, c.err
		}
		dst = append(dst, e)
	}
	if c.off != len(payload) {
		return nil, badf("%d trailing bytes after block events", len(payload)-c.off)
	}
	return dst, nil
}

// boundedInt decodes a varint that must fit a non-negative int32 (ranks and
// node ids), matching the v1 decoder's validation.
func boundedInt(c *byteCursor, what string) int64 {
	v := c.varint()
	if c.err == nil && (v < 0 || v > math.MaxInt32) {
		c.err = badf("%s %d out of range", what, v)
	}
	return v
}

// Columns is one decoded block in column-major form: the exact per-field
// slices a colstore chunk is made of. DecodeColumns fills it straight from
// the block payload — no Event structs materialize — and colstore adopts
// the slices without copying when block size matches its chunk size.
type Columns struct {
	N      int
	Level  []uint8
	Op     []uint8
	Lib    []uint8
	Rank   []int32
	Node   []int32
	App    []int32
	File   []int32
	Offset []int64
	Size   []int64
	Start  []int64 // nanoseconds
	End    []int64 // nanoseconds
}

// growSet resizes only the columns in set to n rows, reusing capacity
// where possible. Columns outside set are left untouched — possibly stale
// from an earlier decode — so callers must read only the columns they
// asked for.
func (cols *Columns) growSet(n int, set ColSet) {
	if set == AllCols {
		cols.grow(n)
		return
	}
	cols.N = n
	if set&ColLevel != 0 {
		cols.Level = growSlice(cols.Level, n)
	}
	if set&ColOp != 0 {
		cols.Op = growSlice(cols.Op, n)
	}
	if set&ColLib != 0 {
		cols.Lib = growSlice(cols.Lib, n)
	}
	if set&ColRank != 0 {
		cols.Rank = growSlice(cols.Rank, n)
	}
	if set&ColNode != 0 {
		cols.Node = growSlice(cols.Node, n)
	}
	if set&ColApp != 0 {
		cols.App = growSlice(cols.App, n)
	}
	if set&ColFile != 0 {
		cols.File = growSlice(cols.File, n)
	}
	if set&ColOffset != 0 {
		cols.Offset = growSlice(cols.Offset, n)
	}
	if set&ColSize != 0 {
		cols.Size = growSlice(cols.Size, n)
	}
	if set&ColStart != 0 {
		cols.Start = growSlice(cols.Start, n)
	}
	if set&ColEnd != 0 {
		cols.End = growSlice(cols.End, n)
	}
}

func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// grow resizes every column to n rows, reusing capacity where possible.
func (cols *Columns) grow(n int) {
	cols.N = n
	if cap(cols.Level) < n {
		cols.Level = make([]uint8, n)
		cols.Op = make([]uint8, n)
		cols.Lib = make([]uint8, n)
		cols.Rank = make([]int32, n)
		cols.Node = make([]int32, n)
		cols.App = make([]int32, n)
		cols.File = make([]int32, n)
		cols.Offset = make([]int64, n)
		cols.Size = make([]int64, n)
		cols.Start = make([]int64, n)
		cols.End = make([]int64, n)
		return
	}
	cols.Level = cols.Level[:n]
	cols.Op = cols.Op[:n]
	cols.Lib = cols.Lib[:n]
	cols.Rank = cols.Rank[:n]
	cols.Node = cols.Node[:n]
	cols.App = cols.App[:n]
	cols.File = cols.File[:n]
	cols.Offset = cols.Offset[:n]
	cols.Size = cols.Size[:n]
	cols.Start = cols.Start[:n]
	cols.End = cols.End[:n]
}

// decodeBlockColumns decodes a raw block payload directly into column
// slices — the zero-copy handoff path into the columnar store.
func decodeBlockColumns(payload []byte, blockEvents int, cols *Columns) error {
	c := &byteCursor{b: payload}
	count := c.uvarint()
	if c.err != nil {
		return c.err
	}
	if err := checkBlockCount(count, len(payload), blockEvents); err != nil {
		return err
	}
	cols.grow(int(count))
	if count == 0 {
		if c.off != len(payload) {
			return badf("trailing bytes after empty block")
		}
		return nil
	}
	prev := c.varint()
	for i := 0; i < int(count); i++ {
		cols.Level[i] = uint8(c.uvarint())
		cols.Op[i] = uint8(c.uvarint())
		cols.Lib[i] = uint8(c.uvarint())
		cols.Rank[i] = int32(boundedInt(c, "rank"))
		cols.Node[i] = int32(boundedInt(c, "node"))
		cols.App[i] = int32(c.varint())
		cols.File[i] = int32(c.varint())
		cols.Offset[i] = c.varint()
		cols.Size[i] = c.varint()
		start := prev + c.varint()
		cols.Start[i] = start
		cols.End[i] = start + c.varint()
		prev = start
		if c.err != nil {
			return c.err
		}
	}
	if c.off != len(payload) {
		return badf("%d trailing bytes after block events", len(payload)-c.off)
	}
	return nil
}

// framePayloadKind maps a frame codec byte to its payload layout.
func framePayloadKind(codec byte) (payloadKind, bool) {
	switch codec {
	case codecRaw, codecFlate:
		return payloadRow, true
	case codecRawCol, codecFlateCol:
		return payloadCol, true
	case codecRawColV22, codecFlateColV22:
		return payloadColV22, true
	}
	return 0, false
}

// unwrapFrame strips a block frame down to its raw payload, decompressing
// if needed, and reports the payload layout. Allocation is bounded by the
// actual frame bytes: a flate block may not claim a decoded size beyond the
// codec's maximum ratio — the decompression-bomb guard applies identically
// to row, v2.1 and v2.2 columnar frames.
func unwrapFrame(frame []byte) ([]byte, payloadKind, error) {
	if len(frame) == 0 {
		return nil, 0, badf("empty block frame")
	}
	kind, ok := framePayloadKind(frame[0])
	if !ok {
		return nil, 0, badf("unknown block codec %d", frame[0])
	}
	c := &byteCursor{b: frame, off: 1}
	switch frame[0] {
	case codecRaw, codecRawCol, codecRawColV22:
		rawLen := c.uvarint()
		if c.err != nil {
			return nil, 0, c.err
		}
		rest := frame[c.off:]
		if uint64(len(rest)) != rawLen {
			return nil, 0, badf("raw block length %d != framed %d", rawLen, len(rest))
		}
		return rest, kind, nil
	default: // codecFlate, codecFlateCol, codecFlateColV22
		rawLen := c.uvarint()
		compLen := c.uvarint()
		if c.err != nil {
			return nil, 0, c.err
		}
		rest := frame[c.off:]
		if uint64(len(rest)) != compLen {
			return nil, 0, badf("compressed block length %d != framed %d", compLen, len(rest))
		}
		if rawLen > maxFlateRatio*compLen+64 {
			return nil, 0, badf("compressed block claims %d bytes from %d", rawLen, compLen)
		}
		fr := flateReaderPool.Get().(io.ReadCloser)
		fr.(flate.Resetter).Reset(bytes.NewReader(rest), nil)
		defer flateReaderPool.Put(fr)
		payload := make([]byte, rawLen)
		if _, err := io.ReadFull(fr, payload); err != nil {
			return nil, 0, badf("inflating block: %v", err)
		}
		var one [1]byte
		if n, _ := fr.Read(one[:]); n != 0 {
			return nil, 0, badf("compressed block longer than declared %d bytes", rawLen)
		}
		return payload, kind, nil
	}
}

// v2stream is the VANITRC2 state of a streaming Scanner: blocks decode
// sequentially, one at a time, into a reused event buffer.
type v2stream struct {
	blockEvents int
	blocksLeft  int
	buf         []Event // decoded current block
	pos         int
	frame       []byte  // reused frame scratch
	cols        Columns // reused scratch for columnar blocks
}

// newScannerV2 finishes scanner construction after a VANITRC2 magic: the
// shared header, then the block-section preamble.
func newScannerV2(r *reader) (*Scanner, error) {
	t, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	be := r.uvarint()
	nEvents := r.uvarint()
	nBlocks := r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, r.err)
	}
	if be == 0 || be > maxBlockEvents {
		return nil, badf("block size %d", be)
	}
	if nEvents > 1<<32 {
		return nil, badf("event count %d", nEvents)
	}
	if want := (nEvents + be - 1) / be; nBlocks != want {
		return nil, badf("block count %d for %d events of %d", nBlocks, nEvents, be)
	}
	return &Scanner{
		r:         r,
		hdr:       t,
		remaining: nEvents,
		v2:        &v2stream{blockEvents: int(be), blocksLeft: int(nBlocks)},
	}, nil
}

// readFrame reads the next block frame from the sequential stream into the
// reused scratch buffer. Reads grow incrementally so a truncated stream
// cannot force a large allocation from a corrupt length claim.
func (s *Scanner) readFrame() ([]byte, error) {
	r := s.r
	codec, err := r.r.ReadByte()
	if err != nil {
		return nil, badf("block frame: %v", err)
	}
	rawLen := r.uvarint()
	var need uint64
	head := []byte{codec}
	head = binary.AppendUvarint(head, rawLen)
	switch codec {
	case codecRaw, codecRawCol, codecRawColV22:
		need = rawLen
	case codecFlate, codecFlateCol, codecFlateColV22:
		compLen := r.uvarint()
		head = binary.AppendUvarint(head, compLen)
		need = compLen
	default:
		return nil, badf("unknown block codec %d", codec)
	}
	if r.err != nil {
		return nil, badf("block frame: %v", r.err)
	}
	frame := append(s.frameScratch()[:0], head...)
	const step = 1 << 20
	for got := uint64(0); got < need; {
		n := need - got
		if n > step {
			n = step
		}
		pos := len(frame)
		frame = append(frame, make([]byte, n)...)
		if _, err := io.ReadFull(r.r, frame[pos:]); err != nil {
			return nil, badf("block frame body: %v", err)
		}
		got += n
	}
	s.v2.frame = frame
	return frame, nil
}

func (s *Scanner) frameScratch() []byte {
	if s.v2.frame == nil {
		s.v2.frame = make([]byte, 0, 1<<16)
	}
	return s.v2.frame
}

// nextV2 serves Scanner.Next for block logs: decode the next block when
// the current one is drained, then copy events out.
func (s *Scanner) nextV2(buf []Event) (int, error) {
	v := s.v2
	if v.buf == nil {
		// Size the block buffer up front so the first block's transpose
		// doesn't grow it allocation by allocation. The claim is capped so
		// a corrupt header cannot force a large allocation before any
		// event bytes have been read.
		n := uint64(v.blockEvents)
		if n > s.remaining {
			n = s.remaining
		}
		if n > 1<<15 {
			n = 1 << 15
		}
		v.buf = make([]Event, 0, n)
	}
	filled := 0
	for filled < len(buf) && s.remaining > 0 {
		if v.pos == len(v.buf) {
			if v.blocksLeft == 0 {
				return filled, badf("event log short: %d events missing", s.remaining)
			}
			frame, err := s.readFrame()
			if err != nil {
				return filled, err
			}
			payload, kind, err := unwrapFrame(frame)
			if err != nil {
				return filled, err
			}
			var evs []Event
			switch kind {
			case payloadColV22:
				if err := decodeBlockColumnsSeqV22(payload, v.blockEvents, &v.cols); err != nil {
					return filled, err
				}
				evs = colsToEvents(&v.cols, v.buf)
			case payloadCol:
				if err := decodeBlockColumnsSeq(payload, v.blockEvents, &v.cols); err != nil {
					return filled, err
				}
				evs = colsToEvents(&v.cols, v.buf)
			default:
				evs, err = decodeBlockEvents(payload, v.blockEvents, v.buf)
				if err != nil {
					return filled, err
				}
			}
			if uint64(len(evs)) > s.remaining {
				return filled, badf("block overruns declared event count")
			}
			if v.blocksLeft > 1 && len(evs) != v.blockEvents {
				return filled, badf("interior block holds %d events, want %d", len(evs), v.blockEvents)
			}
			v.buf, v.pos = evs, 0
			v.blocksLeft--
		}
		n := copy(buf[filled:], v.buf[v.pos:])
		v.pos += n
		filled += n
		s.remaining -= uint64(n)
	}
	return filled, nil
}

// BlockInfo describes one block in the VANITRC2 footer index. The v2.0
// footer carries only the time bounds; v2.1 entries add rank bounds,
// level/op occupancy masks, and per-column segment byte lengths (HasStats
// reports which kind this entry is); v2.2 entries additionally record each
// segment's codec id (HasCodecs).
type BlockInfo struct {
	Offset   int64 // absolute file offset of the block frame
	Len      int64 // framed length in bytes
	Count    int   // events in the block
	MinStart time.Duration
	MaxStart time.Duration

	// v2.1 statistics (valid only when HasStats).
	MinRank   int32
	MaxRank   int32
	LevelMask uint32         // bit l set ⇒ some event has Level l
	OpMask    uint32         // bit o set ⇒ some event has Op o
	ColLens   [NumCols]int64 // byte length of each column segment

	// v2.2 codec ids (valid only when HasCodecs).
	SegCodecs [NumCols]uint8 // segment codec id per column

	HasStats  bool
	HasCodecs bool
}

// BlockReader reads a VANITRC2 log through its footer index: the header
// decodes eagerly, and each block decodes independently — concurrent
// DecodeColumns/DecodeEvents calls on distinct blocks are safe, which is
// what lets the analyzer fan decode out over the worker pool.
type BlockReader struct {
	r           io.ReaderAt
	hdr         *Trace
	blockEvents int
	nEvents     uint64
	blocks      []BlockInfo
}

// NewBlockReader opens a VANITRC2 log of the given size (as from
// os.File.Stat). It reads the header and the footer index; blocks decode
// on demand. Use Scanner for sequential access to non-seekable inputs.
func NewBlockReader(r io.ReaderAt, size int64) (*BlockReader, error) {
	sr := &reader{r: bufio.NewReaderSize(io.NewSectionReader(r, 0, size), 1<<16)}
	head := make([]byte, len(magicV2))
	if _, err := io.ReadFull(sr.r, head); err != nil {
		return nil, readErr(err)
	}
	if string(head) != magicV2 {
		return nil, badf("bad magic %q (not a VANITRC2 log)", head)
	}
	hdr, err := readHeader(sr)
	if err != nil {
		if IsCtxErr(err) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	be := sr.uvarint()
	nEvents := sr.uvarint()
	nBlocks := sr.uvarint()
	if sr.err != nil {
		return nil, readErr(sr.err)
	}
	if be == 0 || be > maxBlockEvents {
		return nil, badf("block size %d", be)
	}
	if nEvents > 1<<32 {
		return nil, badf("event count %d", nEvents)
	}
	if want := (nEvents + be - 1) / be; nBlocks != want {
		return nil, badf("block count %d for %d events of %d", nBlocks, nEvents, be)
	}

	// Footer: fixed trailer at the tail locates the index.
	if size < trailerLen {
		return nil, badf("no room for footer trailer")
	}
	var trailer [trailerLen]byte
	if _, err := r.ReadAt(trailer[:], size-trailerLen); err != nil {
		if IsCtxErr(err) {
			return nil, err
		}
		return nil, badf("footer trailer: %v", err)
	}
	var hasStats, hasCodecs bool
	switch string(trailer[8:]) {
	case footerMagic:
	case footerMagicV3:
		hasStats = true
	case footerMagicV4:
		hasStats, hasCodecs = true, true
	default:
		return nil, badf("bad footer magic %q", trailer[8:])
	}
	footLen := binary.LittleEndian.Uint64(trailer[:8])
	if footLen > uint64(size-trailerLen) {
		return nil, badf("footer length %d exceeds file", footLen)
	}
	// Each entry needs at least one byte per field, so the footer length
	// itself bounds the index allocation a corrupt header can demand.
	minEntry := uint64(5)
	if hasStats {
		minEntry = 9 + NumCols
	}
	if hasCodecs {
		minEntry += NumCols
	}
	if nBlocks*minEntry > footLen {
		return nil, badf("footer %d bytes too small for %d blocks", footLen, nBlocks)
	}
	foot := make([]byte, footLen)
	footStart := size - trailerLen - int64(footLen)
	if _, err := r.ReadAt(foot, footStart); err != nil {
		if IsCtxErr(err) {
			return nil, err
		}
		return nil, badf("footer: %v", err)
	}
	c := &byteCursor{b: foot}
	if got := c.uvarint(); c.err != nil || got != nBlocks {
		return nil, badf("footer block count %d != header %d", got, nBlocks)
	}
	blocks := make([]BlockInfo, nBlocks)
	prevEnd := int64(len(magicV2))
	var total uint64
	for k := range blocks {
		bi := &blocks[k]
		bi.Offset = int64(c.uvarint())
		bi.Len = int64(c.uvarint())
		bi.Count = int(c.uvarint())
		bi.MinStart = time.Duration(c.varint())
		bi.MaxStart = time.Duration(c.varint())
		if hasStats {
			bi.MinRank = int32(boundedInt(c, "footer min rank"))
			bi.MaxRank = int32(boundedInt(c, "footer max rank"))
			lm := c.uvarint()
			om := c.uvarint()
			if c.err == nil && (lm > math.MaxUint32 || om > math.MaxUint32) {
				return nil, badf("block %d stat masks out of range", k)
			}
			bi.LevelMask = uint32(lm)
			bi.OpMask = uint32(om)
			var sum int64
			for col := 0; col < NumCols; col++ {
				cl := c.uvarint()
				if c.err == nil && cl > uint64(math.MaxInt32) {
					return nil, badf("block %d column %d segment length %d", k, col, cl)
				}
				bi.ColLens[col] = int64(cl)
				sum += int64(cl)
			}
			if c.err == nil && sum > maxFlateRatio*bi.Len+64 {
				return nil, badf("block %d column segments claim %d bytes from %d-byte frame", k, sum, bi.Len)
			}
			bi.HasStats = true
			if hasCodecs {
				ids, err := c.take(NumCols)
				if err != nil {
					return nil, err
				}
				for col, id := range ids {
					if id >= numSegCodecs {
						return nil, badf("block %d column %d segment codec %d", k, col, id)
					}
					bi.SegCodecs[col] = id
				}
				bi.HasCodecs = true
			}
		}
		if c.err != nil {
			return nil, c.err
		}
		if bi.Offset < prevEnd || bi.Len <= 0 || bi.Offset+bi.Len > footStart {
			return nil, badf("block %d frame [%d,+%d) out of bounds", k, bi.Offset, bi.Len)
		}
		prevEnd = bi.Offset + bi.Len
		want := int(be)
		if k == len(blocks)-1 {
			want = int(nEvents - total)
		}
		if bi.Count != want {
			return nil, badf("block %d holds %d events, want %d", k, bi.Count, want)
		}
		total += uint64(bi.Count)
	}
	if c.off != len(foot) {
		return nil, badf("%d trailing footer bytes", len(foot)-c.off)
	}
	if total != nEvents {
		return nil, badf("blocks hold %d events, header says %d", total, nEvents)
	}
	return &BlockReader{
		r:           r,
		hdr:         hdr,
		blockEvents: int(be),
		nEvents:     nEvents,
		blocks:      blocks,
	}, nil
}

// Header returns the decoded trace header (Meta, Apps, Files, Samples; no
// Events). The reader retains no reference to it.
func (br *BlockReader) Header() *Trace { return br.hdr }

// NumBlocks returns the number of event blocks.
func (br *BlockReader) NumBlocks() int { return len(br.blocks) }

// BlockEvents returns the events-per-block geometry of the log.
func (br *BlockReader) BlockEvents() int { return br.blockEvents }

// NumEvents returns the total event count.
func (br *BlockReader) NumEvents() uint64 { return br.nEvents }

// BlockAt returns block k's index entry (offset, length, count, time
// bounds) without decoding it — the seekable pruning surface.
func (br *BlockReader) BlockAt(k int) BlockInfo { return br.blocks[k] }

// BlockSource is the read surface the columnar scan consumes: footer-index
// geometry plus on-demand block handles. *BlockReader is the canonical
// implementation; vanid wraps one in a caching source so hot traces decode
// zero times across requests.
type BlockSource interface {
	Header() *Trace
	NumBlocks() int
	BlockEvents() int
	NumEvents() uint64
	BlockAt(k int) BlockInfo
	ReadBlock(k int) (*BlockData, error)
}

var _ BlockSource = (*BlockReader)(nil)

// readBlockPayload fetches and unwraps block k's raw payload, reporting its
// layout. Frame buffers come from a pool and recycle whenever the payload
// does not alias them (flate frames decompress into fresh memory; raw
// frames hand their own bytes out and the buffer leaves the pool).
func (br *BlockReader) readBlockPayload(k int) ([]byte, payloadKind, error) {
	bi := br.blocks[k]
	fp := frameBufPool.Get().(*[]byte)
	if int64(cap(*fp)) < bi.Len {
		*fp = make([]byte, bi.Len)
	}
	frame := (*fp)[:bi.Len]
	*fp = frame
	if _, err := br.r.ReadAt(frame, bi.Offset); err != nil {
		frameBufPool.Put(fp)
		if IsCtxErr(err) {
			return nil, 0, err // canceled read, not corrupt input
		}
		return nil, 0, badf("block %d: %v", k, err)
	}
	payload, kind, err := unwrapFrame(frame)
	if err != nil {
		// No payload escapes on error — recycle unconditionally, including
		// raw-codec frames whose length claims failed validation.
		frameBufPool.Put(fp)
		return nil, 0, fmt.Errorf("block %d: %w", k, err)
	}
	if frame[0] != codecRaw && frame[0] != codecRawCol && frame[0] != codecRawColV22 {
		frameBufPool.Put(fp) // flate payload is a fresh buffer, not an alias
	}
	return payload, kind, nil
}

// DecodeColumns decodes every column of block k into column slices, reusing
// the capacity of cols. Safe to call concurrently for distinct cols. Use
// ReadBlock + BlockData.Decode for projected (per-column) reads.
func (br *BlockReader) DecodeColumns(k int, cols *Columns) error {
	payload, kind, err := br.readBlockPayload(k)
	if err != nil {
		return err
	}
	switch kind {
	case payloadColV22:
		err = decodeBlockColumnsSeqV22(payload, br.blockEvents, cols)
	case payloadCol:
		err = decodeBlockColumnsSeq(payload, br.blockEvents, cols)
	default:
		err = decodeBlockColumns(payload, br.blockEvents, cols)
	}
	if err != nil {
		return fmt.Errorf("block %d: %w", k, err)
	}
	if cols.N != br.blocks[k].Count {
		return badf("block %d decodes %d events, index says %d", k, cols.N, br.blocks[k].Count)
	}
	return nil
}

// DecodeEvents decodes block k into row-major events, appending into dst's
// capacity (dst is reset). Safe to call concurrently for distinct dst.
func (br *BlockReader) DecodeEvents(k int, dst []Event) ([]Event, error) {
	payload, kind, err := br.readBlockPayload(k)
	if err != nil {
		return nil, err
	}
	var evs []Event
	switch kind {
	case payloadColV22, payloadCol:
		var cols Columns
		if kind == payloadColV22 {
			err = decodeBlockColumnsSeqV22(payload, br.blockEvents, &cols)
		} else {
			err = decodeBlockColumnsSeq(payload, br.blockEvents, &cols)
		}
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", k, err)
		}
		evs = colsToEvents(&cols, dst)
	default:
		evs, err = decodeBlockEvents(payload, br.blockEvents, dst)
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", k, err)
		}
	}
	if len(evs) != br.blocks[k].Count {
		return nil, badf("block %d decodes %d events, index says %d", k, len(evs), br.blocks[k].Count)
	}
	return evs, nil
}
