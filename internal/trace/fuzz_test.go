package trace

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the trace decoder against corrupt input: any byte
// stream must either decode cleanly or return an error — never panic,
// hang, or allocate unboundedly.
func FuzzRead(f *testing.F) {
	// Seed with a valid trace, its truncations, and mutations.
	tr := NewTracer()
	tr.SetMeta(Meta{Workload: "fuzz", Nodes: 2, Ranks: 4, PFSDir: "/p/gpfs1"})
	id := tr.FileID("/p/gpfs1/f")
	tr.AddSample("s", []float64{1, 2, 3})
	tr.Record(Event{Op: OpWrite, File: id, Size: 4096, Start: 1, End: 2})
	tr.Record(Event{Op: OpRead, File: id, Size: 128, Start: 3, End: 5})
	var buf bytes.Buffer
	if err := Write(&buf, tr.Finish()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("VANITRC1"))
	f.Add([]byte("garbage"))
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 20 {
		mutated[20] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded traces must survive re-encoding.
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
	})
}
