package trace

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// fuzzSeedTrace builds the small valid trace the fuzz targets seed from.
func fuzzSeedTrace(f *testing.F) *Trace {
	f.Helper()
	tr := NewTracer()
	tr.SetMeta(Meta{Workload: "fuzz", Nodes: 2, Ranks: 4, PFSDir: "/p/gpfs1"})
	id := tr.FileID("/p/gpfs1/f")
	tr.AddSample("s", []float64{1, 2, 3})
	tr.Record(Event{Op: OpWrite, File: id, Size: 4096, Start: 1, End: 2})
	tr.Record(Event{Op: OpRead, File: id, Size: 128, Start: 3, End: 5})
	return tr.Finish()
}

// FuzzRead hardens the trace decoder against corrupt input: any byte
// stream must either decode cleanly or return an error — never panic,
// hang, or allocate unboundedly. The scanner sniffs the magic, so this
// target covers both the VANITRC1 stream and the VANITRC2 block decoder.
func FuzzRead(f *testing.F) {
	// Seed with valid traces in both formats, their truncations, and
	// mutations.
	seed := fuzzSeedTrace(f)
	var buf bytes.Buffer
	if err := Write(&buf, seed); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("VANITRC1"))
	f.Add([]byte("garbage"))
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 20 {
		mutated[20] ^= 0xff
	}
	f.Add(mutated)

	var buf2 bytes.Buffer
	if err := WriteV2With(&buf2, seed, V2Options{BlockEvents: 1}); err != nil {
		f.Fatal(err)
	}
	valid2 := buf2.Bytes()
	f.Add(valid2)
	f.Add(valid2[:len(valid2)/2])
	f.Add(valid2[:len(valid2)-trailerLen])
	f.Add([]byte(magicV2))
	mutated2 := append([]byte(nil), valid2...)
	if len(mutated2) > 20 {
		mutated2[20] ^= 0xff
	}
	f.Add(mutated2)
	var comp2 bytes.Buffer
	if err := WriteV2With(&comp2, seed, V2Options{BlockEvents: 1, Compress: true}); err != nil {
		f.Fatal(err)
	}
	f.Add(comp2.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded traces must survive re-encoding in both formats.
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		out.Reset()
		if err := WriteV2(&out, tr); err != nil {
			t.Fatalf("v2 re-encode of decoded trace failed: %v", err)
		}
	})
}

// FuzzBlockReader hardens the seekable VANITRC2 path: corrupt blocks,
// truncated footers, and arbitrary garbage must surface as ErrBadFormat —
// never a panic, a hang, or an unbounded allocation — and whatever does
// decode must round-trip.
func FuzzBlockReader(f *testing.F) {
	seed := fuzzSeedTrace(f)
	// Seeds span every footer version: v2.2 logs carry the VANIIDX4 footer
	// (per-segment codec ids), v2.1 columnar logs VANIIDX3 (per-block
	// rank/level/op stats and per-column byte ranges), row-layout logs the
	// legacy VANIIDX2 footer — and every segment codec, both cost-model
	// chosen and forced on.
	for _, opt := range []V2Options{
		{BlockEvents: 1}, {BlockEvents: 1, Compress: true}, {},
		{BlockEvents: 1, RowLayout: true}, {RowLayout: true, Compress: true},
		{BlockEvents: 1, Codec: CodecV21}, {Codec: CodecV21, Compress: true},
		{BlockEvents: 1, Codec: CodecForceRaw},
		{BlockEvents: 1, Codec: CodecForceRLE},
		{BlockEvents: 1, Codec: CodecForceDict},
		{BlockEvents: 1, Codec: CodecForceFOR},
		{Codec: CodecForceFOR, Compress: true},
	} {
		var buf bytes.Buffer
		if err := WriteV2With(&buf, seed, opt); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
		if len(valid) > trailerLen {
			f.Add(valid[:len(valid)-trailerLen]) // footer trailer gone
			f.Add(valid[:len(valid)-trailerLen/2])
		}
		mutated := append([]byte(nil), valid...)
		if len(mutated) > 30 {
			mutated[len(mutated)/2] ^= 0xff
		}
		f.Add(mutated)
	}
	// Bit-flip sweep over a v2.2 log's block payloads: flips land in codec
	// id bytes, dict widths, and packed index/offset words, so every decode
	// kernel sees crafted claims.
	{
		var buf bytes.Buffer
		if err := WriteV2With(&buf, seed, V2Options{BlockEvents: 1}); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		for pos := len(magicV2); pos < len(valid)-trailerLen; pos += 3 {
			mutated := append([]byte(nil), valid...)
			mutated[pos] ^= 1 << (pos % 8)
			f.Add(mutated)
		}
	}
	// Multi-row blocks under forced dict and FOR, bit-flip swept: these land
	// corruption in dictionary sizes, pack widths, code words and FOR bases —
	// the wire claims the compressed-domain SegCursor paths (code-space
	// iteration, run coalescing, header min/max) must reject as ErrBadFormat
	// rather than mis-iterate or panic.
	{
		big := NewTracer()
		big.SetMeta(Meta{Workload: "fuzz", Nodes: 2, Ranks: 4, PFSDir: "/p/gpfs1"})
		id := big.FileID("/p/gpfs1/f")
		for i := 0; i < 48; i++ {
			op := OpWrite
			if i%3 == 0 {
				op = OpRead
			}
			big.Record(Event{Op: op, Rank: int32(i / 6 % 4), File: id,
				Offset: int64(i) * 512, Size: int64(i%7) * 64,
				Start: time.Duration(i + 1), End: time.Duration(i + 2)})
		}
		bigTr := big.Finish()
		for _, opt := range []V2Options{
			{BlockEvents: 16, Codec: CodecForceDict},
			{BlockEvents: 16, Codec: CodecForceFOR},
			{BlockEvents: 16, Codec: CodecForceRLE},
		} {
			var buf bytes.Buffer
			if err := WriteV2With(&buf, bigTr, opt); err != nil {
				f.Fatal(err)
			}
			valid := buf.Bytes()
			f.Add(valid)
			for pos := len(magicV2); pos < len(valid)-trailerLen; pos += 5 {
				mutated := append([]byte(nil), valid...)
				mutated[pos] ^= 1 << (pos % 8)
				f.Add(mutated)
			}
		}
	}
	f.Add([]byte(magicV2))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("open error %v does not wrap ErrBadFormat", err)
			}
			return
		}
		var cols Columns
		var evs []Event
		for k := 0; k < br.NumBlocks(); k++ {
			evs, err = br.DecodeEvents(k, evs)
			if err != nil {
				if !errors.Is(err, ErrBadFormat) {
					t.Fatalf("block %d decode error %v does not wrap ErrBadFormat", k, err)
				}
				return
			}
			if err := br.DecodeColumns(k, &cols); err != nil {
				t.Fatalf("block %d: events decoded but columns failed: %v", k, err)
			}
			if cols.N != len(evs) {
				t.Fatalf("block %d: columnar decode sees %d rows, row decode %d", k, cols.N, len(evs))
			}
			// The projected path must agree with the full decode even on
			// fuzzer-crafted footers (corrupt column ranges surface as
			// ErrBadFormat in ReadBlock or Decode, never as a panic).
			bd, err := br.ReadBlock(k)
			if err != nil {
				if !errors.Is(err, ErrBadFormat) {
					t.Fatalf("block %d: ReadBlock error %v does not wrap ErrBadFormat", k, err)
				}
				return
			}
			var pcols Columns
			if _, err := bd.Decode(ColStart|ColRank, &pcols); err != nil {
				if !errors.Is(err, ErrBadFormat) {
					t.Fatalf("block %d: projected decode error %v does not wrap ErrBadFormat", k, err)
				}
				return
			}
			// A crafted footer may legally re-partition the column ranges, so
			// only the row count is asserted here; value equality is pinned by
			// the unit tests over writer-produced logs.
			if pcols.N != len(evs) {
				t.Fatalf("block %d: projected decode sees %d rows, row decode %d", k, pcols.N, len(evs))
			}
			// The compressed-domain cursors must reject crafted segments as
			// ErrBadFormat and, when they accept one, iterate structures that
			// tile the block exactly — never panic or run past the row count.
			for col := 0; col < NumCols; col++ {
				cur, err := bd.SegCursorAt(col)
				if err != nil {
					if !errors.Is(err, ErrBadFormat) {
						t.Fatalf("block %d col %d: cursor error %v does not wrap ErrBadFormat", k, col, err)
					}
					continue
				}
				if cur == nil {
					continue
				}
				if runs := cur.AppendRuns(nil); runs != nil {
					total := 0
					for _, r := range runs {
						total += int(r.N)
					}
					if total != cur.Rows() {
						t.Fatalf("block %d col %d: runs cover %d of %d rows", k, col, total, cur.Rows())
					}
				}
				if nd := cur.NumCodes(); nd > 0 {
					rows := 0
					cur.ForEachCode(func(code uint32) bool {
						if int(code) >= nd {
							t.Fatalf("block %d col %d: code %d out of %d", k, col, code, nd)
						}
						rows++
						return true
					})
					if rows != cur.Rows() {
						t.Fatalf("block %d col %d: %d codes for %d rows", k, col, rows, cur.Rows())
					}
				}
				// Exercised for panics only: crafted FOR bases can wrap the
				// mod-2^64 arithmetic, so the values carry no invariants here.
				_, _, _, _ = cur.FORStats()
				_, _ = cur.ConstVal()
			}
		}
	})
}
