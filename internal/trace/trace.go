// Package trace implements a Recorder-like multilevel tracer for simulated
// HPC workloads.
//
// The paper uses Recorder 2.0 because it is the only tracing tool that
// captures multilevel I/O traces (high-level library, middleware, POSIX)
// together with CPU and GPU activity. This package reproduces that trace
// schema for the simulated stack: every interface layer emits an Event at
// its own level, and compute/GPU spans are recorded alongside, so the
// analyzer can perform the data-dependency and overlap analysis the paper
// describes. Tracing itself carries a configurable per-event virtual-time
// overhead, reproducing the paper's observation of ~8% runtime overhead.
package trace

import (
	"sort"
	"time"

	"vani/internal/heapx"
	"vani/internal/parallel"
)

// Level identifies the software layer that emitted an event, mirroring
// Recorder's multilevel capture.
type Level uint8

// Levels, from highest abstraction to lowest.
const (
	LevelApp        Level = iota // high-level I/O library (HDF5, npy)
	LevelMiddleware              // MPI-IO / STDIO middleware
	LevelPosix                   // kernel-facing POSIX calls
	LevelCompute                 // CPU or GPU computation spans
)

// String returns the Recorder-style name of the level.
func (l Level) String() string {
	switch l {
	case LevelApp:
		return "app"
	case LevelMiddleware:
		return "middleware"
	case LevelPosix:
		return "posix"
	case LevelCompute:
		return "compute"
	}
	return "unknown"
}

// Op is the traced operation kind.
type Op uint8

// Operations. Metadata operations are Open, Close, Stat, Seek, Sync, Mkdir
// and Readdir; data operations are Read and Write; Compute and GPUCompute
// are computation spans; Barrier marks MPI synchronization.
const (
	OpOpen Op = iota
	OpClose
	OpRead
	OpWrite
	OpSeek
	OpStat
	OpSync
	OpMkdir
	OpReaddir
	OpCompute
	OpGPUCompute
	OpBarrier
	numOps
)

var opNames = [...]string{
	"open", "close", "read", "write", "seek", "stat", "sync",
	"mkdir", "readdir", "compute", "gpu_compute", "barrier",
}

// String returns the lower-case operation name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// IsData reports whether the op moves file data (read or write).
func (o Op) IsData() bool { return o == OpRead || o == OpWrite }

// IsMeta reports whether the op is a filesystem metadata operation.
func (o Op) IsMeta() bool {
	switch o {
	case OpOpen, OpClose, OpSeek, OpStat, OpSync, OpMkdir, OpReaddir:
		return true
	}
	return false
}

// IsIO reports whether the op touches the storage system at all.
func (o Op) IsIO() bool { return o.IsData() || o.IsMeta() }

// Lib identifies the I/O library whose call produced an event, mirroring
// the function-name prefixes Recorder captures (fopen vs open vs
// MPI_File_open vs H5Fopen). The analyzer derives each application's
// "Interface" attribute (Tables I and IV) from it.
type Lib uint8

// Libraries.
const (
	LibNone Lib = iota // compute spans, barriers
	LibPosix
	LibStdio
	LibMPIIO
	LibHDF5
)

var libNames = [...]string{"", "POSIX", "STDIO", "MPI-IO", "HDF5"}

// String returns the interface name as the paper's tables print it.
func (l Lib) String() string {
	if int(l) < len(libNames) {
		return libNames[l]
	}
	return "unknown"
}

// Event is one traced operation. File, App and Target are interned: the
// integer IDs index the tables held by the Trace container.
type Event struct {
	Level  Level
	Op     Op
	Lib    Lib
	Rank   int32 // global rank of the issuing process
	Node   int32 // node the rank runs on
	App    int32 // index into Trace.Apps (the executable name)
	File   int32 // index into Trace.Files, or -1 for non-file events
	Offset int64 // file offset for data ops, else 0
	Size   int64 // bytes moved for data ops, else 0
	Start  time.Duration
	End    time.Duration
}

// Duration returns End - Start.
func (e Event) Duration() time.Duration { return e.End - e.Start }

// FileInfo describes one file observed in the trace.
type FileInfo struct {
	Path     string
	Size     int64  // final size after the run
	Target   string // storage target name the path routed to (e.g. "gpfs")
	Format   string // dataset format hint: "bin", "hdf5", "npy", "fits", "png"
	NDims    int    // dimensionality of the contained data, 0 if unknown
	DataType string // element type hint: "float", "int", ...
}

// Meta carries the job-level information the paper's JobUtility extracts:
// scheduler allocation, node shape, and mount points. It feeds the Job
// Configuration entity (Table II).
type Meta struct {
	Workload      string
	JobID         string
	Nodes         int
	CoresPerNode  int
	GPUsPerNode   int
	MemPerNodeGB  int
	Ranks         int
	NodeLocalDir  string // node-local burst buffer mount ("" if none)
	SharedBBDir   string // shared burst buffer mount ("" if none)
	PFSDir        string // parallel file system mount
	JobTimeLimit  time.Duration
	TraceOverhead time.Duration // total virtual time charged by the tracer
}

// DatasetSample carries a sample of data values from one of the workload's
// datasets. The paper's JobUtility inspects datasets offline; the analyzer
// fits a distribution to the values for the Data entity's "Data dist"
// attribute (Table VI).
type DatasetSample struct {
	Name   string
	Values []float64
}

// Trace is the complete output of one traced job: metadata plus the event
// log and interning tables.
type Trace struct {
	Meta    Meta
	Apps    []string
	Files   []FileInfo
	Samples []DatasetSample
	Events  []Event
}

// AppName resolves an app index, returning "?" for out-of-range values.
func (t *Trace) AppName(id int32) string {
	if id < 0 || int(id) >= len(t.Apps) {
		return "?"
	}
	return t.Apps[id]
}

// FilePath resolves a file index, returning "" for -1 or out-of-range.
func (t *Trace) FilePath(id int32) string {
	if id < 0 || int(id) >= len(t.Files) {
		return ""
	}
	return t.Files[id].Path
}

// JobRuntime returns the latest event end time, which for a complete trace
// is the job's virtual runtime.
func (t *Trace) JobRuntime() time.Duration {
	var max time.Duration
	for i := range t.Events {
		if t.Events[i].End > max {
			max = t.Events[i].End
		}
	}
	return max
}

// eventBefore is the canonical event ordering: (Start, Rank, End). It is a
// total order up to record sequence: events equal on all three keys keep
// their input order under the stable sort in SortByStart and under the
// shard merge in Finish, which both therefore produce the same byte-for-
// byte event stream for the same per-rank record sequences.
func eventBefore(a, b *Event) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.End < b.End
}

// SortByStart orders events by (Start, Rank, End), breaking remaining ties
// by input sequence (stable); analyzer passes assume this ordering.
func (t *Trace) SortByStart() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		return eventBefore(&t.Events[i], &t.Events[j])
	})
}

// Tracer accumulates events during a simulation. The event log is sharded
// per rank: each rank appends to its own shard, so there is no global
// append point contended by every recorded event, and Finish can sort the
// shards in parallel before a deterministic k-way merge. The simulation
// kernel runs one process at a time, so the shards need no locking; a
// Tracer must not be shared across concurrently running engines.
type Tracer struct {
	enabled  bool
	overhead time.Duration // virtual time charged per recorded event

	meta    Meta
	apps    []string
	appIDs  map[string]int32
	files   []FileInfo
	fileIDs map[string]int32
	samples []DatasetSample

	shards    map[int32]*shard // per-rank event logs
	shardKeys []int32          // ranks in first-record order
	count     int

	totalOverhead time.Duration
	mergeTime     time.Duration // wall-clock of the last Finish merge
}

// shard is one rank's event log, in record order.
type shard struct {
	events []Event
}

// NewTracer returns an enabled tracer with no per-event overhead.
func NewTracer() *Tracer {
	return &Tracer{
		enabled: true,
		appIDs:  make(map[string]int32),
		fileIDs: make(map[string]int32),
		shards:  make(map[int32]*shard),
	}
}

// SetEnabled turns event capture on or off. Disabled tracers record nothing
// and charge no overhead, giving the baseline for the tracing-overhead
// experiment.
func (t *Tracer) SetEnabled(on bool) { t.enabled = on }

// Enabled reports whether capture is on.
func (t *Tracer) Enabled() bool { return t.enabled }

// SetOverhead sets the virtual time charged to the issuing process per
// recorded event. The Record return value carries the charge; interface
// layers add it to the op's elapsed time.
func (t *Tracer) SetOverhead(d time.Duration) { t.overhead = d }

// SetMeta installs job-level metadata (workload, allocation, mounts).
func (t *Tracer) SetMeta(m Meta) { t.meta = m }

// AppID interns an application name.
func (t *Tracer) AppID(name string) int32 {
	if id, ok := t.appIDs[name]; ok {
		return id
	}
	id := int32(len(t.apps))
	t.apps = append(t.apps, name)
	t.appIDs[name] = id
	return id
}

// FileID interns a file path, creating its FileInfo on first use.
func (t *Tracer) FileID(path string) int32 {
	if id, ok := t.fileIDs[path]; ok {
		return id
	}
	id := int32(len(t.files))
	t.files = append(t.files, FileInfo{Path: path})
	t.fileIDs[path] = id
	return id
}

// TouchFile stamps a file's storage target and, if the file has not been
// described yet, a default "bin" format. Unlike SetFileInfo it never
// clobbers richer metadata attached earlier by DescribeFile.
func (t *Tracer) TouchFile(id int32, target string) {
	if id < 0 || int(id) >= len(t.files) {
		return
	}
	f := &t.files[id]
	f.Target = target
	if f.Format == "" {
		f.Format = "bin"
	}
}

// SetFileInfo updates the descriptive fields for an interned file.
func (t *Tracer) SetFileInfo(id int32, info FileInfo) {
	if id < 0 || int(id) >= len(t.files) {
		return
	}
	info.Path = t.files[id].Path // path is fixed by interning
	t.files[id] = info
}

// ObserveFileSize raises the recorded size of a file to at least size.
func (t *Tracer) ObserveFileSize(id int32, size int64) {
	if id < 0 || int(id) >= len(t.files) {
		return
	}
	if size > t.files[id].Size {
		t.files[id].Size = size
	}
}

// AddSample attaches a dataset value sample for offline distribution
// fitting.
func (t *Tracer) AddSample(name string, values []float64) {
	t.samples = append(t.samples, DatasetSample{Name: name, Values: values})
}

// Record captures one event into the issuing rank's shard and returns the
// virtual-time overhead the caller must charge to the issuing process (zero
// when disabled).
func (t *Tracer) Record(ev Event) time.Duration {
	if !t.enabled {
		return 0
	}
	s := t.shards[ev.Rank]
	if s == nil {
		s = &shard{}
		t.shards[ev.Rank] = s
		t.shardKeys = append(t.shardKeys, ev.Rank)
	}
	s.events = append(s.events, ev)
	t.count++
	t.totalOverhead += t.overhead
	return t.overhead
}

// Len returns the number of captured events across all shards.
func (t *Tracer) Len() int { return t.count }

// Shards returns the number of per-rank event shards.
func (t *Tracer) Shards() int { return len(t.shards) }

// MergeTime returns the wall-clock time the last Finish spent sorting and
// merging the per-rank shards (the pipeline's trace-merge stage).
func (t *Tracer) MergeTime() time.Duration { return t.mergeTime }

// Finish seals the tracer and returns the completed Trace: each rank's
// shard is sorted independently (in parallel across shards), then a k-way
// merge by (Start, Rank, End) produces the global event order. The merge is
// deterministic — the output depends only on the per-rank record sequences,
// not on how ranks interleaved during the run or on scheduling of the sort
// workers. The tracer can keep recording afterwards; the returned Trace is
// a snapshot.
func (t *Tracer) Finish() *Trace {
	begin := time.Now()
	m := t.meta
	m.TraceOverhead = t.totalOverhead

	// Sort shard keys so the merge sees shards in rank order.
	keys := append([]int32(nil), t.shardKeys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Per-shard stable sort by (Start, End); Rank is constant within a
	// shard, so this is the canonical order restricted to the shard. Shards
	// are independent, so they sort in parallel.
	sorted := make([][]Event, len(keys))
	parallel.ForEach(0, len(keys), func(i int) {
		evs := append([]Event(nil), t.shards[keys[i]].events...)
		sort.SliceStable(evs, func(x, y int) bool { return eventBefore(&evs[x], &evs[y]) })
		sorted[i] = evs
	})

	tr := &Trace{
		Meta:    m,
		Apps:    append([]string(nil), t.apps...),
		Files:   append([]FileInfo(nil), t.files...),
		Samples: append([]DatasetSample(nil), t.samples...),
		Events:  mergeShards(sorted, t.count),
	}
	t.mergeTime = time.Since(begin)
	return tr
}

// mergeCursor is one shard's read position in the k-way merge.
type mergeCursor struct {
	evs []Event
	pos int
}

// mergeShards k-way merges per-rank, canonically sorted event logs into the
// global (Start, Rank, End) order. Heads of distinct shards always differ
// in Rank, so the heap comparison is a strict total order and the merge
// result is independent of shard arrival order. The heap is a non-boxing
// generic heap with container/heap's sift semantics, so the merge order is
// byte-identical to the boxed implementation it replaced.
func mergeShards(shards [][]Event, total int) []Event {
	out := make([]Event, 0, total)
	switch len(shards) {
	case 0:
		return out
	case 1:
		return append(out, shards[0]...)
	}
	h := heapx.New(func(a, b *mergeCursor) bool {
		return eventBefore(&a.evs[a.pos], &b.evs[b.pos])
	})
	cursors := make([]*mergeCursor, 0, len(shards))
	for _, evs := range shards {
		if len(evs) > 0 {
			cursors = append(cursors, &mergeCursor{evs: evs})
		}
	}
	h.Init(cursors)
	for h.Len() > 0 {
		c := h.Peek()
		out = append(out, c.evs[c.pos])
		c.pos++
		if c.pos == len(c.evs) {
			h.Pop()
		} else {
			h.FixRoot()
		}
	}
	return out
}
