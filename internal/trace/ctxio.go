package trace

// Context-aware I/O plumbing for the serving path: a long-running daemon
// must be able to abandon a characterization mid-trace when the request
// that asked for it is canceled or times out. Wrapping the log's reader
// puts the cancellation check on every physical read, so block decode
// loops — including lazy column materializations that happen deep inside
// analysis kernels — stop at the next I/O rather than running the trace
// to completion.

import (
	"context"
	"errors"
	"io"
)

// ReaderAtContext wraps r so every ReadAt first observes ctx: once ctx is
// done, reads fail with ctx.Err(). BlockReader decode errors that stem
// from cancellation are passed through un-wrapped (not folded into
// ErrBadFormat), so callers can errors.Is them against context.Canceled /
// context.DeadlineExceeded.
func ReaderAtContext(ctx context.Context, r io.ReaderAt) io.ReaderAt {
	if ctx == nil || ctx == context.Background() {
		return r
	}
	return &ctxReaderAt{ctx: ctx, r: r}
}

type ctxReaderAt struct {
	ctx context.Context
	r   io.ReaderAt
}

func (c *ctxReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.ReadAt(p, off)
}

// IsCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error — the "caller gave up" family, as opposed to corrupt
// input or real I/O failure.
func IsCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// readErr classifies a physical read failure: cancellation passes through
// bare (so errors.Is keeps working on it), anything else means malformed
// or truncated input and is folded into ErrBadFormat.
func readErr(err error) error {
	if IsCtxErr(err) {
		return err
	}
	return badf("%v", err)
}
