package trace

// Columnar block payloads and the v2.1 footer. PR 2's block payloads are
// row-interleaved: every column of every event must be varint-decoded even
// when a scan touches two columns. The columnar layout re-shapes each block
// into eleven independent, self-contained column segments (Start and End
// are each delta-chained within their own segment), and the v2.1 footer
// records every segment's byte length plus per-block rank bounds and
// level/op bitmasks — so a scan plan can skip whole blocks from the index
// and decode only the segments its column set names.

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// footerMagicV3 marks the v2.1 footer: v2.0 entries extended with per-block
// min/max rank, level/op bitmasks, and per-column segment byte lengths.
const footerMagicV3 = "VANIIDX3"

// footerMagicV4 marks the v2.2 footer: v2.1 entries extended with the
// per-column segment codec ids, so codec-mix statistics and run-aware scan
// planning never have to touch block bytes.
const footerMagicV4 = "VANIIDX4"

// Columnar block payload codecs. The payload is:
//
//	uvarint count
//	NumCols × segment, in ColSet bit order:
//	    Level, Op, Lib        count × uvarint
//	    Rank, Node            count × varint (bounded to int32)
//	    App, File             count × varint
//	    Offset, Size          count × varint
//	    Start                 count × varint: delta chain from 0
//	    End                   count × varint: delta chain from 0
//
// Each segment decodes with no state from any other, so a projected read
// touches only the byte ranges the footer records for the wanted columns.
const (
	codecRawCol   = 2
	codecFlateCol = 3
)

// v2.2 columnar payload codecs: the same segment order, but every segment
// begins with a codec id byte and its body uses the segment codec it names
// (see segcodec.go). Flate remains an optional outer layer.
const (
	codecRawColV22   = 4
	codecFlateColV22 = 5
)

// payloadKind identifies a block payload layout after frame unwrapping.
type payloadKind int

const (
	payloadRow    payloadKind = iota // PR 2 row-interleaved events
	payloadCol                       // v2.1 columnar, raw-varint segments
	payloadColV22                    // v2.2 columnar, per-segment codecs
)

// blockStatsCol computes a block's full v2.1 footer statistics: time and
// rank bounds plus level/op occupancy masks (the pruning surface).
func blockStatsCol(evs []Event) BlockInfo {
	bi := BlockInfo{Count: len(evs), HasStats: true}
	if len(evs) == 0 {
		return bi
	}
	bi.MinStart, bi.MaxStart = evs[0].Start, evs[0].Start
	bi.MinRank, bi.MaxRank = evs[0].Rank, evs[0].Rank
	for i := range evs {
		e := &evs[i]
		if e.Start < bi.MinStart {
			bi.MinStart = e.Start
		} else if e.Start > bi.MaxStart {
			bi.MaxStart = e.Start
		}
		if e.Rank < bi.MinRank {
			bi.MinRank = e.Rank
		} else if e.Rank > bi.MaxRank {
			bi.MaxRank = e.Rank
		}
		if uint(e.Level) < 32 {
			bi.LevelMask |= 1 << e.Level
		}
		if uint(e.Op) < 32 {
			bi.OpMask |= 1 << e.Op
		}
	}
	return bi
}

// appendColSegment encodes one column of evs as an independent segment.
func appendColSegment(dst []byte, col int, evs []Event) []byte {
	switch ColSet(1) << col {
	case ColLevel:
		for i := range evs {
			dst = binary.AppendUvarint(dst, uint64(evs[i].Level))
		}
	case ColOp:
		for i := range evs {
			dst = binary.AppendUvarint(dst, uint64(evs[i].Op))
		}
	case ColLib:
		for i := range evs {
			dst = binary.AppendUvarint(dst, uint64(evs[i].Lib))
		}
	case ColRank:
		for i := range evs {
			dst = binary.AppendVarint(dst, int64(evs[i].Rank))
		}
	case ColNode:
		for i := range evs {
			dst = binary.AppendVarint(dst, int64(evs[i].Node))
		}
	case ColApp:
		for i := range evs {
			dst = binary.AppendVarint(dst, int64(evs[i].App))
		}
	case ColFile:
		for i := range evs {
			dst = binary.AppendVarint(dst, int64(evs[i].File))
		}
	case ColOffset:
		for i := range evs {
			dst = binary.AppendVarint(dst, evs[i].Offset)
		}
	case ColSize:
		for i := range evs {
			dst = binary.AppendVarint(dst, evs[i].Size)
		}
	case ColStart:
		prev := int64(0)
		for i := range evs {
			s := int64(evs[i].Start)
			dst = binary.AppendVarint(dst, s-prev)
			prev = s
		}
	case ColEnd:
		prev := int64(0)
		for i := range evs {
			e := int64(evs[i].End)
			dst = binary.AppendVarint(dst, e-prev)
			prev = e
		}
	}
	return dst
}

// decodeColSegment decodes n values of one column segment from c into the
// matching slice of cols (already grown to n rows).
func decodeColSegment(c *byteCursor, col, n int, cols *Columns) error {
	switch ColSet(1) << col {
	case ColLevel:
		for i := 0; i < n; i++ {
			cols.Level[i] = uint8(c.uvarint())
		}
	case ColOp:
		for i := 0; i < n; i++ {
			cols.Op[i] = uint8(c.uvarint())
		}
	case ColLib:
		for i := 0; i < n; i++ {
			cols.Lib[i] = uint8(c.uvarint())
		}
	case ColRank:
		for i := 0; i < n; i++ {
			cols.Rank[i] = int32(boundedInt(c, "rank"))
		}
	case ColNode:
		for i := 0; i < n; i++ {
			cols.Node[i] = int32(boundedInt(c, "node"))
		}
	case ColApp:
		for i := 0; i < n; i++ {
			cols.App[i] = int32(c.varint())
		}
	case ColFile:
		for i := 0; i < n; i++ {
			cols.File[i] = int32(c.varint())
		}
	case ColOffset:
		for i := 0; i < n; i++ {
			cols.Offset[i] = c.varint()
		}
	case ColSize:
		for i := 0; i < n; i++ {
			cols.Size[i] = c.varint()
		}
	case ColStart:
		prev := int64(0)
		for i := 0; i < n; i++ {
			prev += c.varint()
			cols.Start[i] = prev
		}
	case ColEnd:
		prev := int64(0)
		for i := 0; i < n; i++ {
			prev += c.varint()
			cols.End[i] = prev
		}
	}
	return c.err
}

// encodeColumnarFrame encodes one block's events as a v2.1 columnar payload
// wrapped in a frame, returning the footer entry (pruning stats plus the
// per-column byte ranges the projected read path seeks by).
func encodeColumnarFrame(evs []Event, compress bool) ([]byte, BlockInfo) {
	bi := blockStatsCol(evs)
	pp := getPayloadBuf(16 + minEventBytes*2*len(evs))
	payload := binary.AppendUvarint((*pp)[:0], uint64(len(evs)))
	for col := 0; col < NumCols; col++ {
		n := len(payload)
		payload = appendColSegment(payload, col, evs)
		bi.ColLens[col] = int64(len(payload) - n)
	}
	frame := wrapFrame(payload, compress, payloadCol)
	*pp = payload
	putPayloadBuf(pp)
	return frame, bi
}

// encodeColumnarFrameV22 encodes one block's events as a v2.2 columnar
// payload: every segment carries its codec id byte and the body the cost
// model (or the forced codec, when force >= 0) chose. The footer entry
// records the per-segment byte ranges and codec ids.
func encodeColumnarFrameV22(evs []Event, compress bool, force int) ([]byte, BlockInfo) {
	bi := blockStatsCol(evs)
	bi.HasCodecs = true
	sc := segScratchPool.Get().(*segScratch)
	pp := getPayloadBuf(16 + minEventBytes*2*len(evs))
	payload := binary.AppendUvarint((*pp)[:0], uint64(len(evs)))
	for col := 0; col < NumCols; col++ {
		n := len(payload)
		payload, bi.SegCodecs[col] = appendSegV22(payload, col, evs, force, sc)
		bi.ColLens[col] = int64(len(payload) - n)
	}
	frame := wrapFrame(payload, compress, payloadColV22)
	if compress && force < 0 {
		// Deflate feeds on exactly the byte-level redundancy the
		// lightweight codecs strip: a bitpacked or dictionary segment is
		// near-incompressible while its raw varint form often deflates
		// below it. Under an outer flate layer, auto mode therefore also
		// tries the all-raw payload and keeps whichever frame compressed
		// smaller — per block, so the choice stays deterministic at any
		// encode parallelism.
		rawBi := bi
		rp := getPayloadBuf(16 + minEventBytes*2*len(evs))
		raw := binary.AppendUvarint((*rp)[:0], uint64(len(evs)))
		for col := 0; col < NumCols; col++ {
			n := len(raw)
			raw, rawBi.SegCodecs[col] = appendSegV22(raw, col, evs, segRaw, sc)
			rawBi.ColLens[col] = int64(len(raw) - n)
		}
		if rawFrame := wrapFrame(raw, true, payloadColV22); len(rawFrame) < len(frame) {
			frame, bi = rawFrame, rawBi
		}
		*rp = raw
		putPayloadBuf(rp)
	}
	segScratchPool.Put(sc)
	*pp = payload
	putPayloadBuf(pp)
	return frame, bi
}

// decodeBlockColumnsSeq decodes a columnar payload sequentially — every
// segment in order — for readers without footer byte ranges (the streaming
// Scanner, or crafted logs pairing columnar payloads with a v2.0 footer).
func decodeBlockColumnsSeq(payload []byte, blockEvents int, cols *Columns) error {
	c := &byteCursor{b: payload}
	count := c.uvarint()
	if c.err != nil {
		return c.err
	}
	if err := checkBlockCount(count, len(payload), blockEvents); err != nil {
		return err
	}
	cols.grow(int(count))
	for col := 0; col < NumCols; col++ {
		if err := decodeColSegment(c, col, int(count), cols); err != nil {
			return fmt.Errorf("%s column: %w", colNames[col], err)
		}
	}
	if c.off != len(payload) {
		return badf("%d trailing bytes after block columns", len(payload)-c.off)
	}
	return nil
}

// decodeBlockColumnsSeqV22 is decodeBlockColumnsSeq for v2.2 payloads: each
// segment is self-describing (codec id byte first), so sequential readers
// decode without any footer metadata.
func decodeBlockColumnsSeqV22(payload []byte, blockEvents int, cols *Columns) error {
	c := &byteCursor{b: payload}
	count := c.uvarint()
	if c.err != nil {
		return c.err
	}
	if err := checkPayloadCount(count, len(payload), blockEvents, payloadColV22); err != nil {
		return err
	}
	cols.grow(int(count))
	for col := 0; col < NumCols; col++ {
		if err := decodeSegV22(c, col, int(count), cols); err != nil {
			return fmt.Errorf("%s column: %w", colNames[col], err)
		}
	}
	if c.off != len(payload) {
		return badf("%d trailing bytes after block columns", len(payload)-c.off)
	}
	return nil
}

// colsToEvents transposes decoded columns into row-major events, appending
// into dst's capacity (dst is reset).
func colsToEvents(cols *Columns, dst []Event) []Event {
	dst = dst[:0]
	for i := 0; i < cols.N; i++ {
		dst = append(dst, Event{
			Level:  Level(cols.Level[i]),
			Op:     Op(cols.Op[i]),
			Lib:    Lib(cols.Lib[i]),
			Rank:   cols.Rank[i],
			Node:   cols.Node[i],
			App:    cols.App[i],
			File:   cols.File[i],
			Offset: cols.Offset[i],
			Size:   cols.Size[i],
			Start:  time.Duration(cols.Start[i]),
			End:    time.Duration(cols.End[i]),
		})
	}
	return dst
}

// BlockData is one block's unwrapped payload held in memory for on-demand
// column materialization: colstore's lazy chunks keep a BlockData and
// decode individual segments only when an analysis kernel first touches
// them. Decode is additive over a shared Columns value and is not safe for
// concurrent use on the same receiver (colstore serializes per-chunk
// materialization behind the chunk's lock).
type BlockData struct {
	payload     []byte
	kind        payloadKind
	projectable bool
	count       int
	blockEvents int
	block       int
	segBase     int
	colLens     [NumCols]int64
	segCodecs   [NumCols]uint8
	hasCodecs   bool
	memo        *colMemo
}

// colMemo caches a block's fully decoded columns so a handle shared across
// requests (vanid's block cache) decodes its payload exactly once.
type colMemo struct {
	mu     sync.Mutex
	filled bool
	cols   Columns
	bytes  int64 // payload bytes decoded by the single fill
}

// memoRowBytes is the resident size of one decoded row across all eleven
// columns (3 × uint8, 4 × int32, 4 × int64) — the cache-budget estimate for
// a filled memo.
const memoRowBytes = 3*1 + 4*4 + 4*8

// MemoRowBytes is the worst-case resident bytes one memoized row costs —
// the budget unit for memory-bounded block caches.
const MemoRowBytes = memoRowBytes

// EnableMemo arms the block's decoded-column memo: the first Decode call
// materializes every column once and reports its decoded byte count; every
// later call copies the cached values out and reports zero decoded bytes.
// A memoized BlockData is safe for concurrent Decode calls — that is what
// lets vanid's shared block cache hand one handle to many requests.
func (bd *BlockData) EnableMemo() {
	if bd.memo == nil {
		bd.memo = &colMemo{}
	}
}

// MemoBytes returns the resident size of the decoded-column memo once
// filled, for cache byte budgeting.
func (bd *BlockData) MemoBytes() int64 { return int64(bd.count) * memoRowBytes }

// copyColumns fills dst with a copy of src's values. The memo's slices are
// shared across requests, so callers get copies they are free to adopt,
// reuse, or overwrite.
func copyColumns(dst, src *Columns) {
	dst.grow(src.N)
	copy(dst.Level, src.Level)
	copy(dst.Op, src.Op)
	copy(dst.Lib, src.Lib)
	copy(dst.Rank, src.Rank)
	copy(dst.Node, src.Node)
	copy(dst.App, src.App)
	copy(dst.File, src.File)
	copy(dst.Offset, src.Offset)
	copy(dst.Size, src.Size)
	copy(dst.Start, src.Start)
	copy(dst.End, src.End)
}

// Count returns the number of events in the block.
func (bd *BlockData) Count() int { return bd.count }

// PayloadBytes returns the unwrapped payload size in bytes.
func (bd *BlockData) PayloadBytes() int { return len(bd.payload) }

// Projectable reports whether single columns decode independently (columnar
// payload with footer byte ranges). Otherwise any Decode call performs a
// full-block decode regardless of the requested set.
func (bd *BlockData) Projectable() bool { return bd.projectable }

// ReadBlock fetches and unwraps block k, validating the payload's count
// prefix and — for projectable blocks — that the footer's column byte
// ranges tile the payload exactly. v2.2 payloads additionally validate each
// segment's leading codec id (and its agreement with the footer's, when the
// footer carries codec ids). The returned BlockData is independent of the
// reader's file handle.
func (br *BlockReader) ReadBlock(k int) (*BlockData, error) {
	payload, kind, err := br.readBlockPayload(k)
	if err != nil {
		return nil, err
	}
	bi := br.blocks[k]
	bd := &BlockData{
		payload:     payload,
		kind:        kind,
		count:       bi.Count,
		blockEvents: br.blockEvents,
		block:       k,
	}
	if kind == payloadRow {
		return bd, nil
	}
	c := &byteCursor{b: payload}
	count := c.uvarint()
	if c.err != nil {
		return nil, fmt.Errorf("block %d: %w", k, c.err)
	}
	if err := checkPayloadCount(count, len(payload), br.blockEvents, kind); err != nil {
		return nil, fmt.Errorf("block %d: %w", k, err)
	}
	if int(count) != bi.Count {
		return nil, badf("block %d payload holds %d events, index says %d", k, count, bi.Count)
	}
	if bi.HasStats {
		sum := int64(c.off)
		for _, cl := range bi.ColLens {
			sum += cl
		}
		if sum != int64(len(payload)) {
			return nil, badf("block %d column ranges cover %d of %d payload bytes", k, sum, len(payload))
		}
		bd.segBase = c.off
		bd.colLens = bi.ColLens
		bd.projectable = true
		if kind == payloadColV22 {
			// Each segment leads with its codec id; validate it and check
			// it against the footer's claim when one exists.
			off := int64(c.off)
			for col := 0; col < NumCols; col++ {
				if bi.ColLens[col] < 1 {
					return nil, badf("block %d %s column: empty v2.2 segment", k, colNames[col])
				}
				id := payload[off]
				if id >= numSegCodecs {
					return nil, badf("block %d %s column: unknown segment codec %d", k, colNames[col], id)
				}
				if bi.HasCodecs && id != bi.SegCodecs[col] {
					return nil, badf("block %d %s column: payload codec %d, footer says %d", k, colNames[col], id, bi.SegCodecs[col])
				}
				bd.segCodecs[col] = id
				off += bi.ColLens[col]
			}
			bd.hasCodecs = true
		}
	}
	return bd, nil
}

// SegCodec returns the segment codec id of the given column for v2.2
// projectable blocks, and whether codec ids are known at all.
func (bd *BlockData) SegCodec(col int) (uint8, bool) {
	if !bd.hasCodecs {
		return 0, false
	}
	return bd.segCodecs[col], true
}

// DecodeRuns decodes the RLE run summary of a value column without
// expanding rows — the input to colstore's run-aware scan kernels. It
// returns (nil, nil) when the column is not RLE-coded (or the block is not
// a projectable v2.2 block); Start and End never qualify because their
// segments store delta chains, whose runs are not value runs.
func (bd *BlockData) DecodeRuns(col int) ([]Run, error) {
	set := ColSet(1) << col
	if !bd.hasCodecs || bd.segCodecs[col] != segRLE || set&(ColStart|ColEnd) != 0 {
		return nil, nil
	}
	off := int64(bd.segBase)
	for i := 0; i < col; i++ {
		off += bd.colLens[i]
	}
	c := &byteCursor{b: bd.payload[off+1 : off+bd.colLens[col]]}
	runs, err := decodeSegRuns(c, bd.count, set&unsignedCols != 0, nil)
	if err != nil {
		return nil, fmt.Errorf("block %d %s column: %w", bd.block, colNames[col], err)
	}
	if c.off != len(c.b) {
		return nil, badf("block %d %s column: %d trailing bytes", bd.block, colNames[col], len(c.b)-c.off)
	}
	return runs, nil
}

// Decode materializes the requested columns into cols, growing it to the
// block's row count, and returns the payload bytes it actually decoded.
// Projectable blocks decode only the wanted segments; row-layout blocks and
// columnar blocks without byte ranges fall back to a full decode (every
// column filled, full payload size reported). Additive: columns decoded by
// an earlier call on the same cols are preserved. Memoized blocks (see
// EnableMemo) decode every column exactly once and serve later calls as
// copies reporting zero decoded bytes.
func (bd *BlockData) Decode(want ColSet, cols *Columns) (int64, error) {
	m := bd.memo
	if m == nil {
		return bd.decodeInto(want, cols)
	}
	m.mu.Lock()
	if !m.filled {
		n, err := bd.decodeInto(AllCols, &m.cols)
		if err != nil {
			m.mu.Unlock()
			return 0, err
		}
		m.bytes, m.filled = n, true
		m.mu.Unlock()
		copyColumns(cols, &m.cols)
		return n, nil
	}
	m.mu.Unlock()
	copyColumns(cols, &m.cols)
	return 0, nil
}

// decodeInto is Decode without the memo layer.
func (bd *BlockData) decodeInto(want ColSet, cols *Columns) (int64, error) {
	if !bd.projectable {
		var err error
		switch bd.kind {
		case payloadColV22:
			err = decodeBlockColumnsSeqV22(bd.payload, bd.blockEvents, cols)
		case payloadCol:
			err = decodeBlockColumnsSeq(bd.payload, bd.blockEvents, cols)
		default:
			err = decodeBlockColumns(bd.payload, bd.blockEvents, cols)
		}
		if err != nil {
			return 0, fmt.Errorf("block %d: %w", bd.block, err)
		}
		if cols.N != bd.count {
			return 0, badf("block %d decodes %d events, index says %d", bd.block, cols.N, bd.count)
		}
		return int64(len(bd.payload)), nil
	}
	cols.growSet(bd.count, want)
	// The count prefix was parsed by ReadBlock; only segment bytes count.
	var decoded int64
	off := int64(bd.segBase)
	for col := 0; col < NumCols; col++ {
		cl := bd.colLens[col]
		if want&(ColSet(1)<<col) != 0 {
			c := &byteCursor{b: bd.payload[off : off+cl]}
			var err error
			if bd.kind == payloadColV22 {
				err = decodeSegV22(c, col, bd.count, cols)
			} else {
				err = decodeColSegment(c, col, bd.count, cols)
			}
			if err != nil {
				return decoded, fmt.Errorf("block %d %s column: %w", bd.block, colNames[col], err)
			}
			if c.off != int(cl) {
				return decoded, badf("block %d %s column: %d trailing bytes", bd.block, colNames[col], int(cl)-c.off)
			}
			decoded += cl
		}
		off += cl
	}
	return decoded, nil
}
