package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// perRankStreams builds deterministic per-rank event sequences: each rank
// emits events with non-decreasing End (as the engine clock does), with
// deliberate Start ties across ranks to exercise the merge tie-breaks.
func perRankStreams(ranks, perRank int, seed int64) map[int32][]Event {
	rng := rand.New(rand.NewSource(seed))
	streams := make(map[int32][]Event)
	for r := 0; r < ranks; r++ {
		var end time.Duration
		for i := 0; i < perRank; i++ {
			end += time.Duration(rng.Intn(3)) * time.Millisecond
			// Starts collide across ranks on purpose (coarse grid).
			start := end - time.Duration(rng.Intn(4))*time.Millisecond
			if start < 0 {
				start = 0
			}
			streams[int32(r)] = append(streams[int32(r)], Event{
				Op: Op(rng.Intn(int(numOps))), Rank: int32(r),
				Node: int32(r / 4), Size: int64(rng.Intn(1 << 16)),
				Start: start, End: end,
			})
		}
	}
	return streams
}

// TestShardMergeInterleavingInvariance is the satellite determinism test:
// two tracers fed the same per-rank streams in different global
// interleavings must Finish to byte-identical traces.
func TestShardMergeInterleavingInvariance(t *testing.T) {
	streams := perRankStreams(8, 200, 42)

	record := func(order []int32) *Trace {
		tr := NewTracer()
		pos := make(map[int32]int)
		for _, r := range order {
			tr.Record(streams[r][pos[r]])
			pos[r]++
		}
		return tr.Finish()
	}

	// Interleaving A: round-robin across ranks.
	var orderA []int32
	for i := 0; i < 200; i++ {
		for r := int32(0); r < 8; r++ {
			orderA = append(orderA, r)
		}
	}
	// Interleaving B: rank-major (all of rank 0, then rank 1, ...) in
	// reverse rank order.
	var orderB []int32
	for r := int32(7); r >= 0; r-- {
		for i := 0; i < 200; i++ {
			orderB = append(orderB, r)
		}
	}

	ta, tb := record(orderA), record(orderB)
	var bufA, bufB bytes.Buffer
	if err := Write(&bufA, ta); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bufB, tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("merges of the same shards under different interleavings are not byte-identical")
	}
}

// TestShardMergeRepeatable: merging the same tracer twice is byte-identical
// (Finish is a pure snapshot; parallel shard sorting must not leak
// scheduling nondeterminism).
func TestShardMergeRepeatable(t *testing.T) {
	streams := perRankStreams(16, 500, 7)
	tr := NewTracer()
	for r := int32(0); r < 16; r++ {
		for _, ev := range streams[r] {
			tr.Record(ev)
		}
	}
	var buf1, buf2 bytes.Buffer
	if err := Write(&buf1, tr.Finish()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf2, tr.Finish()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two Finish merges of the same shards differ")
	}
}

// TestShardMergeMatchesGlobalSort: the k-way merge must produce exactly the
// canonical SortByStart order of the concatenated event log.
func TestShardMergeMatchesGlobalSort(t *testing.T) {
	streams := perRankStreams(6, 300, 99)
	tr := NewTracer()
	var all []Event
	for r := int32(0); r < 6; r++ {
		for _, ev := range streams[r] {
			tr.Record(ev)
			all = append(all, ev)
		}
	}
	want := &Trace{Events: all}
	want.SortByStart()
	got := tr.Finish()
	if !reflect.DeepEqual(want.Events, got.Events) {
		t.Fatal("shard merge order diverges from SortByStart total order")
	}
}

// TestScannerStreamsEvents exercises the chunked on-disk reader: header
// first, then events in batches, matching the materializing Read exactly.
func TestScannerStreamsEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig := randomTrace(rng, 3000)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	hdr := sc.Header()
	if !reflect.DeepEqual(hdr.Meta, orig.Meta) || !reflect.DeepEqual(hdr.Apps, orig.Apps) {
		t.Fatal("scanner header mismatch")
	}
	if sc.Remaining() != uint64(len(orig.Events)) {
		t.Fatalf("Remaining = %d, want %d", sc.Remaining(), len(orig.Events))
	}
	var events []Event
	chunk := make([]Event, 257) // deliberately not a divisor of 3000
	for {
		n, err := sc.Next(chunk)
		events = append(events, chunk[:n]...)
		if err != nil {
			break
		}
	}
	if !reflect.DeepEqual(events, orig.Events) {
		t.Fatal("streamed events diverge from original")
	}
	if n, err := sc.Next(chunk); n != 0 || err == nil {
		t.Fatal("scanner did not report exhaustion")
	}
}
