package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// testFilters is the filter sweep the scan-plan tests run: each predicate
// alone, combinations, and degenerate cases (match-all, match-nothing).
func testFilters() []Filter {
	return []Filter{
		{},
		{From: 200 * time.Millisecond, To: 600 * time.Millisecond},
		{From: time.Millisecond},
		{To: 10 * time.Millisecond},
		{Ranks: []int32{0, 7, 128, 1279}},
		{Levels: []Level{LevelPosix}},
		{Levels: []Level{LevelApp, LevelMiddleware}},
		{Ops: OpClassData},
		{Ops: OpClassMeta},
		{Ops: OpClassIO},
		{From: 100 * time.Millisecond, To: 900 * time.Millisecond,
			Ranks: []int32{3, 4, 5, 900}, Levels: []Level{LevelPosix, LevelCompute}, Ops: OpClassData},
		{From: time.Hour, To: 2 * time.Hour}, // past the end: matches nothing
	}
}

// TestFilterColsAndEmpty pins the planner-facing surface: which columns a
// filter's residual predicate reads, and when it is a no-op.
func TestFilterColsAndEmpty(t *testing.T) {
	f := Filter{}
	if !f.Empty() || f.Cols() != 0 {
		t.Errorf("zero filter: Empty=%v Cols=%v", f.Empty(), f.Cols())
	}
	f = Filter{From: time.Second, Ranks: []int32{1}, Levels: []Level{LevelPosix}, Ops: OpClassData}
	if f.Empty() {
		t.Error("constrained filter claims Empty")
	}
	if want := ColStart | ColRank | ColLevel | ColOp; f.Cols() != want {
		t.Errorf("Cols = %v, want %v", f.Cols(), want)
	}
	f = Filter{To: time.Second}
	if f.Cols() != ColStart {
		t.Error("window-only filter should read only Start")
	}
}

// TestMatcherAgainstBruteForce: the compiled matcher agrees with a literal
// reading of the filter's definition on every event.
func TestMatcherAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng, 4000)
	for fi, f := range testFilters() {
		m := f.NewMatcher()
		for i := range tr.Events {
			e := &tr.Events[i]
			want := true
			if f.From != 0 && e.Start < f.From {
				want = false
			}
			if f.To != 0 && e.Start > f.To {
				want = false
			}
			if len(f.Ranks) > 0 {
				found := false
				for _, r := range f.Ranks {
					found = found || r == e.Rank
				}
				want = want && found
			}
			if len(f.Levels) > 0 {
				found := false
				for _, l := range f.Levels {
					found = found || l == e.Level
				}
				want = want && found
			}
			switch f.Ops {
			case OpClassData:
				want = want && e.Op.IsData()
			case OpClassMeta:
				want = want && e.Op.IsMeta()
			case OpClassIO:
				want = want && e.Op.IsIO()
			}
			if got := m.MatchEvent(e); got != want {
				t.Fatalf("filter %d event %d: MatchEvent=%v, brute force %v", fi, i, got, want)
			}
		}
	}
}

// TestSkipBlockConservative is the pruning soundness contract: a block the
// matcher skips must contain no matching event, for every filter, on both
// footer versions (v2.1 carries rank/level/op stats, v2.0 only time bounds).
func TestSkipBlockConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := randomTrace(rng, 3000)
	for _, rowLayout := range []bool{false, true} {
		data := encodeV2(t, tr, V2Options{BlockEvents: 256, RowLayout: rowLayout})
		br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		for fi, f := range testFilters() {
			m := f.NewMatcher()
			for k := 0; k < br.NumBlocks(); k++ {
				if !m.SkipBlock(br.BlockAt(k)) {
					continue
				}
				evs, err := br.DecodeEvents(k, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i := range evs {
					if m.MatchEvent(&evs[i]) {
						t.Fatalf("rowLayout=%v filter %d: block %d skipped but event %d matches",
							rowLayout, fi, k, i)
					}
				}
			}
		}
	}
}

// TestNeedColsBlockConservative: the per-block reduction soundness
// contract — whenever NeedColsBlock drops the window dimension for a
// block, every event in that block must pass the window; and it must
// actually bite — a window containing the whole log reduces every block
// to its value dimensions, while a window cutting the log interior leaves
// boundary blocks constrained and frees fully-contained ones.
func TestNeedColsBlockConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tr := randomTrace(rng, 3000)
	data := encodeV2(t, tr, V2Options{BlockEvents: 256})
	br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range testFilters() {
		m := f.NewMatcher()
		for k := 0; k < br.NumBlocks(); k++ {
			need := m.NeedColsBlock(br.BlockAt(k))
			full := m.NeedCols()
			if need != full && need != full&^ColStart {
				t.Fatalf("filter %d block %d: NeedColsBlock=%v not a ColStart-reduction of %v",
					fi, k, need, full)
			}
			if full&ColStart != 0 && need&ColStart == 0 {
				evs, err := br.DecodeEvents(k, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i := range evs {
					if !m.AcceptStart(int64(evs[i].Start)) {
						t.Fatalf("filter %d block %d: window dropped but event %d fails it", fi, k, i)
					}
				}
			}
		}
	}
	end := tr.Events[len(tr.Events)-1].Start
	reduced := func(f Filter) (yes, no int) {
		m := f.NewMatcher()
		for k := 0; k < br.NumBlocks(); k++ {
			if m.NeedColsBlock(br.BlockAt(k))&ColStart == 0 {
				yes++
			} else {
				no++
			}
		}
		return
	}
	if yes, no := reduced(Filter{To: 2 * end, Ranks: []int32{1}}); no != 0 || yes == 0 {
		t.Errorf("containing window: %d blocks reduced, %d still constrained", yes, no)
	}
	if yes, no := reduced(Filter{From: end / 4, To: 3 * end / 4}); yes == 0 || no == 0 {
		t.Errorf("interior window: want both reduced and constrained blocks, got %d/%d", yes, no)
	}
}

// TestSkipBlockPrunes: the stats actually bite — a narrow time window over a
// time-ordered log must prune most blocks, and a rank filter must prune
// blocks under the v2.1 footer.
func TestSkipBlockPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomTrace(rng, 3000)
	data := encodeV2(t, tr, V2Options{BlockEvents: 256})
	br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if br.NumBlocks() < 8 {
		t.Fatalf("want a multi-block log, got %d blocks", br.NumBlocks())
	}
	count := func(f Filter) int {
		m := f.NewMatcher()
		n := 0
		for k := 0; k < br.NumBlocks(); k++ {
			if m.SkipBlock(br.BlockAt(k)) {
				n++
			}
		}
		return n
	}
	end := tr.Events[len(tr.Events)-1].Start
	window := Filter{From: end / 4, To: end / 2}
	if n := count(window); n == 0 {
		t.Error("25% time window pruned no blocks")
	}
	if n := count(Filter{From: 10 * end}); n != br.NumBlocks() {
		t.Errorf("past-the-end window pruned %d of %d blocks", n, br.NumBlocks())
	}
	// randomTrace draws ops over every class, so a single-op-class filter
	// cannot prune; an impossible level can (levels only span 0-3).
	if n := count(Filter{Levels: []Level{Level(9)}}); n != br.NumBlocks() {
		t.Errorf("impossible level pruned %d of %d blocks", n, br.NumBlocks())
	}
}

// TestFooterStatsV21 verifies the per-block statistics the v2.1 footer
// round-trips: rank interval, level/op masks, and per-column byte ranges
// that tile the payload.
func TestFooterStatsV21(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tr := randomTrace(rng, 1500)
	const be = 256
	data := encodeV2(t, tr, V2Options{BlockEvents: be})
	br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < br.NumBlocks(); k++ {
		bi := br.BlockAt(k)
		if !bi.HasStats {
			t.Fatalf("block %d: columnar log lacks footer stats", k)
		}
		lo, hi := k*be, (k+1)*be
		if hi > len(tr.Events) {
			hi = len(tr.Events)
		}
		evs := tr.Events[lo:hi]
		minRank, maxRank := evs[0].Rank, evs[0].Rank
		var levelMask, opMask uint32
		for _, e := range evs {
			if e.Rank < minRank {
				minRank = e.Rank
			}
			if e.Rank > maxRank {
				maxRank = e.Rank
			}
			levelMask |= 1 << uint8(e.Level)
			opMask |= 1 << uint8(e.Op)
		}
		if bi.MinRank != minRank || bi.MaxRank != maxRank {
			t.Errorf("block %d: rank bounds [%d,%d], want [%d,%d]",
				k, bi.MinRank, bi.MaxRank, minRank, maxRank)
		}
		if bi.LevelMask != levelMask || bi.OpMask != opMask {
			t.Errorf("block %d: masks level=%#x op=%#x, want level=%#x op=%#x",
				k, bi.LevelMask, bi.OpMask, levelMask, opMask)
		}
		bd, err := br.ReadBlock(k)
		if err != nil {
			t.Fatal(err)
		}
		if !bd.Projectable() {
			t.Fatalf("block %d: v2.1 block not projectable", k)
		}
		var sum int64
		for _, cl := range bi.ColLens {
			sum += cl
		}
		if sum >= int64(bd.PayloadBytes()) || sum <= 0 {
			t.Errorf("block %d: column ranges cover %d of %d payload bytes",
				k, sum, bd.PayloadBytes())
		}
	}
}

// TestFooterRowLayoutHasNoStats: the legacy row layout writes the v2.0
// footer, whose entries carry only time bounds.
func TestFooterRowLayoutHasNoStats(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tr := randomTrace(rng, 600)
	data := encodeV2(t, tr, V2Options{BlockEvents: 256, RowLayout: true})
	br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < br.NumBlocks(); k++ {
		if br.BlockAt(k).HasStats {
			t.Fatalf("block %d: row-layout log claims column stats", k)
		}
		bd, err := br.ReadBlock(k)
		if err != nil {
			t.Fatal(err)
		}
		if bd.Projectable() {
			t.Fatalf("block %d: row-layout block claims projectability", k)
		}
	}
	// The scanner and full decode still work on the legacy layout.
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	assertTraceEqual(t, tr, got)
}

// TestBlockDataProjection: decoding any single column, or any subset, out
// of a projectable block matches the full decode — and additive calls
// preserve previously decoded columns.
func TestBlockDataProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	tr := randomTrace(rng, 900)
	for _, compress := range []bool{false, true} {
		data := encodeV2(t, tr, V2Options{BlockEvents: 256, Compress: compress})
		br, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < br.NumBlocks(); k++ {
			var full Columns
			if err := br.DecodeColumns(k, &full); err != nil {
				t.Fatal(err)
			}
			bd, err := br.ReadBlock(k)
			if err != nil {
				t.Fatal(err)
			}
			// Each column alone.
			var decodedSum int64
			for col := 0; col < NumCols; col++ {
				var one Columns
				n, err := bd.Decode(ColSet(1)<<col, &one)
				if err != nil {
					t.Fatalf("block %d col %s: %v", k, colNames[col], err)
				}
				decodedSum += n
				if !columnEqual(&full, &one, col) {
					t.Fatalf("block %d: projected %s column diverges from full decode",
						k, colNames[col])
				}
			}
			if want := int64(bd.PayloadBytes() - bd.segBase); decodedSum != want {
				t.Errorf("block %d: column decodes covered %d bytes, payload segments hold %d",
					k, decodedSum, want)
			}
			// Additive: Start first, then Rank — both present afterwards.
			var acc Columns
			if _, err := bd.Decode(ColStart, &acc); err != nil {
				t.Fatal(err)
			}
			if _, err := bd.Decode(ColRank, &acc); err != nil {
				t.Fatal(err)
			}
			if !columnEqual(&full, &acc, 9) || !columnEqual(&full, &acc, 3) {
				t.Fatalf("block %d: additive decode lost a column", k)
			}
		}
	}
}

// columnEqual compares one column (by ColSet bit index) between two decoded
// column sets.
func columnEqual(want, got *Columns, col int) bool {
	if want.N != got.N {
		return false
	}
	for i := 0; i < want.N; i++ {
		switch ColSet(1) << col {
		case ColLevel:
			if want.Level[i] != got.Level[i] {
				return false
			}
		case ColOp:
			if want.Op[i] != got.Op[i] {
				return false
			}
		case ColLib:
			if want.Lib[i] != got.Lib[i] {
				return false
			}
		case ColRank:
			if want.Rank[i] != got.Rank[i] {
				return false
			}
		case ColNode:
			if want.Node[i] != got.Node[i] {
				return false
			}
		case ColApp:
			if want.App[i] != got.App[i] {
				return false
			}
		case ColFile:
			if want.File[i] != got.File[i] {
				return false
			}
		case ColOffset:
			if want.Offset[i] != got.Offset[i] {
				return false
			}
		case ColSize:
			if want.Size[i] != got.Size[i] {
				return false
			}
		case ColStart:
			if want.Start[i] != got.Start[i] {
				return false
			}
		case ColEnd:
			if want.End[i] != got.End[i] {
				return false
			}
		}
	}
	return true
}

// TestFooterByteFlipSweep flips every footer byte in turn: the reader must
// either reject the log (wrapping ErrBadFormat) or serve a decode that
// never panics. This covers the new v2.1 stat and column-range fields.
func TestFooterByteFlipSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := randomTrace(rng, 700)
	full := encodeV2(t, tr, V2Options{BlockEvents: 128})
	br, err := NewBlockReader(bytes.NewReader(full), int64(len(full)))
	if err != nil {
		t.Fatal(err)
	}
	last := br.BlockAt(br.NumBlocks() - 1)
	footStart := int(last.Offset + last.Len)
	for pos := footStart; pos < len(full); pos++ {
		data := append([]byte(nil), full...)
		data[pos] ^= 0xff
		br2, err := NewBlockReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("flip at %d: open error %v does not wrap ErrBadFormat", pos, err)
			}
			continue
		}
		for k := 0; k < br2.NumBlocks(); k++ {
			bd, err := br2.ReadBlock(k)
			if err != nil {
				if !errors.Is(err, ErrBadFormat) {
					t.Fatalf("flip at %d: ReadBlock(%d) error %v does not wrap ErrBadFormat", pos, k, err)
				}
				break
			}
			var cols Columns
			if _, err := bd.Decode(ColStart|ColRank, &cols); err != nil && !errors.Is(err, ErrBadFormat) {
				t.Fatalf("flip at %d: Decode error %v does not wrap ErrBadFormat", pos, err)
			}
		}
	}
}

// TestParseHelpers covers the CLI-facing filter parsers.
func TestParseHelpers(t *testing.T) {
	ranks, err := ParseRanks("5, 1,3-6")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{1, 3, 4, 5, 6}; len(ranks) != len(want) {
		t.Fatalf("ParseRanks = %v, want %v", ranks, want)
	} else {
		for i := range want {
			if ranks[i] != want[i] {
				t.Fatalf("ParseRanks = %v, want %v", ranks, want)
			}
		}
	}
	for _, bad := range []string{"x", "-3", "9-2", "1-99999999999"} {
		if _, err := ParseRanks(bad); err == nil {
			t.Errorf("ParseRanks(%q) accepted", bad)
		}
	}
	levels, err := ParseLevels("posix, mw")
	if err != nil || len(levels) != 2 || levels[0] != LevelPosix || levels[1] != LevelMiddleware {
		t.Errorf("ParseLevels = %v, %v", levels, err)
	}
	if _, err := ParseLevels("kernel"); err == nil {
		t.Error("ParseLevels accepted kernel")
	}
	from, to, err := ParseWindow("2s:1m")
	if err != nil || from != 2*time.Second || to != time.Minute {
		t.Errorf("ParseWindow = %v, %v, %v", from, to, err)
	}
	if _, to, err := ParseWindow("2s:"); err != nil || to != 0 {
		t.Errorf("open-ended window: %v, %v", to, err)
	}
	for _, bad := range []string{"2s", "x:1s", "5s:2s"} {
		if _, _, err := ParseWindow(bad); err == nil {
			t.Errorf("ParseWindow(%q) accepted", bad)
		}
	}
	if c, err := ParseOpClass("meta"); err != nil || c != OpClassMeta {
		t.Errorf("ParseOpClass(meta) = %v, %v", c, err)
	}
	if _, err := ParseOpClass("sideways"); err == nil {
		t.Error("ParseOpClass accepted sideways")
	}
	if OpClassData.String() != "data" || OpClassAll.String() != "all" {
		t.Error("OpClass.String names wrong")
	}
	if s := (ColStart | ColEnd).String(); s != "start,end" {
		t.Errorf("ColSet.String = %q", s)
	}
	if AllCols.Count() != NumCols {
		t.Error("AllCols does not count every column")
	}
}

// TestFilterEventsOrder: FilterEvents preserves event order — the property
// every pushed-down scan is compared against.
func TestFilterEventsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	tr := randomTrace(rng, 2000)
	f := Filter{Ops: OpClassData}
	got := FilterEvents(tr.Events, f)
	if len(got) == 0 || len(got) == len(tr.Events) {
		t.Fatalf("filter kept %d of %d events: want a strict subset", len(got), len(tr.Events))
	}
	m := f.NewMatcher()
	j := 0
	for i := range tr.Events {
		if m.MatchEvent(&tr.Events[i]) {
			if got[j] != tr.Events[i] {
				t.Fatalf("filtered event %d out of order", j)
			}
			j++
		}
	}
	if j != len(got) {
		t.Fatalf("filter kept %d events, matcher says %d", len(got), j)
	}
}
