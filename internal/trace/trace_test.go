package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestOpClassification(t *testing.T) {
	data := []Op{OpRead, OpWrite}
	meta := []Op{OpOpen, OpClose, OpSeek, OpStat, OpSync, OpMkdir, OpReaddir}
	other := []Op{OpCompute, OpGPUCompute, OpBarrier}
	for _, op := range data {
		if !op.IsData() || op.IsMeta() || !op.IsIO() {
			t.Errorf("%v misclassified", op)
		}
	}
	for _, op := range meta {
		if op.IsData() || !op.IsMeta() || !op.IsIO() {
			t.Errorf("%v misclassified", op)
		}
	}
	for _, op := range other {
		if op.IsData() || op.IsMeta() || op.IsIO() {
			t.Errorf("%v misclassified", op)
		}
	}
}

func TestOpAndLevelStrings(t *testing.T) {
	if OpRead.String() != "read" || OpGPUCompute.String() != "gpu_compute" {
		t.Error("op names wrong")
	}
	if Op(200).String() != "unknown" {
		t.Error("out-of-range op should be unknown")
	}
	if LevelPosix.String() != "posix" || Level(99).String() != "unknown" {
		t.Error("level names wrong")
	}
}

func TestTracerInterning(t *testing.T) {
	tr := NewTracer()
	a1 := tr.AppID("cm1")
	a2 := tr.AppID("mViewer")
	if a1 == a2 {
		t.Error("distinct apps interned to the same id")
	}
	if tr.AppID("cm1") != a1 {
		t.Error("re-interning returned a new id")
	}
	f1 := tr.FileID("/p/gpfs1/out.bin")
	if tr.FileID("/p/gpfs1/out.bin") != f1 {
		t.Error("file re-interning returned a new id")
	}
	out := tr.Finish()
	if out.AppName(a1) != "cm1" || out.FilePath(f1) != "/p/gpfs1/out.bin" {
		t.Error("resolution failed")
	}
	if out.AppName(-1) != "?" || out.FilePath(-1) != "" {
		t.Error("out-of-range resolution not defensive")
	}
}

func TestTracerOverheadCharging(t *testing.T) {
	tr := NewTracer()
	tr.SetOverhead(2 * time.Microsecond)
	var charged time.Duration
	for i := 0; i < 10; i++ {
		charged += tr.Record(Event{Op: OpRead})
	}
	if charged != 20*time.Microsecond {
		t.Errorf("charged = %v, want 20µs", charged)
	}
	out := tr.Finish()
	if out.Meta.TraceOverhead != 20*time.Microsecond {
		t.Errorf("TraceOverhead = %v, want 20µs", out.Meta.TraceOverhead)
	}
}

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := NewTracer()
	tr.SetOverhead(time.Millisecond)
	tr.SetEnabled(false)
	if d := tr.Record(Event{Op: OpWrite}); d != 0 {
		t.Errorf("disabled tracer charged %v", d)
	}
	if tr.Len() != 0 {
		t.Error("disabled tracer captured an event")
	}
}

func TestObserveFileSizeMonotonic(t *testing.T) {
	tr := NewTracer()
	id := tr.FileID("/f")
	tr.ObserveFileSize(id, 100)
	tr.ObserveFileSize(id, 50) // must not shrink
	tr.ObserveFileSize(id, 200)
	out := tr.Finish()
	if out.Files[id].Size != 200 {
		t.Errorf("size = %d, want 200", out.Files[id].Size)
	}
}

func TestSetFileInfoPreservesPath(t *testing.T) {
	tr := NewTracer()
	id := tr.FileID("/data/x.h5")
	tr.SetFileInfo(id, FileInfo{Path: "/bogus", Format: "hdf5", NDims: 3, DataType: "int"})
	out := tr.Finish()
	f := out.Files[id]
	if f.Path != "/data/x.h5" {
		t.Errorf("path overwritten to %q", f.Path)
	}
	if f.Format != "hdf5" || f.NDims != 3 {
		t.Error("info fields lost")
	}
}

func TestFinishSortsByStart(t *testing.T) {
	tr := NewTracer()
	tr.Record(Event{Op: OpRead, Start: 5 * time.Second, End: 6 * time.Second})
	tr.Record(Event{Op: OpWrite, Start: time.Second, End: 2 * time.Second})
	tr.Record(Event{Op: OpOpen, Start: 3 * time.Second, End: 3 * time.Second})
	out := tr.Finish()
	for i := 1; i < len(out.Events); i++ {
		if out.Events[i].Start < out.Events[i-1].Start {
			t.Fatal("events not sorted by start")
		}
	}
	if out.JobRuntime() != 6*time.Second {
		t.Errorf("JobRuntime = %v, want 6s", out.JobRuntime())
	}
}

func TestFinishIsSnapshot(t *testing.T) {
	tr := NewTracer()
	tr.Record(Event{Op: OpRead})
	snap := tr.Finish()
	tr.Record(Event{Op: OpWrite})
	if len(snap.Events) != 1 {
		t.Error("snapshot grew after Finish")
	}
}

func randomTrace(rng *rand.Rand, nEvents int) *Trace {
	tr := NewTracer()
	tr.SetMeta(Meta{
		Workload: "hacc", JobID: "job-123", Nodes: 32, CoresPerNode: 40,
		GPUsPerNode: 4, MemPerNodeGB: 256, Ranks: 1280,
		NodeLocalDir: "/dev/shm", PFSDir: "/p/gpfs1",
		JobTimeLimit: 2 * time.Hour,
	})
	apps := []int32{tr.AppID("hacc"), tr.AppID("mProject")}
	var files []int32
	for i := 0; i < 10; i++ {
		id := tr.FileID("/p/gpfs1/part" + string(rune('a'+i)))
		tr.SetFileInfo(id, FileInfo{Format: "bin", Target: "gpfs", NDims: 1, DataType: "float"})
		files = append(files, id)
	}
	start := time.Duration(0)
	for i := 0; i < nEvents; i++ {
		start += time.Duration(rng.Intn(1000)) * time.Microsecond
		dur := time.Duration(rng.Intn(5000)) * time.Microsecond
		tr.Record(Event{
			Level:  Level(rng.Intn(4)),
			Op:     Op(rng.Intn(int(numOps))),
			Rank:   int32(rng.Intn(1280)),
			Node:   int32(rng.Intn(32)),
			App:    apps[rng.Intn(len(apps))],
			File:   files[rng.Intn(len(files))],
			Offset: rng.Int63n(1 << 30),
			Size:   rng.Int63n(1 << 24),
			Start:  start,
			End:    start + dur,
		})
	}
	return tr.Finish()
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := randomTrace(rng, 5000)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(orig.Meta, got.Meta) {
		t.Errorf("meta mismatch:\n%+v\n%+v", orig.Meta, got.Meta)
	}
	if !reflect.DeepEqual(orig.Apps, got.Apps) {
		t.Error("apps mismatch")
	}
	if !reflect.DeepEqual(orig.Files, got.Files) {
		t.Error("files mismatch")
	}
	if len(orig.Events) != len(got.Events) {
		t.Fatalf("event count %d != %d", len(got.Events), len(orig.Events))
	}
	for i := range orig.Events {
		if orig.Events[i] != got.Events[i] {
			t.Fatalf("event %d mismatch: %+v != %+v", i, got.Events[i], orig.Events[i])
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{}); err != nil {
		t.Fatalf("Write empty: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read empty: %v", err)
	}
	if len(got.Events) != 0 || len(got.Apps) != 0 || len(got.Files) != 0 {
		t.Error("empty trace not empty after round trip")
	}
}

func TestCodecRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACEFILE"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := randomTrace(rng, 100)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(magic) - 1, len(magic) + 3, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	// Valid magic followed by garbage must error, not hang or panic.
	data := append([]byte(magic), bytes.Repeat([]byte{0xff}, 64)...)
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("expected error for garbage body")
	}
}

// Property: round-tripping preserves any event list exactly (times are
// delta-encoded, so ordering and negative-delta-free sorting matter).
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomTrace(rng, int(n%512))
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
