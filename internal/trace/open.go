package trace

// File-owning constructors. NewScanner and NewBlockReader borrow their
// reader and never own a descriptor, which pushes lifetime management onto
// every caller — and a constructor error between os.Open and the deferred
// Close is exactly where descriptors leak in long-running processes. These
// variants open the file themselves and guarantee it is closed on every
// error path; on success the caller holds a Close method that is safe to
// defer.

import (
	"io"
	"os"
)

// FileScanner is a Scanner that owns its underlying file.
type FileScanner struct {
	*Scanner
	f *os.File
}

// Close releases the underlying file. Safe to call more than once.
func (s *FileScanner) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// OpenScanner opens path and returns a streaming scanner over it. If the
// header is unreadable or malformed the file is closed before returning,
// so no descriptor escapes an error path.
func OpenScanner(path string) (*FileScanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sc, err := NewScanner(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileScanner{Scanner: sc, f: f}, nil
}

// FileBlockReader is a BlockReader that owns its underlying file.
type FileBlockReader struct {
	*BlockReader
	f *os.File
}

// Close releases the underlying file. Safe to call more than once.
func (b *FileBlockReader) Close() error {
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}

// OpenBlockReader opens a VANITRC2 log at path and returns a block reader
// over it. The file is closed on every error path — stat failure, a
// non-v2 magic, or a corrupt footer — so no descriptor escapes.
func OpenBlockReader(path string) (*FileBlockReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	br, err := NewBlockReader(f, info.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileBlockReader{BlockReader: br, f: f}, nil
}

// SniffFile reports the trace format of the log at path by reading its
// magic, without keeping the file open.
func SniffFile(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, badf("%v", err)
	}
	format, ok := SniffMagic(head[:])
	if !ok {
		return 0, badf("unrecognized magic")
	}
	return format, nil
}
