package core

import (
	"fmt"
	"strconv"
)

func intToString(n int) string { return strconv.Itoa(n) }

// sizeStr renders a byte count the way the paper's tables do: "4KB",
// "64KB", "1MB", "16MB", "1.5TB".
func sizeStr(b int64) string {
	switch {
	case b <= 0:
		return "0"
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return trimUnit(float64(b)/float64(1<<10), "KB")
	case b < 1<<30:
		return trimUnit(float64(b)/float64(1<<20), "MB")
	case b < 1<<40:
		return trimUnit(float64(b)/float64(1<<30), "GB")
	default:
		return trimUnit(float64(b)/float64(1<<40), "TB")
	}
}

func trimUnit(v float64, unit string) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d%s", int64(v), unit)
	}
	return fmt.Sprintf("%.1f%s", v, unit)
}

// SizeString exposes the table-style byte formatting for reports.
func SizeString(b int64) string { return sizeStr(b) }
