package core

import (
	"sort"
	"time"

	"vani/internal/colstore"
	"vani/internal/stats"
	"vani/internal/storage"
	"vani/internal/trace"
)

// Options configures the analyzer.
type Options struct {
	// PhaseGap is the inter-I/O gap that separates two I/O phases
	// ("defined using a threshold between two I/O calls", Section IV-B).
	PhaseGap time.Duration
	// TimelineBins sets the resolution of the figure timelines.
	TimelineBins int
	// Storage, when non-nil, fills the storage entities (Tables VIII/IX)
	// from the system the job ran against.
	Storage *storage.Config
	// TopFlows limits the dependency panel to the N highest-volume files.
	TopFlows int
}

// DefaultOptions returns the analyzer settings used for the paper tables.
func DefaultOptions() Options {
	return Options{
		PhaseGap:     time.Second,
		TimelineBins: 64,
		TopFlows:     8,
	}
}

// Analyze builds the full characterization from a trace.
func Analyze(tr *trace.Trace, opt Options) *Characterization {
	if opt.PhaseGap <= 0 {
		opt.PhaseGap = time.Second
	}
	if opt.TimelineBins <= 0 {
		opt.TimelineBins = 64
	}
	if opt.TopFlows <= 0 {
		opt.TopFlows = 8
	}
	a := &analysis{tr: tr, tb: colstore.FromTrace(tr), opt: opt}
	return a.run()
}

type analysis struct {
	tr  *trace.Trace
	tb  *colstore.Table
	opt Options

	runtime time.Duration
	primary []int // row indices at each app's primary (app-facing) level

	fileAgg map[int32]*fileAgg
}

type fileAgg struct {
	id           int32
	ranks        map[int32]bool
	writerRanks  map[int32]bool
	readerRanks  map[int32]bool
	writerNodes  map[int32]bool
	readerNodes  map[int32]bool
	writerApps   map[int32]bool
	readerApps   map[int32]bool
	bytesRead    int64
	bytesWritten int64
	opens        int64
	dataOps      int64
	metaOps      int64
	ioDur        time.Duration
}

func (a *analysis) run() *Characterization {
	a.runtime = a.tr.JobRuntime()
	a.primary = a.primaryRows()
	a.fileAgg = a.aggregateFiles()

	c := &Characterization{Workload: a.tr.Meta.Workload}
	c.JobConfig = a.jobConfig()
	c.Apps = a.apps()
	c.Workflow = a.workflow(c.Apps)
	c.Phases = a.phases()
	c.HighLevel = a.highLevel()
	c.Middleware = a.middleware()
	c.NodeLocal, c.Shared = a.storageEntities()
	c.Dataset = a.dataset()
	c.File = a.fileEntity()
	c.Figure = a.figure()
	return c
}

type appFile struct {
	app  int32
	file int32
}

// primaryLevels returns, per (application, file) stream, the app-facing
// level: the highest abstraction through which that application touched
// that file. Counting at this level avoids double-counting the same
// logical operation across layers, while keeping POSIX-only traffic of an
// otherwise-buffered application (e.g. mViewer reading mosaics directly)
// visible.
func (a *analysis) primaryLevels() map[appFile]uint8 {
	lv := make(map[appFile]uint8)
	for i := 0; i < a.tb.N; i++ {
		if !a.tb.IsIO(i) {
			continue
		}
		k := appFile{a.tb.App[i], a.tb.File[i]}
		cur, ok := lv[k]
		if !ok || a.tb.Level[i] < cur {
			lv[k] = a.tb.Level[i]
		}
	}
	return lv
}

// primaryRows returns the rows at each (app, file) stream's primary level.
func (a *analysis) primaryRows() []int {
	levels := a.primaryLevels()
	var idx []int
	for i := 0; i < a.tb.N; i++ {
		if a.tb.IsIO(i) && a.tb.Level[i] == levels[appFile{a.tb.App[i], a.tb.File[i]}] {
			idx = append(idx, i)
		}
	}
	return idx
}

func (a *analysis) aggregateFiles() map[int32]*fileAgg {
	m := make(map[int32]*fileAgg)
	get := func(f int32) *fileAgg {
		fa := m[f]
		if fa == nil {
			fa = &fileAgg{
				id:          f,
				ranks:       map[int32]bool{},
				writerRanks: map[int32]bool{},
				readerRanks: map[int32]bool{},
				writerNodes: map[int32]bool{},
				readerNodes: map[int32]bool{},
				writerApps:  map[int32]bool{},
				readerApps:  map[int32]bool{},
			}
			m[f] = fa
		}
		return fa
	}
	for _, i := range a.primary {
		f := a.tb.File[i]
		if f < 0 {
			continue
		}
		fa := get(f)
		fa.ranks[a.tb.Rank[i]] = true
		fa.ioDur += a.tb.Dur(i)
		switch trace.Op(a.tb.Op[i]) {
		case trace.OpRead:
			fa.bytesRead += a.tb.Size[i]
			fa.readerRanks[a.tb.Rank[i]] = true
			fa.readerNodes[a.tb.Node[i]] = true
			fa.readerApps[a.tb.App[i]] = true
			fa.dataOps++
		case trace.OpWrite:
			fa.bytesWritten += a.tb.Size[i]
			fa.writerRanks[a.tb.Rank[i]] = true
			fa.writerNodes[a.tb.Node[i]] = true
			fa.writerApps[a.tb.App[i]] = true
			fa.dataOps++
		case trace.OpOpen:
			fa.opens++
			fa.metaOps++
		default:
			fa.metaOps++
		}
	}
	return m
}

func (a *analysis) jobConfig() JobConfigEntity {
	m := a.tr.Meta
	return JobConfigEntity{
		Nodes:           m.Nodes,
		CPUCoresPerNode: m.CoresPerNode,
		GPUsPerNode:     m.GPUsPerNode,
		NodeLocalBBDir:  m.NodeLocalDir,
		SharedBBDir:     m.SharedBBDir,
		PFSDir:          m.PFSDir,
		JobTime:         m.JobTimeLimit,
	}
}

// opCounts tallies data and meta ops over a row subset.
func (a *analysis) opCounts(rows []int) (data, meta int64) {
	for _, i := range rows {
		if a.tb.IsData(i) {
			data++
		} else if a.tb.IsMeta(i) {
			meta++
		}
	}
	return
}

func pcts(data, meta int64) (float64, float64) {
	total := data + meta
	if total == 0 {
		return 0, 0
	}
	return float64(data) / float64(total), float64(meta) / float64(total)
}

// unionDuration merges [start,end) intervals of the given rows and returns
// the total covered time — the workload's I/O wall-clock.
func (a *analysis) unionDuration(rows []int) time.Duration {
	if len(rows) == 0 {
		return 0
	}
	type iv struct{ s, e int64 }
	ivs := make([]iv, 0, len(rows))
	for _, i := range rows {
		ivs = append(ivs, iv{a.tb.Start[i], a.tb.End[i]})
	}
	sort.Slice(ivs, func(x, y int) bool { return ivs[x].s < ivs[y].s })
	var total, curS, curE int64
	curS, curE = ivs[0].s, ivs[0].e
	for _, v := range ivs[1:] {
		if v.s > curE {
			total += curE - curS
			curS, curE = v.s, v.e
		} else if v.e > curE {
			curE = v.e
		}
	}
	total += curE - curS
	return time.Duration(total)
}

// dominantSize returns the most frequent exact transfer size among the
// given data rows (ties break toward the larger size).
func (a *analysis) dominantSize(rows []int, op trace.Op) int64 {
	counts := map[int64]int64{}
	for _, i := range rows {
		if trace.Op(a.tb.Op[i]) == op && a.tb.Size[i] > 0 {
			counts[a.tb.Size[i]]++
		}
	}
	var best int64
	var bestN int64 = -1
	for sz, n := range counts {
		if n > bestN || (n == bestN && sz > best) {
			best, bestN = sz, n
		}
	}
	if bestN <= 0 {
		return 0
	}
	return best
}

// interfaceName maps the dominant library of a row set to the table name.
func (a *analysis) interfaceName(rows []int) string {
	counts := map[trace.Lib]int64{}
	for _, i := range rows {
		counts[trace.Lib(a.tb.Lib[i])]++
	}
	var best trace.Lib
	var bestN int64 = -1
	for lib, n := range counts {
		if lib == trace.LibNone {
			continue
		}
		if n > bestN {
			best, bestN = lib, n
		}
	}
	if bestN <= 0 {
		return "none"
	}
	if best == trace.LibHDF5 {
		return "HDF5 (MPI-IO)"
	}
	return best.String()
}

// accessPattern classifies offsets per (file, rank) stream: sequential if
// at least 80% of consecutive data accesses are non-decreasing in offset.
func (a *analysis) accessPattern(rows []int) string {
	type key struct {
		f int32
		r int32
	}
	last := map[key]int64{}
	var seq, total int64
	for _, i := range rows {
		if !a.tb.IsData(i) || a.tb.File[i] < 0 {
			continue
		}
		k := key{a.tb.File[i], a.tb.Rank[i]}
		if prev, ok := last[k]; ok {
			total++
			if a.tb.Offset[i] >= prev {
				seq++
			}
		}
		last[k] = a.tb.Offset[i]
	}
	if total == 0 || float64(seq)/float64(total) >= 0.8 {
		return "Seq"
	}
	return "Random"
}

func (a *analysis) apps() []AppEntity {
	byApp := map[int32][]int{}
	var order []int32
	for _, i := range a.primary {
		app := a.tb.App[i]
		if _, ok := byApp[app]; !ok {
			order = append(order, app)
		}
		byApp[app] = append(byApp[app], i)
	}
	sort.Slice(order, func(x, y int) bool { return order[x] < order[y] })

	var out []AppEntity
	for _, app := range order {
		rows := byApp[app]
		data, meta := a.opCounts(rows)
		dPct, mPct := pcts(data, meta)
		var bytes int64
		var minS, maxE int64
		minS = 1<<63 - 1
		for _, i := range rows {
			if a.tb.IsData(i) {
				bytes += a.tb.Size[i]
			}
			if a.tb.Start[i] < minS {
				minS = a.tb.Start[i]
			}
			if a.tb.End[i] > maxE {
				maxE = a.tb.End[i]
			}
		}
		// Processes counts every rank that emitted any event for the app,
		// including pure compute ranks (the paper's per-app process count).
		ranks := map[int32]bool{}
		for i := 0; i < a.tb.N; i++ {
			if a.tb.App[i] == app {
				ranks[a.tb.Rank[i]] = true
			}
		}
		fpp, shared := a.fileSplitForApp(app)
		out = append(out, AppEntity{
			Name:        a.tr.AppName(app),
			Processes:   len(ranks),
			ProcDep:     a.procDep(app),
			FPPFiles:    fpp,
			SharedFiles: shared,
			IOBytes:     bytes,
			DataOpsPct:  dPct,
			MetaOpsPct:  mPct,
			Interface:   a.interfaceName(rows),
			Runtime:     time.Duration(maxE - minS),
		})
	}
	return out
}

// fileSplitForApp counts FPP vs shared files among files the app touched.
func (a *analysis) fileSplitForApp(app int32) (fpp, shared int) {
	for _, fa := range a.fileAgg {
		if !fa.readerApps[app] && !fa.writerApps[app] {
			continue
		}
		if len(fa.ranks) == 1 {
			fpp++
		} else {
			shared++
		}
	}
	return
}

// procDep classifies the dominant process/data relationship of an app.
func (a *analysis) procDep(app int32) ProcDepKind {
	var solo, singleWriter, sharedRead, pipeline int
	for _, fa := range a.fileAgg {
		if !fa.readerApps[app] && !fa.writerApps[app] {
			continue
		}
		switch {
		case len(fa.ranks) == 1:
			solo++
		case len(fa.writerRanks) == 1 && len(fa.ranks) > 1:
			singleWriter++
		case len(fa.writerRanks) == 0 && len(fa.readerRanks) > 1:
			sharedRead++
		default:
			pipeline++
		}
	}
	max, kind := solo, DepFilePerProcess
	if singleWriter > max {
		max, kind = singleWriter, DepSingleWriter
	}
	if sharedRead > max {
		max, kind = sharedRead, DepSharedRead
	}
	if pipeline > max {
		kind = DepPipeline
	}
	return kind
}

func (a *analysis) workflow(apps []AppEntity) WorkflowEntity {
	data, meta := a.opCounts(a.primary)
	dPct, mPct := pcts(data, meta)
	var read, written int64
	for _, i := range a.primary {
		switch trace.Op(a.tb.Op[i]) {
		case trace.OpRead:
			read += a.tb.Size[i]
		case trace.OpWrite:
			written += a.tb.Size[i]
		}
	}
	var fpp, shared int
	for _, fa := range a.fileAgg {
		if len(fa.ranks) == 1 {
			fpp++
		} else {
			shared++
		}
	}
	ranksPerNode := 0
	if a.tr.Meta.Nodes > 0 {
		ranksPerNode = a.tr.Meta.Ranks / a.tr.Meta.Nodes
	}
	gpus := 0
	for i := 0; i < a.tb.N; i++ {
		if trace.Op(a.tb.Op[i]) == trace.OpGPUCompute {
			gpus = a.tr.Meta.GPUsPerNode
			break
		}
	}
	crossRAW := false
	for _, fa := range a.fileAgg {
		if len(fa.writerNodes) == 0 || len(fa.readerNodes) == 0 {
			continue
		}
		for rn := range fa.readerNodes {
			if !fa.writerNodes[rn] || len(fa.writerNodes) > 1 {
				crossRAW = true
			}
		}
	}
	return WorkflowEntity{
		CPUCoresUsedPerNode: ranksPerNode,
		GPUsUsedPerNode:     gpus,
		NumApps:             len(apps),
		AppDeps:             a.appDeps(),
		FPPFiles:            fpp,
		SharedFiles:         shared,
		IOBytes:             read + written,
		ReadBytes:           read,
		WriteBytes:          written,
		DataOpsPct:          dPct,
		MetaOpsPct:          mPct,
		CrossNodeRAW:        crossRAW,
		IOTime:              a.unionDuration(a.primary),
		Runtime:             a.runtime,
	}
}

// appDeps derives the application-level data-dependency edges: consumer
// apps reading files that producer apps wrote.
func (a *analysis) appDeps() []AppDep {
	type key struct{ prod, cons int32 }
	agg := map[key]*AppDep{}
	var order []key
	for _, fa := range a.fileAgg {
		for prod := range fa.writerApps {
			for cons := range fa.readerApps {
				if prod == cons {
					continue
				}
				k := key{prod, cons}
				d := agg[k]
				if d == nil {
					d = &AppDep{
						Producer: a.tr.AppName(prod),
						Consumer: a.tr.AppName(cons),
					}
					agg[k] = d
					order = append(order, k)
				}
				d.Bytes += fa.bytesRead
				d.Files++
			}
		}
	}
	sort.Slice(order, func(x, y int) bool {
		if order[x].prod != order[y].prod {
			return order[x].prod < order[y].prod
		}
		return order[x].cons < order[y].cons
	})
	out := make([]AppDep, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}

// phases splits the primary I/O rows into activity bursts separated by
// more than the gap threshold, then characterizes each burst (Table V).
func (a *analysis) phases() []IOPhaseEntity {
	if len(a.primary) == 0 {
		return nil
	}
	rows := append([]int(nil), a.primary...)
	sort.Slice(rows, func(x, y int) bool { return a.tb.Start[rows[x]] < a.tb.Start[rows[y]] })

	gap := int64(a.opt.PhaseGap)
	var phases []IOPhaseEntity
	var cur []int
	var curEnd int64
	flush := func() {
		if len(cur) == 0 {
			return
		}
		phases = append(phases, a.buildPhase(len(phases), cur))
		cur = nil
	}
	for _, i := range rows {
		if len(cur) > 0 && a.tb.Start[i]-curEnd > gap {
			flush()
		}
		cur = append(cur, i)
		if a.tb.End[i] > curEnd {
			curEnd = a.tb.End[i]
		}
	}
	flush()
	return phases
}

func (a *analysis) buildPhase(idx int, rows []int) IOPhaseEntity {
	data, meta := a.opCounts(rows)
	dPct, mPct := pcts(data, meta)
	var bytes int64
	ranks := map[int32]bool{}
	minS, maxE := a.tb.Start[rows[0]], int64(0)
	for _, i := range rows {
		if a.tb.IsData(i) {
			bytes += a.tb.Size[i]
		}
		ranks[a.tb.Rank[i]] = true
		if a.tb.Start[i] < minS {
			minS = a.tb.Start[i]
		}
		if a.tb.End[i] > maxE {
			maxE = a.tb.End[i]
		}
	}
	opsPerRank := float64(len(rows)) / float64(len(ranks))
	granule := a.dominantSize(rows, trace.OpRead)
	if g := a.dominantSize(rows, trace.OpWrite); granule == 0 || (g != 0 && data > 0 && g > 0 && a.countOp(rows, trace.OpWrite) > a.countOp(rows, trace.OpRead)) {
		granule = g
	}
	return IOPhaseEntity{
		Index:      idx,
		Start:      time.Duration(minS),
		End:        time.Duration(maxE),
		IOBytes:    bytes,
		DataOpsPct: dPct,
		MetaOpsPct: mPct,
		OpsPerRank: opsPerRank,
		Granule:    granule,
		Frequency:  phaseLabel(opsPerRank, granule),
		Runtime:    time.Duration(maxE - minS),
	}
}

func (a *analysis) countOp(rows []int, op trace.Op) int64 {
	var n int64
	for _, i := range rows {
		if trace.Op(a.tb.Op[i]) == op {
			n++
		}
	}
	return n
}

// phaseLabel renders the paper's "Frequency" attribute: a handful of ops
// per rank prints as "N ops/rank"; dense bursts of small ops are
// "Iterative"; dense bursts of larger ops are "Bulk".
func phaseLabel(opsPerRank float64, granule int64) string {
	switch {
	case opsPerRank <= 1.5:
		return "1 op"
	case opsPerRank <= 16:
		return itoa(int(opsPerRank+0.5)) + " ops/rank"
	case granule > 0 && granule <= 16*1024:
		return "Iterative (" + sizeStr(granule) + ")"
	default:
		return "Bulk (" + sizeStr(granule) + ")"
	}
}

func (a *analysis) highLevel() HighLevelIOEntity {
	// Data representation: dominant dimensionality weighted by file I/O.
	dims := map[int]int64{}
	for _, fa := range a.fileAgg {
		info := a.tr.Files[fa.id]
		if info.NDims > 0 {
			dims[info.NDims] += fa.bytesRead + fa.bytesWritten + 1
		}
	}
	bestDim, bestW := 0, int64(-1)
	for d, w := range dims {
		if w > bestW {
			bestDim, bestW = d, w
		}
	}
	repr := "unknown"
	if bestDim > 0 {
		repr = itoa(bestDim) + "D"
	}
	return HighLevelIOEntity{
		DataRepr: repr,
		Granularity: Granularity{
			Read:  a.dominantSize(a.primary, trace.OpRead),
			Write: a.dominantSize(a.primary, trace.OpWrite),
		},
		AccessPattern: a.accessPattern(a.primary),
		DataDist:      a.dataDist(),
	}
}

func (a *analysis) dataDist() stats.DistKind {
	var values []float64
	for _, s := range a.tr.Samples {
		values = append(values, s.Values...)
	}
	return stats.FitDistribution(values)
}

func (a *analysis) middleware() MiddlewareIOEntity {
	// POSIX-visible rows: what reaches storage after middleware.
	var posix []int
	for i := 0; i < a.tb.N; i++ {
		if a.tb.IsIO(i) && trace.Level(a.tb.Level[i]) == trace.LevelPosix {
			posix = append(posix, i)
		}
	}
	ranksPerNode := 0
	if a.tr.Meta.Nodes > 0 {
		ranksPerNode = a.tr.Meta.Ranks / a.tr.Meta.Nodes
	}
	extra := a.tr.Meta.CoresPerNode - ranksPerNode
	if extra < 0 {
		extra = 0
	}
	return MiddlewareIOEntity{
		ExtraIOCoresPerNode: extra,
		Granularity: Granularity{
			Read:  a.dominantSize(posix, trace.OpRead),
			Write: a.dominantSize(posix, trace.OpWrite),
		},
		MemPerNodeGB:  a.tr.Meta.MemPerNodeGB,
		AccessPattern: a.accessPattern(posix),
	}
}

func (a *analysis) storageEntities() (NodeLocalEntity, SharedStorageEntity) {
	var nl NodeLocalEntity
	var sh SharedStorageEntity
	nl.Dir = a.tr.Meta.NodeLocalDir
	sh.Dir = a.tr.Meta.PFSDir
	if cfg := a.opt.Storage; cfg != nil {
		nl.ParallelOps = cfg.NodeLocalParallel
		nl.CapacityBytes = cfg.NodeLocalCapacity
		nl.MaxBWPerNode = cfg.NodeLocalBW
		sh.ParallelServers = cfg.PFSServers
		sh.CapacityBytes = cfg.PFSCapacity
		sh.MaxBW = cfg.PFSServerBW * int64(cfg.PFSServers)
	}
	return nl, sh
}

func (a *analysis) dataset() DatasetEntity {
	formats := map[string]int64{}
	var totalSize int64
	var dataFileSize, metaFileSize int64
	for _, fa := range a.fileAgg {
		info := a.tr.Files[fa.id]
		formats[info.Format]++
		totalSize += info.Size
		if info.Size >= 1<<20 {
			if info.Size > dataFileSize {
				dataFileSize = info.Size
			}
		} else if info.Size > metaFileSize {
			metaFileSize = info.Size
		}
	}
	bestFmt, bestN := "", int64(-1)
	for f, n := range formats {
		if n > bestN || (n == bestN && f > bestFmt) {
			bestFmt, bestN = f, n
		}
	}
	data, meta := a.opCounts(a.primary)
	dPct, mPct := pcts(data, meta)
	var io int64
	for _, fa := range a.fileAgg {
		io += fa.bytesRead + fa.bytesWritten
	}
	return DatasetEntity{
		Format:       bestFmt,
		SizeBytes:    totalSize,
		NumFiles:     len(a.fileAgg),
		IOBytes:      io,
		IOTime:       a.unionDuration(a.primary),
		DataOpsPct:   dPct,
		MetaOpsPct:   mPct,
		DataFileSize: dataFileSize,
		MetaFileSize: metaFileSize,
		DataDist:     a.dataDist(),
	}
}

func (a *analysis) fileEntity() FileEntity {
	// Representative data file: the one with the highest I/O volume.
	var best *fileAgg
	for _, fa := range a.fileAgg {
		if best == nil || fa.bytesRead+fa.bytesWritten > best.bytesRead+best.bytesWritten {
			best = fa
		}
	}
	if best == nil {
		return FileEntity{}
	}
	info := a.tr.Files[best.id]
	dPct, mPct := pcts(best.dataOps, best.metaOps)
	enc := ""
	if info.Format == "fits" {
		enc = "FITS"
	}
	return FileEntity{
		Path:       info.Path,
		Format:     info.Format,
		SizeBytes:  info.Size,
		IOBytes:    best.bytesRead + best.bytesWritten,
		IOTime:     best.ioDur,
		DataOpsPct: dPct,
		MetaOpsPct: mPct,
		Attrs: FileFormatAttrs{
			Chunked:   false,
			NDatasets: 1,
			NDims:     info.NDims,
			DataType:  info.DataType,
			Encoding:  enc,
		},
	}
}

func (a *analysis) figure() FigureData {
	fig := FigureData{}
	span := a.runtime
	if span <= 0 {
		span = time.Second
	}
	fig.ReadTL = stats.NewTimeline(span, a.opt.TimelineBins)
	fig.WriteTL = stats.NewTimeline(span, a.opt.TimelineBins)
	for _, i := range a.primary {
		d := a.tb.Dur(i)
		switch trace.Op(a.tb.Op[i]) {
		case trace.OpRead:
			fig.ReadHist.Add(a.tb.Size[i], d)
			fig.ReadTL.Add(time.Duration(a.tb.Start[i]), time.Duration(a.tb.End[i]), a.tb.Size[i])
		case trace.OpWrite:
			fig.WriteHist.Add(a.tb.Size[i], d)
			fig.WriteTL.Add(time.Duration(a.tb.Start[i]), time.Duration(a.tb.End[i]), a.tb.Size[i])
		}
	}
	// Per-rank achieved bandwidth (Figure 2c).
	type rankAcc struct {
		rBytes, wBytes int64
		rDur, wDur     int64
	}
	perRank := map[int32]*rankAcc{}
	var rankOrder []int32
	for _, i := range a.primary {
		r := a.tb.Rank[i]
		acc := perRank[r]
		if acc == nil {
			acc = &rankAcc{}
			perRank[r] = acc
			rankOrder = append(rankOrder, r)
		}
		switch trace.Op(a.tb.Op[i]) {
		case trace.OpRead:
			acc.rBytes += a.tb.Size[i]
			acc.rDur += a.tb.End[i] - a.tb.Start[i]
		case trace.OpWrite:
			acc.wBytes += a.tb.Size[i]
			acc.wDur += a.tb.End[i] - a.tb.Start[i]
		}
	}
	sort.Slice(rankOrder, func(x, y int) bool { return rankOrder[x] < rankOrder[y] })
	for _, r := range rankOrder {
		acc := perRank[r]
		rb := RankBandwidth{Rank: r}
		if acc.rDur > 0 {
			rb.ReadBW = float64(acc.rBytes) / (float64(acc.rDur) / float64(time.Second))
		}
		if acc.wDur > 0 {
			rb.WriteBW = float64(acc.wBytes) / (float64(acc.wDur) / float64(time.Second))
		}
		fig.RankBW = append(fig.RankBW, rb)
	}

	// Dependency panel: highest-volume files.
	flows := make([]*fileAgg, 0, len(a.fileAgg))
	for _, fa := range a.fileAgg {
		flows = append(flows, fa)
	}
	sort.Slice(flows, func(x, y int) bool {
		bx := flows[x].bytesRead + flows[x].bytesWritten
		by := flows[y].bytesRead + flows[y].bytesWritten
		if bx != by {
			return bx > by
		}
		return flows[x].id < flows[y].id
	})
	if len(flows) > a.opt.TopFlows {
		flows = flows[:a.opt.TopFlows]
	}
	for _, fa := range flows {
		fig.TopFlows = append(fig.TopFlows, FileFlow{
			Path:         a.tr.Files[fa.id].Path,
			WriterRanks:  len(fa.writerRanks),
			ReaderRanks:  len(fa.readerRanks),
			BytesWritten: fa.bytesWritten,
			BytesRead:    fa.bytesRead,
			Opens:        fa.opens,
		})
	}
	return fig
}

// itoa forwards to util.go's formatter.
func itoa(n int) string { return intToString(n) }
