package core

import (
	"context"
	"sort"
	"time"

	"vani/internal/colstore"
	"vani/internal/parallel"
	"vani/internal/stats"
	"vani/internal/storage"
	"vani/internal/trace"
)

// Options configures the analyzer.
type Options struct {
	// PhaseGap is the inter-I/O gap that separates two I/O phases
	// ("defined using a threshold between two I/O calls", Section IV-B).
	PhaseGap time.Duration
	// TimelineBins sets the resolution of the figure timelines.
	TimelineBins int
	// Storage, when non-nil, fills the storage entities (Tables VIII/IX)
	// from the system the job ran against.
	Storage *storage.Config
	// TopFlows limits the dependency panel to the N highest-volume files.
	TopFlows int
	// Parallelism bounds the workers used for the chunk-parallel scans
	// (<= 0 means GOMAXPROCS, 1 runs fully sequential). Every scan reduces
	// its per-chunk partials in chunk order and accumulates in integers, so
	// the characterization is bit-identical at any setting.
	Parallelism int
	// Filter restricts the characterization to the matching events. Analyze
	// applies it to the in-memory event log before columnarizing (the
	// reference semantics); the facade's file path pushes the same filter
	// down to the block index instead. AnalyzeTable assumes its table was
	// already built under the filter and does not re-apply it.
	Filter trace.Filter
	// Stats, when non-nil, receives per-stage wall-clock timings.
	Stats *Timings
}

// Timings records the wall-clock cost of each pipeline stage.
type Timings struct {
	// TraceMerge is the tracer's shard-merge time (filled by callers that
	// hold the tracer; the analyzer itself never sees it).
	TraceMerge time.Duration
	// Columnarize is the row-to-column transposition time.
	Columnarize time.Duration
	// Analyze is the fused characterization time.
	Analyze time.Duration
	// Scan counts what the scan plan did: blocks pruned via the footer
	// index, rows dropped by the residual filter, payload bytes decoded vs
	// available. Filled by the file scan path (or, for in-memory filtering,
	// the row counters only).
	Scan colstore.ScanCounters
}

// The analyzer's declared column sets — the projection half of its scan
// plan. Each fused pass Requires exactly the columns its kernels read, so a
// lazily planned table decodes nothing the analysis never touches.
const (
	// pass1Cols feeds primary-level resolution and the global scan facts.
	pass1Cols = trace.ColEnd | trace.ColOp | trace.ColApp | trace.ColRank |
		trace.ColLevel | trace.ColFile
	// pass2Cols feeds the fused characterization scan.
	pass2Cols = trace.ColLevel | trace.ColOp | trace.ColApp | trace.ColFile |
		trace.ColRank | trace.ColNode | trace.ColSize | trace.ColStart |
		trace.ColEnd
	// postCols covers the random-access post passes (phases, access
	// patterns, dominant sizes, interface resolution).
	postCols = trace.ColOp | trace.ColStart | trace.ColEnd | trace.ColSize |
		trace.ColRank | trace.ColFile | trace.ColOffset | trace.ColLib
)

// DefaultOptions returns the analyzer settings used for the paper tables.
func DefaultOptions() Options {
	return Options{
		PhaseGap:     time.Second,
		TimelineBins: 64,
		TopFlows:     8,
	}
}

func (opt *Options) fill() {
	if opt.PhaseGap <= 0 {
		opt.PhaseGap = time.Second
	}
	if opt.TimelineBins <= 0 {
		opt.TimelineBins = 64
	}
	if opt.TopFlows <= 0 {
		opt.TopFlows = 8
	}
}

// Analyze builds the full characterization from an in-memory trace. A
// non-empty opt.Filter is applied to the event log before columnarizing —
// the reference semantics every pushed-down scan must reproduce.
func Analyze(tr *trace.Trace, opt Options) *Characterization {
	opt.fill()
	evs := tr.Events
	if !opt.Filter.Empty() {
		evs = trace.FilterEvents(evs, opt.Filter)
		if opt.Stats != nil {
			opt.Stats.Scan.RowsTotal = int64(len(tr.Events))
			opt.Stats.Scan.RowsKept = int64(len(evs))
		}
	}
	t0 := time.Now()
	tb := colstore.FromEvents(evs, opt.Parallelism)
	if opt.Stats != nil {
		opt.Stats.Columnarize = time.Since(t0)
	}
	// An eagerly built table has every column materialized, so analysis
	// cannot hit a decode error.
	c, _ := AnalyzeTable(tr, tb, opt)
	return c
}

// AnalyzeContext is Analyze with cancellation: the chunk-parallel scan
// workers observe ctx, so a canceled or timed-out caller aborts mid-scan.
// With a background context it never fails and matches Analyze exactly.
func AnalyzeContext(ctx context.Context, tr *trace.Trace, opt Options) (*Characterization, error) {
	opt.fill()
	evs := tr.Events
	if !opt.Filter.Empty() {
		evs = trace.FilterEvents(evs, opt.Filter)
		if opt.Stats != nil {
			opt.Stats.Scan.RowsTotal = int64(len(tr.Events))
			opt.Stats.Scan.RowsKept = int64(len(evs))
		}
	}
	t0 := time.Now()
	tb := colstore.FromEvents(evs, opt.Parallelism)
	if opt.Stats != nil {
		opt.Stats.Columnarize = time.Since(t0)
	}
	return AnalyzeTableContext(ctx, tr, tb, opt)
}

// AnalyzeTable builds the characterization from a columnar table plus the
// trace header carrying its metadata and interning tables (hdr.Events is
// never touched, so traces streamed off disk need not materialize one).
// The table may be lazily planned (colstore.FromBlocksSpec): each pass
// Requires its declared column set, so decode errors deferred by the plan
// surface here. opt.Filter is NOT applied — the table is assumed to have
// been built under it.
func AnalyzeTable(hdr *trace.Trace, tb *colstore.Table, opt Options) (*Characterization, error) {
	return AnalyzeTableContext(context.Background(), hdr, tb, opt)
}

// AnalyzeTableContext is AnalyzeTable with cancellation: the chunk-parallel
// scan workers observe ctx per chunk, so a canceled or timed-out caller
// aborts the analysis mid-scan. The returned error is ctx.Err() when the
// abort was a cancellation.
func AnalyzeTableContext(ctx context.Context, hdr *trace.Trace, tb *colstore.Table, opt Options) (*Characterization, error) {
	opt.fill()
	t0 := time.Now()
	a := &analysis{ctx: ctx, tr: hdr, tb: tb, opt: opt, par: opt.Parallelism}
	c, err := a.run()
	if err != nil {
		return nil, err
	}
	if opt.Stats != nil {
		opt.Stats.Analyze = time.Since(t0)
	}
	return c, nil
}

type analysis struct {
	ctx context.Context
	tr  *trace.Trace // header only: Meta, Apps, Files, Samples
	tb  *colstore.Table
	opt Options
	par int

	// Filled by the fused scan. The row subsets arrive either as plain
	// row lists (map-keyed fallback scan) or as constant-key segments
	// (grouped scan, a.grouped set); run() gathers whichever form into
	// the views the post passes consume.
	runtime     time.Duration
	gpuUsed     bool
	appRanks    map[int32]int // ranks that emitted any event, per app
	primary     []int         // rows at each (app, file) stream's primary level
	posix       []int         // POSIX-level I/O rows
	byApp       map[int32][]int
	grouped     bool
	primarySegs []rowSeg
	posixSegs   []rowSeg
	byAppSegs   map[int32][]rowSeg
	primaryV    *rowView
	posixV      *rowView
	fileAgg     map[int32]*fileAgg
	readBytes  int64
	writeBytes int64
	primData   int64
	primMeta   int64
	readHist   stats.SizeHistogram
	writeHist  stats.SizeHistogram
	readTL     *stats.Timeline
	writeTL    *stats.Timeline
	perRank    map[int32]*rankAcc
}

type fileAgg struct {
	id           int32
	ranks        map[int32]bool
	writerRanks  map[int32]bool
	readerRanks  map[int32]bool
	writerNodes  map[int32]bool
	readerNodes  map[int32]bool
	writerApps   map[int32]bool
	readerApps   map[int32]bool
	bytesRead    int64
	bytesWritten int64
	opens        int64
	dataOps      int64
	metaOps      int64
	ioDur        time.Duration
}

func newFileAgg(id int32) *fileAgg {
	return &fileAgg{
		id:          id,
		ranks:       map[int32]bool{},
		writerRanks: map[int32]bool{},
		readerRanks: map[int32]bool{},
		writerNodes: map[int32]bool{},
		readerNodes: map[int32]bool{},
		writerApps:  map[int32]bool{},
		readerApps:  map[int32]bool{},
	}
}

func mergeSet(dst, src map[int32]bool) {
	for k := range src {
		dst[k] = true
	}
}

func (fa *fileAgg) merge(o *fileAgg) {
	mergeSet(fa.ranks, o.ranks)
	mergeSet(fa.writerRanks, o.writerRanks)
	mergeSet(fa.readerRanks, o.readerRanks)
	mergeSet(fa.writerNodes, o.writerNodes)
	mergeSet(fa.readerNodes, o.readerNodes)
	mergeSet(fa.writerApps, o.writerApps)
	mergeSet(fa.readerApps, o.readerApps)
	fa.bytesRead += o.bytesRead
	fa.bytesWritten += o.bytesWritten
	fa.opens += o.opens
	fa.dataOps += o.dataOps
	fa.metaOps += o.metaOps
	fa.ioDur += o.ioDur
}

type rankAcc struct {
	rBytes, wBytes int64
	rDur, wDur     int64
}

func (a *analysis) run() (*Characterization, error) {
	if err := a.fusedScan(); err != nil {
		return nil, err
	}
	// The post passes random-access small row subsets across many columns;
	// materialize their declared set up front rather than per accessor call.
	if err := a.tb.MaterializeContext(a.ctx, a.par, postCols); err != nil {
		return nil, err
	}
	if err := a.ctx.Err(); err != nil {
		return nil, err
	}
	if a.grouped {
		a.primaryV = a.viewSegs(a.primarySegs, primaryViewCols)
		a.posixV = a.viewSegs(a.posixSegs, posixViewCols)
	} else {
		a.primaryV = a.viewRows(a.primary, primaryViewCols)
		a.posixV = a.viewRows(a.posix, posixViewCols)
	}

	c := &Characterization{Workload: a.tr.Meta.Workload}
	c.JobConfig = a.jobConfig()
	c.Apps = a.apps()
	c.Workflow = a.workflow(c.Apps)
	c.Phases = a.phases()
	c.HighLevel = a.highLevel()
	c.Middleware = a.middleware()
	c.NodeLocal, c.Shared = a.storageEntities()
	c.Dataset = a.dataset()
	c.File = a.fileEntity()
	c.Figure = a.figure()
	return c, nil
}

type appFile struct {
	app  int32
	file int32
}

// pass1 is the per-chunk partial of the level-resolution scan: the
// app-facing level per (application, file) stream — the highest abstraction
// through which that application touched that file, so counting there
// avoids double-counting one logical operation across layers while keeping
// POSIX-only side traffic visible — plus the global facts (job runtime,
// GPU usage, per-app rank sets) the old analyzer gathered with separate
// whole-table walks.
type pass1 struct {
	levels   map[appFile]uint8
	maxEnd   int64
	gpu      bool
	appRanks map[int32]map[int32]bool
}

// pass2 is the per-chunk partial of the fused characterization scan. Row
// lists concatenate in chunk order (preserving global row order); every
// numeric accumulator is an integer sum and every set a union, so the
// merged result is bit-identical at any parallelism.
type pass2 struct {
	primary    []int
	posix      []int
	byApp      map[int32][]int
	files      map[int32]*fileAgg
	readBytes  int64
	writeBytes int64
	data, meta int64
	readHist   stats.SizeHistogram
	writeHist  stats.SizeHistogram
	readTL     *stats.Timeline
	writeTL    *stats.Timeline
	perRank    map[int32]*rankAcc
}

// fusedScan replaces the old analyzer's half-dozen independent whole-table
// predicate walks (primary-level resolution, primary row collection,
// per-app rank scans, GPU detection, POSIX row collection, file
// aggregation, histogram/timeline/per-rank accumulation) with two
// chunk-parallel passes over the columnar store. Each pass declares its
// column set and Requires it per chunk, so a lazily planned table decodes
// exactly the columns the pass touches.
func (a *analysis) fusedScan() error {
	// Grouped execution first: when the key columns unify to dense codes,
	// the whole scan runs on flat arrays and key spans (analyzer_grouped.go)
	// with byte-identical results; otherwise this map-keyed path runs.
	if colstore.GroupedKernelsEnabled() {
		if done, err := a.fusedScanGrouped(); err != nil || done {
			return err
		}
	}
	nchunks := a.tb.NumChunks()
	errs := make([]error, nchunks)

	// Pass 1: resolve primary levels and global scan facts.
	p1 := make([]*pass1, nchunks)
	parallel.ForEach(a.par, nchunks, func(k int) {
		if errs[k] = a.ctx.Err(); errs[k] != nil {
			return
		}
		c := a.tb.ChunkAt(k)
		// Kernel request: serve the pass from constant-key spans over the
		// encoded segments, materializing only End (whose delta-chain
		// segment has no compressed-domain form). Fallback: materialize the
		// pass's full column set and iterate rows.
		spans, spanOK := a.tb.ChunkSpans(k, nil)
		need := pass1Cols
		if spanOK {
			need = trace.ColEnd
		}
		if errs[k] = c.Require(need); errs[k] != nil {
			return
		}
		p := &pass1{levels: map[appFile]uint8{}, appRanks: map[int32]map[int32]bool{}}
		if spanOK {
			for _, e := range c.End {
				if e > p.maxEnd {
					p.maxEnd = e
				}
			}
			for _, s := range spans {
				if trace.Op(s.Op) == trace.OpGPUCompute {
					p.gpu = true
				}
				ranks := p.appRanks[s.App]
				if ranks == nil {
					ranks = map[int32]bool{}
					p.appRanks[s.App] = ranks
				}
				ranks[s.Rank] = true
				if !trace.Op(s.Op).IsIO() {
					continue
				}
				key := appFile{s.App, s.File}
				if cur, ok := p.levels[key]; !ok || s.Level < cur {
					p.levels[key] = s.Level
				}
			}
			p1[k] = p
			return
		}
		for j := 0; j < c.N; j++ {
			if c.End[j] > p.maxEnd {
				p.maxEnd = c.End[j]
			}
			if trace.Op(c.Op[j]) == trace.OpGPUCompute {
				p.gpu = true
			}
			ranks := p.appRanks[c.App[j]]
			if ranks == nil {
				ranks = map[int32]bool{}
				p.appRanks[c.App[j]] = ranks
			}
			ranks[c.Rank[j]] = true
			if !trace.Op(c.Op[j]).IsIO() {
				continue
			}
			key := appFile{c.App[j], c.File[j]}
			if cur, ok := p.levels[key]; !ok || c.Level[j] < cur {
				p.levels[key] = c.Level[j]
			}
		}
		p1[k] = p
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	levels := map[appFile]uint8{}
	appRankSets := map[int32]map[int32]bool{}
	var maxEnd int64
	for _, p := range p1 {
		if p.maxEnd > maxEnd {
			maxEnd = p.maxEnd
		}
		a.gpuUsed = a.gpuUsed || p.gpu
		for key, lv := range p.levels {
			if cur, ok := levels[key]; !ok || lv < cur {
				levels[key] = lv
			}
		}
		for app, ranks := range p.appRanks {
			if appRankSets[app] == nil {
				appRankSets[app] = map[int32]bool{}
			}
			mergeSet(appRankSets[app], ranks)
		}
	}
	a.runtime = time.Duration(maxEnd)
	a.appRanks = make(map[int32]int, len(appRankSets))
	for app, ranks := range appRankSets {
		a.appRanks[app] = len(ranks)
	}

	// Pass 2: the fused characterization scan at the resolved levels.
	span := a.runtime
	if span <= 0 {
		span = time.Second
	}
	bins := a.opt.TimelineBins
	p2 := make([]*pass2, nchunks)
	parallel.ForEach(a.par, nchunks, func(k int) {
		if errs[k] = a.ctx.Err(); errs[k] != nil {
			return
		}
		c := a.tb.ChunkAt(k)
		// Same kernel request as pass 1: spans hoist every per-row map
		// lookup, level check and op dispatch to span boundaries; only the
		// Size/Start/End accumulations stay per-row, in unchanged row
		// order, so the result is byte-identical to the row loop.
		spans, spanOK := a.tb.ChunkSpans(k, nil)
		a.tb.TickAccumKernels(spanOK)
		need := pass2Cols
		if spanOK {
			need = trace.ColSize | trace.ColStart | trace.ColEnd
		}
		if errs[k] = c.Require(need); errs[k] != nil {
			return
		}
		p := &pass2{
			byApp:   map[int32][]int{},
			files:   map[int32]*fileAgg{},
			readTL:  stats.NewTimeline(span, bins),
			writeTL: stats.NewTimeline(span, bins),
			perRank: map[int32]*rankAcc{},
		}
		if spanOK {
			a.spanPass2(c, spans, levels, p)
			p2[k] = p
			return
		}
		for j := 0; j < c.N; j++ {
			op := trace.Op(c.Op[j])
			if !op.IsIO() {
				continue
			}
			i := c.Base + j
			if trace.Level(c.Level[j]) == trace.LevelPosix {
				p.posix = append(p.posix, i)
			}
			if c.Level[j] != levels[appFile{c.App[j], c.File[j]}] {
				continue
			}
			p.primary = append(p.primary, i)
			p.byApp[c.App[j]] = append(p.byApp[c.App[j]], i)
			dur := c.End[j] - c.Start[j]
			if op.IsData() {
				p.data++
			} else if op.IsMeta() {
				p.meta++
			}
			var fa *fileAgg
			if c.File[j] >= 0 {
				fa = p.files[c.File[j]]
				if fa == nil {
					fa = newFileAgg(c.File[j])
					p.files[c.File[j]] = fa
				}
				fa.ranks[c.Rank[j]] = true
				fa.ioDur += time.Duration(dur)
			}
			acc := p.perRank[c.Rank[j]]
			if acc == nil {
				acc = &rankAcc{}
				p.perRank[c.Rank[j]] = acc
			}
			switch op {
			case trace.OpRead:
				p.readBytes += c.Size[j]
				p.readHist.Add(c.Size[j], time.Duration(dur))
				p.readTL.Add(time.Duration(c.Start[j]), time.Duration(c.End[j]), c.Size[j])
				acc.rBytes += c.Size[j]
				acc.rDur += dur
				if fa != nil {
					fa.bytesRead += c.Size[j]
					fa.readerRanks[c.Rank[j]] = true
					fa.readerNodes[c.Node[j]] = true
					fa.readerApps[c.App[j]] = true
					fa.dataOps++
				}
			case trace.OpWrite:
				p.writeBytes += c.Size[j]
				p.writeHist.Add(c.Size[j], time.Duration(dur))
				p.writeTL.Add(time.Duration(c.Start[j]), time.Duration(c.End[j]), c.Size[j])
				acc.wBytes += c.Size[j]
				acc.wDur += dur
				if fa != nil {
					fa.bytesWritten += c.Size[j]
					fa.writerRanks[c.Rank[j]] = true
					fa.writerNodes[c.Node[j]] = true
					fa.writerApps[c.App[j]] = true
					fa.dataOps++
				}
			case trace.OpOpen:
				if fa != nil {
					fa.opens++
					fa.metaOps++
				}
			default:
				if fa != nil {
					fa.metaOps++
				}
			}
		}
		p2[k] = p
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	a.byApp = map[int32][]int{}
	a.fileAgg = map[int32]*fileAgg{}
	a.readTL = stats.NewTimeline(span, bins)
	a.writeTL = stats.NewTimeline(span, bins)
	a.perRank = map[int32]*rankAcc{}
	for _, p := range p2 {
		a.primary = append(a.primary, p.primary...)
		a.posix = append(a.posix, p.posix...)
		for app, rows := range p.byApp {
			a.byApp[app] = append(a.byApp[app], rows...)
		}
		for f, fa := range p.files {
			if cur := a.fileAgg[f]; cur != nil {
				cur.merge(fa)
			} else {
				a.fileAgg[f] = fa
			}
		}
		a.readBytes += p.readBytes
		a.writeBytes += p.writeBytes
		a.primData += p.data
		a.primMeta += p.meta
		a.readHist.Merge(&p.readHist)
		a.writeHist.Merge(&p.writeHist)
		a.readTL.Merge(p.readTL)
		a.writeTL.Merge(p.writeTL)
		for r, acc := range p.perRank {
			if cur := a.perRank[r]; cur != nil {
				cur.rBytes += acc.rBytes
				cur.wBytes += acc.wBytes
				cur.rDur += acc.rDur
				cur.wDur += acc.wDur
			} else {
				a.perRank[r] = acc
			}
		}
	}
	return nil
}

// spanPass2 runs pass 2 over one chunk's constant-key spans: the level
// check, primary resolution, file and rank accumulator lookups and the op
// dispatch happen once per span instead of once per row, and the remaining
// Size/Start/End accumulations run batched — equal-size sub-runs feed
// SizeHistogram.AddRun, Timeline.AddRuns buckets whole spans, and the byte
// and duration tallies are span sums. Every batched add is a regrouped
// integer sum over the same rows in the same order, so every per-chunk
// partial is identical to the fallback's.
func (a *analysis) spanPass2(c *colstore.Chunk, spans []colstore.Span, levels map[appFile]uint8, p *pass2) {
	for _, s := range spans {
		op := trace.Op(s.Op)
		if !op.IsIO() {
			continue
		}
		if trace.Level(s.Level) == trace.LevelPosix {
			for j := s.Lo; j < s.Hi; j++ {
				p.posix = append(p.posix, c.Base+j)
			}
		}
		if s.Level != levels[appFile{s.App, s.File}] {
			continue
		}
		rows := p.byApp[s.App]
		for j := s.Lo; j < s.Hi; j++ {
			p.primary = append(p.primary, c.Base+j)
			rows = append(rows, c.Base+j)
		}
		p.byApp[s.App] = rows
		n := int64(s.Hi - s.Lo)
		if op.IsData() {
			p.data += n
		} else if op.IsMeta() {
			p.meta += n
		}
		var fa *fileAgg
		if s.File >= 0 {
			fa = p.files[s.File]
			if fa == nil {
				fa = newFileAgg(s.File)
				p.files[s.File] = fa
			}
			fa.ranks[s.Rank] = true
			var dsum int64
			for j := s.Lo; j < s.Hi; j++ {
				dsum += c.End[j] - c.Start[j]
			}
			fa.ioDur += time.Duration(dsum)
		}
		acc := p.perRank[s.Rank]
		if acc == nil {
			acc = &rankAcc{}
			p.perRank[s.Rank] = acc
		}
		switch op {
		case trace.OpRead:
			var spanBytes int64
			for j := s.Lo; j < s.Hi; {
				sz := c.Size[j]
				dsum := c.End[j] - c.Start[j]
				j2 := j + 1
				for j2 < s.Hi && c.Size[j2] == sz {
					dsum += c.End[j2] - c.Start[j2]
					j2++
				}
				cnt := int64(j2 - j)
				spanBytes += sz * cnt
				p.readHist.AddRun(sz, cnt, time.Duration(dsum))
				acc.rDur += dsum
				j = j2
			}
			p.readBytes += spanBytes
			p.readTL.AddRuns(c.Start, c.End, c.Size, s.Lo, s.Hi)
			acc.rBytes += spanBytes
			if fa != nil {
				fa.bytesRead += spanBytes
				fa.readerRanks[s.Rank] = true
				fa.readerNodes[s.Node] = true
				fa.readerApps[s.App] = true
				fa.dataOps += n
			}
		case trace.OpWrite:
			var spanBytes int64
			for j := s.Lo; j < s.Hi; {
				sz := c.Size[j]
				dsum := c.End[j] - c.Start[j]
				j2 := j + 1
				for j2 < s.Hi && c.Size[j2] == sz {
					dsum += c.End[j2] - c.Start[j2]
					j2++
				}
				cnt := int64(j2 - j)
				spanBytes += sz * cnt
				p.writeHist.AddRun(sz, cnt, time.Duration(dsum))
				acc.wDur += dsum
				j = j2
			}
			p.writeBytes += spanBytes
			p.writeTL.AddRuns(c.Start, c.End, c.Size, s.Lo, s.Hi)
			acc.wBytes += spanBytes
			if fa != nil {
				fa.bytesWritten += spanBytes
				fa.writerRanks[s.Rank] = true
				fa.writerNodes[s.Node] = true
				fa.writerApps[s.App] = true
				fa.dataOps += n
			}
		case trace.OpOpen:
			if fa != nil {
				fa.opens += n
				fa.metaOps += n
			}
		default:
			if fa != nil {
				fa.metaOps += n
			}
		}
	}
}

// byApp row lists concatenate per-chunk partials whose in-chunk appends are
// in row order, so each app's rows are globally ascending — the same order
// the old per-app filtering produced.

func (a *analysis) jobConfig() JobConfigEntity {
	m := a.tr.Meta
	return JobConfigEntity{
		Nodes:           m.Nodes,
		CPUCoresPerNode: m.CoresPerNode,
		GPUsPerNode:     m.GPUsPerNode,
		NodeLocalBBDir:  m.NodeLocalDir,
		SharedBBDir:     m.SharedBBDir,
		PFSDir:          m.PFSDir,
		JobTime:         m.JobTimeLimit,
	}
}

// opCounts tallies data and meta ops over a view range.
func opCounts(v *rowView, lo, hi int) (data, meta int64) {
	for _, b := range v.op[lo:hi] {
		if op := trace.Op(b); op.IsData() {
			data++
		} else if op.IsMeta() {
			meta++
		}
	}
	return
}

func pcts(data, meta int64) (float64, float64) {
	total := data + meta
	if total == 0 {
		return 0, 0
	}
	return float64(data) / float64(total), float64(meta) / float64(total)
}

// unionDuration merges [start,end) intervals of the view's rows and
// returns the total covered time — the workload's I/O wall-clock. Table
// order is Start-sorted for tracer-built traces, so the sort is detected
// away in one pass; the interval union is order-independent either way.
func unionDuration(v *rowView) time.Duration {
	if v.n == 0 {
		return 0
	}
	type iv struct{ s, e int64 }
	ivs := make([]iv, v.n)
	sorted := true
	for i := 0; i < v.n; i++ {
		ivs[i] = iv{v.start[i], v.end[i]}
		if i > 0 && ivs[i].s < ivs[i-1].s {
			sorted = false
		}
	}
	if !sorted {
		sort.Slice(ivs, func(x, y int) bool { return ivs[x].s < ivs[y].s })
	}
	var total, curS, curE int64
	curS, curE = ivs[0].s, ivs[0].e
	for _, v := range ivs[1:] {
		if v.s > curE {
			total += curE - curS
			curS, curE = v.s, v.e
		} else if v.e > curE {
			curE = v.e
		}
	}
	total += curE - curS
	return time.Duration(total)
}

// dominantSize returns the most frequent exact transfer size among the
// view range's data rows (ties break toward the larger size). Matching
// rows arrive in equal-size runs (the tracer's transfer loops), so the
// walk batches each run into one map update — the per-row counts
// regrouped.
func dominantSize(v *rowView, lo, hi int, op trace.Op) int64 {
	counts := map[int64]int64{}
	for i := lo; i < hi; {
		if trace.Op(v.op[i]) != op || v.size[i] <= 0 {
			i++
			continue
		}
		sz := v.size[i]
		j := i + 1
		for j < hi && trace.Op(v.op[j]) == op && v.size[j] == sz {
			j++
		}
		counts[sz] += int64(j - i)
		i = j
	}
	var best int64
	var bestN int64 = -1
	for sz, n := range counts {
		if n > bestN || (n == bestN && sz > best) {
			best, bestN = sz, n
		}
	}
	if bestN <= 0 {
		return 0
	}
	return best
}

// interfaceName maps the dominant library of a view's rows to the table
// name. Libraries tally into a fixed array walked in ascending enum
// order, so a count tie deterministically picks the lower-level library.
func interfaceName(v *rowView) string {
	var counts [8]int64
	for _, lib := range v.lib {
		if int(lib) < len(counts) {
			counts[lib]++
		}
	}
	best := trace.LibNone
	var bestN int64 = -1
	for lib := int(trace.LibNone) + 1; lib < len(counts); lib++ {
		if counts[lib] > bestN {
			best, bestN = trace.Lib(lib), counts[lib]
		}
	}
	if bestN <= 0 {
		return "none"
	}
	if best == trace.LibHDF5 {
		return "HDF5 (MPI-IO)"
	}
	return best.String()
}

// accessPattern classifies offsets per (file, rank) stream: sequential if
// at least 80% of consecutive data accesses are non-decreasing in offset.
// On a segmented view the stream key is constant per segment, so the map
// round-trips once per segment and the offsets chain through a local —
// the identical comparison sequence the per-row walk performs (non-data
// rows leave the chain untouched there too).
func accessPattern(v *rowView) string {
	type key struct {
		f int32
		r int32
	}
	last := map[key]int64{}
	var seq, total int64
	if v.segs != nil {
		for _, s := range v.segs {
			if s.file < 0 {
				continue
			}
			k := key{s.file, s.rank}
			prev, ok := last[k]
			for j := s.lo; j < s.hi; j++ {
				if !trace.Op(v.op[j]).IsData() {
					continue
				}
				off := v.off[j]
				if ok {
					total++
					if off >= prev {
						seq++
					}
				}
				prev, ok = off, true
			}
			if ok {
				last[k] = prev
			}
		}
	} else {
		for i := 0; i < v.n; i++ {
			if !trace.Op(v.op[i]).IsData() || v.file[i] < 0 {
				continue
			}
			k := key{v.file[i], v.rank[i]}
			if prev, ok := last[k]; ok {
				total++
				if v.off[i] >= prev {
					seq++
				}
			}
			last[k] = v.off[i]
		}
	}
	if total == 0 || float64(seq)/float64(total) >= 0.8 {
		return "Seq"
	}
	return "Random"
}

func (a *analysis) apps() []AppEntity {
	var order []int32
	if a.grouped {
		order = make([]int32, 0, len(a.byAppSegs))
		for app := range a.byAppSegs {
			order = append(order, app)
		}
	} else {
		order = make([]int32, 0, len(a.byApp))
		for app := range a.byApp {
			order = append(order, app)
		}
	}
	sort.Slice(order, func(x, y int) bool { return order[x] < order[y] })

	var out []AppEntity
	for _, app := range order {
		var v *rowView
		if a.grouped {
			v = a.viewSegs(a.byAppSegs[app], appViewCols)
		} else {
			v = a.viewRows(a.byApp[app], appViewCols)
		}
		data, meta := opCounts(v, 0, v.n)
		dPct, mPct := pcts(data, meta)
		var bytes int64
		var minS, maxE int64
		minS = 1<<63 - 1
		for i := 0; i < v.n; i++ {
			if trace.Op(v.op[i]).IsData() {
				bytes += v.size[i]
			}
			if v.start[i] < minS {
				minS = v.start[i]
			}
			if v.end[i] > maxE {
				maxE = v.end[i]
			}
		}
		fpp, shared := a.fileSplitForApp(app)
		out = append(out, AppEntity{
			Name: a.tr.AppName(app),
			// Processes counts every rank that emitted any event for the
			// app, including pure compute ranks (the paper's per-app process
			// count) — gathered in pass 1 rather than by rescanning here.
			Processes:   a.appRanks[app],
			ProcDep:     a.procDep(app),
			FPPFiles:    fpp,
			SharedFiles: shared,
			IOBytes:     bytes,
			DataOpsPct:  dPct,
			MetaOpsPct:  mPct,
			Interface:   interfaceName(v),
			Runtime:     time.Duration(maxE - minS),
		})
	}
	return out
}

// fileSplitForApp counts FPP vs shared files among files the app touched.
func (a *analysis) fileSplitForApp(app int32) (fpp, shared int) {
	for _, fa := range a.fileAgg {
		if !fa.readerApps[app] && !fa.writerApps[app] {
			continue
		}
		if len(fa.ranks) == 1 {
			fpp++
		} else {
			shared++
		}
	}
	return
}

// procDep classifies the dominant process/data relationship of an app.
func (a *analysis) procDep(app int32) ProcDepKind {
	var solo, singleWriter, sharedRead, pipeline int
	for _, fa := range a.fileAgg {
		if !fa.readerApps[app] && !fa.writerApps[app] {
			continue
		}
		switch {
		case len(fa.ranks) == 1:
			solo++
		case len(fa.writerRanks) == 1 && len(fa.ranks) > 1:
			singleWriter++
		case len(fa.writerRanks) == 0 && len(fa.readerRanks) > 1:
			sharedRead++
		default:
			pipeline++
		}
	}
	max, kind := solo, DepFilePerProcess
	if singleWriter > max {
		max, kind = singleWriter, DepSingleWriter
	}
	if sharedRead > max {
		max, kind = sharedRead, DepSharedRead
	}
	if pipeline > max {
		kind = DepPipeline
	}
	return kind
}

func (a *analysis) workflow(apps []AppEntity) WorkflowEntity {
	dPct, mPct := pcts(a.primData, a.primMeta)
	var fpp, shared int
	for _, fa := range a.fileAgg {
		if len(fa.ranks) == 1 {
			fpp++
		} else {
			shared++
		}
	}
	ranksPerNode := 0
	if a.tr.Meta.Nodes > 0 {
		ranksPerNode = a.tr.Meta.Ranks / a.tr.Meta.Nodes
	}
	gpus := 0
	if a.gpuUsed {
		gpus = a.tr.Meta.GPUsPerNode
	}
	crossRAW := false
	for _, fa := range a.fileAgg {
		if len(fa.writerNodes) == 0 || len(fa.readerNodes) == 0 {
			continue
		}
		for rn := range fa.readerNodes {
			if !fa.writerNodes[rn] || len(fa.writerNodes) > 1 {
				crossRAW = true
			}
		}
	}
	return WorkflowEntity{
		CPUCoresUsedPerNode: ranksPerNode,
		GPUsUsedPerNode:     gpus,
		NumApps:             len(apps),
		AppDeps:             a.appDeps(),
		FPPFiles:            fpp,
		SharedFiles:         shared,
		IOBytes:             a.readBytes + a.writeBytes,
		ReadBytes:           a.readBytes,
		WriteBytes:          a.writeBytes,
		DataOpsPct:          dPct,
		MetaOpsPct:          mPct,
		CrossNodeRAW:        crossRAW,
		IOTime:              unionDuration(a.primaryV),
		Runtime:             a.runtime,
	}
}

// appDeps derives the application-level data-dependency edges: consumer
// apps reading files that producer apps wrote.
func (a *analysis) appDeps() []AppDep {
	type key struct{ prod, cons int32 }
	agg := map[key]*AppDep{}
	var order []key
	for _, fa := range a.fileAgg {
		for prod := range fa.writerApps {
			for cons := range fa.readerApps {
				if prod == cons {
					continue
				}
				k := key{prod, cons}
				d := agg[k]
				if d == nil {
					d = &AppDep{
						Producer: a.tr.AppName(prod),
						Consumer: a.tr.AppName(cons),
					}
					agg[k] = d
					order = append(order, k)
				}
				d.Bytes += fa.bytesRead
				d.Files++
			}
		}
	}
	sort.Slice(order, func(x, y int) bool {
		if order[x].prod != order[y].prod {
			return order[x].prod < order[y].prod
		}
		return order[x].cons < order[y].cons
	})
	out := make([]AppDep, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}

// phases splits the primary I/O rows into activity bursts separated by
// more than the gap threshold, then characterizes each burst (Table V).
// Primary rows arrive in table order, which the tracer guarantees is
// (Start, Rank, End)-sorted; the stable sort below is a cheap guard for
// tables built from unsorted traces and cannot reorder sorted input.
func (a *analysis) phases() []IOPhaseEntity {
	v := a.primaryV
	if v.n == 0 {
		return nil
	}
	// Detect the sorted common case in one pass; only tables built from
	// unsorted traces pay the stable sort (as an index permutation over
	// the gathered view — the same order the row sort produced).
	sorted := true
	for i := 1; i < v.n; i++ {
		if v.start[i] < v.start[i-1] {
			sorted = false
			break
		}
	}
	if !sorted {
		idx := make([]int, v.n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool { return v.start[idx[x]] < v.start[idx[y]] })
		v = permuteView(v, idx)
	}

	gap := int64(a.opt.PhaseGap)
	var phases []IOPhaseEntity
	lo := 0
	var curEnd int64
	for i := 0; i < v.n; i++ {
		if i > lo && v.start[i]-curEnd > gap {
			phases = append(phases, a.buildPhase(len(phases), v, lo, i))
			lo = i
		}
		if v.end[i] > curEnd {
			curEnd = v.end[i]
		}
	}
	phases = append(phases, a.buildPhase(len(phases), v, lo, v.n))
	return phases
}

func (a *analysis) buildPhase(idx int, v *rowView, lo, hi int) IOPhaseEntity {
	data, meta := opCounts(v, lo, hi)
	dPct, mPct := pcts(data, meta)
	var bytes int64
	ranks := map[int32]bool{}
	minS, maxE := v.start[lo], int64(0)
	for i := lo; i < hi; i++ {
		if trace.Op(v.op[i]).IsData() {
			bytes += v.size[i]
		}
		// Consecutive rows usually share a rank; the set only needs a map
		// write when the rank changes.
		if r := v.rank[i]; i == lo || r != v.rank[i-1] {
			ranks[r] = true
		}
		if v.start[i] < minS {
			minS = v.start[i]
		}
		if v.end[i] > maxE {
			maxE = v.end[i]
		}
	}
	opsPerRank := float64(hi-lo) / float64(len(ranks))
	granule := dominantSize(v, lo, hi, trace.OpRead)
	if g := dominantSize(v, lo, hi, trace.OpWrite); granule == 0 || (g != 0 && data > 0 && g > 0 && countOp(v, lo, hi, trace.OpWrite) > countOp(v, lo, hi, trace.OpRead)) {
		granule = g
	}
	return IOPhaseEntity{
		Index:      idx,
		Start:      time.Duration(minS),
		End:        time.Duration(maxE),
		IOBytes:    bytes,
		DataOpsPct: dPct,
		MetaOpsPct: mPct,
		OpsPerRank: opsPerRank,
		Granule:    granule,
		Frequency:  phaseLabel(opsPerRank, granule),
		Runtime:    time.Duration(maxE - minS),
	}
}

// countOp counts rows of one op over a view range.
func countOp(v *rowView, lo, hi int, op trace.Op) int64 {
	var n int64
	for i := lo; i < hi; i++ {
		if trace.Op(v.op[i]) == op {
			n++
		}
	}
	return n
}

// phaseLabel renders the paper's "Frequency" attribute: a handful of ops
// per rank prints as "N ops/rank"; dense bursts of small ops are
// "Iterative"; dense bursts of larger ops are "Bulk".
func phaseLabel(opsPerRank float64, granule int64) string {
	switch {
	case opsPerRank <= 1.5:
		return "1 op"
	case opsPerRank <= 16:
		return itoa(int(opsPerRank+0.5)) + " ops/rank"
	case granule > 0 && granule <= 16*1024:
		return "Iterative (" + sizeStr(granule) + ")"
	default:
		return "Bulk (" + sizeStr(granule) + ")"
	}
}

func (a *analysis) highLevel() HighLevelIOEntity {
	// Data representation: dominant dimensionality weighted by file I/O,
	// tallied over sorted dimensionalities so weight ties resolve to the
	// lower dimensionality regardless of map iteration order.
	dims := map[int]int64{}
	for _, fa := range a.fileAgg {
		info := a.tr.Files[fa.id]
		if info.NDims > 0 {
			dims[info.NDims] += fa.bytesRead + fa.bytesWritten + 1
		}
	}
	dimOrder := make([]int, 0, len(dims))
	for d := range dims {
		dimOrder = append(dimOrder, d)
	}
	sort.Ints(dimOrder)
	bestDim, bestW := 0, int64(-1)
	for _, d := range dimOrder {
		if dims[d] > bestW {
			bestDim, bestW = d, dims[d]
		}
	}
	repr := "unknown"
	if bestDim > 0 {
		repr = itoa(bestDim) + "D"
	}
	return HighLevelIOEntity{
		DataRepr: repr,
		Granularity: Granularity{
			Read:  dominantSize(a.primaryV, 0, a.primaryV.n, trace.OpRead),
			Write: dominantSize(a.primaryV, 0, a.primaryV.n, trace.OpWrite),
		},
		AccessPattern: accessPattern(a.primaryV),
		DataDist:      a.dataDist(),
	}
}

func (a *analysis) dataDist() stats.DistKind {
	var values []float64
	for _, s := range a.tr.Samples {
		values = append(values, s.Values...)
	}
	return stats.FitDistribution(values)
}

func (a *analysis) middleware() MiddlewareIOEntity {
	// POSIX-visible rows (collected by the fused scan): what reaches
	// storage after middleware.
	ranksPerNode := 0
	if a.tr.Meta.Nodes > 0 {
		ranksPerNode = a.tr.Meta.Ranks / a.tr.Meta.Nodes
	}
	extra := a.tr.Meta.CoresPerNode - ranksPerNode
	if extra < 0 {
		extra = 0
	}
	return MiddlewareIOEntity{
		ExtraIOCoresPerNode: extra,
		Granularity: Granularity{
			Read:  dominantSize(a.posixV, 0, a.posixV.n, trace.OpRead),
			Write: dominantSize(a.posixV, 0, a.posixV.n, trace.OpWrite),
		},
		MemPerNodeGB:  a.tr.Meta.MemPerNodeGB,
		AccessPattern: accessPattern(a.posixV),
	}
}

func (a *analysis) storageEntities() (NodeLocalEntity, SharedStorageEntity) {
	var nl NodeLocalEntity
	var sh SharedStorageEntity
	nl.Dir = a.tr.Meta.NodeLocalDir
	sh.Dir = a.tr.Meta.PFSDir
	if cfg := a.opt.Storage; cfg != nil {
		nl.ParallelOps = cfg.NodeLocalParallel
		nl.CapacityBytes = cfg.NodeLocalCapacity
		nl.MaxBWPerNode = cfg.NodeLocalBW
		sh.ParallelServers = cfg.PFSServers
		sh.CapacityBytes = cfg.PFSCapacity
		sh.MaxBW = cfg.PFSServerBW * int64(cfg.PFSServers)
	}
	return nl, sh
}

func (a *analysis) dataset() DatasetEntity {
	formats := map[string]int64{}
	var totalSize int64
	var dataFileSize, metaFileSize int64
	for _, fa := range a.fileAgg {
		info := a.tr.Files[fa.id]
		formats[info.Format]++
		totalSize += info.Size
		if info.Size >= 1<<20 {
			if info.Size > dataFileSize {
				dataFileSize = info.Size
			}
		} else if info.Size > metaFileSize {
			metaFileSize = info.Size
		}
	}
	bestFmt, bestN := "", int64(-1)
	for f, n := range formats {
		if n > bestN || (n == bestN && f > bestFmt) {
			bestFmt, bestN = f, n
		}
	}
	dPct, mPct := pcts(a.primData, a.primMeta)
	var io int64
	for _, fa := range a.fileAgg {
		io += fa.bytesRead + fa.bytesWritten
	}
	return DatasetEntity{
		Format:       bestFmt,
		SizeBytes:    totalSize,
		NumFiles:     len(a.fileAgg),
		IOBytes:      io,
		IOTime:       unionDuration(a.primaryV),
		DataOpsPct:   dPct,
		MetaOpsPct:   mPct,
		DataFileSize: dataFileSize,
		MetaFileSize: metaFileSize,
		DataDist:     a.dataDist(),
	}
}

// fileEntity reports the representative data file: the one with the
// highest I/O volume, volume ties breaking to the lowest file ID (the
// first such file recorded) so the pick is deterministic.
func (a *analysis) fileEntity() FileEntity {
	ids := make([]int32, 0, len(a.fileAgg))
	for f := range a.fileAgg {
		ids = append(ids, f)
	}
	sort.Slice(ids, func(x, y int) bool { return ids[x] < ids[y] })
	var best *fileAgg
	for _, f := range ids {
		fa := a.fileAgg[f]
		if best == nil || fa.bytesRead+fa.bytesWritten > best.bytesRead+best.bytesWritten {
			best = fa
		}
	}
	if best == nil {
		return FileEntity{}
	}
	info := a.tr.Files[best.id]
	dPct, mPct := pcts(best.dataOps, best.metaOps)
	enc := ""
	if info.Format == "fits" {
		enc = "FITS"
	}
	return FileEntity{
		Path:       info.Path,
		Format:     info.Format,
		SizeBytes:  info.Size,
		IOBytes:    best.bytesRead + best.bytesWritten,
		IOTime:     best.ioDur,
		DataOpsPct: dPct,
		MetaOpsPct: mPct,
		Attrs: FileFormatAttrs{
			Chunked:   false,
			NDatasets: 1,
			NDims:     info.NDims,
			DataType:  info.DataType,
			Encoding:  enc,
		},
	}
}

// figure assembles the per-workload figure panels from the fused scan's
// accumulators (histograms, timelines, per-rank bandwidth, top flows).
func (a *analysis) figure() FigureData {
	fig := FigureData{
		ReadHist:  a.readHist,
		WriteHist: a.writeHist,
		ReadTL:    a.readTL,
		WriteTL:   a.writeTL,
	}

	// Per-rank achieved bandwidth (Figure 2c), ranks ascending.
	rankOrder := make([]int32, 0, len(a.perRank))
	for r := range a.perRank {
		rankOrder = append(rankOrder, r)
	}
	sort.Slice(rankOrder, func(x, y int) bool { return rankOrder[x] < rankOrder[y] })
	for _, r := range rankOrder {
		acc := a.perRank[r]
		rb := RankBandwidth{Rank: r}
		if acc.rDur > 0 {
			rb.ReadBW = float64(acc.rBytes) / (float64(acc.rDur) / float64(time.Second))
		}
		if acc.wDur > 0 {
			rb.WriteBW = float64(acc.wBytes) / (float64(acc.wDur) / float64(time.Second))
		}
		fig.RankBW = append(fig.RankBW, rb)
	}

	// Dependency panel: highest-volume files.
	flows := make([]*fileAgg, 0, len(a.fileAgg))
	for _, fa := range a.fileAgg {
		flows = append(flows, fa)
	}
	sort.Slice(flows, func(x, y int) bool {
		bx := flows[x].bytesRead + flows[x].bytesWritten
		by := flows[y].bytesRead + flows[y].bytesWritten
		if bx != by {
			return bx > by
		}
		return flows[x].id < flows[y].id
	})
	if len(flows) > a.opt.TopFlows {
		flows = flows[:a.opt.TopFlows]
	}
	for _, fa := range flows {
		fig.TopFlows = append(fig.TopFlows, FileFlow{
			Path:         a.tr.Files[fa.id].Path,
			WriterRanks:  len(fa.writerRanks),
			ReaderRanks:  len(fa.readerRanks),
			BytesWritten: fa.bytesWritten,
			BytesRead:    fa.bytesRead,
			Opens:        fa.opens,
		})
	}
	return fig
}

// itoa forwards to util.go's formatter.
func itoa(n int) string { return intToString(n) }
