package core

import (
	"testing"
	"time"

	"vani/internal/stats"
	"vani/internal/trace"
	"vani/internal/workloads"
)

// runAndAnalyze executes a workload at small scale and characterizes it.
func runAndAnalyze(t *testing.T, w workloads.Workload, mod func(*workloads.Spec)) *Characterization {
	t.Helper()
	spec := w.DefaultSpec()
	spec.Nodes = 4
	if spec.RanksPerNode > 8 {
		spec.RanksPerNode = 8
	}
	spec.Scale = 0.02
	if mod != nil {
		mod(&spec)
	}
	res, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatalf("Run(%s): %v", w.Name(), err)
	}
	opt := DefaultOptions()
	opt.Storage = &spec.Storage
	return Analyze(res.Trace, opt)
}

func TestAnalyzeCM1(t *testing.T) {
	w := workloads.NewCM1()
	c := runAndAnalyze(t, w, func(s *workloads.Spec) { s.Scale = 0.05 })

	if c.Workload != "cm1" {
		t.Errorf("workload = %q", c.Workload)
	}
	// Table II.
	if c.JobConfig.Nodes != 4 || c.JobConfig.CPUCoresPerNode != 40 {
		t.Errorf("job config = %+v", c.JobConfig)
	}
	if c.JobConfig.SharedBBDir != "" || c.JobConfig.PFSDir != "/p/gpfs1" {
		t.Errorf("mounts = %+v", c.JobConfig)
	}
	// Table IV: single app, POSIX.
	if len(c.Apps) != 1 || c.Apps[0].Name != "cm1" {
		t.Fatalf("apps = %+v", c.Apps)
	}
	if c.Apps[0].Interface != "POSIX" {
		t.Errorf("interface = %q, want POSIX", c.Apps[0].Interface)
	}
	// Table VI: 3D normal data, sequential, 4KB writes / 16MB reads.
	if c.HighLevel.DataRepr != "3D" {
		t.Errorf("data repr = %q", c.HighLevel.DataRepr)
	}
	if c.HighLevel.DataDist != stats.DistNormal {
		t.Errorf("data dist = %v, want normal", c.HighLevel.DataDist)
	}
	if c.HighLevel.AccessPattern != "Seq" {
		t.Errorf("pattern = %q", c.HighLevel.AccessPattern)
	}
	if c.HighLevel.Granularity.Write != 4096 {
		t.Errorf("write granularity = %d, want 4096", c.HighLevel.Granularity.Write)
	}
	if c.HighLevel.Granularity.Read != 16<<20 {
		t.Errorf("read granularity = %d, want 16MB", c.HighLevel.Granularity.Read)
	}
	// Workflow: more read than write volume.
	if c.Workflow.ReadBytes <= c.Workflow.WriteBytes {
		t.Errorf("reads (%d) not > writes (%d)", c.Workflow.ReadBytes, c.Workflow.WriteBytes)
	}
	// Phases: initial read burst plus per-step write bursts.
	if len(c.Phases) < 2 {
		t.Fatalf("phases = %d, want >= 2", len(c.Phases))
	}
	if c.Phases[0].IOBytes == 0 {
		t.Error("first phase has no I/O")
	}
	// I/O time must be well under runtime (compute-dominated workload).
	if c.Workflow.IOTime >= c.Workflow.Runtime {
		t.Errorf("IO time %v >= runtime %v", c.Workflow.IOTime, c.Workflow.Runtime)
	}
}

func TestAnalyzeHACC(t *testing.T) {
	w := workloads.NewHACC()
	c := runAndAnalyze(t, w, nil)

	if c.Apps[0].Interface != "POSIX" {
		t.Errorf("interface = %q", c.Apps[0].Interface)
	}
	// Pure FPP.
	if c.Workflow.SharedFiles != 0 {
		t.Errorf("shared files = %d, want 0", c.Workflow.SharedFiles)
	}
	if c.Workflow.FPPFiles != 32 { // 4 nodes x 8 ranks
		t.Errorf("FPP files = %d, want 32", c.Workflow.FPPFiles)
	}
	if c.Apps[0].ProcDep != DepFilePerProcess {
		t.Errorf("proc dep = %v", c.Apps[0].ProcDep)
	}
	// Checkpoint + restart balance.
	if c.Workflow.ReadBytes != c.Workflow.WriteBytes {
		t.Errorf("read %d != write %d", c.Workflow.ReadBytes, c.Workflow.WriteBytes)
	}
	// 1D uniform data.
	if c.HighLevel.DataRepr != "1D" || c.HighLevel.DataDist != stats.DistUniform {
		t.Errorf("high level = %+v", c.HighLevel)
	}
	// 16MB granularity both ways.
	if c.HighLevel.Granularity.Read != 16<<20 || c.HighLevel.Granularity.Write != 16<<20 {
		t.Errorf("granularity = %+v", c.HighLevel.Granularity)
	}
	// I/O-dominated: meta ops are a large share (paper: ~50%).
	if c.Workflow.MetaOpsPct < 0.3 {
		t.Errorf("meta ops pct = %v, want >= 0.3", c.Workflow.MetaOpsPct)
	}
}

func TestAnalyzeCosmoFlow(t *testing.T) {
	w := workloads.NewCosmoFlow()
	w.GPUPerFile = 50 * time.Millisecond
	c := runAndAnalyze(t, w, func(s *workloads.Spec) { s.Scale = 0.002 })

	if c.Apps[0].Interface != "HDF5 (MPI-IO)" {
		t.Errorf("interface = %q", c.Apps[0].Interface)
	}
	// Metadata dominance (paper: 98% of ops at the primary level are meta).
	if c.Workflow.MetaOpsPct < 0.5 {
		t.Errorf("meta pct = %v, want majority", c.Workflow.MetaOpsPct)
	}
	// All dataset files shared... each file is read by exactly one rank in
	// our model, so they are FPP; the checkpoint is rank-0 only. What must
	// hold: gamma distribution, hdf5 format, 3D, GPUs in use.
	if c.HighLevel.DataDist != stats.DistGamma {
		t.Errorf("data dist = %v, want gamma", c.HighLevel.DataDist)
	}
	if c.Dataset.Format != "hdf5" {
		t.Errorf("dataset format = %q", c.Dataset.Format)
	}
	if c.Workflow.GPUsUsedPerNode == 0 {
		t.Error("GPU use not detected")
	}
	if c.HighLevel.DataRepr != "3D" {
		t.Errorf("repr = %q", c.HighLevel.DataRepr)
	}
	// Middleware entity: extra I/O cores (40 cores, 4 GPU ranks -> 36,
	// matching Table VII's CosmoFlow row).
	if c.Middleware.ExtraIOCoresPerNode != 36 {
		t.Errorf("extra cores = %d, want 36", c.Middleware.ExtraIOCoresPerNode)
	}
}

func TestAnalyzeJAG(t *testing.T) {
	w := workloads.NewJAG()
	w.Epochs = 3
	w.ComputePerEpoch = 3 * time.Second // long enough to split I/O phases
	c := runAndAnalyze(t, w, nil)

	if c.Apps[0].Interface != "STDIO" {
		t.Errorf("interface = %q", c.Apps[0].Interface)
	}
	// Single shared dataset file: shared count >= 1.
	if c.Workflow.SharedFiles < 1 {
		t.Errorf("shared files = %d", c.Workflow.SharedFiles)
	}
	// Small-access granularity (4KB samples).
	if c.HighLevel.Granularity.Read != 4096 {
		t.Errorf("read granularity = %d, want 4096", c.HighLevel.Granularity.Read)
	}
	// Middleware buffering: POSIX-visible reads are buffer-sized (64KB).
	if c.Middleware.Granularity.Read != 64<<10 {
		t.Errorf("posix-level read granularity = %d, want 64KB", c.Middleware.Granularity.Read)
	}
	// Two separated I/O phases (start reads, end validation).
	if len(c.Phases) < 2 {
		t.Errorf("phases = %d, want >= 2 (train + validation)", len(c.Phases))
	}
}

func TestAnalyzeMontageMPI(t *testing.T) {
	w := workloads.NewMontageMPI()
	c := runAndAnalyze(t, w, func(s *workloads.Spec) { s.Scale = 0.1 })

	if len(c.Apps) != 5 {
		t.Fatalf("apps = %d, want 5 (%+v)", len(c.Apps), c.Apps)
	}
	// STDIO-dominated workflow with app data dependencies.
	if len(c.Workflow.AppDeps) == 0 {
		t.Fatal("no app dependencies detected")
	}
	foundChain := false
	for _, d := range c.Workflow.AppDeps {
		if d.Producer == "mProject" && d.Consumer == "mAddMPI" {
			foundChain = true
		}
	}
	if !foundChain {
		t.Errorf("mProject->mAddMPI dependency missing: %+v", c.Workflow.AppDeps)
	}
	// Small dominant write size at the app level.
	if c.HighLevel.Granularity.Write > 64<<10 {
		t.Errorf("write granularity = %d, want small", c.HighLevel.Granularity.Write)
	}
	// Data ops dominate (paper: 99% data).
	if c.Workflow.DataOpsPct < 0.5 {
		t.Errorf("data pct = %v, want majority", c.Workflow.DataOpsPct)
	}
}

func TestAnalyzeMontagePegasus(t *testing.T) {
	w := workloads.NewMontagePegasus()
	c := runAndAnalyze(t, w, nil)

	if len(c.Apps) != 9 {
		t.Fatalf("apps = %d, want 9", len(c.Apps))
	}
	// Pipeline dependencies through the whole DAG.
	need := map[[2]string]bool{
		{"mProject", "mDiff"}:       false,
		{"mDiff", "mFitplane"}:      false,
		{"mFitplane", "mConcatFit"}: false,
		{"mBgModel", "mBackground"}: false,
		{"mBackground", "mAdd"}:     false,
		{"mAdd", "mViewer"}:         false,
	}
	for _, d := range c.Workflow.AppDeps {
		k := [2]string{d.Producer, d.Consumer}
		if _, ok := need[k]; ok {
			need[k] = true
		}
	}
	for k, ok := range need {
		if !ok {
			t.Errorf("dependency %v -> %v missing", k[0], k[1])
		}
	}
}

func TestStorageEntitiesFromConfig(t *testing.T) {
	w := workloads.NewHACC()
	c := runAndAnalyze(t, w, nil)
	if c.NodeLocal.ParallelOps != 64 {
		t.Errorf("node-local parallel ops = %d, want 64 (Table VIII)", c.NodeLocal.ParallelOps)
	}
	if c.NodeLocal.MaxBWPerNode != 32<<30 {
		t.Errorf("node-local bw = %d, want 32GiB/s", c.NodeLocal.MaxBWPerNode)
	}
	if c.Shared.MaxBW != 512<<30 {
		t.Errorf("shared bw = %d, want 512GiB/s server aggregate", c.Shared.MaxBW)
	}
	if c.Shared.Dir != "/p/gpfs1" || c.NodeLocal.Dir != "/dev/shm" {
		t.Errorf("dirs = %+v %+v", c.NodeLocal, c.Shared)
	}
}

func TestFigureDataConsistency(t *testing.T) {
	w := workloads.NewHACC()
	c := runAndAnalyze(t, w, nil)
	fig := c.Figure
	// Histogram bytes equal workflow read/write bytes.
	if fig.ReadHist.TotalBytes() != c.Workflow.ReadBytes {
		t.Errorf("read hist %d != workflow %d", fig.ReadHist.TotalBytes(), c.Workflow.ReadBytes)
	}
	if fig.WriteHist.TotalBytes() != c.Workflow.WriteBytes {
		t.Errorf("write hist %d != workflow %d", fig.WriteHist.TotalBytes(), c.Workflow.WriteBytes)
	}
	// Timelines conserve bytes too.
	if fig.ReadTL.TotalBytes() != c.Workflow.ReadBytes {
		t.Errorf("read timeline %d != %d", fig.ReadTL.TotalBytes(), c.Workflow.ReadBytes)
	}
	if len(fig.TopFlows) == 0 {
		t.Fatal("no dependency flows")
	}
	for _, fl := range fig.TopFlows {
		if fl.WriterRanks != 1 || fl.ReaderRanks != 1 {
			t.Errorf("HACC flow %s writers=%d readers=%d, want 1/1", fl.Path, fl.WriterRanks, fl.ReaderRanks)
		}
	}
}

func TestPhaseGapControlsSplitting(t *testing.T) {
	w := workloads.NewCM1()
	spec := w.DefaultSpec()
	spec.Nodes = 2
	spec.RanksPerNode = 4
	spec.Scale = 0.03
	res, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	fine := Analyze(res.Trace, Options{PhaseGap: 100 * time.Millisecond})
	coarse := Analyze(res.Trace, Options{PhaseGap: time.Hour})
	if len(coarse.Phases) != 1 {
		t.Errorf("huge gap produced %d phases, want 1", len(coarse.Phases))
	}
	if len(fine.Phases) <= len(coarse.Phases) {
		t.Errorf("fine gap (%d phases) not more than coarse (%d)", len(fine.Phases), len(coarse.Phases))
	}
	// Phase bytes must sum to total I/O regardless of the gap.
	var sum int64
	for _, ph := range fine.Phases {
		sum += ph.IOBytes
	}
	if sum != fine.Workflow.IOBytes {
		t.Errorf("phase bytes %d != workflow bytes %d", sum, fine.Workflow.IOBytes)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	tr := trace.NewTracer().Finish()
	c := Analyze(tr, DefaultOptions())
	if len(c.Apps) != 0 || len(c.Phases) != 0 {
		t.Errorf("empty trace produced entities: %+v", c)
	}
	if c.Workflow.IOBytes != 0 {
		t.Error("phantom I/O")
	}
}

func TestPctPairRounding(t *testing.T) {
	d, m := PctPair(0.304, 0.696)
	if d != 30 || m != 70 {
		t.Errorf("PctPair = %d/%d, want 30/70", d, m)
	}
}

func TestSizeString(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		512:        "512B",
		4096:       "4KB",
		64 << 10:   "64KB",
		1 << 20:    "1MB",
		16 << 20:   "16MB",
		1 << 30:    "1GB",
		3 << 39:    "1.5TB",
		1536 << 10: "1.5MB",
	}
	for b, want := range cases {
		if got := SizeString(b); got != want {
			t.Errorf("SizeString(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestRankBandwidthPanel(t *testing.T) {
	// Figure 2c: HACC ranks achieve different bandwidths under contention.
	w := workloads.NewHACC()
	c := runAndAnalyze(t, w, func(s *workloads.Spec) {
		s.Storage.CacheEnabled = false
	})
	rbw := c.Figure.RankBW
	if len(rbw) != 32 { // 4 nodes x 8 ranks
		t.Fatalf("rank bandwidth entries = %d, want 32", len(rbw))
	}
	var minW, maxW float64
	for i, r := range rbw {
		if r.WriteBW <= 0 || r.ReadBW <= 0 {
			t.Fatalf("rank %d has zero bandwidth: %+v", r.Rank, r)
		}
		if i == 0 || r.WriteBW < minW {
			minW = r.WriteBW
		}
		if r.WriteBW > maxW {
			maxW = r.WriteBW
		}
	}
	if maxW <= minW {
		t.Error("all ranks achieved identical write bandwidth; Figure 2c variance missing")
	}
	// Ranks are reported in order.
	for i := 1; i < len(rbw); i++ {
		if rbw[i].Rank <= rbw[i-1].Rank {
			t.Fatal("rank bandwidth not ordered by rank")
		}
	}
}

func TestCompareBaselineVsOptimized(t *testing.T) {
	w := workloads.NewMontageMPI()
	w.ProjectCompute, w.AddCompute, w.ShrinkCompute, w.ViewerCompute = 0, 0, 0, 0
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.RanksPerNode = 8
	spec.Scale = 0.1
	base, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Optimized = true
	opt, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	cb := Analyze(base.Trace, DefaultOptions())
	co := Analyze(opt.Trace, DefaultOptions())
	deltas := Compare(cb, co)
	if len(deltas) == 0 {
		t.Fatal("optimization changed nothing according to Compare")
	}
	byAttr := map[string]Delta{}
	for _, d := range deltas {
		byAttr[d.Attribute] = d
	}
	rt, ok := byAttr["workflow.io_time"]
	if !ok {
		t.Fatal("io_time delta missing")
	}
	if rt.Factor >= 1 || rt.Factor <= 0 {
		t.Errorf("io_time factor = %v, want < 1 (faster)", rt.Factor)
	}
	if s := Speedup(cb, co); s <= 1 {
		t.Errorf("Speedup = %v, want > 1", s)
	}
}

func TestCompareIdenticalIsEmpty(t *testing.T) {
	w := workloads.NewHACC()
	c := runAndAnalyze(t, w, nil)
	if ds := Compare(c, c); len(ds) != 0 {
		t.Errorf("self-comparison produced deltas: %+v", ds)
	}
}

func TestWorkflowFileInvariant(t *testing.T) {
	// FPP + shared must equal the number of files with I/O, for every
	// workload.
	for _, w := range workloads.All() {
		w := w
		c := runAndAnalyze(t, w, func(s *workloads.Spec) {
			s.Scale = 0.01
			if w.Name() == "cm1" || w.Name() == "montage-mpi" {
				s.Scale = 0.05
			}
		})
		total := c.Workflow.FPPFiles + c.Workflow.SharedFiles
		if total != c.Dataset.NumFiles {
			t.Errorf("%s: FPP(%d)+shared(%d) != dataset files (%d)",
				w.Name(), c.Workflow.FPPFiles, c.Workflow.SharedFiles, c.Dataset.NumFiles)
		}
	}
}
