package core

import (
	"vani/internal/colstore"
	"vani/internal/trace"
)

// Post-pass row access. The fused scan produces row subsets (primary
// rows, POSIX-level rows, per-app rows) that the post passes revisit many
// times across many columns. A rowView gathers such a subset into dense
// columnar slices once, so every revisit is a flat array walk instead of
// a per-row chunk lookup through the Table accessors. The grouped scan
// additionally emits its row sets as rowSegs — contiguous runs carrying
// the enclosing key span's constant file and rank — which lets the
// gather copy whole slices and the access-pattern pass hoist its per-row
// stream-map traffic to segment boundaries. Every segment-batched pass
// consumes the same rows in the same order as the per-row form, so the
// characterization is byte-identical whether segments are present or not.

// rowSeg is a contiguous run of collected rows sharing one file and rank
// (op still varies within a segment — it fragments far too finely to key
// segments on). In the scan partials lo/hi are global row indices; a
// gathered rowView rewrites them to view-relative positions. Segments
// never span a chunk boundary (each partial emits its own chunk's rows).
type rowSeg struct {
	lo, hi int
	file   int32
	rank   int32
}

// appendSeg appends a segment, coalescing it into the previous one when
// the runs touch and the keys match — per-row emission and adjacent
// sub-runs of one key span both produce touching segments, so primary
// segments coalesce to roughly one per key span.
func appendSeg(segs []rowSeg, s rowSeg) []rowSeg {
	if n := len(segs); n > 0 {
		p := &segs[n-1]
		if p.hi == s.lo && p.file == s.file && p.rank == s.rank {
			p.hi = s.hi
			return segs
		}
	}
	return append(segs, s)
}

// rowView is the gathered columnar image of one row list. Only the
// columns requested at build time are non-nil; segs is nil when the view
// was gathered from a plain row list (the map-keyed fallback scan).
type rowView struct {
	n     int
	segs  []rowSeg
	op    []uint8
	lib   []uint8
	rank  []int32
	file  []int32
	off   []int64
	size  []int64
	start []int64
	end   []int64
}

func (v *rowView) alloc(cols trace.ColSet, n int) {
	if cols&trace.ColOp != 0 {
		v.op = make([]uint8, 0, n)
	}
	if cols&trace.ColLib != 0 {
		v.lib = make([]uint8, 0, n)
	}
	if cols&trace.ColRank != 0 {
		v.rank = make([]int32, 0, n)
	}
	if cols&trace.ColFile != 0 {
		v.file = make([]int32, 0, n)
	}
	if cols&trace.ColOffset != 0 {
		v.off = make([]int64, 0, n)
	}
	if cols&trace.ColSize != 0 {
		v.size = make([]int64, 0, n)
	}
	if cols&trace.ColStart != 0 {
		v.start = make([]int64, 0, n)
	}
	if cols&trace.ColEnd != 0 {
		v.end = make([]int64, 0, n)
	}
}

// chunkCursor resolves ascending global row indices to (chunk, offset)
// with one chunk hop per transition instead of a lookup per call. Every
// gathered row list is globally ascending (partials concatenate in chunk
// order with in-chunk appends in row order).
type chunkCursor struct {
	tb *colstore.Table
	k  int
	c  *colstore.Chunk
}

func (cc *chunkCursor) at(i int) (*colstore.Chunk, int) {
	for cc.c == nil || i >= cc.c.Base+cc.c.N {
		cc.k++
		cc.c = cc.tb.ChunkAt(cc.k)
	}
	return cc.c, i - cc.c.Base
}

// viewRows gathers a plain row list. The requested columns must already
// be materialized (run() materializes postCols before any view is built).
func (a *analysis) viewRows(rows []int, cols trace.ColSet) *rowView {
	v := &rowView{n: len(rows)}
	v.alloc(cols, len(rows))
	cc := chunkCursor{tb: a.tb, k: -1}
	for _, i := range rows {
		c, j := cc.at(i)
		if v.op != nil {
			v.op = append(v.op, c.Op[j])
		}
		if v.lib != nil {
			v.lib = append(v.lib, c.Lib[j])
		}
		if v.rank != nil {
			v.rank = append(v.rank, c.Rank[j])
		}
		if v.file != nil {
			v.file = append(v.file, c.File[j])
		}
		if v.off != nil {
			v.off = append(v.off, c.Offset[j])
		}
		if v.size != nil {
			v.size = append(v.size, c.Size[j])
		}
		if v.start != nil {
			v.start = append(v.start, c.Start[j])
		}
		if v.end != nil {
			v.end = append(v.end, c.End[j])
		}
	}
	return v
}

// viewSegs gathers a segment list: columns copy in bulk slices rather
// than row by row, and the segments ride along rebased to view positions.
func (a *analysis) viewSegs(segs []rowSeg, cols trace.ColSet) *rowView {
	n := 0
	for _, s := range segs {
		n += s.hi - s.lo
	}
	v := &rowView{n: n, segs: make([]rowSeg, 0, len(segs))}
	v.alloc(cols, n)
	cc := chunkCursor{tb: a.tb, k: -1}
	pos := 0
	for _, s := range segs {
		c, j := cc.at(s.lo)
		ln := s.hi - s.lo
		if v.op != nil {
			v.op = append(v.op, c.Op[j:j+ln]...)
		}
		if v.lib != nil {
			v.lib = append(v.lib, c.Lib[j:j+ln]...)
		}
		if v.rank != nil {
			v.rank = append(v.rank, c.Rank[j:j+ln]...)
		}
		if v.file != nil {
			v.file = append(v.file, c.File[j:j+ln]...)
		}
		if v.off != nil {
			v.off = append(v.off, c.Offset[j:j+ln]...)
		}
		if v.size != nil {
			v.size = append(v.size, c.Size[j:j+ln]...)
		}
		if v.start != nil {
			v.start = append(v.start, c.Start[j:j+ln]...)
		}
		if v.end != nil {
			v.end = append(v.end, c.End[j:j+ln]...)
		}
		v.segs = append(v.segs, rowSeg{lo: pos, hi: pos + ln, file: s.file, rank: s.rank})
		pos += ln
	}
	return v
}

// permuteView reorders a view by idx (for the phases guard sort on
// tables built from unsorted traces). Segment structure does not survive
// a reorder, so the result is always seg-free.
func permuteView(v *rowView, idx []int) *rowView {
	out := &rowView{n: v.n}
	if v.op != nil {
		out.op = make([]uint8, v.n)
		for i, j := range idx {
			out.op[i] = v.op[j]
		}
	}
	if v.lib != nil {
		out.lib = make([]uint8, v.n)
		for i, j := range idx {
			out.lib[i] = v.lib[j]
		}
	}
	if v.rank != nil {
		out.rank = make([]int32, v.n)
		for i, j := range idx {
			out.rank[i] = v.rank[j]
		}
	}
	if v.file != nil {
		out.file = make([]int32, v.n)
		for i, j := range idx {
			out.file[i] = v.file[j]
		}
	}
	if v.off != nil {
		out.off = make([]int64, v.n)
		for i, j := range idx {
			out.off[i] = v.off[j]
		}
	}
	if v.size != nil {
		out.size = make([]int64, v.n)
		for i, j := range idx {
			out.size[i] = v.size[j]
		}
	}
	if v.start != nil {
		out.start = make([]int64, v.n)
		for i, j := range idx {
			out.start[i] = v.start[j]
		}
	}
	if v.end != nil {
		out.end = make([]int64, v.n)
		for i, j := range idx {
			out.end[i] = v.end[j]
		}
	}
	return out
}

// The column sets each post-pass family reads; views gather exactly
// these so the gather cost tracks what the passes actually touch.
const (
	// primaryViewCols serves phases, the I/O-time interval union, the
	// high-level granularities and the access-pattern classification.
	primaryViewCols = trace.ColOp | trace.ColSize | trace.ColStart |
		trace.ColEnd | trace.ColRank | trace.ColFile | trace.ColOffset
	// posixViewCols serves the middleware granularity and access pattern.
	posixViewCols = trace.ColOp | trace.ColSize | trace.ColFile |
		trace.ColRank | trace.ColOffset
	// appViewCols serves the per-app op mix, byte/runtime tallies and
	// interface resolution.
	appViewCols = trace.ColOp | trace.ColSize | trace.ColStart |
		trace.ColEnd | trace.ColLib
)
