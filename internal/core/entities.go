// Package core implements the paper's contribution: the systematic
// characterization of HPC workload I/O behavior into entities and
// attributes that a storage system can consume to configure itself.
//
// A workload characterization is organized exactly as Section IV-B
// proposes, into three entity groups:
//
//   - Job entities: job configuration (Table II), workflow (Table III),
//     per-application (Table IV), and I/O phases (Table V).
//   - Software entities: high-level I/O (Table VI), middleware (Table
//     VII), node-local storage (Table VIII), and shared storage (Table
//     IX).
//   - Data entities: dataset (Table X) and file (Table XI).
//
// The Analyzer builds all of them from a Recorder-style trace (via the
// colstore columnar representation), plus the storage configuration the
// job ran against. The result can be rendered as the paper's tables,
// marshaled to YAML for a storage system to load, or fed to the advisor
// package for optimization mapping.
package core

import (
	"time"

	"vani/internal/stats"
)

// Characterization is the complete entity/attribute description of one
// workload execution.
type Characterization struct {
	Workload string

	// Job entity group.
	JobConfig JobConfigEntity // Table II
	Workflow  WorkflowEntity  // Table III
	Apps      []AppEntity     // Table IV, one per application
	Phases    []IOPhaseEntity // Table V, in time order

	// Software entity group.
	HighLevel  HighLevelIOEntity   // Table VI
	Middleware MiddlewareIOEntity  // Table VII
	NodeLocal  NodeLocalEntity     // Table VIII
	Shared     SharedStorageEntity // Table IX

	// Data entity group.
	Dataset DatasetEntity // Table X
	File    FileEntity    // Table XI (representative data file)

	// Figure panels (request-size/bandwidth histograms, dependencies,
	// timelines) for the workload's figure in Figures 1-6. They are
	// rendering data, not attributes, so the YAML artifact omits them.
	Figure FigureData `yaml:"-"`
}

// JobConfigEntity holds the scheduler-level attributes of Table II.
type JobConfigEntity struct {
	Nodes           int
	CPUCoresPerNode int
	GPUsPerNode     int
	NodeLocalBBDir  string
	SharedBBDir     string // "" renders as NA
	PFSDir          string
	JobTime         time.Duration // requested wall time
}

// AppDep is one application-level data-dependency edge: Consumer read
// Bytes that Producer wrote.
type AppDep struct {
	Producer string
	Consumer string
	Bytes    int64
	Files    int
}

// WorkflowEntity holds the workflow-scope attributes of Table III.
type WorkflowEntity struct {
	CPUCoresUsedPerNode int
	GPUsUsedPerNode     int
	NumApps             int
	AppDeps             []AppDep
	FPPFiles            int // files accessed by exactly one rank
	SharedFiles         int // files accessed by more than one rank
	IOBytes             int64
	ReadBytes           int64
	WriteBytes          int64
	DataOpsPct          float64
	MetaOpsPct          float64
	// CrossNodeRAW reports whether any file written on one node is read
	// on a different node within the job — the synchronization-point
	// attribute Section IV-D2 says async I/O optimizations must respect.
	CrossNodeRAW bool
	IOTime       time.Duration // union of I/O activity intervals
	Runtime      time.Duration
}

// ProcDepKind classifies the process/data dependency of an application
// (the Figures 1b-6b panels, summarized).
type ProcDepKind string

// Process-dependency kinds.
const (
	DepFilePerProcess ProcDepKind = "file-per-process"  // each file one rank
	DepSingleWriter   ProcDepKind = "single-writer"     // one rank writes, many open/read
	DepSharedRead     ProcDepKind = "shared-read"       // many ranks read shared files
	DepPipeline       ProcDepKind = "producer-consumer" // files written then read by others
	DepMixed          ProcDepKind = "mixed"
)

// AppEntity holds the per-application attributes of Table IV.
type AppEntity struct {
	Name        string
	Processes   int
	ProcDep     ProcDepKind
	FPPFiles    int
	SharedFiles int
	IOBytes     int64
	DataOpsPct  float64
	MetaOpsPct  float64
	Interface   string // POSIX / STDIO / MPI-IO / HDF5 (MPI-IO)
	Runtime     time.Duration
}

// IOPhaseEntity holds the per-phase attributes of Table V. A phase is a
// maximal burst of I/O activity separated from its neighbors by more than
// the analyzer's gap threshold.
type IOPhaseEntity struct {
	Index      int
	Start, End time.Duration
	IOBytes    int64
	DataOpsPct float64
	MetaOpsPct float64
	OpsPerRank float64
	Granule    int64  // dominant transfer size within the phase
	Frequency  string // "Bulk (64KB)" or "Iterative (1MB)" style label
	Runtime    time.Duration
}

// Granularity is a (read, write) dominant-transfer-size pair; the paper's
// tables print e.g. "4KB-16MB" for CM1 (4KB writes, 16MB reads).
type Granularity struct {
	Read  int64
	Write int64
}

// HighLevelIOEntity holds the high-level I/O library attributes of
// Table VI.
type HighLevelIOEntity struct {
	DataRepr      string // "1D".."4D"
	Granularity   Granularity
	AccessPattern string // "Seq" or "Random"
	DataDist      stats.DistKind
}

// MiddlewareIOEntity holds the middleware attributes of Table VII.
type MiddlewareIOEntity struct {
	ExtraIOCoresPerNode int         // cores available beyond those running ranks
	Granularity         Granularity // post-middleware (POSIX-visible)
	MemPerNodeGB        int
	AccessPattern       string
}

// NodeLocalEntity holds the node-local storage attributes of Table VIII.
type NodeLocalEntity struct {
	ParallelOps   int
	CapacityBytes int64
	MaxBWPerNode  int64 // bytes/sec
	Dir           string
}

// SharedStorageEntity holds the shared-storage attributes of Table IX.
type SharedStorageEntity struct {
	ParallelServers int
	CapacityBytes   int64
	MaxBW           int64 // bytes/sec, aggregate
	Dir             string
}

// DatasetEntity holds the dataset-level attributes of Table X.
type DatasetEntity struct {
	Format       string // dominant file format
	SizeBytes    int64  // sum of final file sizes
	NumFiles     int
	IOBytes      int64
	IOTime       time.Duration
	DataOpsPct   float64
	MetaOpsPct   float64
	DataFileSize int64 // representative (largest-class) file size
	MetaFileSize int64 // representative small/config file size
	DataDist     stats.DistKind
}

// FileFormatAttrs are the format-specific attributes of Table XI.
type FileFormatAttrs struct {
	Chunked   bool
	NDatasets int
	NDims     int
	DataType  string
	Encoding  string // e.g. "FITS" for Montage-Pegasus
}

// FileEntity holds the per-file attributes of Table XI
// (the representative data file: highest I/O volume).
type FileEntity struct {
	Path       string
	Format     string
	SizeBytes  int64
	IOBytes    int64
	IOTime     time.Duration
	DataOpsPct float64
	MetaOpsPct float64
	Attrs      FileFormatAttrs
}

// FileFlow summarizes one file's producer/consumer relationship for the
// dependency panels (Figures 1b-6b).
type FileFlow struct {
	Path         string
	WriterRanks  int
	ReaderRanks  int
	BytesWritten int64
	BytesRead    int64
	Opens        int64
}

// RankBandwidth is one rank's achieved data bandwidth over the run — the
// per-rank series behind Figure 2c's observation that HACC ranks see
// different GPFS bandwidth despite identical access patterns.
type RankBandwidth struct {
	Rank    int32
	ReadBW  float64 // bytes/sec while reading
	WriteBW float64 // bytes/sec while writing
}

// FigureData carries the three panels of the workload's figure.
type FigureData struct {
	ReadHist  stats.SizeHistogram // request-size & bandwidth histogram (a)
	WriteHist stats.SizeHistogram
	ReadTL    *stats.Timeline // I/O timeline (c)
	WriteTL   *stats.Timeline
	TopFlows  []FileFlow      // dependency panel (b): highest-volume files
	RankBW    []RankBandwidth // per-rank achieved bandwidth (Figure 2c)
}

// PctPair formats data/meta percentages that always total ~100.
func PctPair(data, meta float64) (int, int) {
	return int(data*100 + 0.5), int(meta*100 + 0.5)
}
