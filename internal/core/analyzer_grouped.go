package core

import (
	"math/bits"
	"time"

	"vani/internal/colstore"
	"vani/internal/parallel"
	"vani/internal/stats"
	"vani/internal/trace"
)

// Grouped execution: the fused scan rewritten over dictionary codes. The
// key columns' stored values are the trace's interned dense ids, so once a
// CodeUnifier proves each key column dense under a cap, every map the fused
// scan keyed on (app, file) or rank becomes a flat array indexed by
// value+1, and the per-chunk scans ride KeySpans — runs of the five stable
// key columns with op dispatched per row — instead of hashing per row.
// Partials still merge in chunk order with integer sums and set unions, so
// the characterization is byte-identical to the map-keyed fallback (the
// codec-matrix equivalence suite pins a grouped-kernels-forced-off arm).

// Density caps for the grouped path. A column whose stored values exceed
// its cap (or whose combined accumulator would be pathologically large)
// sends the whole scan to the map-keyed fallback — the caps bound memory,
// they do not affect results. Real traces sit orders of magnitude below
// them: the arrays are sized by the actual cardinality the unifier
// discovers, not by the cap.
const (
	maxAppCard  = 1 << 12
	maxRankCard = 1 << 16
	maxFileCard = 1 << 17
	// maxLevelCells bounds the (app, file) primary-level matrix;
	// maxRankWords bounds the per-app rank bitsets, in 64-bit words.
	maxLevelCells = 1 << 21
	maxRankWords  = 1 << 21
)

// pass1g is the dense per-chunk partial of the level-resolution scan:
// levels is the (app, file) primary-level matrix storing level+1 (0 =
// unset), ranks the per-app bitsets of ranks that emitted any event.
type pass1g struct {
	levels []uint16
	maxEnd int64
	gpu    bool
	ranks  [][]uint64
}

// pass2g is the dense per-chunk partial of the fused characterization
// scan: byApp, files, perRank and rankHit replace the fallback's maps,
// indexed by value+1. The row subsets are emitted as constant-key
// segments (rowSeg) rather than row lists — the same rows in the same
// order, carrying the key span's file/rank so the post passes gather and
// batch on whole runs. Segment lists still concatenate in chunk order
// and the fileAgg internals are unchanged, so merged results are
// bit-identical.
type pass2g struct {
	primary    []rowSeg
	posix      []rowSeg
	byApp      [][]rowSeg
	files      []*fileAgg
	readBytes  int64
	writeBytes int64
	data, meta int64
	readHist   stats.SizeHistogram
	writeHist  stats.SizeHistogram
	readTL     *stats.Timeline
	writeTL    *stats.Timeline
	perRank    []rankAcc
	rankHit    []bool
}

// fusedScanGrouped is the grouped-execution form of fusedScan. It returns
// done == false (with no side effects on a) when any key column is not
// densely unifiable under the caps, in which case the caller runs the
// map-keyed fallback.
func (a *analysis) fusedScanGrouped() (bool, error) {
	appU, err := a.tb.UnifyCodes(colstore.ColApp, maxAppCard)
	if err != nil || appU == nil {
		return false, err
	}
	fileU, err := a.tb.UnifyCodes(colstore.ColFile, maxFileCard)
	if err != nil || fileU == nil {
		return false, err
	}
	rankU, err := a.tb.UnifyCodes(colstore.ColRank, maxRankCard)
	if err != nil || rankU == nil {
		return false, err
	}
	appSlots := int(appU.Card()) + 1
	fileSlots := int(fileU.Card()) + 1
	rankSlots := int(rankU.Card()) + 1
	rankWords := (rankSlots + 63) / 64
	if appSlots*fileSlots > maxLevelCells || appSlots*rankWords > maxRankWords {
		return false, nil
	}

	nchunks := a.tb.NumChunks()
	errs := make([]error, nchunks)

	// Pass 1: primary-level matrix, per-app rank bitsets, runtime, GPU.
	p1 := make([]*pass1g, nchunks)
	parallel.ForEach(a.par, nchunks, func(k int) {
		if errs[k] = a.ctx.Err(); errs[k] != nil {
			return
		}
		c := a.tb.ChunkAt(k)
		// Kernel request: key spans hoist the level/rank/app/file lookups
		// to span boundaries; only op is read per row (it alternates too
		// often to span). Fallback: the full column set, row-iterated.
		spans, spanOK := a.tb.ChunkKeySpans(k, nil)
		need := pass1Cols
		if spanOK {
			need = trace.ColEnd | trace.ColOp
		}
		if errs[k] = c.Require(need); errs[k] != nil {
			return
		}
		p := &pass1g{
			levels: make([]uint16, appSlots*fileSlots),
			ranks:  make([][]uint64, appSlots),
		}
		bitset := func(si int) []uint64 {
			bs := p.ranks[si]
			if bs == nil {
				bs = make([]uint64, rankWords)
				p.ranks[si] = bs
			}
			return bs
		}
		for _, e := range c.End {
			if e > p.maxEnd {
				p.maxEnd = e
			}
		}
		if spanOK {
			for _, s := range spans {
				bs := bitset(int(s.App) + 1)
				rs := int(s.Rank) + 1
				bs[rs>>6] |= 1 << (rs & 63)
				anyIO := false
				for j := s.Lo; j < s.Hi; j++ {
					op := trace.Op(c.Op[j])
					if op == trace.OpGPUCompute {
						p.gpu = true
					}
					if op.IsIO() {
						anyIO = true
					}
				}
				if anyIO {
					idx := (int(s.App)+1)*fileSlots + int(s.File) + 1
					lv := uint16(s.Level) + 1
					if cur := p.levels[idx]; cur == 0 || lv < cur {
						p.levels[idx] = lv
					}
				}
			}
			p1[k] = p
			return
		}
		for j := 0; j < c.N; j++ {
			op := trace.Op(c.Op[j])
			if op == trace.OpGPUCompute {
				p.gpu = true
			}
			bs := bitset(int(c.App[j]) + 1)
			rs := int(c.Rank[j]) + 1
			bs[rs>>6] |= 1 << (rs & 63)
			if !op.IsIO() {
				continue
			}
			idx := (int(c.App[j])+1)*fileSlots + int(c.File[j]) + 1
			lv := uint16(c.Level[j]) + 1
			if cur := p.levels[idx]; cur == 0 || lv < cur {
				p.levels[idx] = lv
			}
		}
		p1[k] = p
	})
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	levels := make([]uint16, appSlots*fileSlots)
	ranksBits := make([][]uint64, appSlots)
	var maxEnd int64
	for _, p := range p1 {
		if p.maxEnd > maxEnd {
			maxEnd = p.maxEnd
		}
		a.gpuUsed = a.gpuUsed || p.gpu
		for i, lv := range p.levels {
			if lv != 0 && (levels[i] == 0 || lv < levels[i]) {
				levels[i] = lv
			}
		}
		for si, bs := range p.ranks {
			if bs == nil {
				continue
			}
			dst := ranksBits[si]
			if dst == nil {
				dst = make([]uint64, rankWords)
				ranksBits[si] = dst
			}
			for w, v := range bs {
				dst[w] |= v
			}
		}
	}
	a.runtime = time.Duration(maxEnd)
	a.appRanks = map[int32]int{}
	for si, bs := range ranksBits {
		if bs == nil {
			continue
		}
		n := 0
		for _, w := range bs {
			n += bits.OnesCount64(w)
		}
		a.appRanks[int32(si-1)] = n
	}

	// Pass 2: the fused characterization scan over dense accumulators.
	span := a.runtime
	if span <= 0 {
		span = time.Second
	}
	bins := a.opt.TimelineBins
	p2 := make([]*pass2g, nchunks)
	parallel.ForEach(a.par, nchunks, func(k int) {
		if errs[k] = a.ctx.Err(); errs[k] != nil {
			return
		}
		c := a.tb.ChunkAt(k)
		spans, spanOK := a.tb.ChunkKeySpans(k, nil)
		a.tb.TickAccumKernels(spanOK)
		need := pass2Cols
		if spanOK {
			need = trace.ColOp | trace.ColSize | trace.ColStart | trace.ColEnd
		}
		if errs[k] = c.Require(need); errs[k] != nil {
			return
		}
		p := &pass2g{
			byApp:   make([][]rowSeg, appSlots),
			files:   make([]*fileAgg, fileSlots),
			perRank: make([]rankAcc, rankSlots),
			rankHit: make([]bool, rankSlots),
			readTL:  stats.NewTimeline(span, bins),
			writeTL: stats.NewTimeline(span, bins),
		}
		if spanOK {
			keySpanPass2(c, spans, levels, fileSlots, p)
		} else {
			rowPass2g(c, levels, fileSlots, p)
		}
		p2[k] = p
	})
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}

	a.grouped = true
	a.byAppSegs = map[int32][]rowSeg{}
	a.fileAgg = map[int32]*fileAgg{}
	a.readTL = stats.NewTimeline(span, bins)
	a.writeTL = stats.NewTimeline(span, bins)
	a.perRank = map[int32]*rankAcc{}
	for _, p := range p2 {
		a.primarySegs = append(a.primarySegs, p.primary...)
		a.posixSegs = append(a.posixSegs, p.posix...)
		for si, segs := range p.byApp {
			if len(segs) > 0 {
				app := int32(si - 1)
				a.byAppSegs[app] = append(a.byAppSegs[app], segs...)
			}
		}
		for si, fa := range p.files {
			if fa == nil {
				continue
			}
			f := int32(si - 1)
			if cur := a.fileAgg[f]; cur != nil {
				cur.merge(fa)
			} else {
				a.fileAgg[f] = fa
			}
		}
		a.readBytes += p.readBytes
		a.writeBytes += p.writeBytes
		a.primData += p.data
		a.primMeta += p.meta
		a.readHist.Merge(&p.readHist)
		a.writeHist.Merge(&p.writeHist)
		a.readTL.Merge(p.readTL)
		a.writeTL.Merge(p.writeTL)
		for si := range p.perRank {
			if !p.rankHit[si] {
				continue
			}
			acc := &p.perRank[si]
			r := int32(si - 1)
			if cur := a.perRank[r]; cur != nil {
				cur.rBytes += acc.rBytes
				cur.wBytes += acc.wBytes
				cur.rDur += acc.rDur
				cur.wDur += acc.wDur
			} else {
				a.perRank[r] = &rankAcc{
					rBytes: acc.rBytes, wBytes: acc.wBytes,
					rDur: acc.rDur, wDur: acc.wDur,
				}
			}
		}
	}
	return true, nil
}

// keySpanPass2 runs pass 2 over one chunk's stable-key spans: the primary
// check, the file/rank accumulator lookups and the reader/writer set
// updates happen once per span; within a span the op dispatch is hoisted to
// maximal same-op sub-runs, whose Size/Start/End accumulations run batched
// through SizeHistogram.AddRun and Timeline.AddRuns. Every batched add is a
// regrouped integer sum over the same rows in the same order, so every
// partial is identical to the row loop's.
func keySpanPass2(c *colstore.Chunk, spans []colstore.KeySpan, levels []uint16, fileSlots int, p *pass2g) {
	for _, s := range spans {
		isPosix := trace.Level(s.Level) == trace.LevelPosix
		isPrim := uint16(s.Level)+1 == levels[(int(s.App)+1)*fileSlots+int(s.File)+1]
		if !isPosix && !isPrim {
			continue // no row of this span can contribute anything
		}
		var fa *fileAgg
		var sawRead, sawWrite bool
		segs := p.byApp[int(s.App)+1]
		rslot := int(s.Rank) + 1
		acc := &p.perRank[rslot]
		for j := s.Lo; j < s.Hi; {
			op := trace.Op(c.Op[j])
			j2 := j + 1
			for j2 < s.Hi && c.Op[j2] == c.Op[j] {
				j2++
			}
			if !op.IsIO() {
				j = j2
				continue
			}
			seg := rowSeg{lo: c.Base + j, hi: c.Base + j2, file: s.File, rank: s.Rank}
			if isPosix {
				p.posix = appendSeg(p.posix, seg)
			}
			if !isPrim {
				j = j2
				continue
			}
			p.primary = appendSeg(p.primary, seg)
			segs = appendSeg(segs, seg)
			cnt := int64(j2 - j)
			if op.IsData() {
				p.data += cnt
			} else if op.IsMeta() {
				p.meta += cnt
			}
			if s.File >= 0 && fa == nil {
				fa = p.files[int(s.File)+1]
				if fa == nil {
					fa = newFileAgg(s.File)
					p.files[int(s.File)+1] = fa
				}
				fa.ranks[s.Rank] = true
			}
			p.rankHit[rslot] = true
			switch op {
			case trace.OpRead:
				var runBytes, runDur int64
				for i := j; i < j2; {
					sz := c.Size[i]
					dsum := c.End[i] - c.Start[i]
					i2 := i + 1
					for i2 < j2 && c.Size[i2] == sz {
						dsum += c.End[i2] - c.Start[i2]
						i2++
					}
					runBytes += sz * int64(i2-i)
					runDur += dsum
					p.readHist.AddRun(sz, int64(i2-i), time.Duration(dsum))
					i = i2
				}
				p.readBytes += runBytes
				p.readTL.AddRuns(c.Start, c.End, c.Size, j, j2)
				acc.rBytes += runBytes
				acc.rDur += runDur
				if fa != nil {
					fa.bytesRead += runBytes
					fa.ioDur += time.Duration(runDur)
					fa.dataOps += cnt
					sawRead = true
				}
			case trace.OpWrite:
				var runBytes, runDur int64
				for i := j; i < j2; {
					sz := c.Size[i]
					dsum := c.End[i] - c.Start[i]
					i2 := i + 1
					for i2 < j2 && c.Size[i2] == sz {
						dsum += c.End[i2] - c.Start[i2]
						i2++
					}
					runBytes += sz * int64(i2-i)
					runDur += dsum
					p.writeHist.AddRun(sz, int64(i2-i), time.Duration(dsum))
					i = i2
				}
				p.writeBytes += runBytes
				p.writeTL.AddRuns(c.Start, c.End, c.Size, j, j2)
				acc.wBytes += runBytes
				acc.wDur += runDur
				if fa != nil {
					fa.bytesWritten += runBytes
					fa.ioDur += time.Duration(runDur)
					fa.dataOps += cnt
					sawWrite = true
				}
			case trace.OpOpen:
				if fa != nil {
					var dsum int64
					for i := j; i < j2; i++ {
						dsum += c.End[i] - c.Start[i]
					}
					fa.ioDur += time.Duration(dsum)
					fa.opens += cnt
					fa.metaOps += cnt
				}
			default:
				if fa != nil {
					var dsum int64
					for i := j; i < j2; i++ {
						dsum += c.End[i] - c.Start[i]
					}
					fa.ioDur += time.Duration(dsum)
					fa.metaOps += cnt
				}
			}
			j = j2
		}
		p.byApp[int(s.App)+1] = segs
		if fa != nil {
			if sawRead {
				fa.readerRanks[s.Rank] = true
				fa.readerNodes[s.Node] = true
				fa.readerApps[s.App] = true
			}
			if sawWrite {
				fa.writerRanks[s.Rank] = true
				fa.writerNodes[s.Node] = true
				fa.writerApps[s.App] = true
			}
		}
	}
}

// rowPass2g is the grouped scan's per-row fallback for chunks without key
// spans: the fallback row loop with every map replaced by a dense array.
func rowPass2g(c *colstore.Chunk, levels []uint16, fileSlots int, p *pass2g) {
	for j := 0; j < c.N; j++ {
		op := trace.Op(c.Op[j])
		if !op.IsIO() {
			continue
		}
		i := c.Base + j
		seg := rowSeg{lo: i, hi: i + 1, file: c.File[j], rank: c.Rank[j]}
		if trace.Level(c.Level[j]) == trace.LevelPosix {
			p.posix = appendSeg(p.posix, seg)
		}
		if uint16(c.Level[j])+1 != levels[(int(c.App[j])+1)*fileSlots+int(c.File[j])+1] {
			continue
		}
		p.primary = appendSeg(p.primary, seg)
		asl := int(c.App[j]) + 1
		p.byApp[asl] = appendSeg(p.byApp[asl], seg)
		dur := c.End[j] - c.Start[j]
		if op.IsData() {
			p.data++
		} else if op.IsMeta() {
			p.meta++
		}
		var fa *fileAgg
		if c.File[j] >= 0 {
			fa = p.files[int(c.File[j])+1]
			if fa == nil {
				fa = newFileAgg(c.File[j])
				p.files[int(c.File[j])+1] = fa
			}
			fa.ranks[c.Rank[j]] = true
			fa.ioDur += time.Duration(dur)
		}
		rslot := int(c.Rank[j]) + 1
		p.rankHit[rslot] = true
		acc := &p.perRank[rslot]
		switch op {
		case trace.OpRead:
			p.readBytes += c.Size[j]
			p.readHist.Add(c.Size[j], time.Duration(dur))
			p.readTL.Add(time.Duration(c.Start[j]), time.Duration(c.End[j]), c.Size[j])
			acc.rBytes += c.Size[j]
			acc.rDur += dur
			if fa != nil {
				fa.bytesRead += c.Size[j]
				fa.readerRanks[c.Rank[j]] = true
				fa.readerNodes[c.Node[j]] = true
				fa.readerApps[c.App[j]] = true
				fa.dataOps++
			}
		case trace.OpWrite:
			p.writeBytes += c.Size[j]
			p.writeHist.Add(c.Size[j], time.Duration(dur))
			p.writeTL.Add(time.Duration(c.Start[j]), time.Duration(c.End[j]), c.Size[j])
			acc.wBytes += c.Size[j]
			acc.wDur += dur
			if fa != nil {
				fa.bytesWritten += c.Size[j]
				fa.writerRanks[c.Rank[j]] = true
				fa.writerNodes[c.Node[j]] = true
				fa.writerApps[c.App[j]] = true
				fa.dataOps++
			}
		case trace.OpOpen:
			if fa != nil {
				fa.opens++
				fa.metaOps++
			}
		default:
			if fa != nil {
				fa.metaOps++
			}
		}
	}
}
