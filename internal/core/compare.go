package core

import (
	"fmt"
	"time"
)

// Delta is one attribute that changed between two characterizations.
type Delta struct {
	Attribute string
	Before    string
	After     string
	// Factor is after/before for numeric attributes (0 when not numeric
	// or before is zero).
	Factor float64
}

// Compare diffs two characterizations attribute by attribute — the
// before/after view of a storage reconfiguration (e.g. the Figure 7/8
// case studies, where the optimized run's I/O time, target mix, and op
// distribution all shift). Unchanged attributes are omitted.
func Compare(before, after *Characterization) []Delta {
	var ds []Delta
	num := func(attr string, b, a float64, format func(float64) string) {
		if b == a {
			return
		}
		d := Delta{Attribute: attr, Before: format(b), After: format(a)}
		if b != 0 {
			d.Factor = a / b
		}
		ds = append(ds, d)
	}
	str := func(attr, b, a string) {
		if b == a {
			return
		}
		ds = append(ds, Delta{Attribute: attr, Before: b, After: a})
	}
	durFmt := func(v float64) string { return time.Duration(v).Round(time.Millisecond).String() }
	byteFmt := func(v float64) string { return sizeStr(int64(v)) }
	intFmt := func(v float64) string { return fmt.Sprintf("%d", int64(v)) }
	pctFmt := func(v float64) string { return fmt.Sprintf("%d%%", int(v*100+0.5)) }

	num("workflow.runtime", float64(before.Workflow.Runtime), float64(after.Workflow.Runtime), durFmt)
	num("workflow.io_time", float64(before.Workflow.IOTime), float64(after.Workflow.IOTime), durFmt)
	num("workflow.io_bytes", float64(before.Workflow.IOBytes), float64(after.Workflow.IOBytes), byteFmt)
	num("workflow.read_bytes", float64(before.Workflow.ReadBytes), float64(after.Workflow.ReadBytes), byteFmt)
	num("workflow.write_bytes", float64(before.Workflow.WriteBytes), float64(after.Workflow.WriteBytes), byteFmt)
	num("workflow.meta_ops_pct", before.Workflow.MetaOpsPct, after.Workflow.MetaOpsPct, pctFmt)
	num("workflow.fpp_files", float64(before.Workflow.FPPFiles), float64(after.Workflow.FPPFiles), intFmt)
	num("workflow.shared_files", float64(before.Workflow.SharedFiles), float64(after.Workflow.SharedFiles), intFmt)
	num("phases.count", float64(len(before.Phases)), float64(len(after.Phases)), intFmt)
	str("highlevel.access_pattern", before.HighLevel.AccessPattern, after.HighLevel.AccessPattern)
	str("highlevel.data_dist", string(before.HighLevel.DataDist), string(after.HighLevel.DataDist))
	num("highlevel.read_granularity",
		float64(before.HighLevel.Granularity.Read), float64(after.HighLevel.Granularity.Read), byteFmt)
	num("highlevel.write_granularity",
		float64(before.HighLevel.Granularity.Write), float64(after.HighLevel.Granularity.Write), byteFmt)
	str("dataset.format", before.Dataset.Format, after.Dataset.Format)
	num("dataset.num_files", float64(before.Dataset.NumFiles), float64(after.Dataset.NumFiles), intFmt)
	num("dataset.io_time", float64(before.Dataset.IOTime), float64(after.Dataset.IOTime), durFmt)
	str("file.path", before.File.Path, after.File.Path)
	return ds
}

// Speedup extracts the I/O-time improvement factor from a comparison, the
// headline number of the case studies (before/after, so >1 is faster).
func Speedup(before, after *Characterization) float64 {
	if after.Workflow.IOTime == 0 {
		return 0
	}
	return float64(before.Workflow.IOTime) / float64(after.Workflow.IOTime)
}
