// Package pipeline is the trace-to-characterization read path shared by
// the root facade, the vanid service, and the trace repository: open the
// log (block-indexed VANITRC2 or serial VANITRC1), columnarize under the
// pushed-down filter, and run the analyzer. It lives below the facade so
// internal subsystems (repo's fleet queries) can characterize stored
// traces without importing package vani.
package pipeline

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"vani/internal/colstore"
	"vani/internal/core"
	"vani/internal/trace"
)

// File analyzes a trace log on disk with cancellation: ctx is threaded
// through the block reader's physical reads, the column scans, and the
// analyzer's chunk-parallel workers, so a canceled or timed-out request
// stops decoding mid-trace instead of running the log to completion. The
// returned error is ctx.Err() when the abort was a cancellation.
func File(ctx context.Context, path string, opt core.Options) (*core.Characterization, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, trace.ErrBadFormat)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if format, ok := trace.SniffMagic(head[:]); ok && format == trace.FormatV2 {
		info, err := f.Stat()
		if err != nil {
			return nil, err
		}
		br, err := trace.NewBlockReader(trace.ReaderAtContext(ctx, f), info.Size())
		if err != nil {
			return nil, wrapReadErr(path, err)
		}
		c, err := Blocks(ctx, br, opt)
		if err != nil {
			return nil, wrapReadErr(path, err)
		}
		return c, nil
	}

	sc, err := trace.NewScanner(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	t0 := time.Now()
	b := colstore.NewBuilder()
	buf := make([]trace.Event, 8192)
	m := opt.Filter.NewMatcher()
	filtered := !opt.Filter.Empty()
	var rowsTotal int64
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := sc.Next(buf)
		if filtered {
			for i := range buf[:n] {
				if m.MatchEvent(&buf[i]) {
					b.Append(&buf[i])
				}
			}
		} else {
			b.AppendEvents(buf[:n])
		}
		rowsTotal += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
	}
	tb := b.Finish()
	if opt.Stats != nil {
		opt.Stats.Columnarize = time.Since(t0)
		opt.Stats.Scan = colstore.ScanCounters{
			RowsTotal: rowsTotal,
			RowsKept:  int64(tb.Len()),
		}
	}
	c, err := core.AnalyzeTableContext(ctx, sc.Header(), tb, opt)
	if err != nil {
		return nil, wrapReadErr(path, err)
	}
	return c, nil
}

// Blocks analyzes a VANITRC2 block source — a BlockReader over an open
// file, or a shared decoded-block cache like vanid's — through the
// planned-scan path: the filter pushes down to the block index, predicates
// evaluate in the compressed domain where the kernel registry serves them,
// and the analyzer passes run span-fused over encoded segments,
// materializing only the columns no kernel can answer. The
// characterization is byte-identical to File over the same log.
func Blocks(ctx context.Context, src trace.BlockSource, opt core.Options) (*core.Characterization, error) {
	t0 := time.Now()
	stats := &colstore.ScanStats{}
	spec := colstore.ScanSpec{Filter: opt.Filter}
	tb, err := colstore.FromBlocksSpecContext(ctx, src, opt.Parallelism, spec, stats)
	if err != nil {
		return nil, err
	}
	if opt.Stats != nil {
		opt.Stats.Columnarize = time.Since(t0)
	}
	c, err := core.AnalyzeTableContext(ctx, src.Header(), tb, opt)
	if err != nil {
		return nil, err
	}
	// Snapshot after analysis: lazily materialized columns add their
	// decoded bytes during the kernels' Require calls.
	if opt.Stats != nil {
		opt.Stats.Scan = stats.Snapshot()
	}
	return c, nil
}

// wrapReadErr attributes a read-path failure to its file, but leaves
// context errors bare so callers can distinguish cancellation.
func wrapReadErr(path string, err error) error {
	if trace.IsCtxErr(err) {
		return err
	}
	return fmt.Errorf("reading %s: %w", path, err)
}
