// Package replay re-executes a captured trace against a storage
// configuration — the "what-if" half of the paper's vision. Once a
// workload has been characterized from one run, the storage system can
// evaluate candidate configurations by replaying the recorded I/O pattern
// instead of re-running the application: same ranks, same files, same
// offsets and sizes, same think time between calls, different stack.
//
// Replay drives the primary-level I/O events (the application-facing
// calls), so middleware effects captured in the trace (STDIO buffering,
// MPI-IO sync) are preserved as recorded, while the storage-side costs
// (PFS queueing, caching, metadata service) are recomputed under the
// candidate configuration.
package replay

import (
	"fmt"
	"sort"
	"time"

	"vani/internal/sim"
	"vani/internal/storage"
	"vani/internal/trace"
)

// Options configures a replay.
type Options struct {
	// Storage is the candidate configuration to evaluate.
	Storage storage.Config
	// PreserveThinkTime keeps the recorded gaps between a rank's
	// consecutive calls (compute, synchronization). When false the replay
	// issues ops back to back, measuring pure I/O capability.
	PreserveThinkTime bool
	// Seed drives the candidate stack's service jitter.
	Seed int64
}

// DefaultOptions replays against the recorded machine's Lassen-like stack
// with think time preserved.
func DefaultOptions() Options {
	return Options{Storage: storage.Lassen(), PreserveThinkTime: true, Seed: 1}
}

// Result is the outcome of one replay.
type Result struct {
	// Runtime is the virtual time to complete the replay.
	Runtime time.Duration
	// IOTime is the summed per-op service time across ranks divided by
	// the number of ranks — the mean per-rank I/O cost under the
	// candidate configuration.
	IOTime time.Duration
	// Ops and Bytes count what was replayed.
	Ops   int64
	Bytes int64
	// Sys exposes the candidate stack's counters.
	Sys *storage.System
}

// rankOp is one replayable operation.
type rankOp struct {
	op      trace.Op
	file    int32
	offset  int64
	size    int64
	start   time.Duration // recorded start, for think-time gaps
	created bool          // first writer creates the file
}

// Run replays the trace's primary-level I/O events under the candidate
// configuration and reports the re-simulated timing.
func Run(tr *trace.Trace, opt Options) (*Result, error) {
	if tr.Meta.Nodes <= 0 || tr.Meta.Ranks <= 0 {
		return nil, fmt.Errorf("replay: trace has no job metadata")
	}
	scripts, err := buildScripts(tr)
	if err != nil {
		return nil, err
	}
	e := sim.NewEngine()
	sys := storage.New(e, opt.Storage, tr.Meta.Nodes, sim.NewRNG(opt.Seed))

	// Stage input files: anything read before it is written must exist.
	stageInputs(tr, sys, scripts)

	res := &Result{Sys: sys}
	var totalIO int64 // summed per-op durations in ns
	ranksPerNode := tr.Meta.Ranks / tr.Meta.Nodes
	if ranksPerNode == 0 {
		ranksPerNode = 1
	}
	// Spawn ranks in order: map iteration order would otherwise leak into
	// FCFS arrival order and break determinism.
	ranks := make([]int, 0, len(scripts))
	for rank := range scripts {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		ops := scripts[rank]
		if len(ops) == 0 {
			continue
		}
		rank := rank
		node := rank / ranksPerNode
		if node >= tr.Meta.Nodes {
			node = tr.Meta.Nodes - 1
		}
		e.Spawn(fmt.Sprintf("replay-rank%d", rank), func(p *sim.Proc) {
			var lastRecorded time.Duration
			for i, op := range ops {
				if opt.PreserveThinkTime && i > 0 {
					gap := op.start - lastRecorded
					if gap > 0 {
						p.Sleep(gap)
					}
				}
				lastRecorded = op.start
				t0 := p.Now()
				path := tr.FilePath(op.file)
				switch op.op {
				case trace.OpOpen:
					_ = sys.Open(p, node, path, op.created)
				case trace.OpClose:
					sys.Close(p, node, path)
				case trace.OpRead:
					_ = sys.Read(p, node, path, op.offset, op.size)
					res.Bytes += op.size
				case trace.OpWrite:
					_ = sys.Write(p, node, path, op.offset, op.size)
					res.Bytes += op.size
				case trace.OpSeek:
					sys.Seek(p, node, path)
				case trace.OpStat:
					_, _ = sys.Stat(p, node, path)
				case trace.OpSync:
					sys.Sync(p, node, path)
				default:
					continue
				}
				totalIO += int64(p.Now() - t0)
				res.Ops++
			}
		})
	}
	res.Runtime = e.Run()
	if n := len(scripts); n > 0 {
		res.IOTime = time.Duration(totalIO / int64(len(scripts)))
	}
	return res, nil
}

// buildScripts extracts each rank's primary-level I/O sequence.
func buildScripts(tr *trace.Trace) (map[int][]rankOp, error) {
	// Primary level per (app, file): the highest abstraction that touched
	// the file, mirroring the analyzer's dedup rule.
	type afKey struct{ app, file int32 }
	primary := map[afKey]trace.Level{}
	for i := range tr.Events {
		ev := &tr.Events[i]
		if !ev.Op.IsIO() {
			continue
		}
		k := afKey{ev.App, ev.File}
		cur, ok := primary[k]
		if !ok || ev.Level < cur {
			primary[k] = ev.Level
		}
	}
	written := map[int32]bool{}
	scripts := map[int][]rankOp{}
	for i := range tr.Events {
		ev := &tr.Events[i]
		if !ev.Op.IsIO() || ev.File < 0 {
			continue
		}
		if primary[afKey{ev.App, ev.File}] != ev.Level {
			continue
		}
		op := rankOp{
			op: ev.Op, file: ev.File, offset: ev.Offset, size: ev.Size,
			start: ev.Start,
		}
		if ev.Op == trace.OpOpen && !written[ev.File] {
			// The first open of a file that the job itself writes creates
			// it; opens of pre-existing inputs do not.
			if firstAccessIsWrite(tr, ev.File) {
				op.created = true
				written[ev.File] = true
			}
		}
		scripts[int(ev.Rank)] = append(scripts[int(ev.Rank)], op)
	}
	for rank := range scripts {
		ops := scripts[rank]
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].start < ops[j].start })
	}
	return scripts, nil
}

// firstAccessIsWrite reports whether the file's first data op is a write
// (job-created) rather than a read (pre-existing input).
func firstAccessIsWrite(tr *trace.Trace, file int32) bool {
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.File != file || !ev.Op.IsData() {
			continue
		}
		return ev.Op == trace.OpWrite
	}
	return false
}

// stageInputs materializes every file whose first access is a read, plus
// the final sizes of all files, so replayed reads always have backing
// bytes regardless of op interleaving across ranks.
func stageInputs(tr *trace.Trace, sys *storage.System, scripts map[int][]rankOp) {
	ranksPerNode := tr.Meta.Ranks / tr.Meta.Nodes
	if ranksPerNode == 0 {
		ranksPerNode = 1
	}
	seen := map[int32]bool{}
	for rank, ops := range scripts {
		node := rank / ranksPerNode
		if node >= tr.Meta.Nodes {
			node = tr.Meta.Nodes - 1
		}
		for _, op := range ops {
			if seen[op.file] {
				continue
			}
			seen[op.file] = true
			info := tr.Files[op.file]
			// Node-local paths must exist on every node that touches them;
			// materialize per accessing node (cheap, idempotent).
			sys.Materialize(node, info.Path, info.Size)
		}
	}
	// Second pass: node-local files accessed from several nodes need
	// per-node copies.
	for rank, ops := range scripts {
		node := rank / ranksPerNode
		if node >= tr.Meta.Nodes {
			node = tr.Meta.Nodes - 1
		}
		for _, op := range ops {
			info := tr.Files[op.file]
			sys.Materialize(node, info.Path, info.Size)
		}
	}
}
