package replay

import (
	"fmt"
	"sort"
	"time"

	"vani/internal/storage"
	"vani/internal/trace"
)

// Candidate is one storage configuration under consideration, labeled for
// reporting.
type Candidate struct {
	Name   string
	Config storage.Config
}

// TrialResult is one candidate's replayed outcome.
type TrialResult struct {
	Candidate Candidate
	Runtime   time.Duration
	IOTime    time.Duration
}

// Tune replays the trace under every candidate and returns the results
// sorted fastest first — the automated configuration search the paper's
// self-configuring storage system would run with the characterization in
// hand.
func Tune(tr *trace.Trace, candidates []Candidate, opt Options) ([]TrialResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("replay: no candidates")
	}
	results := make([]TrialResult, 0, len(candidates))
	for _, cand := range candidates {
		o := opt
		o.Storage = cand.Config
		res, err := Run(tr, o)
		if err != nil {
			return nil, fmt.Errorf("replay: candidate %s: %w", cand.Name, err)
		}
		results = append(results, TrialResult{
			Candidate: cand,
			Runtime:   res.Runtime,
			IOTime:    res.IOTime,
		})
	}
	sort.SliceStable(results, func(i, j int) bool {
		return results[i].Runtime < results[j].Runtime
	})
	return results, nil
}

// StripeSweep builds candidates varying the PFS stripe size around a base
// configuration — the Lustre tuning example of Section IV-D3.
func StripeSweep(base storage.Config, sizes ...int64) []Candidate {
	var cands []Candidate
	for _, sz := range sizes {
		if sz <= 0 {
			continue
		}
		cfg := base
		cfg.PFSStripeSize = sz
		cands = append(cands, Candidate{
			Name:   fmt.Sprintf("stripe=%s", sizeLabel(sz)),
			Config: cfg,
		})
	}
	return cands
}

// CacheSweep builds candidates toggling the client cache and read-ahead.
func CacheSweep(base storage.Config) []Candidate {
	off := base
	off.CacheEnabled = false
	noRA := base
	noRA.ReadAhead = 0
	return []Candidate{
		{Name: "cache=on", Config: base},
		{Name: "cache=off", Config: off},
		{Name: "readahead=off", Config: noRA},
	}
}

func sizeLabel(b int64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
