package replay

import (
	"testing"
	"time"

	"vani/internal/storage"
	"vani/internal/trace"
	"vani/internal/workloads"
)

func captureTrace(t *testing.T, name string, scale float64) *trace.Trace {
	t.Helper()
	w, err := workloads.New(name)
	if err != nil {
		t.Fatal(err)
	}
	switch v := w.(type) {
	case *workloads.HACC:
		v.ComputeInit = 0
	case *workloads.CM1:
		v.ComputePerStep = 20 * time.Millisecond
	}
	spec := w.DefaultSpec()
	spec.Nodes = 4
	if spec.RanksPerNode > 8 {
		spec.RanksPerNode = 8
	}
	spec.Scale = scale
	res, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func lassenNoJitter() storage.Config {
	cfg := storage.Lassen()
	cfg.JitterFrac = 0
	return cfg
}

func TestReplayCompletesAndMovesBytes(t *testing.T) {
	tr := captureTrace(t, "hacc", 0.02)
	opt := DefaultOptions()
	opt.Storage = lassenNoJitter()
	res, err := Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Bytes == 0 {
		t.Fatalf("replay moved nothing: %+v", res)
	}
	if res.Runtime <= 0 || res.IOTime <= 0 {
		t.Fatalf("replay timing empty: %+v", res)
	}
	// Bytes replayed match the original posix traffic (read+write).
	var want int64
	for _, ev := range tr.Events {
		if ev.Level == trace.LevelPosix && ev.Op.IsData() {
			want += ev.Size
		}
	}
	if res.Bytes != want {
		t.Errorf("replayed %d bytes, trace had %d", res.Bytes, want)
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	tr := captureTrace(t, "hacc", 0.01)
	opt := DefaultOptions()
	a, err := Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime || a.Ops != b.Ops {
		t.Errorf("replays diverged: %v/%d vs %v/%d", a.Runtime, a.Ops, b.Runtime, b.Ops)
	}
}

func TestReplayThinkTimeToggle(t *testing.T) {
	tr := captureTrace(t, "cm1", 0.03)
	with := DefaultOptions()
	with.Storage = lassenNoJitter()
	without := with
	without.PreserveThinkTime = false
	a, err := Run(tr, with)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, without)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping CM1's compute gaps must shrink the replay dramatically.
	if b.Runtime*2 >= a.Runtime {
		t.Errorf("back-to-back replay (%v) not much faster than paced (%v)", b.Runtime, a.Runtime)
	}
}

func TestReplayDetectsBetterConfig(t *testing.T) {
	// A slower candidate PFS must replay slower; a faster one faster. The
	// replayer is only useful if it ranks configurations correctly.
	tr := captureTrace(t, "hacc", 0.02)
	opt := DefaultOptions()
	opt.PreserveThinkTime = false

	slow := lassenNoJitter()
	slow.PFSDataLatency = 10 * time.Millisecond
	fast := lassenNoJitter()
	fast.NodeNICBW = 0

	a, err := Run(tr, withStorage(opt, slow))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, withStorage(opt, lassenNoJitter()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(tr, withStorage(opt, fast))
	if err != nil {
		t.Fatal(err)
	}
	if !(a.Runtime > b.Runtime && b.Runtime > c.Runtime) {
		t.Errorf("replay ordering wrong: slow=%v base=%v fast=%v", a.Runtime, b.Runtime, c.Runtime)
	}
}

func TestReplayRejectsEmptyMeta(t *testing.T) {
	if _, err := Run(&trace.Trace{}, DefaultOptions()); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestTuneRanksCandidates(t *testing.T) {
	tr := captureTrace(t, "hacc", 0.02)
	base := lassenNoJitter()
	base.CacheEnabled = false // expose the PFS path the candidates vary
	base.NodeNICBW = 0        // otherwise the client NIC floor hides it
	opt := DefaultOptions()
	opt.PreserveThinkTime = false

	slow := base
	slow.PFSDataLatency = 5 * time.Millisecond
	cands := []Candidate{
		{Name: "slow", Config: slow},
		{Name: "base", Config: base},
	}
	results, err := Tune(tr, cands, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Candidate.Name != "base" {
		t.Errorf("fastest candidate = %s, want base", results[0].Candidate.Name)
	}
	if results[0].Runtime > results[1].Runtime {
		t.Error("results not sorted fastest first")
	}
}

func TestTuneStripeSweepFindsMatchingStripe(t *testing.T) {
	// HACC writes 16MB transfers. On a server-constrained PFS (16
	// servers, no client cache), a 64KB stripe turns every transfer into
	// 256 queued RPCs per server while a 16MB stripe issues one — the
	// Lustre "match the stripe to the transfer" guidance of Section
	// IV-D3. The sweep must not pick the smallest stripe.
	tr := captureTrace(t, "hacc", 0.02)
	base := lassenNoJitter()
	base.CacheEnabled = false
	base.NodeNICBW = 0
	base.PFSServers = 16
	cands := StripeSweep(base, 64<<10, 1<<20, 16<<20)
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	opt := DefaultOptions()
	opt.PreserveThinkTime = false
	results, err := Tune(tr, cands, opt)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Candidate.Name == "stripe=64KB" {
		t.Errorf("sweep picked the smallest stripe for 16MB transfers: %+v", results)
	}
}

func TestCacheSweepShape(t *testing.T) {
	cands := CacheSweep(lassenNoJitter())
	if len(cands) != 3 {
		t.Fatalf("cache sweep candidates = %d", len(cands))
	}
	if cands[1].Config.CacheEnabled {
		t.Error("cache=off candidate has cache on")
	}
	if cands[2].Config.ReadAhead != 0 {
		t.Error("readahead=off candidate has read-ahead")
	}
}

func TestTuneEmptyCandidates(t *testing.T) {
	tr := captureTrace(t, "hacc", 0.01)
	if _, err := Tune(tr, nil, DefaultOptions()); err == nil {
		t.Error("empty candidate list accepted")
	}
}

func withStorage(opt Options, cfg storage.Config) Options {
	opt.Storage = cfg
	return opt
}
