// Package cliutil holds flag plumbing shared by the command-line tools:
// the -window/-ranks/-levels/-ops quartet that compiles into a
// trace.Filter for scan-plan pushdown.
package cliutil

import (
	"flag"
	"fmt"

	"vani/internal/trace"
)

// FilterFlags registers the scan-filter flags on fs and remembers their
// values until Filter is called after flag parsing.
type FilterFlags struct {
	window *string
	ranks  *string
	levels *string
	ops    *string
}

// RegisterFilterFlags adds -window, -ranks, -levels and -ops to fs
// (flag.CommandLine when nil).
func RegisterFilterFlags(fs *flag.FlagSet) *FilterFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &FilterFlags{
		window: fs.String("window", "", "restrict to events starting in this window, \"from:to\" durations (e.g. 2s:10s; either side may be empty)"),
		ranks:  fs.String("ranks", "", "restrict to these ranks, e.g. \"0,3,8-15\""),
		levels: fs.String("levels", "", "restrict to these layers: app, middleware, posix, compute"),
		ops:    fs.String("ops", "all", "restrict to an operation class: data, meta, io or all"),
	}
}

// Filter compiles the parsed flag values into a trace.Filter. Call after
// fs.Parse.
func (ff *FilterFlags) Filter() (trace.Filter, error) {
	var f trace.Filter
	var err error
	if f.From, f.To, err = trace.ParseWindow(*ff.window); err != nil {
		return trace.Filter{}, fmt.Errorf("-window: %w", err)
	}
	if f.Ranks, err = trace.ParseRanks(*ff.ranks); err != nil {
		return trace.Filter{}, fmt.Errorf("-ranks: %w", err)
	}
	if f.Levels, err = trace.ParseLevels(*ff.levels); err != nil {
		return trace.Filter{}, fmt.Errorf("-levels: %w", err)
	}
	if f.Ops, err = trace.ParseOpClass(*ff.ops); err != nil {
		return trace.Filter{}, fmt.Errorf("-ops: %w", err)
	}
	return f, nil
}
