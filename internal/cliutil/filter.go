// Package cliutil holds flag plumbing shared by the command-line tools:
// the -window/-ranks/-levels/-ops quartet that compiles into a
// trace.Filter for scan-plan pushdown.
package cliutil

import (
	"flag"
	"fmt"

	"vani/internal/trace"
)

// FilterFlags registers the scan-filter flags on fs and remembers their
// values until Filter is called after flag parsing.
type FilterFlags struct {
	window *string
	ranks  *string
	levels *string
	ops    *string
}

// RegisterFilterFlags adds -window, -ranks, -levels and -ops to fs
// (flag.CommandLine when nil).
func RegisterFilterFlags(fs *flag.FlagSet) *FilterFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &FilterFlags{
		window: fs.String("window", "", "restrict to events starting in this window, \"from:to\" durations (e.g. 2s:10s; either side may be empty)"),
		ranks:  fs.String("ranks", "", "restrict to these ranks, e.g. \"0,3,8-15\""),
		levels: fs.String("levels", "", "restrict to these layers: app, middleware, posix, compute"),
		ops:    fs.String("ops", "all", "restrict to an operation class: data, meta, io or all"),
	}
}

// Filter compiles the parsed flag values into a trace.Filter. Call after
// fs.Parse.
func (ff *FilterFlags) Filter() (trace.Filter, error) {
	return ParseFilter(*ff.window, *ff.ranks, *ff.levels, *ff.ops)
}

// ParseFilter compiles the window/ranks/levels/ops quartet into a
// trace.Filter. This is the single parsing path shared by the CLI flags and
// vanid's query parameters, so a spec means the same thing on both
// surfaces. Empty strings mean "no restriction" (for ops, same as "all").
func ParseFilter(window, ranks, levels, ops string) (trace.Filter, error) {
	var f trace.Filter
	var err error
	if f.From, f.To, err = trace.ParseWindow(window); err != nil {
		return trace.Filter{}, fmt.Errorf("window: %w", err)
	}
	if f.Ranks, err = trace.ParseRanks(ranks); err != nil {
		return trace.Filter{}, fmt.Errorf("ranks: %w", err)
	}
	if f.Levels, err = trace.ParseLevels(levels); err != nil {
		return trace.Filter{}, fmt.Errorf("levels: %w", err)
	}
	if f.Ops, err = trace.ParseOpClass(ops); err != nil {
		return trace.Filter{}, fmt.Errorf("ops: %w", err)
	}
	return f, nil
}
