package iface

import (
	"fmt"
	"math/bits"

	"vani/internal/sim"
	"vani/internal/trace"
)

// MPIFile is a file handle opened through the MPI-IO middleware. On top of
// the POSIX data path, MPI-IO charges collective-synchronization metadata:
// every open/close and every data operation issues extra metadata ops
// against the (shared, contended) PFS metadata service, scaling with the
// communicator size. This is the mechanism behind CosmoFlow's 98%
// metadata-time figure: many small shared files each paying collective
// sync costs on GPFS (Figure 3, Section V-A).
type MPIFile struct {
	c        *Client
	f        *PosixFile
	commSize int
}

// syncOps returns the number of extra metadata ops charged per open/close.
func (c *Client) syncOps(base, commSize int) int {
	n := base
	if c.opt.MPIIOCommScaling && commSize > 1 {
		n += bits.Len(uint(commSize - 1)) // + log2(commSize)
	}
	return n
}

// chargeSyncMeta issues n metadata stats against the file's storage target,
// recording them at the middleware level.
func (c *Client) chargeSyncMeta(p *sim.Proc, id int32, path string, n int) {
	for i := 0; i < n; i++ {
		start := p.Now()
		// Collective sync manifests as small metadata transactions; stat is
		// the closest primitive and costs one metadata-server visit.
		_, _ = c.sys.Stat(p, int(c.node), path)
		c.emit(p, trace.LevelMiddleware, trace.LibMPIIO, trace.OpStat, id, 0, 0, start)
	}
}

// MPIOpen opens path through MPI-IO on a communicator of commSize ranks.
// Only the calling rank performs the POSIX open (ROMIO deferred-open
// style); the collective synchronization cost is charged explicitly.
func (c *Client) MPIOpen(p *sim.Proc, path string, create bool, commSize int) (*MPIFile, error) {
	if commSize <= 0 {
		return nil, fmt.Errorf("iface: MPI communicator size %d", commSize)
	}
	start := p.Now()
	f, err := c.PosixOpen(p, path, create)
	if err != nil {
		return nil, err
	}
	c.chargeSyncMeta(p, f.id, path, c.syncOps(c.opt.MPIIOSyncMetaPerOpen, commSize))
	c.emit(p, trace.LevelMiddleware, trace.LibMPIIO, trace.OpOpen, f.id, 0, 0, start)
	return &MPIFile{c: c, f: f, commSize: commSize}, nil
}

// Path returns the file path.
func (m *MPIFile) Path() string { return m.f.path }

// ReadAt performs an independent-style read at an explicit offset, plus the
// per-op collective sync metadata.
func (m *MPIFile) ReadAt(p *sim.Proc, off, size int64) error {
	start := p.Now()
	m.c.chargeSyncMeta(p, m.f.id, m.f.path, m.c.opt.MPIIOSyncMetaPerData)
	if err := m.f.ReadAt(p, off, size, false); err != nil {
		return err
	}
	m.c.emit(p, trace.LevelMiddleware, trace.LibMPIIO, trace.OpRead, m.f.id, off, size, start)
	return nil
}

// WriteAt performs a write at an explicit offset, plus the per-op
// collective sync metadata.
func (m *MPIFile) WriteAt(p *sim.Proc, off, size int64) error {
	start := p.Now()
	m.c.chargeSyncMeta(p, m.f.id, m.f.path, m.c.opt.MPIIOSyncMetaPerData)
	if err := m.f.WriteAt(p, off, size, false); err != nil {
		return err
	}
	m.c.emit(p, trace.LevelMiddleware, trace.LibMPIIO, trace.OpWrite, m.f.id, off, size, start)
	return nil
}

// Close closes the handle with collective sync.
func (m *MPIFile) Close(p *sim.Proc) error {
	start := p.Now()
	m.c.chargeSyncMeta(p, m.f.id, m.f.path, m.c.syncOps(m.c.opt.MPIIOSyncMetaPerOpen, m.commSize))
	if err := m.f.Close(p); err != nil {
		return err
	}
	m.c.emit(p, trace.LevelMiddleware, trace.LibMPIIO, trace.OpClose, m.f.id, 0, 0, start)
	return nil
}

// H5File is an HDF5 file handle. The HDF5 layer sits on MPI-IO (the
// paper's CosmoFlow configuration) and adds dataset metadata traffic: with
// unchunked datasets ("the file is represented as one big chunk of 1D
// bytes"), every dataset access re-touches file metadata, multiplying
// metadata operations by HDF5MetaPerAccess; chunked layouts pay one.
type H5File struct {
	c  *Client
	m  *MPIFile
	id int32
}

// H5Open opens an HDF5 file: an MPI-IO open plus a superblock read.
func (c *Client) H5Open(p *sim.Proc, path string, create bool, commSize int) (*H5File, error) {
	start := p.Now()
	m, err := c.MPIOpen(p, path, create, commSize)
	if err != nil {
		return nil, err
	}
	h := &H5File{c: c, m: m, id: m.f.id}
	if !create {
		// Superblock + object header read.
		if err := m.f.ReadAt(p, 0, c.opt.HDF5SuperblockSize, false); err != nil {
			return nil, err
		}
	}
	c.emit(p, trace.LevelApp, trace.LibHDF5, trace.OpOpen, h.id, 0, 0, start)
	return h, nil
}

// Path returns the file path.
func (h *H5File) Path() string { return h.m.f.path }

// datasetMeta charges the per-access metadata lookups of the dataset
// B-tree/heap, at the app level.
func (h *H5File) datasetMeta(p *sim.Proc) {
	n := h.c.opt.HDF5MetaPerAccess
	if h.c.opt.HDF5Chunked {
		n = 1
	}
	for i := 0; i < n; i++ {
		start := p.Now()
		_, _ = h.c.sys.Stat(p, int(h.c.node), h.m.f.path)
		h.c.emit(p, trace.LevelApp, trace.LibHDF5, trace.OpStat, h.id, 0, 0, start)
	}
}

// DatasetRead reads size bytes of a dataset at off, paying dataset
// metadata then the MPI-IO read.
func (h *H5File) DatasetRead(p *sim.Proc, off, size int64) error {
	start := p.Now()
	h.datasetMeta(p)
	if err := h.m.ReadAt(p, off, size); err != nil {
		return err
	}
	h.c.emit(p, trace.LevelApp, trace.LibHDF5, trace.OpRead, h.id, off, size, start)
	return nil
}

// DatasetWrite writes size bytes of a dataset at off.
func (h *H5File) DatasetWrite(p *sim.Proc, off, size int64) error {
	start := p.Now()
	h.datasetMeta(p)
	if err := h.m.WriteAt(p, off, size); err != nil {
		return err
	}
	h.c.emit(p, trace.LevelApp, trace.LibHDF5, trace.OpWrite, h.id, off, size, start)
	return nil
}

// Close closes the HDF5 file.
func (h *H5File) Close(p *sim.Proc) error {
	start := p.Now()
	if err := h.m.Close(p); err != nil {
		return err
	}
	h.c.emit(p, trace.LevelApp, trace.LibHDF5, trace.OpClose, h.id, 0, 0, start)
	return nil
}
