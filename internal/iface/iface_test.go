package iface

import (
	"testing"
	"time"

	"vani/internal/sim"
	"vani/internal/storage"
	"vani/internal/trace"
)

func testSetup() (*sim.Engine, *storage.System, *trace.Tracer) {
	e := sim.NewEngine()
	cfg := storage.Lassen()
	cfg.JitterFrac = 0
	cfg.CacheEnabled = false
	sys := storage.New(e, cfg, 4, sim.NewRNG(1))
	return e, sys, trace.NewTracer()
}

func countOps(tr *trace.Trace, lv trace.Level, op trace.Op) int {
	n := 0
	for _, ev := range tr.Events {
		if ev.Level == lv && ev.Op == op {
			n++
		}
	}
	return n
}

func TestPosixReadAtCursorPastEOFFails(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		f, err := c.PosixOpen(p, "/p/gpfs1/f", true)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		f.Write(p, 4096)
		// Cursor is now at EOF; a cursor read must fail rather than fabricate data.
		if err := f.Read(p, 4096); err == nil {
			t.Error("read at EOF succeeded")
		}
	})
	e.Run()
	_ = tr
}

func TestPosixCursorSemantics(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		f, _ := c.PosixOpen(p, "/p/gpfs1/f", true)
		if err := f.Write(p, 1000); err != nil {
			t.Errorf("write: %v", err)
		}
		if f.Offset() != 1000 {
			t.Errorf("offset after write = %d", f.Offset())
		}
		if err := f.Seek(p, 0); err != nil {
			t.Errorf("seek: %v", err)
		}
		if err := f.Read(p, 1000); err != nil {
			t.Errorf("read: %v", err)
		}
		if f.Offset() != 1000 {
			t.Errorf("offset after read = %d", f.Offset())
		}
		if err := f.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := f.Close(p); err == nil {
			t.Error("double close succeeded")
		}
		if err := f.Read(p, 1); err == nil {
			t.Error("read after close succeeded")
		}
	})
	e.Run()
	out := tr.Finish()
	if countOps(out, trace.LevelPosix, trace.OpWrite) != 1 ||
		countOps(out, trace.LevelPosix, trace.OpRead) != 1 ||
		countOps(out, trace.LevelPosix, trace.OpSeek) != 1 ||
		countOps(out, trace.LevelPosix, trace.OpOpen) != 1 ||
		countOps(out, trace.LevelPosix, trace.OpClose) != 1 {
		t.Errorf("unexpected posix event counts")
	}
}

func TestPosixEventTimesSpanOps(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		f, _ := c.PosixOpen(p, "/p/gpfs1/f", true)
		f.Write(p, 16*storage.MiB)
	})
	e.Run()
	out := tr.Finish()
	for _, ev := range out.Events {
		if ev.End < ev.Start {
			t.Fatalf("event ends before it starts: %+v", ev)
		}
	}
	w := out.Events[len(out.Events)-1]
	if w.Op != trace.OpWrite || w.Duration() <= 0 {
		t.Errorf("write span wrong: %+v", w)
	}
}

func TestStdioBufferingAggregatesWrites(t *testing.T) {
	e, sys, tr := testSetup()
	opt := Defaults()
	opt.StdioBufSize = 64 * storage.KiB
	c := NewClient(sys, tr, opt, "montage", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		s, err := c.StdioOpen(p, "/p/gpfs1/out.tbl", 'w')
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		// 64 writes of 4KB = 256KB total = 4 buffer flushes.
		for i := 0; i < 64; i++ {
			if err := s.Write(p, 4*storage.KiB); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		s.Close(p)
	})
	e.Run()
	out := tr.Finish()
	if n := countOps(out, trace.LevelMiddleware, trace.OpWrite); n != 64 {
		t.Errorf("middleware writes = %d, want 64", n)
	}
	if n := countOps(out, trace.LevelPosix, trace.OpWrite); n != 4 {
		t.Errorf("posix writes = %d, want 4 (buffered aggregation)", n)
	}
	// POSIX transfers are buffer-sized.
	for _, ev := range out.Events {
		if ev.Level == trace.LevelPosix && ev.Op == trace.OpWrite && ev.Size != 64*storage.KiB {
			t.Errorf("posix write size = %d, want 64KiB", ev.Size)
		}
	}
}

func TestStdioCloseFlushesPartialBuffer(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		s, _ := c.StdioOpen(p, "/p/gpfs1/x", 'w')
		s.Write(p, 1000) // less than one buffer
		s.Close(p)
		if sz, _ := sys.FileSize(0, "/p/gpfs1/x"); sz != 1000 {
			t.Errorf("file size = %d, want 1000 after flush-on-close", sz)
		}
	})
	e.Run()
}

func TestStdioReadBufferServesSmallReads(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "jag", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		w, _ := c.StdioOpen(p, "/p/gpfs1/data.npy", 'w')
		w.Write(p, 256*storage.KiB)
		w.Close(p)
		r, err := c.StdioOpen(p, "/p/gpfs1/data.npy", 'r')
		if err != nil {
			t.Errorf("open for read: %v", err)
			return
		}
		for i := 0; i < 64; i++ { // 64 x 4KB sequential reads
			if err := r.Read(p, 4*storage.KiB); err != nil {
				t.Errorf("read %d: %v", i, err)
			}
		}
		r.Close(p)
	})
	e.Run()
	out := tr.Finish()
	if n := countOps(out, trace.LevelMiddleware, trace.OpRead); n != 64 {
		t.Errorf("middleware reads = %d, want 64", n)
	}
	if n := countOps(out, trace.LevelPosix, trace.OpRead); n != 4 {
		t.Errorf("posix reads = %d, want 4 (64KiB buffer fills)", n)
	}
}

func TestStdioReadPastEOFFails(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		w, _ := c.StdioOpen(p, "/p/gpfs1/small", 'w')
		w.Write(p, 100)
		w.Close(p)
		r, _ := c.StdioOpen(p, "/p/gpfs1/small", 'r')
		if err := r.Read(p, 200); err == nil {
			t.Error("read past EOF succeeded")
		}
	})
	e.Run()
}

func TestStdioModeEnforcement(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		w, _ := c.StdioOpen(p, "/p/gpfs1/f", 'w')
		if err := w.Read(p, 1); err == nil {
			t.Error("read from write stream succeeded")
		}
		w.Write(p, 10)
		w.Close(p)
		r, _ := c.StdioOpen(p, "/p/gpfs1/f", 'r')
		if err := r.Write(p, 1); err == nil {
			t.Error("write to read stream succeeded")
		}
		if _, err := c.StdioOpen(p, "/p/gpfs1/f", 'x'); err == nil {
			t.Error("bogus mode accepted")
		}
	})
	e.Run()
}

func TestStdioSeekBreaksBuffering(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "jag", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		w, _ := c.StdioOpen(p, "/p/gpfs1/samples", 'w')
		w.Write(p, storage.MiB)
		w.Close(p)
		r, _ := c.StdioOpen(p, "/p/gpfs1/samples", 'r')
		// Strided backwards access defeats the read buffer: each seek+read
		// pays a POSIX read.
		offs := []int64{900000, 100, 500000, 200000, 700000}
		for _, o := range offs {
			if err := r.Seek(p, o); err != nil {
				t.Errorf("seek: %v", err)
			}
			if err := r.Read(p, 2*storage.KiB); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		r.Close(p)
	})
	e.Run()
	out := tr.Finish()
	if n := countOps(out, trace.LevelPosix, trace.OpRead); n != len([]int64{900000, 100, 500000, 200000, 700000}) {
		t.Errorf("posix reads = %d, want one per strided access", n)
	}
	if n := countOps(out, trace.LevelPosix, trace.OpSeek); n == 0 {
		t.Error("seeks not traced at posix level")
	}
}

func TestMPIIOChargesSyncMetadata(t *testing.T) {
	e, sys, tr := testSetup()
	opt := Defaults()
	c := NewClient(sys, tr, opt, "cosmoflow", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		m, err := c.MPIOpen(p, "/p/gpfs1/s.h5", true, 128)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		m.WriteAt(p, 0, storage.MiB)
		m.ReadAt(p, 0, storage.MiB)
		m.Close(p)
	})
	e.Run()
	out := tr.Finish()
	// Open and close each charge base(2)+log2(128)=9 stats; data ops 1 each.
	wantStats := 2*(2+7) + 2
	if n := countOps(out, trace.LevelMiddleware, trace.OpStat); n != wantStats {
		t.Errorf("middleware sync stats = %d, want %d", n, wantStats)
	}
}

func TestMPIIOCommScalingOff(t *testing.T) {
	e, sys, tr := testSetup()
	opt := Defaults()
	opt.MPIIOCommScaling = false
	c := NewClient(sys, tr, opt, "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		m, _ := c.MPIOpen(p, "/p/gpfs1/f", true, 1024)
		m.Close(p)
	})
	e.Run()
	out := tr.Finish()
	if n := countOps(out, trace.LevelMiddleware, trace.OpStat); n != 2*2 {
		t.Errorf("sync stats = %d, want 4 without comm scaling", n)
	}
}

func TestMPIOpenRejectsBadComm(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		if _, err := c.MPIOpen(p, "/p/gpfs1/f", true, 0); err == nil {
			t.Error("comm size 0 accepted")
		}
	})
	e.Run()
}

func TestHDF5UnchunkedMetadataAmplification(t *testing.T) {
	e, sys, tr := testSetup()
	opt := Defaults() // unchunked, 4 meta per access
	c := NewClient(sys, tr, opt, "cosmoflow", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		h, err := c.H5Open(p, "/p/gpfs1/u.h5", true, 4)
		if err != nil {
			t.Errorf("h5 open: %v", err)
			return
		}
		h.DatasetWrite(p, 0, 32*storage.MiB)
		for i := int64(0); i < 8; i++ {
			if err := h.DatasetRead(p, i*4*storage.MiB, 4*storage.MiB); err != nil {
				t.Errorf("dataset read: %v", err)
			}
		}
		h.Close(p)
	})
	e.Run()
	out := tr.Finish()
	if n := countOps(out, trace.LevelApp, trace.OpStat); n != 9*4 {
		t.Errorf("app-level dataset meta = %d, want 36 (4 per access)", n)
	}
	if n := countOps(out, trace.LevelApp, trace.OpRead); n != 8 {
		t.Errorf("app-level reads = %d, want 8", n)
	}
}

func TestHDF5ChunkedReducesMetadata(t *testing.T) {
	count := func(chunked bool) int {
		e, sys, tr := testSetup()
		opt := Defaults()
		opt.HDF5Chunked = chunked
		c := NewClient(sys, tr, opt, "app", 0, 0)
		e.Spawn("p", func(p *sim.Proc) {
			h, _ := c.H5Open(p, "/p/gpfs1/f.h5", true, 4)
			for i := int64(0); i < 10; i++ {
				h.DatasetRead(p, 0, storage.KiB)
			}
			h.Close(p)
		})
		e.Run()
		return countOps(tr.Finish(), trace.LevelApp, trace.OpStat)
	}
	if c, u := count(true), count(false); c >= u {
		t.Errorf("chunked meta (%d) not less than unchunked (%d)", c, u)
	}
}

func TestHDF5OpenReadsSuperblock(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		h, _ := c.H5Open(p, "/p/gpfs1/f.h5", true, 4)
		h.DatasetWrite(p, 0, storage.MiB)
		h.Close(p)
		h2, err := c.H5Open(p, "/p/gpfs1/f.h5", false, 4)
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		h2.Close(p)
	})
	e.Run()
	out := tr.Finish()
	found := false
	for _, ev := range out.Events {
		if ev.Level == trace.LevelPosix && ev.Op == trace.OpRead && ev.Size == Defaults().HDF5SuperblockSize {
			found = true
		}
	}
	if !found {
		t.Error("no superblock-sized posix read on reopen")
	}
}

func TestComputeAndGPUSpans(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 3, 1)
	e.Spawn("p", func(p *sim.Proc) {
		c.Compute(p, 2*time.Second)
		c.GPUCompute(p, 3*time.Second)
	})
	end := e.Run()
	if end != 5*time.Second {
		t.Errorf("end = %v, want 5s", end)
	}
	out := tr.Finish()
	if countOps(out, trace.LevelCompute, trace.OpCompute) != 1 ||
		countOps(out, trace.LevelCompute, trace.OpGPUCompute) != 1 {
		t.Error("compute spans not traced")
	}
	for _, ev := range out.Events {
		if ev.Rank != 3 || ev.Node != 1 {
			t.Errorf("event rank/node = %d/%d, want 3/1", ev.Rank, ev.Node)
		}
		if ev.File != -1 {
			t.Errorf("compute event has file %d", ev.File)
		}
	}
}

func TestBarrierTraced(t *testing.T) {
	e, sys, tr := testSetup()
	b := sim.NewBarrier(e, 2)
	for r := 0; r < 2; r++ {
		c := NewClient(sys, tr, Defaults(), "app", r, 0)
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			p.Sleep(time.Duration(r) * time.Second)
			c.Barrier(p, b)
		})
	}
	e.Run()
	out := tr.Finish()
	if n := countOps(out, trace.LevelCompute, trace.OpBarrier); n != 2 {
		t.Errorf("barrier events = %d, want 2", n)
	}
}

func TestTracerOverheadChargedToRuntime(t *testing.T) {
	run := func(overhead time.Duration) time.Duration {
		e, sys, tr := testSetup()
		tr.SetOverhead(overhead)
		c := NewClient(sys, tr, Defaults(), "app", 0, 0)
		e.Spawn("p", func(p *sim.Proc) {
			f, _ := c.PosixOpen(p, "/p/gpfs1/f", true)
			for i := 0; i < 100; i++ {
				f.Write(p, 4*storage.KiB)
			}
			f.Close(p)
		})
		return e.Run()
	}
	if base, traced := run(0), run(100*time.Microsecond); traced <= base {
		t.Errorf("tracing overhead not charged: %v vs %v", traced, base)
	}
}

func TestDescribeFile(t *testing.T) {
	_, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	c.DescribeFile("/p/gpfs1/d.h5", "hdf5", 3, "int")
	out := tr.Finish()
	f := out.Files[0]
	if f.Format != "hdf5" || f.NDims != 3 || f.DataType != "int" || f.Target != "gpfs" {
		t.Errorf("file info = %+v", f)
	}
}

func TestCompressionShrinksStoredBytes(t *testing.T) {
	e, sys, tr := testSetup()
	opt := Defaults()
	opt.CompressionEnabled = true
	opt.CompressionRatio = 0.5
	c := NewClient(sys, tr, opt, "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		f, _ := c.PosixOpen(p, "/p/gpfs1/ckpt", true)
		for i := int64(0); i < 4; i++ {
			if err := f.WriteAt(p, i*storage.MiB, storage.MiB, false); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		if err := f.ReadAt(p, 0, storage.MiB, false); err != nil {
			t.Errorf("read back: %v", err)
		}
		f.Close(p)
	})
	e.Run()
	// The PFS stored half the logical bytes.
	if got := sys.Stats[storage.TargetPFS].BytesWritten; got != 2*storage.MiB {
		t.Errorf("stored %d bytes, want 2MiB (ratio 0.5)", got)
	}
	// The trace keeps the application's logical sizes.
	out := tr.Finish()
	for _, ev := range out.Events {
		if ev.Op == trace.OpWrite && ev.Size != storage.MiB {
			t.Errorf("traced write size %d, want logical 1MiB", ev.Size)
		}
	}
}

func TestCompressionChargesCPU(t *testing.T) {
	elapsed := func(enabled bool) time.Duration {
		e, sys, tr := testSetup()
		opt := Defaults()
		opt.CompressionEnabled = enabled
		opt.CompressionCPUBW = 256 * storage.MiB // slow compressor
		c := NewClient(sys, tr, opt, "app", 0, 0)
		e.Spawn("p", func(p *sim.Proc) {
			f, _ := c.PosixOpen(p, "/dev/shm/x", true) // fast target isolates CPU
			f.Write(p, 64*storage.MiB)
			f.Close(p)
		})
		return e.Run()
	}
	on, off := elapsed(true), elapsed(false)
	if on <= off {
		t.Errorf("compression CPU not charged: on=%v off=%v", on, off)
	}
}

func TestCompressionDisabledIsIdentity(t *testing.T) {
	e, sys, tr := testSetup()
	c := NewClient(sys, tr, Defaults(), "app", 0, 0)
	e.Spawn("p", func(p *sim.Proc) {
		f, _ := c.PosixOpen(p, "/p/gpfs1/f", true)
		f.Write(p, storage.MiB)
		f.Close(p)
	})
	e.Run()
	if got := sys.Stats[storage.TargetPFS].BytesWritten; got != storage.MiB {
		t.Errorf("stored %d, want full 1MiB", got)
	}
}
