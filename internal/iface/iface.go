// Package iface implements the I/O interface layers of the simulated
// storage stack: POSIX, STDIO (client-buffered), MPI-IO (with collective
// synchronization overheads), and HDF5 (with dataset metadata
// amplification).
//
// Each layer emits trace events at its own level, mirroring Recorder's
// multilevel capture: an application-level HDF5 read produces a LevelApp
// event, the MPI-IO traffic underneath produces LevelMiddleware events, and
// the data actually moved produces LevelPosix events. The behavioral
// signatures the paper attributes to each interface are modeled explicitly:
// STDIO's buffer turns tiny application accesses into page-sized POSIX
// transfers, MPI-IO adds synchronization metadata per operation that grows
// with the communicator, and unchunked HDF5 multiplies metadata accesses
// per dataset read (the CosmoFlow bottleneck of Figure 3).
package iface

import (
	"fmt"
	"time"

	"vani/internal/sim"
	"vani/internal/storage"
	"vani/internal/trace"
)

// Options are the tunables of the interface layers. The zero value is not
// meaningful; start from Defaults.
type Options struct {
	StdioBufSize int64 // client buffer per STDIO stream

	// StdioPerOpCPU is the client-side CPU cost charged inside every
	// STDIO read/write, modeling libc and application-runtime overhead
	// around each access. It is what makes JAG's NumPy sample loader slow
	// despite tiny transfer sizes (Figure 4's 167-second first phase).
	StdioPerOpCPU time.Duration

	MPIIOSyncMetaPerOpen int  // extra metadata ops per MPI-IO open/close
	MPIIOSyncMetaPerData int  // extra metadata ops per MPI-IO data op
	MPIIOCommScaling     bool // scale open sync with log2(comm size)

	HDF5Chunked        bool // chunked datasets amortize metadata
	HDF5MetaPerAccess  int  // metadata ops per dataset access when unchunked
	HDF5SuperblockSize int64

	NetworkBW int64 // bytes/sec node injection bandwidth (shuffle costs)

	// Transparent compression middleware (the HCompress-style adaptive
	// compression of Section IV-D5). When enabled, data passes through a
	// CPU compression stage and moves CompressionRatio of its logical
	// bytes to storage. The paper warns the benefit depends on the data
	// distribution — the advisor only enables it when the dataset's
	// distribution is compressible.
	CompressionEnabled bool
	CompressionRatio   float64 // stored/logical bytes, e.g. 0.5
	CompressionCPUBW   int64   // bytes/sec through the (de)compressor
}

// Defaults returns the option set used throughout the reproduction,
// matching the paper's storage stack (no HDF5 chunking, ROMIO-style
// collective sync, 64KiB stdio buffers, EDR InfiniBand).
func Defaults() Options {
	return Options{
		StdioBufSize:         64 * storage.KiB,
		CompressionRatio:     0.5,
		CompressionCPUBW:     2 * storage.GiB,
		MPIIOSyncMetaPerOpen: 2,
		MPIIOSyncMetaPerData: 1,
		MPIIOCommScaling:     true,
		HDF5Chunked:          false,
		HDF5MetaPerAccess:    4,
		HDF5SuperblockSize:   2 * storage.KiB,
		NetworkBW:            12 * storage.GiB, // ~100Gb/s EDR
	}
}

// Client is the per-rank entry point to all interface layers.
type Client struct {
	sys  *storage.System
	tr   *trace.Tracer
	opt  Options
	rank int32
	node int32
	app  int32
}

// NewClient builds the interface client for one rank of one application.
func NewClient(sys *storage.System, tr *trace.Tracer, opt Options, appName string, rank, node int) *Client {
	return &Client{
		sys:  sys,
		tr:   tr,
		opt:  opt,
		rank: int32(rank),
		node: int32(node),
		app:  tr.AppID(appName),
	}
}

// Rank returns the client's global rank.
func (c *Client) Rank() int { return int(c.rank) }

// Node returns the node hosting the client's rank.
func (c *Client) Node() int { return int(c.node) }

// emit records an event ending now and charges tracer overhead to p.
func (c *Client) emit(p *sim.Proc, lv trace.Level, lib trace.Lib, op trace.Op, file int32, off, size int64, start time.Duration) {
	ev := trace.Event{
		Level: lv, Op: op, Lib: lib, Rank: c.rank, Node: c.node, App: c.app,
		File: file, Offset: off, Size: size, Start: start, End: p.Now(),
	}
	if d := c.tr.Record(ev); d > 0 {
		p.Sleep(d)
	}
}

// fileID interns path and stamps its storage target without clobbering
// any dataset metadata attached by DescribeFile.
func (c *Client) fileID(path string) int32 {
	id := c.tr.FileID(path)
	c.tr.TouchFile(id, c.sys.Route(path).String())
	return id
}

// DescribeFile attaches dataset-format metadata (format, dimensionality,
// element type) to a path's trace record; workloads call it once per file
// kind so the Data entity tables can report format attributes.
func (c *Client) DescribeFile(path, format string, ndims int, dataType string) {
	id := c.tr.FileID(path)
	c.tr.SetFileInfo(id, trace.FileInfo{
		Target: c.sys.Route(path).String(), Format: format,
		NDims: ndims, DataType: dataType,
	})
}

// Compute records a CPU computation span of duration d.
func (c *Client) Compute(p *sim.Proc, d time.Duration) {
	start := p.Now()
	p.Sleep(d)
	c.emit(p, trace.LevelCompute, trace.LibNone, trace.OpCompute, -1, 0, 0, start)
}

// GPUCompute records a GPU computation span of duration d.
func (c *Client) GPUCompute(p *sim.Proc, d time.Duration) {
	start := p.Now()
	p.Sleep(d)
	c.emit(p, trace.LevelCompute, trace.LibNone, trace.OpGPUCompute, -1, 0, 0, start)
}

// Barrier waits on b and records the synchronization span.
func (c *Client) Barrier(p *sim.Proc, b *sim.Barrier) {
	start := p.Now()
	b.Wait(p)
	c.emit(p, trace.LevelCompute, trace.LibNone, trace.OpBarrier, -1, 0, 0, start)
}

// ---------------------------------------------------------------------------
// POSIX layer

// PosixFile is an open POSIX file descriptor with a seek cursor.
type PosixFile struct {
	c    *Client
	path string
	id   int32
	off  int64
	open bool
}

// PosixOpen opens (optionally creating) a file through the POSIX layer.
func (c *Client) PosixOpen(p *sim.Proc, path string, create bool) (*PosixFile, error) {
	id := c.fileID(path)
	start := p.Now()
	err := c.sys.Open(p, int(c.node), path, create)
	c.emit(p, trace.LevelPosix, trace.LibPosix, trace.OpOpen, id, 0, 0, start)
	if err != nil {
		return nil, err
	}
	// Record the size of pre-existing (read) files so dataset entities
	// see input data, not just what the job wrote.
	if sz, ok := c.sys.FileSize(int(c.node), path); ok {
		c.tr.ObserveFileSize(id, sz)
	}
	return &PosixFile{c: c, path: path, id: id, open: true}, nil
}

// PosixStat stats a path through the POSIX layer.
func (c *Client) PosixStat(p *sim.Proc, path string) (int64, error) {
	id := c.fileID(path)
	start := p.Now()
	sz, err := c.sys.Stat(p, int(c.node), path)
	c.emit(p, trace.LevelPosix, trace.LibPosix, trace.OpStat, id, 0, 0, start)
	return sz, err
}

// Path returns the file's path.
func (f *PosixFile) Path() string { return f.path }

// Offset returns the current cursor.
func (f *PosixFile) Offset() int64 { return f.off }

func (f *PosixFile) check() error {
	if !f.open {
		return fmt.Errorf("iface: %s used after close", f.path)
	}
	return nil
}

// Write writes size bytes at the cursor and advances it.
func (f *PosixFile) Write(p *sim.Proc, size int64) error {
	return f.WriteAt(p, f.off, size, true)
}

// WriteAt writes size bytes at off; advance moves the cursor past the
// write (pwrite semantics pass false). With compression middleware
// enabled, the logical bytes pass through the compressor's CPU stage and
// only the compressed bytes (at proportionally scaled offsets) reach
// storage; the traced event keeps the application's logical view.
func (f *PosixFile) WriteAt(p *sim.Proc, off, size int64, advance bool) error {
	if err := f.check(); err != nil {
		return err
	}
	start := p.Now()
	sOff, sSize := f.c.storedExtent(p, off, size)
	err := f.c.sys.Write(p, int(f.c.node), f.path, sOff, sSize)
	f.c.emit(p, trace.LevelPosix, trace.LibPosix, trace.OpWrite, f.id, off, size, start)
	if err != nil {
		return err
	}
	if advance {
		f.off = off + size
	}
	f.c.tr.ObserveFileSize(f.id, off+size)
	return nil
}

// storedExtent maps a logical extent to the stored extent, charging the
// compressor's CPU time when compression is on.
func (c *Client) storedExtent(p *sim.Proc, off, size int64) (int64, int64) {
	if !c.opt.CompressionEnabled {
		return off, size
	}
	r := c.opt.CompressionRatio
	if r <= 0 || r > 1 {
		r = 1
	}
	if c.opt.CompressionCPUBW > 0 {
		p.Sleep(time.Duration(float64(size) / float64(c.opt.CompressionCPUBW) * float64(time.Second)))
	}
	sSize := int64(float64(size) * r)
	if sSize < 1 {
		sSize = 1
	}
	return int64(float64(off) * r), sSize
}

// Read reads size bytes at the cursor and advances it.
func (f *PosixFile) Read(p *sim.Proc, size int64) error {
	return f.ReadAt(p, f.off, size, true)
}

// ReadAt reads size bytes at off (decompressing when the compression
// middleware is on).
func (f *PosixFile) ReadAt(p *sim.Proc, off, size int64, advance bool) error {
	if err := f.check(); err != nil {
		return err
	}
	start := p.Now()
	sOff, sSize := f.c.storedExtent(p, off, size)
	err := f.c.sys.Read(p, int(f.c.node), f.path, sOff, sSize)
	f.c.emit(p, trace.LevelPosix, trace.LibPosix, trace.OpRead, f.id, off, size, start)
	if err != nil {
		return err
	}
	if advance {
		f.off = off + size
	}
	return nil
}

// Seek moves the cursor, recording the (near-free) metadata op.
func (f *PosixFile) Seek(p *sim.Proc, off int64) error {
	if err := f.check(); err != nil {
		return err
	}
	start := p.Now()
	f.c.sys.Seek(p, int(f.c.node), f.path)
	f.c.emit(p, trace.LevelPosix, trace.LibPosix, trace.OpSeek, f.id, off, 0, start)
	f.off = off
	return nil
}

// Sync flushes the file, waiting for write-back drain.
func (f *PosixFile) Sync(p *sim.Proc) error {
	if err := f.check(); err != nil {
		return err
	}
	start := p.Now()
	f.c.sys.Sync(p, int(f.c.node), f.path)
	f.c.emit(p, trace.LevelPosix, trace.LibPosix, trace.OpSync, f.id, 0, 0, start)
	return nil
}

// Close closes the descriptor. Closing twice is an error.
func (f *PosixFile) Close(p *sim.Proc) error {
	if err := f.check(); err != nil {
		return err
	}
	start := p.Now()
	f.c.sys.Close(p, int(f.c.node), f.path)
	f.c.emit(p, trace.LevelPosix, trace.LibPosix, trace.OpClose, f.id, 0, 0, start)
	f.open = false
	return nil
}
