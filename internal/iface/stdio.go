package iface

import (
	"fmt"

	"vani/internal/sim"
	"vani/internal/trace"
)

// StdioFile is a client-buffered stream (fopen/fread/fwrite semantics).
// Application-level accesses of any size are recorded at LevelMiddleware;
// the buffer turns them into StdioBufSize-granularity POSIX transfers, which
// is why Montage's <4KB application accesses appear as 64KB transfers at
// the storage system (Figure 5a) and why the paper's Middleware entity
// (Table VII) reports the post-buffering granularity.
type StdioFile struct {
	c    *Client
	f    *PosixFile
	mode byte // 'r' or 'w'

	// Write buffering.
	buffered int64

	// Read buffering: [bufStart, bufEnd) of the file is in the buffer.
	bufStart, bufEnd int64

	pos int64 // application-visible cursor
}

// StdioOpen opens a buffered stream. mode is 'r' (read) or 'w' (write,
// creating/truncating the file).
func (c *Client) StdioOpen(p *sim.Proc, path string, mode byte) (*StdioFile, error) {
	if mode != 'r' && mode != 'w' {
		return nil, fmt.Errorf("iface: stdio mode %q not supported", mode)
	}
	if c.opt.StdioBufSize <= 0 {
		return nil, fmt.Errorf("iface: stdio buffer size %d", c.opt.StdioBufSize)
	}
	start := p.Now()
	f, err := c.PosixOpen(p, path, mode == 'w')
	if err != nil {
		return nil, err
	}
	c.emit(p, trace.LevelMiddleware, trace.LibStdio, trace.OpOpen, f.id, 0, 0, start)
	return &StdioFile{c: c, f: f, mode: mode}, nil
}

// Path returns the stream's file path.
func (s *StdioFile) Path() string { return s.f.path }

// Pos returns the application-visible cursor.
func (s *StdioFile) Pos() int64 { return s.pos }

// Write appends size bytes at the cursor through the buffer. A full buffer
// flushes as one POSIX write.
func (s *StdioFile) Write(p *sim.Proc, size int64) error {
	if s.mode != 'w' {
		return fmt.Errorf("iface: write to read-mode stream %s", s.f.path)
	}
	start := p.Now()
	if s.c.opt.StdioPerOpCPU > 0 {
		p.Sleep(s.c.opt.StdioPerOpCPU)
	}
	remaining := size
	for remaining > 0 {
		room := s.c.opt.StdioBufSize - s.buffered
		n := remaining
		if n > room {
			n = room
		}
		s.buffered += n
		remaining -= n
		if s.buffered == s.c.opt.StdioBufSize {
			if err := s.flush(p); err != nil {
				return err
			}
		}
	}
	s.c.emit(p, trace.LevelMiddleware, trace.LibStdio, trace.OpWrite, s.f.id, s.pos, size, start)
	s.pos += size
	return nil
}

// flush writes the buffered bytes as one POSIX write.
func (s *StdioFile) flush(p *sim.Proc) error {
	if s.buffered == 0 {
		return nil
	}
	n := s.buffered
	s.buffered = 0
	return s.f.Write(p, n)
}

// Read consumes size bytes at the cursor. Misses fill the buffer with one
// POSIX read of up to the buffer size.
func (s *StdioFile) Read(p *sim.Proc, size int64) error {
	if s.mode != 'r' {
		return fmt.Errorf("iface: read from write-mode stream %s", s.f.path)
	}
	fileSize, ok := s.c.sys.FileSize(int(s.c.node), s.f.path)
	if !ok {
		return fmt.Errorf("iface: stdio read: %s vanished", s.f.path)
	}
	if s.pos+size > fileSize {
		return fmt.Errorf("iface: stdio read past EOF on %s: %d+%d > %d",
			s.f.path, s.pos, size, fileSize)
	}
	start := p.Now()
	if s.c.opt.StdioPerOpCPU > 0 {
		p.Sleep(s.c.opt.StdioPerOpCPU)
	}
	remaining := size
	for remaining > 0 {
		if s.pos >= s.bufStart && s.pos < s.bufEnd {
			n := s.bufEnd - s.pos
			if n > remaining {
				n = remaining
			}
			s.pos += n
			remaining -= n
			continue
		}
		// Miss: fill the buffer starting at the cursor.
		fill := s.c.opt.StdioBufSize
		if s.pos+fill > fileSize {
			fill = fileSize - s.pos
		}
		if err := s.f.ReadAt(p, s.pos, fill, false); err != nil {
			return err
		}
		s.bufStart, s.bufEnd = s.pos, s.pos+fill
	}
	s.c.emit(p, trace.LevelMiddleware, trace.LibStdio, trace.OpRead, s.f.id, start2Off(s.pos, size), size, start)
	return nil
}

// start2Off recovers the offset a read started at from the final cursor.
func start2Off(pos, size int64) int64 { return pos - size }

// Seek repositions the cursor. Write buffers flush first; read buffers stay
// valid only if the target is inside them.
func (s *StdioFile) Seek(p *sim.Proc, off int64) error {
	start := p.Now()
	if s.mode == 'w' {
		if err := s.flush(p); err != nil {
			return err
		}
	}
	if err := s.f.Seek(p, off); err != nil {
		return err
	}
	s.pos = off
	if off < s.bufStart || off >= s.bufEnd {
		s.bufStart, s.bufEnd = 0, 0 // invalidate read buffer
	}
	s.c.emit(p, trace.LevelMiddleware, trace.LibStdio, trace.OpSeek, s.f.id, off, 0, start)
	return nil
}

// Close flushes and closes the stream.
func (s *StdioFile) Close(p *sim.Proc) error {
	start := p.Now()
	if s.mode == 'w' {
		if err := s.flush(p); err != nil {
			return err
		}
	}
	if err := s.f.Close(p); err != nil {
		return err
	}
	s.c.emit(p, trace.LevelMiddleware, trace.LibStdio, trace.OpClose, s.f.id, 0, 0, start)
	return nil
}
