package darshan

import (
	"testing"
	"time"

	"vani/internal/core"
	"vani/internal/trace"
	"vani/internal/workloads"
)

func haccTrace(t *testing.T) *trace.Trace {
	t.Helper()
	w := workloads.NewHACC()
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.RanksPerNode = 8
	spec.Scale = 0.02
	res, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func jagTrace(t *testing.T) *trace.Trace {
	t.Helper()
	w := workloads.NewJAG()
	w.Epochs = 3
	w.ComputePerEpoch = 3 * time.Second
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.Scale = 0.02
	res, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestCountersMatchTrace(t *testing.T) {
	tr := haccTrace(t)
	p := FromTrace(tr)
	s := p.Summarize()

	var wantRead, wantWritten int64
	var wantData int64
	for _, ev := range tr.Events {
		if ev.Level != trace.LevelPosix {
			continue
		}
		switch ev.Op {
		case trace.OpRead:
			wantRead += ev.Size
			wantData++
		case trace.OpWrite:
			wantWritten += ev.Size
			wantData++
		}
	}
	if s.BytesRead != wantRead || s.BytesWritten != wantWritten {
		t.Errorf("bytes = %d/%d, want %d/%d", s.BytesRead, s.BytesWritten, wantRead, wantWritten)
	}
	if s.DataOps != wantData {
		t.Errorf("data ops = %d, want %d", s.DataOps, wantData)
	}
	if s.FilesUsed != 32 || s.FPPFiles != 32 || s.SharedFiles != 0 {
		t.Errorf("file split = %d (%d/%d), want 32 FPP", s.FilesUsed, s.FPPFiles, s.SharedFiles)
	}
	if s.SeqFraction < 0.9 {
		t.Errorf("seq fraction = %v, want sequential", s.SeqFraction)
	}
}

func TestRecordsArePerRankFile(t *testing.T) {
	p := FromTrace(haccTrace(t))
	if len(p.Records) != 32 { // 32 ranks x 1 file each
		t.Fatalf("records = %d, want 32", len(p.Records))
	}
	for i := 1; i < len(p.Records); i++ {
		if p.Records[i].Rank < p.Records[i-1].Rank {
			t.Fatal("records not sorted by rank")
		}
	}
	r := p.Records[0]
	if r.Opens == 0 || r.Closes == 0 || r.Reads == 0 || r.Writes == 0 {
		t.Errorf("record missing counters: %+v", r)
	}
	if r.MaxWriteSize != 16<<20 {
		t.Errorf("max write = %d, want 16MB", r.MaxWriteSize)
	}
	if r.LastAccess <= r.FirstAccess {
		t.Error("access span empty")
	}
}

// TestAggregationLosesPhases demonstrates the paper's Section III-A2
// argument: JAG has two clearly separated I/O phases (initial load and
// end-of-job validation), which the trace-based analyzer finds, but the
// aggregate profile can only report one undifferentiated first-to-last
// span covering the whole job.
func TestAggregationLosesPhases(t *testing.T) {
	tr := jagTrace(t)
	c := core.Analyze(tr, core.DefaultOptions())
	if len(c.Phases) < 2 {
		t.Fatalf("trace analyzer found %d phases, want >= 2", len(c.Phases))
	}
	var phaseTotal time.Duration
	for _, ph := range c.Phases {
		phaseTotal += ph.Runtime
	}
	s := FromTrace(tr).Summarize()
	// The counter span covers compute gaps too: it must be far larger
	// than the actual I/O bursts, which is exactly why it cannot stand in
	// for phase analysis.
	if s.JobIOSpan < 2*phaseTotal {
		t.Errorf("counter span %v vs real burst time %v: expected span to blur phases",
			s.JobIOSpan, phaseTotal)
	}
}

// TestAggregationLosesDependencies: the trace recovers producer/consumer
// app edges for a workflow; the profile has no ordering to do so.
func TestAggregationLosesDependencies(t *testing.T) {
	w := workloads.NewMontageMPI()
	spec := w.DefaultSpec()
	spec.Nodes = 4
	spec.RanksPerNode = 8
	spec.Scale = 0.1
	res, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	c := core.Analyze(res.Trace, core.DefaultOptions())
	if len(c.Workflow.AppDeps) == 0 {
		t.Fatal("trace analyzer found no app dependencies")
	}
	// The profile's records carry no application attribution at all —
	// Darshan aggregates per (rank, file), so two apps touching the same
	// file from the same rank are indistinguishable.
	p := FromTrace(res.Trace)
	if len(p.Records) == 0 {
		t.Fatal("empty profile")
	}
}

func TestDerivableMatrix(t *testing.T) {
	yes := []string{
		"workflow.io_amount", "workflow.io_ops_dist", "highlevel.granularity",
		"highlevel.access_pattern", "workflow.fpp_shared_files",
	}
	no := []string{
		"phase.frequency", "workflow.app_data_dependency",
		"figure.timeline", "workflow.io_time", "workflow.cross_node_raw",
	}
	for _, a := range yes {
		if !Derivable(a) {
			t.Errorf("%s should be derivable from counters", a)
		}
	}
	for _, a := range no {
		if Derivable(a) {
			t.Errorf("%s must not be derivable from counters", a)
		}
	}
	if Derivable("unknown.attribute") {
		t.Error("unknown attributes should default to not derivable")
	}
}

func TestEmptyTraceProfile(t *testing.T) {
	p := FromTrace(&trace.Trace{})
	if len(p.Records) != 0 {
		t.Error("phantom records")
	}
	s := p.Summarize()
	if s.DataOps != 0 || s.JobIOSpan != 0 {
		t.Errorf("phantom summary: %+v", s)
	}
}
