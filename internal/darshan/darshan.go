// Package darshan implements a Darshan-style aggregate I/O profile: one
// counter record per (rank, file), with op counts, byte totals, access-size
// histogram, and first/last access timestamps.
//
// The paper's methodology section argues that this level of information —
// what production facilities collect 24/7 — is *not enough* for its
// characterization: aggregate counters cannot recover I/O phases (Table
// V), process/data dependency graphs (the figures' (b) panels), compute/IO
// overlap, or per-interval bandwidth timelines, which is why the paper
// adopts Recorder's full multilevel traces. This package makes the
// comparison concrete: everything derivable from counters is derived here,
// and the package's tests document exactly which entities need the trace.
package darshan

import (
	"sort"
	"time"

	"vani/internal/stats"
	"vani/internal/trace"
)

// Record is the per-(rank, file) counter set, following the POSIX module
// counters Darshan reports.
type Record struct {
	Rank int32
	File string

	Opens, Closes, Seeks, Stats, Syncs int64
	Reads, Writes                      int64
	BytesRead, BytesWritten            int64
	MaxReadSize, MaxWriteSize          int64

	// SizeCounts buckets access sizes like Darshan's
	// POSIX_SIZE_READ/WRITE_* counters.
	SizeCounts [stats.NumSizeBuckets]int64

	// Fastest/slowest-style timing: only first/last access and cumulative
	// op time survive aggregation.
	FirstAccess time.Duration
	LastAccess  time.Duration
	CumIOTime   time.Duration

	// Sequential fraction counter (Darshan tracks consecutive-offset
	// accesses).
	SeqAccesses   int64
	TotalAccesses int64
}

// Profile is the aggregate of one job, the analogue of a Darshan log.
type Profile struct {
	Meta    trace.Meta
	Records []Record
}

// FromTrace reduces a full trace to the aggregate profile, discarding
// everything Darshan would not have kept. Only POSIX-level I/O is counted,
// matching Darshan's POSIX module.
func FromTrace(tr *trace.Trace) *Profile {
	type key struct {
		rank int32
		file int32
	}
	recs := map[key]*Record{}
	lastOff := map[key]int64{}
	var order []key
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Level != trace.LevelPosix || !ev.Op.IsIO() || ev.File < 0 {
			continue
		}
		k := key{ev.Rank, ev.File}
		r := recs[k]
		if r == nil {
			r = &Record{
				Rank: ev.Rank, File: tr.FilePath(ev.File),
				FirstAccess: ev.Start,
			}
			recs[k] = r
			order = append(order, k)
		}
		if ev.Start < r.FirstAccess {
			r.FirstAccess = ev.Start
		}
		if ev.End > r.LastAccess {
			r.LastAccess = ev.End
		}
		r.CumIOTime += ev.Duration()
		switch ev.Op {
		case trace.OpOpen:
			r.Opens++
		case trace.OpClose:
			r.Closes++
		case trace.OpSeek:
			r.Seeks++
		case trace.OpStat:
			r.Stats++
		case trace.OpSync:
			r.Syncs++
		case trace.OpRead:
			r.Reads++
			r.BytesRead += ev.Size
			if ev.Size > r.MaxReadSize {
				r.MaxReadSize = ev.Size
			}
			r.SizeCounts[stats.BucketOf(ev.Size)]++
			r.TotalAccesses++
			if prev, ok := lastOff[k]; !ok || ev.Offset >= prev {
				r.SeqAccesses++
			}
			lastOff[k] = ev.Offset
		case trace.OpWrite:
			r.Writes++
			r.BytesWritten += ev.Size
			if ev.Size > r.MaxWriteSize {
				r.MaxWriteSize = ev.Size
			}
			r.SizeCounts[stats.BucketOf(ev.Size)]++
			r.TotalAccesses++
			if prev, ok := lastOff[k]; !ok || ev.Offset >= prev {
				r.SeqAccesses++
			}
			lastOff[k] = ev.Offset
		}
	}
	p := &Profile{Meta: tr.Meta, Records: make([]Record, 0, len(recs))}
	sort.Slice(order, func(i, j int) bool {
		if order[i].rank != order[j].rank {
			return order[i].rank < order[j].rank
		}
		return order[i].file < order[j].file
	})
	for _, k := range order {
		p.Records = append(p.Records, *recs[k])
	}
	return p
}

// Summary is what the aggregate profile can say about the whole job —
// the Darshan-derivable subset of the paper's Table I.
type Summary struct {
	BytesRead, BytesWritten int64
	DataOps, MetaOps        int64
	FilesUsed               int
	FPPFiles, SharedFiles   int
	SeqFraction             float64
	// JobIOSpan is last access minus first access: the only "I/O time"
	// aggregate counters support. It cannot distinguish a single long
	// phase from many separated bursts.
	JobIOSpan time.Duration
}

// Summarize computes the job-level summary.
func (p *Profile) Summarize() Summary {
	var s Summary
	fileRanks := map[string]map[int32]bool{}
	var first, last time.Duration
	firstSet := false
	var seq, total int64
	for i := range p.Records {
		r := &p.Records[i]
		s.BytesRead += r.BytesRead
		s.BytesWritten += r.BytesWritten
		s.DataOps += r.Reads + r.Writes
		s.MetaOps += r.Opens + r.Closes + r.Seeks + r.Stats + r.Syncs
		if fileRanks[r.File] == nil {
			fileRanks[r.File] = map[int32]bool{}
		}
		fileRanks[r.File][r.Rank] = true
		if !firstSet || r.FirstAccess < first {
			first = r.FirstAccess
			firstSet = true
		}
		if r.LastAccess > last {
			last = r.LastAccess
		}
		seq += r.SeqAccesses
		total += r.TotalAccesses
	}
	s.FilesUsed = len(fileRanks)
	for _, ranks := range fileRanks {
		if len(ranks) == 1 {
			s.FPPFiles++
		} else {
			s.SharedFiles++
		}
	}
	if total > 0 {
		s.SeqFraction = float64(seq) / float64(total)
	}
	if firstSet {
		s.JobIOSpan = last - first
	}
	return s
}

// Derivable reports whether a characterization entity/attribute can be
// produced from aggregate counters alone. It encodes the paper's Section
// III-A2 argument for trace-based (Recorder) collection over profile-based
// (Darshan) collection.
func Derivable(attribute string) bool {
	switch attribute {
	case "workflow.io_amount", "workflow.io_ops_dist",
		"workflow.fpp_shared_files", "highlevel.granularity",
		"highlevel.access_pattern", "dataset.num_files", "dataset.size":
		return true
	case "phase.frequency", "phase.runtime", // needs inter-op gaps
		"workflow.app_data_dependency", // needs write->read ordering
		"app.process_data_dependency",  // needs per-op attribution
		"workflow.cross_node_raw",      // needs op ordering across nodes
		"figure.timeline",              // needs per-interval activity
		"figure.rank_bandwidth_series", // needs per-op durations
		"workflow.io_time":             // needs interval union, not span
		return false
	}
	return false
}
