package repo

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vani/internal/trace"
	"vani/internal/workloads"
)

// traceBytes encodes a synthetic VANITRC2 trace; n varies the content so
// distinct n give distinct content hashes and characterizations.
func traceBytes(t *testing.T, workload string, n int) []byte {
	t.Helper()
	tr := trace.NewTracer()
	tr.SetMeta(trace.Meta{Workload: workload, Nodes: 4, Ranks: 16, PFSDir: "/p/gpfs1"})
	file := tr.FileID("/p/gpfs1/data")
	for i := 0; i < n; i++ {
		start := time.Duration(i) * time.Microsecond
		op := trace.OpWrite
		if i%3 == 0 {
			op = trace.OpRead
		}
		tr.Record(trace.Event{
			Level: trace.LevelPosix, Op: op, Rank: int32(i % 16),
			File: file, Offset: int64(i) * 4096, Size: 4096,
			Start: start, End: start + time.Microsecond,
		})
	}
	var buf bytes.Buffer
	if err := trace.WriteFormat(&buf, tr.Finish(), trace.FormatV2); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	return buf.Bytes()
}

func mustAdd(t *testing.T, r *Repo, b []byte) string {
	t.Helper()
	sha, _, err := r.Add(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	return sha
}

func testChar() CharFunc {
	cfg := workloads.DefaultSpec().Storage
	return DefaultCharacterizer(&cfg, 1)
}

func fleetYAML(t *testing.T, r *Repo, workload string, par int) []byte {
	t.Helper()
	fr, err := r.FleetQuery(context.Background(), Query{Workload: workload, Parallelism: par}, testChar())
	if err != nil {
		t.Fatalf("FleetQuery: %v", err)
	}
	return fr.YAML()
}

// TestFleetMergeEquivalence is the determinism contract: byte-identical
// fleet YAML regardless of upload order, worker count, compaction state,
// and a close/reopen cycle.
func TestFleetMergeEquivalence(t *testing.T) {
	traces := [][]byte{
		traceBytes(t, "hacc", 400),
		traceBytes(t, "hacc", 900),
		traceBytes(t, "hacc", 1600),
	}

	ra, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	for _, b := range traces {
		mustAdd(t, ra, b)
	}

	rb, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	for i := len(traces) - 1; i >= 0; i-- {
		mustAdd(t, rb, traces[i])
	}

	want := fleetYAML(t, ra, "", 1)
	if len(want) == 0 {
		t.Fatal("empty fleet YAML")
	}
	if got := fleetYAML(t, rb, "", 4); !bytes.Equal(got, want) {
		t.Errorf("upload order / parallelism changed the fleet YAML:\n%s\nvs\n%s", want, got)
	}

	// Compaction must be invisible to queries.
	if n, err := rb.CompactNow(); err != nil || n != 3 {
		t.Fatalf("CompactNow = %d, %v; want 3 packed", n, err)
	}
	if got := fleetYAML(t, rb, "", 2); !bytes.Equal(got, want) {
		t.Errorf("compaction changed the fleet YAML")
	}

	// So must a restart, compacted or not.
	dir := rb.dir
	if err := rb.Close(); err != nil {
		t.Fatal(err)
	}
	rb2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rb2.Close()
	if got := fleetYAML(t, rb2, "", 1); !bytes.Equal(got, want) {
		t.Errorf("reopen changed the fleet YAML")
	}
}

// TestFleetWorkloadScope checks the per-workload shard filter.
func TestFleetWorkloadScope(t *testing.T) {
	r, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustAdd(t, r, traceBytes(t, "hacc", 500))
	mustAdd(t, r, traceBytes(t, "cm1", 700))

	fr, err := r.FleetQuery(context.Background(), Query{Workload: "cm1"}, testChar())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Runs != 1 {
		t.Fatalf("workload-scoped query saw %d runs, want 1", fr.Runs)
	}
	all, err := r.FleetQuery(context.Background(), Query{}, testChar())
	if err != nil {
		t.Fatal(err)
	}
	if all.Runs != 2 {
		t.Fatalf("unscoped query saw %d runs, want 2", all.Runs)
	}
}

// TestCompactorCrashSafety kills the compactor between the pack rename and
// the manifest record: the next boot must delete the orphan pack, keep
// every loose trace, and answer fleet queries byte-identically. A real
// compaction afterwards must also leave the YAML unchanged while shrinking
// the repository's on-disk footprint.
func TestCompactorCrashSafety(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{400, 900, 1600} {
		mustAdd(t, r, traceBytes(t, "hacc", n))
	}
	want := fleetYAML(t, r, "", 1)
	looseBytes := r.Stats().Bytes

	boom := errors.New("simulated crash after pack rename")
	r.hookAfterPackRename = func() error { return boom }
	if _, err := r.CompactNow(); !errors.Is(err, boom) {
		t.Fatalf("CompactNow error = %v, want the injected crash", err)
	}
	// The crash window left an orphan pack and no manifest record.
	orphans, err := filepath.Glob(filepath.Join(dir, "packs", "*.vpk"))
	if err != nil || len(orphans) != 1 {
		t.Fatalf("orphan packs = %v, %v; want exactly one", orphans, err)
	}
	// Abandon r without Close — the manifest checkpoint never saw the pack.

	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if left, _ := filepath.Glob(filepath.Join(dir, "packs", "*.vpk")); len(left) != 0 {
		t.Errorf("boot kept orphan packs: %v", left)
	}
	st := r2.Stats()
	if st.Files != 3 {
		t.Fatalf("recovered %d traces, want 3", st.Files)
	}
	if got := fleetYAML(t, r2, "", 1); !bytes.Equal(got, want) {
		t.Errorf("crash recovery changed the fleet YAML")
	}

	if n, err := r2.CompactNow(); err != nil || n != 3 {
		t.Fatalf("CompactNow after recovery = %d, %v; want 3 packed", n, err)
	}
	if got := fleetYAML(t, r2, "", 1); !bytes.Equal(got, want) {
		t.Errorf("real compaction changed the fleet YAML")
	}
	if packed := r2.Stats().Bytes; packed >= looseBytes {
		t.Errorf("compaction grew the repo: %d -> %d bytes", looseBytes, packed)
	}
}

// TestRescanAdoptsShardFiles loses the whole manifest: boot must rebuild
// the index from the shard tree alone (hash-verified adoption).
func TestRescanAdoptsShardFiles(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sha1 := mustAdd(t, r, traceBytes(t, "hacc", 400))
	sha2 := mustAdd(t, r, traceBytes(t, "hacc", 900))
	want := fleetYAML(t, r, "", 1)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "manifest.ckpt"))
	os.Remove(filepath.Join(dir, "manifest.log"))

	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	shas := r2.List("")
	if len(shas) != 2 || shas[0] > shas[1] {
		t.Fatalf("adopted %v, want both traces sha-sorted", shas)
	}
	for _, want := range []string{sha1, sha2} {
		if shas[0] != want && shas[1] != want {
			t.Fatalf("adoption lost %s (got %v)", want, shas)
		}
	}
	if got := fleetYAML(t, r2, "", 1); !bytes.Equal(got, want) {
		t.Errorf("manifest loss changed the fleet YAML")
	}
}

// TestAddDedupAndRejection: identical bytes dedupe to one entry; garbage
// is rejected with ErrNotTrace and leaves no residue in tmp/.
func TestAddDedupAndRejection(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	b := traceBytes(t, "hacc", 300)
	s1, existed, err := r.Add(bytes.NewReader(b))
	if err != nil || existed {
		t.Fatalf("first Add: %q existed=%v err=%v", s1, existed, err)
	}
	s2, existed, err := r.Add(bytes.NewReader(b))
	if err != nil || !existed || s2 != s1 {
		t.Fatalf("second Add: %q existed=%v err=%v; want dedup to %q", s2, existed, err, s1)
	}
	if st := r.Stats(); st.Files != 1 {
		t.Fatalf("Files = %d after dedup, want 1", st.Files)
	}

	if _, _, err := r.Add(bytes.NewReader([]byte("not a trace at all"))); !errors.Is(err, ErrNotTrace) {
		t.Fatalf("garbage Add error = %v, want ErrNotTrace", err)
	}
	if left, _ := os.ReadDir(filepath.Join(dir, "tmp")); len(left) != 0 {
		t.Errorf("rejected upload left tmp residue: %v", left)
	}
}

// TestGCRetention drops only entries older than RetainAge, by the
// injected clock, including whole packs once their last member goes.
func TestGCRetention(t *testing.T) {
	cur := time.Unix(1700000000, 0)
	r, err := Open(t.TempDir(), Options{
		RetainAge: 24 * time.Hour,
		Now:       func() time.Time { return cur },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	old1 := mustAdd(t, r, traceBytes(t, "hacc", 400))
	old2 := mustAdd(t, r, traceBytes(t, "hacc", 900))
	if n, err := r.CompactNow(); err != nil || n != 2 {
		t.Fatalf("CompactNow = %d, %v; want 2", n, err)
	}
	cur = cur.Add(48 * time.Hour)
	fresh := mustAdd(t, r, traceBytes(t, "hacc", 1600))

	dropped, err := r.GC()
	if err != nil || dropped != 2 {
		t.Fatalf("GC = %d, %v; want 2 dropped (%s, %s)", dropped, err, old1, old2)
	}
	shas := r.List("")
	if len(shas) != 1 || shas[0] != fresh {
		t.Fatalf("List after GC = %v, want only %s", shas, fresh)
	}
	// The pack's last member dropped with the old traces: file gone too.
	if left, _ := filepath.Glob(filepath.Join(r.dir, "packs", "*.vpk")); len(left) != 0 {
		t.Errorf("GC kept dead packs: %v", left)
	}
}

// TestHandlePinsDoomedFile: a file doomed by GC while a scan holds it
// survives until the last release, then disappears.
func TestHandlePinsDoomedFile(t *testing.T) {
	cur := time.Unix(1700000000, 0)
	r, err := Open(t.TempDir(), Options{
		RetainAge: time.Hour,
		Now:       func() time.Time { return cur },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sha := mustAdd(t, r, traceBytes(t, "hacc", 400))

	h, err := r.Acquire(sha)
	if err != nil {
		t.Fatal(err)
	}
	cur = cur.Add(2 * time.Hour)
	if n, err := r.GC(); err != nil || n != 1 {
		t.Fatalf("GC = %d, %v; want 1", n, err)
	}
	if _, err := os.Stat(h.Path()); err != nil {
		t.Fatalf("pinned file removed under the scan: %v", err)
	}
	h.Close()
	if _, err := os.Stat(h.Path()); !os.IsNotExist(err) {
		t.Fatalf("released doomed file still on disk (err=%v)", err)
	}
	if _, err := r.Acquire(sha); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire after GC = %v, want ErrNotFound", err)
	}
}

// TestGCRetainCount caps the store at N traces, dropping the oldest by
// upload time (SHA tie-break inside one instant).
func TestGCRetainCount(t *testing.T) {
	cur := time.Unix(1700000000, 0)
	r, err := Open(t.TempDir(), Options{
		RetainCount: 2,
		Now:         func() time.Time { return cur },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	oldest := mustAdd(t, r, traceBytes(t, "hacc", 400))
	cur = cur.Add(time.Hour)
	mid := mustAdd(t, r, traceBytes(t, "hacc", 900))
	cur = cur.Add(time.Hour)
	newest := mustAdd(t, r, traceBytes(t, "hacc", 1600))

	dropped, err := r.GC()
	if err != nil || dropped != 1 {
		t.Fatalf("GC = %d, %v; want 1 dropped", dropped, err)
	}
	shas := r.List("")
	if len(shas) != 2 {
		t.Fatalf("List after GC = %v, want 2 entries", shas)
	}
	for _, sha := range shas {
		if sha == oldest {
			t.Errorf("oldest trace %s survived a RetainCount GC over %s/%s", oldest, mid, newest)
		}
	}
	// Under the cap now: a second GC is a no-op.
	if n, err := r.GC(); err != nil || n != 0 {
		t.Fatalf("second GC = %d, %v; want 0", n, err)
	}
}

// TestGCRetainBytes caps total stored bytes, again oldest-first, and
// composes with RetainAge (age pass runs first).
func TestGCRetainBytes(t *testing.T) {
	cur := time.Unix(1700000000, 0)
	r, err := Open(t.TempDir(), Options{
		RetainAge:   24 * time.Hour,
		RetainBytes: 1, // every byte over budget: only dropping to one trace can't satisfy it either
		Now:         func() time.Time { return cur },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	mustAdd(t, r, traceBytes(t, "hacc", 400))
	cur = cur.Add(time.Hour)
	mustAdd(t, r, traceBytes(t, "hacc", 900))

	// Budget of one byte: everything must go, oldest first.
	dropped, err := r.GC()
	if err != nil || dropped != 2 {
		t.Fatalf("GC = %d, %v; want 2 dropped", dropped, err)
	}
	if shas := r.List(""); len(shas) != 0 {
		t.Fatalf("List after GC = %v, want empty", shas)
	}

	// A generous budget keeps everything.
	r2, err := Open(t.TempDir(), Options{RetainBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	mustAdd(t, r2, traceBytes(t, "hacc", 400))
	if n, err := r2.GC(); err != nil || n != 0 {
		t.Fatalf("GC under budget = %d, %v; want 0", n, err)
	}
}
