package repo

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Manifest ops, one JSON object per log line.
const (
	opAdd  = "add"  // a loose trace landed in its shard
	opPack = "pack" // a pack file now backs the listed members
	opDrop = "drop" // a trace left the repository (GC)
)

type manifestRec struct {
	Op       string       `json:"op"`
	SHA      string       `json:"sha,omitempty"`
	Workload string       `json:"workload,omitempty"`
	Bucket   string       `json:"bucket,omitempty"`
	Size     int64        `json:"size,omitempty"`
	Added    int64        `json:"added,omitempty"`
	Pack     string       `json:"pack,omitempty"`
	Members  []packMember `json:"members,omitempty"`
}

type packMember struct {
	SHA string `json:"sha"`
	Off int64  `json:"off"`
	Len int64  `json:"len"`
}

// checkpointState is the atomic-rename snapshot that supersedes the log.
type checkpointState struct {
	Entries []Entry `json:"entries"`
}

// appendRecLocked durably appends one record to the manifest log.
// Callers hold r.mu.
func (r *Repo) appendRecLocked(rec manifestRec) error {
	if r.log == nil {
		return ErrReadOnly
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("repo: manifest: %w", err)
	}
	b = append(b, '\n')
	if _, err := r.log.Write(b); err != nil {
		return fmt.Errorf("repo: manifest: %w", err)
	}
	if err := r.log.Sync(); err != nil {
		return fmt.Errorf("repo: manifest: %w", err)
	}
	return nil
}

func (r *Repo) applyRec(rec manifestRec) {
	switch rec.Op {
	case opAdd:
		r.entries[rec.SHA] = &Entry{
			SHA: rec.SHA, Workload: rec.Workload, Bucket: rec.Bucket,
			Size: rec.Size, Added: rec.Added,
		}
	case opPack:
		live := 0
		for _, m := range rec.Members {
			if e, ok := r.entries[m.SHA]; ok {
				e.Pack, e.Off, e.Size = rec.Pack, m.Off, m.Len
				live++
			}
		}
		if live > 0 {
			r.packLive[rec.Pack] = live
		}
	case opDrop:
		if e, ok := r.entries[rec.SHA]; ok {
			if e.Pack != "" {
				if r.packLive[e.Pack]--; r.packLive[e.Pack] <= 0 {
					delete(r.packLive, e.Pack)
				}
			}
			delete(r.entries, rec.SHA)
		}
	}
}

// loadManifest replays checkpoint then log into r.entries. A torn final
// log line (crash mid-append) is ignored; everything before it applies.
func (r *Repo) loadManifest() error {
	if b, err := os.ReadFile(r.ckptPath()); err == nil {
		var st checkpointState
		if jerr := json.Unmarshal(b, &st); jerr != nil {
			return fmt.Errorf("repo: corrupt checkpoint %s: %w", r.ckptPath(), jerr)
		}
		for i := range st.Entries {
			e := st.Entries[i]
			r.entries[e.SHA] = &e
			if e.Pack != "" {
				r.packLive[e.Pack]++
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("repo: %w", err)
	}
	f, err := os.Open(r.logPath())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("repo: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec manifestRec
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail from a crash mid-append; the rescan below
			// re-adopts whatever the lost record described.
			break
		}
		r.applyRec(rec)
	}
	return nil
}

func (r *Repo) writeCheckpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writeCheckpointLocked()
}

// writeCheckpointLocked snapshots entries to manifest.ckpt via
// write-to-tmp + fsync + atomic rename. Callers hold r.mu.
func (r *Repo) writeCheckpointLocked() error {
	st := checkpointState{Entries: make([]Entry, 0, len(r.entries))}
	for _, e := range r.entries {
		st.Entries = append(st.Entries, *e)
	}
	// Deterministic file content keeps checkpoint diffs meaningful.
	sortEntries(st.Entries)
	b, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("repo: checkpoint: %w", err)
	}
	tmp := r.ckptPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repo: checkpoint: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("repo: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("repo: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repo: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, r.ckptPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repo: checkpoint: %w", err)
	}
	return nil
}

func sortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].SHA < es[j-1].SHA; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// rescan reconciles the manifest with the tree: drop entries whose
// backing vanished, adopt loose files the manifest never recorded
// (hash-verified), delete loose leftovers of packed traces, size and
// prune pack files, and clear staging.
func (r *Repo) rescan() error {
	// 1. Entries must have backing bytes.
	for sha, e := range r.entries {
		path := r.loosePath(e)
		if e.Pack != "" {
			path = r.packPath(e.Pack)
		}
		if _, err := os.Stat(path); err != nil {
			if e.Pack != "" {
				if r.packLive[e.Pack]--; r.packLive[e.Pack] <= 0 {
					delete(r.packLive, e.Pack)
				}
			}
			delete(r.entries, sha)
		}
	}
	// 2. Adopt orphan loose files; remove loose leftovers of packed
	// entries (a crash window between pack record and loose deletion).
	if err := r.rescanShards(); err != nil {
		return err
	}
	// 3. Size referenced packs, drop unreferenced ones.
	packs, err := os.ReadDir(r.packsDir())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("repo: %w", err)
	}
	for _, de := range packs {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".vpk") {
			continue
		}
		rel := filepath.Join("packs", de.Name())
		abs := r.packPath(rel)
		if _, ok := r.packLive[rel]; !ok {
			if !r.opt.ReadOnly {
				os.Remove(abs)
			}
			continue
		}
		fi, err := os.Stat(abs)
		if err != nil {
			return fmt.Errorf("repo: %w", err)
		}
		r.packBytes[rel] = fi.Size()
	}
	// 4. Staging is garbage after a restart.
	if !r.opt.ReadOnly {
		if tmps, err := os.ReadDir(r.tmpDir()); err == nil {
			for _, de := range tmps {
				os.Remove(filepath.Join(r.tmpDir(), de.Name()))
			}
		}
	}
	return nil
}

func (r *Repo) rescanShards() error {
	workloads, err := os.ReadDir(r.shardsDir())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("repo: %w", err)
	}
	for _, wd := range workloads {
		if !wd.IsDir() {
			continue
		}
		buckets, err := os.ReadDir(filepath.Join(r.shardsDir(), wd.Name()))
		if err != nil {
			return fmt.Errorf("repo: %w", err)
		}
		for _, bd := range buckets {
			if !bd.IsDir() {
				continue
			}
			files, err := os.ReadDir(filepath.Join(r.shardsDir(), wd.Name(), bd.Name()))
			if err != nil {
				return fmt.Errorf("repo: %w", err)
			}
			for _, fe := range files {
				name := fe.Name()
				if fe.IsDir() || !strings.HasSuffix(name, ".trc") {
					continue
				}
				sha := strings.TrimSuffix(name, ".trc")
				path := filepath.Join(r.shardsDir(), wd.Name(), bd.Name(), name)
				if e, ok := r.entries[sha]; ok {
					if e.Pack != "" && !r.opt.ReadOnly {
						// Packed already; the loose copy is a leftover.
						os.Remove(path)
					}
					continue
				}
				if r.opt.ReadOnly {
					continue
				}
				size, ok, err := verifySHA(path, sha)
				if err != nil {
					return err
				}
				if !ok {
					// Content does not match its name: not ours to
					// trust, not ours to delete.
					continue
				}
				added := r.now().UTC().Unix()
				if fi, err := fe.Info(); err == nil {
					added = fi.ModTime().UTC().Unix()
				}
				r.entries[sha] = &Entry{
					SHA: sha, Workload: wd.Name(), Bucket: bd.Name(),
					Size: size, Added: added,
				}
			}
		}
	}
	return nil
}

// verifySHA reports whether the file's SHA-256 matches want, returning
// its size.
func verifySHA(path, want string) (int64, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("repo: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, false, fmt.Errorf("repo: %w", err)
	}
	return n, hex.EncodeToString(h.Sum(nil)) == want, nil
}
