// Package repo is vanid's persistent trace repository: a sharded,
// content-addressed store of VANITRC2/v1 trace files with a crash-safe
// manifest, a background compactor that merges small per-upload files
// into consolidated v2.2 packs, retention GC, and a fleet-query reducer
// that folds per-trace characterizations into cross-trace aggregates.
//
// Layout under the repository root:
//
//	manifest.log                      append-only JSON-lines op log
//	manifest.ckpt                     atomic-rename checkpoint of the log
//	shards/<workload>/<bucket>/<sha>.trc   loose per-upload trace files
//	packs/<name>.vpk                  compacted multi-trace pack files
//	tmp/                              staging for in-flight writes
//
// Every mutation reaches the filesystem before the manifest records it
// (write → fsync → rename → log), so a crash at any point leaves either
// an orphan file (deleted or re-adopted on boot) or a fully recorded
// state — never a recorded entry without bytes. Boot replays checkpoint
// + log, then rescans the tree: loose files missing from the manifest
// are adopted (content hash re-verified), entries whose backing vanished
// are dropped, and unreferenced packs are removed.
package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vani/internal/trace"
)

// ErrNotTrace reports that uploaded bytes are not a recognizable trace
// file; servers map it to 400.
var ErrNotTrace = errors.New("repo: not a trace file")

// ErrReadOnly reports a mutation attempted on a read-only repository.
var ErrReadOnly = errors.New("repo: read-only")

// ErrNotFound reports an unknown trace hash.
var ErrNotFound = errors.New("repo: trace not found")

// Options configures Open. The zero value is a writable repository with
// no background compaction and no retention limit.
type Options struct {
	// CompactEvery starts a background loop compacting + GCing at this
	// period. Zero disables the loop; CompactNow/GC still work.
	CompactEvery time.Duration
	// CompactMinFiles is the minimum number of loose files a shard needs
	// before the compactor packs it (default 2).
	CompactMinFiles int
	// RetainAge drops traces older than this (by upload time) during GC.
	// Zero keeps everything.
	RetainAge time.Duration
	// RetainCount caps the number of stored traces: GC drops the oldest
	// (by upload time, SHA tie-break) beyond it. Zero means no cap.
	RetainCount int
	// RetainBytes caps the stored traces' total backing size the same
	// way. Zero means no cap.
	RetainBytes int64
	// ReadOnly opens the repository for queries only: no manifest writes,
	// no adoption of orphans, no compactor. Suitable for `vani fleet`
	// pointed at a live daemon's data dir.
	ReadOnly bool
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// Entry is one stored trace. Location fields are guarded by the owning
// Repo's mutex; Handle snapshots them under that lock.
type Entry struct {
	SHA      string
	Workload string
	Bucket   string
	Size     int64  // bytes of the current backing (loose file or pack member)
	Added    int64  // upload unix time (UTC)
	Pack     string // relative pack path ("packs/x.vpk"), "" while loose
	Off      int64  // offset of the member inside Pack
}

// fileRef reference-counts one backing file so compaction and GC can
// doom a file while scans still hold it: removal happens when the last
// reader releases, never under one.
type fileRef struct {
	refs   int
	doomed bool
}

// Repo is a trace repository rooted at one directory. All methods are
// safe for concurrent use.
type Repo struct {
	dir string
	opt Options

	mu          sync.Mutex
	entries     map[string]*Entry
	packBytes   map[string]int64 // live pack rel path -> file size
	packLive    map[string]int   // live pack rel path -> member count
	files       map[string]*fileRef
	log         *os.File
	compactions int64
	closed      bool

	stop chan struct{}
	done chan struct{}

	// hookAfterPackRename, when set, runs after a pack file lands in
	// packs/ but before the manifest records it — the crash window the
	// recovery tests exercise. A non-nil error aborts the compaction.
	hookAfterPackRename func() error
}

// Stats is the repository gauge set surfaced on /metrics.
type Stats struct {
	Shards      int64 // distinct (workload, bucket) shards holding traces
	Files       int64 // stored traces
	Compactions int64 // packs built since this Repo opened
	Bytes       int64 // bytes on disk across loose files and packs
}

func (r *Repo) now() time.Time {
	if r.opt.Now != nil {
		return r.opt.Now()
	}
	return time.Now()
}

// Open opens (creating if needed) the repository rooted at dir, replays
// the manifest, rescans the tree, and — unless read-only — rewrites a
// fresh checkpoint and starts the background compactor when configured.
func Open(dir string, opt Options) (*Repo, error) {
	if opt.CompactMinFiles <= 0 {
		opt.CompactMinFiles = 2
	}
	r := &Repo{
		dir:       dir,
		opt:       opt,
		entries:   make(map[string]*Entry),
		packBytes: make(map[string]int64),
		packLive:  make(map[string]int),
		files:     make(map[string]*fileRef),
	}
	if opt.ReadOnly {
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("repo: open read-only: %w", err)
		}
	} else {
		for _, d := range []string{dir, r.shardsDir(), r.packsDir(), r.tmpDir()} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return nil, fmt.Errorf("repo: %w", err)
			}
		}
	}
	if err := r.loadManifest(); err != nil {
		return nil, err
	}
	if err := r.rescan(); err != nil {
		return nil, err
	}
	if !opt.ReadOnly {
		// Collapse boot-time repairs (adoptions, drops) into one atomic
		// checkpoint, then start a fresh log.
		if err := r.writeCheckpoint(); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(r.logPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("repo: %w", err)
		}
		r.log = f
		if opt.CompactEvery > 0 {
			r.stop = make(chan struct{})
			r.done = make(chan struct{})
			go r.compactLoop()
		}
	}
	return r, nil
}

// Close stops the compactor and, for writable repositories, persists a
// final checkpoint so the next Open replays nothing.
func (r *Repo) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	stop, done := r.stop, r.done
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.log == nil {
		return nil
	}
	err := r.writeCheckpointLocked()
	if terr := r.log.Truncate(0); err == nil {
		err = terr
	}
	if cerr := r.log.Close(); err == nil {
		err = cerr
	}
	r.log = nil
	return err
}

func (r *Repo) logPath() string   { return filepath.Join(r.dir, "manifest.log") }
func (r *Repo) ckptPath() string  { return filepath.Join(r.dir, "manifest.ckpt") }
func (r *Repo) shardsDir() string { return filepath.Join(r.dir, "shards") }
func (r *Repo) packsDir() string  { return filepath.Join(r.dir, "packs") }
func (r *Repo) tmpDir() string    { return filepath.Join(r.dir, "tmp") }

func (r *Repo) loosePath(e *Entry) string {
	return filepath.Join(r.shardsDir(), e.Workload, e.Bucket, e.SHA+".trc")
}

func (r *Repo) packPath(rel string) string { return filepath.Join(r.dir, rel) }

// sanitizeLabel restricts a workload label to path-safe characters so it
// can name a shard directory. Empty or fully-hostile labels become
// "unknown".
func sanitizeLabel(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteRune(c)
		}
	}
	out := strings.Trim(b.String(), ".")
	if out == "" {
		return "unknown"
	}
	return out
}

// readWorkloadLabel extracts Meta.Workload from a stored trace file.
func readWorkloadLabel(path string, format trace.Format) (string, error) {
	if format == trace.FormatV2 {
		br, err := trace.OpenBlockReader(path)
		if err != nil {
			return "", err
		}
		defer br.Close()
		return br.Header().Meta.Workload, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	s, err := trace.NewScanner(f)
	if err != nil {
		return "", err
	}
	return s.Header().Meta.Workload, nil
}

// Add stores the trace read from src, content-addressed by SHA-256.
// Returns the hash and whether the trace was already present. Bytes that
// do not decode as a trace header yield ErrNotTrace.
func (r *Repo) Add(src io.Reader) (sha string, existed bool, err error) {
	if r.opt.ReadOnly {
		return "", false, ErrReadOnly
	}
	tmpf, err := os.CreateTemp(r.tmpDir(), "add-*.part")
	if err != nil {
		return "", false, fmt.Errorf("repo: %w", err)
	}
	tmp := tmpf.Name()
	defer func() {
		if err != nil {
			tmpf.Close()
			os.Remove(tmp)
		}
	}()
	h := sha256.New()
	size, err := io.Copy(io.MultiWriter(tmpf, h), src)
	if err != nil {
		return "", false, fmt.Errorf("repo: spooling upload: %w", err)
	}
	if err = tmpf.Sync(); err != nil {
		return "", false, fmt.Errorf("repo: %w", err)
	}
	if err = tmpf.Close(); err != nil {
		return "", false, fmt.Errorf("repo: %w", err)
	}
	sha = hex.EncodeToString(h.Sum(nil))

	format, serr := trace.SniffFile(tmp)
	if serr != nil {
		err = fmt.Errorf("%w: %v", ErrNotTrace, serr)
		return "", false, err
	}
	workload, werr := readWorkloadLabel(tmp, format)
	if werr != nil {
		err = fmt.Errorf("%w: %v", ErrNotTrace, werr)
		return "", false, err
	}
	workload = sanitizeLabel(workload)

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[sha]; ok {
		os.Remove(tmp)
		return sha, true, nil
	}
	now := r.now().UTC()
	e := &Entry{
		SHA:      sha,
		Workload: workload,
		Bucket:   now.Format("2006-01-02"),
		Size:     size,
		Added:    now.Unix(),
	}
	dest := r.loosePath(e)
	if err = os.MkdirAll(filepath.Dir(dest), 0o755); err != nil {
		return "", false, fmt.Errorf("repo: %w", err)
	}
	if err = os.Rename(tmp, dest); err != nil {
		return "", false, fmt.Errorf("repo: %w", err)
	}
	if err = r.appendRecLocked(manifestRec{
		Op: opAdd, SHA: sha, Workload: e.Workload, Bucket: e.Bucket,
		Size: e.Size, Added: e.Added,
	}); err != nil {
		return "", false, err
	}
	r.entries[sha] = e
	return sha, false, nil
}

// Handle pins one stored trace's bytes: the backing file cannot be
// removed (by compaction relocating it or GC dropping it) until Close.
// Location fields are an immutable snapshot taken at Acquire time.
type Handle struct {
	r      *Repo
	sha    string
	path   string // absolute backing file
	off    int64  // byte offset of the trace within the file
	size   int64  // byte length of the trace
	packed bool
	once   sync.Once
}

// SHA returns the trace content hash.
func (h *Handle) SHA() string { return h.sha }

// Path returns the absolute backing file (a loose .trc or a .vpk pack).
func (h *Handle) Path() string { return h.path }

// Off returns the trace's byte offset within Path (0 for loose files).
func (h *Handle) Off() int64 { return h.off }

// Size returns the trace's encoded byte length.
func (h *Handle) Size() int64 { return h.size }

// Packed reports whether the trace lives inside a pack (always VANITRC2).
func (h *Handle) Packed() bool { return h.packed }

// Close releases the pin. Safe to call more than once.
func (h *Handle) Close() {
	h.once.Do(func() { h.r.release(h.path) })
}

// Acquire pins the trace with the given hash and returns a handle to its
// bytes.
func (r *Repo) Acquire(sha string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[sha]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, sha)
	}
	h := &Handle{r: r, sha: sha, size: e.Size}
	if e.Pack != "" {
		h.path, h.off, h.packed = r.packPath(e.Pack), e.Off, true
	} else {
		h.path = r.loosePath(e)
	}
	fr := r.files[h.path]
	if fr == nil {
		fr = &fileRef{}
		r.files[h.path] = fr
	}
	fr.refs++
	return h, nil
}

func (r *Repo) release(path string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fr := r.files[path]
	if fr == nil {
		return
	}
	fr.refs--
	if fr.refs > 0 {
		return
	}
	delete(r.files, path)
	if fr.doomed {
		os.Remove(path)
	}
}

// doomLocked removes a backing file now, or defers removal to the last
// release if readers hold it. Callers hold r.mu.
func (r *Repo) doomLocked(path string) {
	if fr := r.files[path]; fr != nil && fr.refs > 0 {
		fr.doomed = true
		return
	}
	delete(r.files, path)
	os.Remove(path)
}

// List returns the hashes of stored traces, sha-sorted; a non-empty
// workload restricts to that shard label (sanitized form).
func (r *Repo) List(workload string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.entries))
	for sha, e := range r.entries {
		if workload != "" && e.Workload != workload {
			continue
		}
		out = append(out, sha)
	}
	sort.Strings(out)
	return out
}

// Workloads returns the distinct workload labels present, sorted.
func (r *Repo) Workloads() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	for _, e := range r.entries {
		seen[e.Workload] = true
	}
	out := make([]string, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Stats returns current repository gauges.
func (r *Repo) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Stats
	shards := make(map[string]bool)
	for _, e := range r.entries {
		shards[e.Workload+"/"+e.Bucket] = true
		s.Files++
		if e.Pack == "" {
			s.Bytes += e.Size
		}
	}
	for _, sz := range r.packBytes {
		s.Bytes += sz
	}
	s.Shards = int64(len(shards))
	s.Compactions = r.compactions
	return s
}
