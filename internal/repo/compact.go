package repo

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"vani/internal/trace"
)

// packMagic heads every pack file; member offsets start right after it.
var packMagic = []byte("VANIPACK")

// CompactNow merges every shard holding at least CompactMinFiles loose
// traces into one consolidated pack per shard, re-encoding each trace as
// flate-wrapped VANITRC2 v2.2 (the cost model re-picks segment codecs).
// Returns the number of traces packed. The pack file reaches disk and is
// fsynced before the manifest records it; loose originals are removed
// only after the record — or, when scans still pin them, at the last
// release.
func (r *Repo) CompactNow() (int, error) {
	if r.opt.ReadOnly {
		return 0, ErrReadOnly
	}
	type group struct {
		key     string
		members []*Entry
	}
	r.mu.Lock()
	byShard := make(map[string][]*Entry)
	for _, e := range r.entries {
		if e.Pack == "" {
			k := e.Workload + "/" + e.Bucket
			byShard[k] = append(byShard[k], e)
		}
	}
	groups := make([]group, 0, len(byShard))
	for k, ms := range byShard {
		if len(ms) < r.opt.CompactMinFiles {
			continue
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i].SHA < ms[j].SHA })
		groups = append(groups, group{key: k, members: ms})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	r.mu.Unlock()

	packed := 0
	for _, g := range groups {
		n, err := r.packShard(g.members)
		if err != nil {
			return packed, err
		}
		packed += n
	}
	return packed, nil
}

// packShard builds one pack from the sha-sorted loose members of a shard.
func (r *Repo) packShard(members []*Entry) (int, error) {
	// Re-encode each member outside the lock; Add/Acquire stay live.
	var buf bytes.Buffer
	buf.Write(packMagic)
	recs := make([]packMember, 0, len(members))
	nameHash := sha256.New()
	for _, e := range members {
		f, err := os.Open(r.loosePath(e))
		if err != nil {
			// The member left (GC raced us); skip the whole shard this
			// round rather than build a partial pack.
			return 0, nil
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return 0, fmt.Errorf("repo: compact %s: %w", e.SHA, err)
		}
		off := int64(buf.Len())
		if err := trace.WriteV2With(&buf, tr, trace.V2Options{Compress: true}); err != nil {
			return 0, fmt.Errorf("repo: compact %s: %w", e.SHA, err)
		}
		recs = append(recs, packMember{SHA: e.SHA, Off: off, Len: int64(buf.Len()) - off})
		nameHash.Write([]byte(e.SHA))
	}
	rel := filepath.Join("packs", "p-"+hex.EncodeToString(nameHash.Sum(nil))[:16]+".vpk")
	abs := r.packPath(rel)

	tmp := filepath.Join(r.tmpDir(), filepath.Base(rel)+".part")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("repo: compact: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("repo: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("repo: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("repo: compact: %w", err)
	}
	if err := os.Rename(tmp, abs); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("repo: compact: %w", err)
	}
	if r.hookAfterPackRename != nil {
		if err := r.hookAfterPackRename(); err != nil {
			return 0, err
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	// Members may have been dropped while we encoded; the pack is only
	// recorded if every member is still loose, else it becomes an orphan
	// the next boot (or the remove below) cleans up.
	for _, m := range members {
		cur, ok := r.entries[m.SHA]
		if !ok || cur.Pack != "" {
			os.Remove(abs)
			return 0, nil
		}
	}
	if err := r.appendRecLocked(manifestRec{Op: opPack, Pack: rel, Members: recs}); err != nil {
		os.Remove(abs)
		return 0, err
	}
	for i, m := range members {
		loose := r.loosePath(m)
		m.Pack, m.Off, m.Size = rel, recs[i].Off, recs[i].Len
		r.doomLocked(loose)
	}
	r.packBytes[rel] = int64(buf.Len())
	r.packLive[rel] = len(members)
	r.compactions++
	return len(members), nil
}

// GC enforces the retention policy: traces older than RetainAge go
// first, then the oldest survivors (upload time, SHA tie-break) until
// RetainCount and RetainBytes are both satisfied. Backing files shared
// with pinned scans are removed at the last release. Returns the number
// of traces dropped.
func (r *Repo) GC() (int, error) {
	if r.opt.ReadOnly {
		return 0, ErrReadOnly
	}
	if r.opt.RetainAge <= 0 && r.opt.RetainCount <= 0 && r.opt.RetainBytes <= 0 {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	drop := make(map[string]bool)
	if r.opt.RetainAge > 0 {
		cutoff := r.now().UTC().Add(-r.opt.RetainAge).Unix()
		for sha, e := range r.entries {
			if e.Added < cutoff {
				drop[sha] = true
			}
		}
	}
	if r.opt.RetainCount > 0 || r.opt.RetainBytes > 0 {
		live := make([]*Entry, 0, len(r.entries))
		var total int64
		for sha, e := range r.entries {
			if !drop[sha] {
				live = append(live, e)
				total += e.Size
			}
		}
		sort.Slice(live, func(i, j int) bool {
			if live[i].Added != live[j].Added {
				return live[i].Added < live[j].Added
			}
			return live[i].SHA < live[j].SHA
		})
		for len(live) > 0 &&
			((r.opt.RetainCount > 0 && len(live) > r.opt.RetainCount) ||
				(r.opt.RetainBytes > 0 && total > r.opt.RetainBytes)) {
			drop[live[0].SHA] = true
			total -= live[0].Size
			live = live[1:]
		}
	}
	doomed := make([]string, 0, len(drop))
	for sha := range drop {
		doomed = append(doomed, sha)
	}
	sort.Strings(doomed)
	for _, sha := range doomed {
		e := r.entries[sha]
		if err := r.appendRecLocked(manifestRec{Op: opDrop, SHA: sha}); err != nil {
			return 0, err
		}
		delete(r.entries, sha)
		if e.Pack == "" {
			r.doomLocked(r.loosePath(e))
			continue
		}
		if r.packLive[e.Pack]--; r.packLive[e.Pack] <= 0 {
			delete(r.packLive, e.Pack)
			delete(r.packBytes, e.Pack)
			r.doomLocked(r.packPath(e.Pack))
		}
	}
	return len(doomed), nil
}

func (r *Repo) compactLoop() {
	defer close(r.done)
	t := time.NewTicker(r.opt.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			if _, err := r.CompactNow(); err != nil {
				fmt.Fprintf(os.Stderr, "vanid: repo compaction: %v\n", err)
			}
			if _, err := r.GC(); err != nil {
				fmt.Fprintf(os.Stderr, "vanid: repo gc: %v\n", err)
			}
		}
	}
}
