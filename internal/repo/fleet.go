package repo

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"vani/internal/core"
	"vani/internal/parallel"
	"vani/internal/pipeline"
	"vani/internal/stats"
	"vani/internal/storage"
	"vani/internal/trace"
	"vani/internal/yamlenc"
)

// Query selects and scopes a fleet query.
type Query struct {
	// Workload restricts to one shard label ("" = every stored trace).
	Workload string
	// Filter is pushed down into each per-trace characterization.
	Filter trace.Filter
	// Parallelism bounds concurrent per-trace characterizations
	// (<= 0 means GOMAXPROCS). Partials reduce in sha order regardless,
	// so the report is byte-identical at any setting.
	Parallelism int
}

// CharFunc produces one trace's characterization for the fleet reducer.
// Implementations must be deterministic functions of the trace bytes and
// filter — the fleet report inherits exactly their determinism.
type CharFunc func(ctx context.Context, h *Handle, f trace.Filter) (*core.Characterization, error)

// TraceSummary is the mergeable per-trace slice of a characterization:
// everything content-derived (no upload times, no paths), so the fleet
// report is invariant under upload order, shard layout, restarts, and
// compaction state.
type TraceSummary struct {
	SHA          string
	Runtime      time.Duration
	IOTime       time.Duration
	IOBytes      int64
	ReadBytes    int64
	WriteBytes   int64
	DataOpsPct   float64
	MetaOpsPct   float64
	ReadGranule  int64 // dominant read transfer size (high-level)
	WriteGranule int64 // dominant write transfer size (high-level)
	Interfaces   []string
	Phases       int
}

// Regression compares the slowest run against the fastest by I/O time.
type Regression struct {
	FastestSHA    string
	SlowestSHA    string
	FastestIOTime time.Duration
	SlowestIOTime time.Duration
	DeltaPct      float64
}

// FleetAggregate is the cross-trace reduction: totals, transfer-size and
// I/O-time distributions, the per-interface mix, and the widest
// regression between runs.
type FleetAggregate struct {
	Runs         int
	IOBytes      int64
	ReadBytes    int64
	WriteBytes   int64
	ReadGranule  stats.FiveNum
	WriteGranule stats.FiveNum
	IOTimeP50    time.Duration
	IOTimeP99    time.Duration
	// InterfaceMix counts traces touching each I/O interface.
	InterfaceMix map[string]int
	Regression   Regression // zero when fewer than two runs
}

// FleetReport is the fleet-query artifact served over /fleet/query and
// printed by `vani fleet`.
type FleetReport struct {
	Workload  string // "" = all workloads
	Runs      int
	Aggregate FleetAggregate
	Traces    []TraceSummary // sha-sorted
}

// YAML renders the report with the same deterministic encoder the
// single-trace pipeline uses.
func (fr *FleetReport) YAML() []byte { return yamlenc.Marshal(fr) }

// FleetQuery characterizes every selected trace (fanned across
// Parallelism workers) and reduces the per-trace summaries in sha order
// — the colstore chunk-reduce discipline lifted to trace-level partials,
// so the YAML is byte-identical at any worker count.
func (r *Repo) FleetQuery(ctx context.Context, q Query, char CharFunc) (*FleetReport, error) {
	shas := r.List(sanitizeQueryLabel(q.Workload))
	handles := make([]*Handle, 0, len(shas))
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	for _, sha := range shas {
		h, err := r.Acquire(sha)
		if err != nil {
			// Dropped between List and Acquire (GC race); the trace is
			// simply not part of this query's snapshot.
			continue
		}
		handles = append(handles, h)
	}

	sums := make([]TraceSummary, len(handles))
	errs := make([]error, len(handles))
	parallel.ForEach(parallel.Degree(q.Parallelism), len(handles), func(i int) {
		c, err := char(ctx, handles[i], q.Filter)
		if err != nil {
			errs[i] = err
			return
		}
		sums[i] = summarize(handles[i].SHA(), c)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("repo: fleet: %s: %w", handles[i].SHA(), err)
		}
	}
	return reduce(q.Workload, sums), nil
}

func sanitizeQueryLabel(s string) string {
	if s == "" {
		return ""
	}
	return sanitizeLabel(s)
}

func summarize(sha string, c *core.Characterization) TraceSummary {
	ifaces := make(map[string]bool)
	for _, a := range c.Apps {
		if a.Interface != "" {
			ifaces[a.Interface] = true
		}
	}
	names := make([]string, 0, len(ifaces))
	for n := range ifaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return TraceSummary{
		SHA:          sha,
		Runtime:      c.Workflow.Runtime,
		IOTime:       c.Workflow.IOTime,
		IOBytes:      c.Workflow.IOBytes,
		ReadBytes:    c.Workflow.ReadBytes,
		WriteBytes:   c.Workflow.WriteBytes,
		DataOpsPct:   c.Workflow.DataOpsPct,
		MetaOpsPct:   c.Workflow.MetaOpsPct,
		ReadGranule:  c.HighLevel.Granularity.Read,
		WriteGranule: c.HighLevel.Granularity.Write,
		Interfaces:   names,
		Phases:       len(c.Phases),
	}
}

// reduce folds sha-ordered summaries into the aggregate. Deterministic
// merge order: sums in slice order, percentiles over sorted copies,
// regression ties broken by sha.
func reduce(workload string, sums []TraceSummary) *FleetReport {
	fr := &FleetReport{Workload: workload, Runs: len(sums), Traces: sums}
	agg := &fr.Aggregate
	agg.Runs = len(sums)
	agg.InterfaceMix = make(map[string]int)
	if len(sums) == 0 {
		return fr
	}
	readG := make([]float64, len(sums))
	writeG := make([]float64, len(sums))
	ioT := make([]float64, len(sums))
	for i, s := range sums {
		agg.IOBytes += s.IOBytes
		agg.ReadBytes += s.ReadBytes
		agg.WriteBytes += s.WriteBytes
		readG[i] = float64(s.ReadGranule)
		writeG[i] = float64(s.WriteGranule)
		ioT[i] = float64(s.IOTime)
		for _, n := range s.Interfaces {
			agg.InterfaceMix[n]++
		}
	}
	agg.ReadGranule = stats.FiveNumOf(readG)
	agg.WriteGranule = stats.FiveNumOf(writeG)
	agg.IOTimeP50 = time.Duration(stats.Percentile(ioT, 50) + 0.5)
	agg.IOTimeP99 = time.Duration(stats.Percentile(ioT, 99) + 0.5)
	if len(sums) >= 2 {
		fast, slow := sums[0], sums[0]
		for _, s := range sums[1:] {
			if s.IOTime < fast.IOTime {
				fast = s
			}
			if s.IOTime > slow.IOTime {
				slow = s
			}
		}
		agg.Regression = Regression{
			FastestSHA:    fast.SHA,
			SlowestSHA:    slow.SHA,
			FastestIOTime: fast.IOTime,
			SlowestIOTime: slow.IOTime,
		}
		if fast.IOTime > 0 {
			agg.Regression.DeltaPct = float64(slow.IOTime-fast.IOTime) / float64(fast.IOTime) * 100
		}
	}
	return fr
}

// Characterize runs the single-trace analyzer over the handle's bytes —
// the whole loose file, or the trace's section of a pack.
func (h *Handle) Characterize(ctx context.Context, opt core.Options) (*core.Characterization, error) {
	if !h.packed {
		return pipeline.File(ctx, h.path, opt)
	}
	f, err := os.Open(h.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sec := io.NewSectionReader(f, h.off, h.size)
	br, err := trace.NewBlockReader(trace.ReaderAtContext(ctx, sec), h.size)
	if err != nil {
		return nil, err
	}
	return pipeline.Blocks(ctx, br, opt)
}

// DefaultCharacterizer builds the standard CharFunc: the CLI pipeline
// with the given storage model and per-trace analyzer parallelism.
func DefaultCharacterizer(cfg *storage.Config, par int) CharFunc {
	return func(ctx context.Context, h *Handle, f trace.Filter) (*core.Characterization, error) {
		opt := core.DefaultOptions()
		opt.Storage = cfg.Clone() // private copy per concurrent scan
		opt.Filter = f
		opt.Parallelism = par
		return h.Characterize(ctx, opt)
	}
}
