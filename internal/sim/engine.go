// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives every substrate in this repository: simulated MPI ranks,
// storage servers, burst buffers, and workflow schedulers are all expressed
// as processes and resources on a single virtual clock. Processes are
// ordinary Go functions executed on goroutines, but the engine runs exactly
// one process at a time and orders all events by (virtual time, insertion
// sequence), so simulations are fully deterministic and reproducible across
// runs regardless of goroutine scheduling.
//
// The design follows the classic process-interaction style of simulation
// kernels: a process calls blocking primitives (Sleep, Resource.Use,
// Barrier.Wait, Semaphore.Acquire) that park the goroutine and return
// control to the engine, which advances the clock to the next event.
package sim

import (
	"fmt"
	"time"

	"vani/internal/heapx"
)

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     time.Duration
	seq     int64
	queue   heapx.Heap[event]
	yield   chan struct{}
	running bool
	live    int // processes spawned and not yet finished
	procSeq int
	err     error

	// Stats counters, useful for tests and for the kernel ablation benches.
	EventsExecuted int64
	ProcsSpawned   int64
}

// NewEngine returns an empty simulation with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
		// Events order by (virtual time, insertion sequence) — a strict
		// total order, so pop order is deterministic. The queue is a
		// non-boxing generic heap: scheduling an event no longer allocates
		// the interface box container/heap required.
		queue: heapx.New(func(a, b event) bool {
			if a.t != b.t {
				return a.t < b.t
			}
			return a.seq < b.seq
		}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

type event struct {
	t   time.Duration
	seq int64
	p   *Proc  // if non-nil, resume this process
	fn  func() // otherwise run this callback
}

func (e *Engine) schedule(t time.Duration, p *Proc, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, e.now))
	}
	e.seq++
	e.queue.Push(event{t: t, seq: e.seq, p: p, fn: fn})
}

// At schedules fn to run at absolute virtual time t. It may be called before
// Run or from inside a running process or callback.
func (e *Engine) At(t time.Duration, fn func()) { e.schedule(t, nil, fn) }

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) { e.schedule(e.now+d, nil, fn) }

// Proc is a simulated process. All methods must be called from the process's
// own goroutine (i.e., from within the function passed to Spawn).
type Proc struct {
	e    *Engine
	id   int
	name string
	wake chan struct{}
	done bool

	// Slept accumulates the total virtual time this process spent blocked in
	// kernel primitives. Useful for utilization accounting.
	Slept time.Duration
}

// ID returns the process identifier, unique within its engine and assigned
// in Spawn order starting from zero.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// Spawn creates a process executing fn, starting at the current virtual
// time. The process runs when the engine reaches its first event; Spawn may
// be called before Run or from a running process.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{e: e, id: e.procSeq, name: name, wake: make(chan struct{})}
	e.procSeq++
	e.live++
	e.ProcsSpawned++
	go func() {
		<-p.wake // wait for first resume
		fn(p)
		p.done = true
		e.live--
		e.yield <- struct{}{}
	}()
	e.schedule(e.now, p, nil)
	return p
}

// SpawnAt is Spawn with an explicit start time (absolute virtual time, not a
// delay). It panics if t is in the past.
func (e *Engine) SpawnAt(t time.Duration, name string, fn func(*Proc)) *Proc {
	p := &Proc{e: e, id: e.procSeq, name: name, wake: make(chan struct{})}
	e.procSeq++
	e.live++
	e.ProcsSpawned++
	go func() {
		<-p.wake
		fn(p)
		p.done = true
		e.live--
		e.yield <- struct{}{}
	}()
	e.schedule(t, p, nil)
	return p
}

// park blocks the calling process goroutine and returns control to the
// engine. The process must already have arranged for a future wake-up
// (a scheduled resume event or membership in a wait list).
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.wake
}

// resume hands control to process p and blocks the engine loop until p
// parks again or finishes.
func (e *Engine) resume(p *Proc) {
	p.wake <- struct{}{}
	<-e.yield
}

// wakeAt schedules p to be resumed at absolute time t.
func (e *Engine) wakeAt(t time.Duration, p *Proc) { e.schedule(t, p, nil) }

// Sleep suspends the process for virtual duration d. Negative durations are
// treated as zero (the process still yields, letting same-time events run in
// FIFO order).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.Slept += d
	p.e.wakeAt(p.e.now+d, p)
	p.park()
}

// SleepUntil suspends the process until absolute virtual time t. If t is in
// the past it behaves like Sleep(0).
func (p *Proc) SleepUntil(t time.Duration) {
	if t < p.e.now {
		t = p.e.now
	}
	p.Slept += t - p.e.now
	p.e.wakeAt(t, p)
	p.park()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Park blocks the process until another party wakes it with WakeNow. It is
// the building block for synchronization primitives implemented outside
// this package; a parked process with no scheduled wake-up deadlocks the
// simulation (Run panics).
func (p *Proc) Park() { p.park() }

// WakeNow schedules a parked process to resume at the current virtual time.
func (e *Engine) WakeNow(p *Proc) { e.wakeAt(e.now, p) }

// Run executes events until the queue is empty, then returns the final
// virtual time. It panics if processes are still live when the queue drains
// (a deadlock: some process is parked with no pending wake-up).
func (e *Engine) Run() time.Duration {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.Len() > 0 {
		ev := e.queue.Pop()
		e.now = ev.t
		e.EventsExecuted++
		if ev.p != nil {
			if ev.p.done {
				continue // stale wake-up for a finished process
			}
			e.resume(ev.p)
		} else {
			ev.fn()
		}
	}
	if e.live > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with empty event queue", e.live))
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline and returns the
// virtual time reached. Unlike Run it tolerates parked processes remaining.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.Len() > 0 && e.queue.Peek().t <= deadline {
		ev := e.queue.Pop()
		e.now = ev.t
		e.EventsExecuted++
		if ev.p != nil {
			if ev.p.done {
				continue
			}
			e.resume(ev.p)
		} else {
			ev.fn()
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Fail records a simulation-level error. The first error wins; later calls
// are no-ops. Processes call it instead of panicking when a modeled
// operation fails, then return; the driver checks Err after Run. The engine
// runs one process at a time, so no locking is needed.
func (e *Engine) Fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// Err returns the first error recorded by Fail, or nil.
func (e *Engine) Err() error { return e.err }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Live reports the number of spawned processes that have not finished.
func (e *Engine) Live() int { return e.live }
