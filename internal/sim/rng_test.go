package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministicForSeed(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("%d/100 identical samples across seeds", same)
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewRNG(7)
	f1 := g.Fork()
	// Consuming from the fork must not perturb the parent relative to a
	// replayed run.
	g2 := NewRNG(7)
	_ = g2.Fork()
	for i := 0; i < 50; i++ {
		f1.Float64()
	}
	for i := 0; i < 50; i++ {
		if g.Float64() != g2.Float64() {
			t.Fatal("fork consumption perturbed parent stream")
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) = %v out of range", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(5)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := g.Normal(100, 15)
		sum += v
		sq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-100) > 0.5 {
		t.Errorf("mean = %v, want ~100", mean)
	}
	if math.Abs(sd-15) > 0.5 {
		t.Errorf("stddev = %v, want ~15", sd)
	}
}

func TestGammaMoments(t *testing.T) {
	g := NewRNG(11)
	const n = 50000
	k, theta := 2.0, 3.0
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := g.Gamma(k, theta)
		if v < 0 {
			t.Fatalf("gamma sample %v < 0", v)
		}
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-k*theta) > 0.2 {
		t.Errorf("gamma mean = %v, want ~%v", mean, k*theta)
	}
	if math.Abs(variance-k*theta*theta) > 1.0 {
		t.Errorf("gamma var = %v, want ~%v", variance, k*theta*theta)
	}
}

func TestGammaShapeBelowOne(t *testing.T) {
	g := NewRNG(13)
	const n = 20000
	k, theta := 0.5, 2.0
	var sum float64
	for i := 0; i < n; i++ {
		v := g.Gamma(k, theta)
		if v < 0 {
			t.Fatalf("gamma sample %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-k*theta) > 0.1 {
		t.Errorf("gamma(0.5,2) mean = %v, want ~1", mean)
	}
}

func TestGammaInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Gamma(0, 1)
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(17)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exponential(4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.15 {
		t.Errorf("exponential mean = %v, want ~4", mean)
	}
}

func TestJitterBoundsProperty(t *testing.T) {
	g := NewRNG(19)
	f := func(raw uint32, fRaw uint8) bool {
		v := float64(raw%1000000) + 1
		frac := float64(fRaw%100) / 100
		j := g.Jitter(v, frac)
		lo, hi := v*(1-frac), v*(1+frac)
		return j >= lo-1e-9 && j <= hi+1e-9 && j > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJitterZeroFractionIdentity(t *testing.T) {
	g := NewRNG(23)
	if got := g.Jitter(42, 0); got != 42 {
		t.Errorf("Jitter(42, 0) = %v, want 42", got)
	}
}

func TestJitterCapsFraction(t *testing.T) {
	g := NewRNG(29)
	for i := 0; i < 1000; i++ {
		if v := g.Jitter(10, 5.0); v <= 0 {
			t.Fatalf("Jitter with huge fraction produced non-positive %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(31)
	p := g.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation")
		}
		seen[v] = true
	}
}
