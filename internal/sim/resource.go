package sim

import (
	"fmt"
	"time"
)

// Resource models a single FCFS server: requests are serviced one at a time
// in arrival order, each occupying the server for its service demand.
// Contention therefore shows up as queueing delay, which is the mechanism
// behind the per-rank bandwidth variance the paper observes on GPFS during
// HACC checkpointing (Figure 2c).
type Resource struct {
	e    *Engine
	name string
	free time.Duration // absolute time the server next becomes idle

	// Counters for utilization accounting.
	Served   int64
	BusyTime time.Duration
	WaitTime time.Duration
}

// NewResource creates an FCFS resource on engine e.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{e: e, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Use blocks the process until the resource has serviced a request of the
// given demand, and returns the queueing delay and the total time spent
// (wait + service).
func (r *Resource) Use(p *Proc, service time.Duration) (wait, total time.Duration) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service demand %v on %s", service, r.name))
	}
	now := p.e.now
	start := now
	if r.free > start {
		start = r.free
	}
	end := start + service
	r.free = end
	r.Served++
	r.BusyTime += service
	wait = start - now
	r.WaitTime += wait
	p.SleepUntil(end)
	return wait, end - now
}

// Reserve books service time without blocking the caller and returns the
// interval [start, end) the request occupies. It is used by asynchronous
// layers (e.g. write-back flushing) that account for server occupancy
// without a process waiting on completion.
func (r *Resource) Reserve(service time.Duration) (start, end time.Duration) {
	start = r.e.now
	if r.free > start {
		start = r.free
	}
	end = start + service
	r.free = end
	r.Served++
	r.BusyTime += service
	return start, end
}

// NextFree returns the absolute time the server next becomes idle.
func (r *Resource) NextFree() time.Duration {
	if r.free < r.e.now {
		return r.e.now
	}
	return r.free
}

// Utilization returns BusyTime divided by the elapsed virtual time, or zero
// at time zero.
func (r *Resource) Utilization() float64 {
	if r.e.now == 0 {
		return 0
	}
	return float64(r.BusyTime) / float64(r.e.now)
}

// Pool is a bank of identical FCFS servers (e.g. the I/O servers of a
// parallel file system, or the parallel channels of a node-local storage
// controller). Requests may be routed explicitly by index (striping) or to
// the earliest-free server.
type Pool struct {
	Servers []*Resource
}

// NewPool creates n servers named "<name>[i]".
func NewPool(e *Engine, name string, n int) *Pool {
	if n <= 0 {
		panic("sim: pool must have at least one server")
	}
	p := &Pool{Servers: make([]*Resource, n)}
	for i := range p.Servers {
		p.Servers[i] = NewResource(e, fmt.Sprintf("%s[%d]", name, i))
	}
	return p
}

// Len returns the number of servers.
func (pl *Pool) Len() int { return len(pl.Servers) }

// Use routes the request to server idx modulo pool size.
func (pl *Pool) Use(p *Proc, idx int, service time.Duration) (wait, total time.Duration) {
	n := len(pl.Servers)
	i := idx % n
	if i < 0 {
		i += n
	}
	return pl.Servers[i].Use(p, service)
}

// UseLeastLoaded routes the request to the server that frees up earliest,
// breaking ties by lowest index. This models load-balanced metadata server
// clusters.
func (pl *Pool) UseLeastLoaded(p *Proc, service time.Duration) (wait, total time.Duration) {
	best := 0
	bestFree := pl.Servers[0].NextFree()
	for i := 1; i < len(pl.Servers); i++ {
		if f := pl.Servers[i].NextFree(); f < bestFree {
			best, bestFree = i, f
		}
	}
	return pl.Servers[best].Use(p, service)
}

// TotalServed sums requests served across all servers.
func (pl *Pool) TotalServed() int64 {
	var n int64
	for _, s := range pl.Servers {
		n += s.Served
	}
	return n
}

// Semaphore is a counting semaphore with a FIFO wait queue, used to model
// bounded parallelism such as the "# parallel ops" of a node-local storage
// controller (Table VIII).
type Semaphore struct {
	e     *Engine
	cap   int
	inUse int
	q     []*Proc

	// MaxInUse records the high-water mark of concurrent holders.
	MaxInUse int
}

// NewSemaphore creates a semaphore with the given capacity.
func NewSemaphore(e *Engine, capacity int) *Semaphore {
	if capacity <= 0 {
		panic("sim: semaphore capacity must be positive")
	}
	return &Semaphore{e: e, cap: capacity}
}

// Cap returns the capacity.
func (s *Semaphore) Cap() int { return s.cap }

// InUse returns the number of current holders.
func (s *Semaphore) InUse() int { return s.inUse }

// Acquire blocks the process until a slot is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.inUse < s.cap {
		s.inUse++
		if s.inUse > s.MaxInUse {
			s.MaxInUse = s.inUse
		}
		return
	}
	s.q = append(s.q, p)
	p.park()
}

// Release frees a slot, waking the longest-waiting process if any. The
// woken process resumes at the current virtual time and inherits the slot.
func (s *Semaphore) Release() {
	if len(s.q) > 0 {
		next := s.q[0]
		s.q = s.q[1:]
		s.e.wakeAt(s.e.now, next)
		return
	}
	if s.inUse == 0 {
		panic("sim: semaphore release without acquire")
	}
	s.inUse--
}

// Barrier synchronizes n processes: each caller blocks until all n have
// arrived, then all are released at the same virtual instant. It is the
// MPI_Barrier analogue and is reusable across repeated synchronization
// rounds.
type Barrier struct {
	e       *Engine
	n       int
	arrived int
	waiters []*Proc

	// Rounds counts completed barrier episodes.
	Rounds int64
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(e *Engine, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{e: e, n: n}
}

// N returns the participant count.
func (b *Barrier) N() int { return b.n }

// Wait blocks until all participants of the current round have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		for _, w := range b.waiters {
			b.e.wakeAt(b.e.now, w)
		}
		b.waiters = b.waiters[:0]
		b.arrived = 0
		b.Rounds++
		return
	}
	b.waiters = append(b.waiters, p)
	p.park()
}

// Gate is a one-shot latch: processes that Wait before Open block; Open
// releases all of them and all later Waits pass through immediately. It is
// used for producer/consumer dependencies in workflow stages.
type Gate struct {
	e       *Engine
	open    bool
	waiters []*Proc
}

// NewGate creates a closed gate.
func NewGate(e *Engine) *Gate { return &Gate{e: e} }

// Opened reports whether the gate has been opened.
func (g *Gate) Opened() bool { return g.open }

// Wait blocks until the gate opens.
func (g *Gate) Wait(p *Proc) {
	if g.open {
		return
	}
	g.waiters = append(g.waiters, p)
	p.park()
}

// Open releases all current and future waiters. Opening an open gate is a
// no-op.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	for _, w := range g.waiters {
		g.e.wakeAt(g.e.now, w)
	}
	g.waiters = nil
}

// WaitGroup tracks completion of a set of processes in virtual time.
type WaitGroup struct {
	e       *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup returns an empty wait group.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{e: e} }

// Add increments the outstanding-work counter.
func (w *WaitGroup) Add(n int) {
	w.count += n
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
}

// Done decrements the counter, releasing waiters when it reaches zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			w.e.wakeAt(w.e.now, p)
		}
		w.waiters = nil
	}
}

// Wait blocks the process until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park()
}
