package sim

import (
	"errors"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSingleProcSleep(t *testing.T) {
	e := NewEngine()
	var woke time.Duration
	e.Spawn("p", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	end := e.Run()
	if woke != 5*time.Second {
		t.Errorf("woke at %v, want 5s", woke)
	}
	if end != 5*time.Second {
		t.Errorf("Run returned %v, want 5s", end)
	}
}

func TestSleepNegativeTreatedAsZero(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("time advanced to %v after negative sleep", p.Now())
		}
	})
	e.Run()
}

func TestSleepUntilPastClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.Sleep(3 * time.Second)
		p.SleepUntil(time.Second) // in the past
		if p.Now() != 3*time.Second {
			t.Errorf("Now = %v, want 3s", p.Now())
		}
	})
	e.Run()
}

func TestMultipleProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		e.Spawn("a", func(p *Proc) {
			p.Sleep(2 * time.Second)
			order = append(order, "a2")
			p.Sleep(2 * time.Second)
			order = append(order, "a4")
		})
		e.Spawn("b", func(p *Proc) {
			p.Sleep(1 * time.Second)
			order = append(order, "b1")
			p.Sleep(2 * time.Second)
			order = append(order, "b3")
		})
		e.Run()
		return order
	}
	want := []string{"b1", "a2", "b3", "a4"}
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestSameTimeEventsRunFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal timestamps)", i, v, i)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine()
	var started time.Duration
	e.SpawnAt(7*time.Second, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 7*time.Second {
		t.Errorf("started at %v, want 7s", started)
	}
}

func TestNestedSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childEnd time.Duration
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		p.e.Spawn("child", func(c *Proc) {
			c.Sleep(2 * time.Second)
			childEnd = c.Now()
		})
		p.Sleep(5 * time.Second)
	})
	end := e.Run()
	if childEnd != 3*time.Second {
		t.Errorf("child finished at %v, want 3s", childEnd)
	}
	if end != 6*time.Second {
		t.Errorf("sim ended at %v, want 6s", end)
	}
}

func TestAfterCallback(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.After(4*time.Second, func() { at = e.Now() })
	e.Run()
	if at != 4*time.Second {
		t.Errorf("callback at %v, want 4s", at)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Second)
			ticks++
		}
	})
	e.RunUntil(10 * time.Second)
	if ticks != 10 {
		t.Errorf("ticks = %d, want 10", ticks)
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", e.Now())
	}
	// Resume to completion.
	e.Run()
	if ticks != 100 {
		t.Errorf("after Run, ticks = %d, want 100", ticks)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(9 * time.Second)
	if e.Now() != 9*time.Second {
		t.Errorf("Now = %v, want 9s even with no events", e.Now())
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on deadlock")
		}
	}()
	e := NewEngine()
	g := NewGate(e)
	e.Spawn("stuck", func(p *Proc) { g.Wait(p) })
	e.Run()
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when scheduling into the past")
		}
	}()
	e := NewEngine()
	e.At(time.Second, func() {
		e.At(0, func() {}) // now = 1s; scheduling at 0 is the past
	})
	e.Run()
}

func TestSleptAccounting(t *testing.T) {
	e := NewEngine()
	var slept time.Duration
	e.Spawn("p", func(p *Proc) {
		p.Sleep(3 * time.Second)
		p.Sleep(4 * time.Second)
		slept = p.Slept
	})
	e.Run()
	if slept != 7*time.Second {
		t.Errorf("Slept = %v, want 7s", slept)
	}
}

func TestProcIDsSequential(t *testing.T) {
	e := NewEngine()
	var ids []int
	for i := 0; i < 5; i++ {
		p := e.Spawn("p", func(p *Proc) {})
		ids = append(ids, p.ID())
	}
	e.Run()
	for i, id := range ids {
		if id != i {
			t.Errorf("ids[%d] = %d, want %d", i, id, i)
		}
	}
}

func TestEventsExecutedCounter(t *testing.T) {
	e := NewEngine()
	e.At(time.Second, func() {})
	e.At(2*time.Second, func() {})
	e.Run()
	if e.EventsExecuted != 2 {
		t.Errorf("EventsExecuted = %d, want 2", e.EventsExecuted)
	}
}

func TestManyProcsScale(t *testing.T) {
	e := NewEngine()
	const n = 2000
	done := 0
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(time.Duration(i%17) * time.Millisecond)
			done++
		})
	}
	e.Run()
	if done != n {
		t.Errorf("done = %d, want %d", done, n)
	}
	if e.Live() != 0 {
		t.Errorf("Live = %d, want 0", e.Live())
	}
}

func TestYieldOrdersSameInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a-first")
		p.Yield()
		order = append(order, "a-second")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b-first")
	})
	e.Run()
	want := []string{"a-first", "b-first", "a-second"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFailRecordsFirstError(t *testing.T) {
	e := NewEngine()
	errA := errors.New("first failure")
	errB := errors.New("second failure")
	e.Spawn("a", func(p *Proc) {
		p.Sleep(time.Millisecond)
		e.Fail(errA)
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		e.Fail(errB)
	})
	e.Run()
	if e.Err() != errA {
		t.Errorf("Err = %v, want the first recorded error", e.Err())
	}
	e.Fail(nil)
	if e.Err() != errA {
		t.Error("Fail(nil) overwrote the recorded error")
	}
}

func TestErrNilWithoutFailures(t *testing.T) {
	e := NewEngine()
	e.Spawn("ok", func(p *Proc) { p.Sleep(time.Millisecond) })
	e.Run()
	if e.Err() != nil {
		t.Errorf("Err = %v, want nil", e.Err())
	}
}
