package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestResourceFCFSQueueing(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk")
	var waits []time.Duration
	for i := 0; i < 4; i++ {
		e.Spawn("p", func(p *Proc) {
			wait, total := r.Use(p, time.Second)
			waits = append(waits, wait)
			if total != wait+time.Second {
				t.Errorf("total = %v, want wait+1s", total)
			}
		})
	}
	end := e.Run()
	if end != 4*time.Second {
		t.Errorf("4 serialized 1s requests ended at %v, want 4s", end)
	}
	for i, w := range waits {
		want := time.Duration(i) * time.Second
		if w != want {
			t.Errorf("waits[%d] = %v, want %v (FCFS arrival order)", i, w, want)
		}
	}
}

func TestResourceIdleBetweenRequests(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk")
	e.Spawn("p", func(p *Proc) {
		r.Use(p, time.Second)
		p.Sleep(10 * time.Second) // let the server idle
		wait, _ := r.Use(p, time.Second)
		if wait != 0 {
			t.Errorf("wait = %v after idle period, want 0", wait)
		}
	})
	end := e.Run()
	if end != 12*time.Second {
		t.Errorf("end = %v, want 12s", end)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk")
	e.Spawn("p", func(p *Proc) {
		r.Use(p, 2*time.Second)
		p.Sleep(2 * time.Second)
	})
	e.Run()
	if got := r.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
}

func TestResourceReserveAccumulates(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk")
	e.Spawn("p", func(p *Proc) {
		s1, e1 := r.Reserve(time.Second)
		s2, e2 := r.Reserve(time.Second)
		if s1 != 0 || e1 != time.Second {
			t.Errorf("first reserve [%v,%v), want [0,1s)", s1, e1)
		}
		if s2 != time.Second || e2 != 2*time.Second {
			t.Errorf("second reserve [%v,%v), want [1s,2s)", s2, e2)
		}
		// A blocking user now queues behind both reservations.
		wait, _ := r.Use(p, time.Second)
		if wait != 2*time.Second {
			t.Errorf("wait = %v, want 2s behind reservations", wait)
		}
	})
	e.Run()
}

func TestPoolStripedRouting(t *testing.T) {
	e := NewEngine()
	pl := NewPool(e, "oss", 4)
	e.Spawn("p", func(p *Proc) {
		// Requests to distinct servers do not queue on each other.
		for i := 0; i < 4; i++ {
			pl.Servers[i].Reserve(time.Second)
		}
		wait, _ := pl.Use(p, 5, time.Second) // 5 mod 4 = 1
		if wait != time.Second {
			t.Errorf("wait = %v, want 1s (queued behind one reservation)", wait)
		}
	})
	e.Run()
	if pl.TotalServed() != 5 {
		t.Errorf("TotalServed = %d, want 5", pl.TotalServed())
	}
}

func TestPoolNegativeIndexWraps(t *testing.T) {
	e := NewEngine()
	pl := NewPool(e, "oss", 4)
	e.Spawn("p", func(p *Proc) {
		pl.Use(p, -1, time.Second) // should map to server 3, not panic
	})
	e.Run()
	if pl.Servers[3].Served != 1 {
		t.Errorf("server 3 served %d, want 1", pl.Servers[3].Served)
	}
}

func TestPoolLeastLoaded(t *testing.T) {
	e := NewEngine()
	pl := NewPool(e, "mds", 3)
	e.Spawn("p", func(p *Proc) {
		pl.Servers[0].Reserve(10 * time.Second)
		pl.Servers[1].Reserve(5 * time.Second)
		wait, _ := pl.UseLeastLoaded(p, time.Second)
		if wait != 0 {
			t.Errorf("wait = %v, want 0 (server 2 idle)", wait)
		}
		if pl.Servers[2].Served != 1 {
			t.Errorf("least-loaded routing picked wrong server")
		}
	})
	e.Run()
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, 2)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		e.Spawn("p", func(p *Proc) {
			s.Acquire(p)
			p.Sleep(time.Second)
			s.Release()
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	if s.MaxInUse != 2 {
		t.Errorf("MaxInUse = %d, want 2", s.MaxInUse)
	}
	// Two finish at 1s, two at 2s.
	counts := map[time.Duration]int{}
	for _, f := range finish {
		counts[f]++
	}
	if counts[time.Second] != 2 || counts[2*time.Second] != 2 {
		t.Errorf("finish times %v, want two at 1s and two at 2s", finish)
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	s := NewSemaphore(e, 1)
	s.Release()
}

func TestBarrierReleasesAllAtOnce(t *testing.T) {
	e := NewEngine()
	const n = 8
	b := NewBarrier(e, n)
	var times []time.Duration
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("rank", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second) // staggered arrivals
			b.Wait(p)
			times = append(times, p.Now())
		})
	}
	e.Run()
	if len(times) != n {
		t.Fatalf("%d ranks passed barrier, want %d", len(times), n)
	}
	for _, tm := range times {
		if tm != 7*time.Second {
			t.Errorf("rank released at %v, want 7s (last arrival)", tm)
		}
	}
	if b.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", b.Rounds)
	}
}

func TestBarrierReusableAcrossRounds(t *testing.T) {
	e := NewEngine()
	const n, rounds = 4, 5
	b := NewBarrier(e, n)
	passed := 0
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("rank", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Sleep(time.Duration(i+1) * time.Millisecond)
				b.Wait(p)
				passed++
			}
		})
	}
	e.Run()
	if passed != n*rounds {
		t.Errorf("passed = %d, want %d", passed, n*rounds)
	}
	if b.Rounds != rounds {
		t.Errorf("Rounds = %d, want %d", b.Rounds, rounds)
	}
}

func TestGateReleasesWaitersAndPassesLateArrivals(t *testing.T) {
	e := NewEngine()
	g := NewGate(e)
	var early, late time.Duration
	e.Spawn("early", func(p *Proc) {
		g.Wait(p)
		early = p.Now()
	})
	e.Spawn("opener", func(p *Proc) {
		p.Sleep(3 * time.Second)
		g.Open()
	})
	e.Spawn("late", func(p *Proc) {
		p.Sleep(5 * time.Second)
		g.Wait(p) // already open: must not block
		late = p.Now()
	})
	e.Run()
	if early != 3*time.Second {
		t.Errorf("early waiter released at %v, want 3s", early)
	}
	if late != 5*time.Second {
		t.Errorf("late waiter at %v, want 5s (no blocking)", late)
	}
	if !g.Opened() {
		t.Error("gate should report opened")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(3)
	var waited time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second)
			wg.Done()
		})
	}
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		waited = p.Now()
	})
	e.Run()
	if waited != 3*time.Second {
		t.Errorf("waiter released at %v, want 3s", waited)
	}
}

func TestWaitGroupZeroPassesImmediately(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	e.Spawn("p", func(p *Proc) {
		wg.Wait(p)
		if p.Now() != 0 {
			t.Errorf("Wait on zero counter blocked until %v", p.Now())
		}
	})
	e.Run()
}

// Property: for any set of FCFS demands, the completion time equals the sum
// of demands (work conservation), and waits are non-decreasing in arrival
// order when all requests arrive at time zero.
func TestResourceWorkConservationProperty(t *testing.T) {
	f := func(demands []uint16) bool {
		if len(demands) == 0 || len(demands) > 64 {
			return true
		}
		e := NewEngine()
		r := NewResource(e, "disk")
		var sum time.Duration
		var waits []time.Duration
		for _, d := range demands {
			svc := time.Duration(d) * time.Microsecond
			sum += svc
			e.Spawn("p", func(p *Proc) {
				w, _ := r.Use(p, svc)
				waits = append(waits, w)
			})
		}
		end := e.Run()
		if end != sum {
			return false
		}
		for i := 1; i < len(waits); i++ {
			if waits[i] < waits[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a semaphore of capacity c never admits more than c concurrent
// holders, for any number of contenders and hold times.
func TestSemaphoreCapacityProperty(t *testing.T) {
	f := func(capRaw, nRaw uint8, holds []uint8) bool {
		c := int(capRaw%8) + 1
		n := int(nRaw%32) + 1
		e := NewEngine()
		s := NewSemaphore(e, c)
		for i := 0; i < n; i++ {
			h := time.Millisecond
			if len(holds) > 0 {
				h = time.Duration(holds[i%len(holds)]+1) * time.Millisecond
			}
			e.Spawn("p", func(p *Proc) {
				s.Acquire(p)
				p.Sleep(h)
				s.Release()
			})
		}
		e.Run()
		return s.MaxInUse <= c && s.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
