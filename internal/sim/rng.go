package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source for simulations. All stochastic
// elements of the substrates (service-time jitter, data-distribution
// sampling, workload think times) draw from an explicitly seeded RNG so
// that runs are reproducible; nothing in this repository uses the global
// math/rand state.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator from this one, used to give each
// rank or subsystem its own stream without coupling their consumption.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 sample in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a log-normal sample where the underlying normal has
// parameters mu and sigma.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns an exponential sample with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Gamma returns a gamma sample with the given shape k and scale theta,
// using the Marsaglia–Tsang method. CosmoFlow's voxel data distribution is
// characterized as gamma in Table VI; this sampler lets the synthetic
// dataset generator reproduce that shape.
func (g *RNG) Gamma(k, theta float64) float64 {
	if k <= 0 || theta <= 0 {
		panic("sim: gamma parameters must be positive")
	}
	if k < 1 {
		// Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
		u := g.r.Float64()
		return g.Gamma(k+1, theta) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// Perm returns a deterministic pseudorandom permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomly permutes n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Jitter returns v scaled by a uniform factor in [1-f, 1+f]. It models
// service-time noise; f <= 0 returns v unchanged and f is capped at 0.99 so
// the result stays positive.
func (g *RNG) Jitter(v float64, f float64) float64 {
	if f <= 0 {
		return v
	}
	if f > 0.99 {
		f = 0.99
	}
	return v * g.Uniform(1-f, 1+f)
}
