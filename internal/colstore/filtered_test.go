package colstore

// Selection-backed grouped execution: filtered chunks carry their block
// run summaries re-cut against the selection vector, so key spans, the
// code unifier and the dense grouped aggregations fire on filtered scans
// exactly as they do on whole blocks — with results identical to the
// materialized columns, and the filtered-capture and fallback counters
// moving by exact amounts.

import (
	"testing"

	"vani/internal/trace"
)

// assertKeySpansMatchColumns materializes every chunk and checks that the
// key spans tile it and agree with the columns row by row.
func assertKeySpansMatchColumns(t *testing.T, tb *Table) {
	t.Helper()
	for k := 0; k < tb.NumChunks(); k++ {
		spans, ok := tb.ChunkKeySpans(k, nil)
		if !ok {
			t.Fatalf("chunk %d: key spans not served", k)
		}
		c := tb.ChunkAt(k)
		if err := c.Require(trace.AllCols); err != nil {
			t.Fatal(err)
		}
		row := 0
		for _, s := range spans {
			if s.Lo != row {
				t.Fatalf("chunk %d: span starts at %d, want %d (spans must tile)", k, s.Lo, row)
			}
			for j := s.Lo; j < s.Hi; j++ {
				if c.Level[j] != s.Level || c.Rank[j] != s.Rank || c.Node[j] != s.Node ||
					c.App[j] != s.App || c.File[j] != s.File {
					t.Fatalf("chunk %d row %d: key span keys differ from columns", k, j)
				}
			}
			row = s.Hi
		}
		if row != c.N {
			t.Fatalf("chunk %d: spans cover %d rows of %d", k, row, c.N)
		}
	}
}

// TestSelectionBackedKeySpans: a single-dimension rank filter leaves every
// chunk selection-backed; the re-cut run summaries must serve key spans
// that match the materialized filtered columns, across codecs, with the
// filtered-capture counter moving once per chunk and the grouped
// aggregations equal to dense references over the filtered rows.
func TestSelectionBackedKeySpans(t *testing.T) {
	tr := groupTrace(3)
	f := trace.Filter{Ranks: []int32{1, 3, 5}}
	for _, codec := range []trace.CodecMode{
		trace.CodecAuto, trace.CodecForceRLE, trace.CodecForceDict, trace.CodecForceFOR,
	} {
		br := blockReaderFor(t, tr, trace.V2Options{Codec: codec})
		var stats ScanStats
		tb, err := FromBlocksSpec(br, 2, ScanSpec{Filter: f}, &stats)
		if err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
		sc := stats.Snapshot()
		if sc.GroupFilteredServed != int64(tb.NumChunks()) {
			t.Errorf("codec %v: filtered run capture served %d of %d chunks",
				codec, sc.GroupFilteredServed, tb.NumChunks())
		}
		if sc.GroupFilteredFallback != 0 {
			t.Errorf("codec %v: filtered run capture fell back on %d chunks, want 0",
				codec, sc.GroupFilteredFallback)
		}
		u, err := tb.UnifyCodes(ColFile, 1<<17)
		if err != nil {
			t.Fatalf("codec %v UnifyCodes: %v", codec, err)
		}
		if u == nil {
			t.Fatalf("codec %v: filtered file column not unifiable from re-cut summaries", codec)
		}
		if u.ServedChunks() != tb.NumChunks() {
			t.Errorf("codec %v: unifier served %d/%d filtered chunks without decoding",
				codec, u.ServedChunks(), tb.NumChunks())
		}
		slots := int(u.Card()) + 1
		hist, err := tb.GroupValueHist(2, ColFile, u)
		if err != nil {
			t.Fatalf("codec %v GroupValueHist: %v", codec, err)
		}
		sums, err := tb.GroupSumSize(2, ColFile, u)
		if err != nil {
			t.Fatalf("codec %v GroupSumSize: %v", codec, err)
		}
		cnts, err := tb.GroupCountEq(2, ColFile, u, ColRank, 3)
		if err != nil {
			t.Fatalf("codec %v GroupCountEq: %v", codec, err)
		}
		assertKeySpansMatchColumns(t, tb)
		if want := refGroupHist(tb, ColFile, slots); !int64sEqual(hist, want) {
			t.Errorf("codec %v: GroupValueHist = %v, want %v", codec, hist, want)
		}
		if want := refGroupSum(tb, ColFile, slots); !int64sEqual(sums, want) {
			t.Errorf("codec %v: GroupSumSize = %v, want %v", codec, sums, want)
		}
		if want := refGroupCountEq(tb, ColFile, slots, ColRank, 3); !int64sEqual(cnts, want) {
			t.Errorf("codec %v: GroupCountEq = %v, want %v", codec, cnts, want)
		}
	}
}

// TestMultiDimFilteredRunCapture: partial multi-dimension filters flow
// their selection spans from the run-intersection kernel into the re-cut
// (no re-derivation from the selection vector), and whole-pass filters
// keep the unfiltered block summaries — both end with key spans serving.
func TestMultiDimFilteredRunCapture(t *testing.T) {
	tr := groupTrace(3)
	t.Run("partial", func(t *testing.T) {
		f := trace.Filter{Ranks: []int32{1, 3, 5}, Ops: trace.OpClassData}
		br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecForceRLE})
		var stats ScanStats
		tb, err := FromBlocksSpec(br, 2, ScanSpec{Filter: f}, &stats)
		if err != nil {
			t.Fatal(err)
		}
		sc := stats.Snapshot()
		if sc.RunIsectServed == 0 {
			t.Fatal("multi-dimension filter did not take the run-intersection path")
		}
		if sc.GroupFilteredServed != int64(tb.NumChunks()) || sc.GroupFilteredFallback != 0 {
			t.Errorf("filtered run capture served %d / fell back %d over %d chunks",
				sc.GroupFilteredServed, sc.GroupFilteredFallback, tb.NumChunks())
		}
		assertKeySpansMatchColumns(t, tb)
	})
	t.Run("whole-pass", func(t *testing.T) {
		f := trace.Filter{
			Ranks:  []int32{0, 1, 2, 3, 4, 5, 6, 7},
			Levels: []trace.Level{trace.LevelPosix, trace.LevelApp},
		}
		br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecForceRLE})
		var stats ScanStats
		tb, err := FromBlocksSpec(br, 2, ScanSpec{Filter: f}, &stats)
		if err != nil {
			t.Fatal(err)
		}
		sc := stats.Snapshot()
		if sc.RowsKept != sc.RowsTotal {
			t.Fatalf("kept %d of %d rows, want all", sc.RowsKept, sc.RowsTotal)
		}
		// Every row passed: chunks are whole-block, the unfiltered capture
		// runs and the filtered-capture counters must not move at all.
		if sc.GroupFilteredServed != 0 || sc.GroupFilteredFallback != 0 {
			t.Errorf("whole-pass filter ticked filtered capture (%d served, %d fallback)",
				sc.GroupFilteredServed, sc.GroupFilteredFallback)
		}
		for k := 0; k < tb.NumChunks(); k++ {
			if !tb.ChunkAt(k).HasRuns(ColRank) {
				t.Fatalf("chunk %d: whole-pass filter lost the block run summary", k)
			}
		}
		assertKeySpansMatchColumns(t, tb)
	})
}

// TestCompressedSelMultiSpansMatchSel: the spans the run-intersection
// kernel emits alongside its selection vector are exactly the vector's
// maximal consecutive spans.
func TestCompressedSelMultiSpansMatchSel(t *testing.T) {
	tr := mixedTrace(2*ChunkRows + 901)
	f := trace.Filter{Ranks: []int32{1, 3, 5, 7}, Ops: trace.OpClassData}
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecForceRLE})
	m := f.NewMatcher()
	checked := 0
	for k := 0; k < br.NumBlocks(); k++ {
		bd, err := br.ReadBlock(k)
		if err != nil {
			t.Fatal(err)
		}
		sel, spans, all, ok, eligible := compressedSelMulti(m, m.NeedCols(), bd)
		if !eligible || !ok || all || sel == nil {
			continue
		}
		want := trace.AppendSelSpans(sel, nil)
		if len(spans) != len(want) {
			t.Fatalf("block %d: %d spans for %d maximal runs", k, len(spans), len(want))
		}
		for i := range spans {
			if spans[i] != want[i] {
				t.Fatalf("block %d span %d: %+v, want %+v", k, i, spans[i], want[i])
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no block took the partial run-intersection path")
	}
}

// TestGroupFallbackOncePerChunk pins the fallback accounting of a refused
// unification: exactly one KGroupAgg fallback tick for the refusing chunk
// — not one per key column — whether the refusal is an over-cap value on
// a served chunk or a selection-backed chunk with no re-cut summary.
func TestGroupFallbackOncePerChunk(t *testing.T) {
	defer SetGroupedKernelsEnabled(true)
	tr := groupTrace(3)
	f := trace.Filter{Ranks: []int32{1, 3, 5}}
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecForceRLE})

	t.Run("over-cap", func(t *testing.T) {
		var stats ScanStats
		tb, err := FromBlocksSpec(br, 2, ScanSpec{Filter: f}, &stats)
		if err != nil {
			t.Fatal(err)
		}
		base := stats.Snapshot()
		// Chunk 0 holds file ids {-1, 0, 1} and unifies under the cap;
		// chunk 1 reaches id 2 and refuses. Exactly one served tick and
		// one fallback tick must land, then the unifier gives up.
		u, err := tb.UnifyCodes(ColFile, 2)
		if err != nil {
			t.Fatalf("UnifyCodes: %v", err)
		}
		if u != nil {
			t.Fatal("UnifyCodes accepted file ids beyond the cap")
		}
		sc := stats.Snapshot()
		if d := sc.KernelFallback[KGroupAgg] - base.KernelFallback[KGroupAgg]; d != 1 {
			t.Errorf("refused chunk ticked %d KGroupAgg fallbacks, want exactly 1", d)
		}
		if d := sc.KernelServed[KGroupAgg] - base.KernelServed[KGroupAgg]; d != 1 {
			t.Errorf("unification before the refusal ticked %d served, want exactly 1", d)
		}
	})

	t.Run("no-summary", func(t *testing.T) {
		// Scanning with grouped kernels off skips the selection re-cut, so
		// the filtered chunks carry no summaries; flipping grouped back on,
		// the first chunk refuses (it would need a decode) with exactly one
		// fallback tick.
		SetGroupedKernelsEnabled(false)
		var stats ScanStats
		tb, err := FromBlocksSpec(br, 2, ScanSpec{Filter: f}, &stats)
		if err != nil {
			t.Fatal(err)
		}
		SetGroupedKernelsEnabled(true)
		base := stats.Snapshot()
		u, err := tb.UnifyCodes(ColFile, 1<<17)
		if err != nil {
			t.Fatalf("UnifyCodes: %v", err)
		}
		if u != nil {
			t.Fatal("UnifyCodes unified a filtered column with no summaries and no materialization")
		}
		sc := stats.Snapshot()
		if d := sc.KernelFallback[KGroupAgg] - base.KernelFallback[KGroupAgg]; d != 1 {
			t.Errorf("refused chunk ticked %d KGroupAgg fallbacks, want exactly 1", d)
		}
		if d := sc.KernelServed[KGroupAgg] - base.KernelServed[KGroupAgg]; d != 0 {
			t.Errorf("refusal path ticked %d served, want 0", d)
		}
	})
}
