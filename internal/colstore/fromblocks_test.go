package colstore

import (
	"bytes"
	"testing"

	"vani/internal/trace"
)

// TestChunkGeometryMatchesBlockDefault pins the contract the zero-copy
// ingest path rests on: a default-geometry VANITRC2 block holds exactly one
// chunk's worth of rows, so decoded column slices adopt as chunks directly.
func TestChunkGeometryMatchesBlockDefault(t *testing.T) {
	if ChunkRows != trace.DefaultBlockEvents {
		t.Fatalf("ChunkRows (%d) != trace.DefaultBlockEvents (%d): the FromBlocks zero-copy path never triggers",
			ChunkRows, trace.DefaultBlockEvents)
	}
}

// assertTablesEqual compares two tables row by row across every column.
func assertTablesEqual(t *testing.T, want, got *Table) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("row count %d != %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if want.Level(i) != got.Level(i) || want.Op(i) != got.Op(i) ||
			want.Lib(i) != got.Lib(i) || want.Rank(i) != got.Rank(i) ||
			want.Node(i) != got.Node(i) || want.App(i) != got.App(i) ||
			want.File(i) != got.File(i) || want.Offset(i) != got.Offset(i) ||
			want.Size(i) != got.Size(i) || want.Start(i) != got.Start(i) ||
			want.End(i) != got.End(i) {
			t.Fatalf("row %d differs between tables", i)
		}
	}
}

// blockReaderFor encodes tr as a VANITRC2 log and opens it through the
// seekable block reader.
func blockReaderFor(t *testing.T, tr *trace.Trace, opt trace.V2Options) *trace.BlockReader {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteV2With(&buf, tr, opt); err != nil {
		t.Fatal(err)
	}
	br, err := trace.NewBlockReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return br
}

// TestFromBlocksMatchesFromEvents: decoding a default-geometry block log
// through the zero-copy parallel path yields a table positionally identical
// to transposing the in-memory events, at every parallelism.
func TestFromBlocksMatchesFromEvents(t *testing.T) {
	// >2 chunks, with a partial tail chunk.
	tr := bigTrace(2*ChunkRows+123, 42)
	want := FromTrace(tr)
	for _, compress := range []bool{false, true} {
		br := blockReaderFor(t, tr, trace.V2Options{Compress: compress})
		for _, par := range []int{1, 4} {
			got, err := FromBlocks(br, par)
			if err != nil {
				t.Fatalf("FromBlocks(par=%d, compress=%v): %v", par, compress, err)
			}
			if got.NumChunks() != want.NumChunks() {
				t.Fatalf("chunk count %d != %d", got.NumChunks(), want.NumChunks())
			}
			assertTablesEqual(t, want, got)
		}
	}
}

// TestFromBlocksNonDefaultGeometry: logs written with a block size other
// than ChunkRows take the streaming Builder fallback and still produce an
// identical table.
func TestFromBlocksNonDefaultGeometry(t *testing.T) {
	tr := bigTrace(ChunkRows+777, 7)
	want := FromTrace(tr)
	br := blockReaderFor(t, tr, trace.V2Options{BlockEvents: 1000})
	got, err := FromBlocks(br, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, want, got)
}

// TestFromBlocksEmpty: an empty log produces an empty table, not an error.
func TestFromBlocksEmpty(t *testing.T) {
	br := blockReaderFor(t, &trace.Trace{}, trace.V2Options{})
	got, err := FromBlocks(br, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.NumChunks() != 0 {
		t.Errorf("empty log produced %d rows in %d chunks", got.Len(), got.NumChunks())
	}
}
