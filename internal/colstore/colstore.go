// Package colstore converts row-major trace logs into a column-major table
// and provides the filter/group-by/aggregate operations the analyzer is
// built on.
//
// The paper's Analyzer first converts Recorder's row-major logs to parquet
// "as a necessary first step, as filtering and aggregation operations in
// memory are highly inefficient for this format", then analyzes them
// out-of-core with DASK. This package plays the parquet+DASK role: each
// event field becomes a contiguous typed column, predicates scan single
// columns, and chunked iteration supports streamed aggregation. The
// row-vs-column ablation benchmark quantifies the paper's claim.
package colstore

import (
	"time"

	"vani/internal/trace"
)

// Table is a column-major event table. All columns have equal length N.
type Table struct {
	N      int
	Level  []uint8
	Op     []uint8
	Lib    []uint8
	Rank   []int32
	Node   []int32
	App    []int32
	File   []int32
	Offset []int64
	Size   []int64
	Start  []int64 // nanoseconds
	End    []int64 // nanoseconds
}

// FromTrace transposes a trace's events into columns.
func FromTrace(t *trace.Trace) *Table {
	n := len(t.Events)
	tb := &Table{
		N:      n,
		Level:  make([]uint8, n),
		Op:     make([]uint8, n),
		Lib:    make([]uint8, n),
		Rank:   make([]int32, n),
		Node:   make([]int32, n),
		App:    make([]int32, n),
		File:   make([]int32, n),
		Offset: make([]int64, n),
		Size:   make([]int64, n),
		Start:  make([]int64, n),
		End:    make([]int64, n),
	}
	for i := range t.Events {
		ev := &t.Events[i]
		tb.Level[i] = uint8(ev.Level)
		tb.Op[i] = uint8(ev.Op)
		tb.Lib[i] = uint8(ev.Lib)
		tb.Rank[i] = ev.Rank
		tb.Node[i] = ev.Node
		tb.App[i] = ev.App
		tb.File[i] = ev.File
		tb.Offset[i] = ev.Offset
		tb.Size[i] = ev.Size
		tb.Start[i] = int64(ev.Start)
		tb.End[i] = int64(ev.End)
	}
	return tb
}

// Pred is a row predicate.
type Pred func(i int) bool

// Indices returns the row indices satisfying pred, in order.
func (t *Table) Indices(pred Pred) []int {
	var idx []int
	for i := 0; i < t.N; i++ {
		if pred(i) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Select materializes the rows satisfying pred into a new table.
func (t *Table) Select(pred Pred) *Table {
	return t.Take(t.Indices(pred))
}

// Take materializes the given rows into a new table.
func (t *Table) Take(idx []int) *Table {
	out := &Table{
		N:      len(idx),
		Level:  make([]uint8, len(idx)),
		Op:     make([]uint8, len(idx)),
		Lib:    make([]uint8, len(idx)),
		Rank:   make([]int32, len(idx)),
		Node:   make([]int32, len(idx)),
		App:    make([]int32, len(idx)),
		File:   make([]int32, len(idx)),
		Offset: make([]int64, len(idx)),
		Size:   make([]int64, len(idx)),
		Start:  make([]int64, len(idx)),
		End:    make([]int64, len(idx)),
	}
	for j, i := range idx {
		out.Level[j] = t.Level[i]
		out.Op[j] = t.Op[i]
		out.Lib[j] = t.Lib[i]
		out.Rank[j] = t.Rank[i]
		out.Node[j] = t.Node[i]
		out.App[j] = t.App[i]
		out.File[j] = t.File[i]
		out.Offset[j] = t.Offset[i]
		out.Size[j] = t.Size[i]
		out.Start[j] = t.Start[i]
		out.End[j] = t.End[i]
	}
	return out
}

// IsData reports whether row i is a data op (read/write).
func (t *Table) IsData(i int) bool { return trace.Op(t.Op[i]).IsData() }

// IsMeta reports whether row i is a metadata op.
func (t *Table) IsMeta(i int) bool { return trace.Op(t.Op[i]).IsMeta() }

// IsIO reports whether row i is an I/O op at all.
func (t *Table) IsIO(i int) bool { return trace.Op(t.Op[i]).IsIO() }

// Dur returns the duration of row i.
func (t *Table) Dur(i int) time.Duration {
	return time.Duration(t.End[i] - t.Start[i])
}

// SumSize sums the Size column over all rows satisfying pred (nil = all).
func (t *Table) SumSize(pred Pred) int64 {
	var sum int64
	for i := 0; i < t.N; i++ {
		if pred == nil || pred(i) {
			sum += t.Size[i]
		}
	}
	return sum
}

// SumDur sums row durations over rows satisfying pred (nil = all).
func (t *Table) SumDur(pred Pred) time.Duration {
	var sum int64
	for i := 0; i < t.N; i++ {
		if pred == nil || pred(i) {
			sum += t.End[i] - t.Start[i]
		}
	}
	return time.Duration(sum)
}

// Count counts rows satisfying pred (nil = all).
func (t *Table) Count(pred Pred) int {
	if pred == nil {
		return t.N
	}
	n := 0
	for i := 0; i < t.N; i++ {
		if pred(i) {
			n++
		}
	}
	return n
}

// MinStart and MaxEnd return the table's time extent; both return 0 for an
// empty table.
func (t *Table) MinStart() time.Duration {
	if t.N == 0 {
		return 0
	}
	min := t.Start[0]
	for _, s := range t.Start[1:] {
		if s < min {
			min = s
		}
	}
	return time.Duration(min)
}

// MaxEnd returns the latest end time in the table.
func (t *Table) MaxEnd() time.Duration {
	var max int64
	for _, e := range t.End {
		if e > max {
			max = e
		}
	}
	return time.Duration(max)
}

// GroupBy groups row indices by an int32 key column (e.g. File, Rank, App).
// Keys appear in first-encounter order in the Keys slice so iteration is
// deterministic.
type GroupBy struct {
	Keys   []int32
	Groups map[int32][]int
}

// GroupByCol builds groups over the given column, which must be one of the
// table's int32 columns.
func (t *Table) GroupByCol(col []int32) *GroupBy {
	g := &GroupBy{Groups: make(map[int32][]int)}
	for i := 0; i < t.N; i++ {
		k := col[i]
		if _, ok := g.Groups[k]; !ok {
			g.Keys = append(g.Keys, k)
		}
		g.Groups[k] = append(g.Groups[k], i)
	}
	return g
}

// Chunk is one block of rows for out-of-core style processing.
type Chunk struct {
	Table *Table
	Lo    int // first row (inclusive)
	Hi    int // last row (exclusive)
}

// ForEachChunk invokes fn over consecutive row blocks of at most chunkSize
// rows, the streamed-aggregation pattern the paper runs through DASK.
func (t *Table) ForEachChunk(chunkSize int, fn func(Chunk)) {
	if chunkSize <= 0 {
		chunkSize = 1 << 16
	}
	for lo := 0; lo < t.N; lo += chunkSize {
		hi := lo + chunkSize
		if hi > t.N {
			hi = t.N
		}
		fn(Chunk{Table: t, Lo: lo, Hi: hi})
	}
}
