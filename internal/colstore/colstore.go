// Package colstore converts row-major trace logs into a chunked
// column-major table and provides the filter/group-by/aggregate operations
// the analyzer is built on.
//
// The paper's Analyzer first converts Recorder's row-major logs to parquet
// "as a necessary first step, as filtering and aggregation operations in
// memory are highly inefficient for this format", then analyzes them
// out-of-core and in parallel with DASK. This package plays the
// parquet+DASK role: each event field becomes a typed column stored in
// fixed-size chunks (the parquet row-group / DASK partition analogue),
// scan kernels fan out over chunks via a bounded worker pool and reduce
// their per-chunk partials in chunk order — so parallel aggregation is
// bit-identical to sequential — and a fused multi-aggregate scan answers
// many predicates in a single pass over the data. The row-vs-column
// ablation benchmark quantifies the paper's claim.
package colstore

import (
	"time"

	"vani/internal/parallel"
	"vani/internal/trace"
)

// Chunk geometry. ChunkRows is a power of two so global row indices locate
// their chunk with a shift and mask.
const (
	chunkShift = 14
	// ChunkRows is the fixed number of rows per chunk (the last chunk of a
	// table may hold fewer).
	ChunkRows = 1 << chunkShift
	chunkMask = ChunkRows - 1
)

// Chunk is one block of rows with contiguous per-column storage. Base is
// the global index of row 0, so global row i lives at chunk index i-Base.
// Chunks built eagerly hold every column at length N; chunks built by
// FromBlocksSpec materialize columns on demand — a column slice is nil
// until Require (or Table.Materialize) decodes it, so kernels must Require
// the columns they read before touching a planned table's slices.
type Chunk struct {
	Base int
	N    int

	Level  []uint8
	Op     []uint8
	Lib    []uint8
	Rank   []int32
	Node   []int32
	App    []int32
	File   []int32
	Offset []int64
	Size   []int64
	Start  []int64 // nanoseconds
	End    []int64 // nanoseconds

	lazy *lazySrc // undecoded remainder; nil once fully materialized

	// runs holds value-run summaries for the run columns (the groupable key
	// columns ColRank..ColFile, then level and op), captured from v2.2 block
	// payloads when the chunk keeps every block row — RLE runs directly,
	// dict segments as coalesced code runs. Nil entries mean no summary;
	// kernels fall back to row iteration. runCodec records each summary's
	// source segment codec, the registry key for kernel dispatch.
	runs     [numRunCols][]trace.Run
	runCodec [numRunCols]uint8
}

func newChunk(base, rows int) *Chunk {
	return &Chunk{
		Base:   base,
		N:      rows,
		Level:  make([]uint8, rows),
		Op:     make([]uint8, rows),
		Lib:    make([]uint8, rows),
		Rank:   make([]int32, rows),
		Node:   make([]int32, rows),
		App:    make([]int32, rows),
		File:   make([]int32, rows),
		Offset: make([]int64, rows),
		Size:   make([]int64, rows),
		Start:  make([]int64, rows),
		End:    make([]int64, rows),
	}
}

func (c *Chunk) set(j int, ev *trace.Event) {
	c.Level[j] = uint8(ev.Level)
	c.Op[j] = uint8(ev.Op)
	c.Lib[j] = uint8(ev.Lib)
	c.Rank[j] = ev.Rank
	c.Node[j] = ev.Node
	c.App[j] = ev.App
	c.File[j] = ev.File
	c.Offset[j] = ev.Offset
	c.Size[j] = ev.Size
	c.Start[j] = int64(ev.Start)
	c.End[j] = int64(ev.End)
}

// copyRow copies row j of src into row k of c.
func (c *Chunk) copyRow(k int, src *Chunk, j int) {
	c.Level[k] = src.Level[j]
	c.Op[k] = src.Op[j]
	c.Lib[k] = src.Lib[j]
	c.Rank[k] = src.Rank[j]
	c.Node[k] = src.Node[j]
	c.App[k] = src.App[j]
	c.File[k] = src.File[j]
	c.Offset[k] = src.Offset[j]
	c.Size[k] = src.Size[j]
	c.Start[k] = src.Start[j]
	c.End[k] = src.End[j]
}

// Table is a chunked column-major event table. Eagerly built tables have
// uniform geometry (every chunk but the last holds ChunkRows rows); tables
// produced by a filtering scan may hold irregular chunks, located by
// binary search instead of shift/mask.
type Table struct {
	n       int
	chunks  []*Chunk
	uniform bool // chunks[k].Base == k<<chunkShift for all k

	// stats is the scan's ScanStats when the table came from a planned
	// block scan; kernel served/fallback requests tick into it. Nil for
	// eagerly built tables.
	stats *ScanStats
}

// Len returns the number of rows.
func (t *Table) Len() int { return t.n }

// NumChunks returns the number of fixed-size chunks.
func (t *Table) NumChunks() int { return len(t.chunks) }

// ChunkAt returns chunk k.
func (t *Table) ChunkAt(k int) *Chunk { return t.chunks[k] }

// loc resolves a global row index to its chunk and in-chunk index: a shift
// and mask for uniform geometry, a binary search over chunk bases for the
// irregular chunks a filtering scan produces.
func (t *Table) loc(i int) (*Chunk, int) {
	if t.uniform {
		return t.chunks[i>>chunkShift], i & chunkMask
	}
	lo, hi := 0, len(t.chunks)
	for lo < hi {
		mid := (lo + hi) >> 1
		if t.chunks[mid].Base <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c := t.chunks[lo-1]
	return c, i - c.Base
}

// Per-row accessors. Scan kernels iterate chunks directly; these exist for
// the random-access passes (phase building, pattern classification) that
// run over small merged row sets.

// Level returns the level column value of row i.
func (t *Table) Level(i int) uint8 { c, j := t.loc(i); return c.Level[j] }

// Op returns the op column value of row i.
func (t *Table) Op(i int) uint8 { c, j := t.loc(i); return c.Op[j] }

// Lib returns the lib column value of row i.
func (t *Table) Lib(i int) uint8 { c, j := t.loc(i); return c.Lib[j] }

// Rank returns the rank column value of row i.
func (t *Table) Rank(i int) int32 { c, j := t.loc(i); return c.Rank[j] }

// Node returns the node column value of row i.
func (t *Table) Node(i int) int32 { c, j := t.loc(i); return c.Node[j] }

// App returns the app column value of row i.
func (t *Table) App(i int) int32 { c, j := t.loc(i); return c.App[j] }

// File returns the file column value of row i.
func (t *Table) File(i int) int32 { c, j := t.loc(i); return c.File[j] }

// Offset returns the offset column value of row i.
func (t *Table) Offset(i int) int64 { c, j := t.loc(i); return c.Offset[j] }

// Size returns the size column value of row i.
func (t *Table) Size(i int) int64 { c, j := t.loc(i); return c.Size[j] }

// Start returns the start time of row i in nanoseconds.
func (t *Table) Start(i int) int64 { c, j := t.loc(i); return c.Start[j] }

// End returns the end time of row i in nanoseconds.
func (t *Table) End(i int) int64 { c, j := t.loc(i); return c.End[j] }

// IsData reports whether row i is a data op (read/write).
func (t *Table) IsData(i int) bool { return trace.Op(t.Op(i)).IsData() }

// IsMeta reports whether row i is a metadata op.
func (t *Table) IsMeta(i int) bool { return trace.Op(t.Op(i)).IsMeta() }

// IsIO reports whether row i is an I/O op at all.
func (t *Table) IsIO(i int) bool { return trace.Op(t.Op(i)).IsIO() }

// Dur returns the duration of row i.
func (t *Table) Dur(i int) time.Duration {
	c, j := t.loc(i)
	return time.Duration(c.End[j] - c.Start[j])
}

// Builder appends events into a chunked table, the streaming construction
// path: events scanned off disk flow straight into column chunks without a
// []Event ever materializing.
type Builder struct {
	t    *Table
	last *Chunk // capacity ChunkRows; N tracks fill
}

// NewBuilder returns an empty table builder.
func NewBuilder() *Builder { return &Builder{t: &Table{uniform: true}} }

// Append adds one event as the next row.
func (b *Builder) Append(ev *trace.Event) {
	if b.last == nil || b.last.N == ChunkRows {
		b.last = newChunk(b.t.n, ChunkRows)
		b.last.N = 0
		b.t.chunks = append(b.t.chunks, b.last)
	}
	b.last.set(b.last.N, ev)
	b.last.N++
	b.t.n++
}

// AppendEvents adds a batch of events.
func (b *Builder) AppendEvents(evs []trace.Event) {
	for i := range evs {
		b.Append(&evs[i])
	}
}

// Len returns the number of rows appended so far.
func (b *Builder) Len() int { return b.t.n }

// Finish seals and returns the table. The builder must not be used after.
func (b *Builder) Finish() *Table {
	t := b.t
	b.t, b.last = nil, nil
	if k := len(t.chunks); k > 0 {
		t.chunks[k-1].trim()
	}
	return t
}

// trim reslices a partially filled chunk's columns to its row count so
// range loops over columns never see unfilled tail rows.
func (c *Chunk) trim() {
	n := c.N
	c.Level = c.Level[:n]
	c.Op = c.Op[:n]
	c.Lib = c.Lib[:n]
	c.Rank = c.Rank[:n]
	c.Node = c.Node[:n]
	c.App = c.App[:n]
	c.File = c.File[:n]
	c.Offset = c.Offset[:n]
	c.Size = c.Size[:n]
	c.Start = c.Start[:n]
	c.End = c.End[:n]
}

// FromTrace transposes a trace's events into column chunks, one worker per
// chunk (transposition is positional, so parallelism cannot affect the
// result).
func FromTrace(t *trace.Trace) *Table { return FromEvents(t.Events, 0) }

// FromEvents transposes an event slice into column chunks using up to par
// workers (par <= 0 means GOMAXPROCS).
func FromEvents(evs []trace.Event, par int) *Table {
	n := len(evs)
	tb := &Table{n: n, uniform: true}
	nchunks := (n + ChunkRows - 1) / ChunkRows
	tb.chunks = make([]*Chunk, nchunks)
	parallel.ForEach(par, nchunks, func(k int) {
		lo := k << chunkShift
		hi := lo + ChunkRows
		if hi > n {
			hi = n
		}
		c := newChunk(lo, hi-lo)
		for j, i := 0, lo; i < hi; i, j = i+1, j+1 {
			c.set(j, &evs[i])
		}
		tb.chunks[k] = c
	})
	return tb
}

// FromBlocks decodes a VANITRC2 block log straight into column chunks,
// fanning block decode out over up to par workers (par <= 0 means
// GOMAXPROCS). When the log's block size matches ChunkRows — the default
// writer geometry — each decoded block's column slices are adopted as one
// chunk with no copy and no intermediate Event structs, which is what makes
// ingest parallel end-to-end. Other geometries fall back to streaming the
// blocks through a Builder. Either way the table is positionally identical
// to the serial scanner path at any worker count.
func FromBlocks(br *trace.BlockReader, par int) (*Table, error) {
	nb := br.NumBlocks()
	if br.BlockEvents() != ChunkRows {
		b := NewBuilder()
		var buf []trace.Event
		for k := 0; k < nb; k++ {
			evs, err := br.DecodeEvents(k, buf)
			if err != nil {
				return nil, err
			}
			b.AppendEvents(evs)
			buf = evs
		}
		return b.Finish(), nil
	}
	chunks := make([]*Chunk, nb)
	errs := make([]error, nb)
	parallel.ForEach(par, nb, func(k int) {
		var cols trace.Columns
		if err := br.DecodeColumns(k, &cols); err != nil {
			errs[k] = err
			return
		}
		chunks[k] = &Chunk{
			Base:   k << chunkShift,
			N:      cols.N,
			Level:  cols.Level,
			Op:     cols.Op,
			Lib:    cols.Lib,
			Rank:   cols.Rank,
			Node:   cols.Node,
			App:    cols.App,
			File:   cols.File,
			Offset: cols.Offset,
			Size:   cols.Size,
			Start:  cols.Start,
			End:    cols.End,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	t := &Table{chunks: chunks, uniform: true}
	for _, c := range chunks {
		t.n += c.N
	}
	return t, nil
}

// Pred is a row predicate over global row indices.
type Pred func(i int) bool

// Indices returns the row indices satisfying pred, in order.
func (t *Table) Indices(pred Pred) []int {
	var idx []int
	for _, c := range t.chunks {
		for j := 0; j < c.N; j++ {
			if pred(c.Base + j) {
				idx = append(idx, c.Base+j)
			}
		}
	}
	return idx
}

// Select materializes the rows satisfying pred into a new table.
func (t *Table) Select(pred Pred) *Table {
	return t.Take(t.Indices(pred))
}

// Take materializes the given rows into a new table.
func (t *Table) Take(idx []int) *Table {
	out := &Table{n: len(idx), uniform: true}
	for len(idx) > 0 {
		rows := len(idx)
		if rows > ChunkRows {
			rows = ChunkRows
		}
		c := newChunk(len(out.chunks)<<chunkShift, rows)
		for k := 0; k < rows; k++ {
			src, j := t.loc(idx[k])
			c.copyRow(k, src, j)
		}
		out.chunks = append(out.chunks, c)
		idx = idx[rows:]
	}
	return out
}

// Count counts rows satisfying pred (nil = all), fanning out over chunks
// with up to par workers (par <= 0 means GOMAXPROCS, 1 is sequential).
func (t *Table) Count(par int, pred Pred) int {
	if pred == nil {
		return t.n
	}
	parts := make([]int64, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		var n int64
		for j := 0; j < c.N; j++ {
			if pred(c.Base + j) {
				n++
			}
		}
		parts[k] = n
	})
	var n int64
	for _, p := range parts {
		n += p
	}
	return int(n)
}

// SumSize sums the Size column over rows satisfying pred (nil = all),
// chunk-parallel with a deterministic in-order reduction.
func (t *Table) SumSize(par int, pred Pred) int64 {
	parts := make([]int64, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		var sum int64
		if pred == nil {
			for _, s := range c.Size {
				sum += s
			}
		} else {
			for j := 0; j < c.N; j++ {
				if pred(c.Base + j) {
					sum += c.Size[j]
				}
			}
		}
		parts[k] = sum
	})
	var sum int64
	for _, p := range parts {
		sum += p
	}
	return sum
}

// SumDur sums row durations over rows satisfying pred (nil = all),
// chunk-parallel with a deterministic in-order reduction.
func (t *Table) SumDur(par int, pred Pred) time.Duration {
	parts := make([]int64, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		var sum int64
		for j := 0; j < c.N; j++ {
			if pred == nil || pred(c.Base+j) {
				sum += c.End[j] - c.Start[j]
			}
		}
		parts[k] = sum
	})
	var sum int64
	for _, p := range parts {
		sum += p
	}
	return time.Duration(sum)
}

// Agg is one aggregate slot of a fused scan: rows matching Pred contribute
// to Count, Bytes (Size column) and DurNS (End-Start).
type Agg struct {
	Pred  Pred
	Count int64
	Bytes int64
	DurNS int64
}

// Dur returns the accumulated duration.
func (a *Agg) Dur() time.Duration { return time.Duration(a.DurNS) }

// Scan computes every aggregate in a single fused pass over the table:
// each chunk is scanned once, evaluating all predicates per row, and the
// per-chunk partials reduce in chunk order, so one traversal of the data
// answers many questions and the result is identical at any parallelism.
func (t *Table) Scan(par int, aggs ...*Agg) {
	if len(aggs) == 0 {
		return
	}
	parts := make([][]Agg, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		local := make([]Agg, len(aggs))
		for j := 0; j < c.N; j++ {
			i := c.Base + j
			for a := range aggs {
				if aggs[a].Pred == nil || aggs[a].Pred(i) {
					local[a].Count++
					local[a].Bytes += c.Size[j]
					local[a].DurNS += c.End[j] - c.Start[j]
				}
			}
		}
		parts[k] = local
	})
	for _, local := range parts {
		for a := range aggs {
			aggs[a].Count += local[a].Count
			aggs[a].Bytes += local[a].Bytes
			aggs[a].DurNS += local[a].DurNS
		}
	}
}

// MinStart returns the table's earliest start time (0 for an empty table).
func (t *Table) MinStart() time.Duration {
	if t.n == 0 {
		return 0
	}
	min := t.chunks[0].Start[0]
	for _, c := range t.chunks {
		for _, s := range c.Start {
			if s < min {
				min = s
			}
		}
	}
	return time.Duration(min)
}

// MaxEnd returns the latest end time in the table (0 for an empty table).
func (t *Table) MaxEnd() time.Duration {
	var max int64
	for _, c := range t.chunks {
		for _, e := range c.End {
			if e > max {
				max = e
			}
		}
	}
	return time.Duration(max)
}

// Col names an int32 key column for group-by operations.
type Col int

// Groupable columns.
const (
	ColRank Col = iota
	ColNode
	ColApp
	ColFile
)

func (c *Chunk) col(col Col) []int32 {
	switch col {
	case ColRank:
		return c.Rank
	case ColNode:
		return c.Node
	case ColApp:
		return c.App
	case ColFile:
		return c.File
	}
	return nil
}

// GroupBy groups row indices by an int32 key column. Keys appear in
// first-encounter order (by row) in the Keys slice so iteration is
// deterministic at any parallelism.
type GroupBy struct {
	Keys   []int32
	Groups map[int32][]int
}

// GroupByCol builds groups over the given key column, chunk-parallel: each
// chunk groups its own rows, then the per-chunk partials merge in chunk
// order, which reproduces the sequential first-encounter key order and
// ascending row order within every group.
func (t *Table) GroupByCol(par int, col Col) *GroupBy {
	parts := make([]*GroupBy, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		g := &GroupBy{Groups: make(map[int32][]int)}
		if KernelsEnabled() && c.runUsable(KGroupBy, int(col)) {
			// Run kernel: one map probe and one range append per run.
			// Runs are in row order, so first-encounter key order and
			// ascending row order match the row loop exactly.
			t.tickKernel(KGroupBy, true)
			row := 0
			for _, r := range c.runs[col] {
				key := int32(r.Val)
				rows, ok := g.Groups[key]
				if !ok {
					g.Keys = append(g.Keys, key)
				}
				for x := 0; x < int(r.N); x++ {
					rows = append(rows, c.Base+row+x)
				}
				g.Groups[key] = rows
				row += int(r.N)
			}
			parts[k] = g
			return
		}
		t.tickKernel(KGroupBy, false)
		keys := c.col(col)
		for j := 0; j < c.N; j++ {
			key := keys[j]
			if _, ok := g.Groups[key]; !ok {
				g.Keys = append(g.Keys, key)
			}
			g.Groups[key] = append(g.Groups[key], c.Base+j)
		}
		parts[k] = g
	})
	out := &GroupBy{Groups: make(map[int32][]int)}
	for _, g := range parts {
		for _, key := range g.Keys {
			if _, ok := out.Groups[key]; !ok {
				out.Keys = append(out.Keys, key)
			}
			out.Groups[key] = append(out.Groups[key], g.Groups[key]...)
		}
	}
	return out
}

// ForEachChunk invokes fn over the table's chunks in order — the streamed
// aggregation pattern the paper runs through DASK partitions.
func (t *Table) ForEachChunk(fn func(*Chunk)) {
	for _, c := range t.chunks {
		fn(c)
	}
}
