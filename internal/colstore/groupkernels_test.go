package colstore

import (
	"testing"
	"time"

	"vani/internal/trace"
)

// groupTrace builds a multi-block trace shaped like the real analyzer
// workload: op alternates every event (so the six-column span kernel can
// never fire) while the five key columns arrive in runs, and the per-block
// file dictionaries differ — blocks 0 and 1 touch disjoint file sets,
// block 2 overlaps block 1 — with a sprinkling of File == -1 rows.
func groupTrace(nblocks int) *trace.Trace {
	tr := trace.NewTracer()
	apps := []int32{tr.AppID("sim"), tr.AppID("post")}
	files := []int32{
		tr.FileID("/a"), tr.FileID("/b"), // block 0
		tr.FileID("/c"), tr.FileID("/d"), // block 1
	}
	blockFiles := [][]int32{
		{files[0], files[1]},
		{files[2], files[3]},
		{files[1], files[2]}, // overlaps both earlier dictionaries
	}
	ops := []trace.Op{trace.OpWrite, trace.OpRead}
	var clock time.Duration
	n := nblocks * ChunkRows
	for i := 0; i < n; i++ {
		blk := i / ChunkRows
		bf := blockFiles[blk%len(blockFiles)]
		file := bf[i/601%len(bf)]
		if i%97 == 0 {
			file = -1 // no-file rows: the unifier must report HasNeg
		}
		clock += time.Nanosecond
		rank := int32(i / 501 % 8)
		tr.Record(trace.Event{
			Level: trace.LevelPosix, Op: ops[i%len(ops)],
			Rank: rank, Node: rank / 4,
			App: apps[blk%len(apps)], File: file,
			Offset: int64(i) * 256, Size: int64(i%7) * 1024,
			Start: clock, End: clock + time.Nanosecond,
		})
	}
	return tr.Finish()
}

// refGroupHist/refGroupSum/refGroupCountEq are the map-free references:
// dense accumulations over the fully materialized table.
func refGroupHist(tb *Table, col Col, slots int) []int64 {
	h := make([]int64, slots)
	for k := 0; k < tb.NumChunks(); k++ {
		c := tb.ChunkAt(k)
		for _, v := range c.col(col) {
			h[slot(v)]++
		}
	}
	return h
}

func refGroupSum(tb *Table, col Col, slots int) []int64 {
	h := make([]int64, slots)
	for k := 0; k < tb.NumChunks(); k++ {
		c := tb.ChunkAt(k)
		keys := c.col(col)
		for j := 0; j < c.N; j++ {
			h[slot(keys[j])] += c.Size[j]
		}
	}
	return h
}

func refGroupCountEq(tb *Table, col Col, slots int, other Col, val int32) []int64 {
	h := make([]int64, slots)
	for k := 0; k < tb.NumChunks(); k++ {
		c := tb.ChunkAt(k)
		keys, os := c.col(col), c.col(other)
		for j := 0; j < c.N; j++ {
			if os[j] == val {
				h[slot(keys[j])]++
			}
		}
	}
	return h
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCodeUnifierAcrossBlockDictionaries: the unifier resolves cardinality
// and per-block code tables from segment headers alone, across blocks with
// disjoint and overlapping dictionaries, and the grouped kernels built on
// it match dense accumulation over materialized columns — with grouped
// kernels forced off as well (the fallback arms).
func TestCodeUnifierAcrossBlockDictionaries(t *testing.T) {
	defer SetGroupedKernelsEnabled(true)
	tr := groupTrace(3)
	codecs := map[string]trace.CodecMode{
		"auto": trace.CodecAuto,
		"dict": trace.CodecForceDict,
		"rle":  trace.CodecForceRLE,
		"for":  trace.CodecForceFOR,
	}
	for cname, codec := range codecs {
		br := blockReaderFor(t, tr, trace.V2Options{Codec: codec})
		for _, grouped := range []bool{true, false} {
			SetGroupedKernelsEnabled(grouped)
			tb, err := FromBlocksSpec(br, 2, ScanSpec{}, nil)
			if err != nil {
				t.Fatalf("%s scan: %v", cname, err)
			}
			if !grouped {
				// With the kernels off the segment headers are out of
				// reach, and the unifier must refuse rather than decode
				// columns on the caller's behalf.
				if u, err := tb.UnifyCodes(ColFile, 1<<17); err != nil || u != nil {
					t.Fatalf("%s grouped-off: UnifyCodes on unmaterialized chunks = (%v, %v), want (nil, nil)", cname, u, err)
				}
				if err := tb.Materialize(2, trace.AllCols); err != nil {
					t.Fatal(err)
				}
			}
			u, err := tb.UnifyCodes(ColFile, 1<<17)
			if err != nil {
				t.Fatalf("%s UnifyCodes: %v", cname, err)
			}
			if u == nil {
				t.Fatalf("%s: file column not densely unifiable", cname)
			}
			if !u.HasNeg() {
				t.Errorf("%s: HasNeg = false, want true (File stores -1)", cname)
			}
			if u.Card() != 4 {
				t.Errorf("%s: Card = %d, want 4", cname, u.Card())
			}
			if grouped && u.ServedChunks() != tb.NumChunks() {
				t.Errorf("%s grouped: unifier served %d/%d chunks from headers",
					cname, u.ServedChunks(), tb.NumChunks())
			}
			if !grouped && u.ServedChunks() != 0 {
				t.Errorf("%s grouped-off: unifier served %d chunks, want 0",
					cname, u.ServedChunks())
			}
			slots := int(u.Card()) + 1
			hist, err := tb.GroupValueHist(2, ColFile, u)
			if err != nil {
				t.Fatalf("%s GroupValueHist: %v", cname, err)
			}
			sums, err := tb.GroupSumSize(2, ColFile, u)
			if err != nil {
				t.Fatalf("%s GroupSumSize: %v", cname, err)
			}
			cnts, err := tb.GroupCountEq(2, ColFile, u, ColRank, 3)
			if err != nil {
				t.Fatalf("%s GroupCountEq: %v", cname, err)
			}
			// The reference materializes everything after the kernels ran.
			if err := tb.Materialize(2, trace.AllCols); err != nil {
				t.Fatal(err)
			}
			if want := refGroupHist(tb, ColFile, slots); !int64sEqual(hist, want) {
				t.Errorf("%s grouped=%v: GroupValueHist = %v, want %v", cname, grouped, hist, want)
			}
			if want := refGroupSum(tb, ColFile, slots); !int64sEqual(sums, want) {
				t.Errorf("%s grouped=%v: GroupSumSize = %v, want %v", cname, grouped, sums, want)
			}
			if want := refGroupCountEq(tb, ColFile, slots, ColRank, 3); !int64sEqual(cnts, want) {
				t.Errorf("%s grouped=%v: GroupCountEq = %v, want %v", cname, grouped, cnts, want)
			}
		}
		SetGroupedKernelsEnabled(true)
	}
}

// TestKeySpansServeFORCodedKeys: with every segment forced to FOR, the
// key-span kernel still tiles chunks from coalesced base+offset runs —
// the codec the unifier and key columns previously fell back on.
func TestKeySpansServeFORCodedKeys(t *testing.T) {
	tr := groupTrace(2)
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecForceFOR})
	var stats ScanStats
	tb, err := FromBlocksSpec(br, 1, ScanSpec{}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < tb.NumChunks(); k++ {
		spans, ok := tb.ChunkKeySpans(k, nil)
		if !ok {
			t.Fatalf("chunk %d: key spans not served from FOR segments", k)
		}
		c := tb.ChunkAt(k)
		if err := c.Require(trace.AllCols); err != nil {
			t.Fatal(err)
		}
		row := 0
		for _, s := range spans {
			if s.Lo != row {
				t.Fatalf("chunk %d: span starts at %d, want %d (spans must tile)", k, s.Lo, row)
			}
			for j := s.Lo; j < s.Hi; j++ {
				if c.Level[j] != s.Level || c.Rank[j] != s.Rank || c.Node[j] != s.Node ||
					c.App[j] != s.App || c.File[j] != s.File {
					t.Fatalf("chunk %d row %d: key span keys differ from columns", k, j)
				}
			}
			row = s.Hi
		}
		if row != c.N {
			t.Fatalf("chunk %d: spans cover %d rows of %d", k, row, c.N)
		}
	}
	if served := stats.KernelServed[KKeySpan].Load(); served == 0 {
		t.Error("KKeySpan served counter did not move on FOR-coded keys")
	}
}

// TestUnifyCodesRejectsOverCap: values at or above the cap send callers to
// the map-keyed path via a nil unifier, not an error and not a panic.
func TestUnifyCodesRejectsOverCap(t *testing.T) {
	tr := groupTrace(2) // block 1 reaches file ids 2 and 3
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecAuto})
	tb, err := FromBlocksSpec(br, 1, ScanSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := tb.UnifyCodes(ColFile, 2) // file ids reach 3
	if err != nil {
		t.Fatalf("UnifyCodes: %v", err)
	}
	if u != nil {
		t.Fatal("UnifyCodes accepted a column whose values exceed the cap")
	}
}

// TestKeySpansFireWhereSpansDont: with op alternating every event the
// six-column span kernel serves nothing, while key spans — op excluded —
// tile every chunk and carry the same keys the materialized columns hold.
func TestKeySpansFireWhereSpansDont(t *testing.T) {
	tr := groupTrace(2)
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecAuto})
	var stats ScanStats
	tb, err := FromBlocksSpec(br, 1, ScanSpec{}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < tb.NumChunks(); k++ {
		if _, ok := tb.ChunkSpans(k, nil); ok {
			t.Fatalf("chunk %d: six-column spans served despite per-row op alternation", k)
		}
		spans, ok := tb.ChunkKeySpans(k, nil)
		if !ok {
			t.Fatalf("chunk %d: key spans not served", k)
		}
		c := tb.ChunkAt(k)
		if err := c.Require(trace.AllCols); err != nil {
			t.Fatal(err)
		}
		row := 0
		for _, s := range spans {
			if s.Lo != row {
				t.Fatalf("chunk %d: span starts at %d, want %d (spans must tile)", k, s.Lo, row)
			}
			for j := s.Lo; j < s.Hi; j++ {
				if c.Level[j] != s.Level || c.Rank[j] != s.Rank || c.Node[j] != s.Node ||
					c.App[j] != s.App || c.File[j] != s.File {
					t.Fatalf("chunk %d row %d: key span keys differ from columns", k, j)
				}
			}
			row = s.Hi
		}
		if row != c.N {
			t.Fatalf("chunk %d: spans cover %d rows of %d", k, row, c.N)
		}
	}
	if served := stats.KernelServed[KKeySpan].Load(); served == 0 {
		t.Error("KKeySpan served counter did not move")
	}
	if fb := stats.KernelFallback[KSpanScan].Load(); fb == 0 {
		t.Error("KSpanScan fallback counter did not move")
	}
}

// TestRunIntersectionSelection: multi-dimension filters over level/op/rank
// select rows straight from intersected run summaries — row-identical to
// the kernels-off scan, with the run-intersection counters ticking, and
// whole-pass multi-dimension filters keeping whole blocks without a
// selection vector.
func TestRunIntersectionSelection(t *testing.T) {
	defer SetKernelsEnabled(true)
	tr := mixedTrace(2*ChunkRows + 901)
	filters := map[string]trace.Filter{
		"ranks-ops":        {Ranks: []int32{1, 3, 5, 7}, Ops: trace.OpClassData},
		"levels-ops":       {Levels: []trace.Level{trace.LevelPosix}, Ops: trace.OpClassMeta},
		"ranks-levels-ops": {Ranks: []int32{0, 2, 4}, Levels: []trace.Level{trace.LevelPosix, trace.LevelApp}, Ops: trace.OpClassIO},
		"whole-pass": {
			Ranks:  []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
			Levels: []trace.Level{trace.LevelPosix, trace.LevelMiddleware, trace.LevelApp},
		},
	}
	for _, codec := range []trace.CodecMode{trace.CodecAuto, trace.CodecForceRLE, trace.CodecForceDict} {
		br := blockReaderFor(t, tr, trace.V2Options{Codec: codec})
		for fname, f := range filters {
			SetKernelsEnabled(false)
			want, err := FromBlocksSpec(br, 2, ScanSpec{Cols: trace.AllCols, Filter: f}, nil)
			if err != nil {
				t.Fatalf("%s kernels=off: %v", fname, err)
			}
			SetKernelsEnabled(true)
			var stats ScanStats
			got, err := FromBlocksSpec(br, 2, ScanSpec{Cols: trace.AllCols, Filter: f}, &stats)
			if err != nil {
				t.Fatalf("%s kernels=on: %v", fname, err)
			}
			assertTablesEqual(t, want, got)
			if served := stats.RunIsectServed.Load(); served == 0 {
				t.Errorf("codec %v %s: run-intersection served no blocks", codec, fname)
			}
			if fname == "whole-pass" && stats.RowsKept.Load() != stats.RowsTotal.Load() {
				t.Errorf("%s: kept %d of %d rows, want all", fname,
					stats.RowsKept.Load(), stats.RowsTotal.Load())
			}
		}
	}
}
