package colstore

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"vani/internal/trace"
)

// cancelAfterReads is a ReaderAt that cancels a context after a set number
// of reads past arming — a deterministic way to pull the plug mid-scan.
type cancelAfterReads struct {
	r      io.ReaderAt
	armed  bool
	left   int
	cancel context.CancelFunc
}

func (c *cancelAfterReads) ReadAt(p []byte, off int64) (int, error) {
	if c.armed {
		if c.left <= 0 {
			c.cancel()
		}
		c.left--
	}
	return c.r.ReadAt(p, off)
}

// slowReaderAt delays every read — a stand-in for cold storage, so a short
// deadline reliably expires while blocks are still being decoded.
type slowReaderAt struct {
	r     io.ReaderAt
	delay time.Duration
}

func (s *slowReaderAt) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(s.delay)
	return s.r.ReadAt(p, off)
}

// encodeBlocks renders tr as an uncompressed default-geometry VANITRC2 log.
func encodeBlocks(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteV2With(&buf, tr, trace.V2Options{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFromBlocksSpecCanceledMidScan cancels the context from inside the
// reader after two post-construction block reads: the serial scan must stop
// with context.Canceled having decoded only a prefix of the log.
func TestFromBlocksSpecCanceledMidScan(t *testing.T) {
	const nblocks = 5
	data := encodeBlocks(t, bigTrace(nblocks*ChunkRows, 7))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cr := &cancelAfterReads{r: bytes.NewReader(data), left: 2, cancel: cancel}
	br, err := trace.NewBlockReader(trace.ReaderAtContext(ctx, cr), int64(len(data)))
	if err != nil {
		t.Fatalf("NewBlockReader: %v", err)
	}
	cr.armed = true // header+footer reads done; count block reads from here

	stats := &ScanStats{}
	_, err = FromBlocksSpecContext(ctx, br, 1, ScanSpec{}, stats)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FromBlocksSpecContext: err = %v, want context.Canceled", err)
	}
	if got := stats.RowsTotal.Load(); got >= nblocks*ChunkRows {
		t.Errorf("scan ran to completion (%d rows) despite cancellation", got)
	}
}

// TestFromBlocksSpecDeadlineMidScan reads through a slow device with a
// deadline far shorter than the full decode: the scan must abort with
// DeadlineExceeded, not run the log to completion.
func TestFromBlocksSpecDeadlineMidScan(t *testing.T) {
	const nblocks = 10
	data := encodeBlocks(t, bigTrace(nblocks*ChunkRows, 11))
	slow := &slowReaderAt{r: bytes.NewReader(data), delay: 3 * time.Millisecond}
	// Construct before starting the clock — header and footer reads pay the
	// device delay too. The scan's own per-block checks must then notice
	// the deadline: with 10 blocks at 3ms each against a 5ms budget, the
	// full decode can never finish in time.
	br, err := trace.NewBlockReader(slow, int64(len(data)))
	if err != nil {
		t.Fatalf("NewBlockReader: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()

	stats := &ScanStats{}
	_, err = FromBlocksSpecContext(ctx, br, 1, ScanSpec{}, stats)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FromBlocksSpecContext: err = %v, want context.DeadlineExceeded", err)
	}
	if got := stats.RowsTotal.Load(); got >= nblocks*ChunkRows {
		t.Errorf("scan ran to completion (%d rows) despite %s deadline", got, 5*time.Millisecond)
	}
}

// TestFromBlocksSpecContextBackground pins the wrapper contract: a
// background context changes nothing about the result.
func TestFromBlocksSpecContextBackground(t *testing.T) {
	tr := bigTrace(ChunkRows+99, 3)
	data := encodeBlocks(t, tr)
	mk := func() *trace.BlockReader {
		br, err := trace.NewBlockReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		return br
	}
	want, err := FromBlocksSpec(mk(), 2, ScanSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromBlocksSpecContext(context.Background(), mk(), 2, ScanSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Materialize(2, trace.AllCols); err != nil {
		t.Fatal(err)
	}
	if err := got.MaterializeContext(context.Background(), 2, trace.AllCols); err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, want, got)
}

// TestMaterializeContextCanceled: a canceled context stops lazy column
// materialization before any chunk decodes.
func TestMaterializeContextCanceled(t *testing.T) {
	tr := bigTrace(2*ChunkRows, 5)
	data := encodeBlocks(t, tr)
	br, err := trace.NewBlockReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// A projected scan leaves most columns lazy.
	f := trace.Filter{Ops: trace.OpClassData}
	tb, err := FromBlocksSpec(br, 1, ScanSpec{Filter: f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tb.MaterializeContext(ctx, 1, trace.AllCols); !errors.Is(err, context.Canceled) {
		t.Fatalf("MaterializeContext: err = %v, want context.Canceled", err)
	}
}
