package colstore

import (
	"math/rand"
	"testing"
	"time"

	"vani/internal/trace"
)

// mixedTrace builds a run-structured trace that exercises every predicate
// dimension the compressed kernels serve: ranks, levels and ops all arrive
// in runs (so the cost model picks RLE or dict for them), with sizes and
// offsets varied enough that the value columns stay interesting.
func mixedTrace(n int) *trace.Trace {
	rng := rand.New(rand.NewSource(11))
	tr := trace.NewTracer()
	app := tr.AppID("app")
	files := []int32{tr.FileID("/a"), tr.FileID("/b"), tr.FileID("/c")}
	levels := []trace.Level{trace.LevelPosix, trace.LevelMiddleware, trace.LevelApp}
	ops := []trace.Op{trace.OpWrite, trace.OpRead, trace.OpOpen, trace.OpClose}
	var clock time.Duration
	for i := 0; i < n; i++ {
		clock += time.Duration(rng.Intn(90)+1) * time.Nanosecond
		tr.Record(trace.Event{
			Level: levels[i/511%len(levels)], Op: ops[i/257%len(ops)],
			Rank: int32(i / 773 % 16), Node: int32(i / 773 % 16 / 4),
			App: app, File: files[i/1021%len(files)],
			Offset: int64(i) * 512, Size: int64(rng.Intn(1 << 12)),
			Start: clock, End: clock + time.Duration(rng.Intn(40)+1)*time.Nanosecond,
		})
	}
	return tr.Finish()
}

// TestKernelRegistryCaps pins the registry: run-structured codecs serve the
// run/code-domain kernels, FOR serves everything but the predicate paths
// (which dispatch on dict/RLE structure directly) and min/max, raw serves
// nothing.
func TestKernelRegistryCaps(t *testing.T) {
	for _, op := range []KernelOp{KPredicate, KCountEq, KSumEq, KHist, KGroupBy, KSpanScan} {
		for _, codec := range []uint8{trace.SegCodecRLE, trace.SegCodecDict} {
			if !KernelServes(op, codec) {
				t.Errorf("KernelServes(%v, codec %d) = false, want true", op, codec)
			}
		}
		if KernelServes(op, trace.SegCodecRaw) {
			t.Errorf("%v served from raw segments", op)
		}
		if op == KPredicate {
			if KernelServes(op, trace.SegCodecFOR) {
				t.Errorf("%v served from FOR segments", op)
			}
		} else if !KernelServes(op, trace.SegCodecFOR) {
			t.Errorf("KernelServes(%v, FOR) = false, want true", op)
		}
	}
	for _, op := range []KernelOp{KKeySpan, KGroupAgg} {
		for _, codec := range []uint8{trace.SegCodecRLE, trace.SegCodecDict, trace.SegCodecFOR} {
			if !KernelServes(op, codec) {
				t.Errorf("KernelServes(%v, codec %d) = false, want true", op, codec)
			}
		}
	}
	if !KernelServes(KMinMax, trace.SegCodecFOR) {
		t.Error("KMinMax not served from FOR segments")
	}
	if KernelServes(KMinMax, trace.SegCodecRLE) || KernelServes(KMinMax, trace.SegCodecRaw) {
		t.Error("KMinMax served from a non-FOR codec")
	}
	if KernelServes(KernelOp(-1), trace.SegCodecRLE) || KernelServes(NumKernelOps, 0) {
		t.Error("out-of-range kernel op reported as served")
	}
}

// TestCompressedPredicateMatchesFallback: a filtered planned scan with the
// predicate kernel engaged produces a table row-identical to the same scan
// with kernels disabled, across codecs and filter shapes — including
// filters a served dimension passes for every row (keep stays nil) and
// filters that leave residual dimensions (the time window).
func TestCompressedPredicateMatchesFallback(t *testing.T) {
	defer SetKernelsEnabled(true)
	tr := mixedTrace(2*ChunkRows + 901)
	end := time.Duration(tr.Events[len(tr.Events)-1].Start)
	filters := map[string]trace.Filter{
		"ranks":     {Ranks: []int32{1, 3, 5, 7}},
		"not-zero":  {Ranks: []int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
		"all-ranks": {Ranks: []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
		"levels":    {Levels: []trace.Level{trace.LevelPosix}},
		"ops":       {Ops: trace.OpClassData},
		"combined":  {From: end / 8, To: 3 * end / 4, Ranks: []int32{0, 2, 4, 6}, Ops: trace.OpClassIO},
	}
	codecs := map[string]trace.CodecMode{
		"auto": trace.CodecAuto,
		"rle":  trace.CodecForceRLE,
		"dict": trace.CodecForceDict,
		"v21":  trace.CodecV21,
	}
	for cname, codec := range codecs {
		br := blockReaderFor(t, tr, trace.V2Options{Codec: codec})
		for fname, f := range filters {
			SetKernelsEnabled(false)
			want, err := FromBlocksSpec(br, 2, ScanSpec{Cols: trace.AllCols, Filter: f}, nil)
			if err != nil {
				t.Fatalf("%s/%s kernels=off: %v", cname, fname, err)
			}
			SetKernelsEnabled(true)
			var stats ScanStats
			got, err := FromBlocksSpec(br, 2, ScanSpec{Cols: trace.AllCols, Filter: f}, &stats)
			if err != nil {
				t.Fatalf("%s/%s kernels=on: %v", cname, fname, err)
			}
			assertTablesEqual(t, want, got)
			served := stats.KernelServed[KPredicate].Load()
			if (cname == "rle" || cname == "dict") && served == 0 {
				t.Errorf("%s/%s: predicate kernel served no blocks on a forced %s log",
					cname, fname, cname)
			}
			if cname == "v21" && served != 0 {
				t.Errorf("%s/%s: predicate kernel claims %d served blocks on a v2.1 log",
					cname, fname, served)
			}
		}
	}
}

// TestChunkSpansTileAndMatch: the span-scan kernel's spans tile each chunk
// exactly and carry the same keys the materialized columns hold row by row.
func TestChunkSpansTileAndMatch(t *testing.T) {
	tr := mixedTrace(ChunkRows + 700)
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecAuto})
	var stats ScanStats
	tb, err := FromBlocksSpec(br, 1, ScanSpec{}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	anyServed := false
	for k := 0; k < tb.NumChunks(); k++ {
		spans, ok := tb.ChunkSpans(k, nil)
		c := tb.ChunkAt(k)
		if !ok {
			continue
		}
		anyServed = true
		if err := c.Require(trace.AllCols); err != nil {
			t.Fatal(err)
		}
		row := 0
		for _, s := range spans {
			if s.Lo != row || s.Hi <= s.Lo {
				t.Fatalf("chunk %d: span [%d,%d) does not tile at row %d", k, s.Lo, s.Hi, row)
			}
			for j := s.Lo; j < s.Hi; j++ {
				if c.Level[j] != s.Level || c.Op[j] != s.Op || c.Rank[j] != s.Rank ||
					c.Node[j] != s.Node || c.App[j] != s.App || c.File[j] != s.File {
					t.Fatalf("chunk %d row %d: span keys differ from materialized columns", k, j)
				}
			}
			row = s.Hi
		}
		if row != c.N {
			t.Fatalf("chunk %d: spans cover %d of %d rows", k, row, c.N)
		}
	}
	if !anyServed {
		t.Fatal("span kernel served no chunk on a run-structured v2.2 log")
	}
	if stats.KernelServed[KSpanScan].Load() == 0 {
		t.Error("span-scan served counter did not tick")
	}
}

// TestColMinMaxMatches: min/max answered from FOR headers equals min/max
// computed from the materialized column, and equals the kernels-off path.
func TestColMinMaxMatches(t *testing.T) {
	defer SetKernelsEnabled(true)
	tr := mixedTrace(2*ChunkRows + 333)
	want := FromTrace(tr)
	brute := func(val func(i int) int64) (int64, int64) {
		mn, mx := val(0), val(0)
		for i := 1; i < want.Len(); i++ {
			v := val(i)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return mn, mx
	}
	cols := map[trace.ColSet]func(i int) int64{
		trace.ColOffset: want.Offset,
		trace.ColSize:   want.Size,
		trace.ColStart:  want.Start,
		trace.ColEnd:    want.End,
	}
	for _, codec := range []trace.CodecMode{trace.CodecForceFOR, trace.CodecAuto} {
		for _, kernels := range []bool{true, false} {
			SetKernelsEnabled(kernels)
			br := blockReaderFor(t, tr, trace.V2Options{Codec: codec})
			var stats ScanStats
			tb, err := FromBlocksSpec(br, 2, ScanSpec{}, &stats)
			if err != nil {
				t.Fatal(err)
			}
			for set, val := range cols {
				wantMin, wantMax := brute(val)
				gotMin, gotMax, err := tb.ColMinMax(2, set)
				if err != nil {
					t.Fatal(err)
				}
				if gotMin != wantMin || gotMax != wantMax {
					t.Fatalf("codec=%v kernels=%v col=%v: ColMinMax=(%d,%d), want (%d,%d)",
						codec, kernels, set, gotMin, gotMax, wantMin, wantMax)
				}
			}
			if codec == trace.CodecForceFOR && kernels && stats.KernelServed[KMinMax].Load() == 0 {
				t.Error("forced-FOR log answered no min/max from segment headers")
			}
			if !kernels && stats.KernelServed[KMinMax].Load() != 0 {
				t.Error("kernels disabled but min/max claims served requests")
			}
		}
	}
}

// TestGroupByColKernelMatches: grouping from run summaries returns the same
// first-encounter key order and ascending row sets as the row loop.
func TestGroupByColKernelMatches(t *testing.T) {
	defer SetKernelsEnabled(true)
	tr := mixedTrace(ChunkRows + 512)
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecAuto})
	tb, err := FromBlocksSpec(br, 2, ScanSpec{Cols: trace.AllCols}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []Col{ColRank, ColNode, ColApp, ColFile} {
		SetKernelsEnabled(false)
		want := tb.GroupByCol(2, col)
		SetKernelsEnabled(true)
		got := tb.GroupByCol(2, col)
		if len(want.Keys) != len(got.Keys) {
			t.Fatalf("col=%d: %d keys, want %d", col, len(got.Keys), len(want.Keys))
		}
		for i, k := range want.Keys {
			if got.Keys[i] != k {
				t.Fatalf("col=%d: key order differs at %d: %d vs %d", col, i, got.Keys[i], k)
			}
			wr, gr := want.Groups[k], got.Groups[k]
			if len(wr) != len(gr) {
				t.Fatalf("col=%d key=%d: group size %d, want %d", col, k, len(gr), len(wr))
			}
			for j := range wr {
				if wr[j] != gr[j] {
					t.Fatalf("col=%d key=%d: row %d differs", col, k, j)
				}
			}
		}
	}
}

// TestScanCountersKernelSplit: the snapshot's aggregate served/fallback
// totals equal the per-op sums, and disabling kernels moves every request
// to the fallback side.
func TestScanCountersKernelSplit(t *testing.T) {
	defer SetKernelsEnabled(true)
	tr := mixedTrace(ChunkRows + 100)
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecForceDict})
	f := trace.Filter{Ranks: []int32{0, 1, 2}}

	var on ScanStats
	if _, err := FromBlocksSpec(br, 2, ScanSpec{Filter: f}, &on); err != nil {
		t.Fatal(err)
	}
	s := on.Snapshot()
	var served, fallback int64
	for op := KernelOp(0); op < NumKernelOps; op++ {
		served += s.KernelServed[op]
		fallback += s.KernelFallback[op]
	}
	if s.KernelsServed != served || s.KernelsFallback != fallback {
		t.Fatalf("snapshot totals (%d,%d) != per-op sums (%d,%d)",
			s.KernelsServed, s.KernelsFallback, served, fallback)
	}
	if s.KernelServed[KPredicate] == 0 {
		t.Fatal("dict log served no predicate kernels")
	}

	SetKernelsEnabled(false)
	var off ScanStats
	if _, err := FromBlocksSpec(br, 2, ScanSpec{Filter: f}, &off); err != nil {
		t.Fatal(err)
	}
	so := off.Snapshot()
	if so.KernelsServed != 0 {
		t.Fatalf("kernels disabled but %d requests served", so.KernelsServed)
	}
	if so.KernelFallback[KPredicate] == 0 {
		t.Fatal("kernels disabled but no predicate fallback recorded")
	}
}
