package colstore

import (
	"math/rand"
	"testing"
	"time"

	"vani/internal/trace"
)

// runsTrace builds a trace whose key columns arrive in long runs — the
// rank-major ordering the tracer's k-way merge produces — so the v2.2 cost
// model picks RLE for them.
func runsTrace(n int) *trace.Trace {
	rng := rand.New(rand.NewSource(7))
	tr := trace.NewTracer()
	app := tr.AppID("app")
	files := []int32{tr.FileID("/a"), tr.FileID("/b")}
	var clock time.Duration
	for i := 0; i < n; i++ {
		clock += time.Duration(rng.Intn(100)+1) * time.Nanosecond
		tr.Record(trace.Event{
			Level: trace.LevelPosix, Op: trace.OpWrite,
			Rank: int32(i / 997 % 32), Node: int32(i / 997 % 32 / 4),
			App: app, File: files[i/(n/2+1)],
			Size: int64(rng.Intn(1 << 10)), Start: clock,
			End: clock + time.Duration(rng.Intn(50)+1)*time.Nanosecond,
		})
	}
	return tr.Finish()
}

// bruteCounts computes the reference histogram / per-value size sums by
// plain row iteration over an eagerly built table.
func bruteCounts(tb *Table, key func(i int) int32) (map[int32]int64, map[int32]int64) {
	hist := make(map[int32]int64)
	sizes := make(map[int32]int64)
	for i := 0; i < tb.Len(); i++ {
		v := key(i)
		hist[v]++
		sizes[v] += tb.Size(i)
	}
	return hist, sizes
}

// TestRunKernelsMatchRowIteration: CountEq, SumSizeEq and ValueHist return
// exactly the row-iteration answers, with and without run summaries, at
// every parallelism.
func TestRunKernelsMatchRowIteration(t *testing.T) {
	tr := runsTrace(2*ChunkRows + 500)
	want := FromTrace(tr)
	wantHist, wantSizes := bruteCounts(want, want.Rank)

	for _, codec := range []trace.CodecMode{trace.CodecAuto, trace.CodecV21} {
		br := blockReaderFor(t, tr, trace.V2Options{Codec: codec})
		tb, err := FromBlocksSpec(br, 4, ScanSpec{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		anyRuns := false
		tb.ForEachChunk(func(c *Chunk) {
			if c.HasRuns(ColRank) {
				anyRuns = true
			}
		})
		if codec == trace.CodecAuto && !anyRuns {
			t.Fatal("v2.2 auto captured no rank run summaries on a run-structured trace")
		}
		if codec == trace.CodecV21 && anyRuns {
			t.Fatal("v2.1 log produced run summaries")
		}

		for _, par := range []int{1, 4} {
			hist, err := tb.ValueHist(par, ColRank)
			if err != nil {
				t.Fatal(err)
			}
			if len(hist) != len(wantHist) {
				t.Fatalf("codec=%v par=%d: hist has %d keys, want %d", codec, par, len(hist), len(wantHist))
			}
			for v, n := range wantHist {
				if hist[v] != n {
					t.Fatalf("codec=%v par=%d: hist[%d]=%d, want %d", codec, par, v, hist[v], n)
				}
				cnt, err := tb.CountEq(par, ColRank, v)
				if err != nil {
					t.Fatal(err)
				}
				if cnt != n {
					t.Fatalf("codec=%v par=%d: CountEq(%d)=%d, want %d", codec, par, v, cnt, n)
				}
				sum, err := tb.SumSizeEq(par, ColRank, v)
				if err != nil {
					t.Fatal(err)
				}
				if sum != wantSizes[v] {
					t.Fatalf("codec=%v par=%d: SumSizeEq(%d)=%d, want %d", codec, par, v, sum, wantSizes[v])
				}
			}
			// A value absent from the table counts zero and reads no sizes.
			if cnt, _ := tb.CountEq(par, ColRank, 999); cnt != 0 {
				t.Fatalf("CountEq(999)=%d, want 0", cnt)
			}
			if sum, _ := tb.SumSizeEq(par, ColRank, 999); sum != 0 {
				t.Fatalf("SumSizeEq(999)=%d, want 0", sum)
			}
		}
	}
}

// TestRunKernelsOtherKeyCols: run summaries and fallbacks agree for every
// groupable key column, not just rank.
func TestRunKernelsOtherKeyCols(t *testing.T) {
	tr := runsTrace(ChunkRows + 300)
	want := FromTrace(tr)
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecAuto})
	tb, err := FromBlocksSpec(br, 2, ScanSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[Col]func(i int) int32{
		ColNode: want.Node,
		ColApp:  want.App,
		ColFile: want.File,
	}
	for col, key := range keys {
		wantHist, wantSizes := bruteCounts(want, key)
		hist, err := tb.ValueHist(2, col)
		if err != nil {
			t.Fatal(err)
		}
		for v, n := range wantHist {
			if hist[v] != n {
				t.Fatalf("col=%d: hist[%d]=%d, want %d", col, v, hist[v], n)
			}
			sum, err := tb.SumSizeEq(2, col, v)
			if err != nil {
				t.Fatal(err)
			}
			if sum != wantSizes[v] {
				t.Fatalf("col=%d: SumSizeEq(%d)=%d, want %d", col, v, sum, wantSizes[v])
			}
		}
		if len(hist) != len(wantHist) {
			t.Fatalf("col=%d: hist has %d keys, want %d", col, len(hist), len(wantHist))
		}
	}
}

// TestScanStatsCodecMix: a planned scan over a v2.2 log tallies one decoded
// segment per (block, column) into the codec-mix counters; v2.1 logs tally
// nothing.
func TestScanStatsCodecMix(t *testing.T) {
	tr := runsTrace(2 * ChunkRows)
	br := blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecAuto})
	var stats ScanStats
	if _, err := FromBlocksSpec(br, 2, ScanSpec{Cols: trace.AllCols}, &stats); err != nil {
		t.Fatal(err)
	}
	s := stats.Snapshot()
	total := s.SegRaw + s.SegRLE + s.SegDict + s.SegFOR
	if want := s.BlocksTotal * trace.NumCols; total != want {
		t.Fatalf("codec-mix total %d, want %d (blocks=%d)", total, want, s.BlocksTotal)
	}
	if s.SegRLE == 0 {
		t.Fatal("run-structured trace decoded no RLE segments")
	}

	br = blockReaderFor(t, tr, trace.V2Options{Codec: trace.CodecV21})
	var stats21 ScanStats
	if _, err := FromBlocksSpec(br, 2, ScanSpec{Cols: trace.AllCols}, &stats21); err != nil {
		t.Fatal(err)
	}
	s21 := stats21.Snapshot()
	if n := s21.SegRaw + s21.SegRLE + s21.SegDict + s21.SegFOR; n != 0 {
		t.Fatalf("v2.1 log tallied %d segments, want 0", n)
	}
}
