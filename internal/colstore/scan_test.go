package colstore

import (
	"testing"
	"time"

	"vani/internal/trace"
)

// scanTestFilters sweeps the pushdown predicates: each alone, combined, and
// the match-nothing window.
func scanTestFilters(end time.Duration) []trace.Filter {
	return []trace.Filter{
		{},
		{From: end / 4, To: end / 2},
		{To: end / 8},
		{Ranks: []int32{0, 5, 900}},
		{Levels: []trace.Level{trace.LevelPosix}},
		{Ops: trace.OpClassData},
		{From: end / 8, To: 3 * end / 4, Ranks: []int32{1, 2, 3, 4, 5, 6, 7},
			Levels: []trace.Level{trace.LevelPosix, trace.LevelApp}, Ops: trace.OpClassIO},
		{From: end * 10},
	}
}

// TestFromBlocksSpecMatchesFilterEvents is the pushdown equivalence
// contract at the table layer: for every filter, block layout, and
// parallelism, the planned scan's table is row-identical to transposing
// FilterEvents over the full decode.
func TestFromBlocksSpecMatchesFilterEvents(t *testing.T) {
	tr := bigTrace(2*ChunkRows+123, 42)
	end := tr.Events[len(tr.Events)-1].Start
	layouts := []struct {
		name string
		opt  trace.V2Options
	}{
		{"columnar", trace.V2Options{}},
		{"columnar-flate", trace.V2Options{Compress: true}},
		{"row-legacy", trace.V2Options{RowLayout: true}},
		{"small-blocks", trace.V2Options{BlockEvents: 1000}},
	}
	for _, layout := range layouts {
		br := blockReaderFor(t, tr, layout.opt)
		for fi, f := range scanTestFilters(end) {
			want := FromEvents(trace.FilterEvents(tr.Events, f), 1)
			for _, par := range []int{1, 4} {
				var stats ScanStats
				got, err := FromBlocksSpec(br, par, ScanSpec{Filter: f}, &stats)
				if err != nil {
					t.Fatalf("%s filter %d par %d: %v", layout.name, fi, par, err)
				}
				if err := got.Materialize(par, trace.AllCols); err != nil {
					t.Fatalf("%s filter %d par %d: Materialize: %v", layout.name, fi, par, err)
				}
				assertTablesEqual(t, want, got)
				s := stats.Snapshot()
				if s.RowsKept != int64(want.Len()) {
					t.Errorf("%s filter %d: RowsKept=%d, want %d", layout.name, fi, s.RowsKept, want.Len())
				}
				if s.BlocksPruned > s.BlocksTotal || s.DecodedBytes > s.PayloadBytes {
					t.Errorf("%s filter %d: inconsistent counters %+v", layout.name, fi, s)
				}
			}
		}
	}
}

// TestFromBlocksSpecLazyProjection: with no filter and no requested
// columns, the plan decodes nothing up front; each Require materializes
// exactly the asked-for columns, and the decoded-bytes counter grows
// monotonically toward (but never past) the payload size.
func TestFromBlocksSpecLazyProjection(t *testing.T) {
	tr := bigTrace(ChunkRows+500, 7)
	want := FromTrace(tr)
	br := blockReaderFor(t, tr, trace.V2Options{})
	var stats ScanStats
	got, err := FromBlocksSpec(br, 4, ScanSpec{}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if n := stats.DecodedBytes.Load(); n != 0 {
		t.Errorf("unfiltered plan decoded %d bytes up front", n)
	}
	if got.Len() != want.Len() {
		t.Fatalf("lazy table holds %d rows, want %d", got.Len(), want.Len())
	}
	// One column: values match without touching the other ten.
	for _, ck := range got.chunks {
		if err := ck.Require(trace.ColStart); err != nil {
			t.Fatal(err)
		}
	}
	afterStart := stats.DecodedBytes.Load()
	if afterStart <= 0 || afterStart >= stats.PayloadBytes.Load() {
		t.Errorf("Start column decode counted %d of %d payload bytes",
			afterStart, stats.PayloadBytes.Load())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Start(i) != want.Start(i) {
			t.Fatalf("row %d: lazy Start %v, want %v", i, got.Start(i), want.Start(i))
		}
	}
	// Re-Requiring a held column is free.
	for _, ck := range got.chunks {
		if err := ck.Require(trace.ColStart); err != nil {
			t.Fatal(err)
		}
	}
	if n := stats.DecodedBytes.Load(); n != afterStart {
		t.Errorf("re-Require decoded %d more bytes", n-afterStart)
	}
	if err := got.Materialize(4, trace.AllCols); err != nil {
		t.Fatal(err)
	}
	if n := stats.DecodedBytes.Load(); n > stats.PayloadBytes.Load() {
		t.Errorf("decoded %d bytes exceeds payload %d", n, stats.PayloadBytes.Load())
	}
	assertTablesEqual(t, want, got)
}

// TestFromBlocksSpecCols: a plan that declares its column set up front gets
// those columns materialized eagerly and the rest stays lazy.
func TestFromBlocksSpecCols(t *testing.T) {
	tr := bigTrace(ChunkRows/2, 3)
	want := FromTrace(tr)
	br := blockReaderFor(t, tr, trace.V2Options{})
	var stats ScanStats
	got, err := FromBlocksSpec(br, 1, ScanSpec{Cols: trace.ColSize | trace.ColOp}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecodedBytes.Load() == 0 {
		t.Error("declared columns not decoded up front")
	}
	for i := 0; i < want.Len(); i++ {
		if got.Size(i) != want.Size(i) || got.Op(i) != want.Op(i) {
			t.Fatalf("row %d: declared columns diverge", i)
		}
	}
}

// TestFromBlocksSpecPruning: a narrow window over a time-ordered multi-block
// log skips whole blocks, drops filtered-out chunks, and decodes only the
// residual filter's columns from the survivors.
func TestFromBlocksSpecPruning(t *testing.T) {
	tr := bigTrace(4*ChunkRows, 11)
	end := tr.Events[len(tr.Events)-1].Start
	br := blockReaderFor(t, tr, trace.V2Options{})
	f := trace.Filter{From: end / 4, To: end / 2}
	var stats ScanStats
	got, err := FromBlocksSpec(br, 4, ScanSpec{Filter: f}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Snapshot()
	if s.BlocksTotal != 4 {
		t.Fatalf("BlocksTotal=%d, want 4", s.BlocksTotal)
	}
	if s.BlocksPruned == 0 {
		t.Error("25% window pruned no blocks")
	}
	if s.DecodedBytes >= s.PayloadBytes {
		t.Errorf("residual filter decoded %d of %d payload bytes: projection not engaged",
			s.DecodedBytes, s.PayloadBytes)
	}
	want := FromEvents(trace.FilterEvents(tr.Events, f), 1)
	if err := got.Materialize(4, trace.AllCols); err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, want, got)

	// The match-nothing window prunes everything and yields an empty table.
	var stats2 ScanStats
	empty, err := FromBlocksSpec(br, 4, ScanSpec{Filter: trace.Filter{From: end * 10}}, &stats2)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("past-the-end window kept %d rows", empty.Len())
	}
	if stats2.BlocksPruned.Load() != stats2.BlocksTotal.Load() {
		t.Errorf("past-the-end window read %d blocks",
			stats2.BlocksTotal.Load()-stats2.BlocksPruned.Load())
	}
}

// TestTableIrregularChunks: a filtered table's chunks are irregular, so row
// addressing takes the binary-search path; Take and kernels must still see
// every row.
func TestTableIrregularChunks(t *testing.T) {
	tr := bigTrace(3*ChunkRows, 19)
	end := tr.Events[len(tr.Events)-1].Start
	br := blockReaderFor(t, tr, trace.V2Options{})
	f := trace.Filter{Ops: trace.OpClassData, To: 3 * end / 4}
	var stats ScanStats
	tb, err := FromBlocksSpec(br, 2, ScanSpec{Filter: f}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Materialize(2, trace.AllCols); err != nil {
		t.Fatal(err)
	}
	want := FromEvents(trace.FilterEvents(tr.Events, f), 1)
	assertTablesEqual(t, want, tb)

	// Random access across chunk boundaries via Take.
	idx := []int{0, tb.Len() / 3, tb.Len() / 2, tb.Len() - 1}
	sub := tb.Take(idx)
	for i, j := range idx {
		if sub.Start(i) != tb.Start(j) || sub.Rank(i) != tb.Rank(j) {
			t.Fatalf("Take row %d (source %d) diverges", i, j)
		}
	}
}
