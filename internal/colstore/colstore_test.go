package colstore

import (
	"testing"
	"testing/quick"
	"time"

	"vani/internal/trace"
)

func sampleTrace() *trace.Trace {
	tr := trace.NewTracer()
	app := tr.AppID("app")
	f1, f2 := tr.FileID("/a"), tr.FileID("/b")
	mk := func(op trace.Op, rank int32, file int32, size int64, start, end time.Duration) {
		tr.Record(trace.Event{
			Level: trace.LevelPosix, Op: op, Rank: rank, Node: rank / 4,
			App: app, File: file, Size: size, Start: start, End: end,
		})
	}
	mk(trace.OpOpen, 0, f1, 0, 0, time.Millisecond)
	mk(trace.OpWrite, 0, f1, 4096, time.Millisecond, 3*time.Millisecond)
	mk(trace.OpWrite, 1, f2, 8192, 2*time.Millisecond, 5*time.Millisecond)
	mk(trace.OpRead, 1, f2, 1024, 5*time.Millisecond, 6*time.Millisecond)
	mk(trace.OpClose, 0, f1, 0, 6*time.Millisecond, 7*time.Millisecond)
	return tr.Finish()
}

func TestFromTraceTransposes(t *testing.T) {
	tr := sampleTrace()
	tb := FromTrace(tr)
	if tb.N != len(tr.Events) {
		t.Fatalf("N = %d, want %d", tb.N, len(tr.Events))
	}
	for i := range tr.Events {
		ev := tr.Events[i]
		if trace.Op(tb.Op[i]) != ev.Op || tb.Rank[i] != ev.Rank ||
			tb.Size[i] != ev.Size || time.Duration(tb.Start[i]) != ev.Start {
			t.Fatalf("row %d transposed wrong", i)
		}
	}
}

func TestPredicatesAndAggregates(t *testing.T) {
	tb := FromTrace(sampleTrace())
	if got := tb.SumSize(tb.IsData); got != 4096+8192+1024 {
		t.Errorf("data bytes = %d", got)
	}
	if got := tb.Count(tb.IsMeta); got != 2 {
		t.Errorf("meta count = %d", got)
	}
	if got := tb.Count(nil); got != tb.N {
		t.Errorf("nil pred count = %d", got)
	}
	writes := tb.Select(func(i int) bool { return trace.Op(tb.Op[i]) == trace.OpWrite })
	if writes.N != 2 || writes.SumSize(nil) != 4096+8192 {
		t.Errorf("writes table wrong: N=%d", writes.N)
	}
}

func TestSumDur(t *testing.T) {
	tb := FromTrace(sampleTrace())
	want := 1*time.Millisecond + 2*time.Millisecond + 3*time.Millisecond +
		1*time.Millisecond + 1*time.Millisecond
	if got := tb.SumDur(nil); got != want {
		t.Errorf("SumDur = %v, want %v", got, want)
	}
}

func TestTimeExtent(t *testing.T) {
	tb := FromTrace(sampleTrace())
	if tb.MinStart() != 0 || tb.MaxEnd() != 7*time.Millisecond {
		t.Errorf("extent = [%v, %v]", tb.MinStart(), tb.MaxEnd())
	}
	empty := &Table{}
	if empty.MinStart() != 0 || empty.MaxEnd() != 0 {
		t.Error("empty extent not zero")
	}
}

func TestGroupByDeterministicOrder(t *testing.T) {
	tb := FromTrace(sampleTrace())
	g := tb.GroupByCol(tb.File)
	if len(g.Keys) != 2 {
		t.Fatalf("groups = %d, want 2", len(g.Keys))
	}
	// First-encounter order: file of first event first.
	if g.Keys[0] != tb.File[0] {
		t.Error("keys not in first-encounter order")
	}
	total := 0
	for _, rows := range g.Groups {
		total += len(rows)
	}
	if total != tb.N {
		t.Errorf("group rows = %d, want %d", total, tb.N)
	}
}

func TestGroupByRank(t *testing.T) {
	tb := FromTrace(sampleTrace())
	g := tb.GroupByCol(tb.Rank)
	if len(g.Groups[0]) != 3 || len(g.Groups[1]) != 2 {
		t.Errorf("rank groups wrong: %v", g.Groups)
	}
}

func TestTakePreservesValues(t *testing.T) {
	tb := FromTrace(sampleTrace())
	sub := tb.Take([]int{1, 3})
	if sub.N != 2 || sub.Size[0] != 4096 || sub.Size[1] != 1024 {
		t.Errorf("Take wrong: %+v", sub.Size)
	}
}

func TestForEachChunkCoversAllRows(t *testing.T) {
	tb := FromTrace(sampleTrace())
	var rows int
	var chunks int
	tb.ForEachChunk(2, func(c Chunk) {
		chunks++
		rows += c.Hi - c.Lo
		if c.Hi <= c.Lo {
			t.Error("empty chunk")
		}
	})
	if rows != tb.N {
		t.Errorf("chunked rows = %d, want %d", rows, tb.N)
	}
	if chunks != 3 { // 5 rows at chunk size 2
		t.Errorf("chunks = %d, want 3", chunks)
	}
}

func TestForEachChunkDefaultSize(t *testing.T) {
	tb := FromTrace(sampleTrace())
	calls := 0
	tb.ForEachChunk(0, func(c Chunk) { calls++ })
	if calls != 1 {
		t.Errorf("default chunking made %d calls, want 1", calls)
	}
}

// Property: chunked aggregation equals whole-table aggregation for any
// chunk size.
func TestChunkedAggregationEquivalenceProperty(t *testing.T) {
	tb := FromTrace(sampleTrace())
	whole := tb.SumSize(nil)
	f := func(chunkRaw uint8) bool {
		chunk := int(chunkRaw%7) + 1
		var sum int64
		tb.ForEachChunk(chunk, func(c Chunk) {
			for i := c.Lo; i < c.Hi; i++ {
				sum += c.Table.Size[i]
			}
		})
		return sum == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Select(p) ∪ Select(!p) partitions the table.
func TestSelectPartitionProperty(t *testing.T) {
	tb := FromTrace(sampleTrace())
	f := func(threshold uint16) bool {
		p := func(i int) bool { return tb.Size[i] > int64(threshold) }
		a := tb.Select(p)
		b := tb.Select(func(i int) bool { return !p(i) })
		return a.N+b.N == tb.N && a.SumSize(nil)+b.SumSize(nil) == tb.SumSize(nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
